// Package cliutil centralises the flag conventions shared by this
// repository's commands (gpusim, mrc, paperbench, predict), so that the
// same flag always has the same name, default and help text everywhere:
//
//   - -parallel: worker-pool size for simulation sweeps (Parallel)
//   - -quiet: suppress auxiliary stderr/stdout output (Quiet)
//   - -metrics-out, -trace-out, -sample-every: the observability outputs
//     (Obs), backed by the gpuscale Observer
//   - -cpuprofile, -memprofile: host-side pprof profiles of the command
//     itself (Profile), for chasing simulator hot-path regressions
//
// Commands whose work a flag cannot apply to (e.g. -parallel on the
// single-simulation gpusim, or any of these on the pure-math predict)
// simply do not register it.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"gpuscale"
)

// Parallel registers the shared -parallel flag on fs with the conventional
// default (0, meaning all CPUs) and help text.
func Parallel(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0,
		"worker pool size for simulation sweeps (1: sequential, <=0: all CPUs)")
}

// Quiet registers the shared -quiet flag on fs.
func Quiet(fs *flag.FlagSet) *bool {
	return fs.Bool("quiet", false, "suppress auxiliary output (progress lines, per-run summaries)")
}

// ObsFlags carries the shared observability flags. Register with Obs, build
// the recorder with Observer, and serialise with WriteOutputs after the
// simulations finish.
type ObsFlags struct {
	MetricsOut  string
	TraceOut    string
	SampleEvery int64
}

// Obs registers -metrics-out, -trace-out and -sample-every on fs.
func Obs(fs *flag.FlagSet) *ObsFlags {
	o := &ObsFlags{}
	fs.StringVar(&o.MetricsOut, "metrics-out", "",
		"write the metrics registry and interval samples as JSON to this file")
	fs.StringVar(&o.TraceOut, "trace-out", "",
		"write the event trace to this file: Chrome trace_event JSON (load in chrome://tracing or ui.perfetto.dev); a .jsonl extension selects JSON Lines instead")
	fs.Int64Var(&o.SampleEvery, "sample-every", 0,
		"observability sampling interval in simulated cycles (0: default 8192)")
	return o
}

// Enabled reports whether any observability output was requested.
func (o *ObsFlags) Enabled() bool { return o.MetricsOut != "" || o.TraceOut != "" }

// Observer returns a recorder configured from the flags, or nil when no
// output was requested — the nil observer keeps simulations on their
// zero-overhead path.
func (o *ObsFlags) Observer() *gpuscale.Observer {
	if !o.Enabled() {
		return nil
	}
	var opts []gpuscale.ObserverOption
	if o.SampleEvery > 0 {
		opts = append(opts, gpuscale.ObserverSampleEvery(o.SampleEvery))
	}
	return gpuscale.NewObserver(opts...)
}

// WriteOutputs writes whichever outputs the flags requested from rec. It is
// a no-op when rec is nil or no output was requested.
func (o *ObsFlags) WriteOutputs(rec *gpuscale.Observer) error {
	if rec == nil {
		return nil
	}
	if o.TraceOut != "" {
		if err := writeFile(o.TraceOut, func(f *os.File) error {
			if strings.HasSuffix(o.TraceOut, ".jsonl") {
				return rec.WriteJSONL(f)
			}
			return rec.WriteTrace(f)
		}); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	if o.MetricsOut != "" {
		if err := writeFile(o.MetricsOut, func(f *os.File) error {
			return rec.WriteMetrics(f)
		}); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}

// ProfileFlags carries the shared host-profiling flags. Register with
// Profile, then call Start after flag parsing and defer the returned stop
// function — it finishes the CPU profile and snapshots the allocation
// profile. Error exits through os.Exit skip deferred stops, so profiles are
// complete only on successful runs; that is fine for a profiling aid.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
}

// Profile registers -cpuprofile and -memprofile on fs.
func Profile(fs *flag.FlagSet) *ProfileFlags {
	p := &ProfileFlags{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of this command to the file")
	fs.StringVar(&p.MemProfile, "memprofile", "",
		"write a pprof allocation profile of this command to the file on exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given and returns the
// function that stops it and writes the -memprofile snapshot. The returned
// stop is never nil, so callers can defer it unconditionally.
func (p *ProfileFlags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpu profile:", err)
			}
		}
		if p.MemProfile != "" {
			if err := writeFile(p.MemProfile, func(f *os.File) error {
				runtime.GC() // settle live-heap numbers before the snapshot
				return pprof.Lookup("allocs").WriteTo(f, 0)
			}); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

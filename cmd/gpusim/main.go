// Command gpusim runs one GPU timing simulation: a benchmark from the
// paper's suite on a chosen system size, printing the statistics the
// scale-model methodology consumes (IPC, f_mem, MPKI, utilisations).
//
// Usage:
//
//	gpusim -bench dct -sms 16
//	gpusim -bench bfs -weak -sms 32
//	gpusim -bench va -weak -chiplets 8
//	gpusim -bench dct -sms 16 -trace-out dct.trace.json -metrics-out dct.json
//	gpusim -bench dct -sms 16 -tier analytic
//	gpusim -list
//
// The flags assemble a canonical service request (gpuscale.Request — the
// same wire schema cmd/predict and the gpuscaled daemon speak), so every
// run prints its canonical request hash: POSTing the equivalent JSON to a
// daemon's /v1/simulate returns the same simulation from the same cache
// key. Host-side execution knobs (-shards, -quantum, -tier, observability,
// profiling) are not part of the canonical request and never change the
// hash.
//
// -tier analytic answers from the microsecond-scale analytical model
// (docs/ANALYTIC.md) instead of simulating; -tier auto does the same but
// falls back to the cycle simulator when the model's confidence is below
// gpuscale.DefaultConfidenceThreshold.
//
// The observability flags are shared with paperbench (see cmd/internal/
// cliutil): -trace-out writes a Chrome trace_event file loadable in
// chrome://tracing or https://ui.perfetto.dev (a .jsonl extension selects
// JSON Lines), -metrics-out dumps the per-component metrics registry and
// interval samples as JSON, and -sample-every tunes the sampling cadence in
// simulated cycles. -quiet suppresses the statistics block, which is useful
// when only the observability outputs are wanted.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gpuscale"
	"gpuscale/cmd/internal/cliutil"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark abbreviation (see -list)")
		sms      = flag.Int("sms", 16, "number of SMs (monolithic GPU)")
		chiplets = flag.Int("chiplets", 0, "simulate an MCM GPU with this many chiplets instead")
		shards   = flag.Int("shards", 0, "run the simulation on this many parallel shard goroutines (bit-identical results; 0/1 = sequential)")
		quantum  = flag.Int("quantum", 0, "relax the sharded barrier to at most this many cycles per safe window (bit-identical results; needs -shards > 1)")
		weak     = flag.Bool("weak", false, "use the weak-scaling variant (input scales with size)")
		uarchStr = flag.String("uarch", "", "microarchitecture variant, e.g. \"two-level,sectored,deflect,iw=2\" (empty = Table III baseline; part of the request hash)")
		tier     = flag.String("tier", "cycle", "latency tier: cycle simulates; analytic answers from the microsecond model; auto answers analytically unless confidence is low")
		warmup   = flag.Uint64("warmup", 0, "discard statistics until this many instructions have issued (monolithic GPU only)")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		quiet    = cliutil.Quiet(flag.CommandLine)
		obsFlags = cliutil.Obs(flag.CommandLine)
		prof     = cliutil.Profile(flag.CommandLine)
	)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	if *list {
		fmt.Println("strong-scaling benchmarks (Table II):")
		for _, b := range gpuscale.Benchmarks() {
			fmt.Printf("  %-6s %-28s %-9s %s\n", b.Name, b.FullName, b.Suite, b.Class)
		}
		fmt.Println("weak-scaling families (Table IV):")
		for _, w := range gpuscale.WeakBenchmarks() {
			fmt.Printf("  %-6s %s\n", w.Name, w.Class)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "gpusim: -bench is required (try -list)")
		os.Exit(2)
	}
	if *quantum > 0 && *shards <= 1 {
		fmt.Fprintln(os.Stderr, "gpusim: -quantum has no effect without -shards > 1")
	}

	req := gpuscale.Request{
		Op:       gpuscale.OpSimulate,
		Workload: gpuscale.WorkloadSpec{Bench: *bench, Weak: *weak},
		Options: gpuscale.RequestOptions{
			WarmupInstructions: *warmup,
			Shards:             *shards,
			Quantum:            *quantum,
		},
	}
	if *uarchStr != "" {
		v, err := gpuscale.ParseUarch(*uarchStr)
		if err != nil {
			fatal(err)
		}
		req.Options.Uarch = &v
	}
	if *chiplets > 0 {
		req.Target.Chiplets = *chiplets
	} else {
		req.Target.SMs = *sms
	}
	_, hash, err := gpuscale.Canonicalize(req)
	if err != nil {
		fatal(err)
	}
	tgt, err := req.ResolveSimulation()
	if err != nil {
		fatal(err)
	}

	// The tier is a host-side knob like -shards: it selects how this
	// process produces the numbers and is not part of the canonical
	// request (simulate requests have no wire tier — only predict does).
	switch *tier {
	case "", gpuscale.TierCycle:
	case gpuscale.TierAnalytic, gpuscale.TierAuto:
		var est gpuscale.AnalyticEstimate
		if tgt.MCM != nil {
			mcm := *tgt.MCM
			if req.Options.Uarch != nil {
				// The resolved target threads the variant through simulation
				// options; the analytic model reads it from the config, so the
				// structural confidence discount needs it there too.
				mcm.Chiplet.Uarch = *req.Options.Uarch
			}
			est, err = gpuscale.AnalyzeMCMCell(mcm, tgt.Workload)
		} else {
			sys := *tgt.System
			if req.Options.Uarch != nil {
				sys.Uarch = *req.Options.Uarch
			}
			est, err = gpuscale.AnalyzeCell(sys, tgt.Workload)
		}
		if err != nil {
			fatal(err)
		}
		if *tier == gpuscale.TierAnalytic || est.Confidence >= gpuscale.DefaultConfidenceThreshold {
			if !*quiet {
				printAnalytic(tgt, hash, est)
			}
			return
		}
		if !*quiet {
			fmt.Printf("analytic confidence %.2f below %.2f; escalating to the cycle simulator\n",
				est.Confidence, gpuscale.DefaultConfidenceThreshold)
		}
	default:
		fatal(fmt.Errorf("unknown tier %q (want cycle, analytic or auto)", *tier))
	}

	ctx := context.Background()
	observer := obsFlags.Observer()
	opts := append(tgt.Options,
		gpuscale.WithObserver(observer),
		gpuscale.WithSampleInterval(obsFlags.SampleEvery),
	)

	if tgt.MCM != nil {
		st, err := gpuscale.SimulateMCMContext(ctx, *tgt.MCM, tgt.Workload, opts...)
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("config:        %s (%d SMs total)\n", tgt.MCM.Name, tgt.MCM.TotalSMs())
			fmt.Printf("workload:      %s\n", tgt.Workload.Name())
			fmt.Printf("request:       %s\n", hash)
			fmt.Printf("cycles:        %d\n", st.Cycles)
			fmt.Printf("instructions:  %d\n", st.Instructions)
			fmt.Printf("IPC:           %.2f\n", st.IPC)
			fmt.Printf("f_mem:         %.3f\n", st.FMem)
			fmt.Printf("LLC MPKI:      %.2f\n", st.LLCMPKI)
			fmt.Printf("remote frac:   %.3f\n", st.RemoteFraction)
			fmt.Printf("CTAs:          %d\n", st.CTAs)
		}
		if err := obsFlags.WriteOutputs(observer); err != nil {
			fatal(err)
		}
		return
	}

	cfg := *tgt.System
	st, err := gpuscale.SimulateContext(ctx, cfg, tgt.Workload, opts...)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("config:        %s\n", cfg.Name)
		fmt.Printf("workload:      %s\n", tgt.Workload.Name())
		fmt.Printf("request:       %s\n", hash)
		fmt.Printf("cycles:        %d\n", st.Cycles)
		fmt.Printf("instructions:  %d\n", st.Instructions)
		fmt.Printf("IPC:           %.2f  (%.3f per SM)\n", st.IPC, st.IPC/float64(cfg.NumSMs))
		fmt.Printf("f_mem:         %.3f\n", st.FMem)
		fmt.Printf("L1 miss rate:  %.3f  (%d misses / %d accesses)\n", st.L1MissRate, st.L1Misses, st.L1Accesses)
		fmt.Printf("LLC MPKI:      %.2f  (%d misses / %d accesses)\n", st.LLCMPKI, st.LLCMisses, st.LLCAccesses)
		fmt.Printf("avg load lat:  %.0f cycles\n", st.AvgLoadLatency)
		fmt.Printf("NoC util:      %.2f  (%d bytes)\n", st.NoCUtilization, st.NoCBytes)
		fmt.Printf("DRAM util:     %.2f  (%d bytes)\n", st.DRAMUtilization, st.DRAMBytes)
		fmt.Printf("CTAs:          %d\n", st.CTAs)
	}
	if err := obsFlags.WriteOutputs(observer); err != nil {
		fatal(err)
	}
}

// printAnalytic renders an analytic-tier estimate in the same layout as
// the simulated statistics block.
func printAnalytic(tgt gpuscale.SimTarget, hash string, est gpuscale.AnalyticEstimate) {
	if tgt.MCM != nil {
		fmt.Printf("config:        %s (%d SMs total)\n", tgt.MCM.Name, tgt.MCM.TotalSMs())
	} else {
		fmt.Printf("config:        %s\n", tgt.System.Name)
	}
	fmt.Printf("workload:      %s\n", tgt.Workload.Name())
	fmt.Printf("request:       %s\n", hash)
	fmt.Printf("tier:          analytic (confidence %.2f)\n", est.Confidence)
	fmt.Printf("cycles:        %.0f (estimated)\n", est.Cycles)
	fmt.Printf("instructions:  %.0f\n", est.Instructions)
	fmt.Printf("IPC:           %.2f\n", est.IPC)
	fmt.Printf("f_mem:         %.3f\n", est.FMem)
	fmt.Printf("LLC MPKI:      %.2f\n", est.LLCMPKI)
	if tgt.MCM != nil {
		fmt.Printf("remote frac:   %.3f\n", est.RemoteFraction)
	} else {
		fmt.Printf("L1 miss rate:  %.3f\n", est.L1MissRate)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gpusim:", err)
	os.Exit(1)
}

// Command benchcheck guards the simulator's host-side performance: it
// re-runs the hot-path benchmark harness (BenchmarkSimulatorHotPath, GPU
// and MCM cells) and fails if any cell's simulated-megacycles-per-second
// throughput regressed by more than the tolerance against the committed
// BENCH_hotpath.json.
//
// Usage:
//
//	benchcheck                        # compare against ./BENCH_hotpath.json
//	benchcheck -tolerance 0.1        # tighten to 10%
//	benchcheck -benchtime 2x         # average over more runs
//
// The tolerance is deliberately loose (20% by default): the committed
// numbers come from one reference machine, and the guard is meant to catch
// order-of-magnitude hot-path regressions (an accidentally quadratic loop,
// a lost fast path, allocations back on the steady-state path), not to
// compare hardware. Run it on an otherwise idle machine; `make bench-check`
// wires it up, and CI runs it as a separate non-blocking job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// benchFile mirrors the parts of BENCH_hotpath.json the check consumes.
type benchFile struct {
	Results map[string]struct {
		SimMcyclesPerSec float64 `json:"sim_mcycles_per_sec"`
	} `json:"results"`
}

func readBench(path string) (benchFile, error) {
	var f benchFile
	buf, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		return f, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(f.Results) == 0 {
		return f, fmt.Errorf("%s has no results", path)
	}
	return f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json", "committed benchmark summary to compare against")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional throughput loss per cell before failing")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime for the fresh run")
	pkg := flag.String("pkg", "./internal/gpu/", "package holding the hot-path benchmarks")
	flag.Parse()

	baseline, err := readBench(*baselinePath)
	if err != nil {
		fatalf("benchcheck: baseline: %v", err)
	}

	tmp, err := os.MkdirTemp("", "benchcheck")
	if err != nil {
		fatalf("benchcheck: %v", err)
	}
	defer os.RemoveAll(tmp)
	freshPath := filepath.Join(tmp, "fresh.json")

	cmd := exec.Command("go", "test", "-run", "XXX",
		"-bench", "BenchmarkSimulatorHotPath", "-benchtime", *benchtime, *pkg)
	cmd.Env = append(os.Environ(), "BENCH_HOTPATH_JSON="+freshPath)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	fmt.Printf("benchcheck: running %v\n", cmd.Args)
	if err := cmd.Run(); err != nil {
		fatalf("benchcheck: benchmark run failed: %v", err)
	}

	fresh, err := readBench(freshPath)
	if err != nil {
		fatalf("benchcheck: fresh run: %v", err)
	}

	cells := make([]string, 0, len(baseline.Results))
	for name := range baseline.Results {
		cells = append(cells, name)
	}
	sort.Strings(cells)

	failed := false
	for _, name := range cells {
		base := baseline.Results[name].SimMcyclesPerSec
		got, ok := fresh.Results[name]
		switch {
		case !ok:
			fmt.Printf("FAIL %-18s missing from fresh run (baseline stale? regenerate with `make bench`)\n", name)
			failed = true
		case base <= 0:
			fmt.Printf("skip %-18s baseline has no throughput\n", name)
		default:
			ratio := got.SimMcyclesPerSec / base
			status := "ok  "
			if ratio < 1-*tolerance {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-18s %8.4f simMcyc/s vs %8.4f baseline (%+.1f%%)\n",
				status, name, got.SimMcyclesPerSec, base, (ratio-1)*100)
		}
	}
	if failed {
		fatalf("benchcheck: hot-path throughput regressed more than %.0f%% (or cells went missing)", *tolerance*100)
	}
	fmt.Println("benchcheck: ok")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

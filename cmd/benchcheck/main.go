// Command benchcheck guards the simulator's host-side performance: it
// re-runs the hot-path benchmark harness (BenchmarkSimulatorHotPath, GPU
// and MCM cells) and fails if any cell's simulated-megacycles-per-second
// throughput regressed by more than the tolerance against the committed
// BENCH_hotpath.json. It also re-runs BenchmarkAnalyticPredict and fails
// if the analytic tier's speedup over the cycle pipeline falls below the
// -analytic-floor (100x by default) on any committed cell.
//
// Usage:
//
//	benchcheck                        # compare against ./BENCH_hotpath.json
//	benchcheck -tolerance 0.1        # tighten to 10%
//	benchcheck -benchtime 2x         # average over more runs
//
// The tolerance is deliberately loose (20% by default) and each cell is
// compared on its best throughput across -runs fresh runs (3 by default):
// the committed numbers come from one reference machine, and the guard is
// meant to catch order-of-magnitude hot-path regressions (an accidentally
// quadratic loop, a lost fast path, allocations back on the steady-state
// path), not to compare hardware. A real regression slows every run; a
// background load spike slows one, and best-of-N shrugs it off, which
// matters on shared CI runners. `make bench-check` wires it up, and CI
// runs it as a separate non-blocking job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// benchFile mirrors the parts of BENCH_hotpath.json the check consumes.
type benchFile struct {
	// HostCores is the core count of the machine that produced the file.
	// The sharded/quantum speedup columns only mean "speedup" when both
	// the baseline machine and the current one have cores for the shard
	// goroutines to run on; on a single-core host they measure barrier
	// overhead and are skipped.
	HostCores int `json:"host_cores"`
	Results   map[string]struct {
		SimMcyclesPerSec float64 `json:"sim_mcycles_per_sec"`
	} `json:"results"`
	Sharded map[string]float64 `json:"sharded_vs_sequential"`
	Quantum map[string]float64 `json:"quantum_vs_sequential"`
	// Analytic is the analytic_vs_cycle column: per benchmark, the wall
	//-clock speedup of the analytic prediction tier over the cycle
	// pipeline on the same request. Judged against an absolute floor
	// (-analytic-floor), not the relative tolerance: the tier's contract
	// is "at least 100x", and the measured ratios sit orders of magnitude
	// above it on any machine.
	Analytic map[string]float64 `json:"analytic_vs_cycle"`
}

func readBench(path string) (benchFile, error) {
	var f benchFile
	buf, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		return f, fmt.Errorf("parsing %s: %w", path, err)
	}
	return f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json", "committed benchmark summary to compare against")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional throughput loss per cell before failing")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime for each fresh run")
	runs := flag.Int("runs", 3, "fresh benchmark runs; each cell is judged on its best run")
	pkg := flag.String("pkg", "./internal/gpu/", "package holding the hot-path benchmarks")
	analyticFloor := flag.Float64("analytic-floor", 100, "minimum analytic_vs_cycle speedup per cell (0 skips the analytic check)")
	analyticPkg := flag.String("analytic-pkg", ".", "package holding BenchmarkAnalyticPredict")
	flag.Parse()
	if *runs < 1 {
		fatalf("benchcheck: -runs must be at least 1")
	}

	baseline, err := readBench(*baselinePath)
	if err != nil {
		fatalf("benchcheck: baseline: %v", err)
	}
	if len(baseline.Results) == 0 {
		fatalf("benchcheck: baseline: %s has no results", *baselinePath)
	}

	tmp, err := os.MkdirTemp("", "benchcheck")
	if err != nil {
		fatalf("benchcheck: %v", err)
	}
	defer os.RemoveAll(tmp)

	// best[cell] is the highest throughput seen for the cell across runs:
	// the least load-disturbed measurement, and the one each cell is
	// judged on.
	best := map[string]float64{}
	for run := 0; run < *runs; run++ {
		freshPath := filepath.Join(tmp, fmt.Sprintf("fresh%d.json", run))
		cmd := exec.Command("go", "test", "-run", "XXX",
			"-bench", "BenchmarkSimulatorHotPath", "-benchtime", *benchtime, *pkg)
		cmd.Env = append(os.Environ(), "BENCH_HOTPATH_JSON="+freshPath)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		fmt.Printf("benchcheck: run %d/%d: %v\n", run+1, *runs, cmd.Args)
		if err := cmd.Run(); err != nil {
			fatalf("benchcheck: benchmark run failed: %v", err)
		}
		fresh, err := readBench(freshPath)
		if err != nil {
			fatalf("benchcheck: fresh run: %v", err)
		}
		for name, r := range fresh.Results {
			if r.SimMcyclesPerSec > best[name] {
				best[name] = r.SimMcyclesPerSec
			}
		}
	}

	cells := make([]string, 0, len(baseline.Results))
	for name := range baseline.Results {
		cells = append(cells, name)
	}
	sort.Strings(cells)

	failed := false
	for _, name := range cells {
		base := baseline.Results[name].SimMcyclesPerSec
		got, ok := best[name]
		switch {
		case !ok:
			fmt.Printf("FAIL %-18s missing from fresh runs (baseline stale? regenerate with `make bench`)\n", name)
			failed = true
		case base <= 0:
			fmt.Printf("skip %-18s baseline has no throughput\n", name)
		default:
			ratio := got / base
			status := "ok  "
			if ratio < 1-*tolerance {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-18s %8.4f simMcyc/s (best of %d) vs %8.4f baseline (%+.1f%%)\n",
				status, name, got, *runs, base, (ratio-1)*100)
		}
	}
	// Sharded/quantum speedup columns: judged like the cells (fresh ratio
	// vs baseline ratio, same tolerance) — but only on multi-core hosts.
	// With one core the shard goroutines serialise, the ratio measures
	// barrier-protocol overhead rather than speedup, and judging it would
	// make single-core CI runners trip on a number that cannot improve.
	singleCore := baseline.HostCores == 1 || runtime.NumCPU() == 1
	for _, col := range []struct {
		name   string
		suffix string
		base   map[string]float64
	}{
		{"sharded_vs_sequential", "/sharded", baseline.Sharded},
		{"quantum_vs_sequential", "/quantum", baseline.Quantum},
	} {
		if len(col.base) == 0 {
			continue
		}
		if singleCore {
			fmt.Printf("skip %-22s single-core host (baseline host_cores=%d, this host %d cores): column measures barrier overhead, not speedup\n",
				col.name, baseline.HostCores, runtime.NumCPU())
			continue
		}
		names := make([]string, 0, len(col.base))
		for name := range col.base {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			want := col.base[name]
			ev, sh := best[name+"/event"], best[name+col.suffix]
			if want <= 0 || ev <= 0 || sh <= 0 {
				fmt.Printf("skip %-22s %s: missing cells for a fresh ratio\n", col.name, name)
				continue
			}
			got := sh / ev
			status := "ok  "
			if got < want*(1-*tolerance) {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-22s %-10s %6.2fx vs %6.2fx baseline\n", status, col.name, name, got, want)
		}
	}

	// Analytic tier: one fresh run of BenchmarkAnalyticPredict (each cell
	// times the full cycle pipeline once, so best-of-N would be slow for
	// no benefit — the measured ratios are ~10^4, judged against a 10^2
	// floor that a load spike cannot cross).
	if *analyticFloor > 0 && len(baseline.Analytic) > 0 {
		freshPath := filepath.Join(tmp, "analytic.json")
		cmd := exec.Command("go", "test", "-run", "XXX",
			"-bench", "BenchmarkAnalyticPredict", "-benchtime", "1x", *analyticPkg)
		cmd.Env = append(os.Environ(), "BENCH_HOTPATH_JSON="+freshPath)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		fmt.Printf("benchcheck: analytic run: %v\n", cmd.Args)
		if err := cmd.Run(); err != nil {
			fatalf("benchcheck: analytic benchmark run failed: %v", err)
		}
		fresh, err := readBench(freshPath)
		if err != nil {
			fatalf("benchcheck: analytic run: %v", err)
		}
		names := make([]string, 0, len(baseline.Analytic))
		for name := range baseline.Analytic {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			got, ok := fresh.Analytic[name]
			switch {
			case !ok:
				fmt.Printf("FAIL analytic_vs_cycle      %-10s missing from fresh run (baseline stale? regenerate with `make bench`)\n", name)
				failed = true
			case got < *analyticFloor:
				fmt.Printf("FAIL analytic_vs_cycle      %-10s %8.0fx below the %.0fx floor\n", name, got, *analyticFloor)
				failed = true
			default:
				fmt.Printf("ok   analytic_vs_cycle      %-10s %8.0fx (floor %.0fx, baseline %.0fx)\n", name, got, *analyticFloor, baseline.Analytic[name])
			}
		}
	}

	if failed {
		fatalf("benchcheck: hot-path throughput regressed more than %.0f%% (or cells went missing, or the analytic tier fell below its floor)", *tolerance*100)
	}
	fmt.Println("benchcheck: ok")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

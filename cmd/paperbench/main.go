// Command paperbench regenerates the paper's tables and figures end to end
// on this repo's simulator. Each experiment maps to one flag value; see
// DESIGN.md for the experiment index.
//
// Usage:
//
//	paperbench -exp table1          # scale-model configurations
//	paperbench -exp fig1            # scaling behaviour (dct, bfs, pf)
//	paperbench -exp fig2            # miss-rate curves (dct, bfs, pf)
//	paperbench -exp table2          # workload characteristics
//	paperbench -exp table3          # 128-SM baseline
//	paperbench -exp fig4a|fig4b     # strong-scaling prediction error
//	paperbench -exp fig5            # predicted-vs-real scaling curves
//	paperbench -exp table4          # weak-scaling configurations
//	paperbench -exp fig6            # weak-scaling prediction error
//	paperbench -exp fig7            # weak-scaling simulation speedup
//	paperbench -exp table5          # 16-chiplet target configuration
//	paperbench -exp fig8            # multi-chiplet prediction error
//	paperbench -exp artifact        # alternate 16/32-SM scale models
//	paperbench -exp all             # everything (slow: full sweeps)
//	paperbench -exp all -parallel 8 # fan the simulation grid over 8 cores
//
// Heavy experiments share one in-process cache, so "-exp all" costs little
// more than the union of its parts. The sweeps behind the heavy experiments
// fan their independent (workload, configuration) cells across -parallel
// workers (default: all CPUs); results are bit-identical at any setting,
// and live progress (jobs done, simulated cycles/sec, ETA) is reported on
// stderr. -shards parallelises *within* each simulation instead (per-SM-
// group shard runners on the monolithic simulator, per-chiplet-group on
// the MCM one, see docs/PARALLELISM.md), and -quantum relaxes the sharded
// barrier cadence — both bit-identical at any setting, and composable
// with -parallel.
//
// The shared observability flags (see cmd/internal/cliutil) attach one
// recorder to every simulation the selected experiments run: -trace-out
// writes a Chrome trace_event file with one named stream per (config,
// workload) pair, -metrics-out dumps the metrics registry, and
// -sample-every tunes the sampling cadence. Memoisation means a simulation
// appears in the trace only the first time an experiment needs it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gpuscale"
	"gpuscale/cmd/internal/cliutil"
	"gpuscale/internal/engine"
	"gpuscale/internal/harness"
	"gpuscale/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (table1..table5, fig1..fig8, artifact, all)")
	csvDir := flag.String("csv", "", "also export raw results as CSV files into this directory")
	shards := flag.Int("shards", 0, "run each simulation on this many parallel shard goroutines (bit-identical results; 0/1 = sequential)")
	quantum := flag.Int("quantum", 0, "relax the sharded barrier to at most this many cycles per safe window (bit-identical results; needs -shards > 1)")
	uarchStr := flag.String("uarch", "", "regenerate everything under this microarchitecture variant, e.g. \"two-level,sectored,deflect,iw=2\" (empty = Table III baseline; CHANGES results)")
	parallel := cliutil.Parallel(flag.CommandLine)
	quiet := cliutil.Quiet(flag.CommandLine)
	obsFlags := cliutil.Obs(flag.CommandLine)
	prof := cliutil.Profile(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	defer stopProf()
	observer := obsFlags.Observer()
	hopts := []harness.Option{
		harness.WithParallel(*parallel),
		harness.WithShards(*shards),
		harness.WithQuantum(*quantum),
		harness.WithObserver(observer),
	}
	if *uarchStr != "" {
		v, err := gpuscale.ParseUarch(*uarchStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(2)
		}
		// One variant per process: the harness memoises by (config,
		// workload) name, so the variant is fixed at construction.
		hopts = append(hopts, harness.WithUarch(v))
	}
	if !*quiet {
		hopts = append(hopts, harness.WithProgress(progressLine))
	}
	h := harness.New(hopts...)
	run := func(name string, f func(*harness.Harness) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n================ %s ================\n", name)
		if err := f(h); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("table1", table1)
	run("fig1", fig1)
	run("fig2", fig2)
	run("table2", table2)
	run("table3", table3)
	run("fig4a", func(h *harness.Harness) error { return fig4(h, 128) })
	run("fig4b", func(h *harness.Harness) error { return fig4(h, 64) })
	run("fig5", fig5)
	run("table4", table4)
	run("fig6", fig6)
	run("fig7", fig7)
	run("table5", table5)
	run("fig8", fig8)
	run("artifact", artifact)
	if *csvDir != "" {
		if err := exportCSV(h, *csvDir, *exp); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench: csv export:", err)
			os.Exit(1)
		}
	}
	if err := obsFlags.WriteOutputs(observer); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// progressLine renders sweep progress as a carriage-return-overwritten
// stderr line, finishing with a newline so the experiment output that
// follows starts clean.
func progressLine(p engine.Progress) {
	fmt.Fprintf(os.Stderr, "\r[%d/%d] %.1fM simulated cycles/s, ETA %v    ",
		p.Done, p.Total, p.CyclesPerSec/1e6, p.ETA.Round(1e9))
	if p.Done == p.Total {
		fmt.Fprintln(os.Stderr)
	}
}

// exportCSV writes the raw strong/weak results behind the requested
// experiments as CSV files for external plotting.
func exportCSV(h *harness.Harness, dir, exp string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(*os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, name))
		return nil
	}
	wantStrong := exp == "all" || exp == "fig4a" || exp == "fig4b" || exp == "fig5" || exp == "fig2"
	wantWeak := exp == "all" || exp == "fig6" || exp == "fig7"
	if wantStrong {
		results, err := h.RunStrongAll()
		if err != nil {
			return err
		}
		if err := write("strong_scaling.csv", func(f *os.File) error {
			return harness.WriteStrongCSV(f, results)
		}); err != nil {
			return err
		}
		if err := write("miss_rate_curves.csv", func(f *os.File) error {
			return harness.WriteMissCurvesCSV(f, results)
		}); err != nil {
			return err
		}
	}
	if wantWeak {
		results, err := h.RunWeakAll()
		if err != nil {
			return err
		}
		if err := write("weak_scaling.csv", func(f *os.File) error {
			return harness.WriteWeakCSV(f, results)
		}); err != nil {
			return err
		}
	}
	return nil
}

func table1(h *harness.Harness) error {
	fmt.Println("Scale models via proportional resource scaling (Table I)")
	headers := []string{"#SMs", "LLC", "slices", "NoC bisection", "mem BW", "MCs"}
	var rows [][]string
	cfgs := gpuscale.StandardConfigs()
	for i := len(cfgs) - 1; i >= 0; i-- {
		c := cfgs[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.NumSMs),
			fmt.Sprintf("%.3f MiB", float64(c.LLCSizeBytes)/(1<<20)),
			fmt.Sprintf("%d", c.LLCSlices),
			fmt.Sprintf("%.1f GB/s", c.NoCBisectionGBps),
			fmt.Sprintf("%.1f GB/s", c.TotalMemBWGBps()),
			fmt.Sprintf("%d", c.MemControllers),
		})
	}
	fmt.Print(harness.RenderTable(headers, rows))
	return nil
}

func fig1(h *harness.Harness) error {
	fmt.Println("Performance vs system size under strong scaling (Figure 1)")
	for _, name := range []string{"dct", "bfs", "pf"} {
		b, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		r, err := h.RunStrong(b)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (%s):\n  SMs   IPC      linear-scaling reference\n", b.Name, b.Class)
		ref := r.Real[8].IPC / 8
		for _, n := range r.Sizes {
			fmt.Printf("  %-5d %-8.1f %.1f\n", n, r.Real[n].IPC, ref*float64(n))
		}
	}
	return nil
}

func fig2(h *harness.Harness) error {
	fmt.Println("Miss-rate curves (Figure 2)")
	for _, name := range []string{"dct", "bfs", "pf"} {
		b, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		r, err := h.RunStrong(b)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(harness.RenderMissRateCurve(r))
	}
	return nil
}

func table2(h *harness.Harness) error {
	fmt.Println("Strong-scaling benchmarks (Table II)")
	headers := []string{"bench", "full name", "suite", "CTA sizes", "paper MB", "paper Minsns", "class"}
	var rows [][]string
	for _, b := range gpuscale.Benchmarks() {
		rows = append(rows, []string{
			b.Name, b.FullName, b.Suite, b.PaperCTASizes,
			fmt.Sprintf("%.1f", b.PaperFootprintMB),
			fmt.Sprintf("%.0f", b.PaperInsnsM),
			string(b.Class),
		})
	}
	fmt.Print(harness.RenderTable(headers, rows))
	return nil
}

func table3(h *harness.Harness) error {
	c := gpuscale.Baseline128()
	fmt.Println("Baseline 128-SM target system (Table III)")
	fmt.Printf("  SM clock:        %.1f GHz\n", c.ClockGHz)
	fmt.Printf("  threads per SM:  %d warps x %d threads = %d\n",
		c.WarpsPerSM, c.ThreadsPerWarp, c.MaxThreadsPerSM())
	fmt.Printf("  L1 per SM:       %d KB, %d-way, %d MSHRs\n",
		c.L1SizeBytes/1024, c.L1Ways, c.L1MSHRs)
	fmt.Printf("  LLC:             %.0f MB total, %d slices, %d-way\n",
		float64(c.LLCSizeBytes)/(1<<20), c.LLCSlices, c.LLCWays)
	fmt.Printf("  DRAM bandwidth:  %.2f TB/s (%d MCs)\n", c.TotalMemBWGBps()/1000, c.MemControllers)
	fmt.Printf("  NoC:             crossbar, %.1f TB/s bisection\n", c.NoCBisectionGBps/1000)
	return nil
}

func fig4(h *harness.Harness, target int) error {
	results, err := h.RunStrongAll()
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderErrorTable(results, target))
	return nil
}

func fig5(h *harness.Harness) error {
	fmt.Println("Predicted vs real IPC for select benchmarks (Figure 5)")
	for _, name := range []string{"dct", "fwt", "as", "lu", "bfs", "gr", "sr", "btree", "pf", "ht", "at", "gemm"} {
		b, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		r, err := h.RunStrong(b)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(harness.RenderScalingCurves(r))
	}
	return nil
}

func table4(h *harness.Harness) error {
	fmt.Println("Weak-scaling configurations (Table IV)")
	headers := []string{"bench", "class", "MCM", "CTAs@8SM", "CTAs@128SM"}
	var rows [][]string
	for _, wb := range gpuscale.WeakBenchmarks() {
		mcm := ""
		if wb.MCM {
			mcm = "yes"
		}
		rows = append(rows, []string{
			wb.Name, string(wb.Class), mcm,
			fmt.Sprintf("%d", wb.CTAsAt(8)),
			fmt.Sprintf("%d", wb.CTAsAt(128)),
		})
	}
	fmt.Print(harness.RenderTable(headers, rows))
	return nil
}

func fig6(h *harness.Harness) error {
	results, err := h.RunWeakAll()
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderWeakErrorTable(results))
	return nil
}

func fig7(h *harness.Harness) error {
	results, err := h.RunWeakAll()
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderSpeedupTable(results))
	return nil
}

func table5(h *harness.Harness) error {
	c := gpuscale.Target16Chiplet()
	fmt.Println("Simulated 16-chiplet target system (Table V)")
	fmt.Printf("  SMs/chiplet:       %d (%d total)\n", c.Chiplet.NumSMs, c.TotalSMs())
	fmt.Printf("  SM clock:          %.1f GHz\n", c.Chiplet.ClockGHz)
	fmt.Printf("  LLC:               %.0f MB per chiplet, %d slices\n",
		float64(c.Chiplet.LLCSizeBytes)/(1<<20), c.Chiplet.LLCSlices)
	fmt.Printf("  intra-chiplet NoC: %.1f TB/s crossbar\n", c.Chiplet.NoCBisectionGBps/1000)
	fmt.Printf("  inter-chiplet NoC: %.0f GB/s per chiplet\n", c.InterChipletGBpsPerChiplet)
	fmt.Printf("  memory:            %d MCs, %.1f TB/s per chiplet\n",
		c.Chiplet.MemControllers, c.Chiplet.TotalMemBWGBps()/1000)
	fmt.Printf("  page allocation:   first-touch, %d KB pages\n", c.PageSize/1024)
	fmt.Printf("  CTA scheduling:    distributed\n")
	return nil
}

func fig8(h *harness.Harness) error {
	results, err := h.RunChipletAll()
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderChipletTable(results))
	return nil
}

func artifact(h *harness.Harness) error {
	fmt.Println("Alternate scale models: 16+32 SMs predicting 64/128 SMs (artifact appendix E.2)")
	var results []*harness.StrongResult
	for _, b := range gpuscale.Benchmarks() {
		r, err := h.RunStrongAlt(b)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	fmt.Print(harness.RenderErrorTable(results, 128))
	fmt.Println()
	fmt.Print(harness.RenderErrorTable(results, 64))
	return nil
}

// Command mrc prints a benchmark's LLC miss-rate curve: misses per thousand
// instructions as a function of LLC capacity across the paper's five system
// configurations (the input to strong-scaling prediction).
//
// Usage:
//
//	mrc -bench dct
//	mrc -bench dct -method stack
//	mrc -bench dct -parallel 4      # fan the five replays across 4 workers
//
// The -parallel flag (default: all CPUs) fans the per-configuration cache
// replays of the functional method across a worker pool; the curve is
// identical at any setting. The stack method is a single pass by nature and
// ignores the flag.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuscale"
	"gpuscale/cmd/internal/cliutil"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark abbreviation")
		method = flag.String("method", "functional",
			"curve method: functional (cache sweep, matches the simulator) or stack (single-pass reuse distance, fully associative)")
		parallel = cliutil.Parallel(flag.CommandLine)
	)
	flag.Parse()
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "mrc: -bench is required")
		os.Exit(2)
	}
	b, err := gpuscale.BenchmarkByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrc:", err)
		os.Exit(1)
	}
	cfgs := gpuscale.StandardConfigs()
	var curve gpuscale.Curve
	switch *method {
	case "functional":
		curve, err = gpuscale.MissRateCurveParallel(b.Workload, cfgs, *parallel)
	case "stack":
		caps := make([]int64, len(cfgs))
		for i, c := range cfgs {
			caps[i] = c.LLCSizeBytes
		}
		curve, err = gpuscale.StackDistanceCurve(b.Workload, cfgs[0].LineSize, caps)
	default:
		fmt.Fprintf(os.Stderr, "mrc: unknown method %q\n", *method)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrc:", err)
		os.Exit(1)
	}
	fmt.Printf("%s miss-rate curve (%s)\n", b.Name, *method)
	fmt.Printf("%-12s %s\n", "LLC (MiB)", "MPKI")
	for _, p := range curve.Points {
		fmt.Printf("%-12.3f %.2f\n", float64(p.CapacityBytes)/(1<<20), p.MPKI)
	}
	if i, ok := gpuscale.DetectCliff(curve.MPKIs(), 0, 0); ok {
		fmt.Printf("cliff detected between %.3f and %.3f MiB\n",
			float64(curve.Points[i].CapacityBytes)/(1<<20),
			float64(curve.Points[i+1].CapacityBytes)/(1<<20))
	} else {
		fmt.Println("no cliff detected")
	}
}

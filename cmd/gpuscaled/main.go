// Command gpuscaled is the scale-model prediction daemon: a long-running
// HTTP/JSON service over the gpuscale simulator and predictor. It serves
//
//	POST /v1/predict   scale-model prediction pipeline (the paper's product)
//	POST /v1/simulate  one timing simulation
//	POST /v1/mrc       a miss-rate curve
//	GET  /metrics      Prometheus metrics
//	GET  /healthz      liveness
//
// against the canonical request schema (gpuscale.Request; docs/SERVICE.md).
// Responses are cached by canonical request hash in a two-level store —
// in-memory in front of -store on disk — so identical requests are served
// byte-identically without re-simulating, across restarts.
//
// Example:
//
//	gpuscaled -addr :8372 -store /var/lib/gpuscaled &
//	curl -s localhost:8372/v1/predict -d '{"op":"predict","workload":{"bench":"dct"}}'
//
// -smoke runs an in-process self-test (bind an ephemeral port, one predict
// round-trip twice, verify byte-identity + the cache-hit counter, scrape
// /metrics, shut down cleanly) and exits; `make smoke` and CI use it.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpuscale"
	"gpuscale/cmd/internal/cliutil"
	"gpuscale/internal/server"
)

func main() {
	fs := flag.NewFlagSet("gpuscaled", flag.ExitOnError)
	addr := fs.String("addr", ":8372", "listen address")
	store := fs.String("store", "gpuscaled-store", "disk cache directory ('' = in-memory only; restarts re-simulate)")
	tenantQueue := fs.Int("tenant-queue", 64, "max admitted requests per tenant before 429")
	linger := fs.Duration("batch-linger", 2*time.Millisecond, "simulation batch coalescing window")
	shards := fs.Int("mcm-shards", 0, "shard count for MCM simulations (0 = sequential; results identical)")
	memoBytes := fs.Int64("memo-bytes", 64<<20, "in-memory response cache budget in bytes (LRU eviction)")
	confidence := fs.Float64("confidence-threshold", gpuscale.DefaultConfidenceThreshold,
		"auto-tier requests below this analytic confidence escalate to the cycle simulator")
	smoke := fs.Bool("smoke", false, "run the in-process self-test and exit")
	parallel := cliutil.Parallel(fs)
	fs.Parse(os.Args[1:])

	if *smoke {
		if err := runSmoke(*parallel, *linger); err != nil {
			log.Fatalf("gpuscaled: smoke: %v", err)
		}
		fmt.Println("gpuscaled smoke: ok (analytic tier, predict round-trip, byte-identical cache hit, /metrics scrape, clean shutdown)")
		return
	}

	srv, err := server.New(server.Options{
		StoreDir:            *store,
		Workers:             *parallel,
		TenantCapacity:      *tenantQueue,
		BatchLinger:         *linger,
		MCMShards:           *shards,
		MemoBytes:           *memoBytes,
		ConfidenceThreshold: *confidence,
	})
	if err != nil {
		log.Fatalf("gpuscaled: %v", err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	storeDesc := *store
	if storeDesc == "" {
		storeDesc = "(memory only)"
	}
	log.Printf("gpuscaled: listening on %s, store %s", *addr, storeDesc)

	select {
	case err := <-errc:
		log.Fatalf("gpuscaled: %v", err)
	case <-ctx.Done():
	}
	log.Printf("gpuscaled: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("gpuscaled: shutdown: %v", err)
	}
	srv.Close()
}

// runSmoke exercises the daemon end to end inside one process: it binds an
// ephemeral port, makes one auto-tier predict request (served analytically,
// no simulation) and the same cheap cycle predict request twice, and checks
// the acceptance contract — byte-identical bodies, the second cycle request
// served from cache, the tier visible in X-Tier and the /metrics counters —
// then shuts down cleanly.
func runSmoke(parallel int, linger time.Duration) error {
	srv, err := server.New(server.Options{Workers: parallel, BatchLinger: linger})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	post := func(reqBody string) ([]byte, http.Header, error) {
		resp, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(reqBody))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, nil, fmt.Errorf("predict: HTTP %d: %s", resp.StatusCode, body)
		}
		return body, resp.Header, nil
	}
	// Tier round-trip first, while the cache is cold: ht's analytic
	// confidence is high, so auto must answer from the microsecond tier
	// without starting a simulation (sims_started below stays at 2, both
	// from the scale models of the first cycle request). Once a cycle
	// response settles in the store, auto prefers it — hence cold-cache.
	third, hdr3, err := post(`{"op":"predict","workload":{"bench":"ht"},"options":{"tier":"auto"}}`)
	if err != nil {
		return err
	}
	if tier := hdr3.Get("X-Tier"); tier != "analytic" {
		return fmt.Errorf("auto-tier predict served from tier %q, want analytic", tier)
	}
	if !bytes.Contains(third, []byte(`"tier":"analytic"`)) {
		return errors.New("analytic response body does not declare its tier")
	}

	const reqBody = `{"op":"predict","workload":{"bench":"ht"}}`
	first, hdr1, err := post(reqBody)
	if err != nil {
		return err
	}
	if src := hdr1.Get("X-Cache"); src != "computed" {
		return fmt.Errorf("first predict served from %q, want computed", src)
	}
	if tier := hdr1.Get("X-Tier"); tier != "cycle" {
		return fmt.Errorf("first predict served from tier %q, want cycle", tier)
	}
	second, hdr2, err := post(reqBody)
	if err != nil {
		return err
	}
	if src := hdr2.Get("X-Cache"); src != "memory" {
		return fmt.Errorf("second predict served from %q, want memory", src)
	}
	if !bytes.Equal(first, second) {
		return errors.New("cache replay is not byte-identical to the computed response")
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{
		"server_cache_hits_memory 1",
		"server_requests_predict 3",
		"server_sims_started 2",
		"server_tier_analytic 1",
		"server_tier_cycle 2",
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("/metrics missing %q", want)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-done; err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// Command predict is the equivalent of the paper artifact's scaleModel.py:
// given the IPC of two scale models and the workload's MPKI at every system
// size, it predicts target-system performance by doubling the system size
// once per remaining MPKI sample, and prints the four baseline
// extrapolations alongside.
//
// Usage mirrors the artifact:
//
//	predict -small-sms 8 -fmem 0.45 220 410 8.1 7.9 7.6 7.2 0.4
//
// where the first two positional values are the small and large scale-model
// IPCs and the rest is the miss-rate curve (MPKI for the scale models and
// each target, smallest system first). -fmem supplies the large scale
// model's memory-stall fraction, required only when the curve has a cliff
// beyond the scale models. -weak switches to weak scaling (no curve
// needed). -quiet (shared convention, see cmd/internal/cliutil) suppresses
// the preamble so only the prediction table is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"gpuscale"
	"gpuscale/cmd/internal/cliutil"
)

func main() {
	var (
		smallSMs = flag.Int("small-sms", 8, "size (SMs or chiplets) of the smallest scale model; the large one is twice as big")
		fmem     = flag.Float64("fmem", 0, "memory-stall fraction of the largest scale model (required for cliff workloads)")
		weak     = flag.Bool("weak", false, "weak-scaling workload scenario (ignores the miss-rate curve)")
		quiet    = cliutil.Quiet(flag.CommandLine)
	)
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "predict: need at least <smallIPC> <largeIPC> [mpki...]")
		os.Exit(2)
	}
	vals := make([]float64, len(args))
	for i, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predict: bad value %q: %v\n", a, err)
			os.Exit(2)
		}
		vals[i] = v
	}
	smallIPC, largeIPC := vals[0], vals[1]
	mpki := vals[2:]

	mode := gpuscale.StrongScaling
	nTargets := len(mpki) - 2
	if *weak {
		mode = gpuscale.WeakScaling
		if nTargets < 1 {
			nTargets = 3 // default to 4x, 8x, 16x targets under weak scaling
		}
	} else if nTargets < 1 {
		fmt.Fprintln(os.Stderr, "predict: strong scaling needs MPKI for both scale models and at least one target")
		os.Exit(2)
	}

	sizes := make([]float64, 2+nTargets)
	sizes[0] = float64(*smallSMs)
	for i := 1; i < len(sizes); i++ {
		sizes[i] = sizes[i-1] * 2
	}
	in := gpuscale.PredictionInput{
		Sizes:     sizes,
		SmallIPC:  smallIPC,
		LargeIPC:  largeIPC,
		FMemLarge: *fmem,
		Mode:      mode,
	}
	if !*weak {
		in.MPKI = mpki
	}
	preds, err := gpuscale.Predict(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}

	if !*quiet {
		c := gpuscale.CorrectionFactor(sizes[0], smallIPC, sizes[1], largeIPC)
		fmt.Printf("scale models: %.0f SMs (IPC %.2f), %.0f SMs (IPC %.2f); correction factor C = %.3f\n",
			sizes[0], smallIPC, sizes[1], largeIPC, c)
		if !*weak {
			if i, ok := gpuscale.DetectCliff(in.MPKI, 0, 0); ok {
				fmt.Printf("miss-rate cliff between %.0f and %.0f SMs\n", sizes[i], sizes[i+1])
			} else {
				fmt.Println("no miss-rate cliff detected")
			}
		}
	}

	baselines, err := gpuscale.FitBaselines([]gpuscale.RegressionPoint{
		{Size: sizes[0], IPC: smallIPC},
		{Size: sizes[1], IPC: largeIPC},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}

	fmt.Printf("\n%-8s %-12s %-12s %-12s %-12s %-12s %s\n",
		"size", "scale-model", "log", "proportional", "linear", "power-law", "region")
	for _, p := range preds {
		fmt.Printf("%-8.0f %-12.2f %-12.2f %-12.2f %-12.2f %-12.2f %s\n",
			p.Size,
			p.IPC,
			baselines["logarithmic"].Predict(p.Size),
			baselines["proportional"].Predict(p.Size),
			baselines["linear"].Predict(p.Size),
			baselines["power-law"].Predict(p.Size),
			p.Region)
	}
}

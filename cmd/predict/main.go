// Command predict runs the paper's scale-model prediction in two modes.
//
// Service mode (-bench) speaks the canonical wire API: it builds a
// gpuscale.Request, evaluates it either against a running gpuscaled
// daemon (-server URL, POST /v1/predict) or in-process with the very same
// evaluator the daemon uses, and renders the PredictResponse — scale-model
// IPCs, correction factor, and the predicted target ladder with all four
// baseline extrapolations. The response is byte-identical between the two
// paths (and across daemon cache hits), because both are keyed by the same
// canonical request hash. -json dumps the raw response body instead of the
// table.
//
//	predict -bench dct                      # simulate 8+16 SM scale models locally, predict 32/64/128
//	predict -bench bfs -weak                # weak scaling
//	predict -bench va -weak -chiplets 16    # MCM case study (4c+8c models predict 16c)
//	predict -bench dct -uarch two-level     # non-default microarchitecture (docs/UARCH.md)
//	predict -bench dct -server http://localhost:8372
//
// Numeric mode is the equivalent of the paper artifact's scaleModel.py:
// given the IPC of two scale models and the workload's MPKI at every
// system size, it predicts target-system performance with no simulation at
// all:
//
//	predict -small-sms 8 -fmem 0.45 220 410 8.1 7.9 7.6 7.2 0.4
//
// where the first two positional values are the small and large scale-model
// IPCs and the rest is the miss-rate curve (MPKI for the scale models and
// each target, smallest system first). -fmem supplies the large scale
// model's memory-stall fraction, required only when the curve has a cliff
// beyond the scale models. -weak switches to weak scaling (no curve
// needed). -quiet (shared convention, see cmd/internal/cliutil) suppresses
// the preamble so only the prediction table is printed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"gpuscale"
	"gpuscale/cmd/internal/cliutil"
	"gpuscale/internal/server"
)

func main() {
	var (
		bench    = flag.String("bench", "", "service mode: predict this benchmark from simulated scale models")
		chiplets = flag.Int("chiplets", 0, "service mode: 16 selects the MCM case study (requires -weak)")
		srvURL   = flag.String("server", "", "service mode: gpuscaled base URL (default: evaluate in-process)")
		tier     = flag.String("tier", "", "service mode: latency tier (cycle, analytic, auto); auto answers analytically and escalates to the simulator when confidence is low")
		jsonOut  = flag.Bool("json", false, "service mode: print the raw JSON response body")
		uarchStr = flag.String("uarch", "", "service mode: microarchitecture variant, e.g. \"two-level,sectored,deflect,iw=2\" (empty = Table III baseline; part of the request hash)")
		smallSMs = flag.Int("small-sms", 8, "numeric mode: size (SMs or chiplets) of the smallest scale model; the large one is twice as big")
		fmem     = flag.Float64("fmem", 0, "numeric mode: memory-stall fraction of the largest scale model (required for cliff workloads)")
		weak     = flag.Bool("weak", false, "weak-scaling scenario")
		parallel = cliutil.Parallel(flag.CommandLine)
		quiet    = cliutil.Quiet(flag.CommandLine)
	)
	flag.Parse()

	if *bench != "" {
		if err := runService(*bench, *weak, *chiplets, *srvURL, *tier, *uarchStr, *parallel, *jsonOut, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			os.Exit(1)
		}
		return
	}
	runNumeric(*smallSMs, *fmem, *weak, *quiet)
}

// runService evaluates a canonical predict request — remotely against a
// gpuscaled daemon, or in-process through the daemon's own evaluator.
func runService(bench string, weak bool, chiplets int, srvURL, tier, uarchStr string, parallel int, jsonOut, quiet bool) error {
	req := gpuscale.Request{
		Op:       gpuscale.OpPredict,
		Target:   gpuscale.TargetSpec{Chiplets: chiplets},
		Workload: gpuscale.WorkloadSpec{Bench: bench, Weak: weak},
		Options:  gpuscale.RequestOptions{Tier: tier},
	}
	if uarchStr != "" {
		v, err := gpuscale.ParseUarch(uarchStr)
		if err != nil {
			return err
		}
		req.Options.Uarch = &v
	}
	var (
		body []byte
		hash string
		err  error
	)
	if srvURL != "" {
		body, hash, err = postPredict(srvURL, req)
	} else {
		body, hash, err = server.EvalLocal(context.Background(), req, parallel, 0)
	}
	if err != nil {
		return err
	}
	if jsonOut {
		fmt.Printf("%s\n", body)
		return nil
	}
	var resp server.PredictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	unit := "SMs"
	if resp.MCM {
		unit = "chiplets"
	}
	if !quiet {
		sm := resp.ScaleModels
		fmt.Printf("request:      %s\n", hash)
		if resp.Tier != "" {
			fmt.Printf("tier:         %s (confidence %.2f)\n", resp.Tier, resp.Confidence)
		}
		fmt.Printf("scale models: %.0f %s (IPC %.2f), %.0f %s (IPC %.2f); correction factor C = %.3f\n",
			sm[0].Size, unit, sm[0].IPC, sm[1].Size, unit, sm[1].IPC, resp.CorrectionFactor)
		if resp.Mode == "strong" {
			if i, ok := gpuscale.DetectCliff(resp.MPKI, 0, 0); ok {
				fmt.Printf("miss-rate cliff between %d and %d SMs\n", 8<<i, 8<<(i+1))
			} else {
				fmt.Println("no miss-rate cliff detected")
			}
		}
	}
	printTable(resp.Predictions)
	return nil
}

// postPredict POSTs the request to a daemon and returns (body, hash).
func postPredict(base string, req gpuscale.Request) ([]byte, string, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, "", err
	}
	resp, err := http.Post(strings.TrimRight(base, "/")+"/v1/predict", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		var e server.ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, "", fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, e.Error)
		}
		return nil, "", fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Request-Hash"), nil
}

// printTable renders predictions in the classic scaleModel.py layout.
func printTable(preds []server.PredictionPoint) {
	fmt.Printf("\n%-8s %-12s %-12s %-12s %-12s %-12s %s\n",
		"size", "scale-model", "log", "proportional", "linear", "power-law", "region")
	for _, p := range preds {
		fmt.Printf("%-8.0f %-12.2f %-12.2f %-12.2f %-12.2f %-12.2f %s\n",
			p.Size,
			p.IPC,
			p.Baselines["logarithmic"],
			p.Baselines["proportional"],
			p.Baselines["linear"],
			p.Baselines["power-law"],
			p.Region)
	}
}

// runNumeric is the artifact-equivalent pure-math path.
func runNumeric(smallSMs int, fmem float64, weak, quiet bool) {
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "predict: need at least <smallIPC> <largeIPC> [mpki...] (or -bench for service mode)")
		os.Exit(2)
	}
	vals := make([]float64, len(args))
	for i, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "predict: bad value %q: %v\n", a, err)
			os.Exit(2)
		}
		vals[i] = v
	}
	smallIPC, largeIPC := vals[0], vals[1]
	mpki := vals[2:]

	mode := gpuscale.StrongScaling
	nTargets := len(mpki) - 2
	if weak {
		mode = gpuscale.WeakScaling
		if nTargets < 1 {
			nTargets = 3 // default to 4x, 8x, 16x targets under weak scaling
		}
	} else if nTargets < 1 {
		fmt.Fprintln(os.Stderr, "predict: strong scaling needs MPKI for both scale models and at least one target")
		os.Exit(2)
	}

	sizes := make([]float64, 2+nTargets)
	sizes[0] = float64(smallSMs)
	for i := 1; i < len(sizes); i++ {
		sizes[i] = sizes[i-1] * 2
	}
	in := gpuscale.PredictionInput{
		Sizes:     sizes,
		SmallIPC:  smallIPC,
		LargeIPC:  largeIPC,
		FMemLarge: fmem,
		Mode:      mode,
	}
	if !weak {
		in.MPKI = mpki
	}
	preds, err := gpuscale.Predict(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}

	if !quiet {
		c := gpuscale.CorrectionFactor(sizes[0], smallIPC, sizes[1], largeIPC)
		fmt.Printf("scale models: %.0f SMs (IPC %.2f), %.0f SMs (IPC %.2f); correction factor C = %.3f\n",
			sizes[0], smallIPC, sizes[1], largeIPC, c)
		if !weak {
			if i, ok := gpuscale.DetectCliff(in.MPKI, 0, 0); ok {
				fmt.Printf("miss-rate cliff between %.0f and %.0f SMs\n", sizes[i], sizes[i+1])
			} else {
				fmt.Println("no miss-rate cliff detected")
			}
		}
	}

	baselines, err := gpuscale.FitBaselines([]gpuscale.RegressionPoint{
		{Size: sizes[0], IPC: smallIPC},
		{Size: sizes[1], IPC: largeIPC},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}

	fmt.Printf("\n%-8s %-12s %-12s %-12s %-12s %-12s %s\n",
		"size", "scale-model", "log", "proportional", "linear", "power-law", "region")
	for _, p := range preds {
		fmt.Printf("%-8.0f %-12.2f %-12.2f %-12.2f %-12.2f %-12.2f %s\n",
			p.Size,
			p.IPC,
			baselines["logarithmic"].Predict(p.Size),
			baselines["proportional"].Predict(p.Size),
			baselines["linear"].Predict(p.Size),
			baselines["power-law"].Predict(p.Size),
			p.Region)
	}
}

package gpuscale_test

import (
	"context"
	"fmt"
	"log"
	"testing"

	"gpuscale"
)

func TestFacadeSimulateSequence(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	k1 := smallLinear("seq-a")
	k2 := smallLinear("seq-b")
	st, err := gpuscale.SimulateSequenceContext(context.Background(), cfg, []gpuscale.Workload{k1, k2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kernels != 2 {
		t.Errorf("Kernels = %d, want 2", st.Kernels)
	}
	single, err := gpuscale.SimulateContext(context.Background(), cfg, smallLinear("seq-c"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 2*single.Instructions {
		t.Errorf("sequence instructions = %d, want %d", st.Instructions, 2*single.Instructions)
	}
}

// ExamplePredict demonstrates the prediction API on fixed scale-model
// numbers: a linearly scaling workload with a flat miss-rate curve.
func ExamplePredict() {
	preds, err := gpuscale.Predict(gpuscale.PredictionInput{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100,
		LargeIPC: 200,
		MPKI:     []float64{4, 4, 4, 4, 4},
		Mode:     gpuscale.StrongScaling,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range preds {
		fmt.Printf("%3.0f SMs: %.0f (%s)\n", p.Size, p.IPC, p.Region)
	}
	// Output:
	//  32 SMs: 400 (pre-cliff)
	//  64 SMs: 800 (pre-cliff)
	// 128 SMs: 1600 (pre-cliff)
}

// ExampleDetectCliff shows cliff detection on a dct-like miss-rate curve.
func ExampleDetectCliff() {
	mpki := []float64{142.9, 142.9, 142.9, 142.9, 23.8}
	if i, ok := gpuscale.DetectCliff(mpki, 0, 0); ok {
		fmt.Printf("cliff between samples %d and %d\n", i, i+1)
	}
	// Output:
	// cliff between samples 3 and 4
}

// ExampleCorrectionFactor shows Eq. 1 on sub-linear scale-model numbers.
func ExampleCorrectionFactor() {
	c := gpuscale.CorrectionFactor(8, 100, 16, 180)
	fmt.Printf("C = %.2f\n", c)
	// Output:
	// C = 0.90
}

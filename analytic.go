package gpuscale

// The analytic latency tier of the facade: microsecond-scale predictions
// from internal/analytic, either per simulation cell (AnalyzeCell and
// friends — the analytic mirror of SimulateContext) or as the full
// scale-model prediction ladder (PredictAnalytic — the analytic mirror of
// the /v1/predict pipeline). No simulation runs on any of these paths;
// every result carries a confidence score the serving tier uses to decide
// whether to escalate to the cycle simulator (docs/ANALYTIC.md).

import (
	"fmt"

	"gpuscale/internal/analytic"
	"gpuscale/internal/config"
)

// AnalyticEstimate is one microsecond-scale analytical prediction of a
// simulation cell: estimated IPC, f_mem, LLC MPKI and a confidence score.
type AnalyticEstimate = analytic.Estimate

// AnalyzeCell analytically predicts one monolithic simulation cell — the
// microsecond-scale stand-in for SimulateContext.
func AnalyzeCell(cfg SystemConfig, w Workload) (AnalyticEstimate, error) {
	return analytic.EstimateCell(cfg, w)
}

// AnalyzeMCMCell analytically predicts one multi-chip-module cell — the
// stand-in for SimulateMCMContext.
func AnalyzeMCMCell(cfg ChipletConfig, w Workload) (AnalyticEstimate, error) {
	return analytic.EstimateMCM(cfg, w)
}

// AnalyzeSequence analytically predicts a back-to-back kernel sequence —
// the stand-in for SimulateSequenceContext.
func AnalyzeSequence(cfg SystemConfig, ws []Workload) (AnalyticEstimate, error) {
	return analytic.EstimateSequence(cfg, ws)
}

// AnalyticPrediction is the analytic tier's version of the scale-model
// prediction pipeline: the same PredictionInput the cycle tier feeds to
// Predict, produced from analytical scale-model estimates instead of
// simulations, plus the estimates themselves and the overall confidence
// (the minimum over every cell the ladder consulted).
type AnalyticPrediction struct {
	// Input is ready for Predict — sizes, scale-model IPCs, the analytic
	// MPKI curve (strong scaling) and f_mem at the large model.
	Input PredictionInput
	// Small and Large are the analytic scale-model estimates.
	Small, Large AnalyticEstimate
	// MCM reports the multi-chip-module case study (sizes are chiplets).
	MCM bool
	// Confidence is the minimum confidence across the consulted cells.
	Confidence float64
}

// PredictAnalytic runs the full scale-model prediction ladder analytically
// for a predict-op request: estimate the two scale models, estimate the
// miss-rate curve (strong scaling), and assemble the PredictionInput that
// Predict extrapolates to the target sizes — all without simulating.
func PredictAnalytic(req Request) (AnalyticPrediction, error) {
	if req.Op == "" {
		req.Op = OpPredict
	}
	if err := req.Validate(); err != nil {
		return AnalyticPrediction{}, err
	}
	if req.Op != OpPredict {
		return AnalyticPrediction{}, fmt.Errorf("gpuscale: PredictAnalytic on %q request", req.Op)
	}
	if req.Target.Chiplets > 0 {
		return predictAnalyticMCM(req)
	}

	sizes := config.StandardSizes
	base := Baseline128()
	if req.Options.Uarch != nil {
		// The variant is part of the simulated hardware: thread it into the
		// ladder configs so the estimates carry the variant confidence
		// discount and auto-tier requests escalate (docs/UARCH.md).
		base.Uarch = *req.Options.Uarch
	}
	ests := make([]AnalyticEstimate, 2)
	for i, n := range sizes[:2] {
		w, err := req.Workload.Resolve(n)
		if err != nil {
			return AnalyticPrediction{}, err
		}
		est, err := analytic.EstimateCell(MustScale(base, n), w)
		if err != nil {
			return AnalyticPrediction{}, err
		}
		ests[i] = est
	}
	out := AnalyticPrediction{Small: ests[0], Large: ests[1]}
	fsizes := make([]float64, len(sizes))
	for i, n := range sizes {
		fsizes[i] = float64(n)
	}
	out.Input = PredictionInput{
		Sizes:    fsizes,
		SmallIPC: ests[0].IPC,
		LargeIPC: ests[1].IPC,
	}
	out.Confidence = minConf(ests[0].Confidence, ests[1].Confidence)
	if req.Workload.Weak {
		out.Input.Mode = WeakScaling
		return out, nil
	}
	out.Input.Mode = StrongScaling
	w, err := req.Workload.Resolve(0)
	if err != nil {
		return AnalyticPrediction{}, err
	}
	mpki, err := analytic.MPKICurve(w, StandardConfigs())
	if err != nil {
		return AnalyticPrediction{}, err
	}
	out.Input.MPKI = mpki
	// FMemLarge feeds Eq. 3's 1/(1-f_mem·r) term and must stay in [0, 1).
	out.Input.FMemLarge = ests[1].FMem
	if out.Input.FMemLarge > 0.999 {
		out.Input.FMemLarge = 0.999
	}
	return out, nil
}

// predictAnalyticMCM is the multi-chip-module ladder: 4- and 8-chiplet
// analytic scale models predicting the 16-chiplet target, weak scaling.
func predictAnalyticMCM(req Request) (AnalyticPrediction, error) {
	base := Target16Chiplet()
	if req.Options.Uarch != nil {
		base.Chiplet.Uarch = *req.Options.Uarch
	}
	sizes := config.ChipletStandardSizes
	ests := make([]AnalyticEstimate, 2)
	for i, n := range sizes[:2] {
		cfg, err := ScaleChiplets(base, n)
		if err != nil {
			return AnalyticPrediction{}, err
		}
		w, err := req.Workload.Resolve(cfg.TotalSMs())
		if err != nil {
			return AnalyticPrediction{}, err
		}
		est, err := analytic.EstimateMCM(cfg, w)
		if err != nil {
			return AnalyticPrediction{}, err
		}
		ests[i] = est
	}
	fsizes := make([]float64, len(sizes))
	for i, n := range sizes {
		fsizes[i] = float64(n)
	}
	return AnalyticPrediction{
		Input: PredictionInput{
			Sizes:    fsizes,
			SmallIPC: ests[0].IPC,
			LargeIPC: ests[1].IPC,
			Mode:     WeakScaling,
		},
		Small:      ests[0],
		Large:      ests[1],
		MCM:        true,
		Confidence: minConf(ests[0].Confidence, ests[1].Confidence),
	}, nil
}

func minConf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

package gpuscale

// This file defines the canonical wire API shared by the CLIs and the
// gpuscaled daemon (internal/server): a versioned, JSON-serialisable
// description of one prediction-service operation — which simulator target,
// which workload (by benchmark name), which options — plus the
// canonicalisation rule that turns any equivalent spelling of a request
// into one stable byte string and one stable SHA-256 cache key.
//
// The canonical form is the contract that makes the service cacheable:
// every simulation in this repository is deterministic, so a request's
// canonical hash fully determines its response bytes. Canonicalize
// therefore (1) validates, (2) normalises — fills in the current schema
// version and strips fields that cannot change the result, such as the
// shard count and barrier quantum, which only change host wall-clock time
// — and (3) marshals
// the normalised struct with encoding/json, whose field order is fixed by
// the struct definition. Two requests that differ only in JSON field
// order, schema-version spelling (0 vs 1) or result-invariant options hash
// identically and share one cached response.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// RequestVersion is the current wire-schema version emitted and accepted by
// this build. Version 0 in an incoming request means "current".
const RequestVersion = 1

// Request operations, one per service endpoint.
const (
	// OpSimulate runs one timing simulation and returns its statistics.
	OpSimulate = "simulate"
	// OpPredict runs the paper's scale-model prediction pipeline: simulate
	// the two scale models, collect the miss-rate curve (strong scaling
	// only), and predict every standard target size without ever
	// simulating it.
	OpPredict = "predict"
	// OpMRC collects a workload's miss-rate curve by functional simulation
	// across the five standard configurations.
	OpMRC = "mrc"
)

// TargetSpec selects the simulated system. Exactly one of SMs and Chiplets
// may be set; for OpPredict and OpMRC the whole spec is usually zero (the
// standard paper ladder), except that OpPredict accepts Chiplets == 16 to
// select the multi-chip-module case study.
type TargetSpec struct {
	// SMs selects a monolithic GPU scaled to this many SMs.
	SMs int `json:"sms,omitempty"`
	// Chiplets selects a multi-chip-module GPU with this many chiplets
	// (64 SMs each, the paper's Table V building block).
	Chiplets int `json:"chiplets,omitempty"`
}

// WorkloadSpec names a workload from the built-in suite. Workloads travel
// by name, not by value: the synthetic generators are deterministic
// functions of (benchmark, system size), so a name plus the target spec
// reproduces the exact instruction streams on any replica of the service.
type WorkloadSpec struct {
	// Bench is the benchmark abbreviation (dct, bfs, ht, …) — a Table II
	// strong-scaling benchmark, or with Weak a Table IV family.
	Bench string `json:"bench"`
	// Weak selects the weak-scaling variant, whose input scales with the
	// simulated system size.
	Weak bool `json:"weak,omitempty"`
}

// Resolve instantiates the named workload. totalSMs sizes the weak-scaling
// variant (total SMs across the whole target) and is ignored for
// strong-scaling benchmarks.
func (w WorkloadSpec) Resolve(totalSMs int) (Workload, error) {
	if w.Weak {
		wb, err := WeakBenchmarkByName(w.Bench)
		if err != nil {
			return nil, err
		}
		return wb.ForSMs(totalSMs), nil
	}
	b, err := BenchmarkByName(w.Bench)
	if err != nil {
		return nil, err
	}
	return b.Workload, nil
}

// Latency tiers for predict requests (RequestOptions.Tier). The tier
// routes the request inside the service; it never changes what a cycle
// response contains, so Canonicalize strips it from the cache key.
const (
	// TierCycle runs the cycle-accurate simulation pipeline (the default).
	TierCycle = "cycle"
	// TierAnalytic answers from the microsecond-scale analytical model
	// (internal/analytic) without ever simulating; the response carries a
	// confidence score.
	TierAnalytic = "analytic"
	// TierAuto answers analytically when the model is confident and
	// escalates to the cycle simulator otherwise — the escalated response
	// is byte-identical to a direct cycle-tier response.
	TierAuto = "auto"
)

// DefaultConfidenceThreshold is the auto-tier escalation gate: an analytic
// prediction whose confidence falls below it escalates to the cycle
// simulator. The gpuscaled operator can override it per daemon
// (-confidence-threshold); the in-process evaluator and CLIs use this
// default. The value sits between the strong-scaling families the model
// captures well (confidence ≥ 0.7) and the multi-chip-module cells it
// deliberately discounts (docs/ANALYTIC.md).
const DefaultConfidenceThreshold = 0.5

// RequestOptions tunes a simulate request. MaxCycles and
// WarmupInstructions change the reported statistics, so they are part of
// the canonical form; Shards and Quantum only change how the host computes
// the bit-identical result, so Canonicalize strips them.
type RequestOptions struct {
	// MaxCycles aborts the simulation with an error beyond this many
	// cycles; zero means no limit. Simulate only.
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// WarmupInstructions discards pre-warm-up statistics; monolithic
	// simulate only.
	WarmupInstructions uint64 `json:"warmup_instructions,omitempty"`
	// Shards is the intra-simulation shard count (SM groups on a
	// monolithic target, chiplet groups on an MCM). Results are
	// bit-identical at every setting (docs/PARALLELISM.md), so this field
	// is excluded from the canonical form; servers choose their own shard
	// count.
	Shards int `json:"shards,omitempty"`
	// Quantum relaxes the sharded run's barrier cadence (cycles per safe
	// window). Like Shards it cannot change the result, only host
	// wall-clock time, so it too is stripped from the canonical form.
	Quantum int `json:"quantum,omitempty"`
	// Tier selects the latency tier for predict requests: TierCycle
	// (default), TierAnalytic or TierAuto. The tier routes the request —
	// a cycle response's bytes are the same whether reached directly or by
	// auto escalation — so Canonicalize strips it; analytic responses are
	// cached under their own keyspace (AnalyticCacheKey).
	Tier string `json:"tier,omitempty"`
	// Uarch selects the microarchitecture variant: warp scheduler, L1 fill
	// granularity, NoC routing and issue width (docs/UARCH.md). Unlike
	// Shards/Quantum/Tier it CHANGES simulated timing, so Canonicalize
	// keeps it in the canonical form — two requests differing only here
	// hash differently and cache separate bodies. Nil or all-default means
	// the paper's Table III baseline and canonicalises to the field being
	// absent, so legacy requests hash exactly as they did before this field
	// existed.
	Uarch *UarchVariant `json:"uarch,omitempty"`
}

// Request is one prediction-service operation in the canonical wire
// schema. Build one programmatically or decode it with ParseRequest; hash
// it with Canonicalize; instantiate a simulate request with
// ResolveSimulation.
type Request struct {
	// Version is the wire-schema version: RequestVersion, or 0 meaning
	// "current".
	Version int `json:"version"`
	// Op is the operation: OpSimulate, OpPredict or OpMRC. The daemon
	// fills it from the endpoint path when empty.
	Op string `json:"op"`
	// Target selects the simulated system (see TargetSpec for per-op
	// rules).
	Target TargetSpec `json:"target"`
	// Workload names the workload.
	Workload WorkloadSpec `json:"workload"`
	// Options tunes simulate requests.
	Options RequestOptions `json:"options"`
}

// ParseRequest decodes a Request from JSON strictly: unknown fields and
// trailing data are errors, so typos in option names fail loudly instead
// of silently changing the cache key space.
func ParseRequest(data []byte) (Request, error) {
	var r Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Request{}, fmt.Errorf("gpuscale: parsing request: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Request{}, fmt.Errorf("gpuscale: trailing data after request object")
	}
	return r, nil
}

// Validate reports the first structural problem with the request, or nil
// if it describes a runnable operation.
func (r Request) Validate() error {
	if r.Version != 0 && r.Version != RequestVersion {
		return fmt.Errorf("gpuscale: unsupported request version %d (this build speaks %d)", r.Version, RequestVersion)
	}
	switch r.Op {
	case OpSimulate, OpPredict, OpMRC:
	case "":
		return fmt.Errorf("gpuscale: request has no op (want %q, %q or %q)", OpSimulate, OpPredict, OpMRC)
	default:
		return fmt.Errorf("gpuscale: unknown op %q", r.Op)
	}
	if r.Target.SMs < 0 || r.Target.Chiplets < 0 {
		return fmt.Errorf("gpuscale: negative target size")
	}
	if r.Workload.Bench == "" {
		return fmt.Errorf("gpuscale: request names no benchmark")
	}
	// Resolve the name now so unresolvable requests fail at validation
	// (HTTP 400) instead of polluting the cache key space.
	if _, err := r.Workload.Resolve(1); err != nil {
		return err
	}
	switch r.Op {
	case OpSimulate:
		switch {
		case r.Target.SMs > 0 && r.Target.Chiplets > 0:
			return fmt.Errorf("gpuscale: simulate target sets both sms and chiplets")
		case r.Target.SMs == 0 && r.Target.Chiplets == 0:
			return fmt.Errorf("gpuscale: simulate target sets neither sms nor chiplets")
		case r.Target.Chiplets > 0 && r.Options.WarmupInstructions > 0:
			return fmt.Errorf("gpuscale: warmup_instructions is not supported on MCM simulations")
		}
	case OpPredict:
		if r.Target.SMs != 0 {
			return fmt.Errorf("gpuscale: predict always targets the standard size ladder; leave target.sms unset")
		}
		if r.Target.Chiplets != 0 {
			if r.Target.Chiplets != 16 {
				return fmt.Errorf("gpuscale: MCM prediction supports only the 16-chiplet target, got %d", r.Target.Chiplets)
			}
			if !r.Workload.Weak {
				return fmt.Errorf("gpuscale: MCM prediction requires a weak-scaling family")
			}
		}
		if r.Options.MaxCycles != 0 || r.Options.WarmupInstructions != 0 {
			return fmt.Errorf("gpuscale: max_cycles and warmup_instructions do not apply to predict requests")
		}
	case OpMRC:
		if r.Target != (TargetSpec{}) {
			return fmt.Errorf("gpuscale: mrc samples the five standard configurations; leave target unset")
		}
		if r.Workload.Weak {
			return fmt.Errorf("gpuscale: mrc supports strong-scaling benchmarks only (weak prediction needs no curve)")
		}
		if r.Options.MaxCycles != 0 || r.Options.WarmupInstructions != 0 {
			return fmt.Errorf("gpuscale: max_cycles and warmup_instructions do not apply to mrc requests")
		}
	}
	if r.Options.MaxCycles < 0 {
		return fmt.Errorf("gpuscale: negative max_cycles")
	}
	if r.Options.Shards < 0 {
		return fmt.Errorf("gpuscale: negative shards")
	}
	if r.Options.Quantum < 0 {
		return fmt.Errorf("gpuscale: negative quantum")
	}
	switch r.Options.Tier {
	case "", TierCycle:
	case TierAnalytic, TierAuto:
		if r.Op != OpPredict {
			return fmt.Errorf("gpuscale: tier %q applies to predict requests only", r.Options.Tier)
		}
	default:
		return fmt.Errorf("gpuscale: unknown tier %q (want %q, %q or %q)", r.Options.Tier, TierCycle, TierAnalytic, TierAuto)
	}
	if r.Options.Uarch != nil {
		if err := r.Options.Uarch.Validate(); err != nil {
			return fmt.Errorf("gpuscale: %w", err)
		}
	}
	return nil
}

// Canonicalize validates r, normalises it — Version becomes
// RequestVersion, result-invariant options (Shards, Quantum, Tier) are
// stripped — and returns the canonical JSON encoding plus its
// lowercase-hex SHA-256, which the service and CLIs use as the cache key.
// Requests that can only differ in host-side execution strategy
// canonicalise identically. The microarchitecture variant is KEPT: it
// changes simulated timing, so each variant owns its own cache entry. An
// explicitly-spelled default variant ("gto", issue width 1, …) normalises
// to an absent field, hashing identically to a legacy request that
// predates the field.
func Canonicalize(r Request) (canon []byte, hash string, err error) {
	if err := r.Validate(); err != nil {
		return nil, "", err
	}
	n := r
	n.Version = RequestVersion
	n.Options.Shards = 0
	n.Options.Quantum = 0
	n.Options.Tier = ""
	if n.Options.Uarch != nil {
		v := n.Options.Uarch.Canonical()
		if v == (UarchVariant{}) {
			n.Options.Uarch = nil
		} else {
			n.Options.Uarch = &v
		}
	}
	canon, err = json.Marshal(n)
	if err != nil {
		return nil, "", fmt.Errorf("gpuscale: canonicalising request: %w", err)
	}
	sum := sha256.Sum256(canon)
	return canon, hex.EncodeToString(sum[:]), nil
}

// AnalyticCacheKey derives the cache key for the analytic-tier response to
// the request whose canonical hash is hash. Analytic bodies live in their
// own keyspace so they can never collide with (or shadow) the cycle
// response cached under the canonical hash itself.
func AnalyticCacheKey(hash string) string {
	sum := sha256.Sum256([]byte("analytic\x00" + hash))
	return hex.EncodeToString(sum[:])
}

// SimTarget is a simulate request resolved into runnable form: exactly one
// of System and MCM is non-nil, Workload is instantiated for the target's
// size, and Options carries the request's simulation options (shard count
// included — strip or override it server-side as policy dictates).
type SimTarget struct {
	// System is the monolithic configuration (nil for MCM requests).
	System *SystemConfig
	// MCM is the multi-chip-module configuration (nil for monolithic).
	MCM *ChipletConfig
	// Workload is the instantiated workload.
	Workload Workload
	// Options are the request's simulation options in functional form,
	// ready to pass to SimulateContext / SimulateMCMContext.
	Options []SimOption
}

// ResolveSimulation instantiates a simulate request: the scaled
// configuration, the workload sized for it, and the simulation options.
// It fails on non-simulate requests — predict and mrc requests fan out
// over several configurations and are composed by their executors from
// WorkloadSpec.Resolve and the standard configuration ladders.
func (r Request) ResolveSimulation() (SimTarget, error) {
	if err := r.Validate(); err != nil {
		return SimTarget{}, err
	}
	if r.Op != OpSimulate {
		return SimTarget{}, fmt.Errorf("gpuscale: ResolveSimulation on %q request", r.Op)
	}
	var opts []SimOption
	if r.Options.MaxCycles > 0 {
		opts = append(opts, WithMaxCycles(r.Options.MaxCycles))
	}
	if r.Options.Uarch != nil {
		opts = append(opts, WithUarch(*r.Options.Uarch))
	}
	if r.Target.Chiplets > 0 {
		cfg, err := ScaleChiplets(Target16Chiplet(), r.Target.Chiplets)
		if err != nil {
			return SimTarget{}, err
		}
		w, err := r.Workload.Resolve(cfg.TotalSMs())
		if err != nil {
			return SimTarget{}, err
		}
		if r.Options.Shards > 0 {
			opts = append(opts, WithShards(r.Options.Shards))
		}
		if r.Options.Quantum > 0 {
			opts = append(opts, WithQuantum(r.Options.Quantum))
		}
		return SimTarget{MCM: &cfg, Workload: w, Options: opts}, nil
	}
	cfg, err := Scale(Baseline128(), r.Target.SMs)
	if err != nil {
		return SimTarget{}, err
	}
	w, err := r.Workload.Resolve(cfg.NumSMs)
	if err != nil {
		return SimTarget{}, err
	}
	if r.Options.WarmupInstructions > 0 {
		opts = append(opts, WithWarmupInstructions(r.Options.WarmupInstructions))
	}
	if r.Options.Shards > 0 {
		opts = append(opts, WithShards(r.Options.Shards))
	}
	if r.Options.Quantum > 0 {
		opts = append(opts, WithQuantum(r.Options.Quantum))
	}
	return SimTarget{System: &cfg, Workload: w, Options: opts}, nil
}

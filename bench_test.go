// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Heavy simulations
// are memoised in a process-wide harness, so a full `go test -bench=.` run
// pays for each simulation once; the measured loop of each benchmark is the
// analysis step (prediction, error aggregation, rendering), and the numbers
// the paper reports are attached as custom benchmark metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Inspect a rendered table:
//
//	go test -bench=BenchmarkFigure4a -v
package gpuscale_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gpuscale"
	"gpuscale/internal/config"
	"gpuscale/internal/core"
	"gpuscale/internal/gpu"
	"gpuscale/internal/harness"
	"gpuscale/internal/stats"
	"gpuscale/internal/workloads"
)

// strongResults runs (or reuses) the full strong-scaling sweep. The
// 21 × 5 simulation grid is fanned across all CPUs by the harness's
// worker-pool pre-warm (internal/engine); results are identical to a
// sequential sweep, so every figure regenerated below is unaffected by the
// parallelism.
func strongResults(b *testing.B) []*harness.StrongResult {
	b.Helper()
	rs, err := harness.Default.RunStrongAll()
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// weakResults runs (or reuses) the weak-scaling sweep, parallelised the
// same way as strongResults.
func weakResults(b *testing.B) []*harness.WeakResult {
	b.Helper()
	rs, err := harness.Default.RunWeakAll()
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// BenchmarkEngineParallelSweep measures the parallel experiment engine on a
// paperbench-style grid (three benchmarks of different scaling classes on
// the 8- and 16-SM scale models), reporting the wall-clock speedup of the
// all-CPU worker pool over the sequential path and verifying bit-identical
// statistics. On a single-CPU host the speedup metric is ~1 by
// construction.
func BenchmarkEngineParallelSweep(b *testing.B) {
	base := gpuscale.Baseline128()
	var jobs []gpuscale.Job
	for _, name := range []string{"dct", "bfs", "pf"} {
		bench, err := gpuscale.BenchmarkByName(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range []int{8, 16} {
			jobs = append(jobs, gpuscale.NewJob(gpuscale.MustScale(base, n), bench.Workload))
		}
	}
	ctx := context.Background()
	t0 := testingNow()
	seq, err := gpuscale.RunJobs(ctx, jobs, gpuscale.EngineOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	tSeq := testingNow() - t0
	t0 = testingNow()
	par, err := gpuscale.RunJobs(ctx, jobs, gpuscale.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	tPar := testingNow() - t0
	for i := range jobs {
		if seq[i].Err != nil || par[i].Err != nil {
			b.Fatalf("job %d failed: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Stats != par[i].Stats {
			b.Fatalf("job %q: parallel stats differ from sequential", jobs[i].Label())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = par[0].Stats.IPC
	}
	b.ReportMetric(float64(runtime.NumCPU()), "workers")
	b.ReportMetric(tSeq/tPar, "wall_speedup")
}

// BenchmarkTable1ScaleModelConfigs regenerates Table I: deriving the 8- and
// 16-SM scale models and the 32/64-SM targets from the 128-SM baseline by
// proportional resource scaling.
func BenchmarkTable1ScaleModelConfigs(b *testing.B) {
	base := gpuscale.Baseline128()
	for i := 0; i < b.N; i++ {
		for _, n := range config.StandardSizes {
			cfg := gpuscale.MustScale(base, n)
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
	small := gpuscale.MustScale(base, 8)
	b.ReportMetric(float64(small.LLCSizeBytes)/(1<<20), "llc8sm_MiB")
	b.ReportMetric(small.TotalMemBWGBps(), "membw8sm_GBps")
	b.Logf("\n8-SM scale model: %.3f MiB LLC, %.1f GB/s NoC, %.0f GB/s DRAM",
		float64(small.LLCSizeBytes)/(1<<20), small.NoCBisectionGBps, small.TotalMemBWGBps())
}

// BenchmarkFigure1ScalingBehavior regenerates Figure 1: IPC versus system
// size for the three representative benchmarks (dct super-linear, bfs
// sub-linear, pf linear), reporting each one's per-SM scaling ratio from 8
// to 128 SMs.
func BenchmarkFigure1ScalingBehavior(b *testing.B) {
	for _, name := range []string{"dct", "bfs", "pf"} {
		bench, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		r, err := harness.Default.RunStrong(bench)
		if err != nil {
			b.Fatal(err)
		}
		ratio := (r.Real[128].IPC / 128) / (r.Real[8].IPC / 8)
		b.ReportMetric(ratio, name+"_perSM_128v8")
		b.Logf("\n%s", harness.RenderScalingCurves(r))
	}
	for i := 0; i < b.N; i++ {
		_ = config.StandardSizes
	}
}

// BenchmarkFigure2MissRateCurves regenerates Figure 2: MPKI versus LLC
// capacity for dct (cliff), bfs (gradual) and pf (flat).
func BenchmarkFigure2MissRateCurves(b *testing.B) {
	curves := map[string]gpuscale.Curve{}
	for _, name := range []string{"dct", "bfs", "pf"} {
		bench, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		r, err := harness.Default.RunStrong(bench)
		if err != nil {
			b.Fatal(err)
		}
		curves[name] = r.Curve
		b.Logf("\n%s", harness.RenderMissRateCurve(r))
	}
	var cliffs int
	for i := 0; i < b.N; i++ {
		cliffs = 0
		for _, c := range curves {
			if _, ok := gpuscale.DetectCliff(c.MPKIs(), 0, 0); ok {
				cliffs++
			}
		}
	}
	// Exactly dct should have a cliff.
	b.ReportMetric(float64(cliffs), "cliffs_detected")
	first, last := curves["pf"].Points[0].MPKI, curves["pf"].Points[4].MPKI
	b.ReportMetric(first/last, "pf_flatness")
}

// BenchmarkTable2WorkloadCharacteristics regenerates Table II: the
// 21-benchmark suite with its scaling classification.
func BenchmarkTable2WorkloadCharacteristics(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(gpuscale.Benchmarks())
	}
	b.ReportMetric(float64(n), "benchmarks")
	b.ReportMetric(float64(len(workloads.ByClass(workloads.SuperLinear))), "super_linear")
	b.ReportMetric(float64(len(workloads.ByClass(workloads.SubLinear))), "sub_linear")
	b.ReportMetric(float64(len(workloads.ByClass(workloads.Linear))), "linear")
}

// BenchmarkTable3BaselineConfig regenerates Table III: the 128-SM baseline.
func BenchmarkTable3BaselineConfig(b *testing.B) {
	var cfg gpuscale.SystemConfig
	for i := 0; i < b.N; i++ {
		cfg = gpuscale.Baseline128()
	}
	b.ReportMetric(float64(cfg.NumSMs), "sms")
	b.ReportMetric(float64(cfg.MaxThreadsPerSM()), "threads_per_sm")
	b.ReportMetric(cfg.TotalMemBWGBps(), "dram_GBps")
}

// benchFig4 shares the Figure 4 logic for both target sizes.
func benchFig4(b *testing.B, target int) {
	results := strongResults(b)
	b.ResetTimer()
	var mean, max float64
	for i := 0; i < b.N; i++ {
		mean, max = harness.MeanMaxError(results, harness.ScaleModel, target)
	}
	b.ReportMetric(mean, "scale_model_avg_err_pct")
	b.ReportMetric(max, "scale_model_max_err_pct")
	for _, m := range []string{"power-law", "linear", "proportional", "logarithmic"} {
		mm, _ := harness.MeanMaxError(results, m, target)
		b.ReportMetric(mm, m+"_avg_err_pct")
	}
	b.Logf("\n%s", harness.RenderErrorTable(results, target))
}

// BenchmarkFigure4aStrongScaling128 regenerates Figure 4(a): strong-scaling
// IPC prediction error for the 128-SM target across all five methods.
func BenchmarkFigure4aStrongScaling128(b *testing.B) { benchFig4(b, 128) }

// BenchmarkFigure4bStrongScaling64 regenerates Figure 4(b): the 64-SM
// target.
func BenchmarkFigure4bStrongScaling64(b *testing.B) { benchFig4(b, 64) }

// BenchmarkFigure5PredictedCurves regenerates Figure 5: real and predicted
// IPC as a function of system size for twelve select benchmarks spanning
// all three scaling classes.
func BenchmarkFigure5PredictedCurves(b *testing.B) {
	names := []string{"dct", "fwt", "as", "lu", "bfs", "gr", "sr", "btree", "pf", "ht", "at", "gemm"}
	var rendered string
	for _, name := range names {
		bench, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		r, err := harness.Default.RunStrong(bench)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", harness.RenderScalingCurves(r))
		rendered = harness.RenderScalingCurves(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = len(rendered)
	}
	b.ReportMetric(float64(len(names)), "benchmarks_plotted")
}

// BenchmarkTable4WeakScalingConfigs regenerates Table IV: the weak-scaling
// families and their input scaling.
func BenchmarkTable4WeakScalingConfigs(b *testing.B) {
	var fams []gpuscale.WeakBenchmark
	for i := 0; i < b.N; i++ {
		fams = gpuscale.WeakBenchmarks()
	}
	b.ReportMetric(float64(len(fams)), "families")
	mcm := 0
	for _, f := range fams {
		if f.MCM {
			mcm++
		}
		b.Logf("%-6s %-10s CTAs: %d → %d", f.Name, f.Class, f.CTAsAt(8), f.CTAsAt(128))
	}
	b.ReportMetric(float64(mcm), "mcm_families")
}

// BenchmarkFigure6WeakScaling regenerates Figure 6: weak-scaling prediction
// error for the 32/64/128-SM targets.
func BenchmarkFigure6WeakScaling(b *testing.B) {
	results := weakResults(b)
	b.ResetTimer()
	var mean, max float64
	for i := 0; i < b.N; i++ {
		mean, max = harness.WeakMeanMaxError(results, harness.ScaleModel)
	}
	b.ReportMetric(mean, "scale_model_avg_err_pct")
	b.ReportMetric(max, "scale_model_max_err_pct")
	lm, _ := harness.WeakMeanMaxError(results, "logarithmic")
	b.ReportMetric(lm, "logarithmic_avg_err_pct")
	b.Logf("\n%s", harness.RenderWeakErrorTable(results))
}

// BenchmarkFigure7WeakScalingSpeedup regenerates Figure 7: the simulation
// speedup of predicting a weak-scaled target from its scale models instead
// of simulating it.
func BenchmarkFigure7WeakScalingSpeedup(b *testing.B) {
	results := weakResults(b)
	b.ResetTimer()
	var avg128 float64
	for i := 0; i < b.N; i++ {
		var xs []float64
		for _, r := range results {
			xs = append(xs, r.SpeedupEvents[128])
		}
		avg128 = stats.Mean(xs)
	}
	b.ReportMetric(avg128, "speedup_128sm_events")
	var walls, s32, s64 []float64
	for _, r := range results {
		walls = append(walls, r.SpeedupWall[128])
		s32 = append(s32, r.SpeedupEvents[32])
		s64 = append(s64, r.SpeedupEvents[64])
	}
	b.ReportMetric(stats.Mean(walls), "speedup_128sm_wall")
	b.ReportMetric(stats.Mean(s32), "speedup_32sm_events")
	b.ReportMetric(stats.Mean(s64), "speedup_64sm_events")
	b.Logf("\n%s", harness.RenderSpeedupTable(results))
}

// BenchmarkTable5ChipletConfig regenerates Table V: the 16-chiplet MCM
// target configuration.
func BenchmarkTable5ChipletConfig(b *testing.B) {
	var cfg gpuscale.ChipletConfig
	for i := 0; i < b.N; i++ {
		cfg = gpuscale.Target16Chiplet()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.TotalSMs()), "total_sms")
	b.ReportMetric(float64(cfg.NumChiplets), "chiplets")
	b.ReportMetric(cfg.InterChipletGBpsPerChiplet, "interchiplet_GBps")
}

// BenchmarkFigure8ChipletPrediction regenerates Figure 8: 16-chiplet IPC
// prediction error from 4- and 8-chiplet scale models.
func BenchmarkFigure8ChipletPrediction(b *testing.B) {
	results, err := harness.Default.RunChipletAll()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var mean, max float64
	for i := 0; i < b.N; i++ {
		mean, max = harness.ChipletMeanMaxError(results, harness.ScaleModel)
	}
	b.ReportMetric(mean, "scale_model_avg_err_pct")
	b.ReportMetric(max, "scale_model_max_err_pct")
	var sp []float64
	for _, r := range results {
		sp = append(sp, r.SpeedupEvents)
	}
	b.ReportMetric(stats.Mean(sp), "speedup_16c_events")
	b.Logf("\n%s", harness.RenderChipletTable(results))
}

// BenchmarkArtifactAltScaleModels regenerates the artifact appendix E.2
// experiment: using 16- and 32-SM scale models to predict 64 and 128 SMs.
// As the paper's artifact evaluation observed, errors are higher than with
// the 8/16-SM models but scale-model simulation still leads.
func BenchmarkArtifactAltScaleModels(b *testing.B) {
	var results []*harness.StrongResult
	for _, bench := range workloads.All() {
		r, err := harness.Default.RunStrongAlt(bench)
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, r)
	}
	b.ResetTimer()
	var mean128, mean64 float64
	for i := 0; i < b.N; i++ {
		mean128, _ = harness.MeanMaxError(results, harness.ScaleModel, 128)
		mean64, _ = harness.MeanMaxError(results, harness.ScaleModel, 64)
	}
	b.ReportMetric(mean128, "scale_model_avg128_err_pct")
	b.ReportMetric(mean64, "scale_model_avg64_err_pct")
	b.Logf("\n%s", harness.RenderErrorTable(results, 128))
}

// BenchmarkAblationNoCliffModel quantifies the value of miss-curve-driven
// cliff handling: the super-linear benchmarks re-predicted with the cliff
// rules disabled (pre-cliff extrapolation everywhere), as a one-size
// regression would do.
func BenchmarkAblationNoCliffModel(b *testing.B) {
	var withCliff, without []float64
	for _, bench := range workloads.ByClass(workloads.SuperLinear) {
		r, err := harness.Default.RunStrong(bench)
		if err != nil {
			b.Fatal(err)
		}
		withCliff = append(withCliff, r.Err[harness.ScaleModel][128])
		// Re-predict pretending the miss-rate curve were flat.
		flat := make([]float64, 5)
		for i := range flat {
			flat[i] = r.Curve.Points[0].MPKI
		}
		in := core.Input{
			Sizes:    []float64{8, 16, 32, 64, 128},
			SmallIPC: r.Real[8].IPC, LargeIPC: r.Real[16].IPC,
			MPKI: flat, FMemLarge: r.Real[16].FMem, Mode: core.StrongScaling,
		}
		preds, err := core.Predict(in)
		if err != nil {
			b.Fatal(err)
		}
		without = append(without, stats.AbsPctError(preds[2].IPC, r.Real[128].IPC))
	}
	b.ResetTimer()
	var with, wout float64
	for i := 0; i < b.N; i++ {
		with, wout = stats.Mean(withCliff), stats.Mean(without)
	}
	b.ReportMetric(with, "with_cliff_avg_err_pct")
	b.ReportMetric(wout, "without_cliff_avg_err_pct")
	if wout <= with {
		b.Logf("WARNING: cliff handling did not help (%.1f%% vs %.1f%%)", with, wout)
	}
}

// BenchmarkAblationNoCorrectionFactor quantifies the per-workload
// correction factor: sub-linear benchmarks re-predicted with C forced to 1
// (pure proportional scaling from the large scale model).
func BenchmarkAblationNoCorrectionFactor(b *testing.B) {
	var withC, withoutC []float64
	for _, bench := range workloads.ByClass(workloads.SubLinear) {
		r, err := harness.Default.RunStrong(bench)
		if err != nil {
			b.Fatal(err)
		}
		withC = append(withC, r.Err[harness.ScaleModel][128])
		withoutC = append(withoutC, r.Err["proportional"][128])
	}
	b.ResetTimer()
	var with, wout float64
	for i := 0; i < b.N; i++ {
		with, wout = stats.Mean(withC), stats.Mean(withoutC)
	}
	b.ReportMetric(with, "with_C_avg_err_pct")
	b.ReportMetric(wout, "without_C_avg_err_pct")
}

// BenchmarkAblationNonProportionalScaleModel quantifies the proportional-
// scaling design rule: an 8-SM scale model whose LLC, NoC and DRAM keep the
// full 128-SM capacities mispredicts a cliff workload badly, because its
// working set already fits the unscaled LLC.
func BenchmarkAblationNonProportionalScaleModel(b *testing.B) {
	bench, err := workloads.ByName("dct")
	if err != nil {
		b.Fatal(err)
	}
	r, err := harness.Default.RunStrong(bench)
	if err != nil {
		b.Fatal(err)
	}
	base := gpuscale.Baseline128()
	unscaled := func(n int) gpuscale.SystemConfig {
		c := gpuscale.MustScale(base, n)
		c.LLCSizeBytes = base.LLCSizeBytes // shared resources NOT scaled
		c.LLCSlices = base.LLCSlices
		c.NoCBisectionGBps = base.NoCBisectionGBps
		c.MemControllers = base.MemControllers
		c.Name = fmt.Sprintf("gpu-%dsm-unscaled", n)
		return c
	}
	s8, err := harness.Default.Run(unscaled(8), bench.Workload)
	if err != nil {
		b.Fatal(err)
	}
	s16, err := harness.Default.Run(unscaled(16), bench.Workload)
	if err != nil {
		b.Fatal(err)
	}
	// With full-size shared resources the scale models sit post-cliff, so
	// the only defensible extrapolation from them is pre-cliff scaling.
	in := core.Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: s8.IPC, LargeIPC: s16.IPC,
		MPKI: r.Curve.MPKIs(), FMemLarge: s16.FMem, Mode: core.WeakScaling,
	}
	preds, err := core.Predict(in)
	if err != nil {
		b.Fatal(err)
	}
	var badErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		badErr = stats.AbsPctError(preds[2].IPC, r.Real[128].IPC)
	}
	b.ReportMetric(r.Err[harness.ScaleModel][128], "proportional_model_err_pct")
	b.ReportMetric(badErr, "unscaled_model_err_pct")
}

// BenchmarkAblationEventSkip verifies that event-skip fast-forwarding
// changes host time only: identical simulated statistics, measured speedup
// reported as a metric.
func BenchmarkAblationEventSkip(b *testing.B) {
	bench, err := workloads.ByName("va")
	if err != nil {
		b.Fatal(err)
	}
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	run := func(disable bool) (gpu.Stats, float64) {
		start := testingNow()
		st, err := gpuscale.SimulateContext(context.Background(), cfg, bench.Workload, gpuscale.WithEventSkip(!disable))
		if err != nil {
			b.Fatal(err)
		}
		return st, testingNow() - start
	}
	fast, tFast := run(false)
	slow, tSlow := run(true)
	if fast.IPC != slow.IPC || fast.Cycles != slow.Cycles || fast.FMem != slow.FMem {
		b.Fatalf("event skip changed simulation results: %+v vs %+v", fast, slow)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fast.SkippedCycles
	}
	b.ReportMetric(tSlow/tFast, "host_speedup")
	b.ReportMetric(float64(fast.SkippedCycles), "skipped_cycles")
}

// testingNow returns a monotonic seconds reading for coarse host-time
// ratios inside benchmarks.
func testingNow() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// TestNilObserverNoAllocs guards the zero-cost contract of the
// observability layer: without an observer, every hook the simulator's
// per-cycle hot path can reach (counters, gauges, histograms, stream
// events) must be a nil-check branch with zero allocations. AllocsPerRun
// is unreliable under the race detector, so `make race` runs this test
// separately without -race.
func TestNilObserverNoAllocs(t *testing.T) {
	var rec *gpuscale.Observer
	if rec.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	st := rec.Stream("nil-guard")
	sc := rec.Scope("nil-guard")
	c := sc.Counter("c")
	g := sc.Gauge("g")
	h := sc.Histogram("h", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
		g.Set(1.5)
		h.Observe(42)
		st.Instant(1, "cat", "name")
		st.Span(0, 2, "cat", "name")
	}); n != 0 {
		t.Fatalf("nil-observer hooks allocated %.1f times per run, want 0", n)
	}
}

// BenchmarkAblationWarpScheduler compares the Table III GTO policy against
// loose round-robin (LRR) on a latency-sensitive cliff benchmark: the
// policy changes absolute IPC but not the scale-model methodology, whose
// inputs are whatever the simulator measures.
func BenchmarkAblationWarpScheduler(b *testing.B) {
	bench, err := workloads.ByName("va")
	if err != nil {
		b.Fatal(err)
	}
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	gto, err := gpuscale.SimulateContext(context.Background(), cfg, bench.Workload)
	if err != nil {
		b.Fatal(err)
	}
	cfgLRR := cfg
	cfgLRR.WarpScheduler = "lrr"
	cfgLRR.Name = cfg.Name + "-lrr"
	lrr, err := gpuscale.SimulateContext(context.Background(), cfgLRR, bench.Workload)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gto.IPC
	}
	b.ReportMetric(gto.IPC, "gto_ipc")
	b.ReportMetric(lrr.IPC, "lrr_ipc")
	b.ReportMetric(lrr.IPC/gto.IPC, "lrr_over_gto")
}

// BenchmarkAblationWarmup quantifies warm-up filtering: measuring only the
// steady state (after half the instructions) removes cold-miss noise from
// the reported miss rates while leaving the run itself untouched.
func BenchmarkAblationWarmup(b *testing.B) {
	bench, err := workloads.ByName("gemm")
	if err != nil {
		b.Fatal(err)
	}
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	plain, err := gpuscale.SimulateContext(context.Background(), cfg, bench.Workload)
	if err != nil {
		b.Fatal(err)
	}
	warm, err := gpuscale.SimulateContext(context.Background(), cfg, bench.Workload,
		gpuscale.WithWarmupInstructions(plain.Instructions/2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = warm.LLCMPKI
	}
	b.ReportMetric(plain.LLCMPKI, "mpki_full_run")
	b.ReportMetric(warm.LLCMPKI, "mpki_steady_state")
	b.ReportMetric(plain.IPC, "ipc_full_run")
	b.ReportMetric(warm.IPC, "ipc_steady_state")
}

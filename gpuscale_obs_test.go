// Facade-level tests for the observability layer and the context-aware
// simulation API: trace shape, exact metrics↔stats agreement, functional
// options, and cancellation of in-flight simulations.
package gpuscale_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"gpuscale"
	"gpuscale/internal/trace"
)

// bigLinear is a deliberately long-running workload for cancellation tests:
// sequential simulation takes many seconds, so a prompt return proves the
// run loop saw the cancelled context mid-flight.
func bigLinear(name string) gpuscale.Workload {
	return &gpuscale.FuncWorkload{
		WName: name,
		Spec:  gpuscale.KernelSpec{NumCTAs: 4096, WarpsPerCTA: 2},
		Factory: func(cta, warp int) gpuscale.Program {
			g := &trace.SeqGen{Base: uint64(cta*2+warp) * 37 * 128, Stride: 128, Extent: 37 * 128}
			return gpuscale.NewPhaseProgram(gpuscale.Phase{N: 1000, ComputePer: 9, Gen: g})
		},
	}
}

// TestObserverMetricsMatchStats checks the acceptance criterion that the
// registry totals agree EXACTLY with the SimStats fields for the same run.
func TestObserverMetricsMatchStats(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	rec := gpuscale.NewObserver()
	w := smallLinear("obs-exact")
	st, err := gpuscale.SimulateContext(context.Background(), cfg, w, gpuscale.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Registry().Snapshot()
	// A fresh recorder numbers its first stream 1, so the scope is exact.
	prefix := cfg.Name + "/obs-exact#1/"
	for key, want := range map[string]uint64{
		prefix + "l1/accesses":  st.L1Accesses,
		prefix + "l1/misses":    st.L1Misses,
		prefix + "llc/accesses": st.LLCAccesses,
		prefix + "llc/misses":   st.LLCMisses,
		prefix + "noc/bytes":    st.NoCBytes,
		prefix + "dram/bytes":   st.DRAMBytes,
	} {
		got, ok := snap.Counters[key]
		if !ok {
			t.Errorf("counter %q missing from snapshot", key)
			continue
		}
		if got != want {
			t.Errorf("counter %q = %d, want %d (SimStats)", key, got, want)
		}
	}
}

// TestObserverMetricsMatchStatsWarmup repeats the exactness check with
// warm-up filtering, which resets the statistics mid-run.
func TestObserverMetricsMatchStatsWarmup(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	plain, err := gpuscale.SimulateContext(context.Background(), cfg, smallLinear("obs-warm"))
	if err != nil {
		t.Fatal(err)
	}
	rec := gpuscale.NewObserver()
	st, err := gpuscale.SimulateContext(context.Background(), cfg, smallLinear("obs-warm"),
		gpuscale.WithObserver(rec),
		gpuscale.WithWarmupInstructions(plain.Instructions/2))
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Registry().Snapshot()
	prefix := cfg.Name + "/obs-warm#1/"
	if got := snap.Counters[prefix+"llc/misses"]; got != st.LLCMisses {
		t.Errorf("llc/misses = %d, want %d after warmup reset", got, st.LLCMisses)
	}
	if got := snap.Counters[prefix+"dram/bytes"]; got != st.DRAMBytes {
		t.Errorf("dram/bytes = %d, want %d after warmup reset", got, st.DRAMBytes)
	}
}

// TestObserverChromeTrace checks the golden-file criterion: the emitted
// trace is valid Chrome trace_event JSON and its timestamps are
// monotonically non-decreasing.
func TestObserverChromeTrace(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	rec := gpuscale.NewObserver()
	_, err := gpuscale.SimulateContext(context.Background(), cfg, smallLinear("obs-trace"),
		gpuscale.WithObserver(rec), gpuscale.WithSampleInterval(512))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Pid   int64   `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	var kernels, counters int
	lastTS := -1.0
	for i, e := range tf.TraceEvents {
		if e.Name == "" || e.Phase == "" {
			t.Fatalf("event %d missing name/ph: %+v", i, e)
		}
		if e.Phase == "M" {
			continue // metadata carries no timestamp
		}
		if e.TS < lastTS {
			t.Fatalf("event %d ts=%v precedes %v: timestamps not monotone", i, e.TS, lastTS)
		}
		lastTS = e.TS
		switch e.Phase {
		case "X":
			if e.Cat == "kernel" {
				kernels++
			}
		case "C":
			counters++
		}
	}
	if kernels == 0 {
		t.Error("no kernel span in trace")
	}
	if counters == 0 {
		t.Error("no counter samples in trace (sampling did not run)")
	}

	// The JSONL form must be one valid JSON object per line.
	buf.Reset()
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(tf.TraceEvents) {
		t.Fatalf("JSONL has %d lines, trace has %d events", len(lines), len(tf.TraceEvents))
	}
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("JSONL line %d invalid: %v", i, err)
		}
	}
}

// TestSimOptions exercises the functional options of SimulateContext.
func TestSimOptions(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	ctx := context.Background()

	plain, err := gpuscale.SimulateContext(ctx, cfg, smallLinear("obs-opts"))
	if err != nil {
		t.Fatal(err)
	}
	// Event skip changes host time only.
	slow, err := gpuscale.SimulateContext(ctx, cfg, smallLinear("obs-opts"), gpuscale.WithEventSkip(false))
	if err != nil {
		t.Fatal(err)
	}
	if plain.IPC != slow.IPC || plain.Cycles != slow.Cycles {
		t.Errorf("WithEventSkip(false) changed results: %+v vs %+v", plain, slow)
	}
	// A legacy options struct folds in via WithOptions.
	viaStruct, err := gpuscale.SimulateContext(ctx, cfg, smallLinear("obs-opts"),
		gpuscale.WithOptions(gpuscale.SimOptions{WarmupInstructions: plain.Instructions / 2}))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := gpuscale.SimulateContext(ctx, cfg, smallLinear("obs-opts"),
		gpuscale.WithWarmupInstructions(plain.Instructions/2))
	if err != nil {
		t.Fatal(err)
	}
	if viaStruct != direct {
		t.Error("WithOptions and WithWarmupInstructions disagree")
	}
	// MaxCycles aborts over-long runs with an error.
	if _, err := gpuscale.SimulateContext(ctx, cfg, smallLinear("obs-opts"), gpuscale.WithMaxCycles(10)); err == nil {
		t.Error("WithMaxCycles(10) did not abort")
	}
}

// TestSimulateContextCancelled checks that a cancelled context aborts a
// monolithic simulation mid-run.
func TestSimulateContextCancelled(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := gpuscale.SimulateContext(ctx, cfg, smallLinear("obs-cancel")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSimulateMCMContextCancelled checks the chiplet run loop honours
// cancellation too.
func TestSimulateMCMContextCancelled(t *testing.T) {
	mcm := gpuscale.Target16Chiplet()
	mcm.Chiplet.NumSMs = 4
	cfg, err := gpuscale.ScaleChiplets(mcm, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := gpuscale.SimulateMCMContext(ctx, cfg, smallLinear("obs-mcm-cancel")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunJobsCancelsInFlight is the regression test for sweep cancellation:
// cancelling the RunJobs context must abort the simulation already running,
// not just undispatched jobs. The workload takes many seconds sequentially;
// the generous deadline below only trips when the in-flight abort is broken.
func TestRunJobsCancelsInFlight(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	jobs := []gpuscale.Job{gpuscale.NewJob(cfg, bigLinear("obs-inflight"))}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, err := gpuscale.RunJobs(ctx, jobs, gpuscale.EngineOptions{Workers: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunJobs err = %v, want context.Canceled", err)
	}
	if len(results) != 1 || !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("job result err = %v, want context.Canceled", results[0].Err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v: the in-flight simulation was not aborted", elapsed)
	}
}

// TestObserverSampling checks WithSampleInterval drives the sampler and the
// samples carry the advertised series.
func TestObserverSampling(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	rec := gpuscale.NewObserver(gpuscale.ObserverSampleEvery(256))
	st, err := gpuscale.SimulateContext(context.Background(), cfg, smallLinear("obs-sample"),
		gpuscale.WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	samples := rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	want := st.Cycles / 256
	if int64(len(samples)) > want+1 {
		t.Errorf("%d samples for %d cycles at interval 256", len(samples), st.Cycles)
	}
	for _, key := range []string{"occupancy", "ipc", "dram_util"} {
		if _, ok := samples[0].Values[key]; !ok {
			t.Errorf("sample missing series %q", key)
		}
	}
	last := int64(-1)
	for _, s := range samples {
		if s.Cycle < last {
			t.Fatalf("sample cycles not monotone: %d after %d", s.Cycle, last)
		}
		last = s.Cycle
	}
}

// Weak scaling: predicting systems that run proportionally larger inputs.
//
// Under weak scaling the workload grows with the machine, the working set
// stays constant relative to the LLC, and no miss-rate curve is needed —
// only the two scale-model simulations. Because the scale models also run
// the *small* inputs, prediction is much cheaper than simulating the target
// with its big input: this example also reports that simulation speedup
// (the paper's Figure 7).
//
// Run with: go run ./examples/weakscaling
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"gpuscale"
)

func main() {
	family, err := gpuscale.WeakBenchmarkByName("va")
	if err != nil {
		log.Fatal(err)
	}
	base := gpuscale.Baseline128()

	// Simulate the scale models with their scaled-down inputs.
	type run struct {
		stats gpuscale.SimStats
		wall  time.Duration
	}
	simulate := func(sms int) run {
		cfg := gpuscale.MustScale(base, sms)
		start := time.Now()
		st, err := gpuscale.SimulateContext(context.Background(), cfg, family.ForSMs(sms))
		if err != nil {
			log.Fatal(err)
		}
		return run{stats: st, wall: time.Since(start)}
	}
	small := simulate(8)
	large := simulate(16)
	fmt.Printf("weak-scaling family %q (%s)\n", family.Name, family.Class)
	fmt.Printf(" 8-SM scale model: IPC %.2f (input: %d CTAs)\n", small.stats.IPC, family.CTAsAt(8))
	fmt.Printf("16-SM scale model: IPC %.2f (input: %d CTAs)\n\n", large.stats.IPC, family.CTAsAt(16))

	preds, err := gpuscale.Predict(gpuscale.PredictionInput{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: small.stats.IPC,
		LargeIPC: large.stats.IPC,
		Mode:     gpuscale.WeakScaling,
	})
	if err != nil {
		log.Fatal(err)
	}

	scaleCost := small.wall + large.wall
	fmt.Printf("%-6s %-12s %-12s %-9s %s\n", "SMs", "predicted", "simulated", "error", "speedup vs simulating target")
	for _, p := range preds {
		target := simulate(int(p.Size))
		fmt.Printf("%-6.0f %-12.2f %-12.2f %+7.1f%%  %.1fx\n",
			p.Size, p.IPC, target.stats.IPC,
			(p.IPC-target.stats.IPC)/target.stats.IPC*100,
			float64(target.wall)/float64(scaleCost))
	}
	fmt.Println("\nUnder weak scaling the target runs a 16x larger input, so predicting from")
	fmt.Println("the scale models avoids the most expensive simulations entirely.")
}

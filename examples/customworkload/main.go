// Custom workload: how a downstream user plugs their own kernel into the
// library. The workload here is a synthetic "graph update" kernel: each
// warp streams its own edge list but funnels frequent atomic updates into a
// small shared frontier — the camping pattern that causes sub-linear
// scaling. The example builds the kernel from the public Phase/AddrGen
// primitives, simulates the scale models, and predicts the large machines.
//
// Run with: go run ./examples/customworkload
package main

import (
	"context"
	"fmt"
	"log"

	"gpuscale"
	"gpuscale/internal/trace"
)

// graphUpdate builds the custom kernel grid.
func graphUpdate(ctas int) gpuscale.Workload {
	return &gpuscale.FuncWorkload{
		WName: "graph-update",
		Spec:  gpuscale.KernelSpec{NumCTAs: ctas, WarpsPerCTA: 4},
		Factory: func(cta, warp int) gpuscale.Program {
			// Private edge list: a streaming walk, 37 lines per warp
			// (prime, to decorrelate slice indices across warps).
			id := uint64(cta*4 + warp)
			edges := &trace.SeqGen{Base: 1<<40 + id*37*128, Stride: 128, Extent: 37 * 128}
			// Shared frontier: one hot line, updated with atomics that
			// bypass the L1.
			frontier := &trace.SeqGen{Base: 1 << 50, Stride: 128, Extent: 128}
			var phases []gpuscale.Phase
			for round := 0; round < 20; round++ {
				phases = append(phases,
					gpuscale.Phase{N: 2, ComputePer: 1, Gen: edges},
					gpuscale.Phase{N: 3, ComputePer: 0, Gen: frontier, Flags: trace.BypassL1},
				)
			}
			return gpuscale.NewPhaseProgram(phases...)
		},
	}
}

func main() {
	ctx := context.Background()
	w := graphUpdate(2048)
	base := gpuscale.Baseline128()

	small, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, 8), w)
	if err != nil {
		log.Fatal(err)
	}
	large, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, 16), w)
	if err != nil {
		log.Fatal(err)
	}
	curve, err := gpuscale.MissRateCurve(w, gpuscale.StandardConfigs())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale models: 8 SMs IPC %.2f, 16 SMs IPC %.2f (C = %.3f)\n",
		small.IPC, large.IPC, gpuscale.CorrectionFactor(8, small.IPC, 16, large.IPC))

	preds, err := gpuscale.Predict(gpuscale.PredictionInput{
		Sizes:     []float64{8, 16, 32, 64, 128},
		SmallIPC:  small.IPC,
		LargeIPC:  large.IPC,
		MPKI:      curve.MPKIs(),
		FMemLarge: large.FMem,
		Mode:      gpuscale.StrongScaling,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-8s %-12s %-12s %s\n", "SMs", "predicted", "simulated", "error")
	for _, p := range preds {
		st, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, int(p.Size)), w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.0f %-12.2f %-12.2f %+.1f%%\n",
			p.Size, p.IPC, st.IPC, (p.IPC-st.IPC)/st.IPC*100)
	}
	fmt.Println("\nThe camping on the shared frontier makes this kernel scale sub-linearly;")
	fmt.Println("the per-workload correction factor captures the trend from the scale models alone.")
}

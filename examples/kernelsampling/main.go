// Kernel sampling: handling real applications that launch many kernels.
//
// ML inference workloads (the paper's MLPerf benchmarks) launch thousands
// of kernel invocations; simulating all of them — even on scale models — is
// wasteful. The paper uses the Sieve methodology to pick representative
// kernel invocations. This example builds a 12-kernel application from
// three kernel families, lets the sieve package pick 3 weighted
// representatives, runs the scale-model workflow on just those, and checks
// the whole-application estimate against a full multi-kernel simulation.
//
// Run with: go run ./examples/kernelsampling
package main

import (
	"context"
	"fmt"
	"log"

	"gpuscale"
	"gpuscale/internal/sieve"
	"gpuscale/internal/trace"
)

// appKernels builds the synthetic application: conv-like compute kernels,
// elementwise streaming kernels, and reduction kernels, with varying sizes.
func appKernels() []gpuscale.Workload {
	var ks []gpuscale.Workload
	mk := func(name string, ctas, n, computePer int, lines uint64) {
		ks = append(ks, &gpuscale.FuncWorkload{
			WName: name,
			Spec:  gpuscale.KernelSpec{NumCTAs: ctas, WarpsPerCTA: 2},
			Factory: func(cta, warp int) gpuscale.Program {
				id := uint64(cta*2 + warp)
				g := &trace.SeqGen{Base: id * lines * 128, Stride: 128, Extent: lines * 128}
				return gpuscale.NewPhaseProgram(gpuscale.Phase{N: n, ComputePer: computePer, Gen: g})
			},
		})
	}
	for i := 0; i < 4; i++ {
		mk(fmt.Sprintf("conv%d", i), 1536, 400+40*i, 15, 16) // compute-bound
	}
	for i := 0; i < 4; i++ {
		mk(fmt.Sprintf("eltwise%d", i), 1536, 150+30*i, 2, 37) // bandwidth-bound
	}
	for i := 0; i < 4; i++ {
		mk(fmt.Sprintf("reduce%d", i), 768, 100+20*i, 4, 23) // mixed
	}
	return ks
}

func main() {
	ctx := context.Background()
	kernels := appKernels()
	base := gpuscale.Baseline128()

	// Step 1: cheap functional profiling of every kernel.
	var profiles []sieve.Profile
	for _, k := range kernels {
		p, err := sieve.ProfileKernel(k, base.LineSize)
		if err != nil {
			log.Fatal(err)
		}
		profiles = append(profiles, p)
	}

	// Step 2: stratified selection of 3 representatives.
	reps, err := sieve.Select(profiles, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %d kernels → %d representatives\n", len(kernels), len(reps))
	for _, r := range reps {
		fmt.Printf("  %-9s weight %.2f (%d kernels, %.0f%% memory instructions)\n",
			r.Profile.Kernel.Name(), r.Weight, r.Members, r.Profile.MemFraction*100)
	}

	// Step 3: scale-model workflow per representative, predicting 128 SMs.
	estimate := map[string]float64{}
	for _, r := range reps {
		w := r.Profile.Kernel
		small, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, 8), w)
		if err != nil {
			log.Fatal(err)
		}
		large, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, 16), w)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := gpuscale.PredictAt(gpuscale.PredictionInput{
			Sizes:    []float64{8, 16, 32, 64, 128},
			SmallIPC: small.IPC, LargeIPC: large.IPC,
			Mode: gpuscale.WeakScaling, // no miss-rate cliffs in these kernels
		}, 128)
		if err != nil {
			log.Fatal(err)
		}
		estimate[w.Name()] = pred.IPC
	}
	appIPC, err := sieve.EstimateIPC(reps, estimate)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4 (verification): simulate the whole 12-kernel application at
	// 128 SMs and compare.
	full, err := gpuscale.SimulateSequenceContext(ctx, gpuscale.MustScale(base, 128), kernels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhole-application IPC at 128 SMs:\n")
	fmt.Printf("  sieve + scale-model estimate: %.1f\n", appIPC)
	fmt.Printf("  full multi-kernel simulation: %.1f\n", full.IPC)
	fmt.Printf("  error: %+.1f%%  (simulating %d of %d kernels, on 8/16-SM models only)\n",
		(appIPC-full.IPC)/full.IPC*100, len(reps), len(kernels))
}

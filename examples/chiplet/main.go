// Multi-chiplet GPUs: the paper's Section VII-D case study.
//
// Monolithic GPUs cannot grow past the reticle limit; multi-chip-module
// (MCM) GPUs scale by adding chiplets. This example predicts a 16-chiplet
// system (1,024 SMs) from 4- and 8-chiplet scale models under weak scaling,
// then verifies against a real 16-chiplet simulation.
//
// Run with: go run ./examples/chiplet
package main

import (
	"context"
	"fmt"
	"log"

	"gpuscale"
)

func main() {
	ctx := context.Background()
	family, err := gpuscale.WeakBenchmarkByName("bp")
	if err != nil {
		log.Fatal(err)
	}
	base := gpuscale.Target16Chiplet()
	smsPerChiplet := base.Chiplet.NumSMs

	simulate := func(chiplets int) gpuscale.MCMStats {
		cfg, err := gpuscale.ScaleChiplets(base, chiplets)
		if err != nil {
			log.Fatal(err)
		}
		st, err := gpuscale.SimulateMCMContext(ctx, cfg, family.ForSMs(chiplets*smsPerChiplet))
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	small := simulate(4)
	large := simulate(8)
	fmt.Printf("MCM case study, weak-scaling family %q\n", family.Name)
	fmt.Printf("4-chiplet scale model (%4d SMs): IPC %.1f, remote accesses %.1f%%\n",
		4*smsPerChiplet, small.IPC, small.RemoteFraction*100)
	fmt.Printf("8-chiplet scale model (%4d SMs): IPC %.1f, remote accesses %.1f%%\n\n",
		8*smsPerChiplet, large.IPC, large.RemoteFraction*100)

	preds, err := gpuscale.Predict(gpuscale.PredictionInput{
		Sizes:    []float64{4, 8, 16},
		SmallIPC: small.IPC,
		LargeIPC: large.IPC,
		Mode:     gpuscale.WeakScaling,
	})
	if err != nil {
		log.Fatal(err)
	}
	target := simulate(16)
	p := preds[0]
	fmt.Printf("16-chiplet target (%d SMs):\n", 16*smsPerChiplet)
	fmt.Printf("  predicted IPC: %.1f\n", p.IPC)
	fmt.Printf("  simulated IPC: %.1f\n", target.IPC)
	fmt.Printf("  error:         %+.1f%%\n", (p.IPC-target.IPC)/target.IPC*100)
}

// Quickstart: the full scale-model simulation workflow on one benchmark.
//
// It simulates the 8- and 16-SM scale models of the paper's dct benchmark,
// collects the miss-rate curve by functional simulation, predicts the
// 32/64/128-SM targets, and — because this is a simulator, so we can afford
// it — also simulates the targets to show the prediction error.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gpuscale"
)

func main() {
	ctx := context.Background()
	bench, err := gpuscale.BenchmarkByName("dct")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %s (%s, %s scaling)\n\n", bench.FullName, bench.Suite, bench.Class)

	base := gpuscale.Baseline128()
	cfgs := gpuscale.StandardConfigs()

	// Step 1: simulate the scale models (the only timing simulations the
	// methodology requires).
	small, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, 8), bench.Workload)
	if err != nil {
		log.Fatal(err)
	}
	large, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, 16), bench.Workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(" 8-SM scale model: IPC %.2f, f_mem %.3f\n", small.IPC, small.FMem)
	fmt.Printf("16-SM scale model: IPC %.2f, f_mem %.3f\n", large.IPC, large.FMem)
	c := gpuscale.CorrectionFactor(8, small.IPC, 16, large.IPC)
	fmt.Printf("correction factor C = %.3f\n\n", c)

	// Step 2: collect the miss-rate curve (functional simulation — fast).
	curve, err := gpuscale.MissRateCurve(bench.Workload, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("miss-rate curve (MPKI vs LLC capacity):")
	for _, p := range curve.Points {
		fmt.Printf("  %7.3f MiB  %8.2f\n", float64(p.CapacityBytes)/(1<<20), p.MPKI)
	}
	if i, ok := gpuscale.DetectCliff(curve.MPKIs(), 0, 0); ok {
		fmt.Printf("cliff between samples %d and %d\n\n", i, i+1)
	} else {
		fmt.Println("no cliff detected")
	}

	// Step 3: predict the targets.
	preds, err := gpuscale.Predict(gpuscale.PredictionInput{
		Sizes:     []float64{8, 16, 32, 64, 128},
		SmallIPC:  small.IPC,
		LargeIPC:  large.IPC,
		MPKI:      curve.MPKIs(),
		FMemLarge: large.FMem,
		Mode:      gpuscale.StrongScaling,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 4 (verification only): simulate the targets and compare.
	fmt.Printf("%-8s %-12s %-12s %-10s %s\n", "SMs", "predicted", "simulated", "error", "region")
	for _, p := range preds {
		st, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, int(p.Size)), bench.Workload)
		if err != nil {
			log.Fatal(err)
		}
		errPct := (p.IPC - st.IPC) / st.IPC * 100
		fmt.Printf("%-8.0f %-12.2f %-12.2f %+8.1f%%  %s\n", p.Size, p.IPC, st.IPC, errPct, p.Region)
	}
}

# Development targets. `make quick` is the fast pre-commit gate; `make
# verify` is the full tier-1 gate (ROADMAP.md) plus static analysis, the
# race-enabled concurrency tests guarding the parallel experiment engine,
# and the deprecated-API usage gate.

GO ?= go

.PHONY: build vet short test race quick verify noalloc deprecated-gate smoke bench bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# The concurrency gate: race-enabled tests of every code path that runs on
# or feeds the worker-pool engine, plus the intra-simulation shard runners
# (internal/parallel barrier pool and the gpu/chiplet sharded loops'
# randomized cross-shard stress cells, quantum windows included — see
# docs/PARALLELISM.md). The harness run is restricted to its concurrency
# tests (singleflight, pre-warm, progress) and the gpu/chiplet runs to the
# sharded stress/abort cells because the rest of those suites is sequential
# simulation that the race detector slows ~7x for no extra coverage;
# `go test -race ./internal/harness/ ./internal/gpu/ ./internal/chiplet/`
# still passes if you want the whole packages raced. AllocsPerRun is
# unreliable under -race, so the zero-allocation guard for the disabled
# observability path runs as a separate non-race step (noalloc).
race: noalloc
	$(GO) test -race -short ./internal/engine/... ./internal/mrc/... ./internal/obs/... ./internal/parallel/... ./internal/server/... ./internal/uarch/...
	$(GO) test -race -short -run 'Singleflight|Prewarm|Parallel|ResultStore|Deprecated' ./internal/harness/
	$(GO) test -race -short -run 'TestShardedRandomCrossTrafficStress|TestShardedMaxCyclesAborts' ./internal/chiplet/
	$(GO) test -race -short -run 'TestGPUShardedRandomCrossTrafficStress|TestGPUShardedMaxCyclesAborts' ./internal/gpu/

# The zero-cost-when-disabled guard: with a nil observer the simulator hot
# path must not allocate — neither the observability hooks themselves nor a
# post-warm-up steady-state kernel run (warp ticks, CTA launches, cache and
# MSHR traffic, event-skip bookkeeping). Run without -race (see above).
noalloc:
	$(GO) test -run 'TestNilObserverNoAllocs' .
	$(GO) test -run 'TestNilHooksNoAllocs' ./internal/obs/
	$(GO) test -run 'TestSteadyStateNoAllocs' ./internal/gpu/ ./internal/chiplet/

# The performance regression harness. BenchmarkSimulatorHotPath compares
# the event-driven run loop against the dense legacy baseline on full
# kernels and writes the machine-readable summary (simulated Mcycles/s,
# events/s, event-vs-legacy speedup) to BENCH_hotpath.json; the micro and
# figure benchmarks track the component hot paths and the paper pipeline,
# and BenchmarkAnalyticPredict merges the analytic tier's per-request cost
# and analytic-vs-cycle speedup columns into the same summary.
# Compare runs with `go run golang.org/x/perf/cmd/benchstat` if available,
# or diff BENCH_hotpath.json.
bench:
	BENCH_HOTPATH_JSON=$(CURDIR)/BENCH_hotpath.json \
		$(GO) test -run XXX -bench 'BenchmarkSimulatorHotPath|BenchmarkSteadyStateCycle' \
		-benchmem ./internal/gpu/
	$(GO) test -run XXX -bench 'BenchmarkCacheAccess|BenchmarkMSHR' -benchmem ./internal/cache/
	BENCH_HOTPATH_JSON=$(CURDIR)/BENCH_hotpath.json \
		$(GO) test -run XXX -bench 'BenchmarkFigure|BenchmarkTable|BenchmarkAnalyticPredict' \
		-benchmem -benchtime 1x .

# The throughput regression guard: re-runs the hot-path cells three times
# and fails if any cell's best simMcyc/s drops more than 20% below the
# committed BENCH_hotpath.json. Best-of-three absorbs background load
# spikes (a real regression slows every run); CI runs it as a separate
# non-blocking job.
bench-check:
	$(GO) run ./cmd/benchcheck -baseline $(CURDIR)/BENCH_hotpath.json

# The API migration gate, three scans:
#   1. The deprecated facade entry points (Simulate, SimulateWithOptions,
#      SimulateSequence, SimulateMCM) may be called only by their wrappers
#      in gpuscale.go and by gpuscale_deprecated_test.go, which pins the
#      wrapper/Context-form agreement. Everything else — commands,
#      examples, internal packages, the other facade tests — must use the
#      context-aware API.
#   2. The deprecated harness setters (SetParallel, SetProgress,
#      SetObserver, SetMCMShards) may be called only by
#      internal/harness/deprecated*.go; everything else must pass
#      functional options to harness.New.
#   3. Every switch dispatching over uarch variant values ("case uarch.X")
#      must carry a panicking default, so adding a new variant axis value
#      fails loudly at every dispatch site instead of silently simulating
#      the baseline. Validation lives in internal/uarch (whose own
#      unqualified switches return errors and are exempt); dispatch sites
#      validate first and treat an unmatched value as unreachable.
deprecated-gate:
	@bad=$$(grep -rnE 'gpuscale\.(Simulate|SimulateWithOptions|SimulateSequence|SimulateMCM)\(' \
		cmd/ examples/ internal/ bench_test.go gpuscale_obs_test.go \
		gpuscale_test.go gpuscale_seq_test.go request_test.go 2>/dev/null); \
	if [ -n "$$bad" ]; then \
		echo "deprecated simulation entry points in use (switch to SimulateContext/SimulateSequenceContext/SimulateMCMContext):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rnE '\.Set(Parallel|Progress|Observer|MCMShards)\(' \
		cmd/ examples/ internal/ bench_test.go gpuscale_obs_test.go 2>/dev/null \
		| grep -v 'internal/harness/deprecated'); \
	if [ -n "$$bad" ]; then \
		echo "deprecated harness setters in use (pass harness options to New: WithParallel, WithProgress, WithObserver, WithMCMShards):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rlE 'case uarch\.' cmd/ examples/ internal/ *.go 2>/dev/null \
	| grep -v '^internal/uarch/' | sort | xargs -r awk ' \
		FNR == 1 { sp = 0 } \
		{ n = 0; while (substr($$0, n + 1, 1) == "\t") n++ } \
		$$0 ~ /^\t*switch[ {]/ { sp++; ind[sp] = n; swline[sp] = FNR; swfile[sp] = FILENAME; hasuarch[sp] = hasdef[sp] = haspanic[sp] = 0; next } \
		sp > 0 && $$0 ~ /^\t*case uarch\./ && n == ind[sp] { hasuarch[sp] = 1 } \
		sp > 0 && $$0 ~ /^\t*default:/ && n == ind[sp] { hasdef[sp] = 1 } \
		sp > 0 && /panic\(/ { haspanic[sp] = 1 } \
		sp > 0 && $$0 ~ /^\t*}$$/ && n == ind[sp] { \
			if (hasuarch[sp] && !(hasdef[sp] && haspanic[sp])) printf "%s:%d: switch over uarch variant values without a panicking default\n", swfile[sp], swline[sp]; \
			sp-- } \
	'); \
	if [ -n "$$bad" ]; then \
		echo "uarch dispatch switches must panic in default (validate first; see docs/UARCH.md):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "deprecated-gate: ok"

# The daemon smoke test: boots an in-process gpuscaled, round-trips a
# /v1/predict twice, and asserts the byte-identical cache hit, the
# /metrics counters, and a clean shutdown (see docs/SERVICE.md).
smoke:
	$(GO) run ./cmd/gpuscaled -smoke

quick: build vet race short deprecated-gate smoke

verify: build vet race test deprecated-gate smoke

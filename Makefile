# Development targets. `make quick` is the fast pre-commit gate; `make
# verify` is the full tier-1 gate (ROADMAP.md) plus static analysis and the
# race-enabled concurrency tests guarding the parallel experiment engine.

GO ?= go

.PHONY: build vet short test race quick verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

# The concurrency gate: race-enabled tests of every code path that runs on
# or feeds the worker-pool engine. The harness run is restricted to its
# concurrency tests (singleflight, pre-warm, progress) because the rest of
# its short suite is sequential simulation that the race detector slows
# ~7x for no extra coverage; `go test -race -short ./internal/harness/`
# still passes if you want the whole package raced.
race:
	$(GO) test -race -short ./internal/engine/... ./internal/mrc/...
	$(GO) test -race -short -run 'Singleflight|Prewarm|SetParallel' ./internal/harness/

quick: build vet race short

verify: build vet race test

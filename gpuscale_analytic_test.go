package gpuscale_test

// Cross-validation of the analytic tier against the committed golden grid
// (testdata/golden_stats.json): for every cell the simulator pins bit-for-
// bit, the analytic model must predict IPC and f_mem within committed
// per-family relative-error bounds (testdata/analytic_bounds.json). The
// golden stats are read from disk, never re-simulated, so this test is
// fast; `-update` regenerates the bounds from the current model's observed
// errors (plus margin) the same way the golden snapshot itself is managed.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"testing"

	"gpuscale"
)

const analyticBoundsPath = "testdata/analytic_bounds.json"

// analyticBounds are the committed per-family maximum relative errors.
type analyticBounds struct {
	// IPC and FMem map family name to the allowed max relative error.
	IPC  map[string]float64 `json:"ipc"`
	FMem map[string]float64 `json:"fmem"`
}

// fmemErrFloor is the absolute floor used in the f_mem relative error
// denominator, so near-zero measured f_mem does not blow the ratio up.
const fmemErrFloor = 0.05

// analyticFamily buckets a golden label for error accounting: strong cells
// split by their paper scaling class, everything else by label prefix.
func analyticFamily(t *testing.T, label string) string {
	parts := strings.Split(label, "/")
	prefix := parts[0]
	if prefix == "strong" || prefix == "gpu-sharded" || prefix == "horizon" && !strings.Contains(parts[2], "c-") {
		if prefix == "horizon" {
			return "horizon"
		}
		bench, err := gpuscale.BenchmarkByName(parts[1])
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return "strong-" + string(bench.Class)
	}
	return prefix
}

// analyticEstimateFor reproduces the golden cell's configuration and
// workload from its label and runs the analytic model on it — the same
// label grammar goldenCells uses to build the grid.
func analyticEstimateFor(t *testing.T, label string) gpuscale.AnalyticEstimate {
	t.Helper()
	parts := strings.Split(label, "/")
	base := gpuscale.Baseline128()
	switch parts[0] {
	case "strong", "gpu-sharded", "horizon":
		if len(parts) == 3 && strings.Contains(parts[2], "c-dram") {
			// horizon/bfs/2c-dram15: a chiplet config with modified DRAM.
			var chips, dram int
			if _, err := fmt.Sscanf(parts[2], "%dc-dram%d", &chips, &dram); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			cfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), chips)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Chiplet.DRAMLatency = dram
			return mustAnalyzeMCM(t, label, cfg, parts[1])
		}
		var sms int
		rest := ""
		if _, err := fmt.Sscanf(parts[2], "%dsm%s", &sms, &rest); err != nil {
			if _, err := fmt.Sscanf(parts[2], "%dsm", &sms); err != nil {
				t.Fatalf("%s: cannot parse size: %v", label, err)
			}
		}
		cfg := gpuscale.MustScale(base, sms)
		if i := strings.Index(rest, "-dram"); i >= 0 {
			var dram int
			if _, err := fmt.Sscanf(rest[i:], "-dram%d", &dram); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			cfg.DRAMLatency = dram
		}
		bench, err := gpuscale.BenchmarkByName(parts[1])
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		est, err := gpuscale.AnalyzeCell(cfg, bench.Workload)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return est
	case "chiplet", "chiplet-sharded":
		var chips int
		if _, err := fmt.Sscanf(strings.SplitN(parts[2], "-", 2)[0], "%dc", &chips); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), chips)
		if err != nil {
			t.Fatal(err)
		}
		return mustAnalyzeMCM(t, label, cfg, parts[1])
	case "chiplet-weak":
		var chips int
		if _, err := fmt.Sscanf(parts[2], "%dc", &chips); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), chips)
		if err != nil {
			t.Fatal(err)
		}
		fam, err := gpuscale.WeakBenchmarkByName(parts[1])
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		w := fam.ForSMs(cfg.NumChiplets * cfg.Chiplet.NumSMs)
		est, err := gpuscale.AnalyzeMCMCell(cfg, w)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return est
	case "uarch":
		// uarch/<variant>/<bench>/<N>sm: a monolithic cell under a
		// non-default microarchitecture variant (docs/UARCH.md). The
		// analytic model does not simulate the variant — it discounts its
		// confidence instead — so these families carry the widest bounds.
		v, err := gpuscale.ParseUarch(parts[1])
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		var sms int
		if _, err := fmt.Sscanf(parts[3], "%dsm", &sms); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cfg := gpuscale.MustScale(base, sms)
		cfg.Uarch = v
		bench, err := gpuscale.BenchmarkByName(parts[2])
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		est, err := gpuscale.AnalyzeCell(cfg, bench.Workload)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return est
	case "uarch-chiplet":
		// uarch-chiplet/<variant>/<bench>/<N>c: the MCM twin.
		v, err := gpuscale.ParseUarch(parts[1])
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		var chips int
		if _, err := fmt.Sscanf(parts[3], "%dc", &chips); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), chips)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Chiplet.Uarch = v
		return mustAnalyzeMCM(t, label, cfg, parts[2])
	case "seq":
		var sms int
		if _, err := fmt.Sscanf(parts[2], "%dsm", &sms); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		var ws []gpuscale.Workload
		for _, name := range strings.Split(parts[1], "+") {
			bench, err := gpuscale.BenchmarkByName(name)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			ws = append(ws, bench.Workload)
		}
		est, err := gpuscale.AnalyzeSequence(gpuscale.MustScale(base, sms), ws)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return est
	default:
		t.Fatalf("%s: unknown golden family", label)
		return gpuscale.AnalyticEstimate{}
	}
}

func mustAnalyzeMCM(t *testing.T, label string, cfg gpuscale.ChipletConfig, bench string) gpuscale.AnalyticEstimate {
	t.Helper()
	b, err := gpuscale.BenchmarkByName(bench)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	est, err := gpuscale.AnalyzeMCMCell(cfg, b.Workload)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return est
}

// TestAnalyticMatchesGoldenGrid cross-validates the analytic tier against
// every cell of the committed golden grid, asserting per-family maximum
// relative error on IPC and f_mem against testdata/analytic_bounds.json.
// Run with -update (after intended model changes, reviewed like any golden
// update) to regenerate the bounds from observed errors plus margin.
func TestAnalyticMatchesGoldenGrid(t *testing.T) {
	buf, err := os.ReadFile(goldenStatsPath)
	if err != nil {
		t.Fatalf("reading golden stats: %v", err)
	}
	var cells []goldenEntry
	if err := json.Unmarshal(buf, &cells); err != nil {
		t.Fatalf("parsing %s: %v", goldenStatsPath, err)
	}
	if len(cells) == 0 {
		t.Fatal("golden grid is empty")
	}

	maxIPC := map[string]float64{}
	maxFMem := map[string]float64{}
	for _, cell := range cells {
		var actIPC, actFMem float64
		switch {
		case cell.Sim != nil:
			actIPC, actFMem = cell.Sim.IPC, cell.Sim.FMem
		case cell.MCM != nil:
			actIPC, actFMem = cell.MCM.IPC, cell.MCM.FMem
		default:
			t.Fatalf("%s: empty golden cell", cell.Label)
		}
		est := analyticEstimateFor(t, cell.Label)
		fam := analyticFamily(t, cell.Label)
		ipcErr := math.Abs(est.IPC-actIPC) / math.Max(actIPC, 1e-9)
		fmemErr := math.Abs(est.FMem-actFMem) / math.Max(actFMem, fmemErrFloor)
		if ipcErr > maxIPC[fam] {
			maxIPC[fam] = ipcErr
		}
		if fmemErr > maxFMem[fam] {
			maxFMem[fam] = fmemErr
		}
		if testing.Verbose() {
			t.Logf("%-32s fam=%-20s ipc est=%8.3f act=%8.3f err=%5.1f%%  fmem est=%.3f act=%.3f err=%5.1f%%  conf=%.2f",
				cell.Label, fam, est.IPC, actIPC, 100*ipcErr, est.FMem, actFMem, 100*fmemErr, est.Confidence)
		}
	}

	if *updateGolden {
		// Commit observed max error plus headroom for cross-platform
		// floating-point drift; rounded up to whole percents.
		round := func(m map[string]float64) map[string]float64 {
			out := make(map[string]float64, len(m))
			for fam, e := range m {
				out[fam] = math.Ceil(e*1.15*100+1) / 100
			}
			return out
		}
		bounds := analyticBounds{IPC: round(maxIPC), FMem: round(maxFMem)}
		buf, err := json.MarshalIndent(bounds, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(analyticBoundsPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d families", analyticBoundsPath, len(bounds.IPC))
		return
	}

	bbuf, err := os.ReadFile(analyticBoundsPath)
	if err != nil {
		t.Fatalf("reading analytic bounds (run `go test -run TestAnalyticMatchesGoldenGrid -update .` to create): %v", err)
	}
	var bounds analyticBounds
	if err := json.Unmarshal(bbuf, &bounds); err != nil {
		t.Fatalf("parsing %s: %v", analyticBoundsPath, err)
	}
	fams := make([]string, 0, len(maxIPC))
	for fam := range maxIPC {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		ipcBound, ok := bounds.IPC[fam]
		if !ok {
			t.Errorf("family %s missing from %s (run -update)", fam, analyticBoundsPath)
			continue
		}
		if maxIPC[fam] > ipcBound {
			t.Errorf("family %s: IPC max relative error %.3f exceeds committed bound %.3f", fam, maxIPC[fam], ipcBound)
		}
		fmemBound, ok := bounds.FMem[fam]
		if !ok {
			t.Errorf("family %s missing f_mem bound in %s (run -update)", fam, analyticBoundsPath)
			continue
		}
		if maxFMem[fam] > fmemBound {
			t.Errorf("family %s: f_mem max relative error %.3f exceeds committed bound %.3f", fam, maxFMem[fam], fmemBound)
		}
	}
}

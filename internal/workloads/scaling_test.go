package workloads_test

import (
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/core"
	"gpuscale/internal/gpu"
	"gpuscale/internal/mrc"
	"gpuscale/internal/workloads"
)

// TestScalingClassesEmerge verifies the suite's central property: every
// benchmark exhibits its Table II scaling class on this simulator. The
// class is judged from per-SM efficiency at 128 vs 8 SMs:
//
//	super-linear: per-SM efficiency improves by >8% (the LLC cliff),
//	linear:       stays above 0.80 without a cliff-sized gain,
//	sub-linear:   falls below 0.88.
//
// The linear and sub-linear bands overlap slightly (0.80–0.88) because the
// mildest sub-linear benchmarks and drain-affected linear benchmarks meet
// there; each benchmark is asserted against its own class band.
//
// It simulates each benchmark at both extremes (~2 minutes), so it is
// skipped under -short.
func TestScalingClassesEmerge(t *testing.T) {
	if testing.Short() {
		t.Skip("full scaling-class verification simulates every benchmark")
	}
	base := config.Baseline128()
	c8 := config.MustScale(base, 8)
	c128 := config.MustScale(base, 128)
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			s8, err := gpu.Run(c8, b.Workload)
			if err != nil {
				t.Fatal(err)
			}
			s128, err := gpu.Run(c128, b.Workload)
			if err != nil {
				t.Fatal(err)
			}
			ratio := (s128.IPC / 128) / (s8.IPC / 8)
			switch b.Class {
			case workloads.SuperLinear:
				if ratio < 1.08 {
					t.Errorf("per-SM ratio %.3f; super-linear benchmark should exceed 1.08", ratio)
				}
			case workloads.Linear:
				if ratio < 0.80 || ratio > 1.20 {
					t.Errorf("per-SM ratio %.3f; linear benchmark should stay within [0.80, 1.20]", ratio)
				}
			case workloads.SubLinear:
				if ratio > 0.88 {
					t.Errorf("per-SM ratio %.3f; sub-linear benchmark should fall below 0.88", ratio)
				}
			}
		})
	}
}

// TestCliffPositions verifies that exactly the super-linear benchmarks have
// a miss-rate-curve cliff, and that no sub-linear or linear benchmark
// triggers a false cliff (which would make the predictor forecast a jump
// that never happens).
func TestCliffPositions(t *testing.T) {
	if testing.Short() {
		t.Skip("miss-rate curves replay every benchmark")
	}
	cfgs := config.StandardConfigs()
	for _, b := range workloads.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			curve, err := mrc.FunctionalSweep(b.Workload, cfgs)
			if err != nil {
				t.Fatal(err)
			}
			_, hasCliff := core.DetectCliff(curve.MPKIs(), 0, 0)
			if b.Class == workloads.SuperLinear && !hasCliff {
				t.Errorf("super-linear benchmark has no miss-rate cliff: %v", curve.MPKIs())
			}
			if b.Class != workloads.SuperLinear && hasCliff {
				t.Errorf("%s benchmark has a spurious cliff: %v", b.Class, curve.MPKIs())
			}
		})
	}
}

// TestWeakScalingClassesEmerge verifies the Table IV classifications: under
// weak scaling the linear families keep per-SM efficiency within ±20% from
// 8 to 128 SMs while the sub-linear families lose more than 20%.
func TestWeakScalingClassesEmerge(t *testing.T) {
	if testing.Short() {
		t.Skip("weak-scaling verification simulates every family twice")
	}
	base := config.Baseline128()
	for _, f := range workloads.WeakAll() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			s8, err := gpu.Run(config.MustScale(base, 8), f.ForSMs(8))
			if err != nil {
				t.Fatal(err)
			}
			s128, err := gpu.Run(config.MustScale(base, 128), f.ForSMs(128))
			if err != nil {
				t.Fatal(err)
			}
			ratio := (s128.IPC / 128) / (s8.IPC / 8)
			switch f.Class {
			case workloads.Linear:
				if ratio < 0.80 || ratio > 1.20 {
					t.Errorf("per-SM ratio %.3f; weak-linear family should stay within [0.80, 1.20]", ratio)
				}
			case workloads.SubLinear:
				if ratio > 0.88 {
					t.Errorf("per-SM ratio %.3f; weak-sub-linear family should fall below 0.88", ratio)
				}
			}
		})
	}
}

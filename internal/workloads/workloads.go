// Package workloads defines the benchmark suite of the reproduction: 21
// strong-scaling benchmarks mirroring the paper's Table II and six
// weak-scaling benchmark families mirroring Table IV. Each benchmark is a
// synthetic kernel generator parameterised to reproduce the published
// workload's characteristics — footprint, CTA counts, data reuse, compute
// intensity, shared-data behaviour — so that it exhibits the same scaling
// class (linear, sub-linear, super-linear) on this repo's simulator as the
// original CUDA workload does on Accel-Sim. Dynamic instruction counts are
// scaled down from the paper's (which run to billions) to keep simulations
// laptop-sized; prediction errors are relative, so this preserves every
// conclusion.
package workloads

import (
	"fmt"
	"sort"

	"gpuscale/internal/trace"
)

// ScalingClass is the paper's behavioural classification.
type ScalingClass string

const (
	// Linear performance scaling with system size.
	Linear ScalingClass = "linear"
	// SubLinear scaling: workload-architecture imbalance or shared-data
	// camping erodes the benefit of added SMs.
	SubLinear ScalingClass = "sub-linear"
	// SuperLinear scaling: the working set starts fitting in the LLC as
	// the system (and its proportionally scaled LLC) grows.
	SuperLinear ScalingClass = "super-linear"
)

// Benchmark is one strong-scaling suite entry: the synthetic workload plus
// the metadata the paper's Table II reports.
type Benchmark struct {
	// Name is the benchmark's abbreviation used throughout the paper
	// (dct, bfs, pf, …).
	Name string
	// FullName is the descriptive name, e.g. "Discrete Cosine Transform".
	FullName string
	// Suite is the originating benchmark suite (CUDA SDK, Rodinia, …).
	Suite string
	// PaperFootprintMB is the footprint reported in Table II.
	PaperFootprintMB float64
	// PaperInsnsM is the dynamic instruction count (millions) in Table II.
	PaperInsnsM float64
	// PaperCTASizes is Table II's "CTA Size" column: the CTA counts of
	// the original benchmark's kernels (several entries for multi-kernel
	// benchmarks).
	PaperCTASizes string
	// Class is the paper's scaling classification, which this synthetic
	// workload reproduces (asserted by tests).
	Class ScalingClass
	// Workload is the synthetic kernel grid.
	Workload trace.Workload
}

// regionBase spaces benchmark address spaces far apart so distinct
// benchmarks (and distinct regions within one benchmark) never alias.
const (
	sharedRegion  = uint64(0)
	privateRegion = uint64(1) << 40
	hotRegion     = uint64(1) << 50
)

const lineSize = 128

// spec is the builder for synthetic kernels. The phases callback receives
// the simulation's arena (nil when the caller has none) and must draw its
// phase buffer and generators from it; the Arena API's nil-safety makes the
// no-arena path heap-allocate exactly as before, so every benchmark is
// written once and produces identical instruction streams either way.
type spec struct {
	name     string
	ctas     int
	warps    int // warps per CTA
	ctaLimit int // per-SM CTA residency limit (0 = none)
	phases   func(a *trace.Arena, cta, warp int) []trace.Phase
}

func (s spec) build() trace.Workload {
	return &trace.FuncWorkload{
		WName: s.name,
		Spec: trace.KernelSpec{
			NumCTAs:        s.ctas,
			WarpsPerCTA:    s.warps,
			CTAsPerSMLimit: s.ctaLimit,
		},
		FactoryIn: func(a *trace.Arena, cta, warp int) trace.Program {
			return a.NewProgram(s.phases(a, cta, warp))
		},
	}
}

// sharedWalk returns a SeqGen cycling over a shared working set of ws bytes,
// with each warp starting at a decorrelated offset so the grid covers the
// set cooperatively.
func sharedWalk(a *trace.Arena, seed uint64, cta, warp int, ws uint64) *trace.SeqGen {
	start := trace.WarpSeed(seed, cta, warp) % ws
	start -= start % lineSize
	return a.Seq(sharedRegion, start, lineSize, ws)
}

// evenWalk returns a SeqGen cycling over a shared working set of ws bytes
// with warps starting at one of k evenly spaced offsets. Evenly spaced
// cyclic walkers keep every line's reuse distance close to the full working
// set, which is what produces the sharp thrash-to-resident transition (the
// miss-rate cliff) when the LLC capacity crosses ws.
func evenWalk(a *trace.Arena, warpsPerCTA, cta, warp, k int, ws uint64) *trace.SeqGen {
	id := cta*warpsPerCTA + warp
	step := ws / uint64(k)
	start := (uint64(id%k) * step) / lineSize * lineSize
	return a.Seq(sharedRegion, start, lineSize, ws)
}

// privateStream returns a SeqGen streaming through a private region of
// bytesPerWarp bytes for this warp.
func privateStream(a *trace.Arena, warpsPerCTA, cta, warp int, bytesPerWarp uint64) *trace.SeqGen {
	id := uint64(cta*warpsPerCTA + warp)
	return a.Seq(privateRegion+id*bytesPerWarp, 0, lineSize, bytesPerWarp)
}

// randomWalk returns a RandGen over a shared footprint of fp bytes.
func randomWalk(a *trace.Arena, seed uint64, cta, warp int, fp uint64) *trace.RandGen {
	return a.Rand(sharedRegion, lineSize, fp, trace.WarpSeed(seed, cta, warp))
}

// hotWalk returns a SeqGen cycling over a small shared hot region (hot
// bytes) — the camping pattern. Callers mark its phase BypassL1.
func hotWalk(a *trace.Arena, cta, warp int, hot uint64) *trace.SeqGen {
	start := (uint64(cta+warp) * lineSize) % hot
	return a.Seq(hotRegion, start, lineSize, hot)
}

// All returns the 21 strong-scaling benchmarks in the paper's Table II
// order: super-linear first, then sub-linear, then linear.
func All() []Benchmark {
	return []Benchmark{
		DCT(), FWT(), BP(), VA(), AS(), LU(), ST(),
		BFS(), UNet(), SR(), GR(), BTree(),
		PF(), Res50(), Res34(), HT(), AT(), GEMM(), TwoMM(), LBM(), BS(),
	}
}

// ByName returns the benchmark with the given abbreviation.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names returns all benchmark abbreviations, sorted.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	sort.Strings(out)
	return out
}

// ByClass returns all strong-scaling benchmarks of one class, in suite
// order.
func ByClass(c ScalingClass) []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.Class == c {
			out = append(out, b)
		}
	}
	return out
}

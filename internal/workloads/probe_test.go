package workloads

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/gpu"
	"gpuscale/internal/mrc"
)

// TestProbeClasses is a tuning harness, run manually:
//
//	PROBE=dct,bfs go test -run TestProbeClasses -v ./internal/workloads/
func TestProbeClasses(t *testing.T) {
	sel := os.Getenv("PROBE")
	if sel == "" {
		t.Skip("set PROBE=name,name or PROBE=all")
	}
	want := map[string]bool{}
	for _, n := range strings.Split(sel, ",") {
		want[n] = true
	}
	cfgs := config.StandardConfigs()
	for _, b := range All() {
		if !want["all"] && !want[b.Name] {
			continue
		}
		var ipcs []float64
		for _, cfg := range cfgs {
			st, err := gpu.Run(cfg, b.Workload)
			if err != nil {
				t.Fatalf("%s on %s: %v", b.Name, cfg.Name, err)
			}
			ipcs = append(ipcs, st.IPC)
			fmt.Printf("%-6s %-10s IPC=%8.2f perSM=%.3f FMem=%.3f MPKI=%7.2f NoCU=%.2f DRAMU=%.2f cyc=%d\n",
				b.Name, cfg.Name, st.IPC, st.IPC/float64(cfg.NumSMs), st.FMem, st.LLCMPKI, st.NoCUtilization, st.DRAMUtilization, st.Cycles)
		}
		curve, err := mrc.FunctionalSweep(b.Workload, cfgs)
		if err != nil {
			t.Fatalf("%s MRC: %v", b.Name, err)
		}
		fmt.Printf("%-6s MRC=%v\n", b.Name, curve.MPKIs())
		ratio := (ipcs[4] / 128) / (ipcs[0] / 8)
		fmt.Printf("%-6s class=%s perSM128/perSM8=%.2f\n\n", b.Name, b.Class, ratio)
	}
}

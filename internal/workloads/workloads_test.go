package workloads

import (
	"testing"

	"gpuscale/internal/trace"
)

func TestAllHas21Benchmarks(t *testing.T) {
	bs := All()
	if len(bs) != 21 {
		t.Fatalf("got %d benchmarks, want 21 (Table II)", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestClassCountsMatchTableII(t *testing.T) {
	counts := map[ScalingClass]int{}
	for _, b := range All() {
		counts[b.Class]++
	}
	if counts[SuperLinear] != 7 {
		t.Errorf("super-linear count = %d, want 7", counts[SuperLinear])
	}
	if counts[SubLinear] != 5 {
		t.Errorf("sub-linear count = %d, want 5", counts[SubLinear])
	}
	if counts[Linear] != 9 {
		t.Errorf("linear count = %d, want 9", counts[Linear])
	}
}

func TestMetadataComplete(t *testing.T) {
	for _, b := range All() {
		if b.Name == "" || b.FullName == "" || b.Suite == "" {
			t.Errorf("%q: incomplete naming metadata", b.Name)
		}
		if b.PaperFootprintMB <= 0 || b.PaperInsnsM <= 0 {
			t.Errorf("%s: missing Table II metadata", b.Name)
		}
		if b.Workload == nil {
			t.Fatalf("%s: nil workload", b.Name)
		}
		if b.Workload.Name() != b.Name {
			t.Errorf("%s: workload name %q mismatches", b.Name, b.Workload.Name())
		}
		if err := b.Workload.Kernel().Validate(); err != nil {
			t.Errorf("%s: invalid kernel: %v", b.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("dct")
	if err != nil || b.Name != "dct" {
		t.Errorf("ByName(dct) = %v, %v", b.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 21 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("Names() not sorted")
		}
	}
}

func TestByClass(t *testing.T) {
	if got := len(ByClass(SuperLinear)); got != 7 {
		t.Errorf("ByClass(super) = %d, want 7", got)
	}
	if got := len(ByClass(SubLinear)); got != 5 {
		t.Errorf("ByClass(sub) = %d, want 5", got)
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, b := range All() {
		p1 := b.Workload.NewProgram(3, 1)
		p2 := b.Workload.NewProgram(3, 1)
		for i := 0; i < 50; i++ {
			a, oka := p1.Next()
			c, okc := p2.Next()
			if a != c || oka != okc {
				t.Errorf("%s: non-deterministic warp stream at instr %d", b.Name, i)
				break
			}
			if !oka {
				break
			}
		}
	}
}

func TestCliffBenchmarksWholeWaves(t *testing.T) {
	// Super-linear kernels must launch whole waves at every standard
	// size: CTA counts divisible by 128 SMs × 6-CTA occupancy limit.
	for _, b := range ByClass(SuperLinear) {
		k := b.Workload.Kernel()
		if k.CTAsPerSMLimit != 6 {
			t.Errorf("%s: CTAsPerSMLimit = %d, want 6", b.Name, k.CTAsPerSMLimit)
		}
		if k.NumCTAs%768 != 0 {
			t.Errorf("%s: %d CTAs not a multiple of 768", b.Name, k.NumCTAs)
		}
	}
}

func TestInstructionBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("instruction counting replays every warp")
	}
	for _, b := range All() {
		total, mem := trace.InstructionCount(b.Workload)
		if total < 200_000 || total > 20_000_000 {
			t.Errorf("%s: %d instructions outside the tractable range", b.Name, total)
		}
		if mem == 0 {
			t.Errorf("%s: no memory instructions", b.Name)
		}
	}
}

func TestWeakFamilies(t *testing.T) {
	fams := WeakAll()
	if len(fams) != 6 {
		t.Fatalf("got %d weak families, want 6 (Table IV)", len(fams))
	}
	wantClass := map[string]ScalingClass{
		"bfs": SubLinear, "bs": SubLinear,
		"btree": Linear, "as": Linear, "bp": Linear, "va": Linear,
	}
	for _, f := range fams {
		if f.Class != wantClass[f.Name] {
			t.Errorf("%s: class %s, want %s", f.Name, f.Class, wantClass[f.Name])
		}
		for _, n := range []int{8, 16} {
			w := f.ForSMs(n)
			if err := w.Kernel().Validate(); err != nil {
				t.Errorf("%s at %d SMs: %v", f.Name, n, err)
			}
		}
	}
}

func TestWeakWorkloadsScaleCTAs(t *testing.T) {
	for _, f := range WeakAll() {
		c8 := f.CTAsAt(8)
		c128 := f.CTAsAt(128)
		ratio := float64(c128) / float64(c8)
		if ratio < 15 || ratio > 17 {
			t.Errorf("%s: CTAs scale %.1fx from 8 to 128 SMs, want 16x", f.Name, ratio)
		}
	}
}

func TestWeakMCMExcludesBTree(t *testing.T) {
	for _, f := range WeakMCM() {
		if f.Name == "btree" {
			t.Error("btree should be excluded from MCM experiments (paper Section VII-D)")
		}
	}
	if len(WeakMCM()) != 5 {
		t.Errorf("MCM families = %d, want 5", len(WeakMCM()))
	}
}

func TestWeakByName(t *testing.T) {
	f, err := WeakByName("va")
	if err != nil || f.Name != "va" {
		t.Errorf("WeakByName(va) = %v, %v", f.Name, err)
	}
	if _, err := WeakByName("nope"); err == nil {
		t.Error("unknown weak name accepted")
	}
}

func TestWeakWorkloadNamesEncodeSize(t *testing.T) {
	// The harness memoises by workload name; scaled variants must have
	// distinct names.
	f := WeakBFS()
	if f.ForSMs(8).Name() == f.ForSMs(16).Name() {
		t.Error("weak workloads at different sizes share a name")
	}
}

package workloads

import "gpuscale/internal/trace"

// MiB is one mebibyte in bytes.
const MiB = 1 << 20

// --- Super-linearly scaling benchmarks (Table II, top block) ---------------
//
// These model kernels whose active working set is comparable to a target
// system's LLC: smaller than the biggest LLC, bigger than the scale models'.
// They are occupancy-limited (heavy shared-memory use in the originals), so
// too few warps are resident to hide DRAM latency; once the working set
// becomes LLC-resident the memory-stall fraction collapses and performance
// jumps — the cliff.

// cliffBench builds an occupancy-limited, reuse-heavy kernel. Each warp
// walks warpLoads consecutive lines with six compute instructions between
// loads; a CTA covers a contiguous chunk and successive CTAs chain chunks
// around the ws-byte working-set ring, wrapping at the end, so every line's
// reuse distance is ≈ ws under any interleaving — the sharp-cliff
// structure. The 6:1 compute:memory ratio keeps the post-cliff regime
// issue-bound (so the memory-stall fraction collapses, as Eq. 3 assumes)
// and the 6-CTA occupancy limit keeps the pre-cliff regime
// DRAM-latency-bound. passes × ring is always a multiple of 768 = 128×6 so
// every system size executes whole CTA waves.
func cliffBench(name string, passes, warpLoads int, ws uint64) trace.Workload {
	warpBytes := uint64(warpLoads) * lineSize
	ctaBytes := 4 * warpBytes
	ringCTAs := int(ws / ctaBytes)
	return spec{
		name:     name,
		ctas:     passes * ringCTAs,
		warps:    4,
		ctaLimit: 6,
		phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
			start := (uint64(cta)*ctaBytes + uint64(warp)*warpBytes) % ws
			return append(a.Phases(1), trace.Phase{
				N:          7 * warpLoads,
				ComputePer: 6,
				Gen:        a.Seq(sharedRegion, start, lineSize, ws),
			})
		},
	}.build()
}

// DCT models the Discrete Cosine Transform (CUDA SDK): a 33 MB footprint
// with intense reuse whose active working set (24 MB here) fits only the
// 128-SM system's LLC, producing the paper's flagship cliff.
func DCT() Benchmark {
	return Benchmark{
		Name: "dct", FullName: "Discrete Cosine Transform", Suite: "CUDA SDK",
		PaperFootprintMB: 33.0, PaperInsnsM: 10270, Class: SuperLinear,
		PaperCTASizes: "2,304; 36,864; 512",
		Workload:      cliffBench("dct", 6, 64, 24*MiB),
	}
}

// FWT models the Fast Walsh Transform (CUDA SDK): like dct its working set
// fits only at 128 SMs, but with finer-grained CTAs.
func FWT() Benchmark {
	return Benchmark{
		Name: "fwt", FullName: "Fast Walsh Transform", Suite: "CUDA SDK",
		PaperFootprintMB: 67.1, PaperInsnsM: 4163, Class: SuperLinear,
		PaperCTASizes: "8,192; 4,096; 128",
		Workload:      cliffBench("fwt", 4, 32, 24*MiB),
	}
}

// BP models Back Propagation (Rodinia): a 12 MB active working set that
// becomes resident at the 64-SM system.
func BP() Benchmark {
	return Benchmark{
		Name: "bp", FullName: "Back Propagation", Suite: "Rodinia",
		PaperFootprintMB: 18.8, PaperInsnsM: 424, Class: SuperLinear,
		PaperCTASizes: "8,192",
		Workload:      cliffBench("bp", 6, 64, 12*MiB),
	}
}

// VA models Vector Add (CUDA SDK) with a 6 MB reused slice that fits from
// 32 SMs on.
func VA() Benchmark {
	return Benchmark{
		Name: "va", FullName: "Vector Add", Suite: "CUDA SDK",
		PaperFootprintMB: 50.3, PaperInsnsM: 92, Class: SuperLinear,
		PaperCTASizes: "16,384",
		Workload:      cliffBench("va", 8, 64, 6*MiB),
	}
}

// AS models Async (CUDA SDK): a 6 MB working set fitting from 32 SMs, with
// finer CTAs than va.
func AS() Benchmark {
	return Benchmark{
		Name: "as", FullName: "Async", Suite: "CUDA SDK",
		PaperFootprintMB: 67.1, PaperInsnsM: 218, Class: SuperLinear,
		PaperCTASizes: "32,768",
		Workload:      cliffBench("as", 6, 32, 6*MiB),
	}
}

// LU models LU decomposition (Polybench): a 12 MB working set fitting at
// 64 SMs.
func LU() Benchmark {
	return Benchmark{
		Name: "lu", FullName: "LU Decomposition", Suite: "Polybench",
		PaperFootprintMB: 16.8, PaperInsnsM: 146, Class: SuperLinear,
		PaperCTASizes: "16,384",
		Workload:      cliffBench("lu", 6, 32, 12*MiB),
	}
}

// ST models Stencil (Parboil): a 6 MB active tile set fitting at 32 SMs,
// walked in small tiles.
func ST() Benchmark {
	return Benchmark{
		Name: "st", FullName: "Stencil", Suite: "Parboil",
		PaperFootprintMB: 131.9, PaperInsnsM: 557, Class: SuperLinear,
		PaperCTASizes: "2,096",
		Workload:      cliffBench("st", 6, 16, 6*MiB),
	}
}

// --- Sub-linearly scaling benchmarks (Table II, middle block) --------------

// BFS models Breadth-First Search (Rodinia): 1,024 irregularly sized CTAs
// whose random traversal spans a 48 MB graph. Limited CTA parallelism and
// bandwidth pressure erode the benefit of added SMs — the paper's
// workload-architecture-imbalance mechanism.
func BFS() Benchmark {
	return Benchmark{
		Name: "bfs", FullName: "Breadth-First Search", Suite: "Rodinia",
		PaperFootprintMB: 20.4, PaperInsnsM: 257, Class: SubLinear,
		PaperCTASizes: "1,024",
		Workload: spec{
			name: "bfs", ctas: 1024, warps: 4,
			phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
				n := 400 + (cta%7)*160 // irregular frontier sizes
				return append(a.Phases(1), trace.Phase{
					N:          n,
					ComputePer: 1,
					Gen:        randomWalk(a, 0xbf5, cta, warp, 48*MiB),
				})
			},
		}.build(),
	}
}

// campingPhases interleaves other work with periodic L1-bypassing accesses
// to a tiny shared hot region — atomics on shared data. With a single hot
// line, the one LLC slice that owns it has the same bandwidth at every
// system size, so it is the bottleneck from the smallest scale model up:
// throughput saturates and scaling is strongly sub-linear — the paper's
// camping mechanism, already visible to the scale models.
func campingPhases(a *trace.Arena, rounds, workN, hotN int, work trace.AddrGen, hot uint64, cta, warp int) []trace.Phase {
	hotGen := hotWalk(a, cta, warp, hot)
	phases := a.Phases(2 * rounds)
	for r := 0; r < rounds; r++ {
		phases = append(phases,
			trace.Phase{N: workN, ComputePer: 1, Gen: work},
			trace.Phase{N: hotN, ComputePer: 0, Gen: hotGen, Flags: trace.BypassL1},
		)
	}
	return phases
}

// UNet models 3D-UNet inference (MLPerf): a limited grid of irregularly
// sized CTAs randomly touching a 96 MB activation footprint — sub-linear
// through workload-architecture imbalance like bfs, but with heavier
// compute per access.
func UNet() Benchmark {
	return Benchmark{
		Name: "unet", FullName: "3D-UNet", Suite: "MLPerf",
		PaperFootprintMB: 615.0, PaperInsnsM: 20071, Class: SubLinear,
		PaperCTASizes: "from 128 to 21,846",
		Workload: spec{
			name: "unet", ctas: 1152, warps: 4,
			phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
				n := 300 + (cta%5)*150
				return append(a.Phases(1), trace.Phase{
					N:          n,
					ComputePer: 2,
					Gen:        randomWalk(a, 0x03e7, cta, warp, 96*MiB),
				})
			},
		}.build(),
	}
}

// SR models Sradv2 (Rodinia): irregular image-region updates over a 64 MB
// frame, with too few CTAs to fill large machines — mildly sub-linear.
func SR() Benchmark {
	return Benchmark{
		Name: "sr", FullName: "Sradv2", Suite: "Rodinia",
		PaperFootprintMB: 25.2, PaperInsnsM: 661, Class: SubLinear,
		PaperCTASizes: "4,096",
		Workload: spec{
			name: "sr", ctas: 1536, warps: 4,
			phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
				n := 160 + (cta%11)*48
				return append(a.Phases(1), trace.Phase{
					N:          n,
					ComputePer: 1,
					Gen:        randomWalk(a, 0x5c, cta, warp, 64*MiB),
				})
			},
		}.build(),
	}
}

// GR models Gradient (CUDA SDK): streaming with very frequent atomic
// updates to a shared accumulator — the heaviest camping in the suite.
func GR() Benchmark {
	return Benchmark{
		Name: "gr", FullName: "Gradient", Suite: "CUDA SDK",
		PaperFootprintMB: 46.1, PaperInsnsM: 318, Class: SubLinear,
		PaperCTASizes: "4,096; 816; 1,536; 2,048",
		Workload: spec{
			name: "gr", ctas: 2048, warps: 4,
			phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
				return campingPhases(a, 25, 2, 3,
					privateStream(a, 4, cta, warp, 32*1024), lineSize, cta, warp)
			},
		}.build(),
	}
}

// BTree models B+trees (Rodinia): random key lookups that all traverse the
// same root/inner nodes (camping) before fanning out to leaves.
func BTree() Benchmark {
	return Benchmark{
		Name: "btree", FullName: "B+trees", Suite: "Rodinia",
		PaperFootprintMB: 17.4, PaperInsnsM: 670, Class: SubLinear,
		PaperCTASizes: "6,000; 10,000",
		Workload: spec{
			name: "btree", ctas: 2048, warps: 4,
			phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
				return campingPhases(a, 25, 2, 2,
					randomWalk(a, 0xb7ee, cta, warp, 64*MiB), lineSize, cta, warp)
			},
		}.build(),
	}
}

// --- Linearly scaling benchmarks (Table II, bottom block) ------------------

// streamBench builds a memory-streaming kernel: each warp walks its own
// private region, so the footprint vastly exceeds every LLC and the
// miss-rate curve is flat — linear scaling under proportional resources.
// CTA counts are multiples of 1536 = 128 SMs × 12 resident CTAs so that
// every size executes whole waves.
func streamBench(name string, ctas, loads, computePer int, stores bool) trace.Workload {
	bytesPerWarp := uint64(loads) * lineSize
	return spec{
		name: name, ctas: ctas, warps: 4,
		phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
			id := uint64(cta*4 + warp)
			in := a.Seq(privateRegion+id*bytesPerWarp, 0, lineSize, bytesPerWarp)
			if !stores {
				return append(a.Phases(1),
					trace.Phase{N: loads * (computePer + 1), ComputePer: computePer, Gen: in})
			}
			// Loads and stores alternate in short phases so the
			// store stream is paced by the loads' blocking rather
			// than bursting at one store per cycle.
			out := a.Seq(privateRegion+(1<<45)+id*bytesPerWarp, 0, lineSize, bytesPerWarp)
			rounds := loads / 2
			phases := a.Phases(2 * rounds)
			for r := 0; r < rounds; r++ {
				phases = append(phases,
					trace.Phase{N: 2 * (computePer + 1), ComputePer: computePer, Gen: in},
					trace.Phase{N: computePer + 1, ComputePer: computePer, Gen: out, Store: true},
				)
			}
			return phases
		},
	}.build()
}

// computeBench builds a compute-dominated kernel with a small, fully
// cache-resident shared tile set: low flat MPKI, linear scaling.
func computeBench(name string, ctas, n, computePer int, tile uint64, seed uint64) trace.Workload {
	return spec{
		name: name, ctas: ctas, warps: 4,
		phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
			return append(a.Phases(1), trace.Phase{
				N:          n,
				ComputePer: computePer,
				Gen:        sharedWalk(a, seed, cta, warp, tile),
			})
		},
	}.build()
}

// PF models Path Finder (Rodinia): a 404 MB footprint streamed with high
// reuse distance — a flat, high miss-rate curve and linear scaling.
func PF() Benchmark {
	return Benchmark{
		Name: "pf", FullName: "Path Finder", Suite: "Rodinia",
		PaperFootprintMB: 404.1, PaperInsnsM: 4037, Class: Linear,
		PaperCTASizes: "4,630",
		Workload:      streamBench("pf", 4608, 75, 2, false),
	}
}

// Res50 models ResNet-50 inference (MLPerf): a huge streamed footprint with
// interleaved compute.
func Res50() Benchmark {
	return Benchmark{
		Name: "res50", FullName: "ResNet-50", Suite: "MLPerf",
		PaperFootprintMB: 1388.1, PaperInsnsM: 85067, Class: Linear,
		PaperCTASizes: "from 64 to 66,904",
		Workload:      streamBench("res50", 6144, 53, 3, false),
	}
}

// Res34 models SSD-ResNet-34 inference (MLPerf).
func Res34() Benchmark {
	return Benchmark{
		Name: "res34", FullName: "SSD-ResNet-34", Suite: "MLPerf",
		PaperFootprintMB: 845.8, PaperInsnsM: 47369, Class: Linear,
		PaperCTASizes: "from 32 to 306,383",
		Workload:      streamBench("res34", 4608, 51, 3, false),
	}
}

// HT models HotSpot (Rodinia): a 12.5 MB footprint with almost zero data
// reuse — small enough to fit big LLCs, but with no reuse there is no cliff
// and scaling stays linear (the paper's explicit counter-example).
func HT() Benchmark {
	return Benchmark{
		Name: "ht", FullName: "HotSpot", Suite: "Rodinia",
		PaperFootprintMB: 12.5, PaperInsnsM: 421, Class: Linear,
		PaperCTASizes: "7,396",
		Workload: spec{
			name: "ht", ctas: 3072, warps: 4,
			phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
				// Each warp touches its slice of the grid exactly
				// once: zero reuse.
				return append(a.Phases(1), trace.Phase{
					N:          11 * 21,
					ComputePer: 20,
					Gen:        privateStream(a, 4, cta, warp, 11*lineSize),
				})
			},
		}.build(),
	}
}

// AT models Aligned Types (CUDA SDK): pure bandwidth streaming.
func AT() Benchmark {
	return Benchmark{
		Name: "at", FullName: "Aligned Types", Suite: "CUDA SDK",
		PaperFootprintMB: 100.0, PaperInsnsM: 2150, Class: Linear,
		PaperCTASizes: "2,048",
		Workload:      streamBench("at", 4608, 51, 1, false),
	}
}

// GEMM models dense matrix multiply (Polybench): compute-bound with
// cache-resident tiles.
func GEMM() Benchmark {
	return Benchmark{
		Name: "gemm", FullName: "Matrix Multiply (GEMM)", Suite: "Polybench",
		PaperFootprintMB: 12.6, PaperInsnsM: 7030, Class: Linear,
		PaperCTASizes: "4,096",
		Workload:      computeBench("gemm", 1536, 480, 15, 1536*1024, 0x6e),
	}
}

// TwoMM models two chained matrix multiplies (Polybench).
func TwoMM() Benchmark {
	return Benchmark{
		Name: "2mm", FullName: "2 Matrix Multiplications", Suite: "Polybench",
		PaperFootprintMB: 21.0, PaperInsnsM: 12921, Class: Linear,
		PaperCTASizes: "8,192",
		Workload:      computeBench("2mm", 1536, 390, 12, 1536*1024, 0x22),
	}
}

// LBM models the Lattice-Boltzmann Method (Parboil): streaming loads and
// stores over a large lattice.
func LBM() Benchmark {
	return Benchmark{
		Name: "lbm", FullName: "Lattice-Boltzmann Method", Suite: "Parboil",
		PaperFootprintMB: 359.4, PaperInsnsM: 553, Class: Linear,
		PaperCTASizes: "18,000",
		Workload:      streamBench("lbm", 3072, 51, 2, true),
	}
}

// BS models Black-Scholes (CUDA SDK): option pricing, streaming with
// moderate compute.
func BS() Benchmark {
	return Benchmark{
		Name: "bs", FullName: "Black-Scholes", Suite: "CUDA SDK",
		PaperFootprintMB: 80.1, PaperInsnsM: 863, Class: Linear,
		PaperCTASizes: "15,625",
		Workload:      streamBench("bs", 4608, 31, 4, false),
	}
}

package workloads

import (
	"fmt"

	"gpuscale/internal/trace"
)

// WeakBenchmark is one weak-scaling benchmark family (paper Table IV): the
// workload's input — and therefore its CTA count and footprint — scales
// proportionally with the number of SMs, mirroring how the paper rescaled
// each benchmark's input data set.
type WeakBenchmark struct {
	// Name is the benchmark abbreviation (bfs, bs, btree, as, bp, va).
	Name string
	// Class is the paper's weak-scaling classification: only linear and
	// sub-linear occur under weak scaling (Section III).
	Class ScalingClass
	// MCM marks families used in the multi-chip-module case study
	// (Table IV's MCM column); btree is excluded there, as in the paper.
	MCM bool
	// ForSMs instantiates the workload scaled for a system of numSMs SMs.
	ForSMs func(numSMs int) trace.Workload
}

// CTAsAt reports the CTA count of the scaled workload for numSMs SMs — the
// Table IV "CTA" column equivalent.
func (w WeakBenchmark) CTAsAt(numSMs int) int {
	return w.ForSMs(numSMs).Kernel().NumCTAs
}

// WeakAll returns the six weak-scaling families in Table IV order.
func WeakAll() []WeakBenchmark {
	return []WeakBenchmark{WeakBFS(), WeakBS(), WeakBTree(), WeakAS(), WeakBP(), WeakVA()}
}

// WeakByName returns the weak-scaling family with the given name.
func WeakByName(name string) (WeakBenchmark, error) {
	for _, w := range WeakAll() {
		if w.Name == name {
			return w, nil
		}
	}
	return WeakBenchmark{}, fmt.Errorf("workloads: unknown weak-scaling benchmark %q", name)
}

// WeakMCM returns the weak-scaling families used in the chiplet case study.
func WeakMCM() []WeakBenchmark {
	var out []WeakBenchmark
	for _, w := range WeakAll() {
		if w.MCM {
			out = append(out, w)
		}
	}
	return out
}

// WeakBFS models breadth-first search under weak scaling: the graph (and
// CTA count) grows with the machine, but every CTA still synchronises
// through the same fixed-size frontier structures. Traffic to those fixed
// hot lines grows with SM count while the owning LLC slices' bandwidth does
// not: camping makes weak-scaled bfs sub-linear, as in the paper.
func WeakBFS() WeakBenchmark {
	return WeakBenchmark{
		Name: "bfs", Class: SubLinear, MCM: true,
		ForSMs: func(numSMs int) trace.Workload {
			scale := uint64(numSMs)
			return spec{
				name: fmt.Sprintf("bfs-weak-%dsm", numSMs),
				ctas: 16 * numSMs, warps: 4,
				phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
					graph := 6 * MiB * scale / 8
					phases := a.Phases(32)
					walk := randomWalk(a, 0xbf5+scale, cta, warp, graph)
					frontier := hotWalk(a, cta, warp, 16*lineSize)
					for r := 0; r < 16; r++ {
						phases = append(phases,
							trace.Phase{N: 6, ComputePer: 1, Gen: walk},
							trace.Phase{N: 1, ComputePer: 0, Gen: frontier, Flags: trace.BypassL1},
						)
					}
					return phases
				},
			}.build()
		},
	}
}

// WeakBS models Black-Scholes under weak scaling: the option array grows
// with the machine, but results accumulate into a fixed reduction buffer —
// a milder camping effect than bfs, hence mildly sub-linear.
func WeakBS() WeakBenchmark {
	return WeakBenchmark{
		Name: "bs", Class: SubLinear, MCM: true,
		ForSMs: func(numSMs int) trace.Workload {
			return spec{
				name: fmt.Sprintf("bs-weak-%dsm", numSMs),
				ctas: 32 * numSMs, warps: 4,
				phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
					phases := a.Phases(16)
					stream := privateStream(a, 4, cta, warp, 512)
					reduce := hotWalk(a, cta, warp, 2*lineSize)
					for r := 0; r < 10; r++ {
						phases = append(phases,
							trace.Phase{N: 5, ComputePer: 4, Gen: stream},
							trace.Phase{N: 3, ComputePer: 0, Gen: reduce, Flags: trace.BypassL1},
						)
					}
					return phases
				},
			}.build()
		},
	}
}

// WeakBTree models B+tree lookups under weak scaling: the tree grows with
// the machine, so the root/inner working set (and the slices serving it)
// scales too — camping stays constant in relative terms and scaling is
// linear.
func WeakBTree() WeakBenchmark {
	return WeakBenchmark{
		Name: "btree", Class: Linear, MCM: false,
		ForSMs: func(numSMs int) trace.Workload {
			scale := uint64(numSMs)
			return spec{
				name: fmt.Sprintf("btree-weak-%dsm", numSMs),
				ctas: 16 * numSMs, warps: 4,
				phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
					leafBytes := 4 * MiB * scale / 8
					rootBytes := 2 * lineSize * scale
					phases := a.Phases(24)
					leaf := randomWalk(a, 0xb7ee+scale, cta, warp, leafBytes)
					root := hotWalk(a, cta, warp, rootBytes)
					for r := 0; r < 12; r++ {
						phases = append(phases,
							trace.Phase{N: 2, ComputePer: 0, Gen: root, Flags: trace.BypassL1},
							trace.Phase{N: 8, ComputePer: 1, Gen: leaf},
						)
					}
					return phases
				},
			}.build()
		},
	}
}

// weakRing builds a weak-scaled version of the occupancy-limited ring
// kernels (as, bp, va): the working set scales with the machine so its
// size relative to the LLC never changes — no cliff, linear scaling.
func weakRing(name string, numSMs int, wsPerSM uint64, passes int) trace.Workload {
	const warpLoads = 64
	const warpBytes = warpLoads * lineSize
	const ctaBytes = 4 * warpBytes
	ws := wsPerSM * uint64(numSMs)
	ringCTAs := int(ws / ctaBytes)
	return spec{
		name:     fmt.Sprintf("%s-weak-%dsm", name, numSMs),
		ctas:     passes * ringCTAs,
		warps:    4,
		ctaLimit: 6,
		phases: func(a *trace.Arena, cta, warp int) []trace.Phase {
			start := (uint64(cta)*ctaBytes + uint64(warp)*warpBytes) % ws
			return append(a.Phases(1), trace.Phase{
				N:          7 * warpLoads,
				ComputePer: 6,
				Gen:        a.Seq(sharedRegion, start, lineSize, ws),
			})
		},
	}.build()
}

// WeakAS models Async under weak scaling: 192 KiB of working set per SM —
// always LLC-resident in relative terms, hence linear.
func WeakAS() WeakBenchmark {
	return WeakBenchmark{
		Name: "as", Class: Linear, MCM: true,
		ForSMs: func(numSMs int) trace.Workload {
			return weakRing("as", numSMs, 192*1024, 4)
		},
	}
}

// WeakBP models Back Propagation under weak scaling: 384 KiB of working
// set per SM — always larger than the proportional LLC share, so uniformly
// DRAM-latency-bound and linear.
func WeakBP() WeakBenchmark {
	return WeakBenchmark{
		Name: "bp", Class: Linear, MCM: true,
		ForSMs: func(numSMs int) trace.Workload {
			return weakRing("bp", numSMs, 384*1024, 3)
		},
	}
}

// WeakVA models Vector Add under weak scaling: 128 KiB per SM, resident
// everywhere, linear.
func WeakVA() WeakBenchmark {
	return WeakBenchmark{
		Name: "va", Class: Linear, MCM: true,
		ForSMs: func(numSMs int) trace.Workload {
			return weakRing("va", numSMs, 128*1024, 6)
		},
	}
}

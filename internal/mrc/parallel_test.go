package mrc

import (
	"reflect"
	"testing"

	"gpuscale/internal/config"
)

// TestFunctionalSweepParallelMatchesSequential asserts that fanning the
// per-configuration replays across a worker pool changes wall-clock time
// only: the curve is bit-identical to the sequential sweep's at several
// pool sizes.
func TestFunctionalSweepParallelMatchesSequential(t *testing.T) {
	w := seqWorkload(8, 2, 200, 4<<20)
	cfgs := config.StandardConfigs()
	seq, err := FunctionalSweep(w, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := FunctionalSweepParallel(w, cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Errorf("workers=%d: parallel curve %+v differs from sequential %+v", workers, par, seq)
		}
	}
}

// TestFunctionalSweepParallelErrors checks that input validation matches
// the sequential path.
func TestFunctionalSweepParallelErrors(t *testing.T) {
	if _, err := FunctionalSweepParallel(nil, config.StandardConfigs(), 4); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := FunctionalSweepParallel(seqWorkload(2, 2, 8, 1<<20), nil, 4); err == nil {
		t.Error("empty configuration list accepted")
	}
}

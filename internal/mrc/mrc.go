// Package mrc computes last-level-cache miss-rate curves: LLC misses per
// thousand instructions (MPKI) as a function of LLC capacity, the second
// input of the paper's scale-model prediction workflow (Figure 3). Two
// methods are provided:
//
//   - FunctionalSweep replays the workload through the same L1/LLC cache
//     structures the timing simulator uses — but with no timing — once per
//     system configuration. This is the "functional simulation" box of the
//     paper's Figure 3 and is at least two orders of magnitude faster than
//     timing simulation because no cycle accounting happens.
//
//   - StackDistanceCurve implements the classic Conte-style single-pass
//     reuse-distance algorithm (with a Fenwick tree, O(N log N)) over a
//     warp-interleaved access stream, yielding the fully-associative miss
//     count for every capacity at once, in the lineage of the GPU cache
//     model of Nugteren et al. that the paper builds on.
package mrc

import (
	"context"
	"fmt"
	"sort"

	"gpuscale/internal/cache"
	"gpuscale/internal/config"
	"gpuscale/internal/engine"
	"gpuscale/internal/trace"
)

// Point is one sample of a miss-rate curve.
type Point struct {
	// CapacityBytes is the LLC capacity of this sample.
	CapacityBytes int64
	// MPKI is LLC misses per thousand (warp) instructions.
	MPKI float64
}

// Curve is a miss-rate curve: MPKI as a function of LLC capacity, sorted by
// ascending capacity.
type Curve struct {
	Points []Point
}

// MPKIs returns just the MPKI values, smallest capacity first — the shape
// the prediction model consumes.
func (c Curve) MPKIs() []float64 {
	out := make([]float64, len(c.Points))
	for i, p := range c.Points {
		out[i] = p.MPKI
	}
	return out
}

// MPKIAt returns the MPKI at exactly the given capacity.
func (c Curve) MPKIAt(capacityBytes int64) (float64, error) {
	for _, p := range c.Points {
		if p.CapacityBytes == capacityBytes {
			return p.MPKI, nil
		}
	}
	return 0, fmt.Errorf("mrc: no sample at capacity %d bytes", capacityBytes)
}

// Validate checks that the curve is non-empty and sorted by capacity.
func (c Curve) Validate() error {
	if len(c.Points) == 0 {
		return fmt.Errorf("mrc: empty curve")
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].CapacityBytes <= c.Points[i-1].CapacityBytes {
			return fmt.Errorf("mrc: capacities not strictly increasing at index %d", i)
		}
	}
	return nil
}

// FunctionalSweep replays workload w functionally (caches only, no timing)
// once per configuration and returns the miss-rate curve sampled at each
// configuration's LLC capacity. CTAs are assigned round-robin to SMs and
// warp accesses are interleaved round-robin within and across SMs,
// approximating the thread-level parallelism a timing run would exhibit.
// Configurations must be ordered by ascending LLC capacity.
func FunctionalSweep(w trace.Workload, cfgs []config.SystemConfig) (Curve, error) {
	return FunctionalSweepParallel(w, cfgs, 1)
}

// FunctionalSweepParallel is FunctionalSweep with the per-configuration
// replays fanned across a pool of workers (<= 0 means runtime.NumCPU(); 1
// runs sequentially in the calling goroutine). Each configuration's replay
// is independent and deterministic, so the returned curve is identical to
// FunctionalSweep's; only wall-clock time changes. The workload must be
// safe for concurrent NewProgram calls, as the built-in suite is.
func FunctionalSweepParallel(w trace.Workload, cfgs []config.SystemConfig, workers int) (Curve, error) {
	if w == nil {
		return Curve{}, fmt.Errorf("mrc: nil workload")
	}
	if len(cfgs) == 0 {
		return Curve{}, fmt.Errorf("mrc: no configurations")
	}
	var curve Curve
	if workers == 1 || len(cfgs) == 1 {
		for _, cfg := range cfgs {
			mpki, err := functionalRun(w, cfg)
			if err != nil {
				return Curve{}, err
			}
			curve.Points = append(curve.Points, Point{CapacityBytes: cfg.LLCSizeBytes, MPKI: mpki})
		}
	} else {
		mpkis, err := engine.Map(context.Background(), workers, cfgs,
			func(_ context.Context, _ int, cfg config.SystemConfig) (float64, error) {
				return functionalRun(w, cfg)
			})
		if err != nil {
			return Curve{}, err
		}
		for i, cfg := range cfgs {
			curve.Points = append(curve.Points, Point{CapacityBytes: cfg.LLCSizeBytes, MPKI: mpkis[i]})
		}
	}
	if err := curve.Validate(); err != nil {
		return Curve{}, err
	}
	return curve, nil
}

// warpCursor walks one warp's program, exposing only memory instructions
// and counting every instruction it passes.
type warpCursor struct {
	prog trace.Program
	done bool
}

// nextMem advances to the next memory instruction, adding skipped compute
// instructions (and the memory instruction itself) to *instrs. It returns
// false when the warp is exhausted.
func (c *warpCursor) nextMem(instrs *uint64) (trace.Instr, bool) {
	if c.done {
		return trace.Instr{}, false
	}
	for {
		in, ok := c.prog.Next()
		if !ok {
			c.done = true
			return trace.Instr{}, false
		}
		*instrs++
		if in.Kind == trace.Load || in.Kind == trace.Store {
			return in, true
		}
	}
}

func functionalRun(w trace.Workload, cfg config.SystemConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	k := w.Kernel()
	if err := k.Validate(); err != nil {
		return 0, err
	}
	lineBits := uint(0)
	for 1<<lineBits != cfg.LineSize {
		lineBits++
	}
	l1s := make([]*cache.Cache, cfg.NumSMs)
	for i := range l1s {
		l1s[i] = cache.MustNew(cfg.L1SizeBytes, cfg.L1Ways, cfg.LineSize)
	}
	llc := make([]*cache.Cache, cfg.LLCSlices)
	for i := range llc {
		llc[i] = cache.MustNew(cfg.LLCSliceSize(), cfg.LLCWays, cfg.LineSize)
	}
	// Assign CTAs round-robin to SMs; keep per-SM warp cursor lists.
	smWarps := make([][]*warpCursor, cfg.NumSMs)
	for c := 0; c < k.NumCTAs; c++ {
		s := c % cfg.NumSMs
		for wp := 0; wp < k.WarpsPerCTA; wp++ {
			smWarps[s] = append(smWarps[s], &warpCursor{prog: w.NewProgram(c, wp)})
		}
	}
	var instrs, llcMisses uint64
	nSlices := uint64(cfg.LLCSlices)
	live := true
	next := make([]int, cfg.NumSMs)
	for live {
		live = false
		for s := range smWarps {
			warps := smWarps[s]
			if len(warps) == 0 {
				continue
			}
			// One access from the next live warp of this SM.
			for tries := 0; tries < len(warps); tries++ {
				cur := warps[next[s]%len(warps)]
				next[s]++
				if cur.done {
					continue
				}
				in, ok := cur.nextMem(&instrs)
				if !ok {
					continue
				}
				live = true
				line := in.Addr >> lineBits
				if in.Flags&trace.BypassL1 == 0 {
					if l1s[s].Access(in.Addr) {
						break // L1 hit: no LLC traffic
					}
				}
				slice := int(line % nSlices)
				sliceLocal := (line / nSlices) << lineBits
				if !llc[slice].Access(sliceLocal) {
					llcMisses++
				}
				break
			}
		}
	}
	if instrs == 0 {
		return 0, fmt.Errorf("mrc: workload %q produced no instructions", w.Name())
	}
	return float64(llcMisses) / (float64(instrs) / 1000), nil
}

// InterleavedStream materialises the warp-interleaved memory-access stream
// of w (line-granular addresses) plus the total instruction count. Warps
// across the whole grid take turns round-robin, one access per turn,
// modelling maximal thread-level interleaving. Used by the stack-distance
// method and by tests.
func InterleavedStream(w trace.Workload, lineSize int) (lines []uint64, instrs uint64, err error) {
	if w == nil {
		return nil, 0, fmt.Errorf("mrc: nil workload")
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, 0, fmt.Errorf("mrc: line size must be a positive power of two, got %d", lineSize)
	}
	lineBits := uint(0)
	for 1<<lineBits != lineSize {
		lineBits++
	}
	k := w.Kernel()
	if err := k.Validate(); err != nil {
		return nil, 0, err
	}
	cursors := make([]*warpCursor, 0, k.TotalWarps())
	for c := 0; c < k.NumCTAs; c++ {
		for wp := 0; wp < k.WarpsPerCTA; wp++ {
			cursors = append(cursors, &warpCursor{prog: w.NewProgram(c, wp)})
		}
	}
	liveCount := len(cursors)
	for liveCount > 0 {
		for _, cur := range cursors {
			if cur.done {
				continue
			}
			in, ok := cur.nextMem(&instrs)
			if !ok {
				liveCount--
				continue
			}
			lines = append(lines, in.Addr>>lineBits)
		}
	}
	return lines, instrs, nil
}

// StackDistanceCurve computes the fully-associative LRU miss-rate curve of
// w at the given capacities (in bytes) using the single-pass reuse-distance
// algorithm: one pass over the interleaved stream yields the miss count for
// every capacity simultaneously. Cold misses count at every capacity.
func StackDistanceCurve(w trace.Workload, lineSize int, capacities []int64) (Curve, error) {
	if len(capacities) == 0 {
		return Curve{}, fmt.Errorf("mrc: no capacities")
	}
	lines, instrs, err := InterleavedStream(w, lineSize)
	if err != nil {
		return Curve{}, err
	}
	if instrs == 0 {
		return Curve{}, fmt.Errorf("mrc: workload %q produced no instructions", w.Name())
	}
	hist, cold := Distances(lines)
	caps := append([]int64(nil), capacities...)
	sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
	var curve Curve
	for _, c := range caps {
		capLines := int(c / int64(lineSize))
		misses := cold
		for d := capLines; d < len(hist); d++ {
			misses += hist[d]
		}
		curve.Points = append(curve.Points, Point{
			CapacityBytes: c,
			MPKI:          float64(misses) / (float64(instrs) / 1000),
		})
	}
	if err := curve.Validate(); err != nil {
		return Curve{}, err
	}
	return curve, nil
}

// Distances computes the stack (reuse) distance histogram of a line-address
// stream: hist[d] counts accesses whose distance — the number of distinct
// lines touched since the previous access to the same line — equals d, and
// cold counts first-touch accesses. An access with distance d hits in a
// fully-associative LRU cache of more than d lines.
func Distances(lines []uint64) (hist []uint64, cold uint64) {
	n := len(lines)
	bit := newFenwick(n)
	last := make(map[uint64]int, 1024)
	for i, line := range lines {
		p, seen := last[line]
		if !seen {
			cold++
		} else {
			// Distinct lines since position p = number of
			// last-occurrence markers strictly after p.
			d := bit.sum(i) - bit.sum(p+1)
			for d >= len(hist) {
				hist = append(hist, 0)
			}
			hist[d]++
			bit.add(p, -1)
		}
		bit.add(i, 1)
		last[line] = i
	}
	return hist, cold
}

// fenwick is a Fenwick (binary indexed) tree over positions 0..n-1.
type fenwick struct {
	tree []int32
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int32, n+1)} }

func (f *fenwick) add(i int, v int32) {
	for i++; i < len(f.tree); i += i & -i {
		f.tree[i] += v
	}
}

// sum returns the prefix sum over positions 0..i-1.
func (f *fenwick) sum(i int) int {
	s := int32(0)
	for ; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return int(s)
}

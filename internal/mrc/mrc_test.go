package mrc

import (
	"math"
	"testing"
	"testing/quick"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
)

func seqWorkload(ctas, warps, loads int, extent uint64) trace.Workload {
	return &trace.FuncWorkload{
		WName: "seq",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warps},
		Factory: func(cta, warp int) trace.Program {
			g := &trace.SeqGen{Base: 0, Start: uint64(cta*warps+warp) * 128, Stride: 128, Extent: extent}
			return trace.NewPhaseProgram(trace.Phase{N: loads, ComputePer: 1, Gen: g})
		},
	}
}

func TestDistancesSimple(t *testing.T) {
	// Stream: A B A  -> A's reuse distance is 1 (B in between).
	hist, cold := Distances([]uint64{1, 2, 1})
	if cold != 2 {
		t.Errorf("cold = %d, want 2", cold)
	}
	if len(hist) < 2 || hist[1] != 1 {
		t.Errorf("hist = %v, want distance-1 count of 1", hist)
	}
}

func TestDistancesImmediateReuse(t *testing.T) {
	// A A -> distance 0.
	hist, cold := Distances([]uint64{5, 5})
	if cold != 1 {
		t.Errorf("cold = %d, want 1", cold)
	}
	if len(hist) < 1 || hist[0] != 1 {
		t.Errorf("hist = %v, want distance-0 count of 1", hist)
	}
}

func TestDistancesCyclicWorkingSet(t *testing.T) {
	// Cycling over 4 lines: after the cold pass, every access has
	// distance 3.
	var stream []uint64
	for pass := 0; pass < 5; pass++ {
		for l := uint64(0); l < 4; l++ {
			stream = append(stream, l)
		}
	}
	hist, cold := Distances(stream)
	if cold != 4 {
		t.Errorf("cold = %d, want 4", cold)
	}
	if hist[3] != 16 {
		t.Errorf("hist[3] = %d, want 16", hist[3])
	}
}

func TestDistancesMatchLRUSimulationProperty(t *testing.T) {
	// Property: for random streams, miss count derived from stack
	// distances equals a direct fully-associative LRU simulation, for
	// every capacity.
	f := func(raw []uint8, capRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		stream := make([]uint64, len(raw))
		for i, v := range raw {
			stream[i] = uint64(v % 16)
		}
		capacity := int(capRaw)%8 + 1
		hist, cold := Distances(stream)
		missesSD := cold
		for d := capacity; d < len(hist); d++ {
			missesSD += hist[d]
		}
		missesLRU := lruSim(stream, capacity)
		return missesSD == missesLRU
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// lruSim counts misses of a fully-associative LRU cache of capacity lines.
func lruSim(stream []uint64, capacity int) uint64 {
	var lru []uint64
	var misses uint64
	for _, line := range stream {
		found := -1
		for i, l := range lru {
			if l == line {
				found = i
				break
			}
		}
		if found >= 0 {
			lru = append(lru[:found], lru[found+1:]...)
		} else {
			misses++
			if len(lru) == capacity {
				lru = lru[1:]
			}
		}
		lru = append(lru, line)
	}
	return misses
}

func TestInterleavedStreamRoundRobin(t *testing.T) {
	// Two warps, each streaming its own region: accesses alternate.
	w := &trace.FuncWorkload{
		WName: "two",
		Spec:  trace.KernelSpec{NumCTAs: 1, WarpsPerCTA: 2},
		Factory: func(cta, warp int) trace.Program {
			g := &trace.SeqGen{Base: uint64(warp) * 1 << 20, Stride: 128, Extent: 1 << 19}
			return trace.NewPhaseProgram(trace.Phase{N: 3, ComputePer: 0, Gen: g})
		},
	}
	lines, instrs, err := InterleavedStream(w, 128)
	if err != nil {
		t.Fatal(err)
	}
	if instrs != 6 {
		t.Errorf("instrs = %d, want 6", instrs)
	}
	want := []uint64{0, 8192, 1, 8193, 2, 8194}
	if len(lines) != len(want) {
		t.Fatalf("lines = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines = %v, want %v", lines, want)
		}
	}
}

func TestInterleavedStreamValidation(t *testing.T) {
	if _, _, err := InterleavedStream(nil, 128); err == nil {
		t.Error("nil workload accepted")
	}
	w := seqWorkload(1, 1, 4, 1<<20)
	if _, _, err := InterleavedStream(w, 100); err == nil {
		t.Error("bad line size accepted")
	}
}

func TestStackDistanceCurveMonotone(t *testing.T) {
	// MPKI must be non-increasing with capacity (LRU inclusion property).
	// Four warps each cycle 3x over a private 64 KiB region; interleaving
	// makes the effective reuse distance ≈ 256 KiB, so capacities above
	// that hit and capacities below thrash.
	w := &trace.FuncWorkload{
		WName: "cyclic",
		Spec:  trace.KernelSpec{NumCTAs: 2, WarpsPerCTA: 2},
		Factory: func(cta, warp int) trace.Program {
			base := uint64(cta*2+warp) * (64 << 10)
			g := &trace.SeqGen{Base: base, Stride: 128, Extent: 64 << 10}
			return trace.NewPhaseProgram(trace.Phase{N: 3 * 512 * 2, ComputePer: 1, Gen: g})
		},
	}
	caps := []int64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
	curve, err := StackDistanceCurve(w, 128, caps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].MPKI > curve.Points[i-1].MPKI+1e-12 {
			t.Errorf("MPKI increased with capacity: %+v", curve.Points)
		}
	}
	// Once the working set fits, only cold misses remain.
	last := curve.Points[len(curve.Points)-1]
	first := curve.Points[0]
	if last.MPKI >= first.MPKI {
		t.Errorf("no MPKI reduction across capacities: %+v", curve.Points)
	}
}

func TestStackDistanceCurveColdOnlyWhenFits(t *testing.T) {
	w := seqWorkload(2, 2, 100, 64<<10)
	curve, err := StackDistanceCurve(w, 128, []int64{1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	lines, instrs, _ := InterleavedStream(w, 128)
	distinct := map[uint64]bool{}
	for _, l := range lines {
		distinct[l] = true
	}
	// At a capacity far beyond the footprint only cold misses remain.
	wantMPKI := float64(len(distinct)) / (float64(instrs) / 1000)
	if math.Abs(curve.Points[0].MPKI-wantMPKI) > 1e-9 {
		t.Errorf("MPKI = %v, want %v (cold only)", curve.Points[0].MPKI, wantMPKI)
	}
}

func TestFunctionalSweepShape(t *testing.T) {
	// A shared working set of 3 MiB: thrashes small LLCs, fits large.
	ws := uint64(3 << 20)
	w := &trace.FuncWorkload{
		WName: "reuse",
		Spec:  trace.KernelSpec{NumCTAs: 64, WarpsPerCTA: 4},
		Factory: func(cta, warp int) trace.Program {
			start := trace.WarpSeed(1, cta, warp) % ws
			start -= start % 128
			g := &trace.SeqGen{Base: 0, Start: start, Stride: 128, Extent: ws}
			return trace.NewPhaseProgram(trace.Phase{N: 1600, ComputePer: 1, Gen: g})
		},
	}
	curve, err := FunctionalSweep(w, config.StandardConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(curve.Points))
	}
	small := curve.Points[0].MPKI // 2.125 MiB: thrashing
	big := curve.Points[4].MPKI   // 34 MiB: resident
	if big >= small/2 {
		t.Errorf("expected a cliff: MPKI %v at 2.125 MiB vs %v at 34 MiB", small, big)
	}
}

func TestFunctionalSweepValidation(t *testing.T) {
	w := seqWorkload(2, 2, 10, 1<<20)
	if _, err := FunctionalSweep(nil, config.StandardConfigs()); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := FunctionalSweep(w, nil); err == nil {
		t.Error("no configs accepted")
	}
	bad := config.Baseline128()
	bad.NumSMs = 0
	if _, err := FunctionalSweep(w, []config.SystemConfig{bad}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCurveHelpers(t *testing.T) {
	c := Curve{Points: []Point{{1024, 10}, {2048, 5}}}
	if err := c.Validate(); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	if got := c.MPKIs(); len(got) != 2 || got[0] != 10 || got[1] != 5 {
		t.Errorf("MPKIs = %v", got)
	}
	if v, err := c.MPKIAt(2048); err != nil || v != 5 {
		t.Errorf("MPKIAt = %v, %v", v, err)
	}
	if _, err := c.MPKIAt(999); err == nil {
		t.Error("missing capacity accepted")
	}
	if err := (Curve{}).Validate(); err == nil {
		t.Error("empty curve accepted")
	}
	bad := Curve{Points: []Point{{2048, 5}, {1024, 10}}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted curve accepted")
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(0, 1)
	f.add(5, 2)
	f.add(9, 3)
	if f.sum(0) != 0 {
		t.Errorf("sum(0) = %d, want 0", f.sum(0))
	}
	if f.sum(1) != 1 {
		t.Errorf("sum(1) = %d, want 1", f.sum(1))
	}
	if f.sum(6) != 3 {
		t.Errorf("sum(6) = %d, want 3", f.sum(6))
	}
	if f.sum(10) != 6 {
		t.Errorf("sum(10) = %d, want 6", f.sum(10))
	}
	f.add(5, -2)
	if f.sum(10) != 4 {
		t.Errorf("after removal sum(10) = %d, want 4", f.sum(10))
	}
}

func TestStackDistanceBypassFlagIncluded(t *testing.T) {
	// BypassL1 accesses are still LLC traffic, so they appear in the
	// stream.
	w := &trace.FuncWorkload{
		WName: "bypass",
		Spec:  trace.KernelSpec{NumCTAs: 1, WarpsPerCTA: 1},
		Factory: func(cta, warp int) trace.Program {
			g := &trace.SeqGen{Base: 0, Stride: 128, Extent: 1 << 20}
			return trace.NewPhaseProgram(trace.Phase{N: 5, ComputePer: 0, Gen: g, Flags: trace.BypassL1})
		},
	}
	lines, _, err := InterleavedStream(w, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 {
		t.Errorf("stream length = %d, want 5", len(lines))
	}
}

package mrc

import (
	"fmt"

	"gpuscale/internal/trace"
)

// InterleavedStreamN is InterleavedStream with configurable interleaving
// granularity: each live warp contributes a burst of up to perTurn memory
// accesses per round-robin turn. Granularity 1 models maximal thread-level
// interleaving (the default of InterleavedStream and the assumption of
// GPU reuse-distance models for fine-grained schedulers); larger values
// model coarser scheduling, which shortens intra-warp reuse distances and
// lengthens inter-warp ones — the knob Nugteren et al. identify as the main
// accuracy lever of reuse-distance GPU cache models.
func InterleavedStreamN(w trace.Workload, lineSize, perTurn int) (lines []uint64, instrs uint64, err error) {
	if w == nil {
		return nil, 0, fmt.Errorf("mrc: nil workload")
	}
	if perTurn <= 0 {
		return nil, 0, fmt.Errorf("mrc: perTurn must be positive, got %d", perTurn)
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, 0, fmt.Errorf("mrc: line size must be a positive power of two, got %d", lineSize)
	}
	lineBits := uint(0)
	for 1<<lineBits != lineSize {
		lineBits++
	}
	k := w.Kernel()
	if err := k.Validate(); err != nil {
		return nil, 0, err
	}
	cursors := make([]*warpCursor, 0, k.TotalWarps())
	for c := 0; c < k.NumCTAs; c++ {
		for wp := 0; wp < k.WarpsPerCTA; wp++ {
			cursors = append(cursors, &warpCursor{prog: w.NewProgram(c, wp)})
		}
	}
	liveCount := len(cursors)
	for liveCount > 0 {
		for _, cur := range cursors {
			if cur.done {
				continue
			}
			for b := 0; b < perTurn; b++ {
				in, ok := cur.nextMem(&instrs)
				if !ok {
					liveCount--
					break
				}
				lines = append(lines, in.Addr>>lineBits)
			}
		}
	}
	return lines, instrs, nil
}

package mrc

import (
	"testing"

	"gpuscale/internal/trace"
)

func loopWorkload(warps, loads int, wsLines uint64) trace.Workload {
	return &trace.FuncWorkload{
		WName: "loop",
		Spec:  trace.KernelSpec{NumCTAs: 1, WarpsPerCTA: warps},
		Factory: func(cta, warp int) trace.Program {
			g := &trace.SeqGen{Base: uint64(warp) << 30, Stride: 128, Extent: wsLines * 128}
			return trace.NewPhaseProgram(trace.Phase{N: loads, ComputePer: 0, Gen: g})
		},
	}
}

func TestInterleavedStreamNValidation(t *testing.T) {
	w := loopWorkload(2, 4, 8)
	if _, _, err := InterleavedStreamN(nil, 128, 1); err == nil {
		t.Error("nil workload accepted")
	}
	if _, _, err := InterleavedStreamN(w, 128, 0); err == nil {
		t.Error("zero granularity accepted")
	}
	if _, _, err := InterleavedStreamN(w, 100, 1); err == nil {
		t.Error("bad line size accepted")
	}
}

func TestInterleavedStreamNGranularityOneMatchesDefault(t *testing.T) {
	w := loopWorkload(3, 5, 16)
	a, ai, err := InterleavedStream(w, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, bi, err := InterleavedStreamN(w, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ai != bi || len(a) != len(b) {
		t.Fatalf("granularity-1 differs from default: %d/%d accesses", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverges at %d", i)
		}
	}
}

func TestGranularityChangesReuseDistances(t *testing.T) {
	// Two warps each cycling over a private 8-line window, 3 passes.
	// Fine interleaving (1): a warp's revisit of a line has the other
	// warp's lines in between -> distance ~15. Coarse bursts covering the
	// whole loop (24): each warp's revisits happen within its own burst ->
	// distance ~7. A 12-line cache separates the two.
	w := loopWorkload(2, 24, 8)
	fine, _, err := InterleavedStreamN(w, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	coarse, _, err := InterleavedStreamN(w, 128, 24)
	if err != nil {
		t.Fatal(err)
	}
	missAt := func(stream []uint64, capLines int) uint64 {
		hist, cold := Distances(stream)
		misses := cold
		for d := capLines; d < len(hist); d++ {
			misses += hist[d]
		}
		return misses
	}
	fineMisses := missAt(fine, 12)
	coarseMisses := missAt(coarse, 12)
	if coarseMisses >= fineMisses {
		t.Errorf("coarse interleaving should hit more in a 12-line cache: coarse %d vs fine %d misses",
			coarseMisses, fineMisses)
	}
}

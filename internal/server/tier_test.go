package server

// Latency-tier routing tests: the analytic fast path serves without
// simulating and caches under its own keyspace, auto escalates
// byte-identically to the cycle pipeline when confidence is low, and a
// settled cycle response outranks a fresh analytic estimate. The
// analytic-only test runs no simulation and never skips; the escalation
// and settled-cycle tests drive the real simulator and skip under -short.

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestServerAnalyticTier exercises the simulation-free fast path: an
// auto-tier request on a cold cache and a direct analytic-tier request
// must both be served analytically (ht's confidence is 1.0), the second
// from the analytic keyspace's memory cache, byte-identically.
func TestServerAnalyticTier(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	auto := `{"op":"predict","workload":{"bench":"ht"},"options":{"tier":"auto"}}`
	code, hdr, first := post(t, ts.Client(), ts.URL, "/v1/predict", auto, "")
	if code != http.StatusOK {
		t.Fatalf("auto predict: %d %s", code, first)
	}
	if got := hdr.Get("X-Tier"); got != "analytic" {
		t.Errorf("auto X-Tier = %q, want analytic", got)
	}
	if got := hdr.Get("X-Cache"); got != "computed" {
		t.Errorf("auto X-Cache = %q, want computed", got)
	}
	if !bytes.Contains(first, []byte(`"tier":"analytic"`)) {
		t.Errorf("analytic body does not declare its tier: %s", first)
	}
	if !bytes.Contains(first, []byte(`"confidence":`)) {
		t.Errorf("analytic body carries no confidence: %s", first)
	}

	direct := `{"op":"predict","workload":{"bench":"ht"},"options":{"tier":"analytic"}}`
	code, hdr, second := post(t, ts.Client(), ts.URL, "/v1/predict", direct, "")
	if code != http.StatusOK {
		t.Fatalf("analytic predict: %d %s", code, second)
	}
	if got := hdr.Get("X-Tier"); got != "analytic" {
		t.Errorf("analytic X-Tier = %q, want analytic", got)
	}
	if got := hdr.Get("X-Cache"); got != "memory" {
		t.Errorf("analytic X-Cache = %q, want memory (same analytic cache key)", got)
	}
	if !bytes.Equal(first, second) {
		t.Error("analytic cache replay is not byte-identical")
	}

	if v := metric(t, ts.URL, "server_tier_analytic"); v != 2 {
		t.Errorf("server_tier_analytic = %d, want 2", v)
	}
	if v := metric(t, ts.URL, "server_tier_escalated"); v != 0 {
		t.Errorf("server_tier_escalated = %d, want 0", v)
	}
	if v := metric(t, ts.URL, "server_sims_started"); v != 0 {
		t.Errorf("server_sims_started = %d, want 0 (no simulation on the analytic path)", v)
	}
}

// TestServerAutoEscalation drives the confidence gate: the MCM case study
// is exactly what the analytic model discounts (confidence below the
// default threshold), so an auto request must escalate to the cycle
// pipeline and return bytes identical to a direct cycle request.
func TestServerAutoEscalation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, Options{Workers: 2})

	auto := `{"op":"predict","target":{"chiplets":16},"workload":{"bench":"bfs","weak":true},"options":{"tier":"auto"}}`
	code, hdr, escalated := post(t, ts.Client(), ts.URL, "/v1/predict", auto, "")
	if code != http.StatusOK {
		t.Fatalf("auto predict: %d %s", code, escalated)
	}
	if got := hdr.Get("X-Tier"); got != "cycle" {
		t.Errorf("escalated X-Tier = %q, want cycle", got)
	}
	if bytes.Contains(escalated, []byte(`"tier":`)) {
		t.Errorf("escalated cycle body leaks a tier field: %s", escalated)
	}
	if v := metric(t, ts.URL, "server_tier_escalated"); v != 1 {
		t.Errorf("server_tier_escalated = %d, want 1", v)
	}
	if v := metric(t, ts.URL, "server_tier_analytic"); v != 0 {
		t.Errorf("server_tier_analytic = %d, want 0", v)
	}

	cycle := strings.Replace(auto, `,"options":{"tier":"auto"}`, "", 1)
	code, hdr, direct := post(t, ts.Client(), ts.URL, "/v1/predict", cycle, "")
	if code != http.StatusOK {
		t.Fatalf("cycle predict: %d %s", code, direct)
	}
	if got := hdr.Get("X-Cache"); got != "memory" {
		t.Errorf("cycle X-Cache = %q, want memory (escalation settled the canonical key)", got)
	}
	if !bytes.Equal(escalated, direct) {
		t.Error("escalated response differs from a direct cycle response")
	}
}

// TestServerAutoEscalatesOnUarch pins the structural-confidence gate: the
// analytic model is calibrated against the default microarchitecture only,
// so a non-default variant discounts its confidence below the threshold and
// an auto-tier request must escalate to the cycle pipeline, which actually
// simulates the variant.
func TestServerAutoEscalatesOnUarch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, Options{Workers: 2})

	auto := `{"op":"predict","workload":{"bench":"ht"},"options":{"tier":"auto","uarch":{"scheduler":"two-level"}}}`
	code, hdr, escalated := post(t, ts.Client(), ts.URL, "/v1/predict", auto, "")
	if code != http.StatusOK {
		t.Fatalf("auto predict: %d %s", code, escalated)
	}
	if got := hdr.Get("X-Tier"); got != "cycle" {
		t.Errorf("uarch X-Tier = %q, want cycle (variant must force escalation)", got)
	}
	if v := metric(t, ts.URL, "server_tier_escalated"); v != 1 {
		t.Errorf("server_tier_escalated = %d, want 1", v)
	}

	// The same request without the variant serves analytically (ht's base
	// confidence is 1.0) and its body differs: the cycle pipeline simulated
	// two-level scheduling, the analytic tier modelled the default machine.
	plain := `{"op":"predict","workload":{"bench":"ht"},"options":{"tier":"auto"}}`
	code, hdr, analytic := post(t, ts.Client(), ts.URL, "/v1/predict", plain, "")
	if code != http.StatusOK {
		t.Fatalf("plain predict: %d %s", code, analytic)
	}
	if got := hdr.Get("X-Tier"); got != "analytic" {
		t.Errorf("plain X-Tier = %q, want analytic", got)
	}
	if bytes.Equal(escalated, analytic) {
		t.Error("variant response is byte-identical to the default analytic response")
	}
}

// TestServerAutoPrefersSettledCycle pins the fast path's cache shortcut:
// once a cycle response has settled under the canonical hash, an
// auto-tier request serves it (the real answer) instead of an estimate.
func TestServerAutoPrefersSettledCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, Options{Workers: 2})

	cycle := `{"op":"predict","workload":{"bench":"ht"}}`
	code, _, direct := post(t, ts.Client(), ts.URL, "/v1/predict", cycle, "")
	if code != http.StatusOK {
		t.Fatalf("cycle predict: %d %s", code, direct)
	}

	auto := `{"op":"predict","workload":{"bench":"ht"},"options":{"tier":"auto"}}`
	code, hdr, second := post(t, ts.Client(), ts.URL, "/v1/predict", auto, "")
	if code != http.StatusOK {
		t.Fatalf("auto predict: %d %s", code, second)
	}
	if got := hdr.Get("X-Tier"); got != "cycle" {
		t.Errorf("auto X-Tier = %q, want cycle (settled response outranks the estimate)", got)
	}
	if got := hdr.Get("X-Cache"); got != "memory" {
		t.Errorf("auto X-Cache = %q, want memory", got)
	}
	if !bytes.Equal(direct, second) {
		t.Error("auto-served settled response is not byte-identical to the cycle response")
	}
	if v := metric(t, ts.URL, "server_tier_analytic"); v != 0 {
		t.Errorf("server_tier_analytic = %d, want 0", v)
	}
}

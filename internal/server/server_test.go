package server

// End-to-end daemon tests over httptest: the four service behaviours the
// issue pins — cache miss → hit with byte-identical bodies, disk-store
// survival across a restart, backpressure 429 on a full tenant queue, and
// client-disconnect cancellation reaching an in-flight simulation. Tests
// that run real simulations skip under -short; the backpressure and
// protocol tests inject an Evaluator and always run.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gpuscale"
)

// post sends one /v1 request and returns status, headers and body.
func post(t *testing.T, client *http.Client, url, path, body, tenant string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// metric scrapes one counter value from /metrics.
func metric(t *testing.T, url, name string) uint64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: parsing %q: %v", name, rest, err)
			}
			return v
		}
	}
	return 0
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// TestServerPredictCacheMissThenHit is the acceptance scenario: two
// identical /v1/predict requests, the first computed, the second served
// byte-identically from memory — verified through the cache-hit counter.
func TestServerPredictCacheMissThenHit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, Options{Workers: 4})
	body := `{"op":"predict","workload":{"bench":"ht"}}`

	code, hdr, first := post(t, ts.Client(), ts.URL, "/v1/predict", body, "")
	if code != http.StatusOK {
		t.Fatalf("first predict: %d %s", code, first)
	}
	if got := hdr.Get("X-Cache"); got != "computed" {
		t.Errorf("first X-Cache = %q, want computed", got)
	}
	hash := hdr.Get("X-Request-Hash")
	if len(hash) != 64 {
		t.Errorf("X-Request-Hash = %q", hash)
	}

	code, hdr, second := post(t, ts.Client(), ts.URL, "/v1/predict", body, "")
	if code != http.StatusOK {
		t.Fatalf("second predict: %d %s", code, second)
	}
	if got := hdr.Get("X-Cache"); got != "memory" {
		t.Errorf("second X-Cache = %q, want memory", got)
	}
	if hdr.Get("X-Request-Hash") != hash {
		t.Error("request hash changed between identical requests")
	}
	if !bytes.Equal(first, second) {
		t.Error("cache hit served different bytes than the computed response")
	}

	if v := metric(t, ts.URL, "server_cache_hits_memory"); v != 1 {
		t.Errorf("server_cache_hits_memory = %d, want 1", v)
	}
	if v := metric(t, ts.URL, "server_cache_misses"); v != 1 {
		t.Errorf("server_cache_misses = %d, want 1", v)
	}
	if v := metric(t, ts.URL, "server_requests_predict"); v != 2 {
		t.Errorf("server_requests_predict = %d, want 2", v)
	}
	if v := metric(t, ts.URL, "server_sims_started"); v != 2 {
		t.Errorf("server_sims_started = %d, want 2 (the two scale models)", v)
	}
}

// TestServerDiskStoreSurvivesRestart checks the second cache level: a
// response computed by one server instance is served from disk —
// byte-identically, without re-simulating — by a fresh instance on the
// same store directory.
func TestServerDiskStoreSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	dir := t.TempDir()
	body := `{"op":"simulate","target":{"sms":8},"workload":{"bench":"ht"}}`

	s1, err := New(Options{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, _, first := post(t, ts1.Client(), ts1.URL, "/v1/simulate", body, "")
	ts1.Close()
	s1.Close()
	if code != http.StatusOK {
		t.Fatalf("simulate: %d %s", code, first)
	}

	_, ts2 := newTestServer(t, Options{StoreDir: dir, Workers: 2})
	code, hdr, second := post(t, ts2.Client(), ts2.URL, "/v1/simulate", body, "")
	if code != http.StatusOK {
		t.Fatalf("post-restart simulate: %d %s", code, second)
	}
	if got := hdr.Get("X-Cache"); got != "disk" {
		t.Errorf("post-restart X-Cache = %q, want disk", got)
	}
	if !bytes.Equal(first, second) {
		t.Error("restarted server served different bytes")
	}
	if v := metric(t, ts2.URL, "server_sims_started"); v != 0 {
		t.Errorf("restarted server simulated %d times, want 0", v)
	}
	if v := metric(t, ts2.URL, "server_cache_hits_disk"); v != 1 {
		t.Errorf("server_cache_hits_disk = %d, want 1", v)
	}
}

// TestServerBackpressure429 fills one tenant's queue with a blocked
// request and checks that the tenant's next request bounces with 429 and
// Retry-After while another tenant is still served.
func TestServerBackpressure429(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	eval := func(ctx context.Context, req gpuscale.Request, hash string) ([]byte, error) {
		if req.Target.SMs == 8 { // the blocking request
			entered <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return []byte(fmt.Sprintf(`{"sms":%d}`, req.Target.SMs)), nil
	}
	_, ts := newTestServer(t, Options{TenantCapacity: 1, Eval: eval})

	blockBody := `{"op":"simulate","target":{"sms":8},"workload":{"bench":"dct"}}`
	otherBody := `{"op":"simulate","target":{"sms":16},"workload":{"bench":"dct"}}`

	blocked := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts.Client(), ts.URL, "/v1/simulate", blockBody, "alice")
		blocked <- code
	}()
	<-entered // alice's slot is now held inside the evaluator

	code, hdr, body := post(t, ts.Client(), ts.URL, "/v1/simulate", otherBody, "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("full tenant queue: %d %s, want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(body), "tenant queue full") {
		t.Errorf("429 body: %s", body)
	}
	if v := metric(t, ts.URL, "server_backpressure_rejected"); v != 1 {
		t.Errorf("server_backpressure_rejected = %d, want 1", v)
	}

	// Tenant isolation: bob's queue is empty, so bob is served.
	if code, _, body := post(t, ts.Client(), ts.URL, "/v1/simulate", otherBody, "bob"); code != http.StatusOK {
		t.Errorf("other tenant: %d %s, want 200", code, body)
	}

	close(release)
	if code := <-blocked; code != http.StatusOK {
		t.Errorf("released request: %d, want 200", code)
	}
	// The slot is free again: alice's next request is admitted.
	if code, _, body := post(t, ts.Client(), ts.URL, "/v1/simulate", otherBody, "alice"); code != http.StatusOK {
		t.Errorf("after release: %d %s, want 200", code, body)
	}
}

// TestServerClientDisconnectCancels checks cancellation end to end: a
// client that goes away mid-request aborts its in-flight simulation (the
// request context reaches the engine's run loop) and the server counts the
// cancellation instead of caching a partial result.
func TestServerClientDisconnectCancels(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, Options{Workers: 2})
	body := `{"op":"simulate","target":{"sms":16},"workload":{"bench":"ht"}}`

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait until the simulation is actually in flight, then disconnect.
	deadline := time.Now().Add(10 * time.Second)
	for metric(t, ts.URL, "server_sims_started") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("simulation never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Error("cancelled client request reported no error")
	}

	for metric(t, ts.URL, "server_cancelled") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	// Nothing was cached for the aborted request: a fresh request computes.
	code, hdr, _ := post(t, ts.Client(), ts.URL, "/v1/simulate", body, "")
	if code != http.StatusOK {
		t.Fatalf("retry after cancellation: %d", code)
	}
	if got := hdr.Get("X-Cache"); got != "computed" {
		t.Errorf("retry X-Cache = %q, want computed (aborted run must not settle)", got)
	}
}

// TestServerProtocol covers the HTTP edges with an instant evaluator:
// method and body validation, op/endpoint mismatch, and the health probe.
func TestServerProtocol(t *testing.T) {
	eval := func(ctx context.Context, req gpuscale.Request, hash string) ([]byte, error) {
		return []byte(`{}`), nil
	}
	_, ts := newTestServer(t, Options{Eval: eval})

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// GET on a /v1 endpoint: 405 with Allow.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /v1/predict: %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}

	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/simulate", `not json`, http.StatusBadRequest},
		{"/v1/simulate", `{"op":"simulate","workload":{"bench":"zzz"},"target":{"sms":8}}`, http.StatusBadRequest},
		{"/v1/simulate", `{"op":"predict","workload":{"bench":"dct"}}`, http.StatusBadRequest}, // op/path mismatch
		{"/v1/simulate", `{"op":"simulate","workload":{"bench":"dct"}}`, http.StatusBadRequest}, // no target
		{"/v1/predict", `{"workload":{"bench":"dct"}}`, http.StatusOK},                          // op filled from path
	}
	for _, tc := range cases {
		code, _, body := post(t, ts.Client(), ts.URL, tc.path, tc.body, "")
		if code != tc.want {
			t.Errorf("POST %s %s: %d %s, want %d", tc.path, tc.body, code, body, tc.want)
		}
		if code != http.StatusOK && !strings.Contains(string(body), `"error"`) {
			t.Errorf("error response without error body: %s", body)
		}
	}
}

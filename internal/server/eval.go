package server

// The built-in evaluator: turns a validated canonical request into its
// canonical JSON response body. Simulations run under the caller's
// context; monolithic ones go through the intake (coalescing + bounded
// pool), MCM ones call the facade directly. Determinism note: response
// bodies are produced by json.Marshal over structs (fixed field order),
// simulation statistics are bit-identical across worker counts and shard
// counts, and the prediction pipeline is pure arithmetic — so one
// canonical request always yields one byte string, which the store
// replays verbatim.

import (
	"context"
	"fmt"

	"gpuscale"
	"gpuscale/internal/config"
)

// evaluate dispatches one canonical request to its op's evaluator.
func (s *Server) evaluate(ctx context.Context, req gpuscale.Request, hash string) ([]byte, error) {
	switch req.Op {
	case gpuscale.OpSimulate:
		return s.evalSimulate(ctx, req, hash)
	case gpuscale.OpPredict:
		return s.evalPredict(ctx, req, hash)
	case gpuscale.OpMRC:
		return s.evalMRC(ctx, req, hash)
	default:
		return nil, fmt.Errorf("server: unknown op %q", req.Op)
	}
}

// EvalLocal evaluates one request in-process without an HTTP server — the
// CLIs' "no daemon configured" path, sharing the daemon's evaluator (and
// therefore its response format) exactly. workers bounds the simulation
// pool; <= 0 means all CPUs. mcmShards sets the MCM shard count.
func EvalLocal(ctx context.Context, req gpuscale.Request, workers, mcmShards int) ([]byte, string, error) {
	if req.Op == "" {
		return nil, "", fmt.Errorf("server: request has no op")
	}
	_, hash, err := gpuscale.Canonicalize(req)
	if err != nil {
		return nil, "", err
	}
	// Latency tiers work without a daemon too: tier=analytic always
	// answers analytically; tier=auto does unless confidence falls below
	// the default threshold, in which case it falls through to the cycle
	// pipeline exactly like the daemon's escalation path.
	if req.Op == gpuscale.OpPredict {
		switch req.Options.Tier {
		case gpuscale.TierAnalytic:
			body, err := evalPredictAnalytic(req, hash)
			return body, hash, err
		case gpuscale.TierAuto:
			ap, err := gpuscale.PredictAnalytic(req)
			if err != nil {
				return nil, "", err
			}
			if ap.Confidence >= defaultConfidenceThreshold {
				body, err := marshalAnalytic(ap, req, hash)
				return body, hash, err
			}
		}
	}
	s, err := New(Options{Workers: workers, MCMShards: mcmShards})
	if err != nil {
		return nil, "", err
	}
	defer s.Close()
	body, err := s.evaluate(ctx, req, hash)
	return body, hash, err
}

// evalSimulate runs one timing simulation.
func (s *Server) evalSimulate(ctx context.Context, req gpuscale.Request, hash string) ([]byte, error) {
	tgt, err := req.ResolveSimulation()
	if err != nil {
		return nil, err
	}
	resp := SimulateResponse{
		RequestHash: hash,
		Op:          req.Op,
		Workload:    tgt.Workload.Name(),
	}
	s.m.simsStart.Inc()
	if tgt.MCM != nil {
		resp.Config = tgt.MCM.Name
		opts := tgt.Options
		if s.opt.MCMShards > 0 {
			// Server shard policy overrides the request's (results are
			// bit-identical either way; Canonicalize already stripped
			// shards from the cache key).
			opts = append(opts, gpuscale.WithShards(s.opt.MCMShards))
		}
		st, err := gpuscale.SimulateMCMContext(ctx, *tgt.MCM, tgt.Workload, opts...)
		if err != nil {
			return nil, err
		}
		resp.MCMStats = &st
		return marshalResponse(resp)
	}
	resp.Config = tgt.System.Name
	var o gpuscale.SimOptions
	for _, fn := range tgt.Options {
		fn(&o)
	}
	r := s.intake.Submit(ctx, gpuscale.Job{
		Config:  *tgt.System,
		Kernels: []gpuscale.Workload{tgt.Workload},
		Options: o,
	})
	if r.Err != nil {
		return nil, r.Err
	}
	resp.Stats = &r.Stats
	return marshalResponse(resp)
}

// evalMRC collects a miss-rate curve across the standard configurations.
func (s *Server) evalMRC(_ context.Context, req gpuscale.Request, hash string) ([]byte, error) {
	w, err := req.Workload.Resolve(0)
	if err != nil {
		return nil, err
	}
	curve, err := gpuscale.MissRateCurve(w, gpuscale.StandardConfigs())
	if err != nil {
		return nil, err
	}
	return marshalResponse(MRCResponse{
		RequestHash: hash,
		Op:          req.Op,
		Workload:    w.Name(),
		Points:      curve.Points,
	})
}

// evalPredict runs the scale-model pipeline: simulate the two scale
// models (concurrently, so the intake can batch them), collect the
// miss-rate curve for strong scaling, and predict the target sizes the
// paper never simulates.
func (s *Server) evalPredict(ctx context.Context, req gpuscale.Request, hash string) ([]byte, error) {
	if req.Target.Chiplets > 0 {
		return s.evalPredictMCM(ctx, req, hash)
	}

	sizes := config.StandardSizes // {8, 16, 32, 64, 128}; first two are the scale models
	base := gpuscale.Baseline128()
	if req.Options.Uarch != nil {
		// The variant scales with the ladder: both scale models simulate the
		// requested microarchitecture, so the prediction extrapolates it too.
		base.Uarch = *req.Options.Uarch
	}
	jobs := make([]gpuscale.Job, 2)
	for i, n := range sizes[:2] {
		w, err := req.Workload.Resolve(n)
		if err != nil {
			return nil, err
		}
		jobs[i] = gpuscale.NewJob(gpuscale.MustScale(base, n), w)
	}
	s.m.simsStart.Add(uint64(len(jobs)))
	models, err := s.submitAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	small, large := models[0], models[1]

	fsizes := make([]float64, len(sizes))
	for i, n := range sizes {
		fsizes[i] = float64(n)
	}
	in := gpuscale.PredictionInput{
		Sizes:    fsizes,
		SmallIPC: small.IPC,
		LargeIPC: large.IPC,
	}
	resp := PredictResponse{
		RequestHash: hash,
		Op:          req.Op,
		Workload:    req.Workload.Bench,
		ScaleModels: []ScaleModelPoint{
			{Size: fsizes[0], IPC: small.IPC},
			{Size: fsizes[1], IPC: large.IPC},
		},
		CorrectionFactor: gpuscale.CorrectionFactor(fsizes[0], small.IPC, fsizes[1], large.IPC),
	}
	if req.Workload.Weak {
		resp.Mode = "weak"
		in.Mode = gpuscale.WeakScaling
	} else {
		resp.Mode = "strong"
		in.Mode = gpuscale.StrongScaling
		w, err := req.Workload.Resolve(0)
		if err != nil {
			return nil, err
		}
		curve, err := gpuscale.MissRateCurve(w, gpuscale.StandardConfigs())
		if err != nil {
			return nil, err
		}
		in.MPKI = curve.MPKIs()
		in.FMemLarge = large.FMem
		resp.MPKI = in.MPKI
	}
	preds, err := finishPredictions(in)
	if err != nil {
		return nil, err
	}
	resp.Predictions = preds
	return marshalResponse(resp)
}

// evalPredictMCM is the multi-chip-module case study: 4- and 8-chiplet
// scale models predicting the 16-chiplet target under weak scaling.
func (s *Server) evalPredictMCM(ctx context.Context, req gpuscale.Request, hash string) ([]byte, error) {
	base := gpuscale.Target16Chiplet()
	if req.Options.Uarch != nil {
		// Same rule as the monolithic ladder: the MCM scale models simulate
		// the requested microarchitecture variant.
		base.Chiplet.Uarch = *req.Options.Uarch
	}
	sizes := config.ChipletStandardSizes // {4, 8, 16}; first two are the scale models
	stats := make([]gpuscale.MCMStats, 2)
	for i, n := range sizes[:2] {
		cfg, err := gpuscale.ScaleChiplets(base, n)
		if err != nil {
			return nil, err
		}
		w, err := req.Workload.Resolve(cfg.TotalSMs())
		if err != nil {
			return nil, err
		}
		s.m.simsStart.Inc()
		st, err := gpuscale.SimulateMCMContext(ctx, cfg, w, gpuscale.WithShards(s.opt.MCMShards))
		if err != nil {
			return nil, err
		}
		stats[i] = st
	}
	small, large := stats[0], stats[1]
	fsizes := make([]float64, len(sizes))
	for i, n := range sizes {
		fsizes[i] = float64(n)
	}
	preds, err := finishPredictions(gpuscale.PredictionInput{
		Sizes:    fsizes,
		SmallIPC: small.IPC,
		LargeIPC: large.IPC,
		Mode:     gpuscale.WeakScaling,
	})
	if err != nil {
		return nil, err
	}
	return marshalResponse(PredictResponse{
		RequestHash: hash,
		Op:          req.Op,
		Workload:    req.Workload.Bench,
		Mode:        "weak",
		MCM:         true,
		ScaleModels: []ScaleModelPoint{
			{Size: fsizes[0], IPC: small.IPC},
			{Size: fsizes[1], IPC: large.IPC},
		},
		CorrectionFactor: gpuscale.CorrectionFactor(fsizes[0], small.IPC, fsizes[1], large.IPC),
		Predictions:      preds,
	})
}

// evalPredictAnalytic answers a predict request from the analytic tier:
// the same response shape as evalPredict, produced by the microsecond
// model (gpuscale.PredictAnalytic) with no simulation anywhere on the
// path. The body is deterministic (pure arithmetic over static workload
// features), so it caches under AnalyticCacheKey like any other response.
func evalPredictAnalytic(req gpuscale.Request, hash string) ([]byte, error) {
	ap, err := gpuscale.PredictAnalytic(req)
	if err != nil {
		return nil, err
	}
	return marshalAnalytic(ap, req, hash)
}

// marshalAnalytic renders an already-computed analytic prediction into the
// canonical response body.
func marshalAnalytic(ap gpuscale.AnalyticPrediction, req gpuscale.Request, hash string) ([]byte, error) {
	in := ap.Input
	preds, err := finishPredictions(in)
	if err != nil {
		return nil, err
	}
	resp := PredictResponse{
		RequestHash: hash,
		Op:          req.Op,
		Workload:    req.Workload.Bench,
		MCM:         ap.MCM,
		ScaleModels: []ScaleModelPoint{
			{Size: in.Sizes[0], IPC: in.SmallIPC},
			{Size: in.Sizes[1], IPC: in.LargeIPC},
		},
		CorrectionFactor: gpuscale.CorrectionFactor(in.Sizes[0], in.SmallIPC, in.Sizes[1], in.LargeIPC),
		MPKI:             in.MPKI,
		Predictions:      preds,
		Tier:             gpuscale.TierAnalytic,
		Confidence:       ap.Confidence,
	}
	if in.Mode == gpuscale.WeakScaling {
		resp.Mode = "weak"
	} else {
		resp.Mode = "strong"
	}
	return marshalResponse(resp)
}

// submitAll submits jobs to the intake concurrently — concurrent
// submission is what lets the dispatcher coalesce them into one batch —
// and returns their stats in job order, or the first error in job order.
func (s *Server) submitAll(ctx context.Context, jobs []gpuscale.Job) ([]gpuscale.SimStats, error) {
	results := make([]gpuscale.JobResult, len(jobs))
	done := make(chan int)
	for i := range jobs {
		go func(i int) {
			results[i] = s.intake.Submit(ctx, jobs[i])
			done <- i
		}(i)
	}
	for range jobs {
		<-done
	}
	out := make([]gpuscale.SimStats, len(jobs))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("server: simulating %s: %w", jobs[i].Label(), r.Err)
		}
		out[i] = r.Stats
	}
	return out, nil
}

// finishPredictions runs the scale-model predictor plus the four baseline
// extrapolations and merges them into wire form, target sizes only.
func finishPredictions(in gpuscale.PredictionInput) ([]PredictionPoint, error) {
	preds, err := gpuscale.Predict(in)
	if err != nil {
		return nil, err
	}
	baselines, err := gpuscale.FitBaselines([]gpuscale.RegressionPoint{
		{Size: in.Sizes[0], IPC: in.SmallIPC},
		{Size: in.Sizes[1], IPC: in.LargeIPC},
	})
	if err != nil {
		return nil, err
	}
	out := make([]PredictionPoint, len(preds))
	for i, p := range preds {
		bl := make(map[string]float64, len(baselines))
		for name, m := range baselines {
			bl[name] = m.Predict(p.Size)
		}
		out[i] = PredictionPoint{
			Size:      p.Size,
			IPC:       p.IPC,
			Region:    p.Region.String(),
			Baselines: bl,
		}
	}
	return out, nil
}

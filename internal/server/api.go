// Package server implements the gpuscaled prediction service: an HTTP/JSON
// daemon serving the paper's scale-model predictions (and raw simulations
// and miss-rate curves) over the existing engine and facade.
//
// The service is built around one invariant: a request's canonical hash
// (gpuscale.Canonicalize) fully determines its response bytes, because
// every simulation in this repository is deterministic. That invariant is
// what the whole serving architecture leans on — responses are cached as
// opaque byte strings in a two-level harness.ResultStore (in-memory
// single-flight memo in front of a disk directory, so restarts do not
// re-simulate), concurrent identical requests coalesce onto one
// computation, and a replayed cache entry is byte-identical to a fresh
// evaluation.
//
// Request flow: decode (strict) → canonicalise → per-tenant admission (a
// bounded semaphore per X-Tenant; full queue → 429 + Retry-After) → store
// lookup → on miss, evaluate. Evaluation runs monolithic simulations
// through an engine.Intake, which coalesces concurrently arriving jobs
// into batches on a bounded worker pool; MCM simulations call the facade
// directly (the engine's Job is monolithic-only — the per-tenant bound is
// their admission control). The client's request context is threaded into
// the run loops, so a disconnected client aborts its in-flight simulation
// within a few thousand simulated cycles.
package server

import (
	"encoding/json"

	"gpuscale"
)

// marshalResponse produces the canonical body bytes for a response struct.
// encoding/json is deterministic here: struct fields marshal in definition
// order and map keys sort, so the same response value always produces the
// same bytes — the property the byte-replay cache relies on.
func marshalResponse(v any) ([]byte, error) {
	return json.Marshal(v)
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// SimulateResponse is the /v1/simulate response body.
type SimulateResponse struct {
	// RequestHash is the canonical request hash (also in X-Request-Hash).
	RequestHash string `json:"request_hash"`
	// Op echoes the operation ("simulate").
	Op string `json:"op"`
	// Config names the simulated configuration (e.g. "gpu-16sm", "mcm-4c").
	Config string `json:"config"`
	// Workload names the instantiated workload.
	Workload string `json:"workload"`
	// Stats is the monolithic-GPU result (nil for MCM requests).
	Stats *gpuscale.SimStats `json:"stats,omitempty"`
	// MCMStats is the multi-chip-module result (nil for monolithic).
	MCMStats *gpuscale.MCMStats `json:"mcm_stats,omitempty"`
}

// MRCResponse is the /v1/mrc response body.
type MRCResponse struct {
	RequestHash string `json:"request_hash"`
	Op          string `json:"op"`
	Workload    string `json:"workload"`
	// Points is the miss-rate curve across the five standard
	// configurations, smallest LLC first.
	Points []gpuscale.CurvePoint `json:"points"`
}

// ScaleModelPoint is one simulated scale model in a PredictResponse.
type ScaleModelPoint struct {
	// Size is the system size (SMs, or chiplets for MCM predictions).
	Size float64 `json:"size"`
	// IPC is the measured scale-model IPC.
	IPC float64 `json:"ipc"`
}

// PredictionPoint is one predicted target size in a PredictResponse.
type PredictionPoint struct {
	// Size is the predicted system size (SMs, or chiplets for MCM).
	Size float64 `json:"size"`
	// IPC is the scale-model prediction (the paper's contribution).
	IPC float64 `json:"ipc"`
	// Region classifies the prediction against the miss-rate curve
	// ("pre-cliff", "cliff", "post-cliff").
	Region string `json:"region"`
	// Baselines maps each baseline extrapolation (logarithmic,
	// proportional, linear, power-law) to its predicted IPC.
	Baselines map[string]float64 `json:"baselines"`
}

// PredictResponse is the /v1/predict response body: the full scale-model
// pipeline — simulate the two small scale models, then predict every
// standard target size without simulating any of them.
type PredictResponse struct {
	RequestHash string `json:"request_hash"`
	Op          string `json:"op"`
	Workload    string `json:"workload"`
	// Mode is "strong" or "weak".
	Mode string `json:"mode"`
	// MCM is true for the multi-chip-module case study (sizes are chiplet
	// counts).
	MCM bool `json:"mcm,omitempty"`
	// ScaleModels are the simulated scale models, smallest first.
	ScaleModels []ScaleModelPoint `json:"scale_models"`
	// CorrectionFactor is Eq. 1's C: measured scale-model scaling over
	// ideal proportional scaling.
	CorrectionFactor float64 `json:"correction_factor"`
	// MPKI is the miss-rate curve sampled at each standard size (strong
	// scaling only).
	MPKI []float64 `json:"mpki,omitempty"`
	// Predictions are the predicted target sizes, smallest first.
	Predictions []PredictionPoint `json:"predictions"`
	// Tier is "analytic" when this body came from the analytic tier; empty
	// (omitted) on cycle responses, whose bytes must stay identical to
	// builds that predate tiering.
	Tier string `json:"tier,omitempty"`
	// Confidence is the analytic model's confidence in [0, 1]; zero
	// (omitted) on cycle responses.
	Confidence float64 `json:"confidence,omitempty"`
}

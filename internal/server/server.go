package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"gpuscale"
	"gpuscale/internal/engine"
	"gpuscale/internal/harness"
	"gpuscale/internal/obs"
)

// maxRequestBody bounds /v1 request bodies; canonical requests are tiny.
const maxRequestBody = 1 << 20

// Evaluator computes the canonical response body for one request. It is a
// seam for tests (inject a blocking or instant evaluator); production
// servers use the built-in one (eval.go). The returned bytes are stored
// verbatim and replayed byte-identically on cache hits, so an evaluator
// must be deterministic: same canonical request → same bytes.
type Evaluator func(ctx context.Context, req gpuscale.Request, hash string) ([]byte, error)

// Options configures a Server.
type Options struct {
	// StoreDir is the disk level of the response cache; "" serves from
	// memory only (restarts re-simulate).
	StoreDir string
	// Workers bounds concurrently running simulations; <= 0 means all CPUs.
	Workers int
	// TenantCapacity bounds each tenant's concurrently admitted requests
	// (in queue + in flight); beyond it the server answers 429 with
	// Retry-After. <= 0 means 64.
	TenantCapacity int
	// BatchLinger is the intake coalescing window for monolithic
	// simulation jobs; <= 0 means 2ms.
	BatchLinger time.Duration
	// MCMShards is the shard count applied to every MCM simulation the
	// server runs (results are bit-identical at every setting).
	MCMShards int
	// MemoBytes caps the in-memory level of the response cache in bytes
	// (strict LRU); <= 0 means 64 MiB. Evicted entries reload from
	// StoreDir when configured.
	MemoBytes int64
	// ConfidenceThreshold gates auto-tier escalation: an auto predict
	// request whose analytic confidence is below it escalates to the cycle
	// simulator. <= 0 means 0.5.
	ConfidenceThreshold float64
	// Registry receives the server's metrics (and is exported at
	// /metrics); nil creates a private one.
	Registry *obs.Registry
	// Eval overrides the built-in evaluator (tests only).
	Eval Evaluator
}

// metrics is the server's instrumentation, all registered under "server/".
type metrics struct {
	requests   *obs.Counter // per op, see Server.requestCounter
	hitsMem    *obs.Counter
	hitsDisk   *obs.Counter
	coalesced  *obs.Counter
	misses     *obs.Counter
	rejected   *obs.Counter
	cancelled  *obs.Counter
	errors     *obs.Counter
	simsStart  *obs.Counter
	batches    *obs.Counter
	batchJobs  *obs.Counter
	latencyMS  *obs.Histogram
	reqCounter map[string]*obs.Counter

	// Latency-tier instrumentation (docs/ANALYTIC.md): which tier served
	// each response, auto-tier escalations, and the analytic fast path's
	// latency in host microseconds (its budget is < 1 ms).
	tierServed map[string]*obs.Counter
	escalated  *obs.Counter
	analyticUS *obs.Histogram
}

// latencyBoundsMS buckets request latency in host milliseconds: cache hits
// land in the low buckets, fresh simulations in the high ones.
var latencyBoundsMS = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 30000}

// analyticBoundsUS buckets the analytic fast path in host microseconds;
// the tier's contract is to answer well under a millisecond.
var analyticBoundsUS = []float64{50, 100, 250, 500, 1000, 2500, 10000}

// defaultConfidenceThreshold gates auto-tier escalation when the operator
// sets none.
const defaultConfidenceThreshold = gpuscale.DefaultConfidenceThreshold

// Server is the gpuscaled HTTP service. Create with New, mount Handler on
// an http.Server, and Close when done.
type Server struct {
	opt    Options
	reg    *obs.Registry
	store  *harness.ResultStore
	intake *engine.Intake
	eval   Evaluator
	m      metrics

	mu      sync.Mutex
	tenants map[string]chan struct{}
}

// New builds a Server (creating the store directory if needed) and starts
// its intake dispatcher.
func New(opt Options) (*Server, error) {
	if opt.TenantCapacity <= 0 {
		opt.TenantCapacity = 64
	}
	if opt.BatchLinger <= 0 {
		opt.BatchLinger = 2 * time.Millisecond
	}
	if opt.MemoBytes <= 0 {
		opt.MemoBytes = 64 << 20
	}
	if opt.ConfidenceThreshold <= 0 {
		opt.ConfidenceThreshold = defaultConfidenceThreshold
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	store, err := harness.NewResultStore(opt.StoreDir, opt.MemoBytes)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opt:     opt,
		reg:     reg,
		store:   store,
		tenants: make(map[string]chan struct{}),
	}
	s.m = metrics{
		hitsMem:   reg.Counter("server/cache/hits_memory"),
		hitsDisk:  reg.Counter("server/cache/hits_disk"),
		coalesced: reg.Counter("server/cache/coalesced"),
		misses:    reg.Counter("server/cache/misses"),
		rejected:  reg.Counter("server/backpressure/rejected"),
		cancelled: reg.Counter("server/cancelled"),
		errors:    reg.Counter("server/errors"),
		simsStart: reg.Counter("server/sims/started"),
		batches:   reg.Counter("server/batch/batches"),
		batchJobs: reg.Counter("server/batch/jobs"),
		latencyMS: reg.Histogram("server/latency_ms", latencyBoundsMS),
		reqCounter: map[string]*obs.Counter{
			gpuscale.OpSimulate: reg.Counter("server/requests/simulate"),
			gpuscale.OpPredict:  reg.Counter("server/requests/predict"),
			gpuscale.OpMRC:      reg.Counter("server/requests/mrc"),
		},
		tierServed: map[string]*obs.Counter{
			gpuscale.TierAnalytic: reg.Counter("server/tier/analytic"),
			gpuscale.TierCycle:    reg.Counter("server/tier/cycle"),
		},
		escalated:  reg.Counter("server/tier/escalated"),
		analyticUS: reg.Histogram("server/tier/analytic_latency_us", analyticBoundsUS),
	}
	s.intake = engine.NewIntake(engine.IntakeOptions{
		Workers: opt.Workers,
		Linger:  opt.BatchLinger,
		OnBatch: func(size int) {
			s.m.batches.Inc()
			s.m.batchJobs.Add(uint64(size))
		},
	})
	s.eval = opt.Eval
	if s.eval == nil {
		s.eval = s.evaluate
	}
	return s, nil
}

// Registry returns the server's metrics registry (the one /metrics serves).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Close stops the intake and waits for in-flight batches. In-flight HTTP
// handlers should be drained first (http.Server.Shutdown).
func (s *Server) Close() { s.intake.Close() }

// Handler returns the service's HTTP routes:
//
//	GET  /healthz     liveness probe
//	GET  /metrics     Prometheus text exposition of the metrics registry
//	POST /v1/simulate one timing simulation
//	POST /v1/predict  the scale-model prediction pipeline
//	POST /v1/mrc      a miss-rate curve
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Prometheus text exposition; the renderer lives in obs, which
		// deliberately does not import net/http (see obs/prom.go).
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, s.reg.Snapshot())
	})
	for _, op := range []string{gpuscale.OpSimulate, gpuscale.OpPredict, gpuscale.OpMRC} {
		op := op
		mux.HandleFunc("/v1/"+op, func(w http.ResponseWriter, r *http.Request) {
			s.handle(op, w, r)
		})
	}
	return mux
}

// handle serves one /v1 operation.
func (s *Server) handle(op string, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a JSON request to this endpoint"))
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(data) > maxRequestBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body over %d bytes", maxRequestBody))
		return
	}
	req, err := gpuscale.ParseRequest(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The endpoint path is authoritative for the op; a body op may only
	// confirm it. This keeps one request schema across all endpoints
	// without letting a mismatched body run a different operation than
	// the URL says.
	if req.Op == "" {
		req.Op = op
	} else if req.Op != op {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request op %q does not match endpoint /v1/%s", req.Op, op))
		return
	}
	_, hash, err := gpuscale.Canonicalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.m.reqCounter[op].Inc()

	release, ok := s.acquire(tenantOf(r))
	if !ok {
		s.m.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("tenant queue full (capacity %d); retry later", s.opt.TenantCapacity))
		return
	}
	defer release()

	start := time.Now()
	if req.Op == gpuscale.OpPredict &&
		(req.Options.Tier == gpuscale.TierAnalytic || req.Options.Tier == gpuscale.TierAuto) {
		if s.servePredictFast(w, r, req, hash, start) {
			return
		}
		// The analytic model was not confident enough for this auto
		// request: escalate to the cycle pipeline below, whose response is
		// byte-identical to a direct cycle-tier request.
		s.m.escalated.Inc()
	}
	body, src, err := s.store.Do(r.Context(), hash, func() ([]byte, error) {
		return s.eval(r.Context(), req, hash)
	})
	s.m.latencyMS.Observe(float64(time.Since(start).Milliseconds()))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone; nothing useful can be written.
			s.m.cancelled.Inc()
			return
		}
		s.m.errors.Inc()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.countSource(src)
	s.m.tierServed[gpuscale.TierCycle].Inc()
	writeBody(w, hash, gpuscale.TierCycle, src, body)
}

// servePredictFast is the analytic latency tier (docs/ANALYTIC.md): answer
// a predict request in microseconds from the analytical model, with no
// simulation anywhere on the path. It reports whether the request was
// fully served; false means an auto-tier request whose analytic
// confidence fell below the escalation threshold — the caller then runs
// the cycle pipeline.
func (s *Server) servePredictFast(w http.ResponseWriter, r *http.Request, req gpuscale.Request, hash string, start time.Time) bool {
	if req.Options.Tier == gpuscale.TierAuto {
		// A settled cycle response outranks any estimate, and serving it
		// costs no more than the analytic path would.
		if body, src, ok := s.store.Lookup(hash); ok {
			s.m.latencyMS.Observe(float64(time.Since(start).Milliseconds()))
			s.countSource(src)
			s.m.tierServed[gpuscale.TierCycle].Inc()
			writeBody(w, hash, gpuscale.TierCycle, src, body)
			return true
		}
	}
	ap, err := gpuscale.PredictAnalytic(req)
	if err != nil {
		s.m.errors.Inc()
		writeError(w, http.StatusInternalServerError, err)
		return true
	}
	if req.Options.Tier == gpuscale.TierAuto && ap.Confidence < s.opt.ConfidenceThreshold {
		return false
	}
	body, src, err := s.store.Do(r.Context(), gpuscale.AnalyticCacheKey(hash), func() ([]byte, error) {
		return marshalAnalytic(ap, req, hash)
	})
	if err != nil {
		s.m.errors.Inc()
		writeError(w, http.StatusInternalServerError, err)
		return true
	}
	s.m.analyticUS.Observe(float64(time.Since(start).Microseconds()))
	s.m.latencyMS.Observe(float64(time.Since(start).Milliseconds()))
	s.countSource(src)
	s.m.tierServed[gpuscale.TierAnalytic].Inc()
	writeBody(w, hash, gpuscale.TierAnalytic, src, body)
	return true
}

// countSource bumps the cache counter matching a store source.
func (s *Server) countSource(src harness.StoreSource) {
	switch src {
	case harness.StoreMemory:
		s.m.hitsMem.Inc()
	case harness.StoreDisk:
		s.m.hitsDisk.Inc()
	case harness.StoreCoalesced:
		s.m.coalesced.Inc()
	default:
		s.m.misses.Inc()
	}
}

// writeBody emits a successful response with the standard headers; X-Tier
// says which latency tier produced the body.
func writeBody(w http.ResponseWriter, hash, tier string, src harness.StoreSource, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Hash", hash)
	w.Header().Set("X-Cache", string(src))
	w.Header().Set("X-Tier", tier)
	w.Write(body)
}

// acquire admits one request for tenant, returning its release func, or
// (nil, false) when the tenant's queue is full. Tenant slots are created
// on first sight and kept for the server's lifetime — the tenant universe
// is assumed bounded (API gateways hand out stable tenant IDs).
func (s *Server) acquire(tenant string) (func(), bool) {
	s.mu.Lock()
	c, ok := s.tenants[tenant]
	if !ok {
		c = make(chan struct{}, s.opt.TenantCapacity)
		s.tenants[tenant] = c
	}
	s.mu.Unlock()
	select {
	case c <- struct{}{}:
		return func() { <-c }, true
	default:
		return nil, false
	}
}

// tenantOf extracts the request's tenant (X-Tenant header, "default" when
// absent).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// writeError emits the JSON error body every non-200 response uses.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

package analytic

import (
	"math"

	"gpuscale/internal/config"
)

// The analytical performance model. Everything here is closed-form
// arithmetic over a workload's static features (features.go) and a digested
// configuration (resources): cache-hit estimates per access class, a
// roofline cap per bandwidth resource, an M/M/1-style queueing correction,
// and a small damped fixed point tying average load latency to achieved
// IPC. No simulation state exists; one estimate costs microseconds.

// resources is a configuration digested into model units: capacities in
// bytes, latencies in cycles, bandwidths in bytes per SM cycle. The MCM
// fields are zero for monolithic systems.
type resources struct {
	numSMs     float64
	warpsPerSM float64
	maxCTAs    float64 // per-SM concurrent CTA limit (config side)

	l1   float64 // per-SM L1 capacity
	llc  float64 // aggregate LLC capacity
	line float64

	l1Lat, llcLat, dramLat, nocBase, computeLat float64

	dramBPC float64 // aggregate DRAM bytes/cycle
	nocBPC  float64 // aggregate NoC bisection bytes/cycle
	slices  float64 // aggregate LLC slice count
	portBPC float64 // per-slice NoC port bytes/cycle (bisection/slices)

	// llcPow2 is the LLC capacity the simulator actually indexes: the
	// cache model rounds each slice's set count DOWN to a power of two,
	// so a 1.0625 MiB slice behaves as 1 MiB. All capacity reasoning uses
	// this, not the nominal size.
	llcPow2 float64

	// MCM package structure (chiplets == 0 for monolithic).
	chiplets float64
	chipLLC  float64 // one chiplet's pow2-effective LLC capacity
	interLat float64 // one-way inter-chiplet latency
	interBPC float64 // aggregate inter-chiplet link bytes/cycle
}

// llcPow2Bytes returns the power-of-two-effective capacity of an LLC built
// from `slices` set-associative slices: the simulator's cache floors each
// slice's set count to a power of two, silently shrinking non-pow2 slices.
func llcPow2Bytes(total, slices, ways, line float64) float64 {
	if slices <= 0 || ways <= 0 || line <= 0 {
		return total
	}
	sets := math.Floor(total / slices / line / ways)
	if sets < 1 {
		return total
	}
	pow2 := math.Pow(2, math.Floor(math.Log2(sets)))
	return pow2 * ways * line * slices
}

// dramJitter is the mean of the simulators' deterministic per-line DRAM
// latency spread (hash(line) % 13).
const dramJitter = 6.0

// monoResources digests a monolithic SystemConfig.
func monoResources(cfg config.SystemConfig) resources {
	r := resources{
		numSMs:     float64(cfg.NumSMs),
		warpsPerSM: float64(cfg.WarpsPerSM),
		maxCTAs:    float64(cfg.MaxCTAsPerSM),
		l1:         float64(cfg.L1SizeBytes),
		llc:        float64(cfg.LLCSizeBytes),
		line:       float64(cfg.LineSize),
		l1Lat:      float64(cfg.L1HitLatency),
		llcLat:     float64(cfg.LLCHitLatency),
		dramLat:    float64(cfg.DRAMLatency),
		nocBase:    float64(cfg.NoCBaseLatency),
		computeLat: float64(cfg.ComputeLatency),
		dramBPC:    cfg.BytesPerCycle(cfg.TotalMemBWGBps()),
		nocBPC:     cfg.BytesPerCycle(cfg.NoCBisectionGBps),
		slices:     float64(cfg.LLCSlices),
	}
	r.portBPC = r.nocBPC / math.Max(1, r.slices)
	r.llcPow2 = llcPow2Bytes(r.llc, r.slices, float64(cfg.LLCWays), r.line)
	return r
}

// mcmResources digests a ChipletConfig: per-chiplet shared resources
// aggregate linearly with the chiplet count; the inter-chiplet link and
// latency describe the remote-access path.
func mcmResources(cfg config.ChipletConfig) resources {
	ch := cfg.Chiplet
	n := float64(cfg.NumChiplets)
	r := monoResources(ch)
	r.numSMs = n * float64(ch.NumSMs)
	r.chipLLC = r.llcPow2
	r.llc *= n
	r.llcPow2 *= n
	r.dramBPC *= n
	r.nocBPC *= n
	r.slices *= n
	// portBPC stays per-slice: one chiplet's bisection over its own slices.
	r.chiplets = n
	r.interLat = float64(cfg.InterChipletLatency)
	r.interBPC = n * ch.BytesPerCycle(cfg.InterChipletGBpsPerChiplet)
	return r
}

// Empirically calibrated MCM factors (tmp experiments against the cycle
// simulator's golden grid; see docs/ANALYTIC.md).

// ringAlpha is the effective fraction of the NoC bisection available to a
// phase-aligned shared ring on a chiplet package. Every warp of a ring
// benchmark starts at the same line-index residue, so the instantaneous
// load concentrates on one moving LLC slice; with chiplet-grade ports
// (~8 cycles per line) this collapses throughput to a small fraction that
// recovers slowly with chiplet count as CTA assignment drifts the phases.
func ringAlpha(n float64) float64 {
	return 0.14 + 0.16*(1-1/math.Max(1, n))
}

// chipImbalance derates MCM bandwidth rooflines for CTA-assignment
// imbalance: the distributed scheduler's refill order plus completion
// drift leaves chiplets with uneven work (a 4-chiplet run was observed
// serving 1545/917 CTAs on its extreme chiplets).
func chipImbalance(n float64) float64 {
	return math.Max(0.55, 1-0.13*(n-1))
}

// campingEff derates the slice-port camping roofline: the hot slice's port
// is not perfectly pipelined by the (blocking) warps that feed it.
const campingEff = 0.85

// sharedRandDerate scales the capacity hit ratio of a random walk over a
// shared footprint: concurrent warps race and evict each other's lines
// before reuse even when the footprint nominally fits.
const sharedRandDerate = 0.9

// classRates is the per-class solution of the cache model.
type classRates struct {
	l1Hit  float64
	llcHit float64
	remote float64 // probability a post-L1 access crosses chiplets
}

// residentDemand is the LLC capacity a class wants resident: its whole
// footprint for shared data, one footprint per concurrently resident warp
// for private data.
func residentDemand(c accessClass, concurrentWarps float64) float64 {
	if c.shared {
		return c.footprint
	}
	return c.footprint * concurrentWarps
}

// solveCaches estimates per-class L1 and LLC hit rates at the given
// resources. R is the resident warps per SM.
func solveCaches(res resources, f *features, rr float64) []classRates {
	rates := make([]classRates, len(f.classes))
	concurrent := rr * res.numSMs
	warpsTotal := f.totalWarps()

	// L1: private per SM, shared by the R resident warps.
	for i, c := range f.classes {
		switch {
		case c.bypass:
			rates[i].l1Hit = 0
		case !c.shared:
			lines := math.Max(1, c.footprint/res.line)
			switch {
			case c.footprint*rr <= res.l1:
				// The resident warps' private data co-fits: everything
				// after the cold miss per line hits.
				rates[i].l1Hit = clamp01(1 - lines/math.Max(1, c.refsPerOwner))
			case c.seq:
				rates[i].l1Hit = 0 // streaming or cyclic thrash
			default:
				rates[i].l1Hit = clamp01((res.l1 / math.Max(1, rr)) / c.footprint)
			}
		default:
			// Shared data: resident warps sample the same region from
			// uncorrelated offsets; a line is present with probability
			// ~ capacity/footprint.
			rates[i].l1Hit = math.Min(0.98, res.l1/math.Max(res.l1, c.footprint)*clamp01(res.l1/c.footprint))
			if c.footprint > 0 && res.l1 < c.footprint {
				rates[i].l1Hit = clamp01(res.l1 / c.footprint)
			}
		}
		// Remote probability: first-touch page placement keeps private
		// data on its owner's chiplet; shared data is touched first by an
		// effectively uniform chiplet, so (n-1)/n of accesses are remote.
		if res.chiplets > 1 && c.shared {
			rates[i].remote = (res.chiplets - 1) / res.chiplets
		}
	}

	// LLC: two-pass allocation. Classes whose resident demand is tiny
	// (camping hot lines, small shared tiles) stay resident and reserve
	// their capacity; the rest waterfill the remainder by access share.
	rem := res.llcPow2
	type big struct {
		i      int
		demand float64
		refs   float64
	}
	var bigs []big
	for i, c := range f.classes {
		demand := residentDemand(c, concurrent)
		llcRefs := c.refsPerWarp * warpsTotal * (1 - rates[i].l1Hit)
		if demand <= 0.05*res.llcPow2 {
			// Resident: only cold misses.
			cold := math.Max(1, c.footprint/res.line)
			if !c.shared {
				cold = math.Max(1, c.footprint/res.line) // per owner
				llcRefs = c.refsPerOwner * (1 - rates[i].l1Hit)
			}
			rates[i].llcHit = clamp01(1 - cold/math.Max(1, llcRefs))
			rem -= demand
			continue
		}
		bigs = append(bigs, big{i: i, demand: demand, refs: llcRefs})
	}
	if rem < 0 {
		rem = 0
	}
	// Waterfill ascending by demand so a fitting class is not starved by
	// a hopeless streaming one.
	for pass := 0; pass < len(bigs); pass++ {
		// selection sort step: smallest remaining demand first (few
		// classes; determinism matters more than asymptotics).
		min := pass
		for j := pass + 1; j < len(bigs); j++ {
			if bigs[j].demand < bigs[min].demand {
				min = j
			}
		}
		bigs[pass], bigs[min] = bigs[min], bigs[pass]
	}
	refsLeft := 0.0
	for _, b := range bigs {
		refsLeft += b.refs
	}
	for _, b := range bigs {
		share := rem
		if refsLeft > 0 && len(bigs) > 1 {
			share = rem * b.refs / refsLeft
			if share > b.demand {
				share = b.demand
			}
		}
		refsLeft -= b.refs
		rem -= share
		rem = math.Max(0, rem)
		c := f.classes[b.i]
		switch {
		case c.shared && c.seq:
			// The miss-rate-curve cliff: a cyclic ring either fits (cold
			// misses only) or thrashes under LRU. On a chiplet package the
			// ring sees only ONE chiplet's pow2 LLC: with 64-line pages the
			// slice set index equals the page index mod sets, and the
			// block-cyclic first-touch ownership maps each chiplet's owned
			// ring pages onto 1/n of its sets — the aggregate effective
			// capacity stays one chiplet's worth at every chiplet count.
			fitCap := share + rem
			if res.chiplets > 0 && res.chipLLC < fitCap {
				fitCap = res.chipLLC
			}
			if b.demand <= fitCap { // it may also use the unclaimed rest
				cold := math.Max(1, c.footprint/res.line)
				rates[b.i].llcHit = clamp01(1 - cold/math.Max(1, b.refs))
				rem = math.Max(0, rem-(b.demand-share))
			} else {
				rates[b.i].llcHit = 0
			}
		case c.shared: // random over a shared footprint
			rates[b.i].llcHit = sharedRandDerate * math.Min(1, (share+rem)/math.Max(1, b.demand))
		case c.seq: // private streams
			if b.demand <= share+rem {
				cold := math.Max(1, c.footprint/res.line)
				refsOwner := c.refsPerOwner * (1 - rates[b.i].l1Hit)
				rates[b.i].llcHit = clamp01(1 - cold/math.Max(1, refsOwner))
				rem = math.Max(0, rem-(b.demand-share))
			} else {
				rates[b.i].llcHit = 0
			}
		default: // private random
			rates[b.i].llcHit = clamp01((share + rem) / b.demand)
		}
	}
	return rates
}

// occupancy returns the mean resident warps per SM.
func occupancy(res resources, f *features) float64 {
	k := f.kernel
	ctas := res.maxCTAs
	if k.CTAsPerSMLimit > 0 && float64(k.CTAsPerSMLimit) < ctas {
		ctas = float64(k.CTAsPerSMLimit)
	}
	byWarps := math.Floor(res.warpsPerSM / float64(k.WarpsPerCTA))
	if byWarps < ctas {
		ctas = byWarps
	}
	avail := float64(k.NumCTAs) / res.numSMs
	if avail < ctas {
		ctas = avail
	}
	if ctas <= 0 {
		ctas = 1.0 / res.numSMs
	}
	return ctas * float64(k.WarpsPerCTA)
}

// solution is the solved model for one (resources, workload) cell.
type solution struct {
	ipc         float64 // total instructions per cycle across the system
	fmem        float64
	cycles      float64
	instrTotal  float64
	llcMPKI     float64
	l1MissRate  float64
	remoteFrac  float64
	utilization float64 // highest bandwidth utilization at the solution
	residentR   float64
	cliffNear   bool
	camping     bool
	mcm         bool
}

// fixedPointIters bounds the latency/IPC relaxation. The loop is damped
// and monotone in practice; a fixed iteration count keeps the estimate
// bit-deterministic.
const fixedPointIters = 48

// solve runs the full model for one configuration.
func solve(res resources, f *features) solution {
	rr := occupancy(res, f)
	rates := solveCaches(res, f, rr)
	warpsTotal := f.totalWarps()
	instrTotal := f.instrPerWarp * warpsTotal
	loads := f.loadsPerWarp
	stores := f.storesPerWarp
	computes := f.instrPerWarp - loads - stores
	if computes < 0 {
		computes = 0
	}

	// Aggregate traffic per instruction (bytes crossing each resource).
	var llcRefs, llcMisses, remoteRefs, loadRefs, ringRefs float64
	var hotCapInstr = math.Inf(1)
	memRefs := f.memPerWarp() * warpsTotal
	unknownRefs := f.unknownWeight * memRefs
	slicesChip := res.slices
	if res.chiplets > 1 {
		slicesChip = res.slices / res.chiplets
	}
	for i, c := range f.classes {
		refs := c.refsPerWarp * warpsTotal
		miss1 := refs * (1 - rates[i].l1Hit)
		llcRefs += miss1
		llcMisses += miss1 * (1 - rates[i].llcHit)
		remoteRefs += miss1 * rates[i].remote
		if !c.store {
			loadRefs += refs
		}
		if c.shared && c.seq {
			ringRefs += miss1
		}
		// Slice-port camping: shared hot lines concentrate on few LLC
		// slices, and each slice's NoC port serves portBPC bytes/cycle;
		// the hot lines' aggregate port rate caps the instruction rate.
		if c.shared && miss1 > 0 {
			lines := math.Max(1, c.footprint/res.line)
			if lines < slicesChip {
				cap := campingEff * lines * (res.portBPC / res.line) * instrTotal / miss1
				if cap < hotCapInstr {
					hotCapInstr = cap
				}
			}
		}
	}
	// Unknown streams: assume they miss both caches.
	llcRefs += unknownRefs
	llcMisses += unknownRefs
	loadRefs += unknownRefs

	nocBytesPerInstr := llcRefs * res.line / instrTotal
	dramBytesPerInstr := llcMisses * res.line / instrTotal
	interBytesPerInstr := remoteRefs * res.line / instrTotal

	// Latency of one load as a function of the queueing state.
	latency := func(qNoC, qDram, qInter float64) float64 {
		if loadRefs <= 0 {
			return res.l1Lat
		}
		sum := 0.0
		for i, c := range f.classes {
			if c.store {
				continue
			}
			refs := c.refsPerWarp * warpsTotal
			missPath := 2*res.nocBase + res.llcLat + qNoC +
				rates[i].remote*(2*res.interLat+qInter) +
				(1-rates[i].llcHit)*(res.dramLat+dramJitter+qDram)
			sum += refs * (rates[i].l1Hit*res.l1Lat + (1-rates[i].l1Hit)*missPath)
		}
		// Unknown load streams take the full miss path.
		sum += unknownRefs * (2*res.nocBase + res.llcLat + qNoC + res.dramLat + dramJitter + qDram)
		return sum / loadRefs
	}

	// Roofline caps in total instructions per cycle. MCM rooflines are
	// derated for CTA-assignment imbalance between chiplets.
	eff := 1.0
	if res.chiplets > 1 {
		eff = chipImbalance(res.chiplets)
	}
	capInstr := hotCapInstr
	if dramBytesPerInstr > 0 {
		capInstr = math.Min(capInstr, eff*res.dramBPC/dramBytesPerInstr)
	}
	if nocBytesPerInstr > 0 {
		capInstr = math.Min(capInstr, eff*res.nocBPC/nocBytesPerInstr)
	}
	if interBytesPerInstr > 0 && res.interBPC > 0 {
		capInstr = math.Min(capInstr, eff*res.interBPC/interBytesPerInstr)
	}
	// Phase-aligned ring collapse (chiplet packages only): a shared cyclic
	// ring keeps every warp on the same moving LLC slice, so its traffic
	// sees only ringAlpha of the nominal bisection. The imbalance derate is
	// not stacked — ringAlpha was calibrated against end-to-end runs.
	if res.chiplets > 0 && ringRefs > 0 {
		ringBytesPerInstr := ringRefs * res.line / instrTotal
		capInstr = math.Min(capInstr, ringAlpha(res.chiplets)*res.nocBPC/ringBytesPerInstr)
	}

	// Irregular grids that fit in few scheduling waves end with a makespan
	// tail: short warps drain while the longest still run, shrinking the
	// mean resident occupancy toward R × mean/max instruction counts.
	rrEff := rr
	if f.irregular && f.maxInstrPerWarp > f.instrPerWarp && f.kernel.WarpsPerCTA > 0 {
		residentCTAs := rr / float64(f.kernel.WarpsPerCTA)
		waves := math.Max(1, math.Ceil(float64(f.kernel.NumCTAs)/math.Max(1, residentCTAs*res.numSMs)))
		rrEff = rr * (1 - (1-f.instrPerWarp/f.maxInstrPerWarp)/waves)
	}

	warpTime := func(l float64) float64 {
		return computes*res.computeLat + stores + loads*l + 1
	}
	ipcFromLat := func(l float64) float64 {
		perSM := math.Min(1, rrEff*f.instrPerWarp/warpTime(l))
		return math.Min(perSM*res.numSMs, capInstr)
	}

	// Damped fixed point: latency includes queueing delays that depend on
	// achieved throughput, which depends on latency.
	l := latency(0, 0, 0)
	var ipc float64
	var maxRho float64
	for i := 0; i < fixedPointIters; i++ {
		ipc = ipcFromLat(l)
		rhoN := clampRho(ipc * nocBytesPerInstr / res.nocBPC)
		rhoD := clampRho(ipc * dramBytesPerInstr / res.dramBPC)
		rhoI := 0.0
		if res.interBPC > 0 {
			rhoI = clampRho(ipc * interBytesPerInstr / res.interBPC)
		}
		maxRho = math.Max(rhoN, math.Max(rhoD, rhoI))
		// The NoC queue has two stations: the bisection (line/nocBPC
		// service) and the per-slice port (line/portBPC — the slow one on
		// chiplet packages, ~8 cycles per line). Uniform traffic loads the
		// mean port at the bisection utilization.
		qN := res.line * (1/res.nocBPC + 1/res.portBPC) * rhoN / (1 - rhoN)
		qD := res.line / res.dramBPC * rhoD / (1 - rhoD)
		qI := 0.0
		if res.interBPC > 0 {
			qI = res.line / res.interBPC * rhoI / (1 - rhoI)
		}
		lNew := latency(qN, qD, qI)
		l += 0.5 * (lNew - l)
	}
	ipc = ipcFromLat(l)

	// When a bandwidth roofline binds, the simulator reaches the same
	// throughput through queueing-inflated latencies; recover the implied
	// effective load latency so f_mem reflects the saturated state.
	lEff := l
	perSMLat := math.Min(1, rrEff*f.instrPerWarp/warpTime(l)) * res.numSMs
	if loads > 0 && ipc < perSMLat {
		need := rrEff * f.instrPerWarp * res.numSMs / ipc // required warp time
		lEff = (need - computes*res.computeLat - stores - 1) / loads
		if lEff < l {
			lEff = l
		}
	}

	ipcSM := ipc / res.numSMs
	memWait := loads * lEff
	pipeWait := computes * (res.computeLat - 1)
	fmem := 0.0
	if memWait > 0 {
		// A no-issue cycle counts as a memory stall when any blocked warp
		// waits on memory; pipe-only stalls need every warp in a short
		// arithmetic gap at once, which R resident warps make rare.
		pipeOnly := pipeWait / math.Max(1, rrEff*0.5)
		fmem = (1 - math.Min(1, ipcSM)) * memWait / (memWait + pipeOnly)
	}

	sol := solution{
		ipc:         ipc,
		fmem:        clamp01(fmem),
		cycles:      instrTotal / math.Max(ipc, 1e-9),
		instrTotal:  instrTotal,
		llcMPKI:     llcMisses / (instrTotal / 1000),
		l1MissRate:  llcRefs / math.Max(1, memRefs),
		utilization: maxRho,
		residentR:   rr,
	}
	if llcRefs > 0 {
		sol.remoteFrac = remoteRefs / llcRefs
	}
	sol.mcm = res.chiplets > 0
	for _, c := range f.classes {
		if c.bypass {
			sol.camping = true
		}
		demand := residentDemand(c, rr*res.numSMs)
		if demand > 0 {
			// The cliff position is set by the capacity the class actually
			// sees: one chiplet's pow2 LLC for a ring on an MCM package.
			capacity := res.llcPow2
			if res.chiplets > 0 && c.shared && c.seq && res.chipLLC < capacity {
				capacity = res.chipLLC
			}
			ratio := demand / capacity
			if ratio >= 0.5 && ratio <= 2 {
				sol.cliffNear = true
			}
		}
	}
	return sol
}

// confidence scores how much of the model's input was actually modelled:
// structural blind spots (opaque generators), regimes where small errors
// have large effects (working sets near the LLC cliff, near-saturated
// resources, slice camping), and shape irregularity all shrink it.
func confidence(f *features, sol solution) float64 {
	conf := 1 - f.unknownWeight
	if sol.mcm {
		// Chiplet packages stack calibrated factors (ring alpha, CTA
		// imbalance, page ownership); their residual error is the model's
		// largest, so the serving tier should prefer to escalate them.
		conf *= 0.60
	}
	if sol.cliffNear {
		conf *= 0.70
	}
	if sol.utilization > 0.9 {
		conf *= 0.80
	}
	if sol.camping {
		conf *= 0.70
	}
	if f.irregular {
		conf *= 0.85
	}
	return clamp01(conf)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// clampRho bounds a utilization for the M/M/1 queue term; 0.98 keeps the
// inflation finite while the roofline cap handles true saturation.
func clampRho(rho float64) float64 {
	if rho < 0 {
		return 0
	}
	if rho > 0.98 {
		return 0.98
	}
	return rho
}

package analytic

import (
	"fmt"
	"math"
	"sort"

	"gpuscale/internal/trace"
)

// features is the static, configuration-independent summary of a workload:
// instruction mix per warp and the merged access classes of its memory
// streams. It is extracted once per workload (extractFeatures memoizes by
// name) from the phase descriptors of a deterministic sample of warp
// programs — no instruction is ever replayed.
type features struct {
	kernel trace.KernelSpec

	// Per-warp instruction mix (means over the sampled warps).
	instrPerWarp  float64
	loadsPerWarp  float64
	storesPerWarp float64

	// classes are the merged access streams, deterministically ordered.
	classes []accessClass

	// unknownWeight is the fraction of memory references whose generator
	// could not describe itself (including whole programs without
	// PhaseDescriber); it feeds straight into the confidence score.
	unknownWeight float64

	// irregular reports that sampled warps had differing instruction
	// counts (data-dependent control shape); maxInstrPerWarp is the longest
	// sampled warp, which sets the makespan tail when the grid fits in few
	// scheduling waves.
	irregular       bool
	maxInstrPerWarp float64
}

// accessClass is one merged memory stream: every sampled generator with
// the same (class, stride, extent, store, bypass) signature, classified as
// shared (one base address across warps) or private (per-warp bases).
type accessClass struct {
	seq    bool // strided sequential (vs uniform random)
	shared bool // same data across warps (vs per-warp private)
	bypass bool // skips the L1 (camping streams)
	store  bool

	// refsPerWarp is the mean memory references per warp into this class,
	// averaged over all sampled warps (traffic accounting).
	refsPerWarp float64
	// refsPerOwner is the mean references per distinct base region —
	// for private classes, one warp's references into its own region
	// (reuse accounting).
	refsPerOwner float64
	// weight is this class's fraction of all memory references.
	weight float64
	// footprint is the touched unique bytes: kernel-total for shared
	// classes, per-owner for private ones.
	footprint float64
	stride    float64
}

// totalWarps returns the kernel's total warp count as a float.
func (f *features) totalWarps() float64 {
	return float64(f.kernel.NumCTAs * f.kernel.WarpsPerCTA)
}

// memPerWarp returns loads+stores per warp.
func (f *features) memPerWarp() float64 { return f.loadsPerWarp + f.storesPerWarp }

// maxSampleCTAs bounds feature-extraction cost: CTAs are sampled evenly
// across the grid (picking up modular irregularity like bfs's cta%7 input
// sizes), every warp of a sampled CTA is described.
const maxSampleCTAs = 128

// groupKey merges generator descriptors that differ only in base address;
// the distinct-base count then separates shared from private data.
type groupKey struct {
	class  trace.GenClass
	stride uint64
	extent uint64
	store  bool
	bypass bool
}

type groupAcc struct {
	refs  float64
	bases map[uint64]struct{}
}

// extractFeatures statically summarises w. It never replays instructions;
// cost is proportional to sampled CTAs × warps × phases.
func extractFeatures(w trace.Workload) (*features, error) {
	k := w.Kernel()
	if k.NumCTAs <= 0 || k.WarpsPerCTA <= 0 {
		return nil, fmt.Errorf("analytic: workload %q has an empty kernel", w.Name())
	}
	samples := k.NumCTAs
	if samples > maxSampleCTAs {
		samples = maxSampleCTAs
	}
	groups := make(map[groupKey]*groupAcc)
	var totalInstr, totalLoads, totalStores, totalRefs, unknownRefs float64
	minInstr, maxInstr := math.MaxFloat64, 0.0
	sampledWarps := 0
	for i := 0; i < samples; i++ {
		cta := i * k.NumCTAs / samples
		for warp := 0; warp < k.WarpsPerCTA; warp++ {
			sampledWarps++
			prog := w.NewProgram(cta, warp)
			pd, ok := prog.(trace.PhaseDescriber)
			if !ok {
				// Opaque program: count nothing, mark everything unknown.
				unknownRefs++
				totalRefs++
				minInstr = 0
				continue
			}
			warpInstr := 0.0
			for _, ph := range pd.DescribePhases() {
				warpInstr += float64(ph.N)
				mem := float64(ph.MemCount())
				if mem == 0 {
					continue
				}
				if ph.Store {
					totalStores += mem
				} else {
					totalLoads += mem
				}
				totalRefs += mem
				for _, g := range ph.Gens {
					refs := mem * g.Weight
					if g.Class == trace.GenUnknown || g.Stride == 0 || g.Extent == 0 {
						unknownRefs += refs
						continue
					}
					key := groupKey{
						class:  g.Class,
						stride: g.Stride,
						extent: g.Extent,
						store:  ph.Store,
						bypass: ph.Flags&trace.BypassL1 != 0,
					}
					acc := groups[key]
					if acc == nil {
						acc = &groupAcc{bases: make(map[uint64]struct{})}
						groups[key] = acc
					}
					acc.refs += refs
					acc.bases[g.Base] = struct{}{}
				}
			}
			totalInstr += warpInstr
			if warpInstr < minInstr {
				minInstr = warpInstr
			}
			if warpInstr > maxInstr {
				maxInstr = warpInstr
			}
		}
	}
	f := &features{
		kernel:          k,
		instrPerWarp:    totalInstr / float64(sampledWarps),
		loadsPerWarp:    totalLoads / float64(sampledWarps),
		storesPerWarp:   totalStores / float64(sampledWarps),
		irregular:       maxInstr > minInstr*1.01+1,
		maxInstrPerWarp: maxInstr,
	}
	if totalRefs > 0 {
		f.unknownWeight = unknownRefs / totalRefs
	}

	// Deterministic class order: sort the group keys.
	keys := make([]groupKey, 0, len(groups))
	for key := range groups {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.class != b.class {
			return a.class < b.class
		}
		if a.extent != b.extent {
			return a.extent < b.extent
		}
		if a.stride != b.stride {
			return a.stride < b.stride
		}
		if a.store != b.store {
			return !a.store
		}
		return !a.bypass && b.bypass
	})
	warpsTotal := f.totalWarps()
	for _, key := range keys {
		acc := groups[key]
		nBases := float64(len(acc.bases))
		shared := len(acc.bases) == 1
		c := accessClass{
			seq:          key.class == trace.GenSeq,
			shared:       shared,
			bypass:       key.bypass,
			store:        key.store,
			refsPerWarp:  acc.refs / float64(sampledWarps),
			refsPerOwner: acc.refs / nBases,
			weight:       acc.refs / totalRefs,
			stride:       float64(key.stride),
		}
		// Touched footprint: a sequential walk covers refs×stride bytes
		// (wrapping at extent); a random walk covers the extent with
		// saturating probability. Shared classes aggregate every warp's
		// references; private ones only their owner's.
		extent := float64(key.extent)
		touched := c.refsPerOwner * c.stride
		if shared {
			touched = c.refsPerWarp * warpsTotal * c.stride
		}
		c.footprint = coverage(extent, touched, c.seq)
		f.classes = append(f.classes, c)
	}
	return f, nil
}

// coverage estimates the unique bytes touched when `touched` bytes of
// references land in a region of `extent` bytes. A sequential walk covers
// min(touched, extent) exactly; a random walk covers the extent with the
// classic coupon-collector saturation 1-e^(-touched/extent).
func coverage(extent, touched float64, seq bool) float64 {
	if extent <= 0 {
		return 0
	}
	if seq {
		return math.Min(extent, touched)
	}
	return extent * (1 - math.Exp(-touched/extent))
}

// Package analytic is the microsecond-scale prediction tier: a purely
// analytical model of the simulators in internal/gpu and internal/chiplet
// that estimates IPC, f_mem and the LLC miss-rate curve from a workload's
// *static* structure — no instruction is ever replayed and no simulator
// state exists.
//
// The pipeline has two halves:
//
//   - Feature extraction (features.go): the phase descriptors of a
//     deterministic sample of warp programs (trace.PhaseDescriber) are
//     merged into access classes — shared cyclic rings, private streams,
//     random walks over shared footprints, L1-bypassing hot lines — plus
//     the per-warp instruction mix. This is configuration-independent and
//     memoized per workload name.
//
//   - The model (model.go): per-class cache-hit estimates (capacity
//     reasoning, the miss-rate-curve cliff for cyclic rings), a roofline
//     cap per bandwidth resource (DRAM, NoC bisection, inter-chiplet
//     links, LLC slice camping), an M/M/1-style queueing correction, and
//     a damped fixed point between average load latency and achieved IPC,
//     mirroring the SM issue semantics (compute = ComputeLatency warp
//     cycles, load = memory latency, store = 1).
//
// Every estimate carries a confidence score in [0, 1] built from the
// model's known blind spots; the serving tier escalates to the cycle
// simulator below a threshold (docs/ANALYTIC.md).
package analytic

import (
	"fmt"
	"sync"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
)

// Estimate is one analytical prediction of a simulation cell.
type Estimate struct {
	// IPC is the estimated total instructions per cycle across the system.
	IPC float64
	// FMem is the estimated memory-stall fraction (Eq. 3's f_mem).
	FMem float64
	// Cycles and Instructions estimate the cell's totals.
	Cycles       float64
	Instructions float64
	// LLCMPKI is the estimated LLC misses per thousand instructions.
	LLCMPKI float64
	// L1MissRate is the estimated fraction of memory references missing L1.
	L1MissRate float64
	// RemoteFraction is the estimated share of post-L1 accesses served by
	// a remote chiplet (MCM only).
	RemoteFraction float64
	// Confidence in [0, 1] scores how much of the workload the model
	// actually captured; see docs/ANALYTIC.md for the penalty schedule.
	Confidence float64
}

// featEntry memoizes one workload's extracted features.
type featEntry struct {
	f   *features
	err error
}

// featCache memoizes features by workload name. Names are unique per
// workload shape in this repository (weak families embed the SM count),
// and the benchmark universe is bounded, so the cache cannot grow without
// bound in steady state.
var featCache sync.Map

// featuresOf returns w's features, extracting them on first sight.
func featuresOf(w trace.Workload) (*features, error) {
	if v, ok := featCache.Load(w.Name()); ok {
		e := v.(*featEntry)
		return e.f, e.err
	}
	f, err := extractFeatures(w)
	v, _ := featCache.LoadOrStore(w.Name(), &featEntry{f: f, err: err})
	e := v.(*featEntry)
	return e.f, e.err
}

// EstimateCell analytically predicts one monolithic simulation cell.
func EstimateCell(cfg config.SystemConfig, w trace.Workload) (Estimate, error) {
	f, err := featuresOf(w)
	if err != nil {
		return Estimate{}, err
	}
	sol := solve(monoResources(cfg), f)
	return applyUarchPenalty(finish(sol, f), cfg.EffectiveUarch()), nil
}

// EstimateMCM analytically predicts one multi-chip-module cell.
func EstimateMCM(cfg config.ChipletConfig, w trace.Workload) (Estimate, error) {
	f, err := featuresOf(w)
	if err != nil {
		return Estimate{}, err
	}
	sol := solve(mcmResources(cfg), f)
	return applyUarchPenalty(finish(sol, f), cfg.Chiplet.EffectiveUarch()), nil
}

// applyUarchPenalty discounts an estimate's confidence for non-default
// microarchitecture variants. The analytic model is calibrated against the
// paper's Table III baseline — GTO scheduling, line-grain L1, crossbar —
// and has no structural term for a different scheduler, fill granularity,
// routing discipline or issue width, so a variant estimate is a baseline
// extrapolation of unknown quality. The penalty lands the confidence below
// the auto-tier escalation gate (uarch.ConfidencePenalty <
// DefaultConfidenceThreshold), so auto-tier predict requests on variants
// always escalate to the cycle simulator rather than serve an uncalibrated
// analytic answer.
func applyUarchPenalty(e Estimate, v uarch.Variant) Estimate {
	if !v.IsDefault() {
		e.Confidence *= uarch.ConfidencePenalty
	}
	return e
}

// EstimateSequence analytically predicts a back-to-back kernel sequence:
// per-kernel estimates combined by summing cycles and instructions, with
// cycle-weighted f_mem and the lowest per-kernel confidence.
func EstimateSequence(cfg config.SystemConfig, ws []trace.Workload) (Estimate, error) {
	if len(ws) == 0 {
		return Estimate{}, fmt.Errorf("analytic: empty workload sequence")
	}
	var out Estimate
	out.Confidence = 1
	var fmemCycles, missK float64
	for _, w := range ws {
		e, err := EstimateCell(cfg, w)
		if err != nil {
			return Estimate{}, err
		}
		out.Cycles += e.Cycles
		out.Instructions += e.Instructions
		fmemCycles += e.FMem * e.Cycles
		missK += e.LLCMPKI * e.Instructions / 1000
		if e.Confidence < out.Confidence {
			out.Confidence = e.Confidence
		}
		if e.L1MissRate > out.L1MissRate {
			out.L1MissRate = e.L1MissRate
		}
	}
	out.IPC = out.Instructions / out.Cycles
	out.FMem = fmemCycles / out.Cycles
	out.LLCMPKI = missK / (out.Instructions / 1000)
	return out, nil
}

// MPKICurve returns the analytic LLC miss-rate estimate at each given
// configuration, smallest LLC first — the analytic stand-in for the
// functional-simulation sweep of internal/mrc.
func MPKICurve(w trace.Workload, cfgs []config.SystemConfig) ([]float64, error) {
	out := make([]float64, len(cfgs))
	for i, cfg := range cfgs {
		e, err := EstimateCell(cfg, w)
		if err != nil {
			return nil, err
		}
		out[i] = e.LLCMPKI
	}
	return out, nil
}

// finish converts a solved model into the public Estimate.
func finish(sol solution, f *features) Estimate {
	return Estimate{
		IPC:            sol.ipc,
		FMem:           sol.fmem,
		Cycles:         sol.cycles,
		Instructions:   sol.instrTotal,
		LLCMPKI:        sol.llcMPKI,
		L1MissRate:     sol.l1MissRate,
		RemoteFraction: sol.remoteFrac,
		Confidence:     confidence(f, sol),
	}
}

package sm

import (
	"math/rand"
	"testing"
)

// TestReadyQueueMatchesHeap drives the bucketed readyQueue and the old
// warpHeap through randomized launch-age sequences — launches into reused
// slots, GTO-style re-pushes under the original key, LRR-style re-keying,
// the two-level scheduler's re-key-at-issue/push-at-promote split, and
// retirements — and demands identical pop order. Keys are drawn from a
// single monotone counter, mirroring the launchSeq invariant the queue
// relies on. Iteration counts are sized so the queue's in-place compaction
// runs many times.
func TestReadyQueueMatchesHeap(t *testing.T) {
	readyQueueCrossCheck(t, 1, 200000, 1)
}

// TestReadyQueueMatchesHeapGrouped is the same cross-check over three
// per-group queues sharing one monotone key counter — the two-level
// scheduler's shape. Each group's queue then sees assignment keys that are
// monotone but gappy (the other groups consume the keys in between), which
// is exactly the invariant its compaction must survive.
func TestReadyQueueMatchesHeapGrouped(t *testing.T) {
	readyQueueCrossCheck(t, 3, 200000, 2)
}

func readyQueueCrossCheck(t *testing.T, nGroups, iters int, seed int64) {
	t.Helper()
	const maxWarps = 48
	rng := rand.New(rand.NewSource(seed))

	qs := make([]readyQueue, nGroups)
	hs := make([]warpHeap, nGroups)
	for g := range qs {
		qs[g].grow(maxWarps)
		hs[g].grow(maxWarps)
	}
	grp := func(idx int) int { return idx % nGroups }

	type slotState uint8
	const (
		free    slotState = iota
		queued            // in both structures, awaiting pop
		running           // popped, still live (may re-push, re-key, or retire)
	)
	state := make([]slotState, maxWarps)
	key := make([]int64, maxWarps)
	freeSlots := make([]int, 0, maxWarps)
	for i := maxWarps - 1; i >= 0; i-- {
		freeSlots = append(freeSlots, i)
	}
	var runningSlots []int
	var seq int64

	pick := func(s []int) (int, []int) {
		i := rng.Intn(len(s))
		v := s[i]
		s[i] = s[len(s)-1]
		return v, s[:len(s)-1]
	}
	queuedLen := func() int {
		n := 0
		for g := range qs {
			n += qs[g].len()
		}
		return n
	}

	pops := 0
	for i := 0; i < iters; i++ {
		switch op := rng.Intn(11); {
		case op < 3 && len(freeSlots) > 0: // launch into a (possibly reused) slot
			var idx int
			idx, freeSlots = pick(freeSlots)
			key[idx] = seq
			seq++
			qs[grp(idx)].assign(idx)
			qs[grp(idx)].push(idx)
			hs[grp(idx)].push(idx, key[idx])
			state[idx] = queued
		case op < 6 && queuedLen() > 0: // pop a random non-empty group and cross-check
			g := rng.Intn(nGroups)
			for qs[g].len() == 0 {
				g = (g + 1) % nGroups
			}
			want, wantKey := hs[g].pop()
			got := qs[g].pop()
			if got != want {
				t.Fatalf("iter %d: group %d queue popped warp %d, heap popped warp %d (key %d)", i, g, got, want, wantKey)
			}
			if key[got] != wantKey {
				t.Fatalf("iter %d: model key %d != heap key %d for warp %d", i, key[got], wantKey, got)
			}
			state[got] = running
			runningSlots = append(runningSlots, got)
			pops++
		case op < 7 && len(runningSlots) > 0: // GTO promote: re-push, same key
			var idx int
			idx, runningSlots = pick(runningSlots)
			qs[grp(idx)].push(idx)
			hs[grp(idx)].push(idx, key[idx])
			state[idx] = queued
		case op < 8 && len(runningSlots) > 0: // LRR issue: re-key then push
			var idx int
			idx, runningSlots = pick(runningSlots)
			key[idx] = seq
			seq++
			qs[grp(idx)].assign(idx)
			qs[grp(idx)].push(idx)
			hs[grp(idx)].push(idx, key[idx])
			state[idx] = queued
		case op < 9 && len(runningSlots) > 0:
			// Two-level issue: the warp re-keys to the back of its group's
			// sequence at issue time but goes pending (no push) — a later
			// promote op pushes it under the already-redrawn key.
			idx := runningSlots[rng.Intn(len(runningSlots))]
			key[idx] = seq
			seq++
			qs[grp(idx)].assign(idx)
		case op < 11 && len(runningSlots) > 0: // retire: slot returns to the pool
			var idx int
			idx, runningSlots = pick(runningSlots)
			qs[grp(idx)].unrank(idx)
			state[idx] = free
			freeSlots = append(freeSlots, idx)
		}
		for g := range qs {
			if qs[g].len() != hs[g].len() {
				t.Fatalf("iter %d: group %d queue len %d != heap len %d", i, g, qs[g].len(), hs[g].len())
			}
		}
	}
	if pops < iters/10 {
		t.Fatalf("schedule degenerated: only %d pops in %d iterations", pops, iters)
	}
	// Drain what remains; order must still agree.
	for g := range qs {
		for hs[g].len() > 0 {
			want, _ := hs[g].pop()
			if got := qs[g].pop(); got != want {
				t.Fatalf("drain: group %d queue popped %d, heap popped %d", g, got, want)
			}
		}
		if qs[g].len() != 0 {
			t.Fatalf("drain: group %d queue still reports %d ready warps", g, qs[g].len())
		}
	}
}

// TestReadyQueueCompaction forces many compactions with a single live warp to
// verify stale entries are dropped and ready bits survive relocation.
func TestReadyQueueCompaction(t *testing.T) {
	var q readyQueue
	q.grow(4) // seq capacity clamps to 64
	q.assign(0)
	for i := 0; i < 10000; i++ {
		q.push(0)
		if got := q.pop(); got != 0 {
			t.Fatalf("pop returned %d, want 0", got)
		}
		q.assign(0) // re-key every round: one live entry, many stale ones
	}
	q.assign(1)
	q.push(1)
	q.push(0)
	// Warp 0's last re-key precedes warp 1's assignment, so 0 is older.
	if got := q.pop(); got != 0 {
		t.Fatalf("oldest pop returned %d, want 0", got)
	}
	if got := q.pop(); got != 1 {
		t.Fatalf("second pop returned %d, want 1", got)
	}
}

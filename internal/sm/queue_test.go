package sm

import (
	"math/rand"
	"testing"
)

// TestReadyQueueMatchesHeap drives the bucketed readyQueue and the old
// warpHeap through randomized launch-age sequences — launches into reused
// slots, GTO-style re-pushes under the original key, LRR-style re-keying, and
// retirements — and demands identical pop order. Keys are drawn from a single
// monotone counter, mirroring the launchSeq invariant the queue relies on.
// Iteration counts are sized so the queue's in-place compaction runs many
// times.
func TestReadyQueueMatchesHeap(t *testing.T) {
	const maxWarps = 48
	const iters = 200000
	rng := rand.New(rand.NewSource(1))

	var q readyQueue
	var h warpHeap
	q.grow(maxWarps)
	h.grow(maxWarps)

	type slotState uint8
	const (
		free    slotState = iota
		queued            // in both structures, awaiting pop
		running           // popped, still live (may re-push, re-key, or retire)
	)
	state := make([]slotState, maxWarps)
	key := make([]int64, maxWarps)
	freeSlots := make([]int, 0, maxWarps)
	for i := maxWarps - 1; i >= 0; i-- {
		freeSlots = append(freeSlots, i)
	}
	var runningSlots []int
	var seq int64

	pick := func(s []int) (int, []int) {
		i := rng.Intn(len(s))
		v := s[i]
		s[i] = s[len(s)-1]
		return v, s[:len(s)-1]
	}

	pops := 0
	for i := 0; i < iters; i++ {
		switch op := rng.Intn(10); {
		case op < 3 && len(freeSlots) > 0: // launch into a (possibly reused) slot
			var idx int
			idx, freeSlots = pick(freeSlots)
			key[idx] = seq
			seq++
			q.assign(idx)
			q.push(idx)
			h.push(idx, key[idx])
			state[idx] = queued
		case op < 6 && q.len() > 0: // pop and cross-check
			want, wantKey := h.pop()
			got := q.pop()
			if got != want {
				t.Fatalf("iter %d: queue popped warp %d, heap popped warp %d (key %d)", i, got, want, wantKey)
			}
			if key[got] != wantKey {
				t.Fatalf("iter %d: model key %d != heap key %d for warp %d", i, key[got], wantKey, got)
			}
			state[got] = running
			runningSlots = append(runningSlots, got)
			pops++
		case op < 7 && len(runningSlots) > 0: // GTO promote: re-push, same key
			var idx int
			idx, runningSlots = pick(runningSlots)
			q.push(idx)
			h.push(idx, key[idx])
			state[idx] = queued
		case op < 8 && len(runningSlots) > 0: // LRR issue: re-key then push
			var idx int
			idx, runningSlots = pick(runningSlots)
			key[idx] = seq
			seq++
			q.assign(idx)
			q.push(idx)
			h.push(idx, key[idx])
			state[idx] = queued
		case op < 10 && len(runningSlots) > 0: // retire: slot returns to the pool
			var idx int
			idx, runningSlots = pick(runningSlots)
			q.unrank(idx)
			state[idx] = free
			freeSlots = append(freeSlots, idx)
		}
		if q.len() != h.len() {
			t.Fatalf("iter %d: queue len %d != heap len %d", i, q.len(), h.len())
		}
	}
	if pops < iters/10 {
		t.Fatalf("schedule degenerated: only %d pops in %d iterations", pops, iters)
	}
	// Drain what remains; order must still agree.
	for h.len() > 0 {
		want, _ := h.pop()
		if got := q.pop(); got != want {
			t.Fatalf("drain: queue popped %d, heap popped %d", got, want)
		}
	}
	if q.len() != 0 {
		t.Fatalf("drain: queue still reports %d ready warps", q.len())
	}
}

// TestReadyQueueCompaction forces many compactions with a single live warp to
// verify stale entries are dropped and ready bits survive relocation.
func TestReadyQueueCompaction(t *testing.T) {
	var q readyQueue
	q.grow(4) // seq capacity clamps to 64
	q.assign(0)
	for i := 0; i < 10000; i++ {
		q.push(0)
		if got := q.pop(); got != 0 {
			t.Fatalf("pop returned %d, want 0", got)
		}
		q.assign(0) // re-key every round: one live entry, many stale ones
	}
	q.assign(1)
	q.push(1)
	q.push(0)
	// Warp 0's last re-key precedes warp 1's assignment, so 0 is older.
	if got := q.pop(); got != 0 {
		t.Fatalf("oldest pop returned %d, want 0", got)
	}
	if got := q.pop(); got != 1 {
		t.Fatalf("second pop returned %d, want 1", got)
	}
}

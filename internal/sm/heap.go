package sm

// warpHeap is an indexed binary min-heap over warp slot indices, keyed by an
// int64 (launch age for the ready heap, wake-up cycle for the pending heap).
// It supports O(log n) push/pop/remove and O(1) membership tests, which the
// GTO scheduler's greedy path needs.
type warpHeap struct {
	idx  []int   // heap order -> warp index
	key  []int64 // heap order -> key
	pos  []int   // warp index -> heap order, -1 if absent
	size int
}

func (h *warpHeap) len() int { return h.size }

// grow pre-sizes the heap for warp indices [0, n): pushes within that range
// never allocate afterwards.
func (h *warpHeap) grow(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
	}
	if cap(h.idx) < n {
		idx := make([]int, h.size, n)
		key := make([]int64, h.size, n)
		copy(idx, h.idx[:h.size])
		copy(key, h.key[:h.size])
		h.idx, h.key = idx, key
	}
}

func (h *warpHeap) ensure(warpIdx int) {
	for len(h.pos) <= warpIdx {
		h.pos = append(h.pos, -1)
	}
}

func (h *warpHeap) contains(warpIdx int) bool {
	return warpIdx < len(h.pos) && h.pos[warpIdx] >= 0
}

func (h *warpHeap) minKey() int64 { return h.key[0] }

func (h *warpHeap) push(warpIdx int, key int64) {
	h.ensure(warpIdx)
	if h.pos[warpIdx] >= 0 {
		panic("sm: warp already in heap")
	}
	if h.size == len(h.idx) {
		h.idx = append(h.idx, warpIdx)
		h.key = append(h.key, key)
	} else {
		h.idx[h.size] = warpIdx
		h.key[h.size] = key
	}
	h.pos[warpIdx] = h.size
	h.size++
	h.up(h.size - 1)
}

func (h *warpHeap) pop() (int, int64) {
	w, k := h.idx[0], h.key[0]
	h.removeAt(0)
	return w, k
}

func (h *warpHeap) peek() (int, int64) {
	return h.idx[0], h.key[0]
}

// fix rewrites the key of a warp already in the heap and restores heap
// order — the deferred-wake repair path, cheaper than remove+push.
func (h *warpHeap) fix(warpIdx int, key int64) {
	p := h.pos[warpIdx]
	if p < 0 {
		panic("sm: warp not in heap")
	}
	h.key[p] = key
	h.down(p)
	h.up(p)
}

func (h *warpHeap) remove(warpIdx int) {
	p := h.pos[warpIdx]
	if p < 0 {
		panic("sm: warp not in heap")
	}
	h.removeAt(p)
}

func (h *warpHeap) removeAt(p int) {
	h.pos[h.idx[p]] = -1
	h.size--
	if p == h.size {
		return
	}
	h.idx[p] = h.idx[h.size]
	h.key[p] = h.key[h.size]
	h.pos[h.idx[p]] = p
	h.down(p)
	h.up(p)
}

func (h *warpHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.key[parent] <= h.key[i] {
			return
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *warpHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < h.size && h.key[l] < h.key[small] {
			small = l
		}
		if r < h.size && h.key[r] < h.key[small] {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

func (h *warpHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.key[a], h.key[b] = h.key[b], h.key[a]
	h.pos[h.idx[a]] = a
	h.pos[h.idx[b]] = b
}

// Package sm models a streaming multiprocessor: resident CTAs and warps, a
// configurable warp scheduler (Greedy-Then-Oldest by default, loose
// round-robin and fetch-group two-level as microarchitecture variants, see
// internal/uarch), a configurable issue width, dependent-issue latencies,
// and — crucially for the scale-model predictor — classification of every
// cycle in which the SM cannot issue. The paper's cliff-region formula
// (Eq. 3) divides by 1−f_mem, where f_mem is the fraction of cycles an SM
// fetches nothing because every blocked warp is waiting on memory; this
// package is where that accounting lives.
package sm

import (
	"fmt"

	"gpuscale/internal/obs"
	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
)

// TickKind classifies what an SM did in one cycle.
type TickKind uint8

const (
	// Issued means one instruction was issued.
	Issued TickKind = iota
	// StallMem means no warp was ready and every blocked warp was waiting
	// for data from memory — the f_mem numerator.
	StallMem
	// StallPipe means no warp was ready but at least one blocked warp was
	// waiting on a compute (pipeline) dependency.
	StallPipe
	// Idle means the SM had no live warps at all (waiting for a CTA, or
	// the grid has drained).
	Idle
)

// String implements fmt.Stringer.
func (k TickKind) String() string {
	switch k {
	case Issued:
		return "issued"
	case StallMem:
		return "stall-mem"
	case StallPipe:
		return "stall-pipe"
	case Idle:
		return "idle"
	default:
		return fmt.Sprintf("TickKind(%d)", uint8(k))
	}
}

// Policy selects the warp scheduling policy.
type Policy uint8

const (
	// GTO is Greedy-Then-Oldest (the paper's Table III policy): stay on
	// the current warp while it is ready, otherwise pick the oldest
	// ready warp.
	GTO Policy = iota
	// LRR is loose round-robin: the ready warp that issued least
	// recently goes first.
	LRR
	// TwoLevel is the fetch-group two-level scheduler: warp slots are
	// partitioned into fixed groups of uarch.TwoLevelGroupSize, scheduling
	// round-robins within the active group (re-keying on issue like LRR),
	// and the active group only advances — cyclically, to the next group
	// with a ready warp — when the current one has none ready.
	TwoLevel
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case GTO:
		return "gto"
	case LRR:
		return "lrr"
	case TwoLevel:
		return "two-level"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// MemPort is the SM's window onto the memory hierarchy. Access schedules
// the memory instruction in, issued at cycle now, and returns the cycle at
// which the data is available to the warp. Stores are fire-and-forget: they
// consume bandwidth but the returned cycle is ignored by the SM.
type MemPort interface {
	Access(now int64, in trace.Instr) int64
}

// ProgramRecycler receives warp programs whose warps have retired, so the
// driver can return arena-allocated programs to their pool. Release is called
// exactly once per program, from inside Tick, after the program's final Next
// has returned false.
type ProgramRecycler interface {
	Release(trace.Program)
}

type warp struct {
	prog      trace.Program
	readyAt   int64
	launch    int64 // GTO age: smaller = older
	lastIssue int64 // LRR recency: smaller = longer since last issue
	ctaSlot   int
	waitMem   bool
	live      bool
}

// Stats aggregates per-SM counters. Cycle classification counters are
// accrued by the driver (via Accrue) so that event-skip fast-forwarding can
// weight a classification by the number of skipped cycles.
type Stats struct {
	Instructions    uint64
	MemInstructions uint64
	IssuedCycles    uint64
	MemStallCycles  uint64
	PipeStallCycles uint64
	IdleCycles      uint64
	CTAsCompleted   uint64
}

// TotalCycles returns the sum of all classified cycles.
func (s Stats) TotalCycles() uint64 {
	return s.IssuedCycles + s.MemStallCycles + s.PipeStallCycles + s.IdleCycles
}

// FMem returns the memory-stall fraction f_mem (Eq. 3's denominator input):
// cycles in which the SM could not fetch because all blocked warps waited on
// memory, divided by all cycles.
func (s Stats) FMem() float64 {
	t := s.TotalCycles()
	if t == 0 {
		return 0
	}
	return float64(s.MemStallCycles) / float64(t)
}

// SM is one streaming multiprocessor. The zero value is not usable; use New.
type SM struct {
	computeLat int64
	maxWarps   int
	maxCTAs    int
	policy     Policy
	issueWidth int // instructions issued per cycle; 1 in the baseline

	warps     []warp
	freeWarps []int
	ready     readyQueue // assignment-ordered bitmap; pops oldest (GTO) / least recent (LRR)
	pending   warpHeap   // ordered by readyAt
	current   int        // greedy warp index, -1 if none
	recycler  ProgramRecycler

	// Two-level scheduler state: one ready queue per fetch group plus a
	// live-entry count (the per-group queues make a single len() scan
	// impossible) and the active-group cursor. Nil/zero under GTO and LRR,
	// which use the single ready queue above.
	groups      []readyQueue
	activeGroup int
	readyCount  int

	ctaLive      []int
	freeCTASlots []int
	liveWarps    int
	blockedMem   int
	launchSeq    int64

	// currentReady marks the GTO greedy warp as ready without it sitting in
	// the ready heap. Greedy re-issue is the dominant pattern — a warp
	// issues, blocks on its own load, is promoted, and issues again — and
	// keeping it out of the heap turns that promote/pick cycle from a heap
	// push plus an arbitrary-position removal into two flag writes. The
	// scheduling decision is unchanged: GTO picks the current warp whenever
	// it is ready, so it never competes in the heap's oldest-first ordering.
	currentReady bool

	stats Stats
}

// New constructs an SM with the default microarchitecture variant (GTO
// scheduling, single issue) and the given residency limits and
// dependent-issue compute latency. It is a thin wrapper over NewVariant.
func New(maxWarps, maxCTAs, computeLatency int) (*SM, error) {
	return NewVariant(maxWarps, maxCTAs, computeLatency, uarch.Variant{})
}

// NewWithPolicy is New with an explicit warp scheduling policy; the other
// variant dimensions stay at their defaults.
func NewWithPolicy(maxWarps, maxCTAs, computeLatency int, policy Policy) (*SM, error) {
	var sched uarch.Scheduler
	switch policy {
	case GTO:
		sched = uarch.SchedGTO
	case LRR:
		sched = uarch.SchedLRR
	case TwoLevel:
		sched = uarch.SchedTwoLevel
	default:
		return nil, fmt.Errorf("sm: unknown policy %v", policy)
	}
	return NewVariant(maxWarps, maxCTAs, computeLatency, uarch.Variant{Scheduler: sched})
}

// NewVariant is the variant-aware SM constructor every other form wraps: it
// validates the residency limits, the latency and the variant in one place
// and builds the scheduler structures the variant needs.
func NewVariant(maxWarps, maxCTAs, computeLatency int, v uarch.Variant) (*SM, error) {
	if maxWarps <= 0 {
		return nil, fmt.Errorf("sm: maxWarps must be positive, got %d", maxWarps)
	}
	if maxCTAs <= 0 {
		return nil, fmt.Errorf("sm: maxCTAs must be positive, got %d", maxCTAs)
	}
	if computeLatency <= 0 {
		return nil, fmt.Errorf("sm: computeLatency must be positive, got %d", computeLatency)
	}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("sm: %w", err)
	}
	v = v.Normalize()
	var policy Policy
	switch v.Scheduler {
	case uarch.SchedGTO:
		policy = GTO
	case uarch.SchedLRR:
		policy = LRR
	case uarch.SchedTwoLevel:
		policy = TwoLevel
	default:
		panic("sm: unreachable scheduler " + string(v.Scheduler)) // Validate covers the enum
	}
	s := &SM{
		computeLat:   int64(computeLatency),
		maxWarps:     maxWarps,
		maxCTAs:      maxCTAs,
		policy:       policy,
		issueWidth:   v.IssueWidth,
		warps:        make([]warp, 0, maxWarps),
		freeWarps:    make([]int, 0, maxWarps),
		ctaLive:      make([]int, maxCTAs),
		freeCTASlots: make([]int, 0, maxCTAs),
		current:      -1,
	}
	// Pre-size everything the warp lifecycle touches: launch, issue,
	// block, promote and retire must not allocate in steady state
	// (TestSteadyStateNoAllocs in internal/gpu pins this).
	s.ready.grow(maxWarps)
	s.pending.grow(maxWarps)
	if policy == TwoLevel {
		nGroups := (maxWarps + uarch.TwoLevelGroupSize - 1) / uarch.TwoLevelGroupSize
		s.groups = make([]readyQueue, nGroups)
		for i := range s.groups {
			// Ranks are indexed by global warp slot, so every group queue
			// sizes its rank table to maxWarps even though it only ever
			// holds its own group's warps.
			s.groups[i].grow(maxWarps)
		}
	}
	for i := maxCTAs - 1; i >= 0; i-- {
		s.freeCTASlots = append(s.freeCTASlots, i)
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(maxWarps, maxCTAs, computeLatency int) *SM {
	s, err := New(maxWarps, maxCTAs, computeLatency)
	if err != nil {
		panic(err)
	}
	return s
}

// MustNewVariant is NewVariant but panics on error.
func MustNewVariant(maxWarps, maxCTAs, computeLatency int, v uarch.Variant) *SM {
	s, err := NewVariant(maxWarps, maxCTAs, computeLatency, v)
	if err != nil {
		panic(err)
	}
	return s
}

// groupOf returns the fetch group of a warp slot under the two-level
// scheduler.
func groupOf(idx int) int { return idx / uarch.TwoLevelGroupSize }

// readyLen returns how many warps are ready to issue. GTO and LRR keep them
// in the single assignment-ordered queue; the two-level scheduler spreads
// them across per-group queues and counts them separately.
func (s *SM) readyLen() int {
	if s.policy == TwoLevel {
		return s.readyCount
	}
	return s.ready.len()
}

// readyAssign re-keys a warp slot to the freshest sequence position in its
// scheduling queue.
func (s *SM) readyAssign(idx int) {
	if s.policy == TwoLevel {
		s.groups[groupOf(idx)].assign(idx)
		return
	}
	s.ready.assign(idx)
}

// readyPush marks an assigned warp slot ready.
func (s *SM) readyPush(idx int) {
	if s.policy == TwoLevel {
		s.groups[groupOf(idx)].push(idx)
		s.readyCount++
		return
	}
	s.ready.push(idx)
}

// readyPop removes and returns the next warp to issue; the caller must have
// checked readyLen() > 0. GTO pops the oldest ready warp, LRR the least
// recently issued; the two-level scheduler pops within the active fetch
// group and only advances the group — cyclically, to the next with a ready
// warp — when the active one is empty.
func (s *SM) readyPop() int {
	if s.policy != TwoLevel {
		return s.ready.pop()
	}
	g := s.activeGroup
	for s.groups[g].len() == 0 {
		g++
		if g == len(s.groups) {
			g = 0
		}
	}
	s.activeGroup = g
	s.readyCount--
	return s.groups[g].pop()
}

// readyUnrank forgets a retiring warp slot's scheduling key.
func (s *SM) readyUnrank(idx int) {
	if s.policy == TwoLevel {
		s.groups[groupOf(idx)].unrank(idx)
		return
	}
	s.ready.unrank(idx)
}

// SetRecycler installs a recycler notified as each warp program retires. A
// nil recycler (the default) disables recycling; retired programs are simply
// dropped for the garbage collector.
func (s *SM) SetRecycler(r ProgramRecycler) { s.recycler = r }

// CanAccept reports whether a CTA of the given warp count can be launched.
func (s *SM) CanAccept(warps int) bool {
	return len(s.freeCTASlots) > 0 && s.liveWarps+warps <= s.maxWarps
}

// LaunchCTA makes the given warp programs resident. The caller must check
// CanAccept first; LaunchCTA panics otherwise (a scheduler bug, not a user
// error).
func (s *SM) LaunchCTA(programs []trace.Program) {
	if !s.CanAccept(len(programs)) {
		panic("sm: LaunchCTA without CanAccept")
	}
	slot := s.freeCTASlots[len(s.freeCTASlots)-1]
	s.freeCTASlots = s.freeCTASlots[:len(s.freeCTASlots)-1]
	s.ctaLive[slot] = len(programs)
	for _, p := range programs {
		idx := s.allocWarp()
		s.warps[idx] = warp{prog: p, readyAt: 0, launch: s.launchSeq, lastIssue: s.launchSeq, ctaSlot: slot, live: true}
		s.launchSeq++
		s.readyAssign(idx) // key = the launchSeq value just recorded
		s.readyPush(idx)
	}
	s.liveWarps += len(programs)
}

func (s *SM) allocWarp() int {
	if n := len(s.freeWarps); n > 0 {
		idx := s.freeWarps[n-1]
		s.freeWarps = s.freeWarps[:n-1]
		return idx
	}
	s.warps = append(s.warps, warp{})
	return len(s.warps) - 1
}

// LiveWarps returns the number of resident, unfinished warps.
func (s *SM) LiveWarps() int { return s.liveWarps }

// FreeCTASlots returns how many CTA slots are free.
func (s *SM) FreeCTASlots() int { return len(s.freeCTASlots) }

// ResidentCTAs returns how many CTAs currently occupy slots.
func (s *SM) ResidentCTAs() int { return s.maxCTAs - len(s.freeCTASlots) }

// Tick advances the SM by one cycle at time now, issuing up to the
// configured issue width (one instruction in the baseline) through mem. It
// returns the cycle's classification but does not accrue classification
// counters — call Accrue with the desired weight (1 normally, more when the
// driver fast-forwards).
func (s *SM) Tick(now int64, mem MemPort) TickKind {
	// Promote warps whose dependencies resolved.
	for s.pending.len() > 0 && s.pending.minKey() <= now {
		idx, _ := s.pending.pop()
		w := &s.warps[idx]
		if w.waitMem {
			s.blockedMem--
			w.waitMem = false
		}
		if s.policy == GTO && idx == s.current {
			s.currentReady = true // greedy warp bypasses the ready queue
			continue
		}
		s.readyPush(idx)
	}

	issued := 0
	for {
		var idx int
		switch {
		case s.currentReady:
			// Greedy: stay on the current warp while it is ready.
			idx = s.current
			s.currentReady = false
		case s.readyLen() > 0:
			// Then-oldest: the ready warp with the smallest scheduling key.
			idx = s.readyPop()
		default:
			if issued > 0 {
				return Issued // width not filled, but the cycle did issue
			}
			if s.liveWarps == 0 {
				return Idle
			}
			// A no-issue cycle counts toward f_mem (Eq. 3) when any
			// blocked warp is waiting on memory: if memory returned
			// instantly that warp would be ready and the cycle would
			// not exist, so memory is the binding cause. Only cycles
			// where every blocked warp sits in a short arithmetic
			// dependency are pipeline stalls.
			if s.blockedMem > 0 {
				return StallMem
			}
			return StallPipe
		}

		w := &s.warps[idx]
		in, ok := w.prog.Next()
		if !ok {
			s.retire(idx)
			continue // retirement is free; pick another warp this cycle
		}
		s.current = idx
		w.lastIssue = s.launchSeq
		s.launchSeq++
		if s.policy == LRR || s.policy == TwoLevel {
			// These policies key the ready queue by lastIssue, which was
			// just redrawn from launchSeq — move the warp to the back of
			// the (group) sequence.
			s.readyAssign(idx)
		}
		s.stats.Instructions++
		switch in.Kind {
		case trace.Compute:
			w.readyAt = now + s.computeLat
		case trace.Load:
			s.stats.MemInstructions++
			w.readyAt = mem.Access(now, in)
			if w.readyAt <= now {
				w.readyAt = now + 1
			}
			w.waitMem = true
			s.blockedMem++
		case trace.Store:
			s.stats.MemInstructions++
			mem.Access(now, in)
			w.readyAt = now + 1
		}
		s.pending.push(idx, w.readyAt)
		issued++
		if issued >= s.issueWidth {
			return Issued
		}
		// A just-issued warp's earliest wake-up is now+1, so it cannot be
		// picked again within this cycle; the remaining issue slots go to
		// other ready warps.
	}
}

func (s *SM) retire(idx int) {
	w := &s.warps[idx]
	if s.recycler != nil {
		s.recycler.Release(w.prog)
	}
	w.prog = nil
	w.live = false
	s.readyUnrank(idx)
	s.liveWarps--
	s.freeWarps = append(s.freeWarps, idx)
	if s.current == idx {
		s.current = -1
		s.currentReady = false
	}
	slot := w.ctaSlot
	s.ctaLive[slot]--
	if s.ctaLive[slot] == 0 {
		s.freeCTASlots = append(s.freeCTASlots, slot)
		s.stats.CTAsCompleted++
	}
}

// readyKey returns the priority key for the ready heap: launch age under
// GTO (oldest first), last-issue recency under LRR and the two-level
// scheduler (least recently issued first, per fetch group for the latter).
func (s *SM) readyKey(idx int) int64 {
	if s.policy == LRR || s.policy == TwoLevel {
		return s.warps[idx].lastIssue
	}
	return s.warps[idx].launch
}

// Accrue adds weight cycles of the given classification to the statistics.
func (s *SM) Accrue(kind TickKind, weight uint64) {
	switch kind {
	case Issued:
		s.stats.IssuedCycles += weight
	case StallMem:
		s.stats.MemStallCycles += weight
	case StallPipe:
		s.stats.PipeStallCycles += weight
	case Idle:
		s.stats.IdleCycles += weight
	}
}

// IssuingWarp returns the warp slot index of the instruction the current
// Tick is issuing — valid inside a MemPort.Access callback, because Tick
// records the greedy warp before touching memory. The sharded MCM run loop
// uses it to tag a deferred memory access with the warp whose wake-up must
// be repaired once the access's true completion cycle is known.
func (s *SM) IssuingWarp() int { return s.current }

// FixPendingWake rewrites a blocked warp's wake-up cycle in place — warp
// state and the pending heap's ordering both. The sharded run loop parks a
// deferred load's warp at a provisional far-future cycle during the
// parallel tick phase and repairs it with the true completion cycle before
// the next cycle's ticks; the warp must still be pending (it cannot have
// been promoted: wake-ups are repaired before the cycle they could resolve
// in). readyAt must be at least the repairing cycle, mirroring Tick's
// next-cycle clamp on MemPort completions.
func (s *SM) FixPendingWake(idx int, readyAt int64) {
	s.warps[idx].readyAt = readyAt
	s.pending.fix(idx, readyAt)
}

// HasReady reports whether a warp could issue (or retire) right now without
// waiting for any pending dependency to resolve.
func (s *SM) HasReady() bool { return s.currentReady || s.readyLen() > 0 }

// memBoundCeil is MemEventBound's "never" value: no live warp can reach a
// memory instruction or retirement. Far above any cycle a simulation visits.
const memBoundCeil = int64(1) << 62

// warpMemBound returns the earliest cycle at or after from at which warp idx
// could issue its next memory instruction or retire: the warp issues its
// first remaining instruction no earlier than max(readyAt, from), and each
// of the leading compute instructions previewed by trace.MemLookahead
// delays the first memory event (or the retirement attempt) by one
// dependent-issue compute latency. Contention for the SM's single issue
// slot only pushes the event later, so the bound is safe. Programs without
// lookahead preview zero computes, collapsing the bound to the warp's next
// issue opportunity.
func (s *SM) warpMemBound(w *warp, from int64) int64 {
	t := w.readyAt
	if t < from {
		t = from
	}
	if la, ok := w.prog.(trace.MemLookahead); ok {
		return t + int64(la.ComputeRun())*s.computeLat
	}
	return t
}

// MemEventBound returns the earliest cycle at or after from at which any of
// this SM's live warps could issue a memory instruction or retire —
// equivalently, the first cycle this SM could next touch state outside
// itself or change CTA residency. The quantum-relaxed sharded run loops
// take the minimum over SMs to size a barrier-free window. Warps parked at
// a provisional far-future wake-up (deferred loads awaiting barrier replay)
// naturally report a far-future bound; the coordinator folds their true
// bound in with WarpMemEventBound once the replay stamps completions.
// Returns a far-future ceiling when the SM has no live warps.
func (s *SM) MemEventBound(from int64) int64 {
	bound := memBoundCeil
	for i := range s.warps {
		w := &s.warps[i]
		if !w.live {
			continue
		}
		if b := s.warpMemBound(w, from); b < bound {
			bound = b
			if bound <= from {
				return bound // cannot get lower; a memory event is imminent
			}
		}
	}
	return bound
}

// WarpMemEventBound is warpMemBound for one warp with an explicit wake-up
// cycle, used by the sharded coordinators to fold a just-replayed deferred
// load (whose in-heap readyAt was provisional while the bound scan ran)
// into the window bound: wake is the repaired completion cycle, after which
// the warp still needs its previewed compute run before the next memory
// event.
func (s *SM) WarpMemEventBound(idx int, wake int64) int64 {
	w := &s.warps[idx]
	if la, ok := w.prog.(trace.MemLookahead); ok {
		return wake + int64(la.ComputeRun())*s.computeLat
	}
	return wake
}

// StallKind returns the classification Tick would report for a cycle in
// which this SM cannot act — no ready warp and no promotion due: Idle
// without live warps, StallMem while any blocked warp waits on memory,
// StallPipe otherwise. It is pure, so the event-driven run loop can accrue
// a whole stalled interval in one call instead of ticking every cycle; the
// classification is constant between wake-ups because liveWarps and
// blockedMem only change inside Tick or LaunchCTA.
func (s *SM) StallKind() TickKind {
	if s.liveWarps == 0 {
		return Idle
	}
	if s.blockedMem > 0 {
		return StallMem
	}
	return StallPipe
}

// NextEvent returns the earliest cycle at which a blocked warp becomes
// ready, and false when nothing is pending (the SM is idle or has a warp
// ready right now).
func (s *SM) NextEvent() (int64, bool) {
	if s.currentReady || s.readyLen() > 0 {
		return 0, false // a warp is ready immediately; no skipping possible
	}
	if s.pending.len() == 0 {
		return 0, false
	}
	return s.pending.minKey(), true
}

// Stats returns a copy of the SM's counters.
func (s *SM) Stats() Stats { return s.stats }

// PublishObs stores the SM's warp-scheduler accounting — issue slots and the
// per-reason stall-cycle breakdown — into the given metrics scope. Totals are
// authoritative (Store, not Add), so publishing is idempotent and repeated
// calls track the counters exactly. No-op on a nil scope.
func (s *SM) PublishObs(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("instructions").Store(s.stats.Instructions)
	sc.Counter("mem_instructions").Store(s.stats.MemInstructions)
	sc.Counter("issued_cycles").Store(s.stats.IssuedCycles)
	sc.Counter("stall_mem_cycles").Store(s.stats.MemStallCycles)
	sc.Counter("stall_pipe_cycles").Store(s.stats.PipeStallCycles)
	sc.Counter("idle_cycles").Store(s.stats.IdleCycles)
	sc.Counter("ctas_completed").Store(s.stats.CTAsCompleted)
	sc.Gauge("live_warps").Set(float64(s.liveWarps))
}

// ResetStats zeroes the SM's counters without touching warp or CTA state,
// so measurement can start after a warm-up period.
func (s *SM) ResetStats() { s.stats = Stats{} }

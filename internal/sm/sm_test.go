package sm

import (
	"testing"
	"testing/quick"

	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
)

// fixedMem is a MemPort with a constant latency.
type fixedMem struct {
	lat      int64
	accesses int
	stores   int
}

func (m *fixedMem) Access(now int64, in trace.Instr) int64 {
	m.accesses++
	if in.Kind == trace.Store {
		m.stores++
	}
	return now + m.lat
}

func computeProg(n int) trace.Program {
	return trace.NewPhaseProgram(trace.Phase{N: n})
}

func loadProg(n int) trace.Program {
	g := &trace.SeqGen{Base: 0, Stride: 128, Extent: 1 << 30}
	return trace.NewPhaseProgram(trace.Phase{N: n, ComputePer: 0, Gen: g})
}

// run drives the SM until the grid drains, returning total cycles.
func run(t *testing.T, s *SM, mem MemPort, maxCycles int64) int64 {
	t.Helper()
	now := int64(0)
	for s.LiveWarps() > 0 {
		if now > maxCycles {
			t.Fatalf("SM did not drain within %d cycles", maxCycles)
		}
		kind := s.Tick(now, mem)
		s.Accrue(kind, 1)
		now++
	}
	return now
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 4); err == nil {
		t.Error("zero warps accepted")
	}
	if _, err := New(1, 0, 4); err == nil {
		t.Error("zero CTAs accepted")
	}
	if _, err := New(1, 1, 0); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestTickKindString(t *testing.T) {
	for k, want := range map[TickKind]string{Issued: "issued", StallMem: "stall-mem", StallPipe: "stall-pipe", Idle: "idle", TickKind(9): "TickKind(9)"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestCanAcceptLimits(t *testing.T) {
	s := MustNew(4, 1, 4)
	if !s.CanAccept(4) {
		t.Error("should accept 4 warps")
	}
	if s.CanAccept(5) {
		t.Error("accepted more warps than capacity")
	}
	s.LaunchCTA([]trace.Program{computeProg(1)})
	if s.CanAccept(1) {
		t.Error("accepted a CTA with no free slots")
	}
}

func TestLaunchWithoutCanAcceptPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s := MustNew(1, 1, 4)
	s.LaunchCTA([]trace.Program{computeProg(1), computeProg(1)})
}

func TestSingleWarpComputeTiming(t *testing.T) {
	// 10 dependent compute instructions at latency 4: one issue every 4
	// cycles -> ~40 cycles, IPC 0.25.
	s := MustNew(4, 1, 4)
	s.LaunchCTA([]trace.Program{computeProg(10)})
	cycles := run(t, s, &fixedMem{lat: 1}, 1000)
	if cycles < 37 || cycles > 45 {
		t.Errorf("cycles = %d, want ≈40", cycles)
	}
	st := s.Stats()
	if st.Instructions != 10 {
		t.Errorf("instructions = %d, want 10", st.Instructions)
	}
	if st.MemStallCycles != 0 {
		t.Errorf("mem stalls = %d, want 0", st.MemStallCycles)
	}
	if st.PipeStallCycles == 0 {
		t.Error("expected pipeline stalls from dependent latency")
	}
}

func TestMultiWarpLatencyHiding(t *testing.T) {
	// 4 warps of dependent compute at latency 4 interleave to IPC ≈ 1.
	s := MustNew(4, 1, 4)
	s.LaunchCTA([]trace.Program{computeProg(25), computeProg(25), computeProg(25), computeProg(25)})
	cycles := run(t, s, &fixedMem{lat: 1}, 1000)
	if cycles > 110 {
		t.Errorf("cycles = %d, want ≈100 (latency hidden)", cycles)
	}
	if ipc := float64(s.Stats().Instructions) / float64(cycles); ipc < 0.9 {
		t.Errorf("IPC = %v, want ≈1", ipc)
	}
}

func TestMemStallClassification(t *testing.T) {
	// One warp issuing loads with 100-cycle latency: almost all cycles are
	// memory stalls and FMem approaches 1.
	s := MustNew(4, 1, 4)
	s.LaunchCTA([]trace.Program{loadProg(5)})
	mem := &fixedMem{lat: 100}
	run(t, s, mem, 10000)
	st := s.Stats()
	if st.MemStallCycles == 0 {
		t.Fatal("no memory stalls recorded")
	}
	if f := st.FMem(); f < 0.9 {
		t.Errorf("FMem = %v, want > 0.9", f)
	}
	if mem.accesses != 5 {
		t.Errorf("mem accesses = %d, want 5", mem.accesses)
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	g := &trace.SeqGen{Base: 0, Stride: 128, Extent: 1 << 30}
	prog := trace.NewPhaseProgram(trace.Phase{N: 10, ComputePer: 0, Gen: g, Store: true})
	s := MustNew(4, 1, 4)
	s.LaunchCTA([]trace.Program{prog})
	mem := &fixedMem{lat: 500}
	cycles := run(t, s, mem, 1000)
	if cycles > 20 {
		t.Errorf("stores blocked the warp: %d cycles for 10 stores", cycles)
	}
	if mem.stores != 10 {
		t.Errorf("stores seen = %d, want 10", mem.stores)
	}
}

func TestCTACompletionFreesSlot(t *testing.T) {
	s := MustNew(8, 2, 4)
	s.LaunchCTA([]trace.Program{computeProg(3)})
	s.LaunchCTA([]trace.Program{computeProg(30)})
	if s.FreeCTASlots() != 0 {
		t.Fatal("slots should be exhausted")
	}
	mem := &fixedMem{lat: 1}
	now := int64(0)
	for s.FreeCTASlots() == 0 {
		kind := s.Tick(now, mem)
		s.Accrue(kind, 1)
		now++
		if now > 1000 {
			t.Fatal("first CTA never completed")
		}
	}
	if s.Stats().CTAsCompleted != 1 {
		t.Errorf("CTAsCompleted = %d, want 1", s.Stats().CTAsCompleted)
	}
	if !s.CanAccept(1) {
		t.Error("freed slot not reusable")
	}
}

func TestIdleWhenEmpty(t *testing.T) {
	s := MustNew(4, 1, 4)
	if kind := s.Tick(0, &fixedMem{lat: 1}); kind != Idle {
		t.Errorf("empty SM tick = %v, want Idle", kind)
	}
}

func TestNextEvent(t *testing.T) {
	s := MustNew(4, 1, 4)
	if _, ok := s.NextEvent(); ok {
		t.Error("empty SM reported event")
	}
	s.LaunchCTA([]trace.Program{loadProg(2)})
	if _, ok := s.NextEvent(); ok {
		t.Error("ready warp should inhibit skipping")
	}
	s.Accrue(s.Tick(0, &fixedMem{lat: 100}), 1)
	ev, ok := s.NextEvent()
	if !ok || ev != 100 {
		t.Errorf("NextEvent = %d,%v, want 100,true", ev, ok)
	}
}

func TestAccrueWeights(t *testing.T) {
	s := MustNew(4, 1, 4)
	s.Accrue(Issued, 2)
	s.Accrue(StallMem, 3)
	s.Accrue(StallPipe, 5)
	s.Accrue(Idle, 7)
	st := s.Stats()
	if st.IssuedCycles != 2 || st.MemStallCycles != 3 || st.PipeStallCycles != 5 || st.IdleCycles != 7 {
		t.Errorf("accrued counters wrong: %+v", st)
	}
	if st.TotalCycles() != 17 {
		t.Errorf("TotalCycles = %d, want 17", st.TotalCycles())
	}
}

func TestFMemZeroWhenNoCycles(t *testing.T) {
	var st Stats
	if st.FMem() != 0 {
		t.Error("FMem of empty stats should be 0")
	}
}

func TestGTOPrefersOldestWarp(t *testing.T) {
	// Two warps with loads; the older warp (launched first) should issue
	// first whenever both are ready.
	s := MustNew(4, 1, 4)
	order := []uint64{}
	mem := &recordingMem{lat: 1, order: &order}
	s.LaunchCTA([]trace.Program{
		trace.NewPhaseProgram(trace.Phase{N: 1, Gen: &trace.SeqGen{Base: 1000, Stride: 128, Extent: 1 << 20}}),
		trace.NewPhaseProgram(trace.Phase{N: 1, Gen: &trace.SeqGen{Base: 2000, Stride: 128, Extent: 1 << 20}}),
	})
	run(t, s, mem, 100)
	if len(order) != 2 || order[0] != 1000 || order[1] != 2000 {
		t.Errorf("issue order = %v, want [1000 2000]", order)
	}
}

type recordingMem struct {
	lat   int64
	order *[]uint64
}

func (m *recordingMem) Access(now int64, in trace.Instr) int64 {
	*m.order = append(*m.order, in.Addr)
	return now + m.lat
}

// deferredMem mimics the sharded MCM run loop's memory port: a load gets a
// far-future provisional completion (and the issuing warp is recorded via
// IssuingWarp), and the true completion is applied with FixPendingWake
// before the next cycle's tick.
type deferredMem struct {
	lat     int64
	sm      *SM
	warp    int
	issued  int64
	pending bool
}

func (m *deferredMem) Access(now int64, in trace.Instr) int64 {
	if in.Kind == trace.Store {
		return now + m.lat
	}
	m.warp = m.sm.IssuingWarp()
	m.issued = now
	m.pending = true
	return 1 << 62
}

// TestDeferredWakeRepairMatchesImmediate drives the same warp mix through
// the immediate port and through the defer-then-repair protocol; drain
// time, statistics, and issue behaviour must be identical.
func TestDeferredWakeRepairMatchesImmediate(t *testing.T) {
	for _, lat := range []int64{1, 4, 37, 200} {
		launch := func(s *SM) {
			s.LaunchCTA([]trace.Program{loadProg(6), loadProg(4), computeProg(5)})
		}
		ref := MustNew(8, 2, 4)
		launch(ref)
		refCycles := run(t, ref, &fixedMem{lat: lat}, 1<<20)

		s := MustNew(8, 2, 4)
		launch(s)
		m := &deferredMem{lat: lat, sm: s}
		now := int64(0)
		for s.LiveWarps() > 0 {
			if now > 1<<20 {
				t.Fatalf("lat %d: deferred SM did not drain", lat)
			}
			if m.pending {
				m.pending = false
				rdy := m.issued + m.lat
				if rdy <= m.issued {
					rdy = m.issued + 1
				}
				s.FixPendingWake(m.warp, rdy)
			}
			s.Accrue(s.Tick(now, m), 1)
			now++
		}
		if now != refCycles {
			t.Errorf("lat %d: deferred drain %d cycles, immediate %d", lat, now, refCycles)
		}
		if s.Stats() != ref.Stats() {
			t.Errorf("lat %d: stats diverged:\ndeferred  %+v\nimmediate %+v", lat, s.Stats(), ref.Stats())
		}
	}
}

func TestDrainAlwaysTerminatesProperty(t *testing.T) {
	// Property: any mix of small programs drains, and instruction counts
	// add up.
	f := func(nWarps uint8, nInstr uint8, memLat uint8) bool {
		w := int(nWarps)%6 + 1
		n := int(nInstr)%20 + 1
		s := MustNew(8, 2, 4)
		progs := make([]trace.Program, w)
		for i := range progs {
			progs[i] = loadProg(n)
		}
		s.LaunchCTA(progs)
		mem := &fixedMem{lat: int64(memLat) + 1}
		now := int64(0)
		for s.LiveWarps() > 0 {
			if now > 1_000_000 {
				return false
			}
			s.Accrue(s.Tick(now, mem), 1)
			now++
		}
		return s.Stats().Instructions == uint64(w*n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeapPushPopOrder(t *testing.T) {
	var h warpHeap
	h.push(0, 30)
	h.push(1, 10)
	h.push(2, 20)
	if h.len() != 3 || h.minKey() != 10 {
		t.Fatalf("len/min = %d/%d, want 3/10", h.len(), h.minKey())
	}
	i, k := h.pop()
	if i != 1 || k != 10 {
		t.Errorf("pop = %d,%d, want 1,10", i, k)
	}
	if h.contains(1) {
		t.Error("popped element still contained")
	}
	h.remove(2)
	if h.contains(2) || h.len() != 1 {
		t.Error("remove failed")
	}
}

func TestHeapDoublePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var h warpHeap
	h.push(0, 1)
	h.push(0, 2)
}

func TestHeapRemoveAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var h warpHeap
	h.push(0, 1)
	h.remove(5)
}

func TestHeapOrderingProperty(t *testing.T) {
	f := func(keys []int16) bool {
		if len(keys) > 64 {
			keys = keys[:64]
		}
		var h warpHeap
		for i, k := range keys {
			h.push(i, int64(k))
		}
		last := int64(-1 << 62)
		for h.len() > 0 {
			_, k := h.pop()
			if k < last {
				return false
			}
			last = k
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if GTO.String() != "gto" || LRR.String() != "lrr" || TwoLevel.String() != "two-level" {
		t.Error("policy strings wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy string wrong")
	}
}

func TestNewWithPolicyValidation(t *testing.T) {
	if _, err := NewWithPolicy(4, 1, 4, Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
	s, err := NewWithPolicy(4, 1, 4, LRR)
	if err != nil || s == nil {
		t.Fatalf("LRR construction failed: %v", err)
	}
}

func TestLRRRotatesAcrossWarps(t *testing.T) {
	// Three compute-only warps under LRR with latency 1: issues rotate
	// round-robin rather than sticking with one warp.
	s, err := NewWithPolicy(4, 1, 1, LRR)
	if err != nil {
		t.Fatal(err)
	}
	var order []uint64
	mem := &recordingMem{lat: 1, order: &order}
	g0 := &trace.SeqGen{Base: 0, Stride: 128, Extent: 1 << 20}
	g1 := &trace.SeqGen{Base: 1 << 30, Stride: 128, Extent: 1 << 20}
	s.LaunchCTA([]trace.Program{
		trace.NewPhaseProgram(trace.Phase{N: 4, ComputePer: 0, Gen: g0}),
		trace.NewPhaseProgram(trace.Phase{N: 4, ComputePer: 0, Gen: g1}),
	})
	now := int64(0)
	for s.LiveWarps() > 0 && now < 1000 {
		s.Accrue(s.Tick(now, mem), 1)
		now++
	}
	if len(order) != 8 {
		t.Fatalf("issued %d memory ops, want 8", len(order))
	}
	// Under LRR the two warps alternate strictly (both always ready with
	// 1-cycle memory latency).
	for i := 1; i < len(order); i++ {
		sameRegion := (order[i] >= 1<<30) == (order[i-1] >= 1<<30)
		if sameRegion {
			t.Fatalf("LRR did not rotate at issue %d: %v", i, order)
		}
	}
}

func TestNewVariantValidation(t *testing.T) {
	if _, err := NewVariant(4, 1, 4, uarch.Variant{Scheduler: "greedy"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := NewVariant(4, 1, 4, uarch.Variant{IssueWidth: uarch.MaxIssueWidth + 1}); err == nil {
		t.Error("out-of-range issue width accepted")
	}
	if _, err := NewVariant(0, 1, 4, uarch.Variant{}); err == nil {
		t.Error("zero warps accepted")
	}
	if _, err := NewWithPolicy(4, 1, 4, TwoLevel); err != nil {
		t.Errorf("two-level construction failed: %v", err)
	}
}

// TestVariantDefaultMatchesNew pins satellite contract behind the
// constructor dedup: an explicitly-default variant must behave exactly like
// New on a mixed workload — same drain time, same statistics.
func TestVariantDefaultMatchesNew(t *testing.T) {
	launch := func(s *SM) {
		s.LaunchCTA([]trace.Program{loadProg(6), computeProg(9), loadProg(3)})
	}
	ref := MustNew(8, 2, 4)
	launch(ref)
	refCycles := run(t, ref, &fixedMem{lat: 37}, 1<<20)

	s := MustNewVariant(8, 2, 4, uarch.Variant{
		Scheduler: uarch.SchedGTO, L1: uarch.L1Line, NoC: uarch.RouteXbar, IssueWidth: 1})
	launch(s)
	cycles := run(t, s, &fixedMem{lat: 37}, 1<<20)
	if cycles != refCycles || s.Stats() != ref.Stats() {
		t.Errorf("explicit-default variant diverged from New: %d/%d cycles\n variant %+v\n default %+v",
			cycles, refCycles, s.Stats(), ref.Stats())
	}
}

// TestTwoLevelStaysInActiveGroup pins the two-level scheduler's defining
// behaviour: warp slots 0–7 form fetch group 0 and slot 8 group 1, and with
// group 0 always holding a ready warp, slot 8's accesses come strictly after
// every group-0 warp has retired.
func TestTwoLevelStaysInActiveGroup(t *testing.T) {
	s := MustNewVariant(16, 2, 1, uarch.Variant{Scheduler: uarch.SchedTwoLevel})
	var order []uint64
	mem := &recordingMem{lat: 1, order: &order}
	regionA := &trace.SeqGen{Base: 0, Stride: 128, Extent: 1 << 20}
	regionB := &trace.SeqGen{Base: 1 << 30, Stride: 128, Extent: 1 << 20}
	regionC := &trace.SeqGen{Base: 1 << 40, Stride: 128, Extent: 1 << 20}
	progs := []trace.Program{
		trace.NewPhaseProgram(trace.Phase{N: 4, ComputePer: 0, Gen: regionA}),
		trace.NewPhaseProgram(trace.Phase{N: 4, ComputePer: 0, Gen: regionB}),
	}
	for i := 2; i < 8; i++ {
		progs = append(progs, computeProg(1))
	}
	progs = append(progs, trace.NewPhaseProgram(trace.Phase{N: 4, ComputePer: 0, Gen: regionC}))
	s.LaunchCTA(progs)
	run(t, s, mem, 1000)
	if len(order) != 12 {
		t.Fatalf("issued %d memory ops, want 12", len(order))
	}
	for i, addr := range order[:8] {
		if addr >= 1<<40 {
			t.Fatalf("group-1 warp issued at position %d while group 0 had ready warps: %v", i, order)
		}
	}
	for i, addr := range order[8:] {
		if addr < 1<<40 {
			t.Fatalf("group-0 access at position %d after the group drained: %v", 8+i, order)
		}
	}
}

// TestTwoLevelRotatesWithinGroup verifies the within-group LRR re-keying:
// two always-ready warps in the same fetch group alternate strictly.
func TestTwoLevelRotatesWithinGroup(t *testing.T) {
	s := MustNewVariant(8, 1, 1, uarch.Variant{Scheduler: uarch.SchedTwoLevel})
	var order []uint64
	mem := &recordingMem{lat: 1, order: &order}
	g0 := &trace.SeqGen{Base: 0, Stride: 128, Extent: 1 << 20}
	g1 := &trace.SeqGen{Base: 1 << 30, Stride: 128, Extent: 1 << 20}
	s.LaunchCTA([]trace.Program{
		trace.NewPhaseProgram(trace.Phase{N: 4, ComputePer: 0, Gen: g0}),
		trace.NewPhaseProgram(trace.Phase{N: 4, ComputePer: 0, Gen: g1}),
	})
	now := int64(0)
	for s.LiveWarps() > 0 && now < 1000 {
		s.Accrue(s.Tick(now, mem), 1)
		now++
	}
	if len(order) != 8 {
		t.Fatalf("issued %d memory ops, want 8", len(order))
	}
	for i := 1; i < len(order); i++ {
		if (order[i] >= 1<<30) == (order[i-1] >= 1<<30) {
			t.Fatalf("two-level did not rotate within the group at issue %d: %v", i, order)
		}
	}
}

// TestIssueWidthScalesThroughput: 8 independent dependent-latency-4 compute
// warps saturate one issue slot exactly (IPC 1); doubling the width to 2
// should roughly double throughput (IPC 2, warps allowing).
func TestIssueWidthScalesThroughput(t *testing.T) {
	launch := func(s *SM) {
		progs := make([]trace.Program, 8)
		for i := range progs {
			progs[i] = computeProg(25)
		}
		s.LaunchCTA(progs)
	}
	single := MustNewVariant(8, 1, 4, uarch.Variant{})
	launch(single)
	c1 := run(t, single, &fixedMem{lat: 1}, 10000)

	dual := MustNewVariant(8, 1, 4, uarch.Variant{IssueWidth: 2})
	launch(dual)
	c2 := run(t, dual, &fixedMem{lat: 1}, 10000)

	if ipc := float64(single.Stats().Instructions) / float64(c1); ipc < 0.9 {
		t.Errorf("width-1 IPC = %v, want ≈1", ipc)
	}
	if ipc := float64(dual.Stats().Instructions) / float64(c2); ipc < 1.8 {
		t.Errorf("width-2 IPC = %v, want ≈2", ipc)
	}
	if c2*3 > c1*2 {
		t.Errorf("width 2 took %d cycles vs %d at width 1; expected a near-2x cut", c2, c1)
	}
}

func TestResidentCTAs(t *testing.T) {
	s := MustNew(8, 2, 4)
	if s.ResidentCTAs() != 0 {
		t.Errorf("ResidentCTAs = %d, want 0", s.ResidentCTAs())
	}
	s.LaunchCTA([]trace.Program{computeProg(1)})
	if s.ResidentCTAs() != 1 {
		t.Errorf("ResidentCTAs = %d, want 1", s.ResidentCTAs())
	}
}

package sm

import "math/bits"

// readyQueue replaces the ready warpHeap with a sequence-ordered bitmap. It
// exploits an invariant of both scheduling policies: the ready key of a warp
// (launch age under GTO, last-issue recency under LRR) is drawn from the SM's
// single monotone launchSeq counter at the moment the key is (re)assigned, so
// the order in which keys are assigned IS the order of the key values, and no
// two live keys are ever equal. That turns "pop the smallest key" into "find
// the first set bit in assignment order" — one TrailingZeros64 over a couple
// of words instead of a log-n heap sift — while reproducing the warpHeap's
// pop order bit-for-bit (TestReadyQueueMatchesHeap cross-checks this on
// randomized schedules).
//
// Layout: seq records warp slot indices in key-assignment order; rank maps a
// warp slot back to its position in seq (-1 when the slot has no current
// key); mask holds one ready bit per seq position. A warp may be re-keyed
// (LRR re-issue) or its slot reused (retire + launch), leaving stale seq
// entries behind; they are recognized by rank[seq[i]] != i and dropped by the
// in-place compaction that runs when seq fills. Capacity is 2× the live-warp
// limit, so compaction always reclaims at least half the entries and the
// structure never allocates after grow.
type readyQueue struct {
	seq   []int32  // seq position -> warp slot index (assignment order)
	rank  []int32  // warp slot index -> seq position, -1 if unkeyed
	mask  []uint64 // seq position -> ready bit
	tail  int      // next free seq position
	count int      // number of set bits in mask
}

// grow pre-sizes the queue for warp slot indices [0, n): assign/push/pop
// never allocate afterwards.
func (q *readyQueue) grow(n int) {
	capSeq := 2 * n
	if capSeq < 64 {
		capSeq = 64
	}
	if len(q.seq) < capSeq {
		seq := make([]int32, capSeq)
		copy(seq, q.seq[:q.tail])
		q.seq = seq
		mask := make([]uint64, (capSeq+63)/64)
		copy(mask, q.mask)
		q.mask = mask
	}
	for len(q.rank) < n {
		q.rank = append(q.rank, -1)
	}
}

func (q *readyQueue) ensure(warpIdx int) {
	for len(q.rank) <= warpIdx {
		q.rank = append(q.rank, -1)
	}
}

func (q *readyQueue) len() int { return q.count }

// assign records that warp warpIdx was just given a key larger than every
// key assigned before it (a fresh launchSeq draw), appending it to the
// sequence. Any previous position of the slot becomes stale. The warp is not
// marked ready; call push for that.
func (q *readyQueue) assign(warpIdx int) {
	q.ensure(warpIdx)
	if q.tail == len(q.seq) {
		q.compact()
	}
	q.seq[q.tail] = int32(warpIdx)
	q.rank[warpIdx] = int32(q.tail)
	q.tail++
}

// compact drops stale seq entries in place, preserving assignment order of
// the live ones and carrying their ready bits along. At most one entry per
// live warp is current, so with capacity 2×maxWarps this always frees half
// the slots.
func (q *readyQueue) compact() {
	out := 0
	for i := 0; i < q.tail; i++ {
		w := q.seq[i]
		if int(q.rank[w]) != i {
			continue // stale: slot was re-keyed or retired since
		}
		set := q.mask[i>>6]&(1<<(uint(i)&63)) != 0
		q.mask[i>>6] &^= 1 << (uint(i) & 63)
		q.seq[out] = w
		q.rank[w] = int32(out)
		if set {
			q.mask[out>>6] |= 1 << (uint(out) & 63)
		} else {
			q.mask[out>>6] &^= 1 << (uint(out) & 63)
		}
		out++
	}
	// Clear any bits left between the new tail and the old one.
	for i := out; i < q.tail; i++ {
		q.mask[i>>6] &^= 1 << (uint(i) & 63)
	}
	q.tail = out
}

// push marks the (already assigned) warp ready. Pushing a warp twice without
// an intervening pop is a scheduler bug, as it was for the heap.
func (q *readyQueue) push(warpIdx int) {
	r := q.rank[warpIdx]
	if r < 0 {
		panic("sm: ready push of unassigned warp")
	}
	q.mask[r>>6] |= 1 << (uint(r) & 63)
	q.count++
}

// pop removes and returns the ready warp with the smallest key — the first
// set bit in assignment order. The queue must be non-empty.
func (q *readyQueue) pop() int {
	for wi, w := range q.mask {
		if w == 0 {
			continue
		}
		b := bits.TrailingZeros64(w)
		q.mask[wi] = w &^ (1 << uint(b))
		q.count--
		return int(q.seq[wi<<6|b])
	}
	panic("sm: pop of empty ready queue")
}

// unrank forgets the warp's key (and ready bit, if set) when its slot is
// retired, so a later occupant of the slot starts unkeyed.
func (q *readyQueue) unrank(warpIdx int) {
	if warpIdx >= len(q.rank) {
		return
	}
	r := q.rank[warpIdx]
	if r < 0 {
		return
	}
	if q.mask[r>>6]&(1<<(uint(r)&63)) != 0 {
		q.mask[r>>6] &^= 1 << (uint(r) & 63)
		q.count--
	}
	q.rank[warpIdx] = -1
}

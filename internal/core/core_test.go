package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCorrectionFactor(t *testing.T) {
	// Perfect linear scaling: C = 1.
	if c := CorrectionFactor(8, 100, 16, 200); !approx(c, 1, 1e-12) {
		t.Errorf("linear C = %v, want 1", c)
	}
	// Sub-linear: 1.8x for 2x size -> C = 0.9.
	if c := CorrectionFactor(8, 100, 16, 180); !approx(c, 0.9, 1e-12) {
		t.Errorf("sub-linear C = %v, want 0.9", c)
	}
	// Super-linear: 2.2x for 2x size -> C = 1.1.
	if c := CorrectionFactor(8, 100, 16, 220); !approx(c, 1.1, 1e-12) {
		t.Errorf("super-linear C = %v, want 1.1", c)
	}
}

func TestDetectCliff(t *testing.T) {
	if _, ok := DetectCliff([]float64{8, 7, 6.5, 6}, 0, 0); ok {
		t.Error("gradual curve produced a cliff")
	}
	i, ok := DetectCliff([]float64{8, 7.5, 7, 0.5, 0.4}, 0, 0)
	if !ok || i != 2 {
		t.Errorf("cliff = %d,%v, want 2,true", i, ok)
	}
	// Flat near-zero curve: drops below the MPKI floor don't count.
	if _, ok := DetectCliff([]float64{0.2, 0.05, 0.01}, 0, 0); ok {
		t.Error("noise cliff detected below MPKI floor")
	}
	// Custom ratio.
	if _, ok := DetectCliff([]float64{8, 5}, 1.5, 0); !ok {
		t.Error("custom ratio 1.5 should flag 8→5")
	}
	if _, ok := DetectCliff(nil, 0, 0); ok {
		t.Error("empty curve produced a cliff")
	}
}

func TestStringers(t *testing.T) {
	if StrongScaling.String() != "strong" || WeakScaling.String() != "weak" {
		t.Error("ScalingMode strings wrong")
	}
	if ScalingMode(9).String() != "ScalingMode(9)" {
		t.Error("unknown mode string wrong")
	}
	if PreCliff.String() != "pre-cliff" || Cliff.String() != "cliff" || PostCliff.String() != "post-cliff" {
		t.Error("Region strings wrong")
	}
	if Region(9).String() != "Region(9)" {
		t.Error("unknown region string wrong")
	}
}

func TestValidate(t *testing.T) {
	good := Input{
		Sizes: []float64{8, 16, 32}, SmallIPC: 100, LargeIPC: 190,
		MPKI: []float64{5, 5, 5}, Mode: StrongScaling,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Input)
	}{
		{"too few sizes", func(in *Input) { in.Sizes = []float64{8} }},
		{"non-positive size", func(in *Input) { in.Sizes = []float64{0, 16, 32} }},
		{"non-increasing", func(in *Input) { in.Sizes = []float64{16, 16, 32} }},
		{"zero small IPC", func(in *Input) { in.SmallIPC = 0 }},
		{"zero large IPC", func(in *Input) { in.LargeIPC = 0 }},
		{"MPKI length", func(in *Input) { in.MPKI = []float64{1} }},
		{"negative MPKI", func(in *Input) { in.MPKI = []float64{5, -1, 5} }},
		{"NaN MPKI", func(in *Input) { in.MPKI = []float64{5, math.NaN(), 5} }},
		{"bad fmem", func(in *Input) { in.FMemLarge = 1.5 }},
	}
	for _, tc := range cases {
		in := good
		tc.mut(&in)
		if err := in.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Weak scaling does not need MPKI.
	weak := good
	weak.MPKI = nil
	weak.Mode = WeakScaling
	if err := weak.Validate(); err != nil {
		t.Errorf("weak scaling without MPKI rejected: %v", err)
	}
}

func TestPredictLinearWorkload(t *testing.T) {
	// Linear scaling, flat miss curve: predictions are proportional.
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 200,
		MPKI: []float64{4, 4, 4, 4, 4},
		Mode: StrongScaling,
	}
	preds, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{400, 800, 1600}
	for i, p := range preds {
		if !approx(p.IPC, want[i], 1e-9) {
			t.Errorf("size %v: IPC = %v, want %v", p.Size, p.IPC, want[i])
		}
		if p.Region != PreCliff {
			t.Errorf("size %v: region = %v, want pre-cliff", p.Size, p.Region)
		}
	}
}

func TestPredictSubLinearCompounds(t *testing.T) {
	// 1.8x per doubling (C = 0.9) and a gradual miss curve: each doubling
	// multiplies by 1.8.
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 180,
		MPKI: []float64{8, 7, 6, 5.2, 4.6},
		Mode: StrongScaling,
	}
	preds, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{180 * 1.8, 180 * 1.8 * 1.8, 180 * 1.8 * 1.8 * 1.8}
	for i, p := range preds {
		if !approx(p.IPC, want[i], 1e-6) {
			t.Errorf("size %v: IPC = %v, want %v", p.Size, p.IPC, want[i])
		}
	}
}

func TestPredictCliffUsesFMem(t *testing.T) {
	// Cliff between 64 and 128 (like the paper's dct): Eq. 3 at 128.
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 198, // 1.98x, C = 0.99
		MPKI:      []float64{8, 8, 8, 7.5, 0.3},
		FMemLarge: 0.75,
		Mode:      StrongScaling,
	}
	preds, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	// 32, 64 pre-cliff; 128 is the cliff.
	if preds[0].Region != PreCliff || preds[1].Region != PreCliff {
		t.Errorf("regions before cliff: %v, %v", preds[0].Region, preds[1].Region)
	}
	if preds[2].Region != Cliff {
		t.Fatalf("128-SM region = %v, want cliff", preds[2].Region)
	}
	// Eq. 3 with the eliminated-miss weighting: the MPKI drop is
	// 7.5 -> 0.3, so r = 0.96 and the removable stall is 0.75*0.96 = 0.72:
	// 198 * (128/16) / (1-0.72) = 5657.14...
	want := 198.0 * 8 / (1 - 0.75*0.96)
	if !approx(preds[2].IPC, want, 1e-6) {
		t.Errorf("cliff IPC = %v, want %v", preds[2].IPC, want)
	}
}

func TestPredictCliffRequiresFMem(t *testing.T) {
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 198,
		MPKI: []float64{8, 8, 8, 7.5, 0.3},
		Mode: StrongScaling,
	}
	_, err := Predict(in)
	if err == nil {
		t.Fatal("cliff without FMemLarge accepted")
	}
	if !strings.Contains(err.Error(), "FMemLarge") {
		t.Errorf("error does not name FMemLarge: %v", err)
	}
}

func TestPredictPostCliffChains(t *testing.T) {
	// Cliff between 32 and 64; 128 chains from the 64-point (Eq. 4).
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 200, // C = 1
		MPKI:      []float64{8, 8, 7.5, 0.3, 0.3},
		FMemLarge: 0.5,
		Mode:      StrongScaling,
	}
	preds, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Region != PreCliff {
		t.Errorf("32-SM region = %v, want pre-cliff", preds[0].Region)
	}
	if preds[1].Region != Cliff {
		t.Errorf("64-SM region = %v, want cliff", preds[1].Region)
	}
	// Eq. 3 at 64 with r = 1-0.3/7.5 = 0.96:
	// 200 * (64/16) / (1-0.5*0.96) = 1538.46...
	wantCliff := 200.0 * 4 / (1 - 0.5*0.96)
	if !approx(preds[1].IPC, wantCliff, 1e-6) {
		t.Errorf("cliff IPC = %v, want %v", preds[1].IPC, wantCliff)
	}
	if preds[2].Region != PostCliff {
		t.Errorf("128-SM region = %v, want post-cliff", preds[2].Region)
	}
	// Eq. 4: the cliff prediction times (128/64) * C^1.
	if !approx(preds[2].IPC, 2*wantCliff, 1e-6) {
		t.Errorf("post-cliff IPC = %v, want %v", preds[2].IPC, 2*wantCliff)
	}
}

func TestPredictCliffBetweenScaleModels(t *testing.T) {
	// Cliff between 8 and 16: the large scale model already measured the
	// post-cliff world, so no f_mem is needed and scaling continues from
	// the large model.
	in := Input{
		Sizes:    []float64{8, 16, 32},
		SmallIPC: 100, LargeIPC: 500, // big jump across the cliff
		MPKI: []float64{8, 0.3, 0.3},
		Mode: StrongScaling,
	}
	preds, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Region != PostCliff {
		t.Errorf("region = %v, want post-cliff", preds[0].Region)
	}
	if preds[0].IPC <= 500 {
		t.Errorf("IPC = %v, want growth beyond the large scale model", preds[0].IPC)
	}
}

func TestPredictWeakIgnoresCliff(t *testing.T) {
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 190,
		MPKI: []float64{8, 8, 8, 7.5, 0.3}, // would be a cliff under strong
		Mode: WeakScaling,
	}
	preds, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.Region != PreCliff {
			t.Errorf("size %v: region = %v, want pre-cliff under weak scaling", p.Size, p.Region)
		}
	}
	// C = 0.95 per doubling.
	want := 190 * 1.9 * 1.9 * 1.9
	if !approx(preds[2].IPC, want, 1e-6) {
		t.Errorf("128-SM IPC = %v, want %v", preds[2].IPC, want)
	}
}

func TestPredictAt(t *testing.T) {
	in := Input{
		Sizes:    []float64{8, 16, 32, 64},
		SmallIPC: 100, LargeIPC: 200,
		MPKI: []float64{4, 4, 4, 4},
		Mode: StrongScaling,
	}
	p, err := PredictAt(in, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.IPC, 800, 1e-9) {
		t.Errorf("PredictAt(64) = %v, want 800", p.IPC)
	}
	if _, err := PredictAt(in, 256); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := PredictAt(Input{}, 64); err == nil {
		t.Error("invalid input accepted")
	}
}

func TestPredictMonotoneInTargetSizeProperty(t *testing.T) {
	// Property: with C in a reasonable band and no cliff, predicted IPC
	// grows with system size.
	f := func(ipcRaw uint16, cRaw uint8) bool {
		small := float64(ipcRaw%500) + 50
		c := 0.6 + float64(cRaw%80)/100 // C in [0.6, 1.4)
		large := small * 2 * c
		in := Input{
			Sizes:    []float64{8, 16, 32, 64, 128},
			SmallIPC: small, LargeIPC: large,
			MPKI: []float64{4, 4, 4, 4, 4},
			Mode: StrongScaling,
		}
		preds, err := Predict(in)
		if err != nil {
			return false
		}
		prev := large
		for _, p := range preds {
			if p.IPC <= prev {
				return false
			}
			prev = p.IPC
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictExactRecoveryProperty(t *testing.T) {
	// Property: if the true law is y = a·x^b (b near 1), the compounding
	// pre-cliff rule recovers it exactly from two points.
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw%50) + 1
		b := 0.7 + float64(bRaw%60)/100 // b in [0.7, 1.3)
		y := func(x float64) float64 { return a * math.Pow(x, b) }
		in := Input{
			Sizes:    []float64{8, 16, 32, 64, 128},
			SmallIPC: y(8), LargeIPC: y(16),
			MPKI: []float64{4, 4, 4, 4, 4},
			Mode: StrongScaling,
		}
		preds, err := Predict(in)
		if err != nil {
			return false
		}
		for _, p := range preds {
			if !approx(p.IPC, y(p.Size), 1e-6*y(p.Size)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

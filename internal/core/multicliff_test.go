package core

import (
	"testing"
)

func TestDetectCliffs(t *testing.T) {
	// Two cliffs: 8→3 and 2.5→0.5.
	cliffs := DetectCliffs([]float64{8, 3, 2.5, 0.5, 0.4}, 0, 0)
	if len(cliffs) != 2 || cliffs[0] != 0 || cliffs[1] != 2 {
		t.Errorf("cliffs = %v, want [0 2]", cliffs)
	}
	if got := DetectCliffs([]float64{8, 7, 6}, 0, 0); len(got) != 0 {
		t.Errorf("gradual curve produced cliffs: %v", got)
	}
}

func TestPredictMultiCliffDelegatesForSingleCliff(t *testing.T) {
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 198,
		MPKI:      []float64{8, 8, 8, 7.5, 0.3},
		FMemLarge: 0.6,
		Mode:      StrongScaling,
	}
	a, err := Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PredictMultiCliff(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("single-cliff divergence at %v: %+v vs %+v", a[i].Size, a[i], b[i])
		}
	}
}

func TestPredictMultiCliffTwoCliffs(t *testing.T) {
	// Cliffs between 16→32 (L2-sized set fits) and 64→128 (full set fits):
	// the paper's three-level-cache scenario.
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 200, // C = 1
		MPKI:      []float64{10, 10, 4, 4, 0.5},
		FMemLarge: 0.6,
		Mode:      StrongScaling,
	}
	preds, err := PredictMultiCliff(in)
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Region != Cliff {
		t.Errorf("32-SM region = %v, want cliff", preds[0].Region)
	}
	// First cliff removes r1 = 1-4/10 = 0.6 of the 0.6 stall: 0.36.
	// IPC(32) = 200*2/(1-0.36) = 625.
	if !approx(preds[0].IPC, 625, 1e-6) {
		t.Errorf("first cliff IPC = %v, want 625", preds[0].IPC)
	}
	// Between cliffs: plain scaling.
	if preds[1].Region == Cliff {
		t.Error("64-SM should not be a cliff")
	}
	if !approx(preds[1].IPC, 1250, 1e-6) {
		t.Errorf("between-cliffs IPC = %v, want 1250", preds[1].IPC)
	}
	// Second cliff: remaining stall 0.24, removes r2 = 1-0.5/4 = 0.875 of
	// it: 0.21. IPC(128) = 1250*2/(1-0.21) = 3164.56...
	if preds[2].Region != Cliff {
		t.Errorf("128-SM region = %v, want cliff", preds[2].Region)
	}
	want := 1250 * 2 / (1 - 0.24*0.875)
	if !approx(preds[2].IPC, want, 1e-6) {
		t.Errorf("second cliff IPC = %v, want %v", preds[2].IPC, want)
	}
}

func TestPredictMultiCliffRequiresFMem(t *testing.T) {
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 200,
		MPKI: []float64{10, 10, 4, 4, 0.5},
		Mode: StrongScaling,
	}
	if _, err := PredictMultiCliff(in); err == nil {
		t.Error("two cliffs without FMemLarge accepted")
	}
}

func TestPredictMultiCliffWeakDelegates(t *testing.T) {
	in := Input{
		Sizes:    []float64{8, 16, 32},
		SmallIPC: 100, LargeIPC: 190,
		Mode: WeakScaling,
	}
	a, _ := Predict(in)
	b, err := PredictMultiCliff(in)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("weak-scaling divergence")
	}
}

func TestPredictMultiCliffStallNeverExhausts(t *testing.T) {
	// Three successive near-total cliffs: removed stall shares must
	// compose to below f_mem, never beyond (prediction stays finite and
	// positive).
	in := Input{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 200,
		MPKI:      []float64{64, 16, 4, 1, 0.25},
		FMemLarge: 0.9,
		Mode:      StrongScaling,
	}
	preds, err := PredictMultiCliff(in)
	if err != nil {
		t.Fatal(err)
	}
	prev := 200.0
	for _, p := range preds {
		if p.IPC <= prev || p.IPC != p.IPC /* NaN guard */ {
			t.Fatalf("prediction not finite/increasing at %v: %v", p.Size, p.IPC)
		}
		prev = p.IPC
	}
}

// Package core implements the paper's primary contribution: GPU scale-model
// performance prediction. Given measured IPC for two proportionally scaled
// scale models and the workload's LLC miss-rate curve, it predicts IPC for
// arbitrarily larger target systems without simulating them.
//
// The model (paper Section V-C) divides the miss-rate curve into three
// regions:
//
//   - Pre-cliff: the curve evolves steadily, so performance keeps scaling
//     the way the scale models scaled. The per-workload correction factor
//     C = (IPC_L/IPC_S)/(L/S) (Eq. 1) captures that trend, and each
//     doubling of system size multiplies performance by 2·C — Eq. 2's
//     "performance continues to scale as it did" assumption, applied per
//     doubling so the workload-specific trend compounds.
//
//   - Cliff: the MPKI drops by more than 2x when capacity doubles — the
//     working set now fits in the LLC. Memory stalls vanish, so the
//     prediction divides out the memory-stall fraction measured on the
//     largest scale model: IPC = IPC_L · T/L · 1/(1−f_mem) (Eq. 3).
//
//   - Post-cliff: only cold misses remain and the curve is flat again, so
//     scaling resumes from the first post-cliff point with the same
//     correction factor (Eq. 4).
//
// Under weak scaling the working set grows with the machine, no cliff can
// occur, and only the pre-cliff rule applies.
package core

import (
	"fmt"
	"math"
)

// ScalingMode selects the workload scenario.
type ScalingMode uint8

const (
	// StrongScaling: fixed workload, system size varies. All three
	// miss-curve regions may apply.
	StrongScaling ScalingMode = iota
	// WeakScaling: workload grows with the system. Only the pre-cliff
	// rule applies and no miss-rate curve is needed.
	WeakScaling
)

// String implements fmt.Stringer.
func (m ScalingMode) String() string {
	switch m {
	case StrongScaling:
		return "strong"
	case WeakScaling:
		return "weak"
	default:
		return fmt.Sprintf("ScalingMode(%d)", uint8(m))
	}
}

// Region classifies where on the miss-rate curve a prediction falls.
type Region uint8

const (
	// PreCliff predictions use Eq. 2.
	PreCliff Region = iota
	// Cliff marks the first size past the miss-rate cliff (Eq. 3).
	Cliff
	// PostCliff predictions chain from the cliff point (Eq. 4).
	PostCliff
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case PreCliff:
		return "pre-cliff"
	case Cliff:
		return "cliff"
	case PostCliff:
		return "post-cliff"
	default:
		return fmt.Sprintf("Region(%d)", uint8(r))
	}
}

// DefaultCliffRatio is the miss-rate drop that marks a cliff: the paper
// defines a cliff as the MPKI reducing by more than 2x when cache capacity
// doubles.
const DefaultCliffRatio = 2.0

// DefaultMinCliffMPKI filters noise: a drop only counts as a cliff when the
// pre-drop MPKI is at least this large, so near-zero curves don't produce
// spurious cliffs.
const DefaultMinCliffMPKI = 0.25

// Input bundles everything the predictor needs.
type Input struct {
	// Sizes lists system sizes (SM or chiplet counts), smallest first.
	// Sizes[0] and Sizes[1] are the two scale models; the remaining
	// entries are prediction targets. Sizes need not double, but the
	// paper's workflow uses doubling sizes.
	Sizes []float64
	// SmallIPC and LargeIPC are the measured IPCs of the two scale
	// models (Sizes[0] and Sizes[1]).
	SmallIPC, LargeIPC float64
	// MPKI is the miss-rate curve sampled at the LLC capacity that
	// corresponds to each entry of Sizes (shared resources scale
	// proportionally, so size identifies capacity). Required for strong
	// scaling; ignored for weak scaling.
	MPKI []float64
	// FMemLarge is the memory-stall fraction measured on the largest
	// scale model, in [0, 1). Required only when a cliff lies beyond the
	// scale models.
	FMemLarge float64
	// Mode selects strong or weak scaling.
	Mode ScalingMode
	// CliffRatio overrides DefaultCliffRatio when > 0.
	CliffRatio float64
	// MinCliffMPKI overrides DefaultMinCliffMPKI when > 0.
	MinCliffMPKI float64
}

// Prediction is the model output for one target size.
type Prediction struct {
	Size   float64
	IPC    float64
	Region Region
}

// CorrectionFactor returns C_sm,L/S (Eq. 1): the deviation of the measured
// scale-model scaling from ideal proportional scaling. C > 1 indicates
// super-linear scaling between the scale models, C < 1 sub-linear.
func CorrectionFactor(smallSize, smallIPC, largeSize, largeIPC float64) float64 {
	return (largeIPC / smallIPC) / (largeSize / smallSize)
}

// DetectCliff scans a miss-rate curve for the first transition where MPKI
// drops by more than ratio when moving to the next (larger) capacity, with
// the pre-drop MPKI at least minMPKI. It returns the index i of the
// transition (the cliff lies between samples i and i+1) and whether one was
// found.
func DetectCliff(mpki []float64, ratio, minMPKI float64) (int, bool) {
	if ratio <= 0 {
		ratio = DefaultCliffRatio
	}
	if minMPKI <= 0 {
		minMPKI = DefaultMinCliffMPKI
	}
	for i := 0; i+1 < len(mpki); i++ {
		if mpki[i] >= minMPKI && mpki[i+1]*ratio < mpki[i] {
			return i, true
		}
	}
	return 0, false
}

// Validate reports the first problem with the input.
func (in Input) Validate() error {
	if len(in.Sizes) < 2 {
		return fmt.Errorf("core: need at least the two scale-model sizes, got %d", len(in.Sizes))
	}
	for i, s := range in.Sizes {
		if s <= 0 {
			return fmt.Errorf("core: size %d is non-positive (%v)", i, s)
		}
		if i > 0 && s <= in.Sizes[i-1] {
			return fmt.Errorf("core: sizes must be strictly increasing at index %d", i)
		}
	}
	if in.SmallIPC <= 0 || in.LargeIPC <= 0 {
		return fmt.Errorf("core: scale-model IPCs must be positive (got %v, %v)", in.SmallIPC, in.LargeIPC)
	}
	if in.Mode == StrongScaling {
		if len(in.MPKI) != len(in.Sizes) {
			return fmt.Errorf("core: strong scaling needs one MPKI per size: %d sizes, %d MPKI",
				len(in.Sizes), len(in.MPKI))
		}
		for i, m := range in.MPKI {
			if m < 0 || math.IsNaN(m) {
				return fmt.Errorf("core: MPKI %d is invalid (%v)", i, m)
			}
		}
	}
	if in.FMemLarge < 0 || in.FMemLarge >= 1 {
		return fmt.Errorf("core: FMemLarge must be in [0, 1), got %v", in.FMemLarge)
	}
	return nil
}

// Predict runs the scale-model prediction for every target size
// (Sizes[2:]). For strong scaling it classifies each target against the
// miss-rate curve and applies the pre-cliff, cliff, or post-cliff rule; for
// weak scaling it applies the pre-cliff rule throughout.
//
// If the miss-rate curve has a cliff beyond the scale models, FMemLarge
// must be set (the paper's tool prompts for it in exactly this case);
// otherwise Predict returns an error naming the workload's need.
func Predict(in Input) ([]Prediction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	S, L := in.Sizes[0], in.Sizes[1]
	c := CorrectionFactor(S, in.SmallIPC, L, in.LargeIPC)

	// extrapolate applies the compounding pre-cliff rule from a base
	// point (size b with IPC y) to target size t:
	// IPC(t) = y · (t/b) · C^log2(t/b).
	extrapolate := func(b, y, t float64) float64 {
		r := t / b
		return y * r * math.Pow(c, math.Log2(r))
	}

	cliffIdx := -1
	if in.Mode == StrongScaling {
		if i, ok := DetectCliff(in.MPKI, in.CliffRatio, in.MinCliffMPKI); ok {
			cliffIdx = i
		}
	}

	out := make([]Prediction, 0, len(in.Sizes)-2)
	// State for post-cliff chaining.
	cliffBaseSize, cliffBaseIPC := 0.0, 0.0
	for k := 2; k < len(in.Sizes); k++ {
		t := in.Sizes[k]
		var p Prediction
		p.Size = t
		switch {
		case cliffIdx < 0 || k <= cliffIdx:
			// No cliff, or target still before the drop: Eq. 2.
			p.Region = PreCliff
			p.IPC = extrapolate(L, in.LargeIPC, t)
		case k == cliffIdx+1:
			// First size past the cliff: Eq. 3.
			p.Region = Cliff
			if cliffIdx >= 1 {
				// Cliff beyond the large scale model: needs the
				// measured memory-stall fraction.
				if in.FMemLarge == 0 {
					return nil, fmt.Errorf("core: miss-rate cliff detected between sizes %v and %v; FMemLarge is required (Eq. 3)",
						in.Sizes[cliffIdx], t)
				}
				// Only the stall caused by misses that the cliff
				// eliminates disappears; the cold misses that
				// remain (post-cliff MPKI over pre-cliff MPKI)
				// keep stalling. This weights Eq. 3 the way the
				// paper's discussion of per-cliff stall
				// components suggests; when the drop is total it
				// reduces to the paper's literal Eq. 3.
				r := 1.0
				if in.MPKI[cliffIdx] > 0 {
					r = 1 - in.MPKI[cliffIdx+1]/in.MPKI[cliffIdx]
				}
				p.IPC = in.LargeIPC * (t / L) / (1 - in.FMemLarge*r)
			} else {
				// Cliff between the scale models themselves:
				// the large scale model already sits past the
				// cliff, so its measurement absorbs the jump.
				p.Region = PostCliff
				p.IPC = extrapolate(L, in.LargeIPC, t)
			}
			cliffBaseSize, cliffBaseIPC = t, p.IPC
		default:
			// Beyond the cliff: Eq. 4 chains from the first
			// post-cliff point with the same correction factor.
			p.Region = PostCliff
			if cliffBaseSize == 0 {
				// Cliff was at or below the large scale model.
				p.IPC = extrapolate(L, in.LargeIPC, t)
			} else {
				p.IPC = extrapolate(cliffBaseSize, cliffBaseIPC, t)
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// PredictAt returns the prediction for one specific target size, which must
// be among Sizes[2:].
func PredictAt(in Input, target float64) (Prediction, error) {
	preds, err := Predict(in)
	if err != nil {
		return Prediction{}, err
	}
	for _, p := range preds {
		if p.Size == target {
			return p, nil
		}
	}
	return Prediction{}, fmt.Errorf("core: target size %v not in input sizes", target)
}

package core

import (
	"fmt"
	"math"
)

// DetectCliffs returns every cliff transition in the miss-rate curve, in
// ascending-capacity order. The paper assumes at most one cliff ("without
// loss of generality") but sketches the multi-cliff extension in its
// discussion section: each cliff eliminates its own share of the memory
// stall. DetectCliffs is the enumeration primitive for that extension.
func DetectCliffs(mpki []float64, ratio, minMPKI float64) []int {
	if ratio <= 0 {
		ratio = DefaultCliffRatio
	}
	if minMPKI <= 0 {
		minMPKI = DefaultMinCliffMPKI
	}
	var out []int
	for i := 0; i+1 < len(mpki); i++ {
		if mpki[i] >= minMPKI && mpki[i+1]*ratio < mpki[i] {
			out = append(out, i)
		}
	}
	return out
}

// PredictMultiCliff generalises Predict to miss-rate curves with any number
// of cliffs — the extension the paper leaves as future work (Section V-D).
// Every cliff transition multiplies the prediction by
// 1/(1 − f_mem·r_i), where r_i is the fraction of the *remaining* miss
// traffic that cliff i eliminates, so the stall shares removed by
// successive cliffs compose; between cliffs the pre-cliff compounding rule
// applies. With zero or one cliff it agrees with Predict exactly.
func PredictMultiCliff(in Input) ([]Prediction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Mode == WeakScaling {
		return Predict(in)
	}
	cliffs := DetectCliffs(in.MPKI, in.CliffRatio, in.MinCliffMPKI)
	if len(cliffs) <= 1 {
		return Predict(in)
	}
	for _, c := range cliffs {
		if c >= 1 {
			if in.FMemLarge == 0 {
				return nil, fmt.Errorf("core: %d miss-rate cliffs detected; FMemLarge is required", len(cliffs))
			}
			break
		}
	}
	S, L := in.Sizes[0], in.Sizes[1]
	c := CorrectionFactor(S, in.SmallIPC, L, in.LargeIPC)
	extrapolate := func(b, y, t float64) float64 {
		r := t / b
		return y * r * math.Pow(c, math.Log2(r))
	}
	isCliff := make(map[int]bool, len(cliffs))
	for _, i := range cliffs {
		isCliff[i] = true
	}
	// Remaining memory-stall budget: each cliff i removes the share of
	// the original stall proportional to the miss traffic it eliminates
	// relative to the curve's starting level.
	out := make([]Prediction, 0, len(in.Sizes)-2)
	baseSize, baseIPC := L, in.LargeIPC
	stallLeft := in.FMemLarge
	for k := 2; k < len(in.Sizes); k++ {
		t := in.Sizes[k]
		var p Prediction
		p.Size = t
		if isCliff[k-1] && k-1 >= 1 {
			// Crossing a cliff between sizes k-1 and k.
			r := 1.0
			if in.MPKI[k-1] > 0 {
				r = 1 - in.MPKI[k]/in.MPKI[k-1]
			}
			removed := stallLeft * r
			p.Region = Cliff
			p.IPC = baseIPC * (t / baseSize) / (1 - removed)
			stallLeft -= removed
		} else if isCliff[k-1] {
			// Cliff between the scale models: already measured.
			p.Region = PostCliff
			p.IPC = extrapolate(baseSize, baseIPC, t)
		} else {
			p.Region = PreCliff
			if len(out) > 0 && out[len(out)-1].Region != PreCliff {
				p.Region = PostCliff
			}
			p.IPC = extrapolate(baseSize, baseIPC, t)
		}
		baseSize, baseIPC = t, p.IPC
		out = append(out, p)
	}
	return out, nil
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAbsPctError(t *testing.T) {
	if got := AbsPctError(110, 100); got != 10 {
		t.Errorf("AbsPctError(110,100) = %v, want 10", got)
	}
	if got := AbsPctError(90, 100); got != 10 {
		t.Errorf("AbsPctError(90,100) = %v, want 10", got)
	}
	if got := AbsPctError(100, 100); got != 0 {
		t.Errorf("exact prediction error = %v, want 0", got)
	}
	if got := AbsPctError(5, 0); !math.IsInf(got, 1) {
		t.Errorf("zero actual should be +Inf, got %v", got)
	}
}

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v, want 2", Mean(xs))
	}
	if Max(xs) != 3 {
		t.Errorf("Max = %v, want 3", Max(xs))
	}
	if Min(xs) != 1 {
		t.Errorf("Min = %v, want 1", Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty slices should yield 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("empty GeoMean should be 0")
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("non-positive GeoMean should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup(10, 2)
	if err != nil || s != 5 {
		t.Errorf("Speedup(10,2) = %v, %v", s, err)
	}
	if _, err := Speedup(0, 1); err == nil {
		t.Error("zero base accepted")
	}
	if _, err := Speedup(1, 0); err == nil {
		t.Error("zero new accepted")
	}
}

func TestBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		mean, mx, mn := Mean(xs), Max(xs), Min(xs)
		return mn <= mean+1e-9 && mean <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package stats provides the small numeric helpers the experiment harness
// uses: absolute percentage errors (the paper's accuracy metric), means,
// maxima, and speedup ratios.
package stats

import (
	"fmt"
	"math"
)

// AbsPctError returns |predicted − actual| / actual × 100, the prediction
// error metric used throughout the paper's evaluation.
func AbsPctError(predicted, actual float64) float64 {
	if actual == 0 {
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual) * 100
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// GeoMean returns the geometric mean of positive values, or 0 for an empty
// slice or any non-positive input.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Speedup returns base/new, the simulation-speedup convention of the
// paper's Figure 7 (cost of simulating the target divided by the cost of
// simulating the scale models).
func Speedup(baseCost, newCost float64) (float64, error) {
	if baseCost <= 0 || newCost <= 0 {
		return 0, fmt.Errorf("stats: costs must be positive (base %v, new %v)", baseCost, newCost)
	}
	return baseCost / newCost, nil
}

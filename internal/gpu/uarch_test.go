package gpu

import (
	"testing"

	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
)

// uarchTestVariants are the non-default microarchitecture cells the
// equivalence guards below run: each axis alone plus everything at once.
var uarchTestVariants = []struct {
	name string
	v    uarch.Variant
}{
	{"two-level", uarch.Variant{Scheduler: uarch.SchedTwoLevel}},
	{"lrr", uarch.Variant{Scheduler: uarch.SchedLRR}},
	{"sectored", uarch.Variant{L1: uarch.L1Sectored}},
	{"deflect", uarch.Variant{NoC: uarch.RouteDeflect}},
	{"iw2", uarch.Variant{IssueWidth: 2}},
	{"all", uarch.Variant{Scheduler: uarch.SchedTwoLevel, L1: uarch.L1Sectored, NoC: uarch.RouteDeflect, IssueWidth: 2}},
}

// TestEventLoopMatchesLegacyUarch extends the bit-identity contract to every
// microarchitecture variant: the event-driven and dense reference loops must
// agree bit for bit no matter which scheduler, L1 fill granularity, routing
// discipline or issue width is simulated.
func TestEventLoopMatchesLegacyUarch(t *testing.T) {
	for _, uc := range uarchTestVariants {
		t.Run(uc.name, func(t *testing.T) {
			cfg := testConfig(8)
			cfg.Uarch = uc.v
			for _, w := range []struct {
				name string
				mk   func() trace.Workload
			}{
				{"stream", func() trace.Workload { return streamWorkload(48, 4, 40) }},
				{"reuse", func() trace.Workload { return reuseWorkload(48, 4, 1<<16, 40, 2) }},
			} {
				ev, err := RunWithOptions(cfg, w.mk(), Options{})
				if err != nil {
					t.Fatalf("%s event loop: %v", w.name, err)
				}
				lg, err := RunWithOptions(cfg, w.mk(), Options{UseLegacyLoop: true})
				if err != nil {
					t.Fatalf("%s legacy loop: %v", w.name, err)
				}
				if ev != lg {
					t.Errorf("%s: stats diverge between loops\nevent  %+v\nlegacy %+v", w.name, ev, lg)
				}
			}
		})
	}
}

// TestShardedMatchesSequentialUarch extends the sharded determinism
// contract to every variant: Shards=N (with and without quantum windows)
// must reproduce the sequential run's Stats bit for bit.
func TestShardedMatchesSequentialUarch(t *testing.T) {
	for _, uc := range uarchTestVariants {
		t.Run(uc.name, func(t *testing.T) {
			cfg := testConfig(16)
			cfg.Uarch = uc.v
			run := func(opt Options) Stats {
				t.Helper()
				st, err := RunWithOptions(cfg, randomTrafficWorkload(32, 2, 25), opt)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			seq := run(Options{})
			for _, shards := range []int{2, 4} {
				for _, quantum := range []int{0, 64} {
					got := run(Options{Shards: shards, Quantum: quantum})
					if got != seq {
						t.Errorf("shards=%d quantum=%d diverges\nsharded    %+v\nsequential %+v", shards, quantum, got, seq)
					}
				}
			}
		})
	}
}

// TestOptionsUarchThreading pins the Options.Uarch override semantics: it
// applies when the config is silent, must not conflict with a non-zero
// cfg.Uarch, and changes simulated timing (a variant is not a no-op).
func TestOptionsUarchThreading(t *testing.T) {
	cfg := testConfig(8)
	viaOpt, err := RunWithOptions(cfg, streamWorkload(48, 4, 40), Options{Uarch: uarch.Variant{NoC: uarch.RouteDeflect}})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(8)
	cfg2.Uarch = uarch.Variant{NoC: uarch.RouteDeflect}
	viaCfg, err := RunWithOptions(cfg2, streamWorkload(48, 4, 40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viaOpt != viaCfg {
		t.Errorf("Options.Uarch and cfg.Uarch disagree\nopt %+v\ncfg %+v", viaOpt, viaCfg)
	}
	base, err := RunWithOptions(testConfig(8), streamWorkload(48, 4, 40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viaOpt == base {
		t.Error("deflect variant produced bit-identical stats to the crossbar baseline; variant not threaded")
	}
	cfg3 := testConfig(8)
	cfg3.Uarch = uarch.Variant{NoC: uarch.RouteXbar}
	if _, err := New(cfg3, streamWorkload(8, 4, 10), Options{Uarch: uarch.Variant{NoC: uarch.RouteDeflect}}); err == nil {
		t.Error("conflicting Options.Uarch and cfg.Uarch accepted")
	}
}

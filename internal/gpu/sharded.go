// Sharded execution mode for the monolithic GPU: the package's SMs are
// partitioned into contiguous groups ("shards"), each driven by its own
// goroutine over a private timing kernel, synchronised at a cycle barrier
// by an internal/parallel pool. Results are bit-identical to the sequential
// event loop — the contract and the determinism argument live in
// docs/PARALLELISM.md. The protocol is the MCM simulator's (see
// internal/chiplet/sharded.go) with one structural difference: the
// monolithic NoC/LLC/DRAM path is a single shared resource domain (one
// bisection server feeding every LLC slice), so there is no per-owner
// parallel replay phase — deferred post-L1 accesses are replayed serially
// by the coordinator at the barrier, in ascending shard id (= ascending
// global SM id, since shards own contiguous SM ranges), which is exactly
// the sequential drain's within-cycle access order. Replaying at the same
// barrier also means wake-up repairs land immediately, before the advance
// decision, instead of next cycle.
//
// Per visited cycle:
//
//  1. Serial: CTA refills, grid barrier, termination, cancellation, cycle
//     limit — the same control flow runEvent runs between Steps.
//  2. Phase A (parallel, per shard): TickCycle on the shard's kernel. An
//     SM access that misses (or bypasses) its private L1 is recorded in
//     the shard's deferred list instead of being resolved, and the issuing
//     warp parks at a provisional far-future wake-up; L1 hits and MSHR
//     merges resolve locally (they touch only the SM's own structures),
//     accruing into shard-local counters.
//  3. Serial: merge issue/live/dirty/counter deltas; replay the deferred
//     accesses against the shared crossbar/LLC/DRAM in ascending shard id,
//     repairing each load's warp wake-up; charge SimEvents; run the
//     warm-up check (FinishCycle runs here, serially, until warm-up
//     settles, so a reset still precedes the triggering cycle's
//     classification exactly as the sequential ordering has it).
//  4. Serial: advance every kernel to the same next cycle — now+1 if
//     anything issued, else the minimum NextPending across shards — or,
//     with Options.Quantum set, open a barrier-free window (below).
//
// # Quantum-relaxed barriers
//
// With Options.Quantum > 0 the coordinator computes, each barrier, a safe
// window bound: the earliest cycle at which ANY warp in the package could
// issue a memory instruction or retire (sm.MemEventBound over every SM,
// scanned in parallel in phase A, plus a serial fold of the cycle's
// just-replayed deferred loads). Before that bound no cross-shard
// interaction of any kind is possible — post-L1 traffic, CTA residency
// changes, grid barriers and warm-up all require a memory event or a
// retirement first — so each shard's kernel runs its own Step loop locally
// (timing.RunWindow) with no barrier until the window ends. Within the
// window the union of the shards' visited-cycle sets equals the sequential
// kernel's visited set, which is what keeps SimEvents and SkippedCycles
// exact (per-shard visited bitmaps are OR'd and popcounted at the window
// barrier); windows are cut short at sampling boundaries and MaxCycles so
// those observations land on the same cycles as sequential runs. Bound
// violations cannot corrupt shared state — a mid-window miss is recorded,
// not applied — and trip a panic at the window barrier.
package gpu

import (
	"context"
	"fmt"
	"math/bits"

	"gpuscale/internal/cache"
	"gpuscale/internal/parallel"
	"gpuscale/internal/sm"
	"gpuscale/internal/timing"
	"gpuscale/internal/trace"
)

// provisionalWake parks a deferred load's warp until the barrier replay
// repairs it. Must sort after any real wake-up; never consulted by the
// advance decision (a deferring cycle always issued).
const provisionalWake = int64(1) << 62

// maxQuantum caps Options.Quantum: it sizes the per-shard visited bitmaps
// (64 words at 4096) and bounds how stale a shard's clock can run ahead of
// the barrier.
const maxQuantum = 4096

// deferredAccess is one post-L1 access recorded during the parallel tick
// phase and replayed serially at the barrier. The issuing shard writes
// every field; only the coordinator reads them.
type deferredAccess struct {
	m       *sm.SM
	f       *cache.MSHRFile
	lu      int // issuing SM, local to the shard's kernel
	warp    int // issuing warp slot; -1 for stores (no wake-up to repair)
	line    uint64
	key     uint64 // MSHR merge key (== line unless the L1 is sectored)
	arrival int64 // issue cycle, pushed past a full MSHR's next completion
	issueAt int64
	load    bool
	bypass  bool
	full    bool
}

// gpuShard is one runner: a contiguous SM group, its private timing kernel
// (unit ids local, 0 = firstSM), arena, and the per-cycle buffers the
// barrier protocol exchanges. It implements timing.Driver over its own SMs
// and sm.ProgramRecycler for their retiring programs.
type gpuShard struct {
	sim     *Simulator
	id      int
	firstSM int
	endSM   int
	tk      *timing.Kernel
	arena   *trace.Arena

	deferred  []deferredAccess
	issued    bool
	issuedD   uint64 // instructions issued this phase, merged into issuedSoFar
	liveDelta int
	ctaDirty  bool
	loads     uint64 // L1-hit load counters, merged at the barrier
	loadLat   uint64
	mshrStall uint64

	// Quantum state: the shard's phase-A window bound, its visited-cycle
	// bitmap over the current window, and its post-window advance candidate.
	bound   int64
	visited []uint64
	cand    int64
}

// buildShards partitions the SMs into n contiguous groups. Contiguity is
// what lets the barrier's ascending-shard-id reduction reproduce the
// sequential kernel's ascending-global-SM drain order.
func (s *Simulator) buildShards(n int) {
	nsm := len(s.sms)
	base, rem := nsm/n, nsm%n
	s.shards = make([]*gpuShard, n)
	s.shardOfSM = make([]*gpuShard, nsm)
	first := 0
	for i := 0; i < n; i++ {
		cnt := base
		if i < rem {
			cnt++
		}
		sh := &gpuShard{sim: s, id: i, firstSM: first, endSM: first + cnt}
		sh.tk = timing.MustNew(timing.Config{Units: cnt, NoSkip: s.opt.DisableEventSkip}, sh)
		sh.arena = trace.NewArena(cnt * s.cfg.WarpsPerSM)
		// An SM issues at most one instruction per cycle, so deferred never
		// outgrows the shard's SM count — the append never reallocates.
		sh.deferred = make([]deferredAccess, 0, cnt)
		if s.quantum > 0 {
			sh.visited = make([]uint64, (s.quantum+63)/64)
		}
		for g := first; g < sh.endSM; g++ {
			s.shardOfSM[g] = sh
			s.ports[g].sh = sh
			s.sms[g].SetRecycler(sh)
		}
		s.shards[i] = sh
		first = sh.endSM
	}
}

// Release implements sm.ProgramRecycler: a shard's retiring programs return
// to the shard's own arena (retirement happens inside the parallel tick
// phase, so a package-wide arena would race).
func (sh *gpuShard) Release(p trace.Program) {
	if sh.sim.kernelAW[sh.sim.kernelIdx] != nil {
		sh.arena.Release(p)
	}
}

// deferAccess records a post-L1 access for barrier replay and returns the
// provisional completion. Called from port.Access, inside the issuing SM's
// Tick, so IssuingWarp identifies the warp whose wake-up the replay must
// repair. Stores get no repair (the SM ignores their completion) but are
// still recorded: their bandwidth and LLC effects must replay in order.
func (sh *gpuShard) deferAccess(p *port, line, key uint64, arrival, now int64, load, bypass, full bool) int64 {
	m := sh.sim.sms[p.smID]
	warp := -1
	if load {
		warp = m.IssuingWarp()
	}
	sh.deferred = append(sh.deferred, deferredAccess{
		m:       m,
		f:       sh.sim.mshrs[p.smID],
		lu:      p.smID - sh.firstSM,
		warp:    warp,
		line:    line,
		key:     key,
		arrival: arrival,
		issueAt: now,
		load:    load,
		bypass:  bypass,
		full:    full,
	})
	return provisionalWake
}

// phaseA is the parallel tick phase: drain this shard's due units at the
// current cycle, then (once warm-up has settled) finish the cycle and, in
// quantum mode, scan this shard's SMs for the window bound.
func (sh *gpuShard) phaseA() {
	sh.issued = sh.tk.TickCycle()
	if sh.sim.shardFinish {
		sh.tk.FinishCycle()
		if sh.sim.quantum > 0 {
			sh.bound = sh.memBound()
		}
	}
}

// memBound is the shard's half of the quantum bound: the earliest cycle at
// or after now+1 at which any of its SMs' warps could issue a memory
// instruction or retire. now+1 is exact for the eventual window start: a
// later start only matters for warps that are ready before it, and after a
// no-issue cycle no warp is ready (a ready warp would have issued), while
// after an issue the next cycle IS now+1. Deferred-load warps sit at the
// provisional far-future wake-up during this scan and are folded in
// serially once the replay stamps their true completions.
func (sh *gpuShard) memBound() int64 {
	from := sh.tk.Now() + 1
	bound := from + int64(sh.sim.quantum) // beyond the cap precision is wasted
	for g := sh.firstSM; g < sh.endSM; g++ {
		if b := sh.sim.sms[g].MemEventBound(from); b < bound {
			bound = b
			if bound <= from {
				break
			}
		}
	}
	return bound
}

// phaseWindow is the parallel quantum phase: run this shard's kernel
// locally over [winBase, winLimit) with no barrier, recording visited
// cycles for the coordinator's event/skip accounting.
func (sh *gpuShard) phaseWindow() {
	words := int(sh.sim.winLimit-sh.sim.winBase+63) >> 6
	vw := sh.visited[:words]
	for i := range vw {
		vw[i] = 0
	}
	sh.cand = sh.tk.RunWindow(sh.sim.winLimit, sh.sim.winBase, vw)
}

// timing.Driver over the shard's own SMs (unit ids local to the shard).

// TickUnit mirrors Simulator.TickUnit with shard-local issue/live/dirty
// accumulation; the coordinator merges the deltas at the barrier.
func (sh *gpuShard) TickUnit(now int64, lu int) timing.Outcome {
	s := sh.sim
	g := sh.firstSM + lu
	m := s.sms[g]
	liveBefore := m.LiveWarps()
	s.mshrs[g].Expire(now)
	k := m.Tick(now, s.ports[g])
	out := timing.Outcome{Wake: timing.NoWake, Kind: uint8(k), Issued: k == sm.Issued}
	if out.Issued {
		sh.issuedD++
	}
	if d := liveBefore - m.LiveWarps(); d > 0 {
		sh.liveDelta += d
		sh.ctaDirty = true
	}
	if m.HasReady() {
		out.Wake = now + 1
	} else if ev, ok := m.NextEvent(); ok {
		out.Wake = ev
	}
	return out
}

// AccrueStall mirrors Simulator.AccrueStall.
func (sh *gpuShard) AccrueStall(lu int, cycles uint64) {
	m := sh.sim.sms[sh.firstSM+lu]
	m.Accrue(m.StallKind(), cycles)
}

// AccrueTick mirrors Simulator.AccrueTick.
func (sh *gpuShard) AccrueTick(lu int, kind uint8) {
	sh.sim.sms[sh.firstSM+lu].Accrue(sm.TickKind(kind), 1)
}

// CycleEnd is a no-op: SimEvents and the warm-up check are the
// coordinator's, run serially at the barrier to match the sequential
// ordering exactly.
func (sh *gpuShard) CycleEnd(now int64) {}

// replayDeferred resolves the cycle's deferred accesses against the shared
// crossbar/LLC/DRAM path, walking shards in ascending id — deferred lists
// are appended in ascending local unit order, so the replay order is
// ascending global SM id, the sequential within-cycle order. Loads get
// their MSHR allocation, warp wake-up repair and kernel reschedule here,
// immediately, so the advance decision below already sees true wake-ups.
// Returns the minimum window bound over the replayed loads' warps (the
// serial fold the parallel phase-A scan cannot see), or its cap when
// quantum mode is off.
func (s *Simulator) replayDeferred() int64 {
	bound := int64(1) << 62
	for _, sh := range s.shards {
		for i := range sh.deferred {
			rec := &sh.deferred[i]
			nSlices := uint64(len(s.llc))
			slice := int(rec.line % nSlices)
			t := s.xbar.Transfer(rec.arrival, slice, s.xferBytes)
			t += int64(s.cfg.LLCHitLatency)
			s.llcAcc++
			sliceLocal := (rec.line / nSlices) << s.lineBits
			if !s.llc[slice].Access(sliceLocal) {
				s.llcMiss++
				t = s.mem.Access(t, rec.line, s.xferBytes)
				t += int64((rec.line * 0x9e3779b9 >> 13) % 13)
			}
			t += int64(s.cfg.NoCBaseLatency)
			if rec.load && !rec.bypass && !rec.full {
				rec.f.Allocate(rec.key, t)
			}
			if rec.load {
				s.loads++
				s.loadLat += uint64(t - rec.issueAt)
				s.loadHist.Observe(float64(t - rec.issueAt))
				rdy := t
				if rdy <= rec.issueAt {
					rdy = rec.issueAt + 1 // sm.Tick's next-cycle clamp
				}
				rec.m.FixPendingWake(rec.warp, rdy)
				// The SM's reported wake had this load parked at the
				// provisional cycle; fold the true completion in. A CTA
				// launch may already have scheduled the unit earlier —
				// never push a wake-up back.
				if w := sh.tk.WakeAt(rec.lu); w == timing.NoWake || rdy < w {
					sh.tk.Reschedule(rec.lu, rdy)
				}
				if s.quantum > 0 {
					if b := rec.m.WarpMemEventBound(rec.warp, rdy); b < bound {
						bound = b
					}
				}
			}
		}
		sh.deferred = sh.deferred[:0]
	}
	return bound
}

// runSharded is the sharded run loop: runEvent's control flow with Step
// replaced by the barrier protocol described at the top of this file.
func (s *Simulator) runSharded(ctx context.Context) (Stats, error) {
	pool := parallel.NewPoolLabeled(len(s.shards), "gpu")
	defer pool.Close()
	phaseA := func(i int) { s.shards[i].phaseA() }
	phaseW := func(i int) { s.shards[i].phaseWindow() }
	s.kernelStart = s.now
	iters := 0
	for {
		iters++
		if iters >= ctxCheckEvery {
			iters = 0
			select {
			case <-ctx.Done():
				return Stats{}, fmt.Errorf("gpu: %q on %s cancelled at cycle %d: %w",
					s.kernels[s.kernelIdx].Name(), s.cfg.Name, s.now, ctx.Err())
			default:
			}
		}
		if s.ctaDirty {
			s.fillCTAs()
		}
		if s.liveTotal == 0 {
			if s.nextCTA >= s.numCTAs {
				if s.stream != nil {
					s.stream.Span(s.kernelStart, s.now, "kernel", s.kernels[s.kernelIdx].Name())
					s.kernelStart = s.now
				}
				if !s.advanceKernel() {
					break
				}
				s.ctaDirty = true
				continue
			}
			s.ctaDirty = true // mirror the dense loop's unconditional refill
		}
		if s.opt.MaxCycles > 0 && s.now > s.opt.MaxCycles {
			return Stats{}, fmt.Errorf("gpu: %q on %s exceeded MaxCycles=%d",
				s.kernels[s.kernelIdx].Name(), s.cfg.Name, s.opt.MaxCycles)
		}
		pool.Run(phaseA)
		issued := false
		nDeferred := 0
		for _, sh := range s.shards {
			issued = issued || sh.issued
			s.issuedSoFar += sh.issuedD
			sh.issuedD = 0
			s.liveTotal -= sh.liveDelta
			sh.liveDelta = 0
			if sh.ctaDirty {
				s.ctaDirty = true
				sh.ctaDirty = false
			}
			s.loads += sh.loads
			s.loadLat += sh.loadLat
			s.mshrStall += sh.mshrStall
			sh.loads, sh.loadLat, sh.mshrStall = 0, 0, 0
			nDeferred += len(sh.deferred)
		}
		winBound := int64(1) << 62
		if nDeferred > 0 {
			winBound = s.replayDeferred()
		}
		s.events += uint64(len(s.sms))
		if !s.shardFinish {
			// Warm-up not settled: the reset check must precede the ticked
			// SMs' cycle classification, so FinishCycle runs here, serially,
			// exactly where the sequential CycleEnd/AccrueTick ordering puts
			// it. Once warm-up is done the check can never fire again and
			// FinishCycle moves into the parallel phase.
			if !s.warmupDone && s.opt.WarmupInstructions > 0 && s.issuedSoFar >= s.opt.WarmupInstructions {
				s.resetStats()
			}
			for _, sh := range s.shards {
				sh.tk.FinishCycle()
			}
			if s.warmupDone || s.opt.WarmupInstructions == 0 {
				s.shardFinish = true
			}
		}
		next := s.now + 1
		if !issued && !s.opt.DisableEventSkip {
			// Event-skip: the earliest pending wake-up across all shards,
			// exactly Step's decision over one global kernel. No provisional
			// wake can be consulted here — a deferring cycle always issued,
			// and its repair has already landed above.
			next = timing.NoWake
			for _, sh := range s.shards {
				if p := sh.tk.NextPending(); p != timing.NoWake && (next == timing.NoWake || p < next) {
					next = p
				}
			}
			if next < s.now+1 {
				next = s.now + 1
			}
		}
		if s.quantum > 0 && s.shardFinish && !s.ctaDirty && s.liveTotal > 0 {
			w := winBound
			for _, sh := range s.shards {
				if sh.bound < w {
					w = sh.bound
				}
			}
			if qcap := next + int64(s.quantum); w > qcap {
				w = qcap
			}
			if s.opt.MaxCycles > 0 && w > s.opt.MaxCycles+1 {
				w = s.opt.MaxCycles + 1 // post-window check aborts exactly as sequential would
			}
			if s.stream != nil && w > s.nextSample {
				w = s.nextSample // samples land on the same cycles as sequential
			}
			if w > next+1 {
				s.runWindow(pool, phaseW, next, w)
				continue
			}
		}
		s.skipped += next - s.now - 1
		for _, sh := range s.shards {
			sh.tk.AdvanceTo(next)
		}
		s.now = next
		if s.stream != nil && s.now >= s.nextSample {
			s.sampleObs()
			for s.nextSample <= s.now {
				s.nextSample += s.sampleEvery
			}
		}
	}
	return s.stats(), nil
}

// runWindow executes one quantum window [base, limit): every shard advances
// to base, runs its kernel locally with no barrier until its own next cycle
// would reach limit, and the coordinator reconciles at the window barrier —
// merging counters, OR-ing the visited bitmaps for the global event/skip
// charge, and advancing every kernel to the minimum candidate, which equals
// the sequential advance decision at the last globally-visited cycle.
func (s *Simulator) runWindow(pool *parallel.Pool, phaseW func(int), base, limit int64) {
	s.winBase, s.winLimit = base, limit
	s.skipped += base - s.now - 1
	for _, sh := range s.shards {
		sh.tk.AdvanceTo(base)
	}
	pool.Run(phaseW)
	g := timing.NoWake
	for _, sh := range s.shards {
		// Tripwires: the bound proved no memory instruction or retirement
		// could occur before limit; any deferred access, L1 traffic or
		// residency change inside the window is a bound bug, detected here
		// before it can affect shared state (deferred accesses are recorded,
		// not applied).
		if len(sh.deferred) != 0 || sh.loads != 0 || sh.mshrStall != 0 || sh.liveDelta != 0 || sh.ctaDirty {
			panic(fmt.Sprintf("gpu: quantum window [%d,%d) violated by shard %d (deferred=%d loads=%d stalls=%d live=%d dirty=%v)",
				base, limit, sh.id, len(sh.deferred), sh.loads, sh.mshrStall, sh.liveDelta, sh.ctaDirty))
		}
		s.issuedSoFar += sh.issuedD
		sh.issuedD = 0
		if sh.cand != timing.NoWake && (g == timing.NoWake || sh.cand < g) {
			g = sh.cand
		}
	}
	words := int(limit-base+63) >> 6
	vis := int64(0)
	for wi := 0; wi < words; wi++ {
		u := uint64(0)
		for _, sh := range s.shards {
			u |= sh.visited[wi]
		}
		vis += int64(bits.OnesCount64(u))
	}
	s.events += uint64(len(s.sms)) * uint64(vis)
	if g == timing.NoWake || g < limit {
		g = limit // unreachable with live warps; keeps the clock monotonic
	}
	s.skipped += g - base - vis
	for _, sh := range s.shards {
		sh.tk.AdvanceTo(g)
	}
	s.now = g
	if s.stream != nil && s.now >= s.nextSample {
		s.sampleObs()
		for s.nextSample <= s.now {
			s.nextSample += s.sampleEvery
		}
	}
}

package gpu

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"gpuscale/internal/chiplet"
	"gpuscale/internal/config"
	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
	"gpuscale/internal/workloads"
)

// hotPathReport accumulates BenchmarkSimulatorHotPath results so TestMain
// can write BENCH_hotpath.json (when the BENCH_HOTPATH_JSON environment
// variable names a path — `make bench` sets it). Keys are
// "<workload>/<loop>", e.g. "bfs-16sm/event".
type hotPathResult struct {
	SimMcyclesPerSec float64 `json:"sim_mcycles_per_sec"`
	SimEventsPerSec  float64 `json:"sim_events_per_sec"`
	HostNsPerRun     float64 `json:"host_ns_per_run"`
	SimCyclesPerRun  int64   `json:"sim_cycles_per_run"`
}

var (
	hotPathMu      sync.Mutex
	hotPathResults = map[string]hotPathResult{}
)

// preOverhaulBaseline records simulated Mcycles per host second measured at
// the commit before the hot-path overhaul (dense run loop, map-based MSHR,
// allocating CTA launches) on the reference machine, for the cells below.
// It exists so BENCH_hotpath.json reports the overhaul's end-to-end speedup
// and not only the event-vs-legacy ratio: the in-tree legacy loop shares
// the SM-scheduler, MSHR and cache improvements, so it is itself ~3x the
// pre-overhaul loop and a misleadingly strong baseline on its own.
var preOverhaulBaseline = map[string]float64{
	"bfs-16sm": 0.2028, // 4.261 s/run before the overhaul
}

// pr3Baseline records the event-loop simulated Mcycles per host second at
// the end of the first hot-path round (the event-driven loop, flat MSHR and
// pooled-launch overhaul), measured interleaved with the round-2 tree on the
// same machine (two alternating rounds of -benchtime 3x per cell; MCM cells
// driven through an equivalent harness built at the round-1 commit) so the
// speedup_vs_pr3 column in BENCH_hotpath.json isolates round 2's
// contribution from machine drift.
var pr3Baseline = map[string]float64{
	"bfs-16sm": 0.6414,
	"bfs-8sm":  1.257,
	"dct-16sm": 0.6374,
	"bfs-4c":   0.08685,
	"dct-4c":   0.04986,
}

// pr4Baseline records the event-loop throughput at the end of the second
// hot-path round (chiplet due-bitsets, bucketed warp queue, batched MSHR
// expiry, workload arena), measured interleaved with the timing-kernel tree
// on the same machine (two alternating rounds per cell from a worktree
// checked out at the round-2 commit) so the speedup_vs_pr4 column isolates
// the shared timing kernel's contribution from machine drift. The MCM cells
// are the ones the kernel extraction was expected to speed up: the chiplet
// loop previously spilled every DRAM wake-up into a binary heap, which the
// kernel's due-wheel now absorbs.
var pr4Baseline = map[string]float64{
	"bfs-16sm": 0.6290,
	"bfs-8sm":  1.3283,
	"dct-16sm": 0.5673,
	"bfs-4c":   0.0768,
	"dct-4c":   0.0510,
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_HOTPATH_JSON"); path != "" && len(hotPathResults) > 0 {
		type out struct {
			// HostCores contextualises the sharded_vs_sequential column:
			// the sharded loop can only beat the sequential one when the
			// host has cores for the shard goroutines to run on. On a
			// single-core host the column measures barrier overhead, not
			// speedup.
			HostCores  int                      `json:"host_cores"`
			Results    map[string]hotPathResult `json:"results"`
			Speedup    map[string]float64       `json:"event_vs_legacy_speedup"`
			Sharded    map[string]float64       `json:"sharded_vs_sequential"`
			Quantum    map[string]float64       `json:"quantum_vs_sequential"`
			VsPR3      map[string]float64       `json:"speedup_vs_pr3"`
			VsPR4      map[string]float64       `json:"speedup_vs_pr4"`
			VsPrePR    map[string]float64       `json:"speedup_vs_pre_overhaul"`
			PR3Mc      map[string]float64       `json:"pr3_sim_mcycles_per_sec"`
			PR4Mc      map[string]float64       `json:"pr4_sim_mcycles_per_sec"`
			BaselineMc map[string]float64       `json:"pre_overhaul_sim_mcycles_per_sec"`
		}
		o := out{
			HostCores:  runtime.NumCPU(),
			Results:    hotPathResults,
			Speedup:    map[string]float64{},
			Sharded:    map[string]float64{},
			Quantum:    map[string]float64{},
			VsPR3:      map[string]float64{},
			VsPR4:      map[string]float64{},
			VsPrePR:    map[string]float64{},
			PR3Mc:      pr3Baseline,
			PR4Mc:      pr4Baseline,
			BaselineMc: preOverhaulBaseline,
		}
		for name, ev := range hotPathResults {
			const suffix = "/event"
			if len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix {
				base := name[:len(name)-len(suffix)]
				if lg, ok := hotPathResults[base+"/legacy"]; ok && lg.SimMcyclesPerSec > 0 {
					o.Speedup[base] = ev.SimMcyclesPerSec / lg.SimMcyclesPerSec
				}
				if sh, ok := hotPathResults[base+"/sharded"]; ok && ev.SimMcyclesPerSec > 0 {
					o.Sharded[base] = sh.SimMcyclesPerSec / ev.SimMcyclesPerSec
				}
				if q, ok := hotPathResults[base+"/quantum"]; ok && ev.SimMcyclesPerSec > 0 {
					o.Quantum[base] = q.SimMcyclesPerSec / ev.SimMcyclesPerSec
				}
				if pr3, ok := pr3Baseline[base]; ok && pr3 > 0 {
					o.VsPR3[base] = ev.SimMcyclesPerSec / pr3
				}
				if pr4, ok := pr4Baseline[base]; ok && pr4 > 0 {
					o.VsPR4[base] = ev.SimMcyclesPerSec / pr4
				}
				if pre, ok := preOverhaulBaseline[base]; ok && pre > 0 {
					o.VsPrePR[base] = ev.SimMcyclesPerSec / pre
				}
			}
		}
		if buf, err := json.MarshalIndent(o, "", "\t"); err == nil {
			_ = os.WriteFile(path, append(buf, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

// BenchmarkSimulatorHotPath is the regression harness for run-loop
// performance: it simulates full kernels and reports simulated megacycles
// and simulation events retired per host second, for the event-driven loop
// and the dense legacy baseline. The paper-motivated case is bfs at 16 SMs —
// a memory-stalled workload where most SMs wait on DRAM most cycles, which
// is exactly where ticking only runnable SMs pays off.
func BenchmarkSimulatorHotPath(b *testing.B) {
	cases := []struct {
		name  string
		sms   int
		bench string
	}{
		{"bfs-16sm", 16, "bfs"},
		{"bfs-8sm", 8, "bfs"},
		{"dct-16sm", 16, "dct"},
	}
	for _, c := range cases {
		wl, err := workloads.ByName(c.bench)
		if err != nil {
			b.Fatal(err)
		}
		cfg := config.MustScale(config.Baseline128(), c.sms)
		// Besides the event/legacy pair, each monolithic cell runs "sharded"
		// (4 SM-group shard goroutines, barrier every cycle) and "quantum"
		// (the same shards with quantum-relaxed barriers) so the
		// sharded_vs_sequential and quantum_vs_sequential columns track the
		// parallel loops' throughput ratios. Both are above 1 only when
		// host_cores allows real parallelism; on a single-core host they
		// measure barrier-protocol overhead instead.
		for _, loop := range []struct {
			name string
			opt  Options
		}{
			{"event", Options{}},
			{"legacy", Options{UseLegacyLoop: true}},
			{"sharded", Options{Shards: 4}},
			{"quantum", Options{Shards: 4, Quantum: 256}},
		} {
			b.Run(c.name+"/"+loop.name, func(b *testing.B) {
				var cycles int64
				var events uint64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					st, err := RunWithOptions(cfg, wl.Workload, loop.opt)
					if err != nil {
						b.Fatal(err)
					}
					cycles += st.Cycles
					events += st.SimEvents
				}
				recordHotPath(b, c.name+"/"+loop.name, cycles, events)
			})
		}
	}

	// Variant cell: bfs on the 8-SM scale model under the two-level warp
	// scheduler (docs/UARCH.md), event and legacy loops, so the committed
	// BENCH_hotpath.json baseline — which cmd/benchcheck judges cell by
	// cell — tracks non-default microarchitecture throughput too. The
	// per-group ready queues exercise a different scheduler hot path than
	// the GTO cells above.
	{
		wl, err := workloads.ByName("bfs")
		if err != nil {
			b.Fatal(err)
		}
		cfg := config.MustScale(config.Baseline128(), 8)
		cfg.Uarch = uarch.Variant{Scheduler: uarch.SchedTwoLevel}
		for _, loop := range []struct {
			name string
			opt  Options
		}{
			{"event", Options{}},
			{"legacy", Options{UseLegacyLoop: true}},
		} {
			b.Run("bfs-8sm-2lvl/"+loop.name, func(b *testing.B) {
				var cycles int64
				var events uint64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					st, err := RunWithOptions(cfg, wl.Workload, loop.opt)
					if err != nil {
						b.Fatal(err)
					}
					cycles += st.Cycles
					events += st.SimEvents
				}
				recordHotPath(b, "bfs-8sm-2lvl/"+loop.name, cycles, events)
			})
		}
	}

	// MCM cells: the same harness over the chiplet simulator, on the
	// 4-chiplet scale model of the paper's 16-chiplet target plus the full
	// 16-chiplet target itself. bfs is the memory-stalled case where the
	// due-bitset fast path pays off; dct adds a reuse-heavy contrast. Each
	// cell also runs "sharded" — one shard goroutine per chiplet — so
	// BENCH_hotpath.json's sharded_vs_sequential column tracks the parallel
	// loop's throughput ratio (above 1 only when host_cores allows real
	// parallelism; on a single-core host the barrier protocol is pure
	// overhead and the ratio measures its cost).
	mcmCases := []struct {
		name  string
		chips int
		bench string
	}{
		{"bfs-4c", 4, "bfs"},
		{"dct-4c", 4, "dct"},
		{"bfs-16c", 16, "bfs"},
	}
	for _, c := range mcmCases {
		wl, err := workloads.ByName(c.bench)
		if err != nil {
			b.Fatal(err)
		}
		cfg := config.MustScaleChiplets(config.Target16Chiplet(), c.chips)
		for _, loop := range []struct {
			name string
			opt  chiplet.Options
		}{
			{"event", chiplet.Options{}},
			{"legacy", chiplet.Options{UseLegacyLoop: true}},
			{"sharded", chiplet.Options{Shards: c.chips}},
			{"quantum", chiplet.Options{Shards: c.chips, Quantum: 256}},
		} {
			b.Run(c.name+"/"+loop.name, func(b *testing.B) {
				var cycles int64
				var events uint64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s, err := chiplet.New(cfg, wl.Workload, loop.opt)
					if err != nil {
						b.Fatal(err)
					}
					st, err := s.Run()
					if err != nil {
						b.Fatal(err)
					}
					cycles += st.Cycles
					events += st.SimEvents
				}
				recordHotPath(b, c.name+"/"+loop.name, cycles, events)
			})
		}
	}
}

// recordHotPath reports the simulated-throughput metrics for one hot-path
// cell and stores them for TestMain's BENCH_hotpath.json summary.
func recordHotPath(b *testing.B, key string, cycles int64, events uint64) {
	secs := b.Elapsed().Seconds()
	if secs <= 0 {
		return
	}
	b.ReportMetric(float64(cycles)/1e6/secs, "simMcyc/s")
	b.ReportMetric(float64(events)/secs, "simEvents/s")
	hotPathMu.Lock()
	hotPathResults[key] = hotPathResult{
		SimMcyclesPerSec: float64(cycles) / 1e6 / secs,
		SimEventsPerSec:  float64(events) / secs,
		HostNsPerRun:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		SimCyclesPerRun:  cycles / int64(b.N),
	}
	hotPathMu.Unlock()
}

// BenchmarkSteadyStateCycle isolates the per-cycle cost of the event-driven
// loop on a synthetic memory-stalled workload without end-of-kernel effects.
func BenchmarkSteadyStateCycle(b *testing.B) {
	cfg := testConfig(16)
	mk := func() trace.Workload { return streamWorkload(256, 4, 100) }
	for _, loop := range []struct {
		name string
		opt  Options
	}{
		{"event", Options{}},
		{"legacy", Options{UseLegacyLoop: true}},
	} {
		b.Run(loop.name, func(b *testing.B) {
			var cycles int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := RunWithOptions(cfg, mk(), loop.opt)
				if err != nil {
					b.Fatal(err)
				}
				cycles += st.Cycles
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(cycles)/1e6/secs, "simMcyc/s")
			}
		})
	}
}

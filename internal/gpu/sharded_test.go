package gpu

import (
	"context"
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
	"gpuscale/internal/workloads"
)

// randomTrafficWorkload scatters every warp's loads uniformly over a shared
// region (deterministically seeded per warp): lines interleave across LLC
// slices and MSHR merges, full-MSHR pushback and DRAM jitter all fire, so
// every shard keeps injecting traffic into the shared post-L1 path — the
// randomized stress cell the race gate runs.
func randomTrafficWorkload(ctas, warps, loads int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "gpu-random-traffic",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warps},
		Factory: func(cta, warp int) trace.Program {
			seed := uint64(cta)<<16 | uint64(warp) | 1
			g := trace.NewRandGen(0, 128, 1<<20, seed)
			return trace.NewPhaseProgram(trace.Phase{N: loads * 2, ComputePer: 1, Gen: g})
		},
	}
}

// TestGPUShardedMatchesSequential is the tentpole's bit-identity contract
// for the monolithic simulator: the same simulation at Shards=1 (sequential
// event loop) and Shards=N, with and without quantum-relaxed barriers, must
// produce identical Stats — across workload shapes, a real benchmark,
// warm-up resets, kernel sequences, sampling, and the no-skip ablation.
func TestGPUShardedMatchesSequential(t *testing.T) {
	bfs, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	cells := []struct {
		name string
		cfg  config.SystemConfig
		mk   func() []trace.Workload
		base Options
	}{
		{"compute/16sm", testConfig(16), func() []trace.Workload {
			return []trace.Workload{computeWorkload(48, 2, 60)}
		}, Options{}},
		{"stream/16sm", testConfig(16), func() []trace.Workload {
			return []trace.Workload{streamWorkload(48, 2, 40)}
		}, Options{}},
		{"reuse/16sm", testConfig(16), func() []trace.Workload {
			return []trace.Workload{reuseWorkload(48, 2, 1<<18, 40, 0)}
		}, Options{}},
		{"random/16sm", testConfig(16), func() []trace.Workload {
			return []trace.Workload{randomTrafficWorkload(32, 2, 25)}
		}, Options{}},
		{"bfs/16sm", testConfig(16), func() []trace.Workload {
			return []trace.Workload{bfs.Workload}
		}, Options{}},
		{"stream/warmup", testConfig(16), func() []trace.Workload {
			return []trace.Workload{streamWorkload(48, 2, 40)}
		}, Options{WarmupInstructions: 1500}},
		{"stream/noskip", testConfig(8), func() []trace.Workload {
			return []trace.Workload{streamWorkload(24, 2, 25)}
		}, Options{DisableEventSkip: true}},
		{"sequence/2kernels", testConfig(16), func() []trace.Workload {
			return []trace.Workload{
				streamWorkload(32, 2, 30),
				reuseWorkload(32, 2, 1<<18, 30, 0),
			}
		}, Options{}},
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			run := func(opt Options) Stats {
				t.Helper()
				s, err := NewSequence(c.cfg, c.mk(), opt)
				if err != nil {
					t.Fatal(err)
				}
				st, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			seq := run(c.base)
			for _, shards := range []int{2, 3, 4} {
				for _, quantum := range []int{0, 64} {
					opt := c.base
					opt.Shards = shards
					opt.Quantum = quantum
					if got := run(opt); got != seq {
						t.Errorf("shards=%d quantum=%d stats diverge\nsharded    %+v\nsequential %+v",
							shards, quantum, got, seq)
					}
				}
			}
		})
	}
}

// TestGPUShardedRandomCrossTrafficStress is the larger randomized cell:
// heavier shared-LLC traffic over more SMs, shard counts that divide the
// SMs evenly and unevenly, quantum on and off — meant to run under the race
// detector (make race) to check the phase discipline on a real workload.
func TestGPUShardedRandomCrossTrafficStress(t *testing.T) {
	cfg := testConfig(16)
	run := func(opt Options) Stats {
		t.Helper()
		st, err := RunWithOptions(cfg, randomTrafficWorkload(64, 2, 30), opt)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(Options{})
	for _, shards := range []int{2, 5, 8, 16} {
		for _, quantum := range []int{0, 256} {
			if got := run(Options{Shards: shards, Quantum: quantum}); got != seq {
				t.Errorf("shards=%d quantum=%d stats diverge\nsharded    %+v\nsequential %+v",
					shards, quantum, got, seq)
			}
		}
	}
}

// TestGPUShardsValidation pins the option edge cases on the monolithic
// simulator: negatives rejected (shards and quantum), legacy+shards
// rejected, counts beyond NumSMs clamped (and still bit-identical), 0/1
// selecting the plain sequential loop, and quantum alone being inert.
func TestGPUShardsValidation(t *testing.T) {
	cfg := testConfig(8)
	w := func() trace.Workload { return streamWorkload(16, 2, 10) }
	if _, err := New(cfg, w(), Options{Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := New(cfg, w(), Options{Quantum: -1}); err == nil {
		t.Error("negative Quantum accepted")
	}
	if _, err := New(cfg, w(), Options{Shards: 2, UseLegacyLoop: true}); err == nil {
		t.Error("Shards with UseLegacyLoop accepted")
	}
	for _, n := range []int{0, 1} {
		s, err := New(cfg, w(), Options{Shards: n, Quantum: 128})
		if err != nil {
			t.Fatal(err)
		}
		if s.shards != nil {
			t.Errorf("Shards=%d built shard runners", n)
		}
	}
	s, err := New(cfg, w(), Options{Shards: 99, Quantum: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.shards) != cfg.NumSMs {
		t.Fatalf("Shards=99 on %d SMs built %d shards", cfg.NumSMs, len(s.shards))
	}
	if s.quantum != maxQuantum {
		t.Fatalf("Quantum=1<<20 clamped to %d, want %d", s.quantum, maxQuantum)
	}
	clamped, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(cfg, w())
	if err != nil {
		t.Fatal(err)
	}
	if clamped != seq {
		t.Errorf("clamped sharded run diverged\nsharded    %+v\nsequential %+v", clamped, seq)
	}
}

// TestGPUShardedMaxCyclesAborts mirrors the sequential MaxCycles abort for
// the sharded loop (quantum windows must not run past the limit), and
// checks context cancellation unwinds the worker pool cleanly.
func TestGPUShardedMaxCyclesAborts(t *testing.T) {
	cfg := testConfig(8)
	s, err := New(cfg, streamWorkload(64, 2, 50), Options{Shards: 2, Quantum: 256, MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("MaxCycles exceeded without error")
	}

	s2, err := New(cfg, streamWorkload(64, 2, 50), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s2.RunContext(ctx); err == nil {
		t.Error("cancelled context did not abort the sharded run")
	}
}

package gpu

import (
	"testing"

	"gpuscale/internal/trace"
)

func TestWarmupDiscardsColdStats(t *testing.T) {
	// Every warp first streams cold data and then loops over an
	// L1-resident window. Without warm-up the miss rates blend both
	// phases; with a warm-up cutoff past the cold phase, the measured L1
	// miss rate collapses toward zero.
	mk := func() trace.Workload {
		return &trace.FuncWorkload{
			WName: "warmup-w",
			Spec:  trace.KernelSpec{NumCTAs: 16, WarpsPerCTA: 2},
			Factory: func(cta, warp int) trace.Program {
				id := uint64(cta*2 + warp)
				cold := &trace.SeqGen{Base: 1<<40 + id*(64*128), Stride: 128, Extent: 64 * 128}
				hotLoop := &trace.SeqGen{Base: id * 512, Stride: 128, Extent: 512}
				return trace.NewPhaseProgram(
					trace.Phase{N: 64, ComputePer: 0, Gen: cold},
					trace.Phase{N: 512, ComputePer: 1, Gen: hotLoop},
				)
			},
		}
	}
	cfg := testConfig(8)
	plain, err := RunWithOptions(cfg, mk(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(16 * 2 * (64 + 512))
	warm, err := RunWithOptions(cfg, mk(), Options{WarmupInstructions: total / 2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.L1MissRate >= plain.L1MissRate {
		t.Errorf("warm-up did not reduce measured L1 miss rate: %.3f vs %.3f",
			warm.L1MissRate, plain.L1MissRate)
	}
	if warm.Cycles >= plain.Cycles {
		t.Errorf("warmed window (%d cycles) should be shorter than the full run (%d)",
			warm.Cycles, plain.Cycles)
	}
	if warm.Instructions >= plain.Instructions {
		t.Errorf("warmed instruction count %d should be below total %d",
			warm.Instructions, plain.Instructions)
	}
}

func TestWarmupZeroIsNoOp(t *testing.T) {
	w := streamWorkload(16, 2, 40)
	a, err := RunWithOptions(testConfig(8), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithOptions(testConfig(8), w, Options{WarmupInstructions: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("WarmupInstructions=0 changed results")
	}
}

func TestWarmupBeyondEndStillReports(t *testing.T) {
	// A warm-up threshold the run never reaches: stats are never reset,
	// results equal the plain run.
	w := streamWorkload(8, 2, 20)
	a, err := RunWithOptions(testConfig(8), w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithOptions(testConfig(8), w, Options{WarmupInstructions: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("unreachable warm-up threshold changed results")
	}
}

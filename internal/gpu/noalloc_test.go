package gpu

import (
	"context"
	"testing"

	"gpuscale/internal/trace"
)

// prebuiltWorkload is a memory-bound stream workload whose NewProgram is
// allocation-free: every warp program is built up front and the factory
// just hands them out. The simulator's launch path is specified to allocate
// nothing beyond the workload's own NewProgram (see fillCTAs), so running
// this workload measures the simulator's allocations alone.
func prebuiltWorkload(ctas, warpsPerCTA, loads int) trace.Workload {
	progs := make([]trace.Program, ctas*warpsPerCTA)
	for cta := 0; cta < ctas; cta++ {
		for w := 0; w < warpsPerCTA; w++ {
			base := uint64(cta*warpsPerCTA+w) * uint64(loads) * 128
			g := &trace.SeqGen{Base: base, Stride: 128, Extent: 1 << 40}
			progs[cta*warpsPerCTA+w] = trace.NewPhaseProgram(trace.Phase{N: loads, Gen: g})
		}
	}
	return &trace.FuncWorkload{
		WName: "prebuilt-stream",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warpsPerCTA},
		Factory: func(cta, warp int) trace.Program {
			return progs[cta*warpsPerCTA+warp]
		},
	}
}

// arenaFactoryWorkload is a memory-bound workload in the idiom of the
// workloads package: its FactoryIn draws the phase buffer and address
// generators from the simulation's arena on every launch, and one generator
// serves two phases of the same program (the camping shape), so retiring a
// warp exercises the arena's dedup-and-pool path. After the first wave has
// been launched and released, every subsequent CTA launch must be served
// entirely from the arena pools.
func arenaFactoryWorkload(ctas, warpsPerCTA, loads int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "arena-stream",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warpsPerCTA},
		FactoryIn: func(a *trace.Arena, cta, warp int) trace.Program {
			id := uint64(cta*warpsPerCTA + warp)
			stream := a.Seq(id*uint64(loads)*128, 0, 128, 1<<40)
			hot := a.Rand(1<<50, 128, 16*128, trace.WarpSeed(7, cta, warp))
			ph := a.Phases(3)
			ph = append(ph,
				trace.Phase{N: loads / 2, Gen: stream},
				trace.Phase{N: 4, ComputePer: 1, Gen: hot},
				trace.Phase{N: loads - loads/2, Gen: stream},
			)
			return a.NewProgram(ph)
		},
	}
}

// TestSteadyStateNoAllocs pins the allocation-free steady state of the run
// loops on the no-observer path. Every simulator is pre-warmed by a first
// RunContext that aborts at MaxCycles — by then each pool, heap, bitset and
// scratch buffer has been sized, and for the arena-factory workload the
// arena pools hold a full resident population of released programs — and
// the measured run resumes it to completion. The remaining kernel work
// (warp ticks, CTA launches through the workload factory, MSHR and cache
// traffic, event-skip bookkeeping, final Stats aggregation) must not
// allocate a single byte. AllocsPerRun is unreliable under the race
// detector, so `make race` runs this via the separate noalloc target.
func TestSteadyStateNoAllocs(t *testing.T) {
	workloads := []struct {
		name  string
		build func() trace.Workload
	}{
		{"prebuilt", func() trace.Workload { return prebuiltWorkload(64, 4, 50) }},
		{"arena-factory", func() trace.Workload { return arenaFactoryWorkload(64, 4, 50) }},
	}
	for _, loop := range []struct {
		name string
		opt  Options
	}{
		{"event", Options{MaxCycles: 500}},
		{"legacy", Options{MaxCycles: 500, UseLegacyLoop: true}},
	} {
		for _, wl := range workloads {
			t.Run(loop.name+"/"+wl.name, func(t *testing.T) {
				const runs = 3
				cfg := testConfig(8)
				// AllocsPerRun invokes the function runs+1 times (one unmeasured
				// warm-up call), and each invocation consumes one simulator.
				sims := make([]*Simulator, 0, runs+1)
				for len(sims) <= runs {
					s, err := New(cfg, wl.build(), loop.opt)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := s.Run(); err == nil {
						t.Fatal("warm-up run completed before MaxCycles; grow the workload")
					}
					s.opt.MaxCycles = 0
					sims = append(sims, s)
				}
				ctx := context.Background()
				var runErr error
				i := 0
				n := testing.AllocsPerRun(runs, func() {
					if _, err := sims[i].RunContext(ctx); err != nil && runErr == nil {
						runErr = err
					}
					i++
				})
				if runErr != nil {
					t.Fatal(runErr)
				}
				if n != 0 {
					t.Fatalf("steady-state simulation allocated %.1f times per run, want 0", n)
				}
			})
		}
	}
}

package gpu

import (
	"fmt"
	"os"
	"testing"

	"gpuscale/internal/workloads"
)

func TestProbeDCT(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip()
	}
	b, _ := workloads.ByName("dct")
	for _, n := range []int{16, 128} {
		st := mustRun(t, testConfig(n), b.Workload)
		fmt.Printf("SMs=%d perSM=%.3f FMem=%.3f MPKI=%.1f L1miss=%.3f lat=%.0f NoCU=%.2f cyc=%d mshrStalls=%d\n",
			n, st.IPC/float64(n), st.FMem, st.LLCMPKI, st.L1MissRate, st.AvgLoadLatency, st.NoCUtilization, st.Cycles, st.MSHRStalls)
	}
}

package gpu

import (
	"testing"

	"gpuscale/internal/trace"
)

// markerWorkload records the order in which its warps are instantiated.
type markerWorkload struct {
	name  string
	spec  trace.KernelSpec
	order *[]string
	n     int
}

func (m *markerWorkload) Name() string             { return m.name }
func (m *markerWorkload) Kernel() trace.KernelSpec { return m.spec }
func (m *markerWorkload) NewProgram(cta, warp int) trace.Program {
	*m.order = append(*m.order, m.name)
	return trace.NewPhaseProgram(trace.Phase{N: m.n})
}

func TestSequenceGridBarrier(t *testing.T) {
	// Kernel B's warps must all be instantiated after kernel A's: the
	// grid barrier means no interleaving of launches across kernels.
	var order []string
	a := &markerWorkload{name: "A", spec: trace.KernelSpec{NumCTAs: 8, WarpsPerCTA: 2}, order: &order, n: 20}
	bk := &markerWorkload{name: "B", spec: trace.KernelSpec{NumCTAs: 4, WarpsPerCTA: 2}, order: &order, n: 20}
	st, err := RunSequence(testConfig(8), []trace.Workload{a, bk})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kernels != 2 {
		t.Errorf("Kernels = %d, want 2", st.Kernels)
	}
	if st.CTAs != 12 {
		t.Errorf("CTAs = %d, want 12", st.CTAs)
	}
	seenB := false
	for _, n := range order {
		if n == "B" {
			seenB = true
		}
		if seenB && n == "A" {
			t.Fatal("kernel A warp launched after kernel B started: barrier violated")
		}
	}
}

func TestSequenceAggregatesInstructions(t *testing.T) {
	k1 := computeWorkload(16, 2, 50)
	k2 := computeWorkload(8, 2, 30)
	st, err := RunSequence(testConfig(8), []trace.Workload{k1, k2})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(16*2*50 + 8*2*30)
	if st.Instructions != want {
		t.Errorf("instructions = %d, want %d", st.Instructions, want)
	}
}

func TestSequenceCachesPersistAcrossKernels(t *testing.T) {
	// Kernel 1 streams a 1 MiB region (fits the 2.125 MiB 8-SM LLC);
	// kernel 2 reads the same region and should hit in the LLC, so the
	// sequence's LLC miss count stays near kernel 1's cold misses.
	mk := func(name string) trace.Workload {
		return &trace.FuncWorkload{
			WName: name,
			Spec:  trace.KernelSpec{NumCTAs: 64, WarpsPerCTA: 2},
			Factory: func(cta, warp int) trace.Program {
				id := uint64(cta*2 + warp)
				g := &trace.SeqGen{Base: id * 8192, Stride: 128, Extent: 8192}
				return trace.NewPhaseProgram(trace.Phase{N: 128, ComputePer: 1, Gen: g})
			},
		}
	}
	st, err := RunSequence(testConfig(8), []trace.Workload{mk("warm"), mk("reuse")})
	if err != nil {
		t.Fatal(err)
	}
	lines := uint64(64 * 2 * 64) // distinct lines touched (8 KiB per warp)
	if st.LLCMisses > lines+lines/10 {
		t.Errorf("LLC misses = %d, want ≈%d (second kernel should hit)", st.LLCMisses, lines)
	}
}

func TestSequencePerKernelOccupancyLimits(t *testing.T) {
	// A sequence mixing an occupancy-limited kernel with an unlimited one
	// must run both to completion.
	limited := &trace.FuncWorkload{
		WName: "limited",
		Spec:  trace.KernelSpec{NumCTAs: 32, WarpsPerCTA: 2, CTAsPerSMLimit: 1},
		Factory: func(cta, warp int) trace.Program {
			return trace.NewPhaseProgram(trace.Phase{N: 10})
		},
	}
	open := computeWorkload(32, 2, 10)
	st, err := RunSequence(testConfig(8), []trace.Workload{limited, open})
	if err != nil {
		t.Fatal(err)
	}
	if st.CTAs != 64 {
		t.Errorf("CTAs = %d, want 64", st.CTAs)
	}
}

func TestSequenceValidation(t *testing.T) {
	if _, err := NewSequence(testConfig(8), nil, Options{}); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := NewSequence(testConfig(8), []trace.Workload{nil}, Options{}); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := NewSequence(testConfig(8), []trace.Workload{
		computeWorkload(4, 2, 10),
		computeWorkload(0, 2, 10),
	}, Options{}); err == nil {
		t.Error("invalid second kernel accepted")
	}
}

func TestSequenceMatchesSingleKernelRun(t *testing.T) {
	// A one-kernel sequence is exactly Run.
	w := streamWorkload(16, 2, 40)
	a, err := Run(testConfig(8), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSequence(testConfig(8), []trace.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("single-kernel sequence differs from Run:\n%+v\n%+v", a, b)
	}
}

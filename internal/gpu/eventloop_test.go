package gpu

import (
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
)

// TestEventLoopMatchesLegacy runs the event-driven loop and the dense
// reference loop over the same (config, workload, options) cells and
// requires every statistic to match bit for bit. This is the in-package
// half of the equivalence guard; the package-level golden-stats snapshot
// additionally pins both against the committed pre-optimisation results.
// horizonConfig is an n-SM config with DRAM latency lowered so blocked-warp
// wake-up distances land on both sides of the timing kernel's 64-cycle
// due-wheel horizon, exercising the wheel/heap hand-off against the dense
// reference.
func horizonConfig(n, dram int) config.SystemConfig {
	cfg := testConfig(n)
	cfg.DRAMLatency = dram
	cfg.Name += "-horizon"
	return cfg
}

func TestEventLoopMatchesLegacy(t *testing.T) {
	cells := []struct {
		name string
		cfg  config.SystemConfig
		w    func() trace.Workload
		opt  Options
	}{
		{"compute/8sm", testConfig(8), func() trace.Workload { return computeWorkload(64, 4, 200) }, Options{}},
		{"stream/8sm", testConfig(8), func() trace.Workload { return streamWorkload(64, 4, 60) }, Options{}},
		{"stream/16sm", testConfig(16), func() trace.Workload { return streamWorkload(96, 4, 60) }, Options{}},
		{"reuse-ctalimit/8sm", testConfig(8), func() trace.Workload { return reuseWorkload(64, 4, 1<<16, 80, 2) }, Options{}},
		{"stream/noskip", testConfig(8), func() trace.Workload { return streamWorkload(48, 4, 40) }, Options{DisableEventSkip: true}},
		{"stream/warmup", testConfig(8), func() trace.Workload { return streamWorkload(64, 4, 60) }, Options{WarmupInstructions: 5000}},
		{"stream/horizon-dram", horizonConfig(8, 52), func() trace.Workload { return streamWorkload(64, 4, 60) }, Options{}},
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			ev, err := RunWithOptions(c.cfg, c.w(), c.opt)
			if err != nil {
				t.Fatalf("event loop: %v", err)
			}
			legacyOpt := c.opt
			legacyOpt.UseLegacyLoop = true
			lg, err := RunWithOptions(c.cfg, c.w(), legacyOpt)
			if err != nil {
				t.Fatalf("legacy loop: %v", err)
			}
			if ev != lg {
				t.Errorf("stats diverge between loops\nevent  %+v\nlegacy %+v", ev, lg)
			}
		})
	}
}

// TestEventLoopMatchesLegacySequence covers the multi-kernel path: the grid
// barrier, cache persistence across kernels, and per-kernel CTA refill all
// go through the event-driven barrier branch.
func TestEventLoopMatchesLegacySequence(t *testing.T) {
	mk := func() []trace.Workload {
		return []trace.Workload{
			streamWorkload(32, 4, 40),
			computeWorkload(32, 4, 100),
			streamWorkload(32, 4, 40),
		}
	}
	ev, err := RunSequenceWithOptions(testConfig(8), mk(), Options{})
	if err != nil {
		t.Fatalf("event loop: %v", err)
	}
	lg, err := RunSequenceWithOptions(testConfig(8), mk(), Options{UseLegacyLoop: true})
	if err != nil {
		t.Fatalf("legacy loop: %v", err)
	}
	if ev != lg {
		t.Errorf("sequence stats diverge between loops\nevent  %+v\nlegacy %+v", ev, lg)
	}
}

package gpu

import (
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
)

// testConfig returns a small, fast GPU configuration.
func testConfig(numSMs int) config.SystemConfig {
	base := config.Baseline128()
	return config.MustScale(base, numSMs)
}

// computeWorkload is embarrassingly parallel compute: linear scaling.
func computeWorkload(ctas, warpsPerCTA, instrs int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "compute",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warpsPerCTA},
		Factory: func(cta, warp int) trace.Program {
			return trace.NewPhaseProgram(trace.Phase{N: instrs})
		},
	}
}

// streamWorkload streams distinct lines per warp: memory-bandwidth bound.
func streamWorkload(ctas, warpsPerCTA, loads int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "stream",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warpsPerCTA},
		Factory: func(cta, warp int) trace.Program {
			base := uint64(cta*warpsPerCTA+warp) * uint64(loads) * 128
			g := &trace.SeqGen{Base: base, Stride: 128, Extent: 1 << 40}
			return trace.NewPhaseProgram(trace.Phase{N: loads, ComputePer: 0, Gen: g})
		},
	}
}

// reuseWorkload loops over a shared working set of wsBytes several times.
// ctaLimit caps per-SM occupancy (0 = unlimited), modelling shared-memory-
// limited kernels.
func reuseWorkload(ctas, warpsPerCTA int, wsBytes uint64, loadsPerWarp, ctaLimit int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "reuse",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warpsPerCTA, CTAsPerSMLimit: ctaLimit},
		Factory: func(cta, warp int) trace.Program {
			// Each warp starts at a different offset in the shared
			// working set so accesses cover it cooperatively.
			start := trace.WarpSeed(1, cta, warp) % wsBytes
			start -= start % 128
			g := &trace.SeqGen{Base: 0, Start: start, Stride: 128, Extent: wsBytes}
			return trace.NewPhaseProgram(trace.Phase{N: loadsPerWarp, ComputePer: 1, Gen: g})
		},
	}
}

func mustRun(t *testing.T, cfg config.SystemConfig, w trace.Workload) Stats {
	t.Helper()
	st, err := Run(cfg, w)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", cfg.Name, w.Name(), err)
	}
	return st
}

func TestNewValidation(t *testing.T) {
	w := computeWorkload(4, 2, 10)
	bad := testConfig(8)
	bad.NumSMs = 0
	if _, err := New(bad, w, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(testConfig(8), nil, Options{}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := New(testConfig(8), computeWorkload(0, 1, 1), Options{}); err == nil {
		t.Error("zero CTAs accepted")
	}
	if _, err := New(testConfig(8), computeWorkload(1, 500, 1), Options{}); err == nil {
		t.Error("CTA wider than SM accepted")
	}
}

func TestComputeWorkloadBasics(t *testing.T) {
	cfg := testConfig(8)
	st := mustRun(t, cfg, computeWorkload(64, 8, 100))
	wantInstr := uint64(64 * 8 * 100)
	if st.Instructions != wantInstr {
		t.Errorf("instructions = %d, want %d", st.Instructions, wantInstr)
	}
	if st.CTAs != 64 {
		t.Errorf("CTAs = %d, want 64", st.CTAs)
	}
	if st.MemInstructions != 0 {
		t.Errorf("mem instructions = %d, want 0", st.MemInstructions)
	}
	if st.IPC <= 0 || st.Cycles <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.FMem != 0 {
		t.Errorf("compute workload FMem = %v, want 0", st.FMem)
	}
}

func TestComputeScalesLinearly(t *testing.T) {
	w := computeWorkload(512, 8, 60)
	ipc8 := mustRun(t, testConfig(8), w).IPC
	ipc32 := mustRun(t, testConfig(32), w).IPC
	ratio := ipc32 / ipc8
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("compute scaling 8→32 SMs = %.2fx, want ≈4x", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig(8)
	w := reuseWorkload(64, 4, 1<<21, 200, 0)
	a := mustRun(t, cfg, w)
	b := mustRun(t, cfg, w)
	if a != b {
		t.Errorf("two runs differ:\n%+v\n%+v", a, b)
	}
}

func TestEventSkipInvariance(t *testing.T) {
	cfg := testConfig(8)
	w := streamWorkload(32, 4, 100)
	fast, err := RunWithOptions(cfg, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunWithOptions(cfg, w, Options{DisableEventSkip: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles != slow.Cycles || fast.Instructions != slow.Instructions ||
		fast.IPC != slow.IPC || fast.FMem != slow.FMem || fast.LLCMisses != slow.LLCMisses {
		t.Errorf("event skip changed results:\nfast: %+v\nslow: %+v", fast, slow)
	}
	if fast.SkippedCycles == 0 {
		t.Error("fast run skipped no cycles; test is vacuous")
	}
	if slow.SkippedCycles != 0 {
		t.Error("slow run skipped cycles despite DisableEventSkip")
	}
}

func TestMemoryBoundWorkloadStalls(t *testing.T) {
	cfg := testConfig(8)
	st := mustRun(t, cfg, streamWorkload(32, 4, 200))
	if st.FMem < 0.2 {
		t.Errorf("streaming workload FMem = %v, want substantial", st.FMem)
	}
	if st.LLCMisses == 0 {
		t.Error("streaming workload should miss in LLC")
	}
	if st.LLCMPKI <= 0 {
		t.Error("MPKI should be positive")
	}
}

func TestWorkingSetCacheabilityAffectsIPC(t *testing.T) {
	// A ~3 MiB shared working set with reuse, occupancy-limited to 3 CTAs
	// (12 warps) per SM: thrashes the 8-SM LLC (2.125 MiB) but fits the
	// 32-SM LLC (8.5 MiB). With too few warps to hide the full DRAM
	// latency, per-SM efficiency improves markedly once the working set
	// becomes LLC-resident — the cliff mechanism behind super-linear
	// scaling.
	ws := uint64(3 << 20)
	w := reuseWorkload(1024, 4, ws, 400, 3)
	st8 := mustRun(t, testConfig(8), w)
	st32 := mustRun(t, testConfig(32), w)
	perSM8 := st8.IPC / 8
	perSM32 := st32.IPC / 32
	if perSM32 <= perSM8*1.05 {
		t.Errorf("per-SM IPC did not improve past the cliff: 8-SM %.3f vs 32-SM %.3f", perSM8, perSM32)
	}
	if st32.LLCMPKI >= st8.LLCMPKI {
		t.Errorf("MPKI should drop when the working set fits: 8-SM %.2f vs 32-SM %.2f",
			st8.LLCMPKI, st32.LLCMPKI)
	}
}

func TestCTAStarvationSubLinear(t *testing.T) {
	// Few CTAs: a 64-SM machine cannot be filled, so scaling 8→64 is
	// clearly sub-linear even for pure compute.
	w := computeWorkload(96, 8, 2000)
	ipc8 := mustRun(t, testConfig(8), w).IPC
	ipc64 := mustRun(t, testConfig(64), w).IPC
	ratio := ipc64 / ipc8
	if ratio > 6.5 {
		t.Errorf("starved workload scaled %.1fx over 8x SMs; want sub-linear", ratio)
	}
	if ratio < 1 {
		t.Errorf("scaling ratio %.2f < 1; larger machine slower", ratio)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := testConfig(8)
	w := streamWorkload(64, 4, 500)
	if _, err := RunWithOptions(cfg, w, Options{MaxCycles: 10}); err == nil {
		t.Error("MaxCycles did not abort")
	}
}

func TestBypassL1GoesToLLC(t *testing.T) {
	// All accesses to one hot line with BypassL1: every access reaches
	// the LLC (no L1 filtering).
	hot := &trace.FuncWorkload{
		WName: "hot",
		Spec:  trace.KernelSpec{NumCTAs: 16, WarpsPerCTA: 2},
		Factory: func(cta, warp int) trace.Program {
			g := &trace.SeqGen{Base: 0, Stride: 128, Extent: 128 * 4}
			return trace.NewPhaseProgram(trace.Phase{N: 50, ComputePer: 0, Gen: g, Flags: trace.BypassL1})
		},
	}
	st := mustRun(t, testConfig(8), hot)
	if st.LLCAccesses != st.MemInstructions {
		t.Errorf("LLC accesses = %d, want %d (all bypass L1)", st.LLCAccesses, st.MemInstructions)
	}
	if st.L1MissRate != 0 {
		t.Errorf("L1 should be untouched, miss rate = %v", st.L1MissRate)
	}
}

func TestCampingSlowsSharedHotData(t *testing.T) {
	// Shared hot lines accessed with BypassL1 from every SM: as SM count
	// grows, traffic to the same few slices grows while per-slice
	// bandwidth is constant → sub-linear scaling.
	mk := func(ctas int) trace.Workload {
		return &trace.FuncWorkload{
			WName: "camping",
			Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: 4},
			Factory: func(cta, warp int) trace.Program {
				g := &trace.SeqGen{Base: 0, Start: uint64(warp) * 128, Stride: 128, Extent: 128 * 8}
				return trace.NewPhaseProgram(trace.Phase{N: 300, ComputePer: 1, Gen: g, Flags: trace.BypassL1})
			},
		}
	}
	ipc8 := mustRun(t, testConfig(8), mk(1024)).IPC
	ipc64 := mustRun(t, testConfig(64), mk(1024)).IPC
	ratio := ipc64 / ipc8
	if ratio > 6 {
		t.Errorf("camping workload scaled %.1fx over 8x SMs; want clearly sub-linear", ratio)
	}
}

func TestStatsAccounting(t *testing.T) {
	st := mustRun(t, testConfig(8), streamWorkload(16, 4, 50))
	if st.LLCMisses > st.LLCAccesses {
		t.Error("more LLC misses than accesses")
	}
	if st.MemInstructions > st.Instructions {
		t.Error("more memory instructions than instructions")
	}
	if st.NoCUtilization < 0 || st.NoCUtilization > 1 {
		t.Errorf("NoC utilization out of range: %v", st.NoCUtilization)
	}
	if st.DRAMUtilization < 0 || st.DRAMUtilization > 1 {
		t.Errorf("DRAM utilization out of range: %v", st.DRAMUtilization)
	}
	if st.SimEvents == 0 {
		t.Error("SimEvents not recorded")
	}
}

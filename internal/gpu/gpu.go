// Package gpu assembles the full GPU timing simulator: SMs with private L1
// caches and MSHRs, a crossbar NoC, an address-interleaved shared LLC, and
// bandwidth-limited memory controllers. It plays the role Accel-Sim plays in
// the paper — the "detailed timing model" box of Figure 3 — producing the
// IPC and f_mem numbers that scale-model prediction consumes.
//
// The timing model is a schedule-ahead cycle simulator: every cycle each SM
// may issue one instruction; a memory instruction's completion time is
// computed immediately by chaining the L1 lookup, NoC transfer (bisection and
// per-slice queueing), LLC lookup, and — on an LLC miss — memory-controller
// queueing plus DRAM latency. When no SM can issue, the simulator skips
// directly to the next warp wake-up, accruing the skipped cycles to each
// SM's stall classification, so long memory stalls cost nothing to simulate.
//
// The run loop is event-driven and built on the shared cycle-advance
// kernel in internal/timing: SMs with near wake-ups sit in the kernel's
// due-wheel (one bitset per cycle over a 64-cycle horizon) and far wake-ups
// in its min-heap, so a cycle touches only the SMs that can issue, promote
// or retire at that cycle. Stalled and idle SMs pay nothing per cycle;
// their stall-classification counters are accrued lazily, one Accrue call
// per stalled interval, when they are next ticked (see AccrueStall for the
// invariant that makes this exact). This Simulator is the kernel's Driver:
// it supplies the per-SM tick (batched MSHR expiry + sm.Tick) and the
// accounting callbacks, while the kernel owns who ticks when. The previous
// tick-every-SM loop is preserved as the dense reference implementation
// (Options.UseLegacyLoop): both loops produce bit-identical Stats, which
// the golden-stats snapshot test and TestEventLoopMatchesLegacy enforce.
package gpu

import (
	"context"
	"fmt"
	"strconv"

	"gpuscale/internal/cache"
	"gpuscale/internal/config"
	"gpuscale/internal/dram"
	"gpuscale/internal/noc"
	"gpuscale/internal/obs"
	"gpuscale/internal/sm"
	"gpuscale/internal/timing"
	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
)

// ctxCheckEvery is how many run-loop iterations pass between context
// cancellation checks: frequent enough that cancellation lands within
// microseconds of host time, rare enough to cost nothing per cycle.
const ctxCheckEvery = 1024

// Options tune a simulation run.
type Options struct {
	// MaxCycles aborts the simulation if it exceeds this many cycles;
	// zero means no limit.
	MaxCycles int64
	// DisableEventSkip forces cycle-by-cycle execution even when every SM
	// is stalled. Results are identical; only the host time differs. It
	// exists for the event-skip ablation benchmark.
	DisableEventSkip bool
	// UseLegacyLoop runs the dense reference loop that ticks every SM every
	// cycle instead of the event-driven scheduler. Results are bit-identical
	// by contract; only host time differs. It exists as the in-process
	// reference for the bit-identity guard and the hot-path regression
	// benchmark, and is not a supported production mode.
	UseLegacyLoop bool
	// WarmupInstructions, when positive, discards all statistics gathered
	// before this many instructions have issued: caches stay warm and
	// queues keep their state, but counters restart, so the reported
	// Stats reflect steady-state behaviour only. Cycles and IPC are then
	// measured over the post-warm-up window.
	WarmupInstructions uint64
	// Recorder attaches the observability layer (metrics registry, event
	// trace, interval sampler). Nil disables every hook: the run loop then
	// pays only nil-check branches and allocates nothing extra.
	Recorder *obs.Recorder
	// SampleEvery overrides the recorder's sampling interval, in simulated
	// cycles, for this run. Zero or negative uses the recorder's default.
	// Ignored when Recorder is nil.
	SampleEvery int64
	// Shards enables sharded execution: the simulated package is split into
	// that many groups — contiguous SM ranges on the monolithic simulator,
	// chiplet groups on MCM (chiplet.Options.Shards) — each driven by its
	// own goroutine with a deterministic cycle barrier between them
	// (docs/PARALLELISM.md). Results are bit-identical to sequential
	// execution at every shard count. 0 or 1 means sequential; values above
	// the SM count are clamped; Shards > 1 is incompatible with
	// UseLegacyLoop.
	Shards int
	// Quantum, when positive and Shards > 1, relaxes the per-cycle barrier:
	// each barrier the shards deterministically compute the earliest cycle
	// any warp could issue a memory instruction or retire, and run
	// barrier-free up to that bound (capped at Quantum cycles per window).
	// Results remain bit-identical — the quantum changes only host-side
	// synchronisation frequency. Ignored unless Shards > 1; capped at 4096.
	Quantum int
	// Uarch selects the microarchitecture variant, overriding a zero
	// cfg.Uarch. Setting both to different values is an error: the
	// configuration's identity must be unambiguous. The zero value defers
	// entirely to the configuration.
	Uarch uarch.Variant
}

// Stats is the result of one simulation run.
type Stats struct {
	// Cycles is the simulated execution time in SM cycles.
	Cycles int64
	// Instructions is the total number of warp instructions issued.
	Instructions uint64
	// MemInstructions counts loads and stores among Instructions.
	MemInstructions uint64
	// IPC is Instructions / Cycles aggregated over all SMs: the
	// performance metric the paper's figures plot.
	IPC float64
	// FMem is the mean over SMs of the memory-stall fraction: cycles in
	// which an SM fetched nothing because every blocked warp waited on
	// memory, divided by all cycles. This is the f_mem of Eq. 3.
	FMem float64
	// L1MissRate is misses/accesses across all private L1s.
	L1MissRate float64
	// L1Accesses and L1Misses count aggregate private-L1 traffic (the raw
	// counts behind L1MissRate).
	L1Accesses uint64
	L1Misses   uint64
	// LLCAccesses and LLCMisses count shared-LLC traffic.
	LLCAccesses uint64
	LLCMisses   uint64
	// LLCMPKI is LLC misses per thousand instructions — the unit of the
	// paper's miss-rate curves.
	LLCMPKI float64
	// NoCUtilization is the bisection busy fraction.
	NoCUtilization float64
	// NoCBytes counts bytes moved through the NoC bisection.
	NoCBytes uint64
	// DRAMUtilization is the mean memory-controller busy fraction.
	DRAMUtilization float64
	// DRAMBytes counts bytes served by the memory controllers.
	DRAMBytes uint64
	// CTAs is the number of thread blocks executed.
	CTAs uint64
	// Kernels is the number of kernels executed (1 unless NewSequence).
	Kernels int
	// MSHRStalls counts accesses delayed by a full MSHR file.
	MSHRStalls uint64
	// SkippedCycles counts cycles elided by event-skip fast-forwarding.
	SkippedCycles int64
	// SimEvents is a host-cost proxy: instructions issued plus per-cycle
	// SM ticks executed. Weak-scaling speedup (paper Fig. 7) is the ratio
	// of target SimEvents to the scale models' total.
	SimEvents uint64
	// AvgLoadLatency is the mean issue-to-data latency of loads in cycles.
	AvgLoadLatency float64
}

// Simulator is a configured GPU plus workload, ready to Run. Use New. A
// simulation may span several kernels executed back to back — a grid
// barrier between kernels, caches persisting across them — as real GPU
// applications do; see NewSequence.
type Simulator struct {
	cfg     config.SystemConfig
	kernels []trace.Workload
	opt     Options

	sms   []*sm.SM
	l1s   []*cache.Cache
	mshrs []*cache.MSHRFile
	llc   []*cache.Cache
	xbar  noc.Network
	mem   *dram.Memory

	lineBits uint
	// Variant-dependent memory-path granularity. In the default line-grain
	// L1 these equal LineSize/lineBits, keeping the access path bit-identical
	// to the pre-variant code; a sectored L1 moves and merges at sector
	// granularity while the LLC stays line-indexed.
	xferBytes   int  // bytes per NoC/DRAM transfer (line or sector)
	mshrBits    uint // address shift for MSHR merge keys
	kernelIdx   int
	nextCTA     int
	numCTAs     int
	warpsPer    int
	ctaLimit    int
	now         int64
	statsSince  int64
	issuedSoFar uint64
	warmupDone  bool
	llcAcc      uint64
	llcMiss     uint64
	loadLat     uint64
	loads       uint64
	mshrStall   uint64
	skipped     int64
	events      uint64

	// Event-driven scheduler state. All of it is preallocated in
	// NewSequence so the run loop allocates nothing in steady state. The
	// wake-up machinery (due-wheel, far-wake heap, lazy accrual intervals)
	// lives in the shared timing kernel; this Simulator is its Driver.
	ports       []*port        // one per SM, reused across RunContext calls
	tk          *timing.Kernel // owns who ticks when; persists across RunContext calls
	legacyKinds []sm.TickKind  // dense-loop per-cycle scratch
	liveTotal   int            // incrementally maintained sum of LiveWarps over SMs
	ctaDirty    bool           // CTA capacity may have changed; fillCTAs must re-scan
	progBuf     []trace.Program
	arena       *trace.Arena
	kernelAW    []trace.ArenaWorkload // per kernel: non-nil if arena-managed

	// Sharded execution state (sharded.go); nil/zero when Options.Shards
	// <= 1. shardFinish gates where FinishCycle runs: serially at the
	// barrier while the warm-up check can still fire, inside the parallel
	// tick phase once it has settled.
	shards      []*gpuShard
	shardOfSM   []*gpuShard
	shardFinish bool
	quantum     int
	winBase     int64 // current quantum window, for the shards' phaseWindow
	winLimit    int64

	// Observability handles; all nil when Options.Recorder is nil, so
	// every hook below degrades to one predictable nil-check branch.
	stream      *obs.Stream
	scope       *obs.Scope
	loadHist    *obs.Histogram
	sampleEvery int64
	nextSample  int64
	kernelStart int64
}

// New validates cfg and workload and builds a single-kernel Simulator.
func New(cfg config.SystemConfig, w trace.Workload, opt Options) (*Simulator, error) {
	return NewSequence(cfg, []trace.Workload{w}, opt)
}

// NewSequence builds a Simulator over a sequence of kernels executed back
// to back: kernel i+1 launches only after every CTA of kernel i has
// retired (a grid barrier), while cache and memory state persist across
// kernels. Per-kernel occupancy limits apply while that kernel runs.
func NewSequence(cfg config.SystemConfig, kernels []trace.Workload, opt Options) (*Simulator, error) {
	if opt.Uarch != (uarch.Variant{}) {
		if cfg.Uarch != (uarch.Variant{}) && cfg.Uarch != opt.Uarch {
			return nil, fmt.Errorf("gpu: Options.Uarch %v conflicts with cfg.Uarch %v", opt.Uarch, cfg.Uarch)
		}
		cfg.Uarch = opt.Uarch
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("gpu: no kernels")
	}
	if opt.Shards < 0 {
		return nil, fmt.Errorf("gpu: Shards must be >= 0, got %d", opt.Shards)
	}
	if opt.Quantum < 0 {
		return nil, fmt.Errorf("gpu: Quantum must be >= 0, got %d", opt.Quantum)
	}
	nShards := opt.Shards
	if nShards > cfg.NumSMs {
		nShards = cfg.NumSMs
	}
	if nShards > 1 && opt.UseLegacyLoop {
		return nil, fmt.Errorf("gpu: Shards > 1 is incompatible with UseLegacyLoop")
	}
	maxWarpsPerCTA := 0
	for _, w := range kernels {
		if w == nil {
			return nil, fmt.Errorf("gpu: nil workload")
		}
		k := w.Kernel()
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("gpu: workload %q: %w", w.Name(), err)
		}
		if k.WarpsPerCTA > cfg.WarpsPerSM {
			return nil, fmt.Errorf("gpu: workload %q CTA has %d warps but SMs hold only %d",
				w.Name(), k.WarpsPerCTA, cfg.WarpsPerSM)
		}
		if k.WarpsPerCTA > maxWarpsPerCTA {
			maxWarpsPerCTA = k.WarpsPerCTA
		}
	}
	k0 := kernels[0].Kernel()
	s := &Simulator{
		cfg:      cfg,
		kernels:  kernels,
		opt:      opt,
		numCTAs:  k0.NumCTAs,
		warpsPer: k0.WarpsPerCTA,
	}
	lb := uint(0)
	for 1<<lb != cfg.LineSize {
		lb++
	}
	s.lineBits = lb
	s.ctaLimit = k0.CTAsPerSMLimit
	variant := cfg.EffectiveUarch()
	s.xferBytes = cfg.LineSize
	s.mshrBits = lb
	sectored := variant.L1 == uarch.L1Sectored
	if sectored {
		// A sectored L1 fills, merges and moves at sector granularity; the
		// LLC stays line-grain (slice selection, indexing, DRAM jitter all
		// keep using the line address).
		s.xferBytes = uarch.SectorBytes
		s.mshrBits = 0
		for 1<<s.mshrBits != uarch.SectorBytes {
			s.mshrBits++
		}
	}
	s.sms = make([]*sm.SM, cfg.NumSMs)
	s.l1s = make([]*cache.Cache, cfg.NumSMs)
	s.mshrs = make([]*cache.MSHRFile, cfg.NumSMs)
	for i := range s.sms {
		m, err := sm.NewVariant(cfg.WarpsPerSM, cfg.MaxCTAsPerSM, cfg.ComputeLatency, variant)
		if err != nil {
			return nil, err
		}
		s.sms[i] = m
		if sectored {
			s.l1s[i] = cache.MustNewSectored(cfg.L1SizeBytes, cfg.L1Ways, cfg.LineSize, uarch.SectorBytes)
		} else {
			s.l1s[i] = cache.MustNew(cfg.L1SizeBytes, cfg.L1Ways, cfg.LineSize)
		}
		s.mshrs[i] = cache.NewMSHRFile(cfg.L1MSHRs)
	}
	s.llc = make([]*cache.Cache, cfg.LLCSlices)
	for i := range s.llc {
		s.llc[i] = cache.MustNew(cfg.LLCSliceSize(), cfg.LLCWays, cfg.LineSize)
	}
	nocCfg := noc.Config{
		BisectionBytesPerCycle: cfg.BytesPerCycle(cfg.NoCBisectionGBps),
		Ports:                  cfg.LLCSlices,
		BaseLatency:            cfg.NoCBaseLatency,
	}
	switch variant.NoC {
	case uarch.RouteXbar:
		s.xbar = noc.MustNew(nocCfg)
	case uarch.RouteDeflect:
		s.xbar = noc.MustNewDeflect(nocCfg)
	default:
		panic("gpu: unreachable routing variant " + string(variant.NoC))
	}
	s.mem = dram.MustNew(dram.Config{
		Controllers:        cfg.MemControllers,
		BytesPerCyclePerMC: cfg.BytesPerCycle(cfg.MemBWPerMCGBps),
		Latency:            cfg.DRAMLatency,
	})
	// Everything the run loop needs is sized here so the hot path never
	// allocates: ports, the timing kernel (due-wheel, far-wake heap, lazy
	// accrual), the dense loop's scratch, and the CTA-launch program buffer
	// (sized to the widest CTA across the kernel sequence).
	s.ports = make([]*port, cfg.NumSMs)
	for i := range s.ports {
		s.ports[i] = &port{sim: s, smID: i}
	}
	s.tk = timing.MustNew(timing.Config{Units: cfg.NumSMs, NoSkip: opt.DisableEventSkip}, s)
	s.legacyKinds = make([]sm.TickKind, cfg.NumSMs)
	s.progBuf = make([]trace.Program, maxWarpsPerCTA)
	// The workload arena recycles programs and address generators across CTA
	// launches. Peak population is the resident-warp limit; retired programs
	// come back via the SMs' recycler hook (Release below), but only for
	// kernels that really draw from the arena — a plain Factory may hand out
	// programs it retains, which must not be pooled behind its back.
	s.arena = trace.NewArena(cfg.NumSMs * cfg.WarpsPerSM)
	s.kernelAW = make([]trace.ArenaWorkload, len(kernels))
	for i, w := range kernels {
		if aw, ok := trace.AsArenaWorkload(w); ok {
			s.kernelAW[i] = aw
		}
	}
	for _, m := range s.sms {
		m.SetRecycler(s)
	}
	if nShards > 1 {
		s.quantum = opt.Quantum
		if s.quantum > maxQuantum {
			s.quantum = maxQuantum
		}
		s.shardFinish = opt.WarmupInstructions == 0
		s.buildShards(nShards)
	}
	s.ctaDirty = true
	if rec := opt.Recorder; rec.Enabled() {
		label := cfg.Name + "/" + kernels[0].Name()
		s.stream = rec.Stream(label)
		// The metrics namespace carries the stream id so that parallel
		// runs of the same (config, workload) pair under one recorder
		// keep separate metrics.
		s.scope = rec.Scope(label + "#" + strconv.FormatInt(s.stream.ID(), 10))
		s.loadHist = s.scope.Histogram("load_latency", obs.LatencyBuckets)
		s.sampleEvery = opt.SampleEvery
		if s.sampleEvery <= 0 {
			s.sampleEvery = rec.SampleInterval()
		}
		if s.sampleEvery <= 0 {
			s.sampleEvery = obs.DefaultSampleInterval
		}
		s.nextSample = s.sampleEvery
	}
	return s, nil
}

// port adapts the simulator's memory hierarchy to one SM's MemPort. Under
// sharded execution sh is the SM's shard and Access defers everything past
// the SM-private L1/MSHR to the barrier replay.
type port struct {
	sim  *Simulator
	smID int
	sh   *gpuShard
}

// Access implements sm.MemPort: L1 (unless bypassed) → MSHR merge → NoC →
// LLC slice → memory controller → DRAM, returning the data-return cycle.
func (p *port) Access(now int64, in trace.Instr) int64 {
	s := p.sim
	line := in.Addr >> s.lineBits
	// In line-grain mode key == line; a sectored L1 merges misses per sector,
	// so distinct sectors of one line miss independently.
	key := in.Addr >> s.mshrBits
	bypass := in.Flags&trace.BypassL1 != 0
	if !bypass {
		if s.l1s[p.smID].Access(in.Addr) {
			if in.Kind == trace.Load {
				// Sharded phase A runs on a worker goroutine: count into
				// shard-local counters, merged at the barrier. The histogram
				// observation is atomic (order of float observations is the
				// one documented exemption from bit-identity).
				if p.sh != nil {
					p.sh.loads++
					p.sh.loadLat += uint64(s.cfg.L1HitLatency)
				} else {
					s.loads++
					s.loadLat += uint64(s.cfg.L1HitLatency)
				}
				s.loadHist.Observe(float64(s.cfg.L1HitLatency))
			}
			return now + int64(s.cfg.L1HitLatency)
		}
	}
	// MSHR reclamation is batched: the run loop Expires this SM's file once
	// per visited cycle, immediately before the Tick that issues this
	// access, so no entry here has a completion cycle ≤ now. Lookup and
	// Full stay exact even if that schedule changes (Lookup skips expired
	// entries; Full reclaims when the file looks full).
	mshr := s.mshrs[p.smID]
	load := in.Kind == trace.Load
	if load && !bypass {
		if comp, ok := mshr.Lookup(now, key); ok {
			return comp // merged into an outstanding miss
		}
	}
	arrival := now
	full := mshr.Full(now)
	if full {
		if nc, ok := mshr.NextCompletion(); ok && nc > arrival {
			arrival = nc
		}
		if p.sh != nil {
			p.sh.mshrStall++
		} else {
			s.mshrStall++
		}
	}
	if p.sh != nil {
		// Everything past the SM-private L1/MSHR touches the shared
		// crossbar/LLC/DRAM path: record it for the barrier's serial replay.
		return p.sh.deferAccess(p, line, key, arrival, now, load, bypass, full)
	}
	nSlices := uint64(len(s.llc))
	slice := int(line % nSlices)
	t := s.xbar.Transfer(arrival, slice, s.xferBytes)
	t += int64(s.cfg.LLCHitLatency)
	s.llcAcc++
	// Index the slice with the slice-select bits stripped, otherwise only
	// 1/nSlices of each slice's sets would ever be used.
	sliceLocal := (line / nSlices) << s.lineBits
	if !s.llc[slice].Access(sliceLocal) {
		s.llcMiss++
		t = s.mem.Access(t, line, s.xferBytes)
		// Deterministic per-line jitter models DRAM bank/row variation
		// and breaks warp convoys that a constant latency would
		// otherwise sustain.
		t += int64((line * 0x9e3779b9 >> 13) % 13)
	}
	t += int64(s.cfg.NoCBaseLatency) // response traversal
	if load && !bypass && !full {
		mshr.Allocate(key, t)
	}
	if load {
		s.loads++
		s.loadLat += uint64(t - now)
		s.loadHist.Observe(float64(t - now))
	}
	return t
}

// fillCTAs launches the current kernel's pending CTAs round-robin onto SMs
// with capacity, honouring the kernel's occupancy limit. Launch capacity
// changes only when a CTA retires or a new kernel starts, so the
// event-driven loop calls this only when ctaDirty is set. The per-CTA
// program slice is pooled in progBuf — LaunchCTA copies the programs into
// warp slots without retaining the slice — so a launch allocates nothing
// beyond the workload's own NewProgram; for arena-managed kernels even the
// programs come from the simulation's arena, making steady-state launches
// allocation-free end to end.
func (s *Simulator) fillCTAs() {
	s.ctaDirty = false
	w := s.kernels[s.kernelIdx]
	aw := s.kernelAW[s.kernelIdx]
	for s.nextCTA < s.numCTAs {
		launched := false
		for i := 0; i < len(s.sms) && s.nextCTA < s.numCTAs; i++ {
			m := s.sms[i]
			if !m.CanAccept(s.warpsPer) {
				continue
			}
			if s.ctaLimit > 0 && m.ResidentCTAs() >= s.ctaLimit {
				continue
			}
			progs := s.progBuf[:s.warpsPer]
			if aw != nil {
				// Sharded runs draw from the target SM's shard arena — the
				// arena its retiring programs are released into (fillCTAs is
				// serial, so touching it here is race-free).
				arena := s.arena
				if s.shardOfSM != nil {
					arena = s.shardOfSM[i].arena
				}
				for wpi := range progs {
					progs[wpi] = aw.NewProgramIn(arena, s.nextCTA, wpi)
				}
			} else {
				for wpi := range progs {
					progs[wpi] = w.NewProgram(s.nextCTA, wpi)
				}
			}
			if !s.opt.UseLegacyLoop {
				// Schedule the SM to act this cycle — launched warps are
				// ready at once. The kernel settles the SM's standing
				// classification (Idle for an empty SM) before residency
				// changes it, and drops any pending far wake-up so the SM
				// lives in exactly one wake structure.
				if sh := s.shardOfSM; sh != nil {
					sh[i].tk.ScheduleNow(i - sh[i].firstSM)
				} else {
					s.tk.ScheduleNow(i)
				}
			}
			m.LaunchCTA(progs)
			s.liveTotal += s.warpsPer
			s.nextCTA++
			launched = true
		}
		if !launched {
			return
		}
	}
}

// Release implements sm.ProgramRecycler: it returns a retired warp's
// program to the simulation's arena, but only while the running kernel is
// arena-managed (the grid barrier guarantees a kernel's last retirement
// precedes the next kernel's first launch, so kernelIdx is always the
// retiring program's kernel).
func (s *Simulator) Release(p trace.Program) {
	if s.kernelAW[s.kernelIdx] != nil {
		s.arena.Release(p)
	}
}

// advanceKernel moves to the next kernel after a grid barrier, returning
// false when the sequence is exhausted.
func (s *Simulator) advanceKernel() bool {
	if s.kernelIdx+1 >= len(s.kernels) {
		return false
	}
	s.kernelIdx++
	k := s.kernels[s.kernelIdx].Kernel()
	s.nextCTA = 0
	s.numCTAs = k.NumCTAs
	s.warpsPer = k.WarpsPerCTA
	s.ctaLimit = k.CTAsPerSMLimit
	return true
}

// Run executes the workload to completion and returns the statistics.
func (s *Simulator) Run() (Stats, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run honouring context cancellation: the run loop checks
// ctx every ctxCheckEvery iterations and aborts with ctx's error, so a
// cancelled sweep stops its in-flight simulations, not just unstarted ones.
func (s *Simulator) RunContext(ctx context.Context) (Stats, error) {
	if s.opt.UseLegacyLoop {
		return s.runLegacy(ctx)
	}
	if s.shards != nil {
		return s.runSharded(ctx)
	}
	return s.runEvent(ctx)
}

// flushAllAccruals settles every SM's counters up to s.now so aggregate
// statistics (stats, the observability registry) read exactly as if every
// cycle had been accrued eagerly. No-op under the legacy loop, whose
// accrual already is eager.
func (s *Simulator) flushAllAccruals() {
	if s.opt.UseLegacyLoop {
		return
	}
	if s.shards != nil {
		for _, sh := range s.shards {
			sh.tk.FlushAll()
		}
		return
	}
	s.tk.FlushAll()
}

// TickUnit implements timing.Driver: one due SM's visit — batched MSHR
// expiry (reclaim completed entries before any Access this Tick can
// issue), the SM tick itself, and retirement bookkeeping. The returned
// Outcome carries the SM's next wake-up for the kernel's due-wheel; NoWake
// means the SM is idle and stays unscheduled until a CTA launch
// ScheduleNows it.
func (s *Simulator) TickUnit(now int64, i int) timing.Outcome {
	m := s.sms[i]
	liveBefore := m.LiveWarps()
	s.mshrs[i].Expire(now)
	k := m.Tick(now, s.ports[i])
	out := timing.Outcome{Wake: timing.NoWake, Kind: uint8(k), Issued: k == sm.Issued}
	if out.Issued {
		s.issuedSoFar++
	}
	if d := liveBefore - m.LiveWarps(); d > 0 {
		s.liveTotal -= d
		// Any warp retirement can flip CanAccept (it checks liveWarps, not
		// just CTA slots), so re-scan for launches even when no whole CTA
		// completed.
		s.ctaDirty = true
	}
	if m.HasReady() {
		out.Wake = now + 1
	} else if ev, ok := m.NextEvent(); ok {
		out.Wake = ev
	}
	return out
}

// AccrueStall implements timing.Driver: it settles one SM's standing
// classification over a whole non-ticked interval in a single Accrue call.
//
// Exactness invariant: between two ticks of an SM no warp is ready and no
// promotion is due, so liveWarps and blockedMem — the only inputs to the
// classification — cannot change (they change only inside Tick and
// LaunchCTA, and ScheduleNow flushes before a launch changes them).
// StallKind() at flush time therefore equals the classification Tick would
// have returned at every cycle of the interval.
func (s *Simulator) AccrueStall(i int, cycles uint64) {
	s.sms[i].Accrue(s.sms[i].StallKind(), cycles)
}

// AccrueTick implements timing.Driver: a ticked SM's own cycle gets the
// classification its Tick returned.
func (s *Simulator) AccrueTick(i int, kind uint8) {
	s.sms[i].Accrue(sm.TickKind(kind), 1)
}

// CycleEnd implements timing.Driver. The dense loop charges one simulation
// event per SM per visited cycle, ticked or not; SimEvents is a host-cost
// proxy for the *modelled* simulator and must not depend on the loop used.
// The warm-up check runs here, before the kernel accrues the ticked SMs'
// cycle, so the triggering cycle's classification lands in the
// post-warm-up window exactly as the dense loop orders it.
func (s *Simulator) CycleEnd(now int64) {
	s.events += uint64(len(s.sms))
	if !s.warmupDone && s.opt.WarmupInstructions > 0 && s.issuedSoFar >= s.opt.WarmupInstructions {
		s.resetStats()
	}
}

// runEvent is the event-driven run loop: a thin driver over the timing
// kernel, which per simulated cycle touches only the SMs whose wake-up is
// due, in ascending SM order, preserving the dense reference loop's
// shared-resource access order and therefore its bit-exact results. This
// loop keeps only the workload-facing control flow: CTA refills, the grid
// barrier between kernels, cancellation, cycle limits and sampling.
func (s *Simulator) runEvent(ctx context.Context) (Stats, error) {
	s.kernelStart = s.now
	iters := 0
	for {
		iters++
		if iters >= ctxCheckEvery {
			iters = 0
			select {
			case <-ctx.Done():
				return Stats{}, fmt.Errorf("gpu: %q on %s cancelled at cycle %d: %w",
					s.kernels[s.kernelIdx].Name(), s.cfg.Name, s.now, ctx.Err())
			default:
			}
		}
		if s.ctaDirty {
			s.fillCTAs()
		}
		if s.liveTotal == 0 {
			if s.nextCTA >= s.numCTAs {
				if s.stream != nil {
					s.stream.Span(s.kernelStart, s.now, "kernel", s.kernels[s.kernelIdx].Name())
					s.kernelStart = s.now
				}
				if !s.advanceKernel() {
					break
				}
				s.ctaDirty = true
				continue
			}
			// Unreachable in practice — an idle SM always accepts a CTA —
			// but mirror the dense loop: keep trying to launch while the
			// idle cycles tick by.
			s.ctaDirty = true
		}
		if s.opt.MaxCycles > 0 && s.now > s.opt.MaxCycles {
			return Stats{}, fmt.Errorf("gpu: %q on %s exceeded MaxCycles=%d",
				s.kernels[s.kernelIdx].Name(), s.cfg.Name, s.opt.MaxCycles)
		}
		s.tk.Step()
		s.now = s.tk.Now()
		if s.stream != nil && s.now >= s.nextSample {
			s.sampleObs()
			for s.nextSample <= s.now {
				s.nextSample += s.sampleEvery
			}
		}
	}
	return s.stats(), nil
}

// runLegacy is the dense reference loop: every SM ticks every visited
// cycle. It is retained verbatim as the executable specification the
// event-driven loop is checked against (TestEventLoopMatchesLegacy, the
// golden-stats snapshot, BenchmarkSimulatorHotPath's speedup baseline).
func (s *Simulator) runLegacy(ctx context.Context) (Stats, error) {
	kinds := s.legacyKinds // same length as sms; reused as scratch
	s.fillCTAs()
	s.kernelStart = s.now
	iters := 0
	for {
		iters++
		if iters >= ctxCheckEvery {
			iters = 0
			select {
			case <-ctx.Done():
				return Stats{}, fmt.Errorf("gpu: %q on %s cancelled at cycle %d: %w",
					s.kernels[s.kernelIdx].Name(), s.cfg.Name, s.now, ctx.Err())
			default:
			}
		}
		live := 0
		for _, m := range s.sms {
			live += m.LiveWarps()
		}
		if live == 0 && s.nextCTA >= s.numCTAs {
			if s.stream != nil {
				s.stream.Span(s.kernelStart, s.now, "kernel", s.kernels[s.kernelIdx].Name())
				s.kernelStart = s.now
			}
			if !s.advanceKernel() {
				break
			}
			s.fillCTAs()
			continue
		}
		if s.opt.MaxCycles > 0 && s.now > s.opt.MaxCycles {
			return Stats{}, fmt.Errorf("gpu: %q on %s exceeded MaxCycles=%d",
				s.kernels[s.kernelIdx].Name(), s.cfg.Name, s.opt.MaxCycles)
		}
		issued := false
		for i, m := range s.sms {
			s.mshrs[i].Expire(s.now) // batched expiry, as in the event loop
			kinds[i] = m.Tick(s.now, s.ports[i])
			if kinds[i] == sm.Issued {
				issued = true
				s.issuedSoFar++
			}
			s.events++
		}
		if !s.warmupDone && s.opt.WarmupInstructions > 0 && s.issuedSoFar >= s.opt.WarmupInstructions {
			s.resetStats()
		}
		if issued || s.opt.DisableEventSkip {
			for i, m := range s.sms {
				m.Accrue(kinds[i], 1)
			}
			s.now++
		} else {
			// Every SM stalled: skip to the earliest wake-up.
			next := int64(-1)
			for _, m := range s.sms {
				if ev, ok := m.NextEvent(); ok && (next < 0 || ev < next) {
					next = ev
				}
			}
			if next <= s.now {
				next = s.now + 1
			}
			w := uint64(next - s.now)
			for i, m := range s.sms {
				m.Accrue(kinds[i], w)
			}
			s.skipped += int64(w) - 1
			s.now = next
		}
		if s.stream != nil && s.now >= s.nextSample {
			s.sampleObs()
			for s.nextSample <= s.now {
				s.nextSample += s.sampleEvery
			}
		}
		s.fillCTAs()
	}
	return s.stats(), nil
}

// resetStats discards everything measured so far (the warm-up window)
// while leaving caches, queues and resident warps untouched.
func (s *Simulator) resetStats() {
	s.warmupDone = true
	s.statsSince = s.now
	for _, m := range s.sms {
		m.ResetStats()
	}
	// Event-driven loop: discard any un-flushed accrual interval that
	// precedes the reset. SMs ticked this cycle already sit at now+1 —
	// pulling them back down would double-count the triggering cycle, so
	// the kernel only raises floors, never lowers them.
	if s.shards != nil {
		for _, sh := range s.shards {
			sh.tk.RaiseAccrualFloor()
			sh.tk.ResetSkipped()
		}
	} else {
		s.tk.RaiseAccrualFloor()
	}
	for _, c := range s.l1s {
		c.ResetStats()
	}
	for _, c := range s.llc {
		c.ResetStats()
	}
	s.xbar.ResetStats()
	s.mem.ResetStats()
	s.llcAcc, s.llcMiss = 0, 0
	s.loads, s.loadLat = 0, 0
	s.mshrStall = 0
	s.skipped = 0
	s.tk.ResetSkipped()
	s.events = 0
	s.loadHist.Reset()
	if s.stream != nil {
		s.stream.Instant(s.now, "sim", "warmup-reset")
		s.kernelStart = s.now
	}
}

// sampleObs takes one interval-sampler snapshot — occupancy, queue depths,
// bandwidth utilisation — and refreshes the metrics registry. Called only
// when a recorder is attached.
func (s *Simulator) sampleObs() {
	s.flushAllAccruals()
	elapsed := s.now - s.statsSince
	liveWarps, mshrOut := 0, 0
	var instr uint64
	for i, m := range s.sms {
		liveWarps += m.LiveWarps()
		mshrOut += s.mshrs[i].Outstanding()
		instr += m.Stats().Instructions
	}
	ipc := 0.0
	if elapsed > 0 {
		ipc = float64(instr) / float64(elapsed)
	}
	s.stream.Sample(s.now, map[string]float64{
		"occupancy":        float64(liveWarps) / float64(len(s.sms)*s.cfg.WarpsPerSM),
		"ipc":              ipc,
		"mshr_outstanding": float64(mshrOut),
		"noc_util":         s.xbar.BisectionUtilization(elapsed),
		"noc_backlog":      s.xbar.MaxPortBacklog(s.now),
		"dram_util":        s.mem.Utilization(elapsed),
		"dram_backlog":     s.mem.MaxBacklog(s.now),
	})
	s.publishObs()
}

// publishObs stores the simulation's per-component metrics into the
// recorder's registry. All totals come from the same counters stats()
// reads and use Store semantics, so after a run the registry agrees
// exactly with the returned Stats no matter how often it was refreshed
// (including across a warm-up reset). No-op without a recorder.
func (s *Simulator) publishObs() {
	if s.scope == nil {
		return
	}
	elapsed := s.now - s.statsSince
	var l1Hits, l1Misses uint64
	smScope := s.scope.Sub("sm")
	l1Scope := s.scope.Sub("l1")
	mshrScope := s.scope.Sub("mshr")
	for i, m := range s.sms {
		id := strconv.Itoa(i)
		m.PublishObs(smScope.Sub(id))
		s.l1s[i].PublishObs(l1Scope.Sub(id))
		s.mshrs[i].PublishObs(mshrScope.Sub(id))
		l1Hits += s.l1s[i].Hits()
		l1Misses += s.l1s[i].Misses()
	}
	llcScope := s.scope.Sub("llc")
	for i, c := range s.llc {
		c.PublishObs(llcScope.Sub(strconv.Itoa(i)))
	}
	s.xbar.PublishObs(s.scope.Sub("noc"), elapsed, s.now)
	s.mem.PublishObs(s.scope.Sub("dram"), elapsed, s.now)
	s.scope.Counter("l1/accesses").Store(l1Hits + l1Misses)
	s.scope.Counter("l1/misses").Store(l1Misses)
	s.scope.Counter("llc/accesses").Store(s.llcAcc)
	s.scope.Counter("llc/misses").Store(s.llcMiss)
	s.scope.Counter("mshr/stalls").Store(s.mshrStall)
}

func (s *Simulator) stats() Stats {
	s.flushAllAccruals()
	var st Stats
	st.Cycles = s.now - s.statsSince
	var fmemSum float64
	var l1Hits, l1Misses uint64
	for i, m := range s.sms {
		ss := m.Stats()
		st.Instructions += ss.Instructions
		st.MemInstructions += ss.MemInstructions
		st.CTAs += ss.CTAsCompleted
		fmemSum += ss.FMem()
		l1Hits += s.l1s[i].Hits()
		l1Misses += s.l1s[i].Misses()
	}
	if st.Cycles > 0 {
		st.IPC = float64(st.Instructions) / float64(st.Cycles)
	}
	st.FMem = fmemSum / float64(len(s.sms))
	if l1Hits+l1Misses > 0 {
		st.L1MissRate = float64(l1Misses) / float64(l1Hits+l1Misses)
	}
	st.L1Accesses = l1Hits + l1Misses
	st.L1Misses = l1Misses
	st.LLCAccesses = s.llcAcc
	st.LLCMisses = s.llcMiss
	if st.Instructions > 0 {
		st.LLCMPKI = float64(s.llcMiss) / (float64(st.Instructions) / 1000)
	}
	st.NoCUtilization = s.xbar.BisectionUtilization(st.Cycles)
	st.NoCBytes = s.xbar.TotalBytes()
	st.DRAMUtilization = s.mem.Utilization(st.Cycles)
	st.DRAMBytes = s.mem.TotalBytes()
	st.Kernels = s.kernelIdx + 1
	st.MSHRStalls = s.mshrStall
	if s.loads > 0 {
		st.AvgLoadLatency = float64(s.loadLat) / float64(s.loads)
	}
	if s.shards != nil {
		// The coordinator charges skips globally (per-cycle advances plus the
		// quantum windows' visited-count formula); the shard kernels' own
		// counters cover only shard-local advances and are not comparable.
		st.SkippedCycles = s.skipped
	} else {
		st.SkippedCycles = s.skipped + s.tk.Skipped()
	}
	st.SimEvents = s.events + st.Instructions
	// Final registry refresh so the published totals match the Stats just
	// computed from the same counters.
	s.publishObs()
	return st
}

// Run is the one-call convenience API: simulate workload w on cfg.
func Run(cfg config.SystemConfig, w trace.Workload) (Stats, error) {
	s, err := New(cfg, w, Options{})
	if err != nil {
		return Stats{}, err
	}
	return s.Run()
}

// RunWithOptions is Run with explicit Options.
func RunWithOptions(cfg config.SystemConfig, w trace.Workload, opt Options) (Stats, error) {
	s, err := New(cfg, w, opt)
	if err != nil {
		return Stats{}, err
	}
	return s.Run()
}

// RunSequence simulates several kernels back to back (grid barriers
// between kernels, caches persisting across them) and returns the
// aggregate statistics.
func RunSequence(cfg config.SystemConfig, kernels []trace.Workload) (Stats, error) {
	return RunSequenceWithOptions(cfg, kernels, Options{})
}

// RunSequenceWithOptions is RunSequence with explicit Options.
func RunSequenceWithOptions(cfg config.SystemConfig, kernels []trace.Workload, opt Options) (Stats, error) {
	s, err := NewSequence(cfg, kernels, opt)
	if err != nil {
		return Stats{}, err
	}
	return s.Run()
}

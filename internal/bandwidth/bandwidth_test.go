package bandwidth

import (
	"testing"
	"testing/quick"
)

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewServer(-5); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestScheduleIdleServer(t *testing.T) {
	s := MustNewServer(128) // 128 B/cycle: one line per cycle
	if got := s.Schedule(100, 128); got != 101 {
		t.Errorf("departure = %d, want 101", got)
	}
}

func TestScheduleQueueing(t *testing.T) {
	s := MustNewServer(64) // half a line per cycle
	d1 := s.Schedule(0, 128)
	d2 := s.Schedule(0, 128)
	d3 := s.Schedule(0, 128)
	if d1 != 2 || d2 != 4 || d3 != 6 {
		t.Errorf("departures = %d,%d,%d, want 2,4,6", d1, d2, d3)
	}
}

func TestScheduleIdleGapResetsClock(t *testing.T) {
	s := MustNewServer(128)
	s.Schedule(0, 128) // departs at 1
	if got := s.Schedule(1000, 128); got != 1001 {
		t.Errorf("after idle gap, departure = %d, want 1001", got)
	}
}

func TestBacklog(t *testing.T) {
	s := MustNewServer(64)
	s.Schedule(0, 640) // 10 cycles of service
	if b := s.Backlog(0); b != 10 {
		t.Errorf("backlog = %v, want 10", b)
	}
	if b := s.Backlog(20); b != 0 {
		t.Errorf("backlog after drain = %v, want 0", b)
	}
}

func TestStats(t *testing.T) {
	s := MustNewServer(128)
	s.Schedule(0, 128)
	s.Schedule(0, 256)
	if s.TotalBytes() != 384 {
		t.Errorf("TotalBytes = %d, want 384", s.TotalBytes())
	}
	if s.Requests() != 2 {
		t.Errorf("Requests = %d, want 2", s.Requests())
	}
	if s.BusyCycles() != 3 {
		t.Errorf("BusyCycles = %v, want 3", s.BusyCycles())
	}
	if u := s.Utilization(6); u != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
	if u := s.Utilization(0); u != 0 {
		t.Errorf("Utilization(0) = %v, want 0", u)
	}
	if u := s.Utilization(1); u != 1 {
		t.Errorf("Utilization clamp = %v, want 1", u)
	}
	s.Reset()
	if s.TotalBytes() != 0 || s.Requests() != 0 || s.BusyCycles() != 0 {
		t.Error("Reset did not clear stats")
	}
}

func TestDepartureMonotonicProperty(t *testing.T) {
	// Property: with non-decreasing arrival times, departures never go
	// backwards, and each departure is at or after its arrival.
	f := func(gaps []uint8, sizes []uint8) bool {
		s := MustNewServer(32)
		now := int64(0)
		last := int64(0)
		n := len(gaps)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			now += int64(gaps[i])
			d := s.Schedule(now, int(sizes[i])+1)
			if d < last || d < now {
				return false
			}
			last = d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSaturationStretchesLatency(t *testing.T) {
	// Offered load 2x the service rate: the k-th request's queueing delay
	// grows linearly — the mechanism behind sub-linear scaling.
	s := MustNewServer(64)
	var lastDelay int64
	for i := int64(0); i < 100; i++ {
		now := i // one request per cycle, each needing 2 cycles of service
		d := s.Schedule(now, 128)
		delay := d - now
		if delay < lastDelay {
			t.Fatalf("delay shrank under saturation at request %d", i)
		}
		lastDelay = delay
	}
	if lastDelay < 90 {
		t.Errorf("final queueing delay = %d, want ≈100", lastDelay)
	}
}

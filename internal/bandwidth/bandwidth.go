// Package bandwidth provides the queueing primitive shared by the NoC and
// DRAM models: a work-conserving single-queue server with a fixed service
// rate in bytes per cycle. Requests scheduled faster than the rate queue up,
// so their departure times stretch out — this is how provisioned bandwidth
// (NoC bisection, per-memory-controller bandwidth) turns into latency and,
// ultimately, into the memory-stall fraction the scale-model predictor
// consumes.
package bandwidth

import "fmt"

// Server is a deterministic fluid-model bandwidth server. A request of b
// bytes arriving at cycle t departs at max(t, clock) + b/rate, where clock
// is the departure time of the previous request. The zero value is not
// usable; use NewServer.
type Server struct {
	rate       float64 // bytes per cycle
	clock      float64 // virtual time up to which the server is committed
	totalBytes uint64
	requests   uint64
	busy       float64 // cycles spent serving
}

// NewServer returns a server with the given service rate in bytes per cycle.
func NewServer(bytesPerCycle float64) (*Server, error) {
	if bytesPerCycle <= 0 {
		return nil, fmt.Errorf("bandwidth: rate must be positive, got %v", bytesPerCycle)
	}
	return &Server{rate: bytesPerCycle}, nil
}

// MustNewServer is NewServer but panics on error.
func MustNewServer(bytesPerCycle float64) *Server {
	s, err := NewServer(bytesPerCycle)
	if err != nil {
		panic(err)
	}
	return s
}

// Schedule enqueues a transfer of bytes arriving at cycle now and returns
// its departure cycle. Departure times are monotonically non-decreasing
// across calls with non-decreasing now.
func (s *Server) Schedule(now int64, bytes int) int64 {
	t := float64(now)
	if s.clock < t {
		s.clock = t
	}
	service := float64(bytes) / s.rate
	s.clock += service
	s.busy += service
	s.totalBytes += uint64(bytes)
	s.requests++
	return int64(s.clock + 0.999999) // ceil to whole cycles
}

// Backlog returns how many cycles past now the server is committed; zero
// when idle.
func (s *Server) Backlog(now int64) float64 {
	b := s.clock - float64(now)
	if b < 0 {
		return 0
	}
	return b
}

// Rate returns the service rate in bytes per cycle.
func (s *Server) Rate() float64 { return s.rate }

// TotalBytes returns the cumulative bytes scheduled.
func (s *Server) TotalBytes() uint64 { return s.totalBytes }

// Requests returns the number of Schedule calls.
func (s *Server) Requests() uint64 { return s.requests }

// BusyCycles returns the cumulative service time in cycles.
func (s *Server) BusyCycles() float64 { return s.busy }

// Utilization returns busy cycles divided by elapsed cycles (0 when elapsed
// is non-positive), a number in [0, ~1] for a saturated server.
func (s *Server) Utilization(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := s.busy / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears the server's clock and statistics.
func (s *Server) Reset() {
	s.clock = 0
	s.ResetStats()
}

// ResetStats clears the statistics while keeping the virtual clock, so a
// warmed-up simulation can start measuring without disturbing in-flight
// queueing state.
func (s *Server) ResetStats() {
	s.totalBytes = 0
	s.requests = 0
	s.busy = 0
}

package noc

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{BisectionBytesPerCycle: 0, Ports: 4}); err == nil {
		t.Error("zero bisection accepted")
	}
	if _, err := New(Config{BisectionBytesPerCycle: 100, Ports: 0}); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := New(Config{BisectionBytesPerCycle: 100, Ports: 4, BaseLatency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := New(Config{BisectionBytesPerCycle: 100, Ports: 4, PortBytesPerCycle: -1}); err == nil {
		t.Error("negative port bandwidth accepted")
	}
}

func TestUncongestedLatency(t *testing.T) {
	x := MustNew(Config{BisectionBytesPerCycle: 1024, Ports: 4, BaseLatency: 20})
	// 128 bytes at 1024 B/c bisection (256 B/c per port): port is the
	// bottleneck at 0.5 cycles -> ceil 1, plus base 20.
	if got := x.Transfer(0, 0, 128); got != 21 {
		t.Errorf("delivery = %d, want 21", got)
	}
}

func TestPortWraparound(t *testing.T) {
	x := MustNew(Config{BisectionBytesPerCycle: 1024, Ports: 4})
	d1 := x.Transfer(0, 5, 256)  // port 1
	d2 := x.Transfer(0, -3, 256) // port 1 as well
	if d2 <= d1 {
		t.Errorf("wrapped port should queue behind: %d then %d", d1, d2)
	}
}

func TestCampingOnHotPort(t *testing.T) {
	// All traffic to one port: per-port rate (256 B/c) binds even though
	// the bisection (1024 B/c) has headroom.
	x := MustNew(Config{BisectionBytesPerCycle: 1024, Ports: 4})
	var hotLast int64
	for i := 0; i < 64; i++ {
		hotLast = x.Transfer(0, 0, 128)
	}
	// 64 transfers * 128 B at 256 B/c = 32 cycles on the hot port.
	if hotLast < 30 {
		t.Errorf("hot-port delivery = %d, want ≈32 (camping)", hotLast)
	}
	// Spread traffic: same volume across all 4 ports binds on bisection:
	// 64*128/1024 = 8 cycles.
	y := MustNew(Config{BisectionBytesPerCycle: 1024, Ports: 4})
	var spreadLast int64
	for i := 0; i < 64; i++ {
		d := y.Transfer(0, i%4, 128)
		if d > spreadLast {
			spreadLast = d
		}
	}
	if spreadLast >= hotLast {
		t.Errorf("spread traffic (%d) should beat camping (%d)", spreadLast, hotLast)
	}
}

func TestBisectionSaturation(t *testing.T) {
	x := MustNew(Config{BisectionBytesPerCycle: 128, Ports: 4, PortBytesPerCycle: 128})
	// Ports individually can absorb the load, but the bisection cannot.
	var last int64
	for i := 0; i < 40; i++ {
		last = x.Transfer(0, i%4, 128)
	}
	if last < 40 {
		t.Errorf("delivery = %d, want ≥40 (bisection-bound)", last)
	}
}

func TestStats(t *testing.T) {
	x := MustNew(Config{BisectionBytesPerCycle: 256, Ports: 2, BaseLatency: 5})
	x.Transfer(0, 0, 128)
	x.Transfer(0, 1, 128)
	if x.TotalBytes() != 256 {
		t.Errorf("TotalBytes = %d, want 256", x.TotalBytes())
	}
	if x.Ports() != 2 || x.BaseLatency() != 5 {
		t.Error("accessors wrong")
	}
	if u := x.BisectionUtilization(2); u != 0.5 {
		t.Errorf("bisection utilization = %v, want 0.5", u)
	}
	if u := x.PortUtilization(0, 1); u != 1 {
		t.Errorf("port utilization = %v, want 1", u)
	}
	if b := x.MaxPortBacklog(0); b != 1 {
		t.Errorf("max backlog = %v, want 1", b)
	}
}

func TestDeliveryNeverBeforeArrivalProperty(t *testing.T) {
	f := func(ports uint8, seq []uint8) bool {
		p := int(ports)%8 + 1
		x := MustNew(Config{BisectionBytesPerCycle: 64, Ports: p, BaseLatency: 3})
		now := int64(0)
		for _, v := range seq {
			now += int64(v % 4)
			if d := x.Transfer(now, int(v), 128); d < now+3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeflectValidation(t *testing.T) {
	if _, err := NewDeflect(Config{BisectionBytesPerCycle: 0, Ports: 4}); err == nil {
		t.Error("zero bisection accepted")
	}
	if _, err := NewDeflect(Config{BisectionBytesPerCycle: 100, Ports: 0}); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := NewDeflect(Config{BisectionBytesPerCycle: 100, Ports: 4, BaseLatency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := NewDeflect(Config{BisectionBytesPerCycle: 100, Ports: 4, PortBytesPerCycle: -1}); err == nil {
		t.Error("negative port bandwidth accepted")
	}
}

func TestDeflectUncongestedMatchesCrossbar(t *testing.T) {
	cfg := Config{BisectionBytesPerCycle: 1024, Ports: 4, BaseLatency: 20}
	x := MustNew(cfg)
	d := MustNewDeflect(cfg)
	// Widely spaced transfers to distinct ports never contend. The deflect
	// pipeline serializes bisection-then-port where the crossbar takes the
	// max, so deflect runs at most one port-service quantum (here 1 cycle)
	// behind — and never deflects.
	for i := 0; i < 16; i++ {
		now := int64(i * 100)
		want := x.Transfer(now, i%4, 128)
		got := d.Transfer(now, i%4, 128)
		if got < want || got > want+1 {
			t.Fatalf("transfer %d: deflect delivered at %d, crossbar at %d", i, got, want)
		}
	}
	if d.Deflections() != 0 {
		t.Errorf("uncongested traffic deflected %d times", d.Deflections())
	}
}

func TestDeflectHotPortDeflects(t *testing.T) {
	// All traffic camps on one port; the bufferless network must deflect and
	// burn extra bisection bytes doing so.
	d := MustNewDeflect(Config{BisectionBytesPerCycle: 1024, Ports: 4})
	var last int64
	for i := 0; i < 64; i++ {
		last = d.Transfer(0, 0, 128)
	}
	if d.Deflections() == 0 {
		t.Fatal("camping produced no deflections")
	}
	// 64 transfers * 128 B at the 256 B/c port rate still bound: ≈32 cycles.
	if last < 30 {
		t.Errorf("hot-port delivery = %d, want ≥30", last)
	}
	if d.TotalBytes() <= 64*128 {
		t.Errorf("TotalBytes = %d, want > %d (re-circulated traffic pays the bisection again)", d.TotalBytes(), 64*128)
	}
	if b := d.MaxPortBacklog(0); b <= 0 {
		t.Errorf("max port backlog = %v, want > 0 while the hot port drains", b)
	}
}

func TestDeflectCampingCongestsBisection(t *testing.T) {
	// The signature difference from the crossbar: camping converts queueing
	// into extra in-flight traffic, so deflect burns strictly more bisection
	// bandwidth for the same offered load.
	cfg := Config{BisectionBytesPerCycle: 512, Ports: 4}
	x := MustNew(cfg)
	d := MustNewDeflect(cfg)
	for i := 0; i < 32; i++ {
		x.Transfer(0, 0, 128)
		d.Transfer(0, 0, 128)
	}
	if d.TotalBytes() <= x.TotalBytes() {
		t.Errorf("deflect moved %d bytes, crossbar %d; deflection should cost extra bisection traffic", d.TotalBytes(), x.TotalBytes())
	}
}

func TestDeflectDeterministic(t *testing.T) {
	run := func() []int64 {
		d := MustNewDeflect(Config{BisectionBytesPerCycle: 256, Ports: 4, BaseLatency: 7})
		out := make([]int64, 0, 48)
		for i := 0; i < 48; i++ {
			out = append(out, d.Transfer(int64(i/3), i%3, 96))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("transfer %d: run A delivered at %d, run B at %d", i, a[i], b[i])
		}
	}
}

func TestDeflectStatsAndReset(t *testing.T) {
	d := MustNewDeflect(Config{BisectionBytesPerCycle: 256, Ports: 2, BaseLatency: 5})
	for i := 0; i < 8; i++ {
		d.Transfer(0, 0, 128)
	}
	if d.Ports() != 2 || d.BaseLatency() != 5 {
		t.Error("accessors wrong")
	}
	if d.TotalBytes() == 0 || d.Deflections() == 0 {
		t.Errorf("stats empty after camping: bytes=%d deflections=%d", d.TotalBytes(), d.Deflections())
	}
	d.ResetStats()
	if d.TotalBytes() != 0 || d.Deflections() != 0 {
		t.Errorf("ResetStats left bytes=%d deflections=%d", d.TotalBytes(), d.Deflections())
	}
	// Queue state survives reset: the next transfer still sees busy ports.
	if b := d.MaxPortBacklog(0); b <= 0 {
		t.Errorf("port backlog lost across ResetStats: %v", b)
	}
}

func TestDeflectDeliveryNeverBeforeArrivalProperty(t *testing.T) {
	f := func(ports uint8, seq []uint8) bool {
		p := int(ports)%8 + 1
		d := MustNewDeflect(Config{BisectionBytesPerCycle: 64, Ports: p, BaseLatency: 3})
		now := int64(0)
		for _, v := range seq {
			now += int64(v % 4)
			if got := d.Transfer(now, int(v), 128); got < now+3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

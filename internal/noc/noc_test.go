package noc

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{BisectionBytesPerCycle: 0, Ports: 4}); err == nil {
		t.Error("zero bisection accepted")
	}
	if _, err := New(Config{BisectionBytesPerCycle: 100, Ports: 0}); err == nil {
		t.Error("zero ports accepted")
	}
	if _, err := New(Config{BisectionBytesPerCycle: 100, Ports: 4, BaseLatency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := New(Config{BisectionBytesPerCycle: 100, Ports: 4, PortBytesPerCycle: -1}); err == nil {
		t.Error("negative port bandwidth accepted")
	}
}

func TestUncongestedLatency(t *testing.T) {
	x := MustNew(Config{BisectionBytesPerCycle: 1024, Ports: 4, BaseLatency: 20})
	// 128 bytes at 1024 B/c bisection (256 B/c per port): port is the
	// bottleneck at 0.5 cycles -> ceil 1, plus base 20.
	if got := x.Transfer(0, 0, 128); got != 21 {
		t.Errorf("delivery = %d, want 21", got)
	}
}

func TestPortWraparound(t *testing.T) {
	x := MustNew(Config{BisectionBytesPerCycle: 1024, Ports: 4})
	d1 := x.Transfer(0, 5, 256)  // port 1
	d2 := x.Transfer(0, -3, 256) // port 1 as well
	if d2 <= d1 {
		t.Errorf("wrapped port should queue behind: %d then %d", d1, d2)
	}
}

func TestCampingOnHotPort(t *testing.T) {
	// All traffic to one port: per-port rate (256 B/c) binds even though
	// the bisection (1024 B/c) has headroom.
	x := MustNew(Config{BisectionBytesPerCycle: 1024, Ports: 4})
	var hotLast int64
	for i := 0; i < 64; i++ {
		hotLast = x.Transfer(0, 0, 128)
	}
	// 64 transfers * 128 B at 256 B/c = 32 cycles on the hot port.
	if hotLast < 30 {
		t.Errorf("hot-port delivery = %d, want ≈32 (camping)", hotLast)
	}
	// Spread traffic: same volume across all 4 ports binds on bisection:
	// 64*128/1024 = 8 cycles.
	y := MustNew(Config{BisectionBytesPerCycle: 1024, Ports: 4})
	var spreadLast int64
	for i := 0; i < 64; i++ {
		d := y.Transfer(0, i%4, 128)
		if d > spreadLast {
			spreadLast = d
		}
	}
	if spreadLast >= hotLast {
		t.Errorf("spread traffic (%d) should beat camping (%d)", spreadLast, hotLast)
	}
}

func TestBisectionSaturation(t *testing.T) {
	x := MustNew(Config{BisectionBytesPerCycle: 128, Ports: 4, PortBytesPerCycle: 128})
	// Ports individually can absorb the load, but the bisection cannot.
	var last int64
	for i := 0; i < 40; i++ {
		last = x.Transfer(0, i%4, 128)
	}
	if last < 40 {
		t.Errorf("delivery = %d, want ≥40 (bisection-bound)", last)
	}
}

func TestStats(t *testing.T) {
	x := MustNew(Config{BisectionBytesPerCycle: 256, Ports: 2, BaseLatency: 5})
	x.Transfer(0, 0, 128)
	x.Transfer(0, 1, 128)
	if x.TotalBytes() != 256 {
		t.Errorf("TotalBytes = %d, want 256", x.TotalBytes())
	}
	if x.Ports() != 2 || x.BaseLatency() != 5 {
		t.Error("accessors wrong")
	}
	if u := x.BisectionUtilization(2); u != 0.5 {
		t.Errorf("bisection utilization = %v, want 0.5", u)
	}
	if u := x.PortUtilization(0, 1); u != 1 {
		t.Errorf("port utilization = %v, want 1", u)
	}
	if b := x.MaxPortBacklog(0); b != 1 {
		t.Errorf("max backlog = %v, want 1", b)
	}
}

func TestDeliveryNeverBeforeArrivalProperty(t *testing.T) {
	f := func(ports uint8, seq []uint8) bool {
		p := int(ports)%8 + 1
		x := MustNew(Config{BisectionBytesPerCycle: 64, Ports: p, BaseLatency: 3})
		now := int64(0)
		for _, v := range seq {
			now += int64(v % 4)
			if d := x.Transfer(now, int(v), 128); d < now+3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package noc

import (
	"fmt"
	"math"

	"gpuscale/internal/bandwidth"
	"gpuscale/internal/obs"
)

// Compile-time checks that both routing disciplines satisfy the interface
// the simulators drive.
var (
	_ Network = (*Crossbar)(nil)
	_ Network = (*Deflect)(nil)
)

// Deflect is a first-order bufferless deflection-routed network (the
// uarch.RouteDeflect variant, after the bufferless-NoC literature,
// simplified): flits never queue in front of a destination port. A flit
// arriving while its port is still serving an earlier one is deflected and
// re-circulates for one hop latency — consuming bisection bandwidth again —
// before retrying. Under light load it behaves like the crossbar; under
// camping it converts queueing delay into extra in-flight traffic, which
// saturates the bisection sooner. Deterministic: scheduling depends only on
// the arrival order the (single-threaded or barrier-replayed) simulator
// presents.
type Deflect struct {
	bisection *bandwidth.Server
	// nextFree[p] is the cycle at which port p finishes its in-service
	// flit. Bufferless: there is no queue behind it.
	nextFree    []int64
	perPort     float64 // port drain rate, bytes/cycle
	baseLatency int64
	hopLatency  int64 // one re-circulation loop; >= 1

	deflections uint64
}

// NewDeflect constructs a Deflect network from the same Config as the
// crossbar; BaseLatency doubles as the re-circulation hop latency (clamped
// to at least one cycle).
func NewDeflect(cfg Config) (*Deflect, error) {
	if cfg.BisectionBytesPerCycle <= 0 {
		return nil, fmt.Errorf("noc: bisection bandwidth must be positive, got %v", cfg.BisectionBytesPerCycle)
	}
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("noc: ports must be positive, got %d", cfg.Ports)
	}
	if cfg.BaseLatency < 0 {
		return nil, fmt.Errorf("noc: base latency must be non-negative, got %d", cfg.BaseLatency)
	}
	perPort := cfg.PortBytesPerCycle
	if perPort == 0 {
		perPort = cfg.BisectionBytesPerCycle / float64(cfg.Ports)
	}
	if perPort <= 0 {
		return nil, fmt.Errorf("noc: port bandwidth must be positive, got %v", perPort)
	}
	hop := int64(cfg.BaseLatency)
	if hop < 1 {
		hop = 1
	}
	return &Deflect{
		bisection:   bandwidth.MustNewServer(cfg.BisectionBytesPerCycle),
		nextFree:    make([]int64, cfg.Ports),
		perPort:     perPort,
		baseLatency: int64(cfg.BaseLatency),
		hopLatency:  hop,
	}, nil
}

// MustNewDeflect is NewDeflect but panics on error.
func MustNewDeflect(cfg Config) *Deflect {
	d, err := NewDeflect(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Transfer schedules a transfer of bytes to port at cycle now and returns
// the delivery cycle. The flit first crosses the bisection; if its port is
// busy when it arrives it deflects — one hop of re-circulation plus another
// bisection pass — until the port is free, then occupies the port for its
// service time.
func (d *Deflect) Transfer(now int64, port, bytes int) int64 {
	p := port % len(d.nextFree)
	if p < 0 {
		p += len(d.nextFree)
	}
	t := d.bisection.Schedule(now, bytes)
	for t < d.nextFree[p] {
		d.deflections++
		t = d.bisection.Schedule(t+d.hopLatency, bytes)
	}
	service := int64(math.Ceil(float64(bytes) / d.perPort))
	if service < 1 {
		service = 1
	}
	d.nextFree[p] = t + service
	return t + service + d.baseLatency
}

// Ports returns the number of destination ports.
func (d *Deflect) Ports() int { return len(d.nextFree) }

// BaseLatency returns the uncongested traversal latency.
func (d *Deflect) BaseLatency() int64 { return d.baseLatency }

// Deflections returns how many deflection loops Transfer has taken.
func (d *Deflect) Deflections() uint64 { return d.deflections }

// TotalBytes returns the bytes moved through the bisection, re-circulated
// traffic included (each deflection pays the bisection again).
func (d *Deflect) TotalBytes() uint64 { return d.bisection.TotalBytes() }

// BisectionUtilization returns bisection busy-time over elapsed cycles.
func (d *Deflect) BisectionUtilization(elapsed int64) float64 {
	return d.bisection.Utilization(elapsed)
}

// MaxPortBacklog returns the largest remaining port service occupancy (in
// cycles) at cycle now. Bufferless ports have no queue, so this measures
// in-service residue rather than queue depth, but it is the same "camping"
// signal the observability samplers chart.
func (d *Deflect) MaxPortBacklog(now int64) float64 {
	var m float64
	for _, f := range d.nextFree {
		if b := float64(f - now); b > m {
			m = b
		}
	}
	return m
}

// BisectionBacklog returns the bisection server's queueing delay (in
// cycles) at cycle now.
func (d *Deflect) BisectionBacklog(now int64) float64 {
	return d.bisection.Backlog(now)
}

// ResetStats clears bandwidth statistics (bytes, busy time, deflection
// count) without touching queue state.
func (d *Deflect) ResetStats() {
	d.bisection.ResetStats()
	d.deflections = 0
}

// PublishObs stores the network's link-utilisation and congestion state into
// the given metrics scope, mirroring Crossbar.PublishObs plus the deflection
// count. No-op on a nil scope.
func (d *Deflect) PublishObs(sc *obs.Scope, elapsed, now int64) {
	if sc == nil {
		return
	}
	sc.Counter("bytes").Store(d.TotalBytes())
	sc.Counter("deflections").Store(d.deflections)
	sc.Gauge("bisection_util").Set(d.BisectionUtilization(elapsed))
	sc.Gauge("bisection_backlog").Set(d.BisectionBacklog(now))
	sc.Gauge("max_port_backlog").Set(d.MaxPortBacklog(now))
}

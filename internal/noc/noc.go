// Package noc models the GPU's on-chip interconnection network between the
// SMs' L1 caches and the LLC slices. Two routing disciplines are available
// behind the Network interface (selected by the uarch.Routing variant): the
// paper's bisection-bandwidth-limited Crossbar and a first-order bufferless
// deflection-routed network (Deflect). Two effects matter for scale-model
// simulation and both are modelled:
//
//   - aggregate bisection-bandwidth saturation, which throttles
//     memory-intensive workloads identically (in relative terms) on
//     proportionally scaled systems, and
//   - per-slice contention ("camping"), where many SMs hitting the same LLC
//     slice queue up in front of it — one of the paper's two mechanisms for
//     sub-linear scaling. The crossbar queues campers in front of the port;
//     the bufferless network deflects them into re-circulation instead.
package noc

import (
	"fmt"

	"gpuscale/internal/bandwidth"
	"gpuscale/internal/obs"
)

// Network is the interface the gpu and chiplet simulators drive: a
// destination-ported interconnect that schedules transfers and reports
// utilisation. Both Crossbar and Deflect implement it.
type Network interface {
	// Transfer schedules a transfer of bytes to port (LLC slice) at cycle
	// now and returns the delivery cycle. Port indices wrap modulo the
	// port count.
	Transfer(now int64, port, bytes int) int64
	// Ports returns the number of destination ports.
	Ports() int
	// TotalBytes returns the bytes moved through the bisection.
	TotalBytes() uint64
	// BisectionUtilization returns bisection busy-time over elapsed cycles.
	BisectionUtilization(elapsed int64) float64
	// MaxPortBacklog returns the largest per-port congestion measure (in
	// cycles) at cycle now.
	MaxPortBacklog(now int64) float64
	// BisectionBacklog returns the bisection server's queueing delay (in
	// cycles) at cycle now.
	BisectionBacklog(now int64) float64
	// ResetStats clears bandwidth statistics without touching queue state.
	ResetStats()
	// PublishObs stores utilisation and queueing state into the given
	// metrics scope; no-op on a nil scope.
	PublishObs(sc *obs.Scope, elapsed, now int64)
}

// Crossbar is a bisection-bandwidth-limited crossbar with per-destination
// (LLC slice) ports. A transfer must pass both the shared bisection server
// and its destination port's server; its delivery time is the later of the
// two, plus the base traversal latency.
type Crossbar struct {
	bisection   *bandwidth.Server
	ports       []*bandwidth.Server
	baseLatency int64
}

// Config parameterises a Crossbar.
type Config struct {
	// BisectionBytesPerCycle is the bisection bandwidth in bytes/cycle.
	BisectionBytesPerCycle float64
	// Ports is the number of destination ports (LLC slices).
	Ports int
	// PortBytesPerCycle is the per-port service rate. When zero it
	// defaults to BisectionBytesPerCycle / Ports (uniform provisioning).
	PortBytesPerCycle float64
	// BaseLatency is the uncongested traversal latency in cycles.
	BaseLatency int
}

// New constructs a Crossbar.
func New(cfg Config) (*Crossbar, error) {
	if cfg.BisectionBytesPerCycle <= 0 {
		return nil, fmt.Errorf("noc: bisection bandwidth must be positive, got %v", cfg.BisectionBytesPerCycle)
	}
	if cfg.Ports <= 0 {
		return nil, fmt.Errorf("noc: ports must be positive, got %d", cfg.Ports)
	}
	if cfg.BaseLatency < 0 {
		return nil, fmt.Errorf("noc: base latency must be non-negative, got %d", cfg.BaseLatency)
	}
	perPort := cfg.PortBytesPerCycle
	if perPort == 0 {
		perPort = cfg.BisectionBytesPerCycle / float64(cfg.Ports)
	}
	if perPort <= 0 {
		return nil, fmt.Errorf("noc: port bandwidth must be positive, got %v", perPort)
	}
	x := &Crossbar{
		bisection:   bandwidth.MustNewServer(cfg.BisectionBytesPerCycle),
		ports:       make([]*bandwidth.Server, cfg.Ports),
		baseLatency: int64(cfg.BaseLatency),
	}
	for i := range x.ports {
		x.ports[i] = bandwidth.MustNewServer(perPort)
	}
	return x, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Crossbar {
	x, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return x
}

// Transfer schedules a transfer of bytes to port (LLC slice) at cycle now
// and returns the delivery cycle. Port indices wrap modulo the port count.
func (x *Crossbar) Transfer(now int64, port, bytes int) int64 {
	p := port % len(x.ports)
	if p < 0 {
		p += len(x.ports)
	}
	d1 := x.bisection.Schedule(now, bytes)
	d2 := x.ports[p].Schedule(now, bytes)
	d := d1
	if d2 > d {
		d = d2
	}
	return d + x.baseLatency
}

// Ports returns the number of destination ports.
func (x *Crossbar) Ports() int { return len(x.ports) }

// BaseLatency returns the uncongested traversal latency.
func (x *Crossbar) BaseLatency() int64 { return x.baseLatency }

// TotalBytes returns the bytes moved through the bisection.
func (x *Crossbar) TotalBytes() uint64 { return x.bisection.TotalBytes() }

// BisectionUtilization returns bisection busy-time over elapsed cycles.
func (x *Crossbar) BisectionUtilization(elapsed int64) float64 {
	return x.bisection.Utilization(elapsed)
}

// PortUtilization returns port p's busy-time over elapsed cycles.
func (x *Crossbar) PortUtilization(p int, elapsed int64) float64 {
	return x.ports[p%len(x.ports)].Utilization(elapsed)
}

// ResetStats clears bandwidth statistics (bytes, busy time) on the
// bisection and every port without touching queue state.
func (x *Crossbar) ResetStats() {
	x.bisection.ResetStats()
	for _, p := range x.ports {
		p.ResetStats()
	}
}

// MaxPortBacklog returns the largest backlog (in cycles) across ports at
// cycle now — a direct measure of camping.
func (x *Crossbar) MaxPortBacklog(now int64) float64 {
	var m float64
	for _, p := range x.ports {
		if b := p.Backlog(now); b > m {
			m = b
		}
	}
	return m
}

// BisectionBacklog returns the bisection server's queueing delay (in cycles)
// at cycle now.
func (x *Crossbar) BisectionBacklog(now int64) float64 {
	return x.bisection.Backlog(now)
}

// PublishObs stores the crossbar's link-utilisation and queueing-delay state
// into the given metrics scope: cumulative bytes through the bisection,
// bisection busy fraction over the elapsed measurement window, and the
// bisection / worst-port backlogs at cycle now. No-op on a nil scope.
func (x *Crossbar) PublishObs(sc *obs.Scope, elapsed, now int64) {
	if sc == nil {
		return
	}
	sc.Counter("bytes").Store(x.TotalBytes())
	sc.Gauge("bisection_util").Set(x.BisectionUtilization(elapsed))
	sc.Gauge("bisection_backlog").Set(x.BisectionBacklog(now))
	sc.Gauge("max_port_backlog").Set(x.MaxPortBacklog(now))
}

// Package engine fans independent simulation jobs across a pool of worker
// goroutines. Every experiment in this repository — MRC sweeps, scale-model
// calibration, the 21-workload × 5-configuration grids behind the paper's
// figures — is a list of fully independent (workload, configuration) cells,
// so the single biggest wall-clock lever is running those cells on every
// available core. The engine provides exactly that, with the guarantees an
// experiment driver needs:
//
//   - Deterministic result ordering: Run and Map return their results in
//     input order, regardless of which worker finished first, so a parallel
//     sweep is a drop-in replacement for a sequential loop.
//   - Per-job panic recovery: a diverging or buggy simulation turns into
//     that job's Result.Err (with a stack trace) instead of killing the
//     whole sweep.
//   - Context-based cancellation: cancelling the context stops dispatching
//     new jobs AND aborts in-flight simulations (the simulator run loop
//     checks the context every few thousand iterations); Run reports the
//     context error.
//   - Progress reporting: an optional callback receives jobs-done counts,
//     aggregate simulated cycles per second, and an ETA after every job.
//
// Determinism of the results themselves is a property of the simulator (a
// simulation is single-threaded and seeded), so a parallel sweep returns
// bit-identical Stats to a sequential one; the engine's own tests assert
// this. The one requirement on callers is that a trace.Workload shared by
// several jobs must be safe for concurrent NewProgram calls — the built-in
// benchmark suite satisfies this because its workloads are pure factories.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gpuscale/internal/config"
	"gpuscale/internal/gpu"
	"gpuscale/internal/trace"
)

// Job is one unit of work: a kernel sequence to simulate on one system
// configuration. Jobs are values; the engine never mutates them.
type Job struct {
	// Name labels the job in results and progress output. If empty, a
	// "config/workload" label is derived.
	Name string
	// Config is the system to simulate on.
	Config config.SystemConfig
	// Kernels is the kernel sequence to run back to back (usually one).
	Kernels []trace.Workload
	// Options tunes the simulation (MaxCycles, warm-up, …).
	Options gpu.Options
}

// NewJob builds a single-kernel Job with a derived name.
func NewJob(cfg config.SystemConfig, w trace.Workload) Job {
	return Job{Config: cfg, Kernels: []trace.Workload{w}}
}

// Label returns the job's display name, deriving one if Name is unset.
func (j Job) Label() string {
	if j.Name != "" {
		return j.Name
	}
	if len(j.Kernels) > 0 && j.Kernels[0] != nil {
		return j.Config.Name + "/" + j.Kernels[0].Name()
	}
	return j.Config.Name
}

// Result is the outcome of one Job, in the same position as its job in the
// input slice. Exactly one of Stats and Err is meaningful: Err is non-nil
// when the job failed (including a recovered panic) or was cancelled before
// it started.
type Result struct {
	// Job is the job this result belongs to.
	Job Job
	// Stats is the simulation result when Err is nil.
	Stats gpu.Stats
	// Wall is the host time the job took (zero if never started).
	Wall time.Duration
	// Err is the job's failure, if any.
	Err error
}

// Progress is a snapshot of a running sweep, delivered to the OnProgress
// callback after every job completion.
type Progress struct {
	// Done counts finished jobs (successful or failed).
	Done int
	// Failed counts finished jobs whose Err is non-nil.
	Failed int
	// Total is the number of jobs in the sweep.
	Total int
	// Cycles is the sum of simulated cycles over successful jobs so far.
	Cycles int64
	// CyclesPerSec is Cycles divided by elapsed wall time: the sweep's
	// aggregate simulation throughput.
	CyclesPerSec float64
	// Elapsed is the wall time since the sweep started.
	Elapsed time.Duration
	// ETA estimates the remaining wall time from the mean job cost so
	// far; zero when Done is 0 or the sweep is complete.
	ETA time.Duration
}

// Options tunes a sweep.
type Options struct {
	// Workers is the pool size; <= 0 means runtime.NumCPU().
	Workers int
	// OnProgress, when non-nil, is called after every job completion with
	// a Progress snapshot. Calls are serialised (never concurrent) but may
	// come from any worker goroutine.
	OnProgress func(Progress)
}

// Workers normalises a worker count: values <= 0 become runtime.NumCPU().
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// PanicError is the error recorded when a job or Map callback panics.
type PanicError struct {
	// Label identifies the failed unit (job label or item index).
	Label string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: %s panicked: %v", e.Label, e.Value)
}

// Run executes jobs on a worker pool and returns one Result per job, in job
// order. Job failures (errors and panics) are reported per job in
// Result.Err and do not abort the sweep; the returned error is non-nil only
// when ctx is cancelled, in which case jobs not yet started carry ctx's
// error in their Result.Err.
func Run(ctx context.Context, jobs []Job, opt Options) ([]Result, error) {
	start := time.Now()
	var mu sync.Mutex
	var done, failed int
	var cycles int64
	note := func(r Result) {
		if opt.OnProgress == nil {
			return
		}
		mu.Lock()
		done++
		if r.Err != nil {
			failed++
		} else {
			cycles += r.Stats.Cycles
		}
		p := Progress{
			Done:    done,
			Failed:  failed,
			Total:   len(jobs),
			Cycles:  cycles,
			Elapsed: time.Since(start),
		}
		if secs := p.Elapsed.Seconds(); secs > 0 {
			p.CyclesPerSec = float64(cycles) / secs
		}
		if done > 0 && done < len(jobs) {
			p.ETA = time.Duration(float64(p.Elapsed) / float64(done) * float64(len(jobs)-done))
		}
		opt.OnProgress(p)
		mu.Unlock()
	}
	ran := make([]bool, len(jobs))
	results, err := Map(ctx, opt.Workers, jobs, func(ctx context.Context, i int, j Job) (Result, error) {
		ran[i] = true
		r := runJob(ctx, j)
		note(r)
		return r, nil
	})
	for i := range results {
		results[i].Job = jobs[i]
		if !ran[i] && err != nil {
			results[i].Err = fmt.Errorf("engine: job %q not run: %w", jobs[i].Label(), err)
		}
	}
	return results, err
}

// runJob executes one job, converting panics into the job's error. The
// context is threaded into the simulator's run loop, so cancelling a sweep
// stops in-flight simulations, not just undispatched ones.
func runJob(ctx context.Context, j Job) (res Result) {
	res.Job = j
	start := time.Now()
	defer func() {
		res.Wall = time.Since(start)
		if p := recover(); p != nil {
			res.Err = &PanicError{Label: "job " + j.Label(), Value: p, Stack: debug.Stack()}
		}
	}()
	if len(j.Kernels) == 0 {
		res.Err = fmt.Errorf("engine: job %q has no kernels", j.Label())
		return res
	}
	sim, err := gpu.NewSequence(j.Config, j.Kernels, j.Options)
	if err != nil {
		res.Err = err
		return res
	}
	res.Stats, res.Err = sim.RunContext(ctx)
	return res
}

// Map runs fn over items on a worker pool of the given size (normalised by
// Workers) and returns the outputs in item order. Unlike Run, an error from
// fn is a sweep failure: Map still finishes the items already dispatched,
// then returns the error of the lowest-index failed item (deterministic
// regardless of completion order). A panic inside fn is converted to a
// *PanicError for that item. When ctx is cancelled, undispatched items are
// skipped and the context error is returned if no item error precedes it.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(context.Context, int, T) (R, error)) ([]R, error) {
	n := Workers(workers)
	if n > len(items) {
		n = len(items)
	}
	results := make([]R, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range items {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = call(ctx, i, items[i], fn)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, ctx.Err()
}

// call invokes fn with panic recovery.
func call[T, R any](ctx context.Context, i int, item T, fn func(context.Context, int, T) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Label: fmt.Sprintf("item %d", i), Value: p, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i, item)
}

package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpuscale/internal/config"
)

func intakeJob(name string) Job {
	return NewJob(config.MustScale(config.Baseline128(), 8), tinyWorkload(name))
}

// TestIntakeCoalesces checks that concurrent submissions inside one linger
// window dispatch as one batch, and that every submitter gets the same
// Stats the batch-free Run path computes.
func TestIntakeCoalesces(t *testing.T) {
	var batches, jobs atomic.Int64
	in := NewIntake(IntakeOptions{
		Workers: 4,
		Linger:  50 * time.Millisecond,
		OnBatch: func(size int) { batches.Add(1); jobs.Add(int64(size)) },
	})
	defer in.Close()

	want := runJob(context.Background(), intakeJob("intake-a"))
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	const subs = 6
	results := make([]Result, subs)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = in.Submit(context.Background(), intakeJob("intake-a"))
		}(i)
	}
	wg.Wait()

	if got := batches.Load(); got != 1 {
		t.Errorf("%d submissions inside one linger window dispatched %d batches", subs, got)
	}
	if got := jobs.Load(); got != subs {
		t.Errorf("batch hook saw %d jobs, want %d", got, subs)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("submission %d: %v", i, r.Err)
		}
		if !reflect.DeepEqual(r.Stats, want.Stats) {
			t.Errorf("submission %d: Stats differ from direct runJob", i)
		}
	}
}

// TestIntakeSubmitCancellation checks per-submission contexts: a cancelled
// submission fails with its context's error while batch-mates complete.
func TestIntakeSubmitCancellation(t *testing.T) {
	in := NewIntake(IntakeOptions{Workers: 1, Linger: 20 * time.Millisecond})
	defer in.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before dispatch: the simulation must never start

	var wg sync.WaitGroup
	var live, dead Result
	wg.Add(2)
	go func() { defer wg.Done(); live = in.Submit(context.Background(), intakeJob("intake-live")) }()
	go func() { defer wg.Done(); dead = in.Submit(cancelled, intakeJob("intake-dead")) }()
	wg.Wait()

	if live.Err != nil {
		t.Errorf("live batch-mate failed: %v", live.Err)
	}
	if !errors.Is(dead.Err, context.Canceled) {
		t.Errorf("cancelled submission error = %v, want context.Canceled", dead.Err)
	}
}

// TestIntakeClose checks both close behaviours: pending submissions fail
// with ErrIntakeClosed, and submissions after Close are refused.
func TestIntakeClose(t *testing.T) {
	// A long linger window keeps the submission pending at Close time.
	in := NewIntake(IntakeOptions{Workers: 1, Linger: time.Hour})
	done := make(chan Result, 1)
	go func() { done <- in.Submit(context.Background(), intakeJob("intake-pending")) }()
	time.Sleep(20 * time.Millisecond) // let the submission enqueue
	in.Close()
	select {
	case r := <-done:
		if !errors.Is(r.Err, ErrIntakeClosed) {
			t.Errorf("pending submission error = %v, want ErrIntakeClosed", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not fail the pending submission")
	}
	if r := in.Submit(context.Background(), intakeJob("intake-after")); !errors.Is(r.Err, ErrIntakeClosed) {
		t.Errorf("post-Close submission error = %v, want ErrIntakeClosed", r.Err)
	}
	in.Close() // idempotent
}

// TestIntakeSeparateWindows checks that submissions arriving after a batch
// dispatched form a new batch rather than being lost.
func TestIntakeSeparateWindows(t *testing.T) {
	var batches atomic.Int64
	in := NewIntake(IntakeOptions{
		Workers: 2,
		Linger:  5 * time.Millisecond,
		OnBatch: func(int) { batches.Add(1) },
	})
	defer in.Close()

	if r := in.Submit(context.Background(), intakeJob("win-1")); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := in.Submit(context.Background(), intakeJob("win-2")); r.Err != nil {
		t.Fatal(r.Err)
	}
	// trace.Workload jobs are deterministic, so both windows must agree.
	if got := batches.Load(); got != 2 {
		t.Errorf("two spaced submissions dispatched %d batches, want 2", got)
	}
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
	"gpuscale/internal/workloads"
)

// tinyWorkload returns a small deterministic workload that simulates in
// well under a millisecond, for tests that exercise engine mechanics
// rather than the simulator.
func tinyWorkload(name string) trace.Workload {
	return &trace.FuncWorkload{
		WName: name,
		Spec:  trace.KernelSpec{NumCTAs: 8, WarpsPerCTA: 2},
		Factory: func(cta, warp int) trace.Program {
			return trace.NewPhaseProgram(trace.Phase{
				N: 64, ComputePer: 3,
				Gen: &trace.SeqGen{Start: uint64(cta * 4096), Stride: 128, Extent: 1 << 20},
			})
		},
	}
}

// tinySuite returns three fast workloads with deliberately different memory
// behaviour (cyclic streaming, seeded random walk, L1-bypassing camping),
// so the determinism check covers the simulator's distinct code paths
// without the cost of the full paper benchmarks.
func tinySuite() []trace.Workload {
	stream := tinyWorkload("tiny-stream")
	random := &trace.FuncWorkload{
		WName: "tiny-random",
		Spec:  trace.KernelSpec{NumCTAs: 8, WarpsPerCTA: 2},
		Factory: func(cta, warp int) trace.Program {
			return trace.NewPhaseProgram(trace.Phase{
				N: 64, ComputePer: 1,
				Gen: trace.NewRandGen(0, 128, 8<<20, trace.WarpSeed(7, cta, warp)),
			})
		},
	}
	camping := &trace.FuncWorkload{
		WName: "tiny-camping",
		Spec:  trace.KernelSpec{NumCTAs: 8, WarpsPerCTA: 2, CTAsPerSMLimit: 1},
		Factory: func(cta, warp int) trace.Program {
			return trace.NewPhaseProgram(trace.Phase{
				N: 64, ComputePer: 0,
				Gen:   &trace.SeqGen{Base: 1 << 30, Stride: 128, Extent: 16 * 128},
				Flags: trace.BypassL1,
			})
		},
	}
	return []trace.Workload{stream, random, camping}
}

// panicWorkload panics while instantiating warp programs, modelling a buggy
// generator that blows up mid-simulation.
type panicWorkload struct{ trace.Workload }

func (p panicWorkload) NewProgram(cta, warp int) trace.Program {
	if cta >= 2 {
		panic(fmt.Sprintf("generator bug at cta=%d", cta))
	}
	return p.Workload.NewProgram(cta, warp)
}

// checkDeterminism runs the job list with 1 and with 8 workers and asserts
// bit-identical Stats in identical order.
func checkDeterminism(t *testing.T, jobs []Job) {
	t.Helper()
	seq, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), jobs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(jobs) || len(par) != len(jobs) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(jobs))
	}
	for i := range jobs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d errors: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if !reflect.DeepEqual(seq[i].Stats, par[i].Stats) {
			t.Errorf("job %q: parallel Stats differ from sequential:\nseq: %+v\npar: %+v",
				jobs[i].Label(), seq[i].Stats, par[i].Stats)
		}
		if par[i].Job.Label() != jobs[i].Label() {
			t.Errorf("result %d is for %q, want %q", i, par[i].Job.Label(), jobs[i].Label())
		}
	}
}

// TestRunDeterminism is the headline guarantee: a parallel sweep (8
// workers) returns bit-identical Stats, in identical order, to a
// sequential (1 worker) sweep of the same job list — here over three
// workloads with distinct memory behaviour on two configurations each.
func TestRunDeterminism(t *testing.T) {
	base := config.Baseline128()
	var jobs []Job
	for _, w := range tinySuite() {
		for _, n := range []int{8, 16} {
			jobs = append(jobs, NewJob(config.MustScale(base, n), w))
		}
	}
	checkDeterminism(t, jobs)
}

// TestRunDeterminismPaperBenchmarks repeats the determinism check on three
// real Table II benchmarks — one per scaling class — on the 8- and 16-SM
// scale models. Skipped in -short mode (each simulation costs seconds).
func TestRunDeterminismPaperBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("paper benchmarks are slow; run without -short")
	}
	base := config.Baseline128()
	var jobs []Job
	for _, name := range []string{"dct", "bfs", "pf"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{8, 16} {
			jobs = append(jobs, NewJob(config.MustScale(base, n), b.Workload))
		}
	}
	checkDeterminism(t, jobs)
}

// TestRunPanicIsolation checks that a panicking simulation fails only its
// own job: the sweep completes and every other job succeeds.
func TestRunPanicIsolation(t *testing.T) {
	jobs := []Job{
		NewJob(config.MustScale(config.Baseline128(), 8), tinyWorkload("ok-a")),
		NewJob(config.MustScale(config.Baseline128(), 8), panicWorkload{tinyWorkload("boom")}),
		NewJob(config.MustScale(config.Baseline128(), 8), tinyWorkload("ok-b")),
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) {
		t.Fatalf("panicking job error = %v, want *PanicError", results[1].Err)
	}
	if !strings.Contains(pe.Error(), "generator bug") {
		t.Errorf("panic error %q does not carry the panic value", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error has no stack trace")
	}
}

// TestRunCancellation checks that a cancelled context stops dispatching:
// Run reports the context error and unstarted jobs carry it too.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{
		NewJob(config.MustScale(config.Baseline128(), 8), tinyWorkload("never-a")),
		NewJob(config.MustScale(config.Baseline128(), 8), tinyWorkload("never-b")),
	}
	results, err := Run(ctx, jobs, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r.Err == nil && r.Stats.Instructions == 0 {
			t.Errorf("job %d neither ran nor carries a cancellation error", i)
		}
	}
}

// TestRunProgress checks the progress callback: monotone Done, final
// snapshot complete, throughput populated.
func TestRunProgress(t *testing.T) {
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, NewJob(config.MustScale(config.Baseline128(), 8),
			tinyWorkload(fmt.Sprintf("w%d", i))))
	}
	var snaps []Progress
	_, err := Run(context.Background(), jobs, Options{
		Workers:    3,
		OnProgress: func(p Progress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != len(jobs) {
		t.Fatalf("got %d progress snapshots, want %d", len(snaps), len(jobs))
	}
	for i, p := range snaps {
		if p.Done != i+1 {
			t.Errorf("snapshot %d: Done=%d, want %d", i, p.Done, i+1)
		}
		if p.Total != len(jobs) {
			t.Errorf("snapshot %d: Total=%d, want %d", i, p.Total, len(jobs))
		}
	}
	last := snaps[len(snaps)-1]
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
	if last.Cycles <= 0 || last.CyclesPerSec <= 0 {
		t.Errorf("final throughput empty: %+v", last)
	}
	if last.Failed != 0 {
		t.Errorf("final Failed = %d, want 0", last.Failed)
	}
}

// TestRunEmptyKernels checks that a malformed job fails cleanly without
// aborting the sweep.
func TestRunEmptyKernels(t *testing.T) {
	jobs := []Job{
		{Name: "empty", Config: config.MustScale(config.Baseline128(), 8)},
		NewJob(config.MustScale(config.Baseline128(), 8), tinyWorkload("fine")),
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Error("kernel-less job did not fail")
	}
	if results[1].Err != nil {
		t.Errorf("healthy job failed: %v", results[1].Err)
	}
}

// TestMapOrderingAndError checks Map's deterministic ordering and its
// lowest-index error selection.
func TestMapOrderingAndError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	out, err := Map(context.Background(), 4, items, func(_ context.Context, i, v int) (int, error) {
		if v == 3 || v == 6 {
			return 0, fmt.Errorf("item %d failed", v)
		}
		return v * v, nil
	})
	if err == nil || err.Error() != "item 3 failed" {
		t.Fatalf("Map error = %v, want lowest-index failure (item 3)", err)
	}
	for i, v := range items {
		if v == 3 || v == 6 {
			continue
		}
		if out[i] != v*v {
			t.Errorf("out[%d] = %d, want %d", i, out[i], v*v)
		}
	}
}

// TestMapPanic checks that a panicking callback surfaces as *PanicError.
func TestMapPanic(t *testing.T) {
	_, err := Map(context.Background(), 2, []int{1, 2}, func(_ context.Context, _, v int) (int, error) {
		if v == 2 {
			panic("kaboom")
		}
		return v, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Map error = %v, want *PanicError", err)
	}
}

// TestMapConcurrencyCap checks that Map never runs more than the requested
// number of callbacks at once.
func TestMapConcurrencyCap(t *testing.T) {
	const workers = 3
	var active, peak int32
	items := make([]int, 64)
	_, err := Map(context.Background(), workers, items, func(_ context.Context, _, _ int) (int, error) {
		n := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		atomic.AddInt32(&active, -1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&peak); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

// TestParallelSpeedup is the wall-clock acceptance check: on a host with
// at least 4 CPUs, a parallel sweep of a paperbench-style multi-workload
// grid must finish at least 2× faster than the sequential path while
// returning bit-identical Stats. Hosts with fewer cores cannot exhibit the
// speedup and skip.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; run without -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; need >= 4 to demonstrate parallel speedup", runtime.NumCPU())
	}
	base := config.Baseline128()
	var jobs []Job
	for _, name := range []string{"dct", "bfs", "pf", "va"} {
		b, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{8, 16} {
			jobs = append(jobs, NewJob(config.MustScale(base, n), b.Workload))
		}
	}
	t0 := time.Now()
	seq, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tSeq := time.Since(t0)
	t0 = time.Now()
	par, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tPar := time.Since(t0)
	for i := range jobs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d failed: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if !reflect.DeepEqual(seq[i].Stats, par[i].Stats) {
			t.Fatalf("job %q: parallel Stats differ from sequential", jobs[i].Label())
		}
	}
	speedup := float64(tSeq) / float64(tPar)
	t.Logf("sequential %v, parallel %v on %d CPUs: %.2fx", tSeq, tPar, runtime.NumCPU(), speedup)
	if speedup < 2 {
		t.Errorf("parallel sweep speedup %.2fx on %d CPUs, want >= 2x", speedup, runtime.NumCPU())
	}
}

// TestWorkersNormalisation checks the <=0 → NumCPU rule.
func TestWorkersNormalisation(t *testing.T) {
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("Workers did not normalise non-positive counts")
	}
	if Workers(7) != 7 {
		t.Error("Workers changed an explicit count")
	}
}

package engine

// Intake is the streaming front end of the worker pool for services: where
// Run takes one pre-assembled job slice, an Intake accepts jobs one at a
// time from concurrent submitters (HTTP handlers), coalesces everything
// that arrives within a short linger window into one batch, and runs each
// batch through the same runJob machinery Run uses. Batching matters to a
// daemon because independently arriving requests for the paper's pipelines
// are usually the *same* sweep shape (the two scale-model simulations of
// a predict call, several tenants asking for neighbouring sizes); one
// dispatch per window amortises scheduling and gives the batch hook a
// truthful picture of concurrency for metrics.
//
// Two properties distinguish Intake from a naive queue:
//
//   - No head-of-line blocking: each batch runs on its own goroutine, and
//     a global slot semaphore (Workers wide) bounds total simulation
//     concurrency across batches. A slow batch delays nobody; a full pool
//     delays everybody equally.
//   - Per-submission cancellation: every job carries its submitter's
//     context. A cancelled submission aborts (or never starts) its own
//     simulation only; batch-mates are unaffected.

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrIntakeClosed is reported for submissions that could not run because
// the intake was closed.
var ErrIntakeClosed = errors.New("engine: intake closed")

// IntakeOptions tunes an Intake.
type IntakeOptions struct {
	// Workers bounds concurrently running simulations across all batches;
	// <= 0 means runtime.NumCPU().
	Workers int
	// Linger is how long the dispatcher waits after a submission arrives
	// for more submissions to coalesce into the same batch. Zero disables
	// coalescing (every submission is its own batch).
	Linger time.Duration
	// OnBatch, when non-nil, is called with each batch's size at dispatch
	// time (before its jobs run). Calls come from the dispatcher goroutine.
	OnBatch func(size int)
}

// intakeSub is one pending submission: a job, its submitter's context, and
// the channel its Result is delivered on (buffered, never blocks).
type intakeSub struct {
	ctx context.Context
	job Job
	ch  chan Result
}

// Intake accepts simulation jobs from concurrent submitters and runs them
// in coalesced batches on a bounded pool. Create with NewIntake; Close
// when done.
type Intake struct {
	opt   IntakeOptions
	slots chan struct{}
	kick  chan struct{}
	quit  chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	pending []*intakeSub
	closed  bool
}

// NewIntake starts an intake's dispatcher goroutine.
func NewIntake(opt IntakeOptions) *Intake {
	in := &Intake{
		opt:   opt,
		slots: make(chan struct{}, Workers(opt.Workers)),
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	in.wg.Add(1)
	go in.dispatch()
	return in
}

// Submit enqueues one job and blocks until its Result is available. The
// context bounds the job: cancellation before dispatch skips the
// simulation, cancellation during it aborts the run loop; either way the
// Result carries the context's error. Submissions to a closed intake (and
// submissions still pending when Close is called) report ErrIntakeClosed.
func (in *Intake) Submit(ctx context.Context, j Job) Result {
	sub := &intakeSub{ctx: ctx, job: j, ch: make(chan Result, 1)}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return Result{Job: j, Err: ErrIntakeClosed}
	}
	in.pending = append(in.pending, sub)
	in.mu.Unlock()
	select {
	case in.kick <- struct{}{}:
	default: // dispatcher already kicked
	}
	return <-sub.ch
}

// Close stops accepting submissions, fails still-pending ones with
// ErrIntakeClosed, and waits for in-flight batches to finish. (In-flight
// simulations run to completion — abort them by cancelling their
// submitters' contexts before closing.)
func (in *Intake) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.mu.Unlock()
	close(in.quit)
	in.wg.Wait()
}

// take removes and returns the pending batch.
func (in *Intake) take() []*intakeSub {
	in.mu.Lock()
	defer in.mu.Unlock()
	batch := in.pending
	in.pending = nil
	return batch
}

// failPending delivers ErrIntakeClosed to every pending submission.
func (in *Intake) failPending() {
	for _, sub := range in.take() {
		sub.ch <- Result{Job: sub.job, Err: ErrIntakeClosed}
	}
}

// dispatch is the intake's single dispatcher loop: wait for a kick, linger
// for coalescing, then hand the accumulated batch to its own runner
// goroutine and go back to waiting — the dispatcher itself never runs a
// simulation, so dispatch latency stays flat under load.
func (in *Intake) dispatch() {
	defer in.wg.Done()
	for {
		select {
		case <-in.quit:
			in.failPending()
			return
		case <-in.kick:
		}
		if in.opt.Linger > 0 {
			select {
			case <-in.quit:
				in.failPending()
				return
			case <-time.After(in.opt.Linger):
			}
		}
		batch := in.take()
		if len(batch) == 0 {
			continue
		}
		if in.opt.OnBatch != nil {
			in.opt.OnBatch(len(batch))
		}
		in.wg.Add(1)
		go in.runBatch(batch)
	}
}

// runBatch executes one batch. Every job waits for a global slot (or its
// own cancellation) and then simulates under its submitter's context;
// results are delivered as they finish, not at batch completion.
func (in *Intake) runBatch(batch []*intakeSub) {
	defer in.wg.Done()
	var wg sync.WaitGroup
	for _, sub := range batch {
		wg.Add(1)
		go func(sub *intakeSub) {
			defer wg.Done()
			// Checked before the select: with a free slot AND a done
			// context the select picks arbitrarily, and a fast job could
			// run to completion despite being cancelled before dispatch.
			if err := sub.ctx.Err(); err != nil {
				sub.ch <- Result{Job: sub.job, Err: err}
				return
			}
			select {
			case in.slots <- struct{}{}:
			case <-sub.ctx.Done():
				sub.ch <- Result{Job: sub.job, Err: sub.ctx.Err()}
				return
			}
			defer func() { <-in.slots }()
			sub.ch <- runJob(sub.ctx, sub.job)
		}(sub)
	}
	wg.Wait()
}

// Package sieve implements stratified kernel sampling in the spirit of
// Sieve (Naderan-Tahan, SeyyedAghaei, Eeckhout — ISPASS 2023), the
// methodology the paper uses to pick representative kernel invocations from
// the MLPerf workloads (Section VI). Real ML applications launch thousands
// of kernels; simulating all of them is intractable, so Sieve profiles each
// kernel cheaply (instruction count, memory intensity, footprint), groups
// similar kernels into strata, and simulates one weighted representative
// per stratum.
//
// This implementation profiles kernels by functional replay (no timing),
// stratifies them with deterministic k-medoids clustering on normalised
// feature vectors, and estimates whole-application metrics from the
// representatives and their weights.
package sieve

import (
	"fmt"
	"math"
	"sort"

	"gpuscale/internal/trace"
)

// Profile is the cheap per-kernel fingerprint used for stratification.
type Profile struct {
	// Kernel is the profiled workload.
	Kernel trace.Workload
	// Instructions is the total dynamic warp-instruction count.
	Instructions uint64
	// MemFraction is memory instructions over all instructions.
	MemFraction float64
	// FootprintLines is the number of distinct cache lines touched.
	FootprintLines uint64
	// CTAs is the kernel's grid size.
	CTAs int
}

// ProfileKernel replays a kernel functionally and fingerprints it.
func ProfileKernel(w trace.Workload, lineSize int) (Profile, error) {
	if w == nil {
		return Profile{}, fmt.Errorf("sieve: nil kernel")
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return Profile{}, fmt.Errorf("sieve: line size must be a positive power of two, got %d", lineSize)
	}
	k := w.Kernel()
	if err := k.Validate(); err != nil {
		return Profile{}, err
	}
	lb := uint(0)
	for 1<<lb != lineSize {
		lb++
	}
	var total, mem uint64
	lines := make(map[uint64]struct{}, 1024)
	for c := 0; c < k.NumCTAs; c++ {
		for wp := 0; wp < k.WarpsPerCTA; wp++ {
			p := w.NewProgram(c, wp)
			for {
				in, ok := p.Next()
				if !ok {
					break
				}
				total++
				if in.Kind == trace.Load || in.Kind == trace.Store {
					mem++
					lines[in.Addr>>lb] = struct{}{}
				}
			}
		}
	}
	if total == 0 {
		return Profile{}, fmt.Errorf("sieve: kernel %q has no instructions", w.Name())
	}
	return Profile{
		Kernel:         w,
		Instructions:   total,
		MemFraction:    float64(mem) / float64(total),
		FootprintLines: uint64(len(lines)),
		CTAs:           k.NumCTAs,
	}, nil
}

// features maps a profile to a normalised vector: log-scaled sizes so that
// kernels differing by constant factors in magnitude but alike in shape
// land close together.
func (p Profile) features() [4]float64 {
	return [4]float64{
		math.Log1p(float64(p.Instructions)),
		p.MemFraction * 10, // weight intensity comparably to log-sizes
		math.Log1p(float64(p.FootprintLines)),
		math.Log1p(float64(p.CTAs)),
	}
}

func dist(a, b [4]float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Representative is one selected kernel plus the weight of its stratum.
type Representative struct {
	// Profile is the selected kernel's fingerprint.
	Profile Profile
	// Weight is the fraction of the application's dynamic instructions
	// its stratum covers.
	Weight float64
	// Members is the number of kernels in the stratum.
	Members int
}

// Select stratifies the kernels into at most k strata and returns one
// medoid representative per stratum, instruction-weighted. Selection is
// deterministic: medoids are seeded farthest-first from the largest kernel.
func Select(profiles []Profile, k int) ([]Representative, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sieve: no kernels to select from")
	}
	if k <= 0 {
		return nil, fmt.Errorf("sieve: k must be positive, got %d", k)
	}
	if k > len(profiles) {
		k = len(profiles)
	}
	feats := make([][4]float64, len(profiles))
	for i, p := range profiles {
		feats[i] = p.features()
	}
	// Farthest-first seeding from the kernel with the most instructions.
	seed := 0
	for i, p := range profiles {
		if p.Instructions > profiles[seed].Instructions {
			seed = i
		}
	}
	medoids := []int{seed}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := range profiles {
			d := math.Inf(1)
			for _, m := range medoids {
				if dd := dist(feats[i], feats[m]); dd < d {
					d = dd
				}
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		if bestD == 0 {
			break // all remaining kernels coincide with a medoid
		}
		medoids = append(medoids, best)
	}
	// Assign kernels to nearest medoid, then refine each medoid to the
	// member minimising intra-stratum distance (one k-medoids sweep —
	// deterministic and sufficient for fingerprint-sized data).
	assign := func() [][]int {
		strata := make([][]int, len(medoids))
		for i := range profiles {
			best, bestD := 0, math.Inf(1)
			for mi, m := range medoids {
				if d := dist(feats[i], feats[m]); d < bestD {
					best, bestD = mi, d
				}
			}
			strata[best] = append(strata[best], i)
		}
		return strata
	}
	strata := assign()
	for mi, members := range strata {
		best, bestCost := medoids[mi], math.Inf(1)
		for _, cand := range members {
			var cost float64
			for _, other := range members {
				cost += dist(feats[cand], feats[other])
			}
			if cost < bestCost {
				best, bestCost = cand, cost
			}
		}
		medoids[mi] = best
	}
	strata = assign()

	var totalInstr float64
	for _, p := range profiles {
		totalInstr += float64(p.Instructions)
	}
	var out []Representative
	for mi, members := range strata {
		if len(members) == 0 {
			continue
		}
		var w float64
		for _, i := range members {
			w += float64(profiles[i].Instructions)
		}
		out = append(out, Representative{
			Profile: profiles[medoids[mi]],
			Weight:  w / totalInstr,
			Members: len(members),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out, nil
}

// EstimateIPC combines per-representative IPC measurements into a
// whole-application estimate: the instruction-weighted harmonic-style
// aggregate Σw_i·I_i / Σ(w_i·I_i/IPC_i), i.e. total instructions over total
// estimated cycles.
func EstimateIPC(reps []Representative, ipc map[string]float64) (float64, error) {
	if len(reps) == 0 {
		return 0, fmt.Errorf("sieve: no representatives")
	}
	var instr, cycles float64
	for _, r := range reps {
		v, ok := ipc[r.Profile.Kernel.Name()]
		if !ok {
			return 0, fmt.Errorf("sieve: missing IPC for representative %q", r.Profile.Kernel.Name())
		}
		if v <= 0 {
			return 0, fmt.Errorf("sieve: non-positive IPC for %q", r.Profile.Kernel.Name())
		}
		instr += r.Weight
		cycles += r.Weight / v
	}
	return instr / cycles, nil
}

package sieve

import (
	"math"
	"testing"

	"gpuscale/internal/trace"
)

// kernel builds a small kernel with the given shape.
func kernel(name string, ctas, n, computePer int, footprintLines uint64) trace.Workload {
	return &trace.FuncWorkload{
		WName: name,
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: 2},
		Factory: func(cta, warp int) trace.Program {
			g := &trace.SeqGen{Base: 0, Start: uint64(cta) * 128, Stride: 128, Extent: footprintLines * 128}
			return trace.NewPhaseProgram(trace.Phase{N: n, ComputePer: computePer, Gen: g})
		},
	}
}

func TestProfileKernel(t *testing.T) {
	w := kernel("k", 4, 20, 1, 1024)
	p, err := ProfileKernel(w, 128)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instructions != 4*2*20 {
		t.Errorf("instructions = %d, want 160", p.Instructions)
	}
	if math.Abs(p.MemFraction-0.5) > 1e-9 {
		t.Errorf("mem fraction = %v, want 0.5", p.MemFraction)
	}
	if p.FootprintLines == 0 || p.FootprintLines > 1024 {
		t.Errorf("footprint = %d lines", p.FootprintLines)
	}
	if p.CTAs != 4 {
		t.Errorf("CTAs = %d", p.CTAs)
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := ProfileKernel(nil, 128); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := ProfileKernel(kernel("k", 2, 5, 0, 8), 100); err == nil {
		t.Error("bad line size accepted")
	}
	empty := &trace.FuncWorkload{
		WName: "empty",
		Spec:  trace.KernelSpec{NumCTAs: 1, WarpsPerCTA: 1},
		Factory: func(cta, warp int) trace.Program {
			return trace.NewPhaseProgram()
		},
	}
	if _, err := ProfileKernel(empty, 128); err == nil {
		t.Error("empty kernel accepted")
	}
}

func TestSelectGroupsSimilarKernels(t *testing.T) {
	// Two families: compute-bound tiny-footprint kernels and
	// memory-bound big-footprint kernels, three of each. k=2 must pick
	// one representative per family.
	var profiles []Profile
	for i := 0; i < 3; i++ {
		p, err := ProfileKernel(kernel("compute", 8+i, 100, 19, 16), 128)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	for i := 0; i < 3; i++ {
		p, err := ProfileKernel(kernel("memory", 8+i, 100, 1, 65536), 128)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	reps, err := Select(profiles, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("representatives = %d, want 2", len(reps))
	}
	if reps[0].Profile.Kernel.Name() == reps[1].Profile.Kernel.Name() {
		t.Error("both representatives come from the same family")
	}
	var w float64
	members := 0
	for _, r := range reps {
		w += r.Weight
		members += r.Members
	}
	if math.Abs(w-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", w)
	}
	if members != 6 {
		t.Errorf("members = %d, want 6", members)
	}
}

func TestSelectDeterministic(t *testing.T) {
	var profiles []Profile
	for i := 0; i < 8; i++ {
		p, err := ProfileKernel(kernel("k", 4+i, 50+10*i, i%3, uint64(64<<uint(i%4))), 128)
		if err != nil {
			t.Fatal(err)
		}
		profiles = append(profiles, p)
	}
	a, err := Select(profiles, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(profiles, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Weight != b[i].Weight || a[i].Members != b[i].Members {
			t.Fatal("selection not deterministic")
		}
	}
}

func TestSelectEdgeCases(t *testing.T) {
	if _, err := Select(nil, 2); err == nil {
		t.Error("empty selection accepted")
	}
	p, _ := ProfileKernel(kernel("k", 2, 10, 1, 64), 128)
	if _, err := Select([]Profile{p}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	// k larger than the kernel count clamps.
	reps, err := Select([]Profile{p}, 5)
	if err != nil || len(reps) != 1 {
		t.Fatalf("reps = %d, %v", len(reps), err)
	}
	if reps[0].Weight != 1 {
		t.Errorf("single-kernel weight = %v", reps[0].Weight)
	}
}

func TestEstimateIPC(t *testing.T) {
	pa, _ := ProfileKernel(kernel("a", 4, 100, 1, 64), 128)
	pb, _ := ProfileKernel(kernel("b", 4, 100, 1, 64), 128)
	reps := []Representative{
		{Profile: pa, Weight: 0.5},
		{Profile: pb, Weight: 0.5},
	}
	// Equal weights at IPC 2 and 4: total instr 1, cycles 0.25+0.125:
	// aggregate = 1/0.375 = 2.667 (harmonic-style, not arithmetic 3).
	got, err := EstimateIPC(reps, map[string]float64{"a": 2, "b": 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8.0/3) > 1e-9 {
		t.Errorf("estimate = %v, want 2.667", got)
	}
	if _, err := EstimateIPC(reps, map[string]float64{"a": 2}); err == nil {
		t.Error("missing IPC accepted")
	}
	if _, err := EstimateIPC(reps, map[string]float64{"a": 2, "b": -1}); err == nil {
		t.Error("negative IPC accepted")
	}
	if _, err := EstimateIPC(nil, nil); err == nil {
		t.Error("empty representatives accepted")
	}
}

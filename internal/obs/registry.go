// Package obs is the simulator's observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms) with per-component namespaces,
// a cycle-stamped event recorder that emits Chrome trace_event JSON and
// JSONL, and an interval sampler that snapshots occupancy / queue-depth /
// bandwidth-utilisation time series as a simulation runs.
//
// The design contract is zero cost when disabled: every type in this package
// is safe to use through a nil pointer, and every method on a nil receiver
// is a single branch that does nothing and allocates nothing. A simulator
// holds pre-resolved *Counter / *Histogram / *Stream handles — nil when no
// recorder is attached — so the per-cycle hot path pays one predictable
// nil-check per hook and no interface dispatch, no map lookup, no
// allocation. The no-alloc property is asserted by testing.AllocsPerRun
// guards in this package's tests and in the repository-root bench_test.go.
//
// When a recorder is attached, the registry and event recorder are safe for
// concurrent use, so one Recorder can observe a whole parallel sweep
// (internal/engine): each simulation registers its own Stream (rendered as a
// separate process track in chrome://tracing / Perfetto) and publishes its
// metrics under its own namespace.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically written uint64 metric. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Store overwrites the counter's value — used by components that publish an
// authoritative total (e.g. a cache's miss count) rather than incrementing
// event by event. No-op on a nil receiver.
func (c *Counter) Store(n uint64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 metric. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value; 0 on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: an observation of value v lands in
// the first bucket whose upper bound is >= v, or in the implicit overflow
// bucket. Bounds are fixed at creation; a nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64       // ascending upper bounds; immutable
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// LatencyBuckets is the default bucket layout for cycle-latency histograms,
// spanning an L1 hit to a deeply queued DRAM access.
var LatencyBuckets = []float64{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// NewHistogram builds a detached histogram (outside any registry) with the
// given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Reset zeroes all buckets and totals (used when a warm-up window is
// discarded). No-op on a nil receiver.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistogramSnapshot is a histogram's state for serialisation. Counts has one
// entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// snapshot copies the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry holds named metrics. Names are hierarchical, "/"-joined
// namespaces — "gpu-8sm/dct/llc/misses" — usually built through Scope. The
// zero value is not usable; use NewRegistry. A nil *Registry hands out nil
// metric handles, which are themselves no-ops, so an unobserved component
// needs no conditional code beyond holding nil pointers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter with the given name; nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given name; nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given name.
// Bounds apply only on first creation; later calls with the same name return
// the existing histogram unchanged. Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Scope returns a namespace rooted at name; nil on a nil registry.
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{reg: r, prefix: name}
}

// MetricsSnapshot is a point-in-time copy of every metric in a registry,
// shaped for JSON serialisation.
type MetricsSnapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every metric. On a nil registry it
// returns an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Scope is a registry namespace: metric names created through it are
// prefixed with the scope's "/"-joined path. A nil *Scope hands out nil
// handles.
type Scope struct {
	reg    *Registry
	prefix string
}

// Sub returns a child scope named prefix/name; nil on a nil receiver.
func (s *Scope) Sub(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, prefix: s.prefix + "/" + name}
}

// Name returns the scope's full prefix; "" on a nil receiver.
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.prefix
}

// Counter returns the scoped counter; nil on a nil receiver.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(s.prefix + "/" + name)
}

// Gauge returns the scoped gauge; nil on a nil receiver.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(s.prefix + "/" + name)
}

// Histogram returns the scoped histogram; nil on a nil receiver.
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(s.prefix+"/"+name, bounds)
}

package obs

import "sync"

// DefaultSampleInterval is the sampling cadence (in simulated cycles) used
// when a recorder is attached without an explicit interval.
const DefaultSampleInterval = 8192

// defaultMaxEvents bounds the in-memory event buffer; beyond it events are
// dropped (and counted) rather than growing without limit on long runs.
const defaultMaxEvents = 1 << 18

// Event is one cycle-stamped trace event in the Chrome trace_event JSON
// schema (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// TS carries the simulated cycle, Pid the stream (one per simulation), and
// Tid a component lane within the stream. Phase "X" is a complete span (with
// Dur), "i" an instant, "C" a counter sample, "M" stream metadata.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int64          `json:"pid"`
	Tid   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
	Scope string         `json:"s,omitempty"` // instant-event scope ("p" = process)
}

// Sample is one interval-sampler snapshot: a named time series bundle taken
// at a simulated cycle on one stream.
type Sample struct {
	Stream string             `json:"stream"`
	Cycle  int64              `json:"cycle"`
	Values map[string]float64 `json:"values"`
}

// Recorder bundles the three observability facilities — metrics registry,
// event trace, sample series — behind one handle that simulators accept.
// A nil *Recorder disables everything at the cost of nil-checks; a non-nil
// Recorder is safe for concurrent use by parallel simulations.
type Recorder struct {
	reg         *Registry
	sampleEvery int64
	maxEvents   int

	mu         sync.Mutex
	events     []Event
	samples    []Sample
	dropped    uint64
	nextStream int64
}

// Option configures a Recorder at construction.
type Option func(*Recorder)

// SampleEvery sets the default sampling interval in simulated cycles for
// simulations observed by this recorder (they may override it per run).
// n <= 0 keeps DefaultSampleInterval.
func SampleEvery(n int64) Option {
	return func(r *Recorder) {
		if n > 0 {
			r.sampleEvery = n
		}
	}
}

// MaxEvents caps the in-memory event buffer; further events are dropped and
// counted in DroppedEvents. n <= 0 keeps the default.
func MaxEvents(n int) Option {
	return func(r *Recorder) {
		if n > 0 {
			r.maxEvents = n
		}
	}
}

// New returns an enabled Recorder.
func New(opts ...Option) *Recorder {
	r := &Recorder{
		reg:         NewRegistry(),
		sampleEvery: DefaultSampleInterval,
		maxEvents:   defaultMaxEvents,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Enabled reports whether the recorder is non-nil, i.e. observing.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the recorder's metrics registry; nil on a nil receiver.
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Scope returns a metrics namespace in the recorder's registry; nil on a
// nil receiver.
func (r *Recorder) Scope(name string) *Scope { return r.Registry().Scope(name) }

// SampleInterval returns the default sampling cadence in cycles; 0 on a nil
// receiver (sampling disabled).
func (r *Recorder) SampleInterval() int64 {
	if r == nil {
		return 0
	}
	return r.sampleEvery
}

// DroppedEvents returns how many events were discarded by the MaxEvents cap.
func (r *Recorder) DroppedEvents() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the recorded events, in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Samples returns a copy of the recorded interval samples.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, len(r.samples))
	copy(out, r.samples)
	return out
}

// record appends ev unless the buffer is full.
func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	if len(r.events) >= r.maxEvents {
		r.dropped++
	} else {
		r.events = append(r.events, ev)
	}
	r.mu.Unlock()
}

// Stream registers a new event stream — one simulation's lane in the trace,
// rendered as its own process by chrome://tracing and Perfetto — and emits
// its process_name metadata event. Nil on a nil receiver.
func (r *Recorder) Stream(name string) *Stream {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextStream++
	id := r.nextStream
	r.mu.Unlock()
	st := &Stream{rec: r, id: id, name: name}
	r.record(Event{
		Name:  "process_name",
		Phase: "M",
		Pid:   id,
		Args:  map[string]any{"name": name},
	})
	return st
}

// Stream is one simulation's lane in a recorder's event trace. All methods
// are no-ops on a nil receiver.
type Stream struct {
	rec  *Recorder
	id   int64
	name string
}

// ID returns the stream's pid in the trace; 0 on a nil receiver.
func (st *Stream) ID() int64 {
	if st == nil {
		return 0
	}
	return st.id
}

// Name returns the stream's label; "" on a nil receiver.
func (st *Stream) Name() string {
	if st == nil {
		return ""
	}
	return st.name
}

// Instant records an instantaneous event at the given cycle.
func (st *Stream) Instant(cycle int64, cat, name string) {
	if st == nil {
		return
	}
	st.rec.record(Event{Name: name, Cat: cat, Phase: "i", TS: cycle, Pid: st.id, Scope: "p"})
}

// Span records a complete event covering [start, end] cycles.
func (st *Stream) Span(start, end int64, cat, name string) {
	if st == nil {
		return
	}
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	st.rec.record(Event{Name: name, Cat: cat, Phase: "X", TS: start, Dur: dur, Pid: st.id})
}

// Sample records one interval-sampler snapshot: it stores the Sample time
// series point and emits one counter ("C") trace event per series so the
// values plot in chrome://tracing / Perfetto. The values map is retained;
// callers must not mutate it afterwards.
func (st *Stream) Sample(cycle int64, values map[string]float64) {
	if st == nil {
		return
	}
	r := st.rec
	r.mu.Lock()
	r.samples = append(r.samples, Sample{Stream: st.name, Cycle: cycle, Values: values})
	r.mu.Unlock()
	for name, v := range values {
		r.record(Event{
			Name:  name,
			Cat:   "sample",
			Phase: "C",
			TS:    cycle,
			Pid:   st.id,
			Args:  map[string]any{"value": v},
		})
	}
}

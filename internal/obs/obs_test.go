package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a/b")
	c2 := r.Counter("a/b")
	if c1 != c2 {
		t.Fatal("Counter did not return the same instance for the same name")
	}
	c1.Add(3)
	c2.Inc()
	if got := r.Counter("a/b").Value(); got != 4 {
		t.Fatalf("counter value = %d, want 4", got)
	}
	g := r.Gauge("a/g")
	g.Set(1.5)
	if r.Gauge("a/g").Value() != 1.5 {
		t.Fatal("gauge value lost")
	}
	h1 := r.Histogram("a/h", []float64{1, 2})
	h2 := r.Histogram("a/h", []float64{99}) // bounds ignored on reuse
	if h1 != h2 {
		t.Fatal("Histogram did not return the same instance for the same name")
	}
}

func TestScopeNamespacing(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("gpu-8sm/dct").Sub("llc")
	sc.Counter("misses").Add(7)
	if got := r.Counter("gpu-8sm/dct/llc/misses").Value(); got != 7 {
		t.Fatalf("scoped counter = %d, want 7", got)
	}
	if sc.Name() != "gpu-8sm/dct/llc" {
		t.Fatalf("scope name = %q", sc.Name())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	for _, v := range []float64{5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 1, 1} // <=10: {5,10}; <=100: {50}; overflow: {1000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 4 || s.Sum != 1065 {
		t.Fatalf("count/sum = %d/%v, want 4/1065", s.Count, s.Sum)
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not clear totals")
	}
}

// TestNilSafety drives every handle through a nil pointer: nothing may
// panic, and reads return zero values.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	var reg *Registry
	var sc *Scope
	var c *Counter
	var g *Gauge
	var h *Histogram
	var st *Stream

	c.Add(1)
	c.Inc()
	c.Store(5)
	g.Set(2)
	h.Observe(3)
	h.Reset()
	st.Instant(0, "a", "b")
	st.Span(0, 10, "a", "b")
	st.Sample(0, map[string]float64{"x": 1})

	if r.Enabled() || r.Registry() != nil || r.Scope("x") != nil || r.Stream("x") != nil {
		t.Fatal("nil recorder handed out non-nil handles")
	}
	if r.SampleInterval() != 0 || r.DroppedEvents() != 0 || r.Events() != nil || r.Samples() != nil {
		t.Fatal("nil recorder reported non-zero state")
	}
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil || reg.Scope("x") != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	if sc.Counter("x") != nil || sc.Gauge("x") != nil || sc.Histogram("x", nil) != nil || sc.Sub("x") != nil {
		t.Fatal("nil scope handed out non-nil handles")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || st.ID() != 0 || st.Name() != "" || sc.Name() != "" {
		t.Fatal("nil handles returned non-zero values")
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestNilHooksNoAllocs is the package-local half of the zero-cost contract:
// every hook a simulator calls on the hot path must allocate nothing when
// no recorder is attached. (The repository-root bench_test.go repeats this
// guard through the public API.)
func TestNilHooksNoAllocs(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var st *Stream
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Inc()
		g.Set(1)
		h.Observe(1)
		st.Instant(1, "cat", "name")
		st.Span(0, 1, "cat", "name")
	})
	if allocs != 0 {
		t.Fatalf("nil obs hooks allocated %v times per run, want 0", allocs)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Scope("x").Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent adds lost updates: %d, want 8000", got)
	}
}

func TestConcurrentStreams(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := r.Stream("sim")
			for j := int64(0); j < 50; j++ {
				st.Instant(j, "t", "e")
				st.Sample(j, map[string]float64{"v": float64(j)})
			}
		}()
	}
	wg.Wait()
	// 8 metadata + 8*50 instants + 8*50 counter events.
	if got := len(r.Events()); got != 8+800 {
		t.Fatalf("events = %d, want 808", got)
	}
	if got := len(r.Samples()); got != 400 {
		t.Fatalf("samples = %d, want 400", got)
	}
}

func TestMaxEventsCap(t *testing.T) {
	r := New(MaxEvents(10))
	st := r.Stream("s") // 1 metadata event
	for i := int64(0); i < 20; i++ {
		st.Instant(i, "t", "e")
	}
	if got := len(r.Events()); got != 10 {
		t.Fatalf("events = %d, want 10 (capped)", got)
	}
	if got := r.DroppedEvents(); got != 11 {
		t.Fatalf("dropped = %d, want 11", got)
	}
}

func TestWriteTraceShape(t *testing.T) {
	r := New()
	st := r.Stream("kernel-run")
	st.Span(100, 200, "kernel", "k0")
	st.Instant(150, "sim", "warmup-reset")
	st.Sample(160, map[string]float64{"occupancy": 0.5})

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 4 {
		t.Fatalf("traceEvents = %d, want 4", len(tf.TraceEvents))
	}
	last := int64(-1)
	sawMeta := false
	for i, ev := range tf.TraceEvents {
		ts := int64(ev["ts"].(float64))
		ph := ev["ph"].(string)
		if ph == "M" {
			sawMeta = true
			if i != 0 {
				t.Fatalf("metadata event not first (index %d)", i)
			}
			continue
		}
		if ts < last {
			t.Fatalf("timestamps not monotonic at index %d: %d < %d", i, ts, last)
		}
		last = ts
	}
	if !sawMeta {
		t.Fatal("no process_name metadata event")
	}
}

func TestWriteJSONLAndMetrics(t *testing.T) {
	r := New()
	st := r.Stream("s")
	st.Span(0, 10, "kernel", "k0")
	r.Scope("s").Counter("llc/misses").Store(42)
	r.Scope("s").Gauge("noc/util").Set(0.25)
	r.Scope("s").Histogram("lat", LatencyBuckets).Observe(100)

	var lines bytes.Buffer
	if err := r.WriteJSONL(&lines); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(strings.TrimSpace(lines.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("JSONL line %q invalid: %v", line, err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("JSONL lines = %d, want 2", n)
	}

	var mbuf bytes.Buffer
	if err := r.WriteMetrics(&mbuf); err != nil {
		t.Fatal(err)
	}
	var dump MetricsDump
	if err := json.Unmarshal(mbuf.Bytes(), &dump); err != nil {
		t.Fatalf("metrics dump invalid: %v", err)
	}
	if dump.Metrics.Counters["s/llc/misses"] != 42 {
		t.Fatalf("counter missing from dump: %+v", dump.Metrics.Counters)
	}
	if dump.Metrics.Gauges["s/noc/util"] != 0.25 {
		t.Fatalf("gauge missing from dump: %+v", dump.Metrics.Gauges)
	}
	if h, ok := dump.Metrics.Histograms["s/lat"]; !ok || h.Count != 1 {
		t.Fatalf("histogram missing from dump: %+v", dump.Metrics.Histograms)
	}
}

func TestNilRecorderWriters(t *testing.T) {
	var r *Recorder
	var tbuf, mbuf, lbuf bytes.Buffer
	if err := r.WriteTrace(&tbuf); err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(tbuf.Bytes(), &tf); err != nil {
		t.Fatalf("nil trace invalid JSON: %v", err)
	}
	if err := r.WriteMetrics(&mbuf); err != nil {
		t.Fatal(err)
	}
	var md map[string]any
	if err := json.Unmarshal(mbuf.Bytes(), &md); err != nil {
		t.Fatalf("nil metrics invalid JSON: %v", err)
	}
	if err := r.WriteJSONL(&lbuf); err != nil {
		t.Fatal(err)
	}
	if lbuf.Len() != 0 {
		t.Fatalf("nil JSONL wrote %d bytes", lbuf.Len())
	}
}

package obs

// Prometheus text exposition (format version 0.0.4) of the metrics
// registry, for the gpuscaled daemon's /metrics endpoint (the HTTP
// handler itself lives in internal/server — this package deliberately
// does not import net/http, whose transitive net initialisation starts
// background runtime work that breaks the zero-allocation guarantee the
// simulator's observability hooks are tested for). The renderer works
// from a point-in-time Snapshot, so one scrape is internally consistent,
// and it emits metric families in sorted name order so consecutive
// scrapes of an unchanged registry are byte-stable — the same determinism
// discipline the simulator itself follows.
//
// Name mapping: registry names are slash-scoped ("server/cache/hits");
// Prometheus names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid
// byte becomes '_' ("server_cache_hits"). Histogram families follow the
// Prometheus convention: cumulative <name>_bucket{le="..."} series ending
// in le="+Inf", plus <name>_sum and <name>_count.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format, families sorted by name.
func WritePrometheus(w io.Writer, s MetricsSnapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		p := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", p, p, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writePromHistogram(w, promName(name), s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, p string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
		return err
	}
	var cum uint64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p, promFloat(bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", p, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", p, promFloat(h.Sum), p, h.Count)
	return err
}

// promName maps a registry name onto the Prometheus identifier alphabet:
// every byte outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets
// a '_' prefix.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	b := []byte(name)
	for i, c := range b {
		valid := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !valid {
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		return "_" + string(b)
	}
	return string(b)
}

// promFloat formats a float the way Prometheus expects: shortest
// round-trip decimal ('g'), so bucket bounds like 5 render as "5", not
// "5.000000".
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package obs

// Note: no net/http or httptest here — the obs test binary shares a
// process with the zero-allocation guards, and linking net/http breaks
// them (see prom.go). The HTTP handler is tested in internal/server.

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server/cache/hits_memory").Add(3)
	reg.Counter("server/requests/predict").Inc()
	reg.Gauge("pool/occupancy").Set(0.5)
	h := reg.Histogram("server/latency_ms", []float64{1, 5, 10})
	h.Observe(0.4) // bucket le=1
	h.Observe(3)   // bucket le=5
	h.Observe(42)  // overflow

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE server_cache_hits_memory counter\nserver_cache_hits_memory 3\n",
		"# TYPE server_requests_predict counter\nserver_requests_predict 1\n",
		"# TYPE pool_occupancy gauge\npool_occupancy 0.5\n",
		"# TYPE server_latency_ms histogram\n",
		`server_latency_ms_bucket{le="1"} 1`,
		`server_latency_ms_bucket{le="5"} 2`,
		`server_latency_ms_bucket{le="10"} 2`,
		`server_latency_ms_bucket{le="+Inf"} 3`,
		"server_latency_ms_sum 45.4\n",
		"server_latency_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Families come out in sorted name order, so scrapes are byte-stable.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("two scrapes of an unchanged registry differ")
	}
	if strings.Index(out, "server_cache_hits_memory") > strings.Index(out, "server_requests_predict") {
		t.Error("counter families not sorted by name")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server/cache/hits": "server_cache_hits",
		"already_valid":     "already_valid",
		"with:colon":        "with:colon",
		"dash-and.dot":      "dash_and_dot",
		"8sm/ipc":           "_8sm_ipc",
		"":                  "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var b strings.Builder
	var reg *Registry
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil registry exposition = %q, want empty", b.String())
	}
}

package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// traceFile is the top-level Chrome trace_event JSON object ("JSON Object
// Format"), loadable by chrome://tracing and https://ui.perfetto.dev.
type traceFile struct {
	TraceEvents     []Event           `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// sortedEvents returns the recorded events ordered for serialisation:
// metadata first, then by timestamp (stable, so same-cycle events keep
// recording order). Trace viewers do not require sorted input, but sorted
// output makes the files diffable and monotonicity testable.
func (r *Recorder) sortedEvents() []Event {
	evs := r.Events()
	sort.SliceStable(evs, func(i, j int) bool {
		mi, mj := evs[i].Phase == "M", evs[j].Phase == "M"
		if mi != mj {
			return mi
		}
		return evs[i].TS < evs[j].TS
	})
	return evs
}

// WriteTrace serialises the event trace as Chrome trace_event JSON.
// Timestamps carry simulated cycles in the microsecond field, so viewer time
// units read as cycles (1 "us" = 1 cycle). Safe on a nil receiver, which
// writes a valid empty trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	tf := traceFile{
		TraceEvents:     []Event{},
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"timeUnit": "simulated GPU cycles"},
	}
	if r != nil {
		tf.TraceEvents = r.sortedEvents()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// WriteJSONL serialises the event trace as JSON Lines: one trace_event
// object per line, in timestamp order, for streaming consumers (jq, column
// stores). Safe on a nil receiver (writes nothing).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range r.sortedEvents() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// MetricsDump is the schema of WriteMetrics: the full registry snapshot plus
// the interval-sampler time series and event accounting.
type MetricsDump struct {
	Metrics       MetricsSnapshot `json:"metrics"`
	Samples       []Sample        `json:"samples"`
	Events        int             `json:"events"`
	DroppedEvents uint64          `json:"dropped_events"`
}

// WriteMetrics serialises the metrics registry and sample series as indented
// JSON. Safe on a nil receiver, which writes a valid empty document.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	d := MetricsDump{Metrics: r.Registry().Snapshot(), Samples: []Sample{}}
	if r != nil {
		d.Samples = r.Samples()
		r.mu.Lock()
		d.Events = len(r.events)
		d.DroppedEvents = r.dropped
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

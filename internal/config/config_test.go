package config

import (
	"math"
	"testing"
	"testing/quick"

	"gpuscale/internal/uarch"
)

func TestBaseline128MatchesTableIII(t *testing.T) {
	c := Baseline128()
	if c.NumSMs != 128 {
		t.Errorf("NumSMs = %d, want 128", c.NumSMs)
	}
	if c.ClockGHz != 1.0 {
		t.Errorf("ClockGHz = %v, want 1.0", c.ClockGHz)
	}
	if c.WarpsPerSM != 48 || c.ThreadsPerWarp != 32 {
		t.Errorf("warps/threads = %d/%d, want 48/32", c.WarpsPerSM, c.ThreadsPerWarp)
	}
	if got := c.MaxThreadsPerSM(); got != 1536 {
		t.Errorf("MaxThreadsPerSM = %d, want 1536", got)
	}
	if c.L1SizeBytes != 48*KiB || c.L1Ways != 6 || c.L1MSHRs != 384 {
		t.Errorf("L1 = %d B %d-way %d MSHRs, want 48 KiB 6-way 384", c.L1SizeBytes, c.L1Ways, c.L1MSHRs)
	}
	if c.LLCSizeBytes != 34*MiB {
		t.Errorf("LLC = %d, want 34 MiB", c.LLCSizeBytes)
	}
	if got := c.TotalMemBWGBps(); math.Abs(got-2320) > 1e-9 {
		t.Errorf("TotalMemBW = %v GB/s, want 2320", got)
	}
	if c.NoCBisectionGBps != 2700 {
		t.Errorf("NoC bisection = %v, want 2700", c.NoCBisectionGBps)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
}

func TestScaleTableIDerivation(t *testing.T) {
	base := Baseline128()
	// Expected values follow exact proportional scaling of the Table III
	// baseline (the paper's Table I rounds a few entries; see DESIGN.md).
	cases := []struct {
		sms     int
		llcMiB  float64
		slices  int
		mcs     int
		totalBW float64
	}{
		{128, 34, 32, 16, 2320},
		{64, 17, 16, 8, 1160},
		{32, 8.5, 8, 4, 580},
		{16, 4.25, 4, 2, 290},
		{8, 2.125, 2, 1, 145},
	}
	for _, tc := range cases {
		c := MustScale(base, tc.sms)
		if err := c.Validate(); err != nil {
			t.Fatalf("%d SMs: invalid config: %v", tc.sms, err)
		}
		if got := float64(c.LLCSizeBytes) / MiB; math.Abs(got-tc.llcMiB) > 1e-9 {
			t.Errorf("%d SMs: LLC = %v MiB, want %v", tc.sms, got, tc.llcMiB)
		}
		if c.LLCSlices != tc.slices {
			t.Errorf("%d SMs: slices = %d, want %d", tc.sms, c.LLCSlices, tc.slices)
		}
		if c.MemControllers != tc.mcs {
			t.Errorf("%d SMs: MCs = %d, want %d", tc.sms, c.MemControllers, tc.mcs)
		}
		if got := c.TotalMemBWGBps(); math.Abs(got-tc.totalBW) > 1e-6 {
			t.Errorf("%d SMs: total mem BW = %v, want %v", tc.sms, got, tc.totalBW)
		}
		wantNoC := 2700 * float64(tc.sms) / 128
		if math.Abs(c.NoCBisectionGBps-wantNoC) > 1e-9 {
			t.Errorf("%d SMs: NoC = %v, want %v", tc.sms, c.NoCBisectionGBps, wantNoC)
		}
	}
}

func TestScaleKeepsPerSMResources(t *testing.T) {
	base := Baseline128()
	for _, n := range StandardSizes {
		c := MustScale(base, n)
		if c.L1SizeBytes != base.L1SizeBytes || c.L1Ways != base.L1Ways ||
			c.L1MSHRs != base.L1MSHRs || c.WarpsPerSM != base.WarpsPerSM ||
			c.ThreadsPerWarp != base.ThreadsPerWarp || c.MaxCTAsPerSM != base.MaxCTAsPerSM {
			t.Errorf("%d SMs: per-SM resources changed under scaling", n)
		}
		if c.LineSize != base.LineSize || c.DRAMLatency != base.DRAMLatency {
			t.Errorf("%d SMs: timing parameters changed under scaling", n)
		}
	}
}

func TestScaleErrors(t *testing.T) {
	base := Baseline128()
	if _, err := Scale(base, 0); err == nil {
		t.Error("Scale(base, 0) should fail")
	}
	if _, err := Scale(base, -8); err == nil {
		t.Error("Scale(base, -8) should fail")
	}
	if _, err := Scale(SystemConfig{}, 8); err == nil {
		t.Error("Scale with zero base should fail")
	}
}

func TestScaleProportionalityProperty(t *testing.T) {
	base := Baseline128()
	// Property: for any valid SM count, shared resources scale by exactly
	// numSMs/128 and aggregate bandwidth is preserved proportionally.
	f := func(raw uint8) bool {
		n := int(raw)%512 + 1
		c, err := Scale(base, n)
		if err != nil {
			return false
		}
		ratio := float64(n) / 128
		if math.Abs(float64(c.LLCSizeBytes)-float64(base.LLCSizeBytes)*ratio) > 1 {
			return false
		}
		if math.Abs(c.NoCBisectionGBps-base.NoCBisectionGBps*ratio) > 1e-9 {
			return false
		}
		return math.Abs(c.TotalMemBWGBps()-base.TotalMemBWGBps()*ratio) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandardConfigsOrderedAndValid(t *testing.T) {
	cfgs := StandardConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("got %d configs, want 5", len(cfgs))
	}
	for i, c := range cfgs {
		if c.NumSMs != StandardSizes[i] {
			t.Errorf("config %d has %d SMs, want %d", i, c.NumSMs, StandardSizes[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("config %d invalid: %v", i, err)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*SystemConfig)
	}{
		{"zero SMs", func(c *SystemConfig) { c.NumSMs = 0 }},
		{"zero clock", func(c *SystemConfig) { c.ClockGHz = 0 }},
		{"zero warps", func(c *SystemConfig) { c.WarpsPerSM = 0 }},
		{"zero threads", func(c *SystemConfig) { c.ThreadsPerWarp = 0 }},
		{"zero CTAs", func(c *SystemConfig) { c.MaxCTAsPerSM = 0 }},
		{"non-pow2 line", func(c *SystemConfig) { c.LineSize = 100 }},
		{"tiny L1", func(c *SystemConfig) { c.L1SizeBytes = 64 }},
		{"zero slices", func(c *SystemConfig) { c.LLCSlices = 0 }},
		{"tiny LLC", func(c *SystemConfig) { c.LLCSizeBytes = 64 }},
		{"zero NoC", func(c *SystemConfig) { c.NoCBisectionGBps = 0 }},
		{"zero MCs", func(c *SystemConfig) { c.MemControllers = 0 }},
		{"zero MC BW", func(c *SystemConfig) { c.MemBWPerMCGBps = 0 }},
		{"zero MSHRs", func(c *SystemConfig) { c.L1MSHRs = 0 }},
	}
	for _, m := range mutations {
		c := Baseline128()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate did not fail", m.name)
		}
	}
}

func TestBytesPerCycle(t *testing.T) {
	c := Baseline128()
	if got := c.BytesPerCycle(2700); math.Abs(got-2700) > 1e-9 {
		t.Errorf("at 1 GHz, 2700 GB/s should be 2700 B/cycle, got %v", got)
	}
	c.ClockGHz = 2.0
	if got := c.BytesPerCycle(2700); math.Abs(got-1350) > 1e-9 {
		t.Errorf("at 2 GHz, 2700 GB/s should be 1350 B/cycle, got %v", got)
	}
}

func TestLLCSliceSize(t *testing.T) {
	c := Baseline128()
	want := int64(34*MiB) / 32
	if got := c.LLCSliceSize(); got != want {
		t.Errorf("slice size = %d, want %d", got, want)
	}
}

func TestTarget16ChipletMatchesTableV(t *testing.T) {
	c := Target16Chiplet()
	if c.NumChiplets != 16 {
		t.Errorf("NumChiplets = %d, want 16", c.NumChiplets)
	}
	if c.Chiplet.NumSMs != 64 {
		t.Errorf("SMs/chiplet = %d, want 64", c.Chiplet.NumSMs)
	}
	if c.TotalSMs() != 1024 {
		t.Errorf("TotalSMs = %d, want 1024", c.TotalSMs())
	}
	if c.Chiplet.ClockGHz != 1.7 {
		t.Errorf("clock = %v, want 1.7", c.Chiplet.ClockGHz)
	}
	if c.Chiplet.LLCSizeBytes != 18*MiB {
		t.Errorf("LLC/chiplet = %d, want 18 MiB", c.Chiplet.LLCSizeBytes)
	}
	if got := c.Chiplet.TotalMemBWGBps(); math.Abs(got-1200) > 1e-9 {
		t.Errorf("mem BW/chiplet = %v, want 1200", got)
	}
	if c.InterChipletGBpsPerChiplet != 900 {
		t.Errorf("inter-chiplet BW = %v, want 900", c.InterChipletGBpsPerChiplet)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Table V config invalid: %v", err)
	}
}

func TestScaleChiplets(t *testing.T) {
	base := Target16Chiplet()
	for _, n := range ChipletStandardSizes {
		c := MustScaleChiplets(base, n)
		if c.NumChiplets != n {
			t.Errorf("NumChiplets = %d, want %d", c.NumChiplets, n)
		}
		if c.Chiplet.NumSMs != base.Chiplet.NumSMs {
			t.Errorf("%d chiplets: per-chiplet config changed", n)
		}
		wantLLC := int64(n) * base.Chiplet.LLCSizeBytes
		if c.TotalLLCBytes() != wantLLC {
			t.Errorf("%d chiplets: total LLC = %d, want %d", n, c.TotalLLCBytes(), wantLLC)
		}
		wantBW := float64(n) * 1200
		if math.Abs(c.TotalMemBWGBps()-wantBW) > 1e-6 {
			t.Errorf("%d chiplets: total BW = %v, want %v", n, c.TotalMemBWGBps(), wantBW)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%d chiplets: invalid: %v", n, err)
		}
	}
	if _, err := ScaleChiplets(base, 0); err == nil {
		t.Error("ScaleChiplets(base, 0) should fail")
	}
}

func TestChipletValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*ChipletConfig)
	}{
		{"zero chiplets", func(c *ChipletConfig) { c.NumChiplets = 0 }},
		{"zero inter BW", func(c *ChipletConfig) { c.InterChipletGBpsPerChiplet = 0 }},
		{"bad page size", func(c *ChipletConfig) { c.PageSize = 3000 }},
		{"negative latency", func(c *ChipletConfig) { c.InterChipletLatency = -1 }},
		{"bad chiplet", func(c *ChipletConfig) { c.Chiplet.NumSMs = 0 }},
	}
	for _, m := range mutations {
		c := Target16Chiplet()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate did not fail", m.name)
		}
	}
}

func TestEffectiveUarchFoldsLegacyScheduler(t *testing.T) {
	c := Baseline128()
	if v := c.EffectiveUarch(); !v.IsDefault() {
		t.Errorf("baseline variant = %v, want default", v)
	}
	c.WarpScheduler = "lrr"
	if v := c.EffectiveUarch(); v.Scheduler != uarch.SchedLRR {
		t.Errorf("legacy lrr folded to %q", v.Scheduler)
	}
	c.WarpScheduler = ""
	c.Uarch.Scheduler = uarch.SchedTwoLevel
	v := c.EffectiveUarch()
	if v.Scheduler != uarch.SchedTwoLevel {
		t.Errorf("variant scheduler = %q, want two-level", v.Scheduler)
	}
	// EffectiveUarch normalizes the remaining axes.
	if v.L1 != uarch.L1Line || v.NoC != uarch.RouteXbar || v.IssueWidth != 1 {
		t.Errorf("normalization missing: %+v", v)
	}
}

func TestValidateUarch(t *testing.T) {
	c := Baseline128()
	c.WarpScheduler = "gto"
	c.Uarch.Scheduler = uarch.SchedLRR
	if err := c.Validate(); err == nil {
		t.Error("conflicting legacy and variant schedulers accepted")
	}
	c = Baseline128()
	c.Uarch.IssueWidth = -1
	if err := c.Validate(); err == nil {
		t.Error("invalid variant accepted")
	}
	c = Baseline128()
	c.Uarch.L1 = uarch.L1Sectored
	c.LineSize = uarch.SectorBytes // sectoring a 32 B line is meaningless
	if err := c.Validate(); err == nil {
		t.Error("sectored L1 with line == sector accepted")
	}
	c = Baseline128()
	c.Uarch = uarch.Variant{Scheduler: uarch.SchedTwoLevel, L1: uarch.L1Sectored, NoC: uarch.RouteDeflect, IssueWidth: 2}
	if err := c.Validate(); err != nil {
		t.Errorf("full non-default variant rejected: %v", err)
	}
}

func TestScalePreservesUarch(t *testing.T) {
	base := Baseline128()
	base.Uarch = uarch.Variant{Scheduler: uarch.SchedTwoLevel, IssueWidth: 2}
	c := MustScale(base, 16)
	if c.Uarch != base.Uarch {
		t.Errorf("Scale dropped the variant: %+v", c.Uarch)
	}
}

// Package config defines GPU system configurations and the proportional
// resource-scaling rule that derives scale models from target systems.
//
// The central idea of scale-model simulation (paper Section II/III) is that a
// scale model a factor F smaller than the target keeps the per-SM private
// resources identical while the resources shared across SMs — LLC capacity,
// NoC bisection bandwidth, and off-chip memory bandwidth — are scaled down by
// the same factor F. Scale derives such configurations, and Baseline128
// reproduces the paper's Table III baseline from which Table I's scale models
// and smaller targets are generated.
package config

import (
	"fmt"

	"gpuscale/internal/uarch"
)

// Common capacity units in bytes.
const (
	KiB = 1024
	MiB = 1024 * KiB
)

// SystemConfig describes a monolithic GPU system: the per-SM configuration
// (which never changes across scale models) and the shared resources (which
// scale proportionally with the number of SMs).
type SystemConfig struct {
	// Name identifies the configuration in reports, e.g. "gpu-128sm".
	Name string

	// NumSMs is the number of streaming multiprocessors.
	NumSMs int

	// ClockGHz is the SM clock frequency in GHz. All latencies and
	// bandwidths in the simulator are expressed in SM cycles, using this
	// clock to convert GB/s figures into bytes per cycle.
	ClockGHz float64

	// Per-SM private configuration (identical across scale models).

	// WarpsPerSM is the maximum number of resident warps per SM.
	WarpsPerSM int
	// ThreadsPerWarp is the SIMT width.
	ThreadsPerWarp int
	// MaxCTAsPerSM limits concurrent thread blocks per SM.
	MaxCTAsPerSM int
	// L1SizeBytes is the per-SM private L1 data cache capacity.
	L1SizeBytes int64
	// L1Ways is the L1 associativity.
	L1Ways int
	// L1MSHRs is the number of L1 miss-status holding registers.
	L1MSHRs int

	// Shared resources (scaled proportionally with NumSMs).

	// LLCSizeBytes is the total shared last-level cache capacity.
	LLCSizeBytes int64
	// LLCSlices is the number of address-interleaved LLC slices.
	LLCSlices int
	// LLCWays is the associativity of each LLC slice.
	LLCWays int
	// NoCBisectionGBps is the crossbar bisection bandwidth in GB/s.
	NoCBisectionGBps float64
	// MemControllers is the number of memory controllers.
	MemControllers int
	// MemBWPerMCGBps is the DRAM bandwidth per memory controller in GB/s.
	MemBWPerMCGBps float64

	// Timing parameters (identical across scale models).

	// LineSize is the cache line size in bytes for both L1 and LLC.
	LineSize int
	// L1HitLatency is the L1 hit latency in cycles.
	L1HitLatency int
	// LLCHitLatency is the LLC access latency in cycles (past the NoC).
	LLCHitLatency int
	// DRAMLatency is the fixed DRAM access latency in cycles (past the MC
	// bandwidth server).
	DRAMLatency int
	// NoCBaseLatency is the uncongested one-way NoC traversal latency.
	NoCBaseLatency int
	// ComputeLatency is the dependent-issue latency of an arithmetic
	// instruction in cycles.
	ComputeLatency int
	// WarpScheduler selects the warp scheduling policy: "gto"
	// (Greedy-Then-Oldest, Table III's policy, the default when empty)
	// or "lrr" (loose round-robin). Deprecated in favour of Uarch.Scheduler,
	// which also adds "two-level"; setting both to conflicting values is a
	// validation error. Use EffectiveUarch to read the folded result.
	WarpScheduler string

	// Uarch selects the microarchitecture variant: warp scheduler, L1 fill
	// granularity, NoC routing discipline and issue width. The zero value is
	// the paper's Table III baseline (GTO, line-grain L1, crossbar, single
	// issue). Variants change simulated timing, so they are part of a
	// configuration's identity everywhere configurations are hashed.
	Uarch uarch.Variant
}

// EffectiveUarch returns the microarchitecture variant with the legacy
// WarpScheduler field folded in and defaults normalized. This is the only
// way simulators should read the variant: it guarantees a validated,
// fully-populated value.
func (c SystemConfig) EffectiveUarch() uarch.Variant {
	v := c.Uarch
	if v.Scheduler == "" && c.WarpScheduler != "" {
		v.Scheduler = uarch.Scheduler(c.WarpScheduler)
	}
	return v.Normalize()
}

// Baseline128 returns the paper's 128-SM baseline target system (Table III):
// 1.0 GHz SMs, 48 warps/SM, 1536 threads/SM, 48 KB 6-way L1 with 384 MSHRs,
// a 34 MB LLC in 32 slices, a 2.7 TB/s crossbar and 2.3 TB/s of DRAM
// bandwidth spread over 16 memory controllers at 145 GB/s each.
func Baseline128() SystemConfig {
	return SystemConfig{
		Name:             "gpu-128sm",
		NumSMs:           128,
		ClockGHz:         1.0,
		WarpsPerSM:       48,
		ThreadsPerWarp:   32,
		MaxCTAsPerSM:     16,
		L1SizeBytes:      48 * KiB,
		L1Ways:           6,
		L1MSHRs:          384,
		LLCSizeBytes:     34 * MiB,
		LLCSlices:        32,
		LLCWays:          64,
		NoCBisectionGBps: 2700,
		MemControllers:   16,
		MemBWPerMCGBps:   145,
		LineSize:         128,
		L1HitLatency:     4,
		LLCHitLatency:    30,
		DRAMLatency:      250,
		NoCBaseLatency:   10,
		ComputeLatency:   4,
	}
}

// Scale derives a proportionally scaled configuration with numSMs SMs from
// base. Per-SM resources are kept identical; LLC capacity, LLC slice count,
// NoC bisection bandwidth, memory-controller count and aggregate memory
// bandwidth all scale by numSMs/base.NumSMs. This reproduces the paper's
// Table I derivation (a 16-SM scale model of the 128-SM target has 1/8th the
// LLC, 1/8th the bisection bandwidth and 1/8th the memory bandwidth).
//
// The memory-controller count never drops below one; when the proportional
// MC count would be fractional, the per-MC bandwidth is adjusted so that the
// aggregate bandwidth still scales exactly proportionally.
func Scale(base SystemConfig, numSMs int) (SystemConfig, error) {
	if numSMs <= 0 {
		return SystemConfig{}, fmt.Errorf("config: numSMs must be positive, got %d", numSMs)
	}
	if base.NumSMs <= 0 {
		return SystemConfig{}, fmt.Errorf("config: base has invalid NumSMs %d", base.NumSMs)
	}
	f := float64(numSMs) / float64(base.NumSMs)
	c := base
	c.Name = fmt.Sprintf("gpu-%dsm", numSMs)
	c.NumSMs = numSMs
	c.LLCSizeBytes = int64(float64(base.LLCSizeBytes) * f)
	c.LLCSlices = maxInt(1, int(float64(base.LLCSlices)*f+0.5))
	c.NoCBisectionGBps = base.NoCBisectionGBps * f
	totalBW := base.TotalMemBWGBps() * f
	mcs := maxInt(1, int(float64(base.MemControllers)*f+0.5))
	c.MemControllers = mcs
	c.MemBWPerMCGBps = totalBW / float64(mcs)
	return c, nil
}

// MustScale is Scale but panics on error; convenient for static tables.
func MustScale(base SystemConfig, numSMs int) SystemConfig {
	c, err := Scale(base, numSMs)
	if err != nil {
		panic(err)
	}
	return c
}

// TotalMemBWGBps returns the aggregate DRAM bandwidth in GB/s.
func (c SystemConfig) TotalMemBWGBps() float64 {
	return float64(c.MemControllers) * c.MemBWPerMCGBps
}

// BytesPerCycle converts a GB/s figure to bytes per SM cycle for this
// configuration's clock.
func (c SystemConfig) BytesPerCycle(gbps float64) float64 {
	return gbps / c.ClockGHz
}

// LLCSliceSize returns the capacity of a single LLC slice in bytes.
func (c SystemConfig) LLCSliceSize() int64 {
	return c.LLCSizeBytes / int64(c.LLCSlices)
}

// MaxThreadsPerSM returns the thread-residency limit per SM.
func (c SystemConfig) MaxThreadsPerSM() int {
	return c.WarpsPerSM * c.ThreadsPerWarp
}

// Validate reports the first structural problem with the configuration, or
// nil if it is usable by the simulator.
func (c SystemConfig) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("config %q: NumSMs must be positive", c.Name)
	case c.ClockGHz <= 0:
		return fmt.Errorf("config %q: ClockGHz must be positive", c.Name)
	case c.WarpsPerSM <= 0:
		return fmt.Errorf("config %q: WarpsPerSM must be positive", c.Name)
	case c.ThreadsPerWarp <= 0:
		return fmt.Errorf("config %q: ThreadsPerWarp must be positive", c.Name)
	case c.MaxCTAsPerSM <= 0:
		return fmt.Errorf("config %q: MaxCTAsPerSM must be positive", c.Name)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("config %q: LineSize must be a positive power of two, got %d", c.Name, c.LineSize)
	case c.L1SizeBytes < int64(c.LineSize)*int64(c.L1Ways):
		return fmt.Errorf("config %q: L1 smaller than one set", c.Name)
	case c.LLCSlices <= 0:
		return fmt.Errorf("config %q: LLCSlices must be positive", c.Name)
	case c.LLCSizeBytes < int64(c.LLCSlices)*int64(c.LineSize):
		return fmt.Errorf("config %q: LLC smaller than one line per slice", c.Name)
	case c.NoCBisectionGBps <= 0:
		return fmt.Errorf("config %q: NoCBisectionGBps must be positive", c.Name)
	case c.MemControllers <= 0:
		return fmt.Errorf("config %q: MemControllers must be positive", c.Name)
	case c.MemBWPerMCGBps <= 0:
		return fmt.Errorf("config %q: MemBWPerMCGBps must be positive", c.Name)
	case c.L1MSHRs <= 0:
		return fmt.Errorf("config %q: L1MSHRs must be positive", c.Name)
	case c.WarpScheduler != "" && c.WarpScheduler != "gto" && c.WarpScheduler != "lrr":
		return fmt.Errorf("config %q: unknown warp scheduler %q", c.Name, c.WarpScheduler)
	case c.WarpScheduler != "" && c.Uarch.Scheduler != "" && string(c.Uarch.Scheduler) != c.WarpScheduler:
		return fmt.Errorf("config %q: legacy WarpScheduler %q conflicts with Uarch.Scheduler %q", c.Name, c.WarpScheduler, c.Uarch.Scheduler)
	}
	if err := c.Uarch.Validate(); err != nil {
		return fmt.Errorf("config %q: %w", c.Name, err)
	}
	if v := c.EffectiveUarch(); v.L1 == uarch.L1Sectored && c.LineSize <= uarch.SectorBytes {
		return fmt.Errorf("config %q: sectored L1 needs LineSize > %d bytes, got %d", c.Name, uarch.SectorBytes, c.LineSize)
	}
	return nil
}

// StandardSizes are the SM counts used throughout the paper: 8- and 16-SM
// scale models and 32-, 64- and 128-SM target systems.
var StandardSizes = []int{8, 16, 32, 64, 128}

// ScaleModelSizes are the scale-model SM counts used in the paper.
var ScaleModelSizes = []int{8, 16}

// TargetSizes are the target-system SM counts evaluated in the paper.
var TargetSizes = []int{32, 64, 128}

// StandardConfigs returns the five paper configurations of Table I, derived
// from the 128-SM baseline by proportional scaling, ordered smallest first.
func StandardConfigs() []SystemConfig {
	base := Baseline128()
	out := make([]SystemConfig, 0, len(StandardSizes))
	for _, n := range StandardSizes {
		out = append(out, MustScale(base, n))
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package config

import "fmt"

// ChipletConfig describes a multi-chip-module (MCM) GPU: several identical
// GPU chiplets connected by an inter-chiplet network. Following the paper's
// Section VII-D case study, the per-chiplet configuration is fixed across
// scale models while the inter-chiplet bisection bandwidth, the aggregate
// memory bandwidth and the total SM count scale linearly with the number of
// chiplets.
type ChipletConfig struct {
	// Name identifies the configuration, e.g. "mcm-16c".
	Name string
	// NumChiplets is the number of GPU chiplets in the package.
	NumChiplets int
	// Chiplet is the per-chiplet GPU configuration (fixed across scale
	// models). Its shared resources (LLC, NoC, MCs) are chiplet-local.
	Chiplet SystemConfig
	// InterChipletGBpsPerChiplet is the inter-chiplet network bandwidth
	// provisioned per chiplet in GB/s; the bisection bandwidth of the
	// package is NumChiplets times this value divided by two halves, and
	// scales linearly with chiplet count as required by proportional
	// scale-model construction.
	InterChipletGBpsPerChiplet float64
	// InterChipletLatency is the added one-way latency in cycles for a
	// memory request that crosses chiplet boundaries.
	InterChipletLatency int
	// PageSize is the first-touch page-allocation granularity in bytes.
	PageSize int
	// CTAScheduler selects how CTAs spread over chiplets: "distributed"
	// (round-robin across chiplets, Table V's policy, the default when
	// empty) or "contiguous" (fill one chiplet before the next, which
	// trades inter-chiplet load balance for page locality).
	CTAScheduler string
}

// Target16Chiplet returns the paper's Table V 16-chiplet target system:
// 16 chiplets of 64 SMs each (1,024 SMs total) at 1.7 GHz, an 18 MB LLC per
// chiplet in 64 slices, a 1.7 TB/s intra-chiplet crossbar, 900 GB/s of
// inter-chiplet bandwidth per chiplet, and 8 memory controllers per chiplet
// providing 1.2 TB/s per chiplet.
func Target16Chiplet() ChipletConfig {
	ch := Baseline128()
	ch.Name = "chiplet-64sm"
	ch.NumSMs = 64
	ch.ClockGHz = 1.7
	ch.LLCSizeBytes = 18 * MiB
	ch.LLCSlices = 64
	ch.NoCBisectionGBps = 1700
	ch.MemControllers = 8
	ch.MemBWPerMCGBps = 1200.0 / 8
	return ChipletConfig{
		Name:                       "mcm-16c",
		NumChiplets:                16,
		Chiplet:                    ch,
		InterChipletGBpsPerChiplet: 900,
		InterChipletLatency:        80,
		PageSize:                   8 * KiB,
	}
}

// ScaleChiplets derives a proportionally scaled MCM configuration with
// numChiplets chiplets from base. The chiplet configuration is unchanged;
// only the chiplet count (and therefore aggregate SMs, LLC, and memory
// bandwidth, all of which are chiplet-local) scales, exactly as in the
// paper's case study where 4- and 8-chiplet scale models predict the
// 16-chiplet target.
func ScaleChiplets(base ChipletConfig, numChiplets int) (ChipletConfig, error) {
	if numChiplets <= 0 {
		return ChipletConfig{}, fmt.Errorf("config: numChiplets must be positive, got %d", numChiplets)
	}
	c := base
	c.NumChiplets = numChiplets
	c.Name = fmt.Sprintf("mcm-%dc", numChiplets)
	return c, nil
}

// MustScaleChiplets is ScaleChiplets but panics on error.
func MustScaleChiplets(base ChipletConfig, numChiplets int) ChipletConfig {
	c, err := ScaleChiplets(base, numChiplets)
	if err != nil {
		panic(err)
	}
	return c
}

// TotalSMs returns the SM count across all chiplets.
func (c ChipletConfig) TotalSMs() int { return c.NumChiplets * c.Chiplet.NumSMs }

// TotalLLCBytes returns the aggregate LLC capacity across all chiplets.
func (c ChipletConfig) TotalLLCBytes() int64 {
	return int64(c.NumChiplets) * c.Chiplet.LLCSizeBytes
}

// TotalMemBWGBps returns the aggregate DRAM bandwidth across all chiplets.
func (c ChipletConfig) TotalMemBWGBps() float64 {
	return float64(c.NumChiplets) * c.Chiplet.TotalMemBWGBps()
}

// Validate reports the first structural problem with the configuration.
func (c ChipletConfig) Validate() error {
	if c.NumChiplets <= 0 {
		return fmt.Errorf("config %q: NumChiplets must be positive", c.Name)
	}
	if c.InterChipletGBpsPerChiplet <= 0 {
		return fmt.Errorf("config %q: InterChipletGBpsPerChiplet must be positive", c.Name)
	}
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("config %q: PageSize must be a positive power of two", c.Name)
	}
	if c.InterChipletLatency < 0 {
		return fmt.Errorf("config %q: InterChipletLatency must be non-negative", c.Name)
	}
	if c.CTAScheduler != "" && c.CTAScheduler != "distributed" && c.CTAScheduler != "contiguous" {
		return fmt.Errorf("config %q: unknown CTA scheduler %q", c.Name, c.CTAScheduler)
	}
	return c.Chiplet.Validate()
}

// ChipletScaleModelSizes are the chiplet counts of the MCM scale models.
var ChipletScaleModelSizes = []int{4, 8}

// ChipletStandardSizes are all MCM sizes used in the case study.
var ChipletStandardSizes = []int{4, 8, 16}

package trace

import "fmt"

// AddrGen produces a deterministic sequence of byte addresses for the memory
// instructions of one warp. Generators are stateful and single-use, like
// Programs.
type AddrGen interface {
	Next() uint64
}

// SeqGen walks addresses Base + ((Start + i*Stride) mod Extent) for
// i = 0, 1, 2, …. With Extent larger than the data ever touched it models
// pure streaming; with a small Extent the walk wraps, producing cyclic reuse
// over a working set of Extent bytes — the access pattern that creates
// miss-rate-curve cliffs when the working set fits in the LLC.
type SeqGen struct {
	Base   uint64
	Start  uint64
	Stride uint64
	Extent uint64
	i      uint64
}

// Next implements AddrGen.
func (g *SeqGen) Next() uint64 {
	a := g.Base + (g.Start+g.i*g.Stride)%g.Extent
	g.i++
	return a
}

// RandGen produces uniformly random line-granular addresses in
// [Base, Base+Extent), quantised to Stride bytes, from a seeded xorshift64
// stream. It models irregular access patterns (graph traversals, hash
// lookups) whose reuse is footprint-dependent but unordered.
type RandGen struct {
	Base   uint64
	Stride uint64
	Extent uint64
	rng    XorShift
}

// NewRandGen returns a RandGen seeded deterministically.
func NewRandGen(base, stride, extent uint64, seed uint64) *RandGen {
	return &RandGen{Base: base, Stride: stride, Extent: extent, rng: NewXorShift(seed)}
}

// Next implements AddrGen.
func (g *RandGen) Next() uint64 {
	n := g.Extent / g.Stride
	if n == 0 {
		return g.Base
	}
	return g.Base + (g.rng.Next()%n)*g.Stride
}

// InterleaveGen alternates between two generators with the given period:
// out of every (A+B) addresses, the first A come from GenA and the next B
// from GenB. It composes patterns such as "stream over private data but hit
// a small shared region every few accesses" (the camping pattern).
type InterleaveGen struct {
	GenA, GenB AddrGen
	A, B       int
	i          int
}

// Next implements AddrGen.
func (g *InterleaveGen) Next() uint64 {
	period := g.A + g.B
	pos := g.i % period
	g.i++
	if pos < g.A {
		return g.GenA.Next()
	}
	return g.GenB.Next()
}

// Phase is one segment of a warp's execution: N total instructions emitted
// as repeating groups of ComputePer compute instructions followed by one
// memory instruction drawn from Gen. A nil Gen yields pure compute. Store
// marks the memory instructions as stores instead of loads.
type Phase struct {
	N          int
	ComputePer int
	Gen        AddrGen
	Store      bool
	Flags      Flags
}

// PhaseProgram executes a sequence of Phases. It implements Program.
//
// The active phase's parameters are cached in flat fields so the per-warp
// hot path (Next runs once per issued instruction across every live warp)
// avoids the phase-slice bounds check, pointer chase and the modulo of the
// naive one-loop form; the slice is consulted only at phase boundaries.
// Every cached field works from its zero value because the Arena recycles
// shells with `*p = PhaseProgram{phases: phases}`.
type PhaseProgram struct {
	phases []Phase
	pi     int // next phase to load from phases

	// Cached state of the active phase; rem == 0 forces a (re)load.
	rem        int // instructions left in the active phase
	computePer int
	k          int // compute instructions emitted in the current group
	gen        AddrGen
	memInstr   Instr // prototype memory instruction; Addr filled per emit
}

// NewPhaseProgram returns a Program over the given phases. Phases with
// non-positive N are skipped.
func NewPhaseProgram(phases ...Phase) *PhaseProgram {
	return &PhaseProgram{phases: phases}
}

// advance loads the next non-empty phase into the cached fields, reporting
// false when the program is exhausted.
func (p *PhaseProgram) advance() bool {
	for p.pi < len(p.phases) {
		ph := &p.phases[p.pi]
		p.pi++
		if ph.N <= 0 {
			continue
		}
		p.rem = ph.N
		p.computePer = ph.ComputePer
		p.k = 0
		p.gen = ph.Gen
		kind := Load
		if ph.Store {
			kind = Store
		}
		p.memInstr = Instr{Kind: kind, Flags: ph.Flags}
		return true
	}
	return false
}

// MemLookahead is an optional Program capability: a non-destructive preview
// of how many compute instructions remain before the program's next memory
// instruction. The quantum-relaxed sharded run loops use it to bound the
// earliest cycle a warp could next touch shared memory structures (or
// retire); programs that cannot preview simply don't implement it and the
// bound degrades to "a memory event is possible immediately", which is
// always safe.
type MemLookahead interface {
	// ComputeRun returns the number of consecutive compute instructions at
	// the front of the remaining stream — the count before the next memory
	// instruction or, when no memory instruction remains, before the end of
	// the program. It must not consume instructions or mutate generator
	// state.
	ComputeRun() int
}

// ComputeRun implements MemLookahead by scanning the cached phase state and
// the not-yet-loaded phases without touching either. Within the active
// phase the leading computes are what the k/computePer group cursor allows;
// a later phase contributes its whole N when it has no generator, or its
// leading ComputePer group otherwise.
func (p *PhaseProgram) ComputeRun() int {
	run := 0
	if p.rem > 0 {
		if p.gen != nil {
			lead := p.computePer - p.k
			if p.rem <= lead {
				run += p.rem // phase drains before its next memory instruction
			} else {
				return run + lead
			}
		} else {
			run += p.rem
		}
	}
	for i := p.pi; i < len(p.phases); i++ {
		ph := &p.phases[i]
		if ph.N <= 0 {
			continue
		}
		if ph.Gen == nil {
			run += ph.N
			continue
		}
		if ph.N > ph.ComputePer {
			return run + ph.ComputePer
		}
		run += ph.N
	}
	return run
}

// Next implements Program: each phase emits repeating groups of computePer
// compute instructions followed by one memory instruction (none when the
// phase has no generator), exactly as the phase-scanning form did.
func (p *PhaseProgram) Next() (Instr, bool) {
	for p.rem == 0 {
		if !p.advance() {
			return Instr{}, false
		}
	}
	p.rem--
	if p.gen == nil {
		return Instr{Kind: Compute}, true
	}
	if p.k < p.computePer {
		p.k++
		return Instr{Kind: Compute}, true
	}
	p.k = 0
	in := p.memInstr
	in.Addr = p.gen.Next()
	return in, true
}

// XorShift is a tiny deterministic PRNG (xorshift64*). The zero value is not
// valid; use NewXorShift.
type XorShift struct{ s uint64 }

// NewXorShift seeds the generator; a zero seed is remapped to a fixed
// non-zero constant because xorshift has an all-zeros fixed point.
func NewXorShift(seed uint64) XorShift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return XorShift{s: seed}
}

// Next returns the next pseudo-random value.
func (x *XorShift) Next() uint64 {
	s := x.s
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.s = s
	return s * 0x2545f4914f6cdd1d
}

// Float64 returns a pseudo-random value in [0, 1).
func (x *XorShift) Float64() float64 {
	return float64(x.Next()>>11) / float64(1<<53)
}

// WarpSeed derives a deterministic seed for (workload, cta, warp) using a
// split-mix style hash so that distinct warps get decorrelated streams.
func WarpSeed(base uint64, cta, warp int) uint64 {
	z := base + uint64(cta)*0x9e3779b97f4a7c15 + uint64(warp)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FuncWorkload adapts plain functions into a Workload; useful in tests. Set
// Factory for a plain workload, or FactoryIn for one that can draw its
// programs from an Arena (FactoryIn with a nil arena must heap-allocate,
// which the Arena methods' nil-safety gives for free). With FactoryIn set,
// FuncWorkload implements ArenaWorkload.
type FuncWorkload struct {
	WName     string
	Spec      KernelSpec
	Factory   func(cta, warp int) Program
	FactoryIn func(a *Arena, cta, warp int) Program
}

// Name implements Workload.
func (f *FuncWorkload) Name() string { return f.WName }

// Kernel implements Workload.
func (f *FuncWorkload) Kernel() KernelSpec { return f.Spec }

// NewProgram implements Workload.
func (f *FuncWorkload) NewProgram(cta, warp int) Program {
	return f.NewProgramIn(nil, cta, warp)
}

// NewProgramIn implements ArenaWorkload: it builds the program from the
// arena when FactoryIn is set, and ignores the arena otherwise.
func (f *FuncWorkload) NewProgramIn(a *Arena, cta, warp int) Program {
	if f.FactoryIn != nil {
		return f.FactoryIn(a, cta, warp)
	}
	if f.Factory == nil {
		panic(fmt.Sprintf("trace: FuncWorkload %q has no Factory", f.WName))
	}
	return f.Factory(cta, warp)
}

package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func collect(p Program) []Instr {
	var out []Instr
	for {
		in, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Load.String() != "load" || Store.String() != "store" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

func TestKernelSpec(t *testing.T) {
	k := KernelSpec{NumCTAs: 4, WarpsPerCTA: 8}
	if k.TotalWarps() != 32 {
		t.Errorf("TotalWarps = %d, want 32", k.TotalWarps())
	}
	if err := k.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (KernelSpec{NumCTAs: 0, WarpsPerCTA: 1}).Validate(); err == nil {
		t.Error("zero CTAs accepted")
	}
	if err := (KernelSpec{NumCTAs: 1, WarpsPerCTA: 0}).Validate(); err == nil {
		t.Error("zero warps accepted")
	}
}

func TestSeqGenStreaming(t *testing.T) {
	g := &SeqGen{Base: 1000, Stride: 128, Extent: 1 << 40}
	for i := 0; i < 10; i++ {
		want := uint64(1000 + 128*i)
		if got := g.Next(); got != want {
			t.Fatalf("access %d = %d, want %d", i, got, want)
		}
	}
}

func TestSeqGenWrapsAtExtent(t *testing.T) {
	g := &SeqGen{Base: 0, Stride: 128, Extent: 512}
	seen := map[uint64]int{}
	for i := 0; i < 12; i++ {
		seen[g.Next()]++
	}
	if len(seen) != 4 {
		t.Fatalf("distinct addresses = %d, want 4 (working set 512/128)", len(seen))
	}
	for a, n := range seen {
		if n != 3 {
			t.Errorf("address %d visited %d times, want 3", a, n)
		}
	}
}

func TestSeqGenStartOffset(t *testing.T) {
	g := &SeqGen{Base: 0, Start: 256, Stride: 128, Extent: 512}
	if got := g.Next(); got != 256 {
		t.Errorf("first = %d, want 256", got)
	}
	g.Next() // 384
	if got := g.Next(); got != 0 {
		t.Errorf("third = %d, want 0 (wrapped)", got)
	}
}

func TestRandGenStaysInRangeAndAligned(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewRandGen(4096, 128, 1<<20, seed)
		for i := 0; i < 200; i++ {
			a := g.Next()
			if a < 4096 || a >= 4096+1<<20 {
				return false
			}
			if (a-4096)%128 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandGenDeterministic(t *testing.T) {
	a := NewRandGen(0, 128, 1<<20, 42)
	b := NewRandGen(0, 128, 1<<20, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandGenZeroExtent(t *testing.T) {
	g := NewRandGen(77, 128, 0, 1)
	if got := g.Next(); got != 77 {
		t.Errorf("zero-extent RandGen = %d, want Base", got)
	}
}

func TestInterleaveGen(t *testing.T) {
	a := &SeqGen{Base: 0, Stride: 1, Extent: 1 << 30}
	b := &SeqGen{Base: 1 << 40, Stride: 1, Extent: 1 << 30}
	g := &InterleaveGen{GenA: a, GenB: b, A: 2, B: 1}
	want := []uint64{0, 1, 1 << 40, 2, 3, 1<<40 + 1}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("access %d = %d, want %d", i, got, w)
		}
	}
}

func TestPhaseProgramPureCompute(t *testing.T) {
	p := NewPhaseProgram(Phase{N: 5})
	instrs := collect(p)
	if len(instrs) != 5 {
		t.Fatalf("len = %d, want 5", len(instrs))
	}
	for _, in := range instrs {
		if in.Kind != Compute {
			t.Fatalf("got %v, want compute", in.Kind)
		}
	}
}

func TestPhaseProgramComputeMemRatio(t *testing.T) {
	g := &SeqGen{Base: 0, Stride: 128, Extent: 1 << 30}
	p := NewPhaseProgram(Phase{N: 12, ComputePer: 3, Gen: g})
	instrs := collect(p)
	if len(instrs) != 12 {
		t.Fatalf("len = %d, want 12", len(instrs))
	}
	var loads int
	for i, in := range instrs {
		if (i+1)%4 == 0 {
			if in.Kind != Load {
				t.Fatalf("instr %d = %v, want load", i, in.Kind)
			}
			loads++
		} else if in.Kind != Compute {
			t.Fatalf("instr %d = %v, want compute", i, in.Kind)
		}
	}
	if loads != 3 {
		t.Fatalf("loads = %d, want 3", loads)
	}
}

func TestPhaseProgramStore(t *testing.T) {
	g := &SeqGen{Base: 0, Stride: 128, Extent: 1 << 30}
	p := NewPhaseProgram(Phase{N: 2, ComputePer: 0, Gen: g, Store: true})
	instrs := collect(p)
	if len(instrs) != 2 || instrs[0].Kind != Store || instrs[1].Kind != Store {
		t.Fatalf("got %+v, want two stores", instrs)
	}
}

func TestPhaseProgramMultiPhase(t *testing.T) {
	g := &SeqGen{Base: 0, Stride: 128, Extent: 1 << 30}
	p := NewPhaseProgram(
		Phase{N: 3},
		Phase{N: 0, Gen: g}, // empty phase skipped
		Phase{N: 2, ComputePer: 0, Gen: g},
	)
	instrs := collect(p)
	if len(instrs) != 5 {
		t.Fatalf("len = %d, want 5", len(instrs))
	}
	if instrs[3].Kind != Load || instrs[4].Kind != Load {
		t.Fatal("phase 3 should be loads")
	}
}

func TestPhaseProgramExhaustedStaysExhausted(t *testing.T) {
	p := NewPhaseProgram(Phase{N: 1})
	collect(p)
	if _, ok := p.Next(); ok {
		t.Error("Next returned true after exhaustion")
	}
}

// scanningNext is the pre-optimization PhaseProgram.Next, kept verbatim as
// the reference the cached-phase-state fast path is cross-checked against:
// it re-derives phase bounds and group position from the phase slice on
// every call.
type scanningNext struct {
	phases []Phase
	pi     int
	i      int
	k      int
}

func (p *scanningNext) Next() (Instr, bool) {
	for p.pi < len(p.phases) {
		ph := &p.phases[p.pi]
		if p.i >= ph.N {
			p.pi++
			p.i = 0
			p.k = 0
			continue
		}
		p.i++
		if ph.Gen == nil {
			return Instr{Kind: Compute}, true
		}
		group := ph.ComputePer + 1
		pos := p.k
		p.k = (p.k + 1) % group
		if pos < ph.ComputePer {
			return Instr{Kind: Compute}, true
		}
		kind := Load
		if ph.Store {
			kind = Store
		}
		return Instr{Kind: kind, Flags: ph.Flags, Addr: ph.Gen.Next()}, true
	}
	return Instr{}, false
}

// TestPhaseProgramMatchesScanningReference feeds identical randomized phase
// sequences — empty and negative-N phases, zero ComputePer (pure memory),
// nil generators, stores, flags — to the optimized PhaseProgram and the old
// per-call-scanning form, and demands identical instruction streams.
func TestPhaseProgramMatchesScanningReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9a5e))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		mkPhases := func() []Phase {
			// Rebuild from the same parameters so each run gets generators
			// with private (but identically seeded) state.
			r := rand.New(rand.NewSource(int64(trial)))
			phases := make([]Phase, n)
			for i := range phases {
				ph := Phase{
					N:          r.Intn(45) - 4, // includes empty and negative phases
					ComputePer: r.Intn(6),      // includes pure-memory groups
					Store:      r.Intn(2) == 0,
				}
				if r.Intn(4) != 0 {
					ph.Gen = &SeqGen{
						Base:   uint64(r.Intn(1 << 20)),
						Stride: uint64(64 << r.Intn(3)),
						Extent: uint64(1 + r.Intn(1<<14)),
					}
				}
				if r.Intn(3) == 0 {
					ph.Flags = BypassL1
				}
				phases[i] = ph
			}
			return phases
		}
		opt := NewPhaseProgram(mkPhases()...)
		ref := &scanningNext{phases: mkPhases()}
		for step := 0; ; step++ {
			got, gok := opt.Next()
			want, wok := ref.Next()
			if gok != wok || got != want {
				t.Fatalf("trial %d step %d: optimized (%+v, %v), reference (%+v, %v)",
					trial, step, got, gok, want, wok)
			}
			if !gok {
				// Exhaustion must be sticky on both.
				if in, ok := opt.Next(); ok {
					t.Fatalf("trial %d: optimized resurrected with %+v", trial, in)
				}
				break
			}
		}
	}
}

func TestXorShiftDeterministicAndNonZero(t *testing.T) {
	a, b := NewXorShift(7), NewXorShift(7)
	for i := 0; i < 1000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatal("same seed diverged")
		}
		if va == 0 {
			t.Fatal("xorshift produced zero")
		}
	}
}

func TestXorShiftZeroSeedRemapped(t *testing.T) {
	x := NewXorShift(0)
	if x.Next() == 0 {
		t.Error("zero seed not remapped")
	}
}

func TestXorShiftFloat64Range(t *testing.T) {
	x := NewXorShift(123)
	for i := 0; i < 1000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestWarpSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for c := 0; c < 20; c++ {
		for w := 0; w < 20; w++ {
			s := WarpSeed(99, c, w)
			if seen[s] {
				t.Fatalf("duplicate seed for cta=%d warp=%d", c, w)
			}
			seen[s] = true
		}
	}
}

func TestInstructionCount(t *testing.T) {
	w := &FuncWorkload{
		WName: "tiny",
		Spec:  KernelSpec{NumCTAs: 2, WarpsPerCTA: 3},
		Factory: func(cta, warp int) Program {
			g := &SeqGen{Base: 0, Stride: 128, Extent: 1 << 20}
			return NewPhaseProgram(Phase{N: 4, ComputePer: 1, Gen: g})
		},
	}
	total, mem := InstructionCount(w)
	if total != 24 {
		t.Errorf("total = %d, want 24", total)
	}
	if mem != 12 {
		t.Errorf("mem = %d, want 12", mem)
	}
}

func TestFuncWorkloadPanicsWithoutFactory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w := &FuncWorkload{WName: "broken", Spec: KernelSpec{NumCTAs: 1, WarpsPerCTA: 1}}
	w.NewProgram(0, 0)
}

func TestWorkloadDeterminismProperty(t *testing.T) {
	// Property: instantiating the same warp twice yields identical streams.
	f := func(seed uint64, ctaRaw, warpRaw uint8) bool {
		cta, warp := int(ctaRaw)%8, int(warpRaw)%8
		mk := func() Program {
			s := WarpSeed(seed, cta, warp)
			return NewPhaseProgram(
				Phase{N: 50, ComputePer: 2, Gen: NewRandGen(0, 128, 1<<22, s)},
				Phase{N: 30, ComputePer: 1, Gen: &SeqGen{Base: 1 << 30, Start: uint64(cta) * 4096, Stride: 128, Extent: 1 << 20}},
			)
		}
		a, b := collect(mk()), collect(mk())
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

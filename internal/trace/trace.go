// Package trace defines the workload representation shared by the timing
// simulator (internal/gpu) and the miss-rate-curve tool (internal/mrc):
// kernels made of CTAs, CTAs made of warps, and per-warp lazy instruction
// generators. Workloads are deterministic — the same (workload, cta, warp)
// triple always yields the same instruction stream — which is what makes the
// simulator reproducible and the miss-rate curve consistent with the timing
// runs.
package trace

import "fmt"

// Kind discriminates dynamic instruction types.
type Kind uint8

const (
	// Compute is an arithmetic instruction with a fixed dependent latency.
	Compute Kind = iota
	// Load is a memory read; Addr carries the byte address.
	Load
	// Store is a memory write; Addr carries the byte address. Stores are
	// modelled as fire-and-forget for timing but still occupy bandwidth
	// and update cache state.
	Store
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Flags annotate memory instructions.
type Flags uint8

const (
	// BypassL1 marks an access that skips the SM-private L1 and goes
	// straight to the shared LLC, as GPU atomics and coherent accesses to
	// shared data do. Such accesses are what create "camping" in front of
	// LLC slices (paper Section IV-3): every SM's requests for the same
	// hot lines serialise at the one slice that owns each line.
	BypassL1 Flags = 1 << iota
)

// Instr is one dynamic warp-level instruction. Memory instructions carry a
// representative byte address for the warp's coalesced access (the model
// works at warp granularity, as reuse-distance GPU cache models do).
type Instr struct {
	Kind  Kind
	Flags Flags
	Addr  uint64
}

// Program generates the instruction stream of a single warp. Next returns
// the next instruction and true, or a zero Instr and false when the warp has
// retired all of its instructions. Programs are single-use; obtain a fresh
// one from the Workload to replay a warp.
type Program interface {
	Next() (Instr, bool)
}

// KernelSpec describes the launch geometry of a workload's kernel grid.
type KernelSpec struct {
	// NumCTAs is the number of thread blocks in the grid.
	NumCTAs int
	// WarpsPerCTA is the number of warps in each thread block.
	WarpsPerCTA int
	// CTAsPerSMLimit caps how many CTAs of this kernel can be resident on
	// one SM, modelling occupancy limits from shared-memory or register
	// usage. Zero means no kernel-imposed limit (the SM's own limits
	// still apply). Occupancy-limited kernels cannot fully hide memory
	// latency, which is what makes their performance latency-sensitive —
	// and therefore what makes miss-rate-curve cliffs translate into
	// super-linear performance jumps.
	CTAsPerSMLimit int
}

// TotalWarps returns the number of warps in the grid.
func (k KernelSpec) TotalWarps() int { return k.NumCTAs * k.WarpsPerCTA }

// Validate reports the first structural problem with the spec.
func (k KernelSpec) Validate() error {
	if k.NumCTAs <= 0 {
		return fmt.Errorf("trace: NumCTAs must be positive, got %d", k.NumCTAs)
	}
	if k.WarpsPerCTA <= 0 {
		return fmt.Errorf("trace: WarpsPerCTA must be positive, got %d", k.WarpsPerCTA)
	}
	if k.CTAsPerSMLimit < 0 {
		return fmt.Errorf("trace: CTAsPerSMLimit must be non-negative, got %d", k.CTAsPerSMLimit)
	}
	return nil
}

// Workload is a complete GPU kernel grid whose warps can be instantiated on
// demand. Implementations must be deterministic: NewProgram(c, w) must
// produce the identical stream every time it is called.
type Workload interface {
	// Name identifies the workload, e.g. "dct".
	Name() string
	// Kernel returns the launch geometry.
	Kernel() KernelSpec
	// NewProgram instantiates the instruction stream of warp w of CTA c.
	NewProgram(cta, warp int) Program
}

// InstructionCount replays every warp of w and returns the total dynamic
// instruction count and the number of memory instructions. It is O(total
// instructions); intended for tests and metadata tables, not inner loops.
func InstructionCount(w Workload) (total, mem uint64) {
	k := w.Kernel()
	for c := 0; c < k.NumCTAs; c++ {
		for wp := 0; wp < k.WarpsPerCTA; wp++ {
			p := w.NewProgram(c, wp)
			for {
				in, ok := p.Next()
				if !ok {
					break
				}
				total++
				if in.Kind == Load || in.Kind == Store {
					mem++
				}
			}
		}
	}
	return total, mem
}

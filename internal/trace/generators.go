package trace

// Strided2DGen walks a row-major 2-D tile: for each of Rows rows it emits
// Cols addresses Stride bytes apart, then jumps RowPitch bytes to the next
// row, wrapping after the last row. It models the tile walks of stencil and
// matrix kernels, whose reuse structure differs from flat streams: adjacent
// rows revisit nearby lines, so the pattern exercises set-conflict and
// partial-reuse behaviour that SeqGen cannot express.
type Strided2DGen struct {
	Base     uint64
	Cols     int
	Rows     int
	Stride   uint64 // bytes between consecutive elements in a row
	RowPitch uint64 // bytes between row starts (≥ Cols*Stride for padding)
	row, col int
}

// Next implements AddrGen.
func (g *Strided2DGen) Next() uint64 {
	a := g.Base + uint64(g.row)*g.RowPitch + uint64(g.col)*g.Stride
	g.col++
	if g.col >= g.Cols {
		g.col = 0
		g.row++
		if g.row >= g.Rows {
			g.row = 0
		}
	}
	return a
}

// IndirectGen models gather accesses (A[idx[i]]): it alternates between the
// index stream (addresses from Index) and the gathered element (addresses
// from Data). Graph and sparse-matrix kernels produce exactly this
// two-level pattern: a sequential index array plus an irregular data array.
type IndirectGen struct {
	Index AddrGen
	Data  AddrGen
	phase bool
}

// Next implements AddrGen.
func (g *IndirectGen) Next() uint64 {
	if !g.phase {
		g.phase = true
		return g.Index.Next()
	}
	g.phase = false
	return g.Data.Next()
}

// PingPongGen alternates direction over a region of Lines lines: forward
// then backward, like time-stepped solvers that sweep a grid in alternating
// order. Its reuse distance is short near the turning points and long
// mid-sweep. The zero-positioned generator sweeps forward first.
type PingPongGen struct {
	Base     uint64
	Stride   uint64
	Lines    int
	pos      int
	backward bool
}

// Next implements AddrGen.
func (g *PingPongGen) Next() uint64 {
	if g.Lines <= 0 {
		return g.Base
	}
	a := g.Base + uint64(g.pos)*g.Stride
	if !g.backward {
		g.pos++
		if g.pos >= g.Lines {
			g.pos = g.Lines - 1
			g.backward = true
		}
	} else {
		g.pos--
		if g.pos < 0 {
			g.pos = 0
			g.backward = false
		}
	}
	return a
}

package trace

import (
	"testing"
	"testing/quick"
)

func TestStrided2DGenRowMajorWalk(t *testing.T) {
	g := &Strided2DGen{Base: 1000, Cols: 3, Rows: 2, Stride: 4, RowPitch: 100}
	want := []uint64{
		1000, 1004, 1008, // row 0
		1100, 1104, 1108, // row 1
		1000, 1004, 1008, // wrapped back to row 0
	}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("access %d = %d, want %d", i, got, w)
		}
	}
}

func TestStrided2DGenPaddingRespected(t *testing.T) {
	// RowPitch larger than Cols*Stride leaves a gap between rows.
	g := &Strided2DGen{Base: 0, Cols: 2, Rows: 2, Stride: 8, RowPitch: 64}
	g.Next() // 0
	g.Next() // 8
	if got := g.Next(); got != 64 {
		t.Errorf("row 1 start = %d, want 64", got)
	}
}

func TestIndirectGenAlternates(t *testing.T) {
	idx := &SeqGen{Base: 0, Stride: 8, Extent: 1 << 20}
	data := NewRandGen(1<<30, 128, 1<<20, 7)
	g := &IndirectGen{Index: idx, Data: data}
	for i := 0; i < 10; i++ {
		a := g.Next()
		if i%2 == 0 {
			if a >= 1<<30 {
				t.Fatalf("access %d should be an index read, got %d", i, a)
			}
		} else if a < 1<<30 {
			t.Fatalf("access %d should be a data read, got %d", i, a)
		}
	}
}

func TestPingPongGenSweeps(t *testing.T) {
	g := &PingPongGen{Base: 0, Stride: 128, Lines: 3}
	want := []uint64{0, 128, 256, 256, 128, 0, 0, 128}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("access %d = %d, want %d (got sequence so far wrong)", i, got, w)
		}
	}
}

func TestPingPongGenDegenerate(t *testing.T) {
	g := &PingPongGen{Base: 42, Stride: 128, Lines: 0}
	if g.Next() != 42 || g.Next() != 42 {
		t.Error("zero-line ping-pong should pin to Base")
	}
	one := &PingPongGen{Base: 0, Stride: 128, Lines: 1}
	for i := 0; i < 5; i++ {
		if one.Next() != 0 {
			t.Fatal("single-line ping-pong should stay at 0")
		}
	}
}

func TestPingPongStaysInRangeProperty(t *testing.T) {
	f := func(linesRaw uint8, steps uint8) bool {
		lines := int(linesRaw)%16 + 1
		g := &PingPongGen{Base: 0, Stride: 128, Lines: lines}
		for i := 0; i < int(steps); i++ {
			a := g.Next()
			if a%128 != 0 || a >= uint64(lines)*128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrided2DStaysInTileProperty(t *testing.T) {
	f := func(colsRaw, rowsRaw, steps uint8) bool {
		cols := int(colsRaw)%8 + 1
		rows := int(rowsRaw)%8 + 1
		g := &Strided2DGen{Base: 0, Cols: cols, Rows: rows, Stride: 4, RowPitch: 64}
		max := uint64(rows-1)*64 + uint64(cols-1)*4
		for i := 0; i < int(steps); i++ {
			if a := g.Next(); a > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package trace

import (
	"math"
	"testing"
)

// An AddrGen with no describer, for the fallback path.
type opaqueGen struct{}

func (opaqueGen) Next() uint64 { return 0 }

func TestDescribeGen(t *testing.T) {
	seq := &SeqGen{Base: 10, Start: 3, Stride: 128, Extent: 4096}
	d := seq.DescribeGen()
	if len(d) != 1 || d[0].Class != GenSeq || d[0].Base != 10 || d[0].Start != 3 ||
		d[0].Stride != 128 || d[0].Extent != 4096 || d[0].Weight != 1 {
		t.Fatalf("SeqGen descriptor = %+v", d)
	}

	rnd := NewRandGen(7, 128, 1<<20, 42)
	d = rnd.DescribeGen()
	if len(d) != 1 || d[0].Class != GenRand || d[0].Base != 7 || d[0].Extent != 1<<20 {
		t.Fatalf("RandGen descriptor = %+v", d)
	}

	il := &InterleaveGen{GenA: seq, GenB: opaqueGen{}, A: 3, B: 1}
	d = il.DescribeGen()
	if len(d) != 2 {
		t.Fatalf("InterleaveGen descriptors = %+v", d)
	}
	if d[0].Class != GenSeq || math.Abs(d[0].Weight-0.75) > 1e-12 {
		t.Errorf("interleave A branch = %+v", d[0])
	}
	if d[1].Class != GenUnknown || math.Abs(d[1].Weight-0.25) > 1e-12 {
		t.Errorf("interleave B branch = %+v", d[1])
	}
}

func TestDescribeGenIsNonDestructive(t *testing.T) {
	seq := &SeqGen{Stride: 128, Extent: 1024}
	want := []uint64{0, 128, 256}
	seq.DescribeGen()
	for i, w := range want {
		if got := seq.Next(); got != w {
			t.Fatalf("address %d after describe = %d, want %d", i, got, w)
		}
	}
}

func TestDescribePhases(t *testing.T) {
	p := NewPhaseProgram(
		Phase{N: 14, ComputePer: 6, Gen: &SeqGen{Stride: 128, Extent: 1 << 20}},
		Phase{N: 0, ComputePer: 1, Gen: &SeqGen{Stride: 128, Extent: 128}}, // skipped
		Phase{N: 5, ComputePer: 2},                                        // pure compute
		Phase{N: 3, ComputePer: 0, Store: true, Flags: BypassL1, Gen: NewRandGen(0, 128, 1<<16, 1)},
	)
	descs := p.DescribePhases()
	if len(descs) != 3 {
		t.Fatalf("got %d phase descriptors, want 3", len(descs))
	}
	if descs[0].MemCount() != 2 { // 14 / (6+1)
		t.Errorf("phase 0 MemCount = %d, want 2", descs[0].MemCount())
	}
	if len(descs[1].Gens) != 0 || descs[1].MemCount() != 0 {
		t.Errorf("pure-compute phase = %+v", descs[1])
	}
	if !descs[2].Store || descs[2].Flags&BypassL1 == 0 || descs[2].MemCount() != 3 {
		t.Errorf("store phase = %+v", descs[2])
	}

	// Description is stable after partial execution: consume a few
	// instructions and describe again.
	for i := 0; i < 10; i++ {
		p.Next()
	}
	again := p.DescribePhases()
	if len(again) != 3 || again[0].N != 14 {
		t.Errorf("post-execution description changed: %+v", again)
	}
}

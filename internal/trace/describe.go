package trace

// Static descriptors: an optional, non-destructive view of the address
// structure of a program, for analytical modelling (internal/analytic).
// Where MemLookahead previews *when* the next memory instruction comes,
// the describers expose *where* a program's memory instructions go — the
// generator parameters (base, stride, extent) and the phase shape — so a
// predictor can estimate cache hit rates and bandwidth demand without
// replaying a single instruction. Programs and generators that cannot
// describe themselves simply don't implement the interfaces; callers fall
// back to GenUnknown, which the analytic tier reports as lowered
// confidence rather than a wrong answer.

// GenClass classifies an address generator's access pattern.
type GenClass int

const (
	// GenUnknown marks a generator that cannot describe itself.
	GenUnknown GenClass = iota
	// GenSeq is a strided sequential walk (SeqGen).
	GenSeq
	// GenRand is a uniform random walk (RandGen).
	GenRand
)

// GenDesc statically describes one address generator (or one branch of a
// composite generator). Weight is the fraction of the owning stream's
// accesses this descriptor covers; the descriptors of one generator always
// sum to 1.
type GenDesc struct {
	Class  GenClass
	Base   uint64
	Start  uint64
	Stride uint64
	Extent uint64
	Weight float64
}

// GenDescriber is the optional AddrGen capability. DescribeGen must not
// consume addresses or mutate generator state.
type GenDescriber interface {
	DescribeGen() []GenDesc
}

// DescribeGen implements GenDescriber.
func (g *SeqGen) DescribeGen() []GenDesc {
	return []GenDesc{{Class: GenSeq, Base: g.Base, Start: g.Start, Stride: g.Stride, Extent: g.Extent, Weight: 1}}
}

// DescribeGen implements GenDescriber.
func (g *RandGen) DescribeGen() []GenDesc {
	return []GenDesc{{Class: GenRand, Base: g.Base, Stride: g.Stride, Extent: g.Extent, Weight: 1}}
}

// DescribeGen implements GenDescriber by scaling each child's descriptors
// by its share of the interleave period.
func (g *InterleaveGen) DescribeGen() []GenDesc {
	period := g.A + g.B
	if period <= 0 {
		return []GenDesc{{Class: GenUnknown, Weight: 1}}
	}
	out := append(DescribeGenOf(g.GenA, float64(g.A)/float64(period)),
		DescribeGenOf(g.GenB, float64(g.B)/float64(period))...)
	return out
}

// DescribeGenOf describes any generator, scaled to the given total weight:
// describers report their structure, everything else one GenUnknown entry.
// A nil generator describes to nothing (no memory accesses).
func DescribeGenOf(g AddrGen, weight float64) []GenDesc {
	if g == nil || weight <= 0 {
		return nil
	}
	d, ok := g.(GenDescriber)
	if !ok {
		return []GenDesc{{Class: GenUnknown, Weight: weight}}
	}
	descs := d.DescribeGen()
	out := make([]GenDesc, len(descs))
	for i, dd := range descs {
		dd.Weight *= weight
		out[i] = dd
	}
	return out
}

// PhaseDesc statically describes one phase of a program: N instructions in
// groups of ComputePer computes followed by one memory instruction drawn
// from the generators in Gens (empty Gens means pure compute).
type PhaseDesc struct {
	N          int
	ComputePer int
	Store      bool
	Flags      Flags
	Gens       []GenDesc
}

// MemCount returns the number of memory instructions the phase emits: one
// per completed (ComputePer+1)-instruction group.
func (p PhaseDesc) MemCount() int {
	if len(p.Gens) == 0 || p.N <= 0 {
		return 0
	}
	return p.N / (p.ComputePer + 1)
}

// PhaseDescriber is the optional Program capability: a static description
// of the complete program (regardless of how far execution has advanced).
// DescribePhases must not consume instructions or mutate generator state.
type PhaseDescriber interface {
	DescribePhases() []PhaseDesc
}

// DescribePhases implements PhaseDescriber. It always describes the full
// phase list, including phases already executed.
func (p *PhaseProgram) DescribePhases() []PhaseDesc {
	out := make([]PhaseDesc, 0, len(p.phases))
	for i := range p.phases {
		ph := &p.phases[i]
		if ph.N <= 0 {
			continue
		}
		out = append(out, PhaseDesc{
			N:          ph.N,
			ComputePer: ph.ComputePer,
			Store:      ph.Store,
			Flags:      ph.Flags,
			Gens:       DescribeGenOf(ph.Gen, 1),
		})
	}
	return out
}

package trace

// Arena recycles the per-warp objects a CTA launch creates — PhaseProgram
// shells, their phase buffers, and address generators — so that steady-state
// simulation launches CTAs without allocating. A simulation owns one Arena;
// programs built from it return via Release when their warp retires, and the
// next launch reuses the freed objects. The peak object population equals
// the resident-warp limit, reached during the initial fill, so after warm-up
// every acquisition is served from a pool (TestSteadyStateNoAllocs pins
// this).
//
// Ownership rules:
//
//   - A program built from an Arena owns its phase buffer and every
//     generator reachable from its phases. None of them may be shared with
//     another program or retained by the caller after Release.
//   - Sharing one generator across several phases of the SAME program is
//     fine (the camping pattern does this); Release deduplicates within the
//     program before pooling.
//   - Composite generators (InterleaveGen, IndirectGen) own their children:
//     a child must not also appear directly in a phase.
//   - All methods are nil-safe: on a nil *Arena they fall back to plain heap
//     allocation and Release is a no-op, so factory code can be written once
//     and run with or without an arena (results are identical either way —
//     the arena only changes where objects live, never field values).
type Arena struct {
	progs     []*PhaseProgram
	phaseBufs [][]Phase
	seqs      []*SeqGen
	rands     []*RandGen
	inters    []*InterleaveGen
	strided   []*Strided2DGen
	indirects []*IndirectGen
	pingpongs []*PingPongGen
}

// NewArena returns an Arena whose pools are pre-sized for about hint
// simultaneously live programs (typically SMs × warps-per-SM), so that
// releasing a full population never grows a pool slice.
func NewArena(hint int) *Arena {
	if hint < 1 {
		hint = 1
	}
	return &Arena{
		progs:     make([]*PhaseProgram, 0, hint),
		phaseBufs: make([][]Phase, 0, hint),
		seqs:      make([]*SeqGen, 0, 2*hint),
		rands:     make([]*RandGen, 0, 2*hint),
		inters:    make([]*InterleaveGen, 0, hint),
		strided:   make([]*Strided2DGen, 0, hint),
		indirects: make([]*IndirectGen, 0, hint),
		pingpongs: make([]*PingPongGen, 0, hint),
	}
}

// Phases returns an empty phase buffer to append a program's phases to,
// pooled when possible, with at least the given capacity hint when freshly
// allocated. The buffer's ownership passes to the program via NewProgram.
func (a *Arena) Phases(capHint int) []Phase {
	if a != nil {
		if n := len(a.phaseBufs); n > 0 {
			b := a.phaseBufs[n-1]
			a.phaseBufs = a.phaseBufs[:n-1]
			return b
		}
	}
	if capHint < 1 {
		capHint = 1
	}
	return make([]Phase, 0, capHint)
}

// NewProgram builds a Program over phases, taking ownership of the slice.
// It is the arena counterpart of NewPhaseProgram (which copies nothing
// either, but allocates the shell).
func (a *Arena) NewProgram(phases []Phase) *PhaseProgram {
	if a != nil {
		if n := len(a.progs); n > 0 {
			p := a.progs[n-1]
			a.progs = a.progs[:n-1]
			*p = PhaseProgram{phases: phases}
			return p
		}
	}
	return &PhaseProgram{phases: phases}
}

// Seq returns a SeqGen with the given parameters (see SeqGen's field docs).
func (a *Arena) Seq(base, start, stride, extent uint64) *SeqGen {
	if a != nil {
		if n := len(a.seqs); n > 0 {
			g := a.seqs[n-1]
			a.seqs = a.seqs[:n-1]
			*g = SeqGen{Base: base, Start: start, Stride: stride, Extent: extent}
			return g
		}
	}
	return &SeqGen{Base: base, Start: start, Stride: stride, Extent: extent}
}

// Rand returns a seeded RandGen; the arena counterpart of NewRandGen.
func (a *Arena) Rand(base, stride, extent, seed uint64) *RandGen {
	if a != nil {
		if n := len(a.rands); n > 0 {
			g := a.rands[n-1]
			a.rands = a.rands[:n-1]
			*g = RandGen{Base: base, Stride: stride, Extent: extent, rng: NewXorShift(seed)}
			return g
		}
	}
	return NewRandGen(base, stride, extent, seed)
}

// Interleave returns an InterleaveGen over the two child generators, whose
// ownership passes to it (they are released with it).
func (a *Arena) Interleave(genA, genB AddrGen, nA, nB int) *InterleaveGen {
	if a != nil {
		if n := len(a.inters); n > 0 {
			g := a.inters[n-1]
			a.inters = a.inters[:n-1]
			*g = InterleaveGen{GenA: genA, GenB: genB, A: nA, B: nB}
			return g
		}
	}
	return &InterleaveGen{GenA: genA, GenB: genB, A: nA, B: nB}
}

// Strided2D returns a Strided2DGen with the given tile geometry.
func (a *Arena) Strided2D(base uint64, cols, rows int, stride, rowPitch uint64) *Strided2DGen {
	if a != nil {
		if n := len(a.strided); n > 0 {
			g := a.strided[n-1]
			a.strided = a.strided[:n-1]
			*g = Strided2DGen{Base: base, Cols: cols, Rows: rows, Stride: stride, RowPitch: rowPitch}
			return g
		}
	}
	return &Strided2DGen{Base: base, Cols: cols, Rows: rows, Stride: stride, RowPitch: rowPitch}
}

// Indirect returns an IndirectGen over the index and data generators, whose
// ownership passes to it.
func (a *Arena) Indirect(index, data AddrGen) *IndirectGen {
	if a != nil {
		if n := len(a.indirects); n > 0 {
			g := a.indirects[n-1]
			a.indirects = a.indirects[:n-1]
			*g = IndirectGen{Index: index, Data: data}
			return g
		}
	}
	return &IndirectGen{Index: index, Data: data}
}

// PingPong returns a PingPongGen over the given region.
func (a *Arena) PingPong(base, stride uint64, lines int) *PingPongGen {
	if a != nil {
		if n := len(a.pingpongs); n > 0 {
			g := a.pingpongs[n-1]
			a.pingpongs = a.pingpongs[:n-1]
			*g = PingPongGen{Base: base, Stride: stride, Lines: lines}
			return g
		}
	}
	return &PingPongGen{Base: base, Stride: stride, Lines: lines}
}

// Release returns a retired program's objects to the pools: its generators
// (deduplicated — one generator may serve several phases of the program),
// its phase buffer, and the program shell itself. Programs of types the
// arena did not build (anything but *PhaseProgram) are ignored, as is a nil
// program or a nil arena.
func (a *Arena) Release(p Program) {
	if a == nil || p == nil {
		return
	}
	pp, ok := p.(*PhaseProgram)
	if !ok {
		return
	}
	ph := pp.phases
	for i := range ph {
		g := ph[i].Gen
		if g == nil {
			continue
		}
		dup := false
		for j := 0; j < i; j++ {
			if ph[j].Gen == g {
				dup = true
				break
			}
		}
		if !dup {
			a.releaseGen(g)
		}
	}
	for i := range ph {
		ph[i] = Phase{} // drop generator references from the pooled buffer
	}
	*pp = PhaseProgram{}
	a.phaseBufs = append(a.phaseBufs, ph[:0])
	a.progs = append(a.progs, pp)
}

// releaseGen pools one generator, recursing into composite generators'
// children. Unknown AddrGen implementations are ignored.
func (a *Arena) releaseGen(g AddrGen) {
	switch v := g.(type) {
	case *SeqGen:
		a.seqs = append(a.seqs, v)
	case *RandGen:
		a.rands = append(a.rands, v)
	case *InterleaveGen:
		if v.GenA != nil {
			a.releaseGen(v.GenA)
		}
		if v.GenB != nil && v.GenB != v.GenA {
			a.releaseGen(v.GenB)
		}
		*v = InterleaveGen{}
		a.inters = append(a.inters, v)
	case *Strided2DGen:
		a.strided = append(a.strided, v)
	case *IndirectGen:
		if v.Index != nil {
			a.releaseGen(v.Index)
		}
		if v.Data != nil && v.Data != v.Index {
			a.releaseGen(v.Data)
		}
		*v = IndirectGen{}
		a.indirects = append(a.indirects, v)
	case *PingPongGen:
		a.pingpongs = append(a.pingpongs, v)
	}
}

// ArenaWorkload is a Workload whose programs can be built from (and via
// Release returned to) an Arena. NewProgramIn with a nil arena must behave
// exactly like NewProgram; with an arena it must produce the identical
// instruction stream, differing only in where objects are allocated.
type ArenaWorkload interface {
	Workload
	NewProgramIn(a *Arena, cta, warp int) Program
}

// AsArenaWorkload returns w as an ArenaWorkload if its programs are really
// drawn from the arena — the signal a driver needs before it may Release
// retired programs for reuse. A FuncWorkload satisfies the interface even
// with a plain Factory (NewProgramIn then ignores the arena), and such a
// factory may hand out programs it retains, so it only counts as
// arena-managed when FactoryIn is set.
func AsArenaWorkload(w Workload) (ArenaWorkload, bool) {
	if fw, ok := w.(*FuncWorkload); ok {
		if fw.FactoryIn == nil {
			return nil, false
		}
		return fw, true
	}
	aw, ok := w.(ArenaWorkload)
	return aw, ok
}

// Package parallel is the shard-runner pool behind the MCM simulator's
// sharded execution mode (internal/chiplet with Options.Shards > 1). It
// owns exactly one thing: a fixed set of worker goroutines, one per shard,
// that execute a caller-supplied phase function in lockstep — every worker
// starts a phase together and the phase does not return to the caller until
// every worker has finished. That pair of synchronisation points is the
// cycle barrier the deterministic sharded run loop is built on.
//
// # Determinism contract
//
// The pool adds no ordering of its own and must not be asked to: workers
// are pinned to shard ids for the pool's lifetime (worker i always runs
// fn(i)), and Run returns only after all workers' writes are visible to the
// caller (the barrier's atomics carry the happens-before edges). Everything
// order-sensitive — applying cross-shard effects in ascending shard id,
// merging counters, deciding the next cycle — belongs in the caller's
// serial sections between Run calls. A phase function may touch only state
// owned by its shard plus read-only shared state; the race gate
// (`make race`) checks that discipline on the real run loop.
//
// # Barrier implementation
//
// The barrier is sense-reversing: each participant flips a local sense and
// spins until the shared sense catches up, so consecutive phases cannot
// observe each other's release. Waiters spin briefly, then fall back to
// runtime.Gosched so the pool degrades gracefully when GOMAXPROCS (or the
// machine) gives it fewer cores than shards — mandatory on the single-core
// CI runner, where a pure spin barrier would deadlock the scheduler's
// cooperative preemption into multi-millisecond stalls.
//
// A panic in a phase function is captured, the phase still completes at the
// barrier (so no worker is left stranded), and Run re-panics with the
// lowest-shard panic value — deterministic even when several shards fail in
// the same phase.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// spinBudget is how many times a barrier waiter polls the shared sense
// before yielding the processor. Small on purpose: the pool must stay
// usable when shards outnumber cores, and one Gosched per miss costs far
// less than a starved peer.
const spinBudget = 64

// barrier is a sense-reversing barrier for a fixed number of participants.
type barrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
}

// await blocks until all n participants have arrived. local is the
// participant's private sense word, flipped on every crossing.
func (b *barrier) await(local *uint32) {
	s := *local ^ 1
	*local = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s)
		return
	}
	spins := 0
	for b.sense.Load() != s {
		if spins++; spins >= spinBudget {
			spins = 0
			runtime.Gosched()
		}
	}
}

// shardPanic records a panic captured in a worker's phase function.
type shardPanic struct {
	val   any
	stack []byte
}

// Pool runs a phase function across a fixed set of shard workers in
// lockstep. Use NewPool; the zero value is unusable. A Pool is not safe for
// concurrent Run calls — it belongs to one coordinator goroutine, the way
// the sharded run loop owns one for the duration of a simulation.
type Pool struct {
	n       int
	fn      func(shard int)
	closing bool
	closed  bool
	start   barrier // coordinator + workers: phase function is set
	done    barrier // coordinator + workers: phase function has run everywhere
	startS  uint32  // coordinator's private senses
	doneS   uint32
	panics  []shardPanic // worker i writes only slot i
}

// NewPool starts n worker goroutines (one per shard, n >= 1) and returns
// the pool. The workers idle at the start barrier until Run or Close.
func NewPool(n int) *Pool {
	return NewPoolLabeled(n, "")
}

// NewPoolLabeled is NewPool with runtime/pprof labels attached to every
// worker goroutine: "shard" carries the worker's shard id and, when sim is
// non-empty, "sim" names the simulator kind driving the pool. CPU profiles
// (-cpuprofile on the CLIs, /debug/pprof on the daemon) then attribute
// samples per shard per simulator, which is how barrier imbalance between
// shards is diagnosed.
func NewPoolLabeled(n int, sim string) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("parallel: pool size must be >= 1, got %d", n))
	}
	p := &Pool{n: n, panics: make([]shardPanic, n)}
	p.start.n = int32(n + 1)
	p.done.n = int32(n + 1)
	for i := 0; i < n; i++ {
		go func(shard int) {
			kv := []string{"shard", strconv.Itoa(shard)}
			if sim != "" {
				kv = append(kv, "sim", sim)
			}
			pprof.Do(context.Background(), pprof.Labels(kv...), func(context.Context) {
				p.worker(shard)
			})
		}(i)
	}
	return p
}

// Size returns the number of shard workers.
func (p *Pool) Size() int { return p.n }

func (p *Pool) worker(shard int) {
	var startS, doneS uint32
	for {
		p.start.await(&startS)
		if p.closing {
			return
		}
		p.runOne(shard)
		p.done.await(&doneS)
	}
}

// runOne executes the current phase function for one shard, capturing a
// panic so the worker still reaches the done barrier.
func (p *Pool) runOne(shard int) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			p.panics[shard] = shardPanic{val: r, stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	p.fn(shard)
}

// Run executes fn(shard) on every worker and returns when all have
// finished. The caller's writes before Run are visible to every worker, and
// all workers' writes are visible to the caller after Run. If any shard's
// fn panicked, Run re-panics with the lowest shard's panic value after all
// workers have quiesced at the barrier.
func (p *Pool) Run(fn func(shard int)) {
	if p.closed {
		panic("parallel: Run on closed pool")
	}
	p.fn = fn
	p.start.await(&p.startS)
	p.done.await(&p.doneS)
	p.fn = nil
	for i := range p.panics {
		if p.panics[i].val != nil {
			r := p.panics[i]
			for j := range p.panics {
				p.panics[j] = shardPanic{}
			}
			panic(fmt.Sprintf("parallel: shard %d panicked: %v\n%s", i, r.val, r.stack))
		}
	}
}

// Close releases the worker goroutines. Idempotent; Run after Close panics.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.closing = true
	p.start.await(&p.startS)
}

package parallel

import (
	"strings"
	"testing"
)

// TestRunVisitsEveryShardEveryPhase checks the lockstep contract: each of a
// sequence of phases runs fn exactly once per shard, and writes made by the
// workers in phase k are visible to the coordinator (and to every worker in
// phase k+1) — the visibility the sharded run loop's serial merge sections
// depend on.
func TestRunVisitsEveryShardEveryPhase(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		p := NewPool(n)
		// Ping-pong stamp arrays: each phase writes cur and reads prev (the
		// previous phase's writes), so cross-phase visibility is exercised
		// without same-phase read/write overlap.
		prev, cur := make([]int, n), make([]int, n)
		const phases = 200
		for phase := 1; phase <= phases; phase++ {
			p.Run(func(shard int) {
				for s := 0; s < n; s++ {
					if prev[s] != phase-1 {
						panic("stale phase stamp")
					}
				}
				cur[shard] = phase
			})
			for s := 0; s < n; s++ {
				if cur[s] != phase {
					t.Fatalf("n=%d phase %d: shard %d stamp %d", n, phase, s, cur[s])
				}
			}
			prev, cur = cur, prev
		}
		p.Close()
		p.Close() // idempotent
	}
}

// TestPanicPropagation: a panicking shard must not strand the others at the
// barrier, Run must re-panic with the lowest shard's value, and the pool
// must stay usable for subsequent phases.
func TestPanicPropagation(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	caught := func() (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		p.Run(func(shard int) {
			if shard == 1 || shard == 3 {
				panic("boom")
			}
		})
		return ""
	}()
	if !strings.Contains(caught, "shard 1 panicked: boom") {
		t.Fatalf("Run panic = %q, want lowest-shard panic (shard 1)", caught)
	}
	// The pool recovers: the next phase runs cleanly on all shards.
	ran := make([]bool, 4)
	p.Run(func(shard int) { ran[shard] = true })
	for s, ok := range ran {
		if !ok {
			t.Fatalf("shard %d did not run after a panic phase", s)
		}
	}
}

// TestRunAfterClosePanics pins the misuse guard.
func TestRunAfterClosePanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	p.Run(func(int) {})
}

// TestPoolSizeValidation pins the constructor guard.
func TestPoolSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

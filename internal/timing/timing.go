// Package timing is the shared cycle-advance kernel behind the event-driven
// run loops of internal/gpu and internal/chiplet. It owns the wake-up
// machinery both simulators previously duplicated — which units are due at
// which cycle, in what order they tick within a cycle, how far the clock may
// skip when nobody can issue, and the lazy stall-accrual bookkeeping that
// keeps per-cycle classification exact without touching stalled units.
//
// The wake-up structure is hierarchical:
//
//   - A due-wheel: one bitset of units per cycle over a small power-of-two
//     horizon (default 64 cycles). A wake-up landing within the horizon is
//     two stores (set a bit in the slot's bitset, set the slot's bit in a
//     one-word occupancy mask) and never pays for heap ordering. This
//     absorbs not just next-cycle wake-ups but the short memory latencies —
//     L1 hits, LLC hits, near-horizon DRAM returns — that previously
//     spilled into the heap on every miss.
//   - An indexed min-heap (internal/sched) for wake-ups at or beyond the
//     horizon (DRAM round trips, inter-chiplet hops). Entries whose cycle
//     comes due are merged into the wheel's current slot at the top of
//     Step, so the drain below sees one uniform structure.
//
// Within a visited cycle, units tick in ascending unit id: the slot bitset
// is walked with bits.TrailingZeros64 (low to high = ascending id) and the
// heap breaks key ties toward the smaller index, so merged entries preserve
// the same order. That order is architecturally visible — the simulators'
// shared resources (NoC ports, LLC slices, memory controllers, CTA queues)
// are order-sensitive within a cycle — and matches the dense reference
// loops, which is what keeps event-driven results bit-identical to them.
//
// Invariants the kernel maintains (and the simulators rely on):
//
//   - A unit has at most one pending wake-up, recorded in wakeAt: it lives
//     in exactly one wheel slot or the heap, never both. A unit with no
//     pending wake-up is idle and is only re-entered via ScheduleNow (a CTA
//     launch in the simulators).
//   - The clock never skips past a pending wake-up: the skip target is the
//     minimum of the wheel's next occupied slot and the heap's minimum key.
//   - Every unit's every cycle is classified exactly once: the interval
//     [accrueAt[u], now) is settled with one Driver.AccrueStall call before
//     the unit ticks (or when a reader flushes), and the visited cycle
//     itself with one Driver.AccrueTick call at the end of Step.
//
// The kernel is deliberately ignorant of what a "unit" is. The simulator
// supplies a Driver; per-visited-cycle work the simulators batch (MSHR
// expiry before the tick, warm-up resets after the event charge) hangs off
// TickUnit and CycleEnd.
//
// # Driver contract
//
// The kernel decides which units tick at which cycle; the Driver does the
// ticking and the accounting. TickUnit runs once per due unit per visited
// cycle, in ascending unit id; AccrueStall settles a unit's un-ticked
// interval in one call; AccrueTick classifies each ticked unit's own cycle;
// CycleEnd runs once per visited cycle between the last TickUnit and the
// AccrueTick batch. Driver methods must not call back into the Kernel
// except CycleEnd, which may call RaiseAccrualFloor and ResetSkipped (the
// warm-up reset path).
//
// # Phase API and barrier ordering
//
// Step is also exposed as its composable phases, which is how the sharded
// MCM run loop (internal/chiplet with Options.Shards > 1, coordinated by
// internal/parallel) drives one private Kernel per shard in lockstep:
//
//   - TickCycle drains the current cycle's due units (ascending unit id
//     within each shard's kernel) and reports whether any unit issued.
//   - FinishCycle runs the driver's CycleEnd hook and the AccrueTick batch.
//   - NextPending exposes the earliest pending wake-up so a coordinator can
//     take the minimum across kernels.
//   - AdvanceTo moves the clock to the cycle the coordinator picked,
//     charging the skipped-cycle counter exactly as Step would.
//   - Reschedule and WakeAt let the coordinator repair a provisional
//     wake-up between cycles (the sharded loop's deferred-memory fix-ups).
//
// The ordering rules a parallel coordinator must preserve for bit-identity
// with sequential Step are: every kernel finishes TickCycle+FinishCycle for
// cycle c before any cross-kernel effect of cycle c is applied (the cycle
// barrier); cross-kernel effects are applied in ascending shard id, which —
// because shards own contiguous unit-id ranges — is ascending global unit
// id, the same order the sequential drain produces; and all kernels
// AdvanceTo the same next cycle, computed as now+1 if any kernel's
// TickCycle issued, else the minimum NextPending across kernels (clamped to
// now+1). See docs/PARALLELISM.md for the full argument.
package timing

import (
	"fmt"
	"math/bits"

	"gpuscale/internal/sched"
)

// NoWake is the Outcome.Wake value meaning the unit has no pending wake-up
// and goes idle until ScheduleNow re-enters it.
const NoWake int64 = -1

// DefaultHorizon is the due-wheel span in cycles when Config.Horizon is 0.
// 64 keeps the occupancy mask a single word while covering the short
// wake-up distances (compute latencies, L1/LLC hits and queueing) that
// dominate both simulators' reschedules.
const DefaultHorizon = 64

// Outcome is what Driver.TickUnit reports back for one unit tick.
type Outcome struct {
	// Wake is the next cycle the unit can act, or NoWake if the unit is
	// idle (no ready warp, nothing pending). It must be NoWake or a cycle
	// strictly greater than the tick's now.
	Wake int64
	// Kind is the cycle classification the driver's AccrueTick will receive
	// for this tick (the simulators store sm.TickKind here).
	Kind uint8
	// Issued reports whether the unit did work that forces the clock to
	// advance by exactly one cycle (an instruction issue). If no ticked
	// unit issues, the kernel event-skips to the next wake-up.
	Issued bool
}

// Driver is the simulator half of the kernel contract. The kernel decides
// which units tick at which cycle; the driver does the ticking and the
// accounting. None of the methods may call back into the Kernel except
// CycleEnd, which may call RaiseAccrualFloor and ResetSkipped (the warm-up
// reset path).
type Driver interface {
	// TickUnit ticks one due unit at the given cycle. The simulators run
	// their per-visited-cycle batched work here (MSHR expiry immediately
	// before the SM tick) and their own bookkeeping (issue counters,
	// retirement-driven launch re-scans).
	TickUnit(now int64, unit int) Outcome
	// AccrueStall settles a unit's standing stall classification over an
	// interval of cycles in which it was not ticked (one call per interval,
	// not per cycle).
	AccrueStall(unit int, cycles uint64)
	// AccrueTick classifies a ticked unit's own cycle with the Kind its
	// TickUnit returned.
	AccrueTick(unit int, kind uint8)
	// CycleEnd runs once per visited cycle after every due unit has ticked
	// and before their cycle classifications are accrued — the point where
	// the simulators charge per-cycle simulation events and check warm-up.
	CycleEnd(now int64)
}

// Config sizes a Kernel.
type Config struct {
	// Units is the number of tickable units (SMs, chip-major across
	// chiplets in the MCM simulator).
	Units int
	// Horizon is the due-wheel span in cycles: a power of two in [1, 64],
	// or 0 for DefaultHorizon. Wake-ups closer than Horizon cycles go to
	// the wheel; the rest to the heap. Horizon 1 degenerates to a pure
	// heap (useful as a property-test reference point).
	Horizon int
	// NoSkip disables event-skipping: the clock advances one cycle at a
	// time even when nothing issues (the event-skip ablation mode).
	NoSkip bool
}

// Kernel is the shared cycle-advance engine. Use New; the zero value is
// unusable. A Kernel allocates only at construction — Step, ScheduleNow and
// the flush methods are allocation-free, which the simulators' steady-state
// zero-alloc guards depend on.
type Kernel struct {
	d       Driver
	units   int
	horizon int
	hmask   int64       // horizon - 1
	words   int         // bitset words per wheel slot: ceil(units/64)
	wheel   []uint64    // horizon × words slot bitsets, slot = cycle & hmask
	busy    uint64      // bit s set ⇒ slot s may hold entries
	wakeAt  []int64     // unit → pending wake-up cycle, NoWake if none
	heap    *sched.Heap // beyond-horizon wake-ups
	now     int64
	noSkip  bool
	skipped int64

	accrueAt   []int64 // unit → first cycle not yet classified
	tickedID   []int   // scratch: units ticked this cycle
	tickedKind []uint8
	nTicked    int // ticked units recorded for the current cycle's FinishCycle
}

// New builds a Kernel over cfg.Units units driven by d.
func New(cfg Config, d Driver) (*Kernel, error) {
	if cfg.Units <= 0 {
		return nil, fmt.Errorf("timing: units must be positive, got %d", cfg.Units)
	}
	h := cfg.Horizon
	if h == 0 {
		h = DefaultHorizon
	}
	if h < 1 || h > 64 || h&(h-1) != 0 {
		return nil, fmt.Errorf("timing: horizon must be a power of two in [1, 64], got %d", cfg.Horizon)
	}
	if d == nil {
		return nil, fmt.Errorf("timing: nil driver")
	}
	k := &Kernel{
		d:          d,
		units:      cfg.Units,
		horizon:    h,
		hmask:      int64(h - 1),
		words:      (cfg.Units + 63) / 64,
		wakeAt:     make([]int64, cfg.Units),
		heap:       sched.NewHeap(cfg.Units),
		noSkip:     cfg.NoSkip,
		accrueAt:   make([]int64, cfg.Units),
		tickedID:   make([]int, cfg.Units),
		tickedKind: make([]uint8, cfg.Units),
	}
	k.wheel = make([]uint64, h*k.words)
	for i := range k.wakeAt {
		k.wakeAt[i] = NoWake
	}
	return k, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, d Driver) *Kernel {
	k, err := New(cfg, d)
	if err != nil {
		panic(err)
	}
	return k
}

// Now returns the current cycle — the cycle the next Step will visit.
func (k *Kernel) Now() int64 { return k.now }

// Skipped returns the cumulative cycles elided by event-skipping.
func (k *Kernel) Skipped() int64 { return k.skipped }

// ResetSkipped zeroes the skipped-cycle counter (the warm-up reset path).
func (k *Kernel) ResetSkipped() { k.skipped = 0 }

// Pending reports whether any unit has a pending wake-up.
func (k *Kernel) Pending() bool { return k.busy != 0 || k.heap.Len() > 0 }

// ScheduleNow schedules a unit to tick at the current cycle, before the
// next Step — the simulators call it when a CTA launch makes an idle (or
// later-scheduled) unit actionable immediately. Any pending future wake-up
// is dropped first, preserving the at-most-one-entry invariant; the unit's
// standing accrual interval is settled up to now before the launch can
// change its classification. Must not be called from inside Step.
func (k *Kernel) ScheduleNow(unit int) {
	k.flushAccrual(unit)
	if k.wakeAt[unit] == k.now {
		return // already due this cycle
	}
	k.drop(unit)
	slot := int(k.now & k.hmask)
	k.wheel[slot*k.words+unit>>6] |= 1 << (uint(unit) & 63)
	k.busy |= 1 << uint(slot)
	k.wakeAt[unit] = k.now
}

// drop removes a unit's pending wake-up entry, wherever it lives. The entry
// is in the wheel iff the unit's bit is set in the slot its wake cycle maps
// to — only this unit ever sets that bit, and it has at most one entry.
// Heap entries can sit at any distance (they are merged only when due), so
// a distance test would lie. No-op when the unit has no pending wake-up.
func (k *Kernel) drop(unit int) {
	c := k.wakeAt[unit]
	if c == NoWake {
		return
	}
	w := int(c&k.hmask)*k.words + unit>>6
	bit := uint64(1) << (uint(unit) & 63)
	if k.wheel[w]&bit != 0 {
		k.wheel[w] &^= bit
		k.dropBusyIfEmpty(int(c & k.hmask))
	} else {
		k.heap.Remove(unit)
	}
	k.wakeAt[unit] = NoWake
}

// Reschedule replaces a unit's pending wake-up (if any) with cycle c >= now.
// A wake-up at now lands in the current cycle's drain, so calling this
// before TickCycle makes the unit tick this very cycle. Unlike ScheduleNow
// it does not settle the unit's accrual interval: the sharded run loop uses
// it to repair a provisional wake-up between cycles, where the unit's stall
// classification is unchanged and flushing here would diverge from the
// sequential accounting. Must not be called from inside Step/TickCycle.
func (k *Kernel) Reschedule(unit int, c int64) {
	if k.wakeAt[unit] == c {
		return
	}
	k.drop(unit)
	k.wake(unit, c)
}

// WakeAt returns the unit's pending wake-up cycle, or NoWake if it is idle.
func (k *Kernel) WakeAt(unit int) int64 { return k.wakeAt[unit] }

// dropBusyIfEmpty clears the slot's occupancy bit when its bitset drained
// to zero, so the skip scan cannot stop at a cycle with nothing due (which
// would charge phantom per-cycle events and break bit-identity).
func (k *Kernel) dropBusyIfEmpty(slot int) {
	base := slot * k.words
	for _, w := range k.wheel[base : base+k.words] {
		if w != 0 {
			return
		}
	}
	k.busy &^= 1 << uint(slot)
}

// wake registers a unit's next wake-up cycle c > now: within the horizon it
// goes to the wheel, at or beyond it to the heap. (Distance exactly equal
// to the horizon must use the heap — its slot would alias the cycle
// currently being drained.)
func (k *Kernel) wake(unit int, c int64) {
	k.wakeAt[unit] = c
	if d := c - k.now; d > 0 && d < int64(k.horizon) {
		slot := int(c & k.hmask)
		k.wheel[slot*k.words+unit>>6] |= 1 << (uint(unit) & 63)
		k.busy |= 1 << uint(slot)
		return
	}
	k.heap.Set(unit, c)
}

// flushAccrual settles a unit's standing classification over
// [accrueAt[unit], now) with one Driver.AccrueStall call. Exact because the
// classification cannot change between the unit's ticks (see the gpu
// simulator's stall-kind invariant).
func (k *Kernel) flushAccrual(unit int) {
	if d := k.now - k.accrueAt[unit]; d > 0 {
		k.d.AccrueStall(unit, uint64(d))
		k.accrueAt[unit] = k.now
	}
}

// FlushAll settles every unit's accrual interval up to now, so aggregate
// statistics read exactly as if every cycle had been accrued eagerly.
func (k *Kernel) FlushAll() {
	for u := 0; u < k.units; u++ {
		k.flushAccrual(u)
	}
}

// RaiseAccrualFloor discards any un-flushed accrual interval preceding the
// current cycle — the warm-up statistics reset. Units already settled past
// now (those ticked this cycle sit at now+1) are left alone: lowering them
// would double-count the triggering cycle.
func (k *Kernel) RaiseAccrualFloor() {
	for u := range k.accrueAt {
		if k.accrueAt[u] < k.now {
			k.accrueAt[u] = k.now
		}
	}
}

// Step visits the current cycle: it ticks every due unit in ascending id
// order, runs the driver's cycle-end hook, classifies the ticked units'
// cycle, and advances the clock — by one cycle if any unit issued (or
// NoSkip is set), otherwise straight to the earliest pending wake-up. It is
// exactly TickCycle + FinishCycle + the advance decision; a parallel
// coordinator runs the same phases with barriers between them.
func (k *Kernel) Step() {
	issued := k.TickCycle()
	k.FinishCycle()
	if issued || k.noSkip {
		k.AdvanceTo(k.now + 1)
		return
	}
	next := k.NextPending()
	if next < k.now+1 {
		next = k.now + 1 // NoWake, or a heap entry already due this cycle
	}
	k.AdvanceTo(next)
}

// TickCycle visits the current cycle's drain phase: it merges due heap
// entries into the wheel and ticks every due unit in ascending id order,
// recording each tick's classification for FinishCycle. It reports whether
// any unit issued. A cycle with no due units is a valid no-op (TickCycle
// reports false); the sharded run loop hits that when another shard owns
// the cycle's only work.
func (k *Kernel) TickCycle() bool {
	now := k.now
	slot := int(now & k.hmask)
	base := slot * k.words
	// Merge due heap entries into the current slot so the drain below sees
	// one structure. Keys below now cannot exist (the clock never skips
	// past a pending wake-up).
	for k.heap.Len() > 0 && k.heap.MinKey() <= now {
		u, _ := k.heap.Pop()
		k.wheel[base+u>>6] |= 1 << (uint(u) & 63)
	}
	issued := false
	k.nTicked = 0
	for w := 0; w < k.words; w++ {
		idx := base + w
		for k.wheel[idx] != 0 {
			b := bits.TrailingZeros64(k.wheel[idx])
			k.wheel[idx] &^= 1 << uint(b)
			u := w<<6 + b
			k.wakeAt[u] = NoWake
			k.flushAccrual(u)
			out := k.d.TickUnit(now, u)
			k.accrueAt[u] = now + 1
			k.tickedID[k.nTicked] = u
			k.tickedKind[k.nTicked] = out.Kind
			k.nTicked++
			if out.Issued {
				issued = true
			}
			if out.Wake != NoWake {
				k.wake(u, out.Wake)
			}
		}
	}
	k.busy &^= 1 << uint(slot)
	return issued
}

// FinishCycle completes the cycle TickCycle drained: it runs the driver's
// CycleEnd hook, then classifies the ticked units' own cycle. Ticked units
// are classified after CycleEnd because a warm-up reset there must land the
// triggering cycle in the post-reset window, matching the dense reference
// loops' ordering.
func (k *Kernel) FinishCycle() {
	k.d.CycleEnd(k.now)
	for j := 0; j < k.nTicked; j++ {
		k.d.AccrueTick(k.tickedID[j], k.tickedKind[j])
	}
	k.nTicked = 0
}

// NextPending returns the earliest pending wake-up cycle, or NoWake when no
// unit has one. Called between FinishCycle and AdvanceTo it is the kernel's
// event-skip candidate; a coordinator over several kernels takes the
// minimum across them. The result can be at or before now when a heap entry
// came due but the slot was not drained — callers clamp to now+1 exactly as
// Step does.
func (k *Kernel) NextPending() int64 {
	// The wheel's candidate comes from rotating the occupancy mask so the
	// scan starts at now+1; the low horizon bits of r are the true rotation
	// (garbage above them cannot win TrailingZeros64 when busy is non-zero).
	next := NoWake
	if k.busy != 0 {
		start := uint((k.now + 1) & k.hmask)
		r := k.busy>>start | k.busy<<(uint(k.horizon)-start)
		next = k.now + 1 + int64(bits.TrailingZeros64(r))
	}
	if k.heap.Len() > 0 {
		if mk := k.heap.MinKey(); next == NoWake || mk < next {
			next = mk
		}
	}
	return next
}

// AdvanceTo moves the clock to cycle c > now, charging the cycles in
// between to the skipped counter exactly as Step's event-skip does. All
// kernels under one coordinator must AdvanceTo the same cycle, and c must
// not be beyond any kernel's NextPending (the clock never skips past a
// pending wake-up).
func (k *Kernel) AdvanceTo(c int64) {
	k.skipped += c - k.now - 1
	k.now = c
}

// RunWindow runs the kernel's own Step loop locally over [Now(), limit) —
// the quantum-relaxed sharded loops' barrier-free window. The coordinator
// must have proven no cross-kernel interaction is possible before limit
// (see docs/PARALLELISM.md for the bound); within that window each kernel's
// advance decisions depend only on its own units, and the union of the
// kernels' visited-cycle sets equals the sequential kernel's, which is what
// keeps per-cycle event and skip accounting exact. Each visited cycle c is
// marked in the visited bitmap at bit c-base (the caller sizes it for
// limit-base bits and ORs the shards' maps together).
//
// Returns the kernel's advance candidate for the cycle after the window:
// lastVisited+1 if the last visited cycle issued (or NoSkip holds), else
// the kernel's NextPending — always >= limit — or NoWake when nothing is
// pending. The coordinator takes the minimum across kernels, exactly the
// barrier protocol's advance reduction.
func (k *Kernel) RunWindow(limit, base int64, visited []uint64) int64 {
	for {
		now := k.now
		issued := k.TickCycle()
		k.FinishCycle()
		off := now - base
		visited[off>>6] |= 1 << (uint(off) & 63)
		var next int64
		if issued || k.noSkip {
			next = now + 1
		} else {
			next = k.NextPending()
			if next == NoWake {
				return NoWake
			}
			if next < now+1 {
				next = now + 1
			}
		}
		if next >= limit {
			return next
		}
		k.AdvanceTo(next)
	}
}

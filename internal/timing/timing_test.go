package timing

import (
	"math/rand"
	"testing"

	"gpuscale/internal/sched"
)

// step scripts one tick of one unit: the wake-up distance it reports
// (<= 0 means go idle / NoWake), whether the tick "issues", and which units
// it launches (they are scheduled at the next visited cycle, the way a CTA
// launch lands in the simulators' run loops).
type step struct {
	delta  int64
	issued bool
	launch []int
}

type tick struct {
	cycle int64
	unit  int
}

// scriptDriver drives a Kernel from a per-unit script and records the tick
// sequence plus the accrual bookkeeping the kernel dispatches.
type scriptDriver struct {
	script   [][]step
	pos      []int
	ticks    []tick
	stalls   []uint64 // AccrueStall cycles per unit
	tickAcc  []uint64 // AccrueTick calls per unit
	visited  int64    // CycleEnd calls
	launches []int    // collected during Step, applied by the harness after
}

func newScriptDriver(script [][]step) *scriptDriver {
	n := len(script)
	return &scriptDriver{
		script:  script,
		pos:     make([]int, n),
		stalls:  make([]uint64, n),
		tickAcc: make([]uint64, n),
	}
}

func (d *scriptDriver) TickUnit(now int64, u int) Outcome {
	d.ticks = append(d.ticks, tick{now, u})
	out := Outcome{Wake: NoWake}
	if d.pos[u] < len(d.script[u]) {
		st := d.script[u][d.pos[u]]
		d.pos[u]++
		d.launches = append(d.launches, st.launch...)
		out.Issued = st.issued
		if st.delta > 0 {
			out.Wake = now + st.delta
		}
	}
	return out
}

func (d *scriptDriver) AccrueStall(u int, cycles uint64) { d.stalls[u] += cycles }
func (d *scriptDriver) AccrueTick(u int, kind uint8)     { d.tickAcc[u]++ }
func (d *scriptDriver) CycleEnd(now int64)               { d.visited++ }

// runKernel plays a script through a Kernel with the given horizon: all
// units seeded at cycle 0 (the initial CTA fill), launches applied between
// Steps at the advanced cycle (the way fillCTAs runs at the top of the
// simulators' outer loops).
func runKernel(t *testing.T, script [][]step, horizon int, noSkip bool) (*scriptDriver, *Kernel) {
	t.Helper()
	d := newScriptDriver(script)
	k := MustNew(Config{Units: len(script), Horizon: horizon, NoSkip: noSkip}, d)
	for u := range script {
		k.ScheduleNow(u)
	}
	const maxSteps = 1 << 22
	for i := 0; ; i++ {
		if i > maxSteps {
			t.Fatalf("kernel did not drain after %d steps (horizon %d)", maxSteps, horizon)
		}
		for _, u := range d.launches {
			k.ScheduleNow(u)
		}
		d.launches = d.launches[:0]
		if !k.Pending() {
			break
		}
		k.Step()
	}
	return d, k
}

// runReference replays the same script against a plain sched.Heap with the
// event-loop semantics the kernel must reproduce: pop everything due at the
// visited cycle in (cycle, unit) order, advance by one when anything
// issued, otherwise jump to the heap's minimum.
func runReference(script [][]step) (ticks []tick, finalNow int64, visited int64) {
	n := len(script)
	h := sched.NewHeap(n)
	pos := make([]int, n)
	for u := 0; u < n; u++ {
		h.Set(u, 0)
	}
	var launches []int
	now := int64(0)
	for {
		for _, u := range launches {
			h.Set(u, now)
		}
		launches = launches[:0]
		if h.Len() == 0 {
			break
		}
		visited++
		issued := false
		for h.Len() > 0 && h.MinKey() <= now {
			u, _ := h.Pop()
			ticks = append(ticks, tick{now, u})
			if pos[u] < len(script[u]) {
				st := script[u][pos[u]]
				pos[u]++
				launches = append(launches, st.launch...)
				if st.issued {
					issued = true
				}
				if st.delta > 0 {
					h.Set(u, now+st.delta)
				}
			}
		}
		switch {
		case issued:
			now++
		case h.Len() > 0:
			if mk := h.MinKey(); mk > now+1 {
				now = mk
			} else {
				now++
			}
		default:
			now++ // matches the kernel's default advance on the last cycle
		}
	}
	return ticks, now, visited
}

func compareRuns(t *testing.T, d *scriptDriver, k *Kernel, want []tick, wantNow int64) {
	t.Helper()
	if len(d.ticks) != len(want) {
		t.Fatalf("tick count: kernel %d, reference %d", len(d.ticks), len(want))
	}
	for i := range want {
		if d.ticks[i] != want[i] {
			t.Fatalf("tick %d: kernel (cycle %d, unit %d), reference (cycle %d, unit %d)",
				i, d.ticks[i].cycle, d.ticks[i].unit, want[i].cycle, want[i].unit)
		}
	}
	if k.Now() != wantNow {
		t.Fatalf("final cycle: kernel %d, reference %d", k.Now(), wantNow)
	}
	// Every unit's every cycle in [0, Now) must be classified exactly once:
	// the lazy stall intervals plus the per-tick classifications telescope
	// to the full run length.
	k.FlushAll()
	for u := range d.stalls {
		if got := d.stalls[u] + d.tickAcc[u]; got != uint64(k.Now()) {
			t.Fatalf("unit %d: accrued %d cycles (stall %d + tick %d), want %d",
				u, got, d.stalls[u], d.tickAcc[u], k.Now())
		}
	}
	// Every visited cycle advances the clock by 1 + its skip, so skipped
	// cycles and visited cycles partition the run exactly.
	if k.Skipped() != k.Now()-d.visited {
		t.Fatalf("skipped %d + visited %d != final now %d", k.Skipped(), d.visited, k.Now())
	}
}

func cloneScript(script [][]step) [][]step {
	out := make([][]step, len(script))
	for u := range script {
		out[u] = append([]step(nil), script[u]...)
	}
	return out
}

// TestWheelMatchesHeapReference is the due-wheel property test: arbitrary
// wake schedules — horizon-boundary distances, duplicate cycles, idle
// units relaunched mid-run — must produce the identical tick sequence as a
// plain sched.Heap, for every horizon including the degenerate heap-only
// horizon 1 and multi-word unit counts.
func TestWheelMatchesHeapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for _, horizon := range []int{1, 2, 8, 64} {
		for _, n := range []int{1, 5, 64, 130} {
			for trial := 0; trial < 4; trial++ {
				h64 := int64(horizon)
				// Boundary-heavy delta palette: next cycle, inside the
				// wheel, one each side of the horizon, exactly the horizon
				// (must take the heap — its slot aliases the cycle being
				// drained), and far beyond it.
				palette := []int64{1, 1, 2, 3, h64 - 1, h64, h64 + 1, 2 * h64, 3*h64 + 7}
				script := make([][]step, n)
				for u := range script {
					steps := 8 + rng.Intn(24)
					for j := 0; j < steps; j++ {
						st := step{issued: rng.Intn(2) == 0}
						switch rng.Intn(10) {
						case 0:
							st.delta = 0 // go idle; only a launch revives it
						case 1, 2:
							st.delta = 1 + rng.Int63n(3*h64)
						default:
							st.delta = palette[rng.Intn(len(palette))]
						}
						if st.delta < 1 && rng.Intn(4) != 0 {
							st.delta = 1
						}
						if rng.Intn(12) == 0 {
							st.launch = []int{rng.Intn(n)}
							// A launch-triggering tick always issues, as in
							// the simulators (capacity frees on an issuing
							// retirement) — this is what makes NoSkip visit
							// the launch cycle at the same point.
							st.issued = true
						}
						script[u] = append(script[u], st)
					}
				}
				wantTicks, wantNow, _ := runReference(cloneScript(script))
				d, k := runKernel(t, cloneScript(script), horizon, false)
				compareRuns(t, d, k, wantTicks, wantNow)

				// NoSkip visits every cycle but must tick the same
				// sequence with nothing skipped.
				dn, kn := runKernel(t, cloneScript(script), horizon, true)
				if len(dn.ticks) != len(wantTicks) {
					t.Fatalf("noskip tick count: %d want %d", len(dn.ticks), len(wantTicks))
				}
				for i := range wantTicks {
					if dn.ticks[i] != wantTicks[i] {
						t.Fatalf("noskip tick %d diverged", i)
					}
				}
				if kn.Skipped() != 0 {
					t.Fatalf("noskip skipped %d cycles", kn.Skipped())
				}
				if dn.visited != kn.Now() {
					t.Fatalf("noskip visited %d cycles, final now %d", dn.visited, kn.Now())
				}
			}
		}
	}
}

// TestHorizonBoundary pins the wheel/heap hand-off deterministically: a
// wake exactly one horizon away must take the heap (its slot aliases the
// cycle being drained), one cycle closer must take the wheel, and both must
// tick at exactly their scheduled cycle.
func TestHorizonBoundary(t *testing.T) {
	const horizon = 4
	script := [][]step{
		{{delta: horizon}, {delta: horizon - 1}, {delta: horizon + 1}, {delta: 0}},
		{{delta: 1}, {delta: horizon}, {delta: 2 * horizon}, {delta: 0}},
	}
	wantTicks, wantNow, _ := runReference(cloneScript(script))
	d, k := runKernel(t, cloneScript(script), horizon, false)
	compareRuns(t, d, k, wantTicks, wantNow)
	// Pin the absolute cycles, not just agreement with the reference: both
	// seeded at 0, unit 1 hops 1→5→13 (exact-horizon then beyond-horizon
	// wakes), unit 0 hops 4→7→12 (exact horizon, then one inside, then one
	// beyond).
	want := []tick{{0, 0}, {0, 1}, {1, 1}, {4, 0}, {5, 1}, {7, 0}, {12, 0}, {13, 1}}
	if len(d.ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", d.ticks, want)
	}
	for i := range want {
		if d.ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", d.ticks, want)
		}
	}
}

// TestScheduleNowReplacesPendingWake exercises the removal path: launching
// a unit that already has a far (heap) or near (wheel) pending wake must
// tick it at the launch cycle only, and the stale entry must neither tick
// again nor stop the clock at an empty cycle.
func TestScheduleNowReplacesPendingWake(t *testing.T) {
	for _, horizon := range []int{1, 8, 64} {
		// Unit 0 reschedules far ahead but unit 1's tick at cycle 1
		// launches it immediately; the stale wake at cycle 100 (heap) or 5
		// (wheel) must vanish.
		for _, staleDelta := range []int64{5, 100} {
			script := [][]step{
				{{delta: staleDelta}, {delta: 0}},
				{{delta: 1}, {delta: 0, launch: []int{0}}},
			}
			wantTicks, wantNow, _ := runReference(cloneScript(script))
			d, k := runKernel(t, cloneScript(script), horizon, false)
			compareRuns(t, d, k, wantTicks, wantNow)
			if k.Pending() {
				t.Fatalf("horizon %d staleDelta %d: kernel still pending after drain", horizon, staleDelta)
			}
		}
	}
}

// runKernelPhases replays a script through the decomposed phase API the way
// the sharded coordinator does — TickCycle, FinishCycle, then NextPending /
// AdvanceTo with the caller making Step's advance decision — so any drift
// between Step and its pieces fails the property test below.
func runKernelPhases(t *testing.T, script [][]step, horizon int) (*scriptDriver, *Kernel) {
	t.Helper()
	d := newScriptDriver(script)
	k := MustNew(Config{Units: len(script), Horizon: horizon}, d)
	for u := range script {
		k.ScheduleNow(u)
	}
	const maxSteps = 1 << 22
	for i := 0; ; i++ {
		if i > maxSteps {
			t.Fatalf("phase kernel did not drain after %d steps (horizon %d)", maxSteps, horizon)
		}
		for _, u := range d.launches {
			k.ScheduleNow(u)
		}
		d.launches = d.launches[:0]
		if !k.Pending() {
			break
		}
		issued := k.TickCycle()
		k.FinishCycle()
		next := k.NextPending()
		if issued || next < k.Now()+1 {
			next = k.Now() + 1
		}
		k.AdvanceTo(next)
	}
	return d, k
}

// TestPhaseAPIMatchesStep is the decomposition property test: driving the
// kernel through TickCycle/FinishCycle/NextPending/AdvanceTo must reproduce
// Step's tick sequence, final cycle, accrual totals and skip accounting on
// arbitrary schedules.
func TestPhaseAPIMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfa5e))
	for _, horizon := range []int{1, 8, 64} {
		for _, n := range []int{1, 7, 70} {
			for trial := 0; trial < 4; trial++ {
				h64 := int64(horizon)
				script := make([][]step, n)
				for u := range script {
					steps := 4 + rng.Intn(20)
					for j := 0; j < steps; j++ {
						st := step{issued: rng.Intn(2) == 0, delta: 1 + rng.Int63n(3*h64)}
						if rng.Intn(10) == 0 {
							st.delta = 0
						}
						if rng.Intn(12) == 0 {
							st.launch = []int{rng.Intn(n)}
							st.issued = true
						}
						script[u] = append(script[u], st)
					}
				}
				wantTicks, wantNow, _ := runReference(cloneScript(script))
				d, k := runKernelPhases(t, cloneScript(script), horizon)
				compareRuns(t, d, k, wantTicks, wantNow)
			}
		}
	}
}

// TestRescheduleReplacesPendingWake pins the between-cycles repair path the
// sharded loop's deferred-memory fix-ups use: Reschedule must replace a
// pending wake wherever it lives (wheel or heap), revive an idle unit, be
// drainable at the current cycle, and leave WakeAt telling the truth.
func TestRescheduleReplacesPendingWake(t *testing.T) {
	for _, horizon := range []int{1, 8, 64} {
		for _, staleDelta := range []int64{5, 100} { // wheel entry, heap entry
			// The seed tick issues so Step advances to cycle 1 instead of
			// event-skipping straight to the stale wake.
			d := newScriptDriver([][]step{{{delta: staleDelta, issued: true}}})
			k := MustNew(Config{Units: 1, Horizon: horizon}, d)
			k.ScheduleNow(0)
			k.Step() // ticks at 0, re-arms at staleDelta
			if got := k.WakeAt(0); got != staleDelta {
				t.Fatalf("horizon %d: WakeAt after tick = %d, want %d", horizon, got, staleDelta)
			}
			// Replace the stale entry with a nearer wake; the stale one must
			// neither tick nor stop the skip scan.
			k.Reschedule(0, 3)
			if got := k.WakeAt(0); got != 3 {
				t.Fatalf("horizon %d: WakeAt after Reschedule = %d, want 3", horizon, got)
			}
			for k.Pending() {
				k.Step()
			}
			wantTicks := []tick{{0, 0}, {3, 0}}
			if len(d.ticks) != len(wantTicks) || d.ticks[1] != wantTicks[1] {
				t.Fatalf("horizon %d staleDelta %d: ticks %v, want %v", horizon, staleDelta, d.ticks, wantTicks)
			}
			if k.Pending() {
				t.Fatalf("horizon %d staleDelta %d: stale wake survived Reschedule", horizon, staleDelta)
			}
			// Reschedule from idle revives the unit (WakeAt == NoWake first).
			if k.WakeAt(0) != NoWake {
				t.Fatalf("unit not idle after drain")
			}
			k.Reschedule(0, k.Now())
			if issued := k.TickCycle(); issued {
				t.Fatalf("scripted unit issued unexpectedly")
			}
			k.FinishCycle()
			if len(d.ticks) != 3 || d.ticks[2].cycle != k.Now() {
				t.Fatalf("Reschedule at now did not tick this cycle: ticks %v, now %d", d.ticks, k.Now())
			}
			k.AdvanceTo(k.Now() + 1)
		}
	}
}

// TestConfigValidation covers the constructor's error paths.
func TestConfigValidation(t *testing.T) {
	d := newScriptDriver([][]step{{}})
	if _, err := New(Config{Units: 0}, d); err == nil {
		t.Error("want error for zero units")
	}
	if _, err := New(Config{Units: 1, Horizon: 3}, d); err == nil {
		t.Error("want error for non-power-of-two horizon")
	}
	if _, err := New(Config{Units: 1, Horizon: 128}, d); err == nil {
		t.Error("want error for horizon beyond 64")
	}
	if _, err := New(Config{Units: 1}, nil); err == nil {
		t.Error("want error for nil driver")
	}
	if k, err := New(Config{Units: 1}, d); err != nil || k.horizon != DefaultHorizon {
		t.Errorf("default horizon: kernel %+v, err %v", k, err)
	}
}

package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteStrongCSV exports the strong-scaling experiment as CSV: one row per
// (benchmark, target size, method) with the prediction, the simulated
// truth, and the error — the raw data behind Figures 4 and 5, ready for
// external plotting.
func WriteStrongCSV(w io.Writer, results []*StrongResult) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "class", "target_sms", "method", "predicted_ipc", "real_ipc", "abs_pct_error"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("harness: writing CSV header: %w", err)
	}
	for _, r := range results {
		targets := append([]int(nil), r.Sizes[2:]...)
		sort.Ints(targets)
		for _, n := range targets {
			for _, m := range Methods {
				rec := []string{
					r.Bench.Name,
					string(r.Bench.Class),
					fmt.Sprintf("%d", n),
					m,
					fmt.Sprintf("%.4f", r.Pred[m][n]),
					fmt.Sprintf("%.4f", r.Real[n].IPC),
					fmt.Sprintf("%.4f", r.Err[m][n]),
				}
				if err := cw.Write(rec); err != nil {
					return fmt.Errorf("harness: writing CSV row: %w", err)
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteWeakCSV exports the weak-scaling experiment (Figures 6 and 7) as
// CSV, including the simulation speedups.
func WriteWeakCSV(w io.Writer, results []*WeakResult) error {
	cw := csv.NewWriter(w)
	header := []string{"benchmark", "class", "target_sms", "method", "predicted_ipc", "real_ipc", "abs_pct_error", "speedup_events", "speedup_wall"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("harness: writing CSV header: %w", err)
	}
	for _, r := range results {
		for _, n := range r.Sizes[2:] {
			for _, m := range Methods {
				rec := []string{
					r.Bench.Name,
					string(r.Bench.Class),
					fmt.Sprintf("%d", n),
					m,
					fmt.Sprintf("%.4f", r.Pred[m][n]),
					fmt.Sprintf("%.4f", r.Real[n].IPC),
					fmt.Sprintf("%.4f", r.Err[m][n]),
					fmt.Sprintf("%.4f", r.SpeedupEvents[n]),
					fmt.Sprintf("%.4f", r.SpeedupWall[n]),
				}
				if err := cw.Write(rec); err != nil {
					return fmt.Errorf("harness: writing CSV row: %w", err)
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMissCurvesCSV exports every benchmark's miss-rate curve (Figure 2).
func WriteMissCurvesCSV(w io.Writer, results []*StrongResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"benchmark", "class", "llc_bytes", "mpki"}); err != nil {
		return fmt.Errorf("harness: writing CSV header: %w", err)
	}
	for _, r := range results {
		for _, p := range r.Curve.Points {
			rec := []string{
				r.Bench.Name,
				string(r.Bench.Class),
				fmt.Sprintf("%d", p.CapacityBytes),
				fmt.Sprintf("%.4f", p.MPKI),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("harness: writing CSV row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

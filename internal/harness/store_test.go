package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const storeKeyA = "aabbccddee00112233445566778899aabbccddee00112233445566778899aabb"

func TestResultStoreLevels(t *testing.T) {
	dir := t.TempDir()
	s, err := NewResultStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want := []byte(`{"ipc":1.5}`)
	var computes atomic.Int64
	compute := func() ([]byte, error) {
		computes.Add(1)
		return want, nil
	}

	body, src, err := s.Do(ctx, storeKeyA, compute)
	if err != nil || string(body) != string(want) || src != StoreComputed {
		t.Fatalf("first Do: %q %v %v", body, src, err)
	}
	body, src, err = s.Do(ctx, storeKeyA, compute)
	if err != nil || string(body) != string(want) || src != StoreMemory {
		t.Fatalf("second Do: %q %v %v", body, src, err)
	}
	if computes.Load() != 1 {
		t.Errorf("computed %d times", computes.Load())
	}
	if !s.Peek(storeKeyA) {
		t.Error("Peek missed a settled key")
	}

	// The disk file is hash-sharded and survives into a fresh store.
	if _, err := os.Stat(filepath.Join(dir, storeKeyA[:2], storeKeyA+".json")); err != nil {
		t.Errorf("disk file missing: %v", err)
	}
	s2, err := NewResultStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, src, err = s2.Do(ctx, storeKeyA, func() ([]byte, error) {
		t.Error("fresh store recomputed a disk-resident key")
		return nil, nil
	})
	if err != nil || string(body) != string(want) || src != StoreDisk {
		t.Fatalf("disk Do: %q %v %v", body, src, err)
	}
	// Disk hits promote to memory.
	if _, src, _ := s2.Do(ctx, storeKeyA, compute); src != StoreMemory {
		t.Errorf("after disk hit, source = %v", src)
	}
}

func TestResultStoreSingleFlight(t *testing.T) {
	s, err := NewResultStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	started := make(chan struct{})
	finish := make(chan struct{})
	var computes atomic.Int64
	compute := func() ([]byte, error) {
		computes.Add(1)
		close(started)
		<-finish
		return []byte("shared"), nil
	}

	const waiters = 4
	var wg sync.WaitGroup
	srcs := make([]StoreSource, waiters)
	go func() {
		<-started // owner is inside compute; now pile on waiters
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				body, src, err := s.Do(ctx, storeKeyA, compute)
				if err != nil || string(body) != "shared" {
					t.Errorf("waiter %d: %q %v", i, body, err)
				}
				srcs[i] = src
			}(i)
		}
		time.Sleep(20 * time.Millisecond) // let waiters block on the flight
		close(finish)
	}()
	body, src, err := s.Do(ctx, storeKeyA, compute)
	if err != nil || string(body) != "shared" || src != StoreComputed {
		t.Fatalf("owner: %q %v %v", body, src, err)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times across %d callers", got, waiters+1)
	}
	for i, src := range srcs {
		if src != StoreCoalesced && src != StoreMemory {
			t.Errorf("waiter %d source = %v", i, src)
		}
	}
}

func TestResultStoreErrorsNotCached(t *testing.T) {
	s, err := NewResultStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := s.Do(ctx, storeKeyA, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if s.Peek(storeKeyA) {
		t.Error("failed computation was settled")
	}
	body, src, err := s.Do(ctx, storeKeyA, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(body) != "ok" || src != StoreComputed {
		t.Fatalf("retry after error: %q %v %v", body, src, err)
	}
}

func TestResultStoreCancelledOwnerRetries(t *testing.T) {
	s, err := NewResultStore("", 0)
	if err != nil {
		t.Fatal(err)
	}
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerIn := make(chan struct{})

	// Owner: starts computing, then its client goes away.
	ownerDone := make(chan error, 1)
	go func() {
		_, _, err := s.Do(ownerCtx, storeKeyA, func() ([]byte, error) {
			close(ownerIn)
			<-ownerCtx.Done()
			return nil, ownerCtx.Err()
		})
		ownerDone <- err
	}()
	<-ownerIn

	// Waiter with a live context: joins the flight, sees the owner fail
	// with Canceled, retries, becomes the new owner, succeeds.
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		body, src, err := s.Do(context.Background(), storeKeyA, func() ([]byte, error) {
			return []byte("recovered"), nil
		})
		if err != nil || string(body) != "recovered" || src != StoreComputed {
			t.Errorf("waiter after cancelled owner: %q %v %v", body, src, err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join the flight
	cancelOwner()
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		t.Errorf("owner error = %v", err)
	}
	select {
	case <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not recover from the cancelled owner")
	}

	// A waiter whose own context dies stops waiting immediately.
	blockCtx, cancelBlock := context.WithCancel(context.Background())
	blockIn := make(chan struct{})
	release := make(chan struct{})
	go s.Do(context.Background(), "ffff"+storeKeyA[4:], func() ([]byte, error) {
		close(blockIn)
		<-release
		return []byte("late"), nil
	})
	<-blockIn
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancelBlock()
	}()
	if _, _, err := s.Do(blockCtx, "ffff"+storeKeyA[4:], nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter error = %v", err)
	}
	close(release)
}

// storeBudget fits exactly two of the 8-byte-key/8-byte-body test entries
// used below (each charges len(key)+len(body)+entryOverhead = 144 bytes).
const storeBudget = 2*144 + 10

func TestResultStoreKeyValidationAndEviction(t *testing.T) {
	s, err := NewResultStore("", storeBudget)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, bad := range []string{"", "ab", "ABCD1234", "../etc", "xyz!1234"} {
		if _, _, err := s.Do(ctx, bad, func() ([]byte, error) { return nil, nil }); err == nil {
			t.Errorf("key %q accepted", bad)
		}
	}
	// A byte budget for two entries: settling a third evicts one.
	keys := []string{"aaaa0000", "bbbb0000", "cccc0000"}
	for _, k := range keys {
		k := k
		if _, _, err := s.Do(ctx, k, func() ([]byte, error) { return []byte(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	settled := 0
	for _, k := range keys {
		if s.Peek(k) {
			settled++
		}
	}
	if settled != 2 {
		t.Errorf("settled entries = %d, want 2 (byte budget)", settled)
	}
	if got := s.MemoryBytes(); got <= 0 || got > storeBudget {
		t.Errorf("MemoryBytes = %d, want in (0, %d]", got, storeBudget)
	}
}

// TestResultStoreLRUOrder pins the eviction order: strictly least recently
// used, where hits (Do and Lookup alike) refresh recency.
func TestResultStoreLRUOrder(t *testing.T) {
	s, err := NewResultStore("", storeBudget)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	put := func(k string) {
		t.Helper()
		if _, _, err := s.Do(ctx, k, func() ([]byte, error) { return []byte(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	a, b, c, d := "aaaa0000", "bbbb0000", "cccc0000", "dddd0000"

	put(a)
	put(b)
	put(c) // over budget: a is the LRU entry and must be the one evicted
	if s.Peek(a) || !s.Peek(b) || !s.Peek(c) {
		t.Fatalf("after a,b,c: settled = a:%v b:%v c:%v, want only b and c", s.Peek(a), s.Peek(b), s.Peek(c))
	}

	// A hit on b makes c the LRU entry, so d must evict c, not b.
	if body, _, ok := s.Lookup(b); !ok || string(body) != b {
		t.Fatalf("Lookup(b) = %q %v", body, ok)
	}
	put(d)
	if !s.Peek(b) || s.Peek(c) || !s.Peek(d) {
		t.Fatalf("after touching b and adding d: settled = b:%v c:%v d:%v, want b and d", s.Peek(b), s.Peek(c), s.Peek(d))
	}

	// The just-settled entry is never its own victim, even when a single
	// body exceeds the whole budget.
	big := "eeee0000"
	if _, _, err := s.Do(ctx, big, func() ([]byte, error) { return make([]byte, 2*storeBudget), nil }); err != nil {
		t.Fatal(err)
	}
	if !s.Peek(big) {
		t.Error("oversized entry was evicted while being served")
	}
	if s.Peek(b) || s.Peek(d) {
		t.Error("oversized entry did not evict the rest of the working set")
	}
}

// TestResultStoreLookup pins Lookup's non-computing contract: memory hit,
// disk hit with promotion, and a plain miss.
func TestResultStoreLookup(t *testing.T) {
	dir := t.TempDir()
	s, err := NewResultStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, ok := s.Lookup(storeKeyA); ok {
		t.Error("Lookup hit an empty store")
	}
	want := []byte(`{"ipc":2.5}`)
	if _, _, err := s.Do(ctx, storeKeyA, func() ([]byte, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if body, src, ok := s.Lookup(storeKeyA); !ok || src != StoreMemory || string(body) != string(want) {
		t.Errorf("Lookup after Do = %q %v %v", body, src, ok)
	}
	// A fresh store over the same directory serves from disk and promotes.
	s2, err := NewResultStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if body, src, ok := s2.Lookup(storeKeyA); !ok || src != StoreDisk || string(body) != string(want) {
		t.Errorf("Lookup from disk = %q %v %v", body, src, ok)
	}
	if _, src, ok := s2.Lookup(storeKeyA); !ok || src != StoreMemory {
		t.Errorf("Lookup after promotion source = %v (ok=%v)", src, ok)
	}
}

package harness

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/engine"
	"gpuscale/internal/trace"
)

// countingWorkload counts NewProgram calls, exposing how many times a
// simulation actually instantiated its warps — the observable difference
// between one simulation run and several duplicated ones.
type countingWorkload struct {
	name  string
	calls atomic.Int64
}

func (c *countingWorkload) Name() string { return c.name }
func (c *countingWorkload) Kernel() trace.KernelSpec {
	return trace.KernelSpec{NumCTAs: 6, WarpsPerCTA: 2}
}
func (c *countingWorkload) NewProgram(cta, warp int) trace.Program {
	c.calls.Add(1)
	return trace.NewPhaseProgram(trace.Phase{
		N: 48, ComputePer: 2,
		Gen: &trace.SeqGen{Start: uint64(cta) * 512, Stride: 128, Extent: 1 << 19},
	})
}

// TestRunSingleflight is the regression test for the parallel-harness race
// audit: concurrent Run calls with the same (config, workload) key must
// execute the simulation exactly once and share the result. The pre-audit
// check-then-compute memo ran it once per racing caller.
func TestRunSingleflight(t *testing.T) {
	cfg := config.MustScale(config.Baseline128(), 8)

	// Baseline: how many NewProgram calls does one simulation make?
	solo := &countingWorkload{name: "count-solo"}
	if _, err := New().Run(cfg, solo); err != nil {
		t.Fatal(err)
	}
	perRun := solo.calls.Load()
	if perRun == 0 {
		t.Fatal("baseline simulation instantiated no programs")
	}

	shared := &countingWorkload{name: "count-solo"} // same key as solo
	h := New()
	const callers = 8
	results := make([]TimedStats, callers)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := h.Run(cfg, shared)
			if err != nil {
				firstErr.Store(err)
				return
			}
			results[i] = st
		}(i)
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		t.Fatal(err)
	}
	if got := shared.calls.Load(); got != perRun {
		t.Errorf("%d concurrent Run calls made %d NewProgram calls, want %d (one simulation)",
			callers, got, perRun)
	}
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("caller %d got different TimedStats than caller 0", i)
		}
	}
}

// tinyGrid builds a small sweep (3 workloads × 2 configurations plus one
// miss-rate curve each) cheap enough for race-enabled runs.
func tinyGrid() (ws []trace.Workload, cfgs []config.SystemConfig, units []prewarmUnit) {
	base := config.Baseline128()
	cfgs = []config.SystemConfig{config.MustScale(base, 8), config.MustScale(base, 16)}
	for i, pattern := range []uint64{128, 256, 384} {
		w := &trace.FuncWorkload{
			WName: "grid-" + string(rune('a'+i)),
			Spec:  trace.KernelSpec{NumCTAs: 8, WarpsPerCTA: 2},
			Factory: func(cta, warp int) trace.Program {
				return trace.NewPhaseProgram(trace.Phase{
					N: 64, ComputePer: 2,
					Gen: &trace.SeqGen{Start: uint64(cta) * pattern, Stride: pattern, Extent: 1 << 20},
				})
			},
		}
		ws = append(ws, w)
		for _, cfg := range cfgs {
			units = append(units, prewarmUnit{cfg: cfg, w: w})
		}
		units = append(units, prewarmUnit{w: w, curve: true, cfgs: cfgs})
	}
	return ws, cfgs, units
}

// TestPrewarmMatchesSequential asserts the determinism contract of the
// parallel sweep path: a harness that pre-warms its memo with 8 workers
// serves bit-identical Stats and curves to one that computed everything
// sequentially on demand.
func TestPrewarmMatchesSequential(t *testing.T) {
	ws, cfgs, units := tinyGrid()

	par := New(WithParallel(8))
	par.prewarm(units)

	seq := New(WithParallel(1))

	for _, w := range ws {
		for _, cfg := range cfgs {
			p, err := par.Run(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			s, err := seq.Run(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(p.Stats, s.Stats) {
				t.Errorf("%s/%s: parallel Stats differ from sequential", cfg.Name, w.Name())
			}
		}
		pc, err := par.Curve(w, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := seq.Curve(w, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pc, sc) {
			t.Errorf("%s: parallel curve differs from sequential", w.Name())
		}
	}
}

// TestPrewarmProgress checks that the pre-warm reports one serialised
// progress snapshot per unit, ending complete.
func TestPrewarmProgress(t *testing.T) {
	_, _, units := tinyGrid()
	var snaps []engine.Progress
	h := New(
		WithParallel(4),
		WithProgress(func(p engine.Progress) { snaps = append(snaps, p) }),
	)
	h.prewarm(units)
	if len(snaps) != len(units) {
		t.Fatalf("got %d progress snapshots, want %d", len(snaps), len(units))
	}
	for i, p := range snaps {
		if p.Done != i+1 || p.Total != len(units) {
			t.Errorf("snapshot %d: Done=%d Total=%d, want %d/%d", i, p.Done, p.Total, i+1, len(units))
		}
	}
	if last := snaps[len(snaps)-1]; last.Failed != 0 {
		t.Errorf("final snapshot reports %d failures", last.Failed)
	}
}

// TestPrewarmSequentialNoop checks that parallelism 1 really disables the
// pre-warm: nothing is simulated until the analysis path asks.
func TestPrewarmSequentialNoop(t *testing.T) {
	w := &countingWorkload{name: "noop"}
	h := New(WithParallel(1))
	h.prewarm([]prewarmUnit{
		{cfg: config.MustScale(config.Baseline128(), 8), w: w},
		{cfg: config.MustScale(config.Baseline128(), 16), w: w},
	})
	if got := w.calls.Load(); got != 0 {
		t.Errorf("sequential harness pre-warmed %d program instantiations, want 0", got)
	}
}

// TestWithParallelNormalises checks the n <= 0 → NumCPU reset rule.
func TestWithParallelNormalises(t *testing.T) {
	if n, _ := New(WithParallel(-3)).settings(); n < 1 {
		t.Errorf("WithParallel(-3) left parallelism %d", n)
	}
	if n, _ := New(WithParallel(5)).settings(); n != 5 {
		t.Errorf("WithParallel(5) gave %d", n)
	}
}

package harness

import (
	"fmt"
	"os"
	"testing"
)

func TestProbeWeak(t *testing.T) {
	if os.Getenv("PROBEW") == "" {
		t.Skip("set PROBEW=1")
	}
	h := New()
	results, err := h.RunWeakAll()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(RenderWeakErrorTable(results))
	fmt.Print(RenderSpeedupTable(results))
	for _, r := range results {
		fmt.Printf("%-6s perSM:", r.Bench.Name)
		for _, n := range r.Sizes {
			fmt.Printf(" %.3f", r.Real[n].IPC/float64(n))
		}
		fmt.Println()
	}
}

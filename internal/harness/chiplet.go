package harness

import (
	"fmt"

	"gpuscale/internal/chiplet"
	"gpuscale/internal/config"
	"gpuscale/internal/core"
	"gpuscale/internal/regress"
	"gpuscale/internal/stats"
	"gpuscale/internal/trace"
	"gpuscale/internal/workloads"
	"time"
)

// ChipletTimedStats is an MCM simulation result plus host cost.
type ChipletTimedStats struct {
	chiplet.Stats
	Wall time.Duration
}

// runChiplet simulates w on the MCM configuration cfg, memoised by
// (config, workload) name with single-flight deduplication like Run.
func (h *Harness) runChiplet(cfg config.ChipletConfig, w trace.Workload) (ChipletTimedStats, error) {
	key := cfg.Name + "/" + w.Name()
	e := entryFor(&h.mu, h.chipletRuns, key)
	e.once.Do(func() {
		start := time.Now()
		_, quantum := h.shardingRef()
		sim, err := chiplet.New(cfg, w, chiplet.Options{Recorder: h.observerRef(), Shards: h.mcmShardsRef(), Quantum: quantum, Uarch: h.uarchRef()})
		if err != nil {
			e.err = fmt.Errorf("harness: MCM %s on %s: %w", w.Name(), cfg.Name, err)
			return
		}
		st, err := sim.Run()
		if err != nil {
			e.err = fmt.Errorf("harness: MCM %s on %s: %w", w.Name(), cfg.Name, err)
			return
		}
		e.val = ChipletTimedStats{Stats: st, Wall: time.Since(start)}
	})
	return e.val, e.err
}

// ChipletResult holds one family's multi-chiplet case study (paper
// Section VII-D): 4- and 8-chiplet scale models predicting the 16-chiplet
// target under weak scaling.
type ChipletResult struct {
	// Bench is the weak-scaling family.
	Bench workloads.WeakBenchmark
	// Sizes are the chiplet counts (4, 8, 16).
	Sizes []int
	// Real maps chiplet count → measured statistics.
	Real map[int]ChipletTimedStats
	// Pred and Err map method → chiplet count → prediction / error.
	Pred map[string]map[int]float64
	Err  map[string]map[int]float64
	// SpeedupEvents and SpeedupWall are Fig. 7-style speedups for the
	// 16-chiplet target relative to simulating both scale models.
	SpeedupEvents float64
	SpeedupWall   float64
}

// RunChiplet executes the MCM case study for one weak-scaling family.
func (h *Harness) RunChiplet(wb workloads.WeakBenchmark) (*ChipletResult, error) {
	base := config.Target16Chiplet()
	sizes := config.ChipletStandardSizes
	res := &ChipletResult{
		Bench: wb,
		Sizes: sizes,
		Real:  make(map[int]ChipletTimedStats, len(sizes)),
		Pred:  make(map[string]map[int]float64, len(Methods)),
		Err:   make(map[string]map[int]float64, len(Methods)),
	}
	for _, n := range sizes {
		cfg := config.MustScaleChiplets(base, n)
		w := wb.ForSMs(n * base.Chiplet.NumSMs)
		cached, err := h.runChiplet(cfg, w)
		if err != nil {
			return nil, err
		}
		res.Real[n] = cached
	}
	small, large := res.Real[sizes[0]], res.Real[sizes[1]]
	fsizes := make([]float64, len(sizes))
	for i, n := range sizes {
		fsizes[i] = float64(n)
	}
	preds, err := core.Predict(core.Input{
		Sizes:    fsizes,
		SmallIPC: small.IPC,
		LargeIPC: large.IPC,
		Mode:     core.WeakScaling,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: MCM prediction for %s: %w", wb.Name, err)
	}
	res.Pred[ScaleModel] = make(map[int]float64)
	for _, p := range preds {
		res.Pred[ScaleModel][int(p.Size)] = p.IPC
	}
	models, err := regress.FitAll([]regress.Point{
		{Size: fsizes[0], IPC: small.IPC},
		{Size: fsizes[1], IPC: large.IPC},
	})
	if err != nil {
		return nil, fmt.Errorf("harness: MCM baseline fits for %s: %w", wb.Name, err)
	}
	for name, m := range models {
		res.Pred[name] = make(map[int]float64)
		for _, n := range sizes[2:] {
			res.Pred[name][n] = m.Predict(float64(n))
		}
	}
	for _, method := range Methods {
		res.Err[method] = make(map[int]float64)
		for _, n := range sizes[2:] {
			res.Err[method][n] = stats.AbsPctError(res.Pred[method][n], res.Real[n].IPC)
		}
	}
	target := sizes[len(sizes)-1]
	scaleEvents := float64(small.SimEvents + large.SimEvents)
	res.SpeedupEvents = float64(res.Real[target].SimEvents) / scaleEvents
	res.SpeedupWall = float64(res.Real[target].Wall) / float64(small.Wall+large.Wall)
	return res, nil
}

// RunChipletAll runs the MCM case study for every family with an MCM
// configuration in Table IV (bfs, bs, as, bp, va — btree is excluded, as
// in the paper). The family × chiplet-count simulation grid is pre-warmed
// in parallel; the analysis runs sequentially over memoised results.
func (h *Harness) RunChipletAll() ([]*ChipletResult, error) {
	fams := workloads.WeakMCM()
	base := config.Target16Chiplet()
	var units []prewarmUnit
	for _, wb := range fams {
		for _, n := range config.ChipletStandardSizes {
			units = append(units, prewarmUnit{
				chiplet:    true,
				chipletCfg: config.MustScaleChiplets(base, n),
				w:          wb.ForSMs(n * base.Chiplet.NumSMs),
			})
		}
	}
	h.prewarm(units)
	var out []*ChipletResult
	for _, wb := range fams {
		r, err := h.RunChiplet(wb)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ChipletMeanMaxError aggregates a method's 16-chiplet prediction error.
func ChipletMeanMaxError(results []*ChipletResult, method string) (float64, float64) {
	var errs []float64
	for _, r := range results {
		target := r.Sizes[len(r.Sizes)-1]
		errs = append(errs, r.Err[method][target])
	}
	return stats.Mean(errs), stats.Max(errs)
}

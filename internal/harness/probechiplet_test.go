package harness

import (
	"fmt"
	"os"
	"testing"
)

func TestProbeChiplet(t *testing.T) {
	if os.Getenv("PROBEC") == "" {
		t.Skip("set PROBEC=1")
	}
	h := New()
	results, err := h.RunChipletAll()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(RenderChipletTable(results))
	for _, r := range results {
		fmt.Printf("%-6s perSM-chiplet:", r.Bench.Name)
		for _, n := range r.Sizes {
			fmt.Printf(" %.3f", r.Real[n].IPC/float64(n))
		}
		fmt.Printf("  speedup=%.1fx/%.1fx(wall)\n", r.SpeedupEvents, r.SpeedupWall)
	}
}

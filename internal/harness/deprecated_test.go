package harness

// Pins the deprecated setter wrappers to their functional-option twins:
// a setter call must leave the harness in exactly the state the option
// would have configured at New. These are the only in-tree setter call
// sites allowed by `make deprecated-gate`.

import (
	"testing"

	"gpuscale/internal/engine"
	"gpuscale/internal/obs"
)

func TestDeprecatedSettersMatchOptions(t *testing.T) {
	// SetParallel ≡ WithParallel, including the n <= 0 → NumCPU rule.
	for _, n := range []int{5, 1, -3} {
		viaSet := New()
		viaSet.SetParallel(n)
		gotSet, _ := viaSet.settings()
		gotOpt, _ := New(WithParallel(n)).settings()
		if gotSet != gotOpt {
			t.Errorf("SetParallel(%d) gave %d, WithParallel gave %d", n, gotSet, gotOpt)
		}
	}

	// SetMCMShards ≡ WithMCMShards, including negative clamping.
	for _, n := range []int{4, 0, -2} {
		viaSet := New()
		viaSet.SetMCMShards(n)
		if got, want := viaSet.mcmShardsRef(), New(WithMCMShards(n)).mcmShardsRef(); got != want {
			t.Errorf("SetMCMShards(%d) gave %d, WithMCMShards gave %d", n, got, want)
		}
	}

	// SetObserver ≡ WithObserver (attach and detach).
	rec := obs.New()
	viaSet := New()
	viaSet.SetObserver(rec)
	if viaSet.observerRef() != New(WithObserver(rec)).observerRef() {
		t.Error("SetObserver and WithObserver attached different recorders")
	}
	viaSet.SetObserver(nil)
	if viaSet.observerRef() != nil {
		t.Error("SetObserver(nil) did not detach")
	}

	// SetProgress ≡ WithProgress: the attached callback must be invoked.
	var viaSetCalls, viaOptCalls int
	setH := New()
	setH.SetProgress(func(engine.Progress) { viaSetCalls++ })
	optH := New(WithProgress(func(engine.Progress) { viaOptCalls++ }))
	_, setFn := setH.settings()
	_, optFn := optH.settings()
	if setFn == nil || optFn == nil {
		t.Fatal("progress callback not attached")
	}
	setFn(engine.Progress{})
	optFn(engine.Progress{})
	if viaSetCalls != 1 || viaOptCalls != 1 {
		t.Errorf("callback invocations: set=%d opt=%d, want 1/1", viaSetCalls, viaOptCalls)
	}
}

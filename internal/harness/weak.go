package harness

import (
	"fmt"

	"gpuscale/internal/config"
	"gpuscale/internal/core"
	"gpuscale/internal/regress"
	"gpuscale/internal/stats"
	"gpuscale/internal/workloads"
)

// WeakResult holds one weak-scaling family's experiment: each system size
// runs its own proportionally scaled workload (paper Section VII-C).
type WeakResult struct {
	// Bench is the weak-scaling family.
	Bench workloads.WeakBenchmark
	// Sizes are the system sizes simulated.
	Sizes []int
	// Real maps size → measured statistics of the scaled workload.
	Real map[int]TimedStats
	// Pred and Err map method → target size → prediction / error.
	Pred map[string]map[int]float64
	Err  map[string]map[int]float64
	// SpeedupEvents maps target size → simulation speedup measured in
	// simulator events (Fig. 7's metric: cost of simulating the target
	// divided by the cost of simulating both scale models).
	SpeedupEvents map[int]float64
	// SpeedupWall is the same ratio in host wall-clock time.
	SpeedupWall map[int]float64
}

// RunWeak executes the weak-scaling experiment for one family.
func (h *Harness) RunWeak(wb workloads.WeakBenchmark) (*WeakResult, error) {
	base := config.Baseline128()
	sizes := config.StandardSizes
	res := &WeakResult{
		Bench:         wb,
		Sizes:         sizes,
		Real:          make(map[int]TimedStats, len(sizes)),
		Pred:          make(map[string]map[int]float64, len(Methods)),
		Err:           make(map[string]map[int]float64, len(Methods)),
		SpeedupEvents: make(map[int]float64),
		SpeedupWall:   make(map[int]float64),
	}
	for _, n := range sizes {
		st, err := h.Run(config.MustScale(base, n), wb.ForSMs(n))
		if err != nil {
			return nil, err
		}
		res.Real[n] = st
	}
	small, large := res.Real[sizes[0]], res.Real[sizes[1]]

	fsizes := make([]float64, len(sizes))
	for i, n := range sizes {
		fsizes[i] = float64(n)
	}
	in := core.Input{
		Sizes:    fsizes,
		SmallIPC: small.IPC,
		LargeIPC: large.IPC,
		Mode:     core.WeakScaling,
	}
	preds, err := core.Predict(in)
	if err != nil {
		return nil, fmt.Errorf("harness: weak prediction for %s: %w", wb.Name, err)
	}
	res.Pred[ScaleModel] = make(map[int]float64)
	for _, p := range preds {
		res.Pred[ScaleModel][int(p.Size)] = p.IPC
	}
	models, err := regress.FitAll([]regress.Point{
		{Size: fsizes[0], IPC: small.IPC},
		{Size: fsizes[1], IPC: large.IPC},
	})
	if err != nil {
		return nil, fmt.Errorf("harness: weak baseline fits for %s: %w", wb.Name, err)
	}
	for name, m := range models {
		res.Pred[name] = make(map[int]float64)
		for _, n := range sizes[2:] {
			res.Pred[name][n] = m.Predict(float64(n))
		}
	}
	scaleCostEvents := float64(small.SimEvents + large.SimEvents)
	scaleCostWall := float64(small.Wall + large.Wall)
	for _, method := range Methods {
		res.Err[method] = make(map[int]float64)
		for _, n := range sizes[2:] {
			res.Err[method][n] = stats.AbsPctError(res.Pred[method][n], res.Real[n].IPC)
		}
	}
	for _, n := range sizes[2:] {
		res.SpeedupEvents[n] = float64(res.Real[n].SimEvents) / scaleCostEvents
		res.SpeedupWall[n] = float64(res.Real[n].Wall) / scaleCostWall
	}
	return res, nil
}

// RunWeakAll runs the weak-scaling experiment for every Table IV family.
// The family × size simulation grid is pre-warmed in parallel (see
// SetParallel); the analysis runs sequentially over memoised results.
func (h *Harness) RunWeakAll() ([]*WeakResult, error) {
	fams := workloads.WeakAll()
	base := config.Baseline128()
	var units []prewarmUnit
	for _, wb := range fams {
		for _, n := range config.StandardSizes {
			units = append(units, prewarmUnit{cfg: config.MustScale(base, n), w: wb.ForSMs(n)})
		}
	}
	h.prewarm(units)
	var out []*WeakResult
	for _, wb := range fams {
		r, err := h.RunWeak(wb)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WeakMeanMaxError aggregates a method's weak-scaling error across families
// and target sizes (Fig. 6 aggregates all three target sizes).
func WeakMeanMaxError(results []*WeakResult, method string) (float64, float64) {
	var errs []float64
	for _, r := range results {
		for _, n := range r.Sizes[2:] {
			errs = append(errs, r.Err[method][n])
		}
	}
	return stats.Mean(errs), stats.Max(errs)
}

package harness

import (
	"fmt"
	"strings"

	"gpuscale/internal/stats"
)

// RenderTable formats headers and rows as an aligned plain-text table.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// RenderErrorTable renders a Figure 4-style prediction-error table for one
// target size: one row per benchmark, one column per method, plus the
// average and maximum rows the paper quotes.
func RenderErrorTable(results []*StrongResult, size int) string {
	headers := append([]string{"benchmark", "class"}, Methods...)
	var rows [][]string
	for _, r := range results {
		row := []string{r.Bench.Name, string(r.Bench.Class)}
		for _, m := range Methods {
			row = append(row, fmt.Sprintf("%.1f%%", r.Err[m][size]))
		}
		rows = append(rows, row)
	}
	avg := []string{"average", ""}
	mx := []string{"max", ""}
	for _, m := range Methods {
		mean, max := MeanMaxError(results, m, size)
		avg = append(avg, fmt.Sprintf("%.1f%%", mean))
		mx = append(mx, fmt.Sprintf("%.1f%%", max))
	}
	rows = append(rows, avg, mx)
	return fmt.Sprintf("IPC prediction error, %d-SM target (strong scaling)\n%s",
		size, RenderTable(headers, rows))
}

// RenderWeakErrorTable renders the Figure 6 equivalent: weak-scaling
// prediction error aggregated over the 32/64/128-SM targets.
func RenderWeakErrorTable(results []*WeakResult) string {
	headers := append([]string{"benchmark", "class", "target"}, Methods...)
	var rows [][]string
	for _, r := range results {
		for _, n := range r.Sizes[2:] {
			row := []string{r.Bench.Name, string(r.Bench.Class), fmt.Sprintf("%d-SM", n)}
			for _, m := range Methods {
				row = append(row, fmt.Sprintf("%.1f%%", r.Err[m][n]))
			}
			rows = append(rows, row)
		}
	}
	avg := []string{"average", "", ""}
	mx := []string{"max", "", ""}
	for _, m := range Methods {
		mean, max := WeakMeanMaxError(results, m)
		avg = append(avg, fmt.Sprintf("%.1f%%", mean))
		mx = append(mx, fmt.Sprintf("%.1f%%", max))
	}
	rows = append(rows, avg, mx)
	return "IPC prediction error (weak scaling)\n" + RenderTable(headers, rows)
}

// RenderSpeedupTable renders the Figure 7 equivalent: weak-scaling
// simulation speedup per target size, in simulator events and wall time.
func RenderSpeedupTable(results []*WeakResult) string {
	headers := []string{"benchmark", "32-SM", "64-SM", "128-SM", "128-SM (wall)"}
	var rows [][]string
	sums := map[int][]float64{}
	var walls []float64
	for _, r := range results {
		row := []string{r.Bench.Name}
		for _, n := range r.Sizes[2:] {
			row = append(row, fmt.Sprintf("%.1fx", r.SpeedupEvents[n]))
			sums[n] = append(sums[n], r.SpeedupEvents[n])
		}
		row = append(row, fmt.Sprintf("%.1fx", r.SpeedupWall[128]))
		walls = append(walls, r.SpeedupWall[128])
		rows = append(rows, row)
	}
	avg := []string{"average"}
	for _, n := range []int{32, 64, 128} {
		avg = append(avg, fmt.Sprintf("%.1fx", stats.Mean(sums[n])))
	}
	avg = append(avg, fmt.Sprintf("%.1fx", stats.Mean(walls)))
	rows = append(rows, avg)
	return "Simulation speedup through scale-model simulation (weak scaling)\n" +
		RenderTable(headers, rows)
}

// RenderChipletTable renders the Figure 8 equivalent: 16-chiplet IPC
// prediction error per method.
func RenderChipletTable(results []*ChipletResult) string {
	headers := append([]string{"benchmark"}, Methods...)
	var rows [][]string
	for _, r := range results {
		target := r.Sizes[len(r.Sizes)-1]
		row := []string{r.Bench.Name}
		for _, m := range Methods {
			row = append(row, fmt.Sprintf("%.1f%%", r.Err[m][target]))
		}
		rows = append(rows, row)
	}
	avg := []string{"average"}
	mx := []string{"max"}
	for _, m := range Methods {
		mean, max := ChipletMeanMaxError(results, m)
		avg = append(avg, fmt.Sprintf("%.1f%%", mean))
		mx = append(mx, fmt.Sprintf("%.1f%%", max))
	}
	rows = append(rows, avg, mx)
	return "16-chiplet IPC prediction error (weak scaling)\n" + RenderTable(headers, rows)
}

// RenderScalingCurves renders the Figure 5 equivalent for one benchmark:
// real IPC and each method's predicted IPC as a function of system size.
func RenderScalingCurves(r *StrongResult) string {
	headers := []string{"SMs", "real"}
	headers = append(headers, Methods...)
	var rows [][]string
	for _, n := range r.Sizes {
		row := []string{fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", r.Real[n].IPC)}
		for _, m := range Methods {
			if p, ok := r.Pred[m][n]; ok {
				row = append(row, fmt.Sprintf("%.1f", p))
			} else {
				row = append(row, "-") // scale-model measurement point
			}
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("%s (%s): IPC vs system size\n%s",
		r.Bench.Name, r.Bench.Class, RenderTable(headers, rows))
}

// RenderMissRateCurve renders the Figure 2 equivalent for one benchmark:
// MPKI as a function of LLC capacity.
func RenderMissRateCurve(r *StrongResult) string {
	headers := []string{"LLC (MiB)", "MPKI"}
	var rows [][]string
	for _, p := range r.Curve.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", float64(p.CapacityBytes)/(1<<20)),
			fmt.Sprintf("%.2f", p.MPKI),
		})
	}
	return fmt.Sprintf("%s: miss-rate curve\n%s", r.Bench.Name, RenderTable(headers, rows))
}

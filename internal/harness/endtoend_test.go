package harness

import (
	"testing"

	"gpuscale/internal/workloads"
)

// endToEnd shares one harness across the end-to-end tests in this file so
// the expensive sweeps run once per `go test` invocation.
var endToEnd = New()

// TestStrongScalingHeadline reproduces the paper's headline strong-scaling
// claim: scale-model simulation predicts the 128-SM (and 64-SM) targets far
// more accurately than proportional scaling and the regression baselines,
// with logarithmic regression the worst method. Thresholds are shape-level
// (see DESIGN.md): the paper reports 4%/17% (avg/max) at 128 SMs on its
// infrastructure; this reproduction asserts avg < 10% and the full method
// ordering.
func TestStrongScalingHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full strong-scaling sweep")
	}
	results, err := endToEnd.RunStrongAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{128, 64} {
		smMean, smMax := MeanMaxError(results, ScaleModel, target)
		if smMean > 10 {
			t.Errorf("%d-SM: scale-model avg error %.1f%%, want < 10%%", target, smMean)
		}
		if smMax > 30 {
			t.Errorf("%d-SM: scale-model max error %.1f%%, want < 30%%", target, smMax)
		}
		for _, m := range []string{"logarithmic", "proportional", "linear", "power-law"} {
			mMean, _ := MeanMaxError(results, m, target)
			if mMean <= smMean {
				t.Errorf("%d-SM: %s avg error %.1f%% beats scale-model %.1f%%", target, m, mMean, smMean)
			}
		}
		logMean, _ := MeanMaxError(results, "logarithmic", target)
		for _, m := range []string{"linear", "power-law"} {
			mMean, _ := MeanMaxError(results, m, target)
			if logMean <= mMean {
				t.Errorf("%d-SM: logarithmic (%.1f%%) should be worse than %s (%.1f%%)", target, logMean, m, mMean)
			}
		}
	}
	// The cliff benchmarks are where the baselines fail hardest: every
	// super-linear benchmark must be predicted better by scale-model than
	// by power-law regression at 128 SMs.
	for _, r := range results {
		if r.Bench.Class != workloads.SuperLinear {
			continue
		}
		if r.Err[ScaleModel][128] >= r.Err["power-law"][128] {
			t.Errorf("%s: scale-model %.1f%% not better than power-law %.1f%% at the cliff",
				r.Bench.Name, r.Err[ScaleModel][128], r.Err["power-law"][128])
		}
	}
}

// TestWeakScalingHeadline reproduces the weak-scaling claims: small
// scale-model errors and a simulation speedup that grows with target size
// (the paper reports 1.5x/3.9x/9.3x for 32/64/128 SMs).
func TestWeakScalingHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full weak-scaling sweep")
	}
	results, err := endToEnd.RunWeakAll()
	if err != nil {
		t.Fatal(err)
	}
	mean, max := WeakMeanMaxError(results, ScaleModel)
	if mean > 8 {
		t.Errorf("weak scale-model avg error %.1f%%, want < 8%%", mean)
	}
	if max > 25 {
		t.Errorf("weak scale-model max error %.1f%%, want < 25%%", max)
	}
	logMean, _ := WeakMeanMaxError(results, "logarithmic")
	if logMean <= mean {
		t.Errorf("logarithmic (%.1f%%) should be far worse than scale-model (%.1f%%)", logMean, mean)
	}
	// Speedup must grow with target size for every family, and the
	// 128-SM average should be substantial.
	var sum float64
	for _, r := range results {
		if !(r.SpeedupEvents[128] > r.SpeedupEvents[64] && r.SpeedupEvents[64] > r.SpeedupEvents[32]) {
			t.Errorf("%s: speedups not monotone: %v / %v / %v", r.Bench.Name,
				r.SpeedupEvents[32], r.SpeedupEvents[64], r.SpeedupEvents[128])
		}
		sum += r.SpeedupEvents[128]
	}
	if avg := sum / float64(len(results)); avg < 4 {
		t.Errorf("average 128-SM speedup %.1fx, want > 4x", avg)
	}
}

// Package harness drives the paper's experiments end to end: it simulates
// every benchmark at every system size, collects miss-rate curves, runs the
// scale-model predictor and the four baseline extrapolations, and computes
// the per-benchmark prediction errors behind Figures 4–8 and the artifact
// appendix.
//
// Two properties make full-paper regeneration affordable. First, simulation
// results are memoised (with single-flight deduplication) so that the many
// benchmarks and tables sharing runs — e.g. Fig. 1, Fig. 4 and Fig. 5 all
// need the same strong-scaling sweeps — pay for each simulation once per
// process, even when requested concurrently. Second, the sweep entry points
// (RunStrongAll, RunWeakAll, RunChipletAll) pre-warm the memo by fanning
// every independent (configuration, workload) cell across a worker pool via
// internal/engine; the per-benchmark analysis then runs sequentially over
// cache hits, so parallel and sequential execution produce identical
// results. Construction-time functional options tune the behaviour:
// WithParallel sizes (or disables) the fan-out, WithProgress attaches a
// live progress callback, WithObserver an observability recorder,
// WithShards/WithQuantum the intra-simulation sharding for every run and
// WithMCMShards an MCM-specific shard override (the old Set* methods
// remain as deprecated wrappers).
//
// The package also provides ResultStore, a two-level (memory + disk)
// single-flight byte store keyed by canonical request hashes; it backs the
// gpuscaled daemon's response cache so that restarts do not re-simulate.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gpuscale/internal/config"
	"gpuscale/internal/core"
	"gpuscale/internal/engine"
	"gpuscale/internal/gpu"
	"gpuscale/internal/mrc"
	"gpuscale/internal/obs"
	"gpuscale/internal/regress"
	"gpuscale/internal/stats"
	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
	"gpuscale/internal/workloads"
)

// ScaleModel is the method name of the paper's contribution in result maps.
const ScaleModel = "scale-model"

// Methods lists all five prediction methods in the paper's presentation
// order: the four baselines followed by scale-model simulation.
var Methods = []string{"logarithmic", "proportional", "linear", "power-law", ScaleModel}

// TimedStats is a simulation result plus its host cost, used for the
// weak-scaling speedup figure.
type TimedStats struct {
	gpu.Stats
	Wall time.Duration
}

// runEntry is a single-flight memo cell: the first caller computes under
// the sync.Once, every other caller (concurrent or later) waits for and
// shares the same result.
type runEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// entryFor returns (creating if needed) the memo cell for key.
func entryFor[V any](mu *sync.Mutex, m map[string]*runEntry[V], key string) *runEntry[V] {
	mu.Lock()
	defer mu.Unlock()
	e, ok := m[key]
	if !ok {
		e = &runEntry[V]{}
		m[key] = e
	}
	return e
}

// Harness memoises simulation runs and miss-rate curves, deduplicating
// concurrent requests for the same key, and fans sweep entry points across
// a worker pool. The zero value is not usable; call New.
type Harness struct {
	mu          sync.Mutex
	runs        map[string]*runEntry[TimedStats]
	chipletRuns map[string]*runEntry[ChipletTimedStats]
	mrcs        map[string]*runEntry[mrc.Curve]

	parallel  int
	shards    int
	quantum   int
	mcmShards int
	uarch     uarch.Variant
	progress  func(engine.Progress)
	observer  *obs.Recorder
}

// New returns an empty Harness configured by opts; the default is
// parallelism runtime.NumCPU(), no progress callback, no observer, and
// sequential MCM simulations. See options.go for the available options.
func New(opts ...Option) *Harness {
	h := &Harness{
		runs:        make(map[string]*runEntry[TimedStats]),
		chipletRuns: make(map[string]*runEntry[ChipletTimedStats]),
		mrcs:        make(map[string]*runEntry[mrc.Curve]),
		parallel:    runtime.NumCPU(),
	}
	for _, opt := range opts {
		opt(h)
	}
	return h
}

// Default is a process-wide harness shared by the benchmark suite, so that
// every table and figure reuses the same memoised simulations.
var Default = New()

// observerRef snapshots the attached recorder (possibly nil).
func (h *Harness) observerRef() *obs.Recorder {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.observer
}

// shardingRef snapshots the configured general shard count and barrier
// quantum.
func (h *Harness) shardingRef() (shards, quantum int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.shards, h.quantum
}

// uarchRef snapshots the microarchitecture variant every run simulates.
func (h *Harness) uarchRef() uarch.Variant {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.uarch
}

// mcmShardsRef snapshots the shard count MCM runs should use: the
// MCM-specific override when set, else the general WithShards count.
func (h *Harness) mcmShardsRef() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.mcmShards > 0 {
		return h.mcmShards
	}
	return h.shards
}

// settings snapshots the parallelism configuration.
func (h *Harness) settings() (int, func(engine.Progress)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.parallel, h.progress
}

// Run simulates w on cfg, memoised by (config, workload) name. Concurrent
// calls with the same key run the simulation once and share the result.
func (h *Harness) Run(cfg config.SystemConfig, w trace.Workload) (TimedStats, error) {
	key := cfg.Name + "/" + w.Name()
	e := entryFor(&h.mu, h.runs, key)
	e.once.Do(func() {
		start := time.Now()
		shards, quantum := h.shardingRef()
		st, err := gpu.RunWithOptions(cfg, w, gpu.Options{Recorder: h.observerRef(), Shards: shards, Quantum: quantum, Uarch: h.uarchRef()})
		if err != nil {
			e.err = fmt.Errorf("harness: simulating %s on %s: %w", w.Name(), cfg.Name, err)
			return
		}
		e.val = TimedStats{Stats: st, Wall: time.Since(start)}
	})
	return e.val, e.err
}

// Curve computes (memoised, single-flight) the functional-simulation
// miss-rate curve of w across the given configurations.
func (h *Harness) Curve(w trace.Workload, cfgs []config.SystemConfig) (mrc.Curve, error) {
	e := entryFor(&h.mu, h.mrcs, w.Name())
	e.once.Do(func() {
		c, err := mrc.FunctionalSweep(w, cfgs)
		if err != nil {
			e.err = fmt.Errorf("harness: miss-rate curve for %s: %w", w.Name(), err)
			return
		}
		e.val = c
	})
	return e.val, e.err
}

// prewarmUnit is one independent cell of a sweep's pre-warm phase: either a
// timing simulation or a miss-rate-curve collection.
type prewarmUnit struct {
	cfg   config.SystemConfig
	w     trace.Workload
	curve bool                  // collect the MRC instead of a timing run
	cfgs  []config.SystemConfig // curve configurations (curve units only)

	chiplet    bool // run on the MCM simulator instead
	chipletCfg config.ChipletConfig
}

// prewarm fans the units across the harness worker pool, filling the memo
// caches so that subsequent sequential analysis hits them. With parallelism
// <= 1 it is a no-op: the analysis paths compute lazily exactly as the
// sequential harness always has. Unit failures are not reported here — the
// analysis path re-encounters the memoised error with full context.
func (h *Harness) prewarm(units []prewarmUnit) {
	workers, progress := h.settings()
	if workers <= 1 || len(units) <= 1 {
		return
	}
	start := time.Now()
	var mu sync.Mutex
	var done, failed int
	var cycles int64
	note := func(st TimedStats, err error) {
		if progress == nil {
			return
		}
		mu.Lock()
		done++
		if err != nil {
			failed++
		} else {
			cycles += st.Cycles
		}
		p := engine.Progress{
			Done:    done,
			Failed:  failed,
			Total:   len(units),
			Cycles:  cycles,
			Elapsed: time.Since(start),
		}
		if secs := p.Elapsed.Seconds(); secs > 0 {
			p.CyclesPerSec = float64(cycles) / secs
		}
		if done > 0 && done < len(units) {
			p.ETA = time.Duration(float64(p.Elapsed) / float64(done) * float64(len(units)-done))
		}
		progress(p)
		mu.Unlock()
	}
	// Errors are deliberately dropped: each unit's outcome (value or error)
	// is memoised, and the sequential analysis re-reads it with the right
	// experiment context attached.
	_, _ = engine.Map(context.Background(), workers, units,
		func(_ context.Context, _ int, u prewarmUnit) (struct{}, error) {
			switch {
			case u.curve:
				_, err := h.Curve(u.w, u.cfgs)
				note(TimedStats{}, err)
			case u.chiplet:
				st, err := h.runChiplet(u.chipletCfg, u.w)
				note(TimedStats{Stats: gpu.Stats{Cycles: st.Cycles}}, err)
			default:
				st, err := h.Run(u.cfg, u.w)
				note(st, err)
			}
			return struct{}{}, nil
		})
}

// StrongResult holds one benchmark's full strong-scaling experiment.
type StrongResult struct {
	// Bench is the benchmark under study.
	Bench workloads.Benchmark
	// Sizes are the simulated system sizes (8…128 SMs).
	Sizes []int
	// Real maps size → measured simulation statistics.
	Real map[int]TimedStats
	// Curve is the miss-rate curve across the five LLC capacities.
	Curve mrc.Curve
	// Pred maps method → size → predicted IPC (target sizes only).
	Pred map[string]map[int]float64
	// Err maps method → size → absolute percentage error.
	Err map[string]map[int]float64
}

// scaleModelSizes is the default scale-model pair (8- and 16-SM).
var scaleModelSizes = [2]int{8, 16}

// RunStrong executes the full strong-scaling experiment for one benchmark:
// five simulations, the miss-rate curve, and all five prediction methods.
func (h *Harness) RunStrong(b workloads.Benchmark) (*StrongResult, error) {
	return h.runStrongFrom(b, config.StandardSizes, scaleModelSizes)
}

// RunStrongAlt runs the artifact-appendix variant using the 16- and 32-SM
// configurations as scale models to predict 64 and 128 SMs.
func (h *Harness) RunStrongAlt(b workloads.Benchmark) (*StrongResult, error) {
	return h.runStrongFrom(b, []int{16, 32, 64, 128}, [2]int{16, 32})
}

func (h *Harness) runStrongFrom(b workloads.Benchmark, sizes []int, sm [2]int) (*StrongResult, error) {
	base := config.Baseline128()
	res := &StrongResult{
		Bench: b,
		Sizes: sizes,
		Real:  make(map[int]TimedStats, len(sizes)),
		Pred:  make(map[string]map[int]float64, len(Methods)),
		Err:   make(map[string]map[int]float64, len(Methods)),
	}
	for _, n := range sizes {
		st, err := h.Run(config.MustScale(base, n), b.Workload)
		if err != nil {
			return nil, err
		}
		res.Real[n] = st
	}
	// The miss-rate curve is always collected across the five standard
	// configurations (one collection per workload, memoised); prediction
	// uses the samples matching this experiment's sizes.
	full, err := h.Curve(b.Workload, config.StandardConfigs())
	if err != nil {
		return nil, err
	}
	offset := -1
	for i, n := range config.StandardSizes {
		if n == sizes[0] {
			offset = i
			break
		}
	}
	if offset < 0 || offset+len(sizes) > len(full.Points) {
		return nil, fmt.Errorf("harness: sizes %v are not a window of the standard sizes", sizes)
	}
	res.Curve = mrc.Curve{Points: full.Points[offset : offset+len(sizes)]}

	small, large := res.Real[sm[0]], res.Real[sm[1]]
	fsizes := make([]float64, len(sizes))
	for i, n := range sizes {
		fsizes[i] = float64(n)
	}
	in := core.Input{
		Sizes:     fsizes,
		SmallIPC:  small.IPC,
		LargeIPC:  large.IPC,
		MPKI:      res.Curve.MPKIs(),
		FMemLarge: large.FMem,
		Mode:      core.StrongScaling,
	}
	preds, err := core.Predict(in)
	if err != nil {
		return nil, fmt.Errorf("harness: scale-model prediction for %s: %w", b.Name, err)
	}
	res.Pred[ScaleModel] = make(map[int]float64)
	for _, p := range preds {
		res.Pred[ScaleModel][int(p.Size)] = p.IPC
	}

	models, err := regress.FitAll([]regress.Point{
		{Size: float64(sm[0]), IPC: small.IPC},
		{Size: float64(sm[1]), IPC: large.IPC},
	})
	if err != nil {
		return nil, fmt.Errorf("harness: baseline fits for %s: %w", b.Name, err)
	}
	for name, m := range models {
		res.Pred[name] = make(map[int]float64)
		for _, n := range sizes[2:] {
			res.Pred[name][n] = m.Predict(float64(n))
		}
	}
	for _, method := range Methods {
		res.Err[method] = make(map[int]float64)
		for _, n := range sizes[2:] {
			res.Err[method][n] = stats.AbsPctError(res.Pred[method][n], res.Real[n].IPC)
		}
	}
	return res, nil
}

// RunStrongAll runs the strong-scaling experiment for every Table II
// benchmark. The 21 × 5 simulation grid and the 21 miss-rate curves are
// pre-warmed in parallel (see SetParallel); the analysis itself is
// sequential over memoised results, so the output is identical to a fully
// sequential run.
func (h *Harness) RunStrongAll() ([]*StrongResult, error) {
	benches := workloads.All()
	base := config.Baseline128()
	var units []prewarmUnit
	for _, b := range benches {
		for _, n := range config.StandardSizes {
			units = append(units, prewarmUnit{cfg: config.MustScale(base, n), w: b.Workload})
		}
		units = append(units, prewarmUnit{w: b.Workload, curve: true, cfgs: config.StandardConfigs()})
	}
	h.prewarm(units)
	var out []*StrongResult
	for _, b := range benches {
		r, err := h.RunStrong(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MeanMaxError aggregates one method's error at one target size across
// results, returning (mean, max) — the summary numbers quoted in the
// paper's abstract and Section VII.
func MeanMaxError(results []*StrongResult, method string, size int) (float64, float64) {
	var errs []float64
	for _, r := range results {
		if e, ok := r.Err[method][size]; ok {
			errs = append(errs, e)
		}
	}
	return stats.Mean(errs), stats.Max(errs)
}

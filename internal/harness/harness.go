// Package harness drives the paper's experiments end to end: it simulates
// every benchmark at every system size, collects miss-rate curves, runs the
// scale-model predictor and the four baseline extrapolations, and computes
// the per-benchmark prediction errors behind Figures 4–8 and the artifact
// appendix. Simulation results are memoised so that the many benchmarks
// and tables sharing runs (e.g. Fig. 1, Fig. 4 and Fig. 5 all need the same
// strong-scaling sweeps) pay for each simulation once per process.
package harness

import (
	"fmt"
	"sync"
	"time"

	"gpuscale/internal/config"
	"gpuscale/internal/core"
	"gpuscale/internal/gpu"
	"gpuscale/internal/mrc"
	"gpuscale/internal/regress"
	"gpuscale/internal/stats"
	"gpuscale/internal/trace"
	"gpuscale/internal/workloads"
)

// ScaleModel is the method name of the paper's contribution in result maps.
const ScaleModel = "scale-model"

// Methods lists all five prediction methods in the paper's presentation
// order: the four baselines followed by scale-model simulation.
var Methods = []string{"logarithmic", "proportional", "linear", "power-law", ScaleModel}

// TimedStats is a simulation result plus its host cost, used for the
// weak-scaling speedup figure.
type TimedStats struct {
	gpu.Stats
	Wall time.Duration
}

// Harness memoises simulation runs and miss-rate curves.
type Harness struct {
	mu          sync.Mutex
	runs        map[string]TimedStats
	chipletRuns map[string]ChipletTimedStats
	mrcs        map[string]mrc.Curve
}

// New returns an empty Harness.
func New() *Harness {
	return &Harness{
		runs:        make(map[string]TimedStats),
		chipletRuns: make(map[string]ChipletTimedStats),
		mrcs:        make(map[string]mrc.Curve),
	}
}

// Default is a process-wide harness shared by the benchmark suite, so that
// every table and figure reuses the same memoised simulations.
var Default = New()

// Run simulates w on cfg, memoised by (config, workload) name.
func (h *Harness) Run(cfg config.SystemConfig, w trace.Workload) (TimedStats, error) {
	key := cfg.Name + "/" + w.Name()
	h.mu.Lock()
	if st, ok := h.runs[key]; ok {
		h.mu.Unlock()
		return st, nil
	}
	h.mu.Unlock()
	start := time.Now()
	st, err := gpu.Run(cfg, w)
	if err != nil {
		return TimedStats{}, fmt.Errorf("harness: simulating %s on %s: %w", w.Name(), cfg.Name, err)
	}
	ts := TimedStats{Stats: st, Wall: time.Since(start)}
	h.mu.Lock()
	h.runs[key] = ts
	h.mu.Unlock()
	return ts, nil
}

// Curve computes (memoised) the functional-simulation miss-rate curve of w
// across the given configurations.
func (h *Harness) Curve(w trace.Workload, cfgs []config.SystemConfig) (mrc.Curve, error) {
	key := w.Name()
	h.mu.Lock()
	if c, ok := h.mrcs[key]; ok {
		h.mu.Unlock()
		return c, nil
	}
	h.mu.Unlock()
	c, err := mrc.FunctionalSweep(w, cfgs)
	if err != nil {
		return mrc.Curve{}, fmt.Errorf("harness: miss-rate curve for %s: %w", w.Name(), err)
	}
	h.mu.Lock()
	h.mrcs[key] = c
	h.mu.Unlock()
	return c, nil
}

// StrongResult holds one benchmark's full strong-scaling experiment.
type StrongResult struct {
	// Bench is the benchmark under study.
	Bench workloads.Benchmark
	// Sizes are the simulated system sizes (8…128 SMs).
	Sizes []int
	// Real maps size → measured simulation statistics.
	Real map[int]TimedStats
	// Curve is the miss-rate curve across the five LLC capacities.
	Curve mrc.Curve
	// Pred maps method → size → predicted IPC (target sizes only).
	Pred map[string]map[int]float64
	// Err maps method → size → absolute percentage error.
	Err map[string]map[int]float64
}

// scaleModelSizes is the default scale-model pair (8- and 16-SM).
var scaleModelSizes = [2]int{8, 16}

// RunStrong executes the full strong-scaling experiment for one benchmark:
// five simulations, the miss-rate curve, and all five prediction methods.
func (h *Harness) RunStrong(b workloads.Benchmark) (*StrongResult, error) {
	return h.runStrongFrom(b, config.StandardSizes, scaleModelSizes)
}

// RunStrongAlt runs the artifact-appendix variant using the 16- and 32-SM
// configurations as scale models to predict 64 and 128 SMs.
func (h *Harness) RunStrongAlt(b workloads.Benchmark) (*StrongResult, error) {
	return h.runStrongFrom(b, []int{16, 32, 64, 128}, [2]int{16, 32})
}

func (h *Harness) runStrongFrom(b workloads.Benchmark, sizes []int, sm [2]int) (*StrongResult, error) {
	base := config.Baseline128()
	res := &StrongResult{
		Bench: b,
		Sizes: sizes,
		Real:  make(map[int]TimedStats, len(sizes)),
		Pred:  make(map[string]map[int]float64, len(Methods)),
		Err:   make(map[string]map[int]float64, len(Methods)),
	}
	for _, n := range sizes {
		st, err := h.Run(config.MustScale(base, n), b.Workload)
		if err != nil {
			return nil, err
		}
		res.Real[n] = st
	}
	// The miss-rate curve is always collected across the five standard
	// configurations (one collection per workload, memoised); prediction
	// uses the samples matching this experiment's sizes.
	full, err := h.Curve(b.Workload, config.StandardConfigs())
	if err != nil {
		return nil, err
	}
	offset := -1
	for i, n := range config.StandardSizes {
		if n == sizes[0] {
			offset = i
			break
		}
	}
	if offset < 0 || offset+len(sizes) > len(full.Points) {
		return nil, fmt.Errorf("harness: sizes %v are not a window of the standard sizes", sizes)
	}
	res.Curve = mrc.Curve{Points: full.Points[offset : offset+len(sizes)]}

	small, large := res.Real[sm[0]], res.Real[sm[1]]
	fsizes := make([]float64, len(sizes))
	for i, n := range sizes {
		fsizes[i] = float64(n)
	}
	in := core.Input{
		Sizes:     fsizes,
		SmallIPC:  small.IPC,
		LargeIPC:  large.IPC,
		MPKI:      res.Curve.MPKIs(),
		FMemLarge: large.FMem,
		Mode:      core.StrongScaling,
	}
	preds, err := core.Predict(in)
	if err != nil {
		return nil, fmt.Errorf("harness: scale-model prediction for %s: %w", b.Name, err)
	}
	res.Pred[ScaleModel] = make(map[int]float64)
	for _, p := range preds {
		res.Pred[ScaleModel][int(p.Size)] = p.IPC
	}

	models, err := regress.FitAll([]regress.Point{
		{Size: float64(sm[0]), IPC: small.IPC},
		{Size: float64(sm[1]), IPC: large.IPC},
	})
	if err != nil {
		return nil, fmt.Errorf("harness: baseline fits for %s: %w", b.Name, err)
	}
	for name, m := range models {
		res.Pred[name] = make(map[int]float64)
		for _, n := range sizes[2:] {
			res.Pred[name][n] = m.Predict(float64(n))
		}
	}
	for _, method := range Methods {
		res.Err[method] = make(map[int]float64)
		for _, n := range sizes[2:] {
			res.Err[method][n] = stats.AbsPctError(res.Pred[method][n], res.Real[n].IPC)
		}
	}
	return res, nil
}

// RunStrongAll runs the strong-scaling experiment for every Table II
// benchmark.
func (h *Harness) RunStrongAll() ([]*StrongResult, error) {
	var out []*StrongResult
	for _, b := range workloads.All() {
		r, err := h.RunStrong(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// MeanMaxError aggregates one method's error at one target size across
// results, returning (mean, max) — the summary numbers quoted in the
// paper's abstract and Section VII.
func MeanMaxError(results []*StrongResult, method string, size int) (float64, float64) {
	var errs []float64
	for _, r := range results {
		if e, ok := r.Err[method][size]; ok {
			errs = append(errs, e)
		}
	}
	return stats.Mean(errs), stats.Max(errs)
}

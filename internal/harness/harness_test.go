package harness

import (
	"strings"
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
	"gpuscale/internal/workloads"
)

// tinyBench is a fast compute-heavy benchmark for harness plumbing tests.
func tinyBench(name string) workloads.Benchmark {
	return workloads.Benchmark{
		Name: name, FullName: "tiny", Suite: "test",
		PaperFootprintMB: 1, PaperInsnsM: 1, Class: workloads.Linear,
		Workload: &trace.FuncWorkload{
			WName: name,
			Spec:  trace.KernelSpec{NumCTAs: 4096, WarpsPerCTA: 2},
			Factory: func(cta, warp int) trace.Program {
				// A prime-sized (37-line) private region per warp keeps
				// slice and memory-controller indices decorrelated
				// across warps.
				g := &trace.SeqGen{Base: uint64(cta*2+warp) * 37 * 128, Stride: 128, Extent: 37 * 128}
				return trace.NewPhaseProgram(trace.Phase{N: 300, ComputePer: 9, Gen: g})
			},
		},
	}
}

func tinyWeak(name string) workloads.WeakBenchmark {
	return workloads.WeakBenchmark{
		Name: name, Class: workloads.Linear, MCM: true,
		ForSMs: func(numSMs int) trace.Workload {
			return &trace.FuncWorkload{
				WName: name + "-" + string(rune('a'+numSMs%26)),
				Spec:  trace.KernelSpec{NumCTAs: 32 * numSMs, WarpsPerCTA: 2},
				Factory: func(cta, warp int) trace.Program {
					g := &trace.SeqGen{Base: uint64(cta*2+warp) * 37 * 128, Stride: 128, Extent: 37 * 128}
					return trace.NewPhaseProgram(trace.Phase{N: 300, ComputePer: 9, Gen: g})
				},
			}
		},
	}
}

func TestRunMemoises(t *testing.T) {
	h := New()
	cfg := config.MustScale(config.Baseline128(), 8)
	w := tinyBench("memo").Workload
	a, err := h.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoised result differs (including Wall, which must be cached)")
	}
}

func TestRunStrongProducesAllMethods(t *testing.T) {
	h := New()
	r, err := h.RunStrong(tinyBench("strong1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Real) != 5 {
		t.Errorf("real runs = %d, want 5", len(r.Real))
	}
	for _, m := range Methods {
		for _, size := range []int{32, 64, 128} {
			if _, ok := r.Pred[m][size]; !ok {
				t.Errorf("method %s missing prediction at %d", m, size)
			}
			if e, ok := r.Err[m][size]; !ok || e < 0 {
				t.Errorf("method %s missing error at %d", m, size)
			}
		}
	}
	if err := r.Curve.Validate(); err != nil {
		t.Errorf("invalid curve: %v", err)
	}
}

func TestLinearBenchmarkPredictedWell(t *testing.T) {
	h := New()
	r, err := h.RunStrong(tinyBench("strong2"))
	if err != nil {
		t.Fatal(err)
	}
	if e := r.Err[ScaleModel][128]; e > 15 {
		t.Errorf("scale-model error on a clean linear workload = %.1f%%, want < 15%%", e)
	}
	// Logarithmic regression must be far off for linear scaling.
	if e := r.Err["logarithmic"][128]; e < 30 {
		t.Errorf("logarithmic error = %.1f%%, expected large underprediction", e)
	}
}

func TestRunStrongAltUsesLargerScaleModels(t *testing.T) {
	h := New()
	r, err := h.RunStrongAlt(tinyBench("strong3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != 4 || r.Sizes[0] != 16 || r.Sizes[1] != 32 {
		t.Errorf("alt sizes = %v, want [16 32 64 128]", r.Sizes)
	}
	if _, ok := r.Pred[ScaleModel][64]; !ok {
		t.Error("missing 64-SM prediction")
	}
	if _, ok := r.Pred[ScaleModel][32]; ok {
		t.Error("32 SMs is a scale model here, not a target")
	}
}

func TestRunWeak(t *testing.T) {
	h := New()
	r, err := h.RunWeak(tinyWeak("weak1"))
	if err != nil {
		t.Fatal(err)
	}
	if e := r.Err[ScaleModel][128]; e > 20 {
		t.Errorf("weak scale-model error = %.1f%%, want small for linear family", e)
	}
	for _, n := range []int{32, 64, 128} {
		if r.SpeedupEvents[n] <= 0 {
			t.Errorf("speedup at %d not positive", n)
		}
	}
	// Larger targets must yield larger event-based speedups.
	if r.SpeedupEvents[128] <= r.SpeedupEvents[32] {
		t.Errorf("speedup should grow with target size: %v vs %v",
			r.SpeedupEvents[128], r.SpeedupEvents[32])
	}
}

func TestMeanMaxError(t *testing.T) {
	rs := []*StrongResult{
		{Err: map[string]map[int]float64{"m": {128: 10}}},
		{Err: map[string]map[int]float64{"m": {128: 30}}},
	}
	mean, max := MeanMaxError(rs, "m", 128)
	if mean != 20 || max != 30 {
		t.Errorf("mean/max = %v/%v, want 20/30", mean, max)
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	h := New()
	r, err := h.RunStrong(tinyBench("strong4"))
	if err != nil {
		t.Fatal(err)
	}
	rs := []*StrongResult{r}
	if out := RenderErrorTable(rs, 128); !strings.Contains(out, "scale-model") {
		t.Error("error table missing method column")
	}
	if out := RenderScalingCurves(r); !strings.Contains(out, "real") {
		t.Error("scaling curves missing real column")
	}
	if out := RenderMissRateCurve(r); !strings.Contains(out, "MPKI") {
		t.Error("miss-rate curve missing MPKI")
	}
	wr, err := h.RunWeak(tinyWeak("weak2"))
	if err != nil {
		t.Fatal(err)
	}
	wrs := []*WeakResult{wr}
	if out := RenderWeakErrorTable(wrs); !strings.Contains(out, "weak") {
		t.Error("weak table missing title")
	}
	if out := RenderSpeedupTable(wrs); !strings.Contains(out, "x") {
		t.Error("speedup table missing values")
	}
}

func TestRunChipletSmall(t *testing.T) {
	h := New()
	r, err := h.RunChiplet(tinyWeak("weak3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Real) != 3 {
		t.Errorf("chiplet runs = %d, want 3", len(r.Real))
	}
	if e := r.Err[ScaleModel][16]; e > 25 {
		t.Errorf("chiplet scale-model error = %.1f%%, want small for linear family", e)
	}
	if r.SpeedupEvents <= 0 || r.SpeedupWall <= 0 {
		t.Error("chiplet speedups not recorded")
	}
	if out := RenderChipletTable([]*ChipletResult{r}); !strings.Contains(out, "16-chiplet") {
		t.Error("chiplet table missing title")
	}
}

package harness

// This file holds the pre-options mutable configuration surface. Each
// setter now applies the corresponding functional option under the
// harness mutex; new code should pass options to New instead (see
// options.go), and `make deprecated-gate` rejects in-tree setter calls
// outside this file's tests.

import (
	"gpuscale/internal/engine"
	"gpuscale/internal/obs"
)

// SetParallel sets the sweep worker-pool size.
//
// Deprecated: configure at construction with New(WithParallel(n)).
func (h *Harness) SetParallel(n int) {
	h.apply(WithParallel(n))
}

// SetProgress attaches (or with nil detaches) a pre-warm progress callback.
//
// Deprecated: configure at construction with New(WithProgress(fn)).
func (h *Harness) SetProgress(fn func(engine.Progress)) {
	h.apply(WithProgress(fn))
}

// SetObserver attaches (or with nil detaches) an observability recorder
// for every simulation the harness runs from now on (memoised results
// that already ran are not re-observed).
//
// Deprecated: configure at construction with New(WithObserver(rec)).
func (h *Harness) SetObserver(rec *obs.Recorder) {
	h.apply(WithObserver(rec))
}

// SetMCMShards sets the intra-simulation shard count for future MCM
// simulations.
//
// Deprecated: configure at construction with New(WithMCMShards(n)).
func (h *Harness) SetMCMShards(n int) {
	h.apply(WithMCMShards(n))
}

// apply runs one option under the harness mutex, for the setters above —
// unlike New, a setter may race with concurrent readers.
func (h *Harness) apply(opt Option) {
	h.mu.Lock()
	defer h.mu.Unlock()
	opt(h)
}

package harness

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteStrongCSV(t *testing.T) {
	h := New()
	r, err := h.RunStrong(tinyBench("csv1"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteStrongCSV(&sb, []*StrongResult{r}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 3 targets × 5 methods.
	if len(recs) != 1+3*5 {
		t.Fatalf("rows = %d, want 16", len(recs))
	}
	if recs[0][0] != "benchmark" || len(recs[1]) != 7 {
		t.Errorf("unexpected CSV shape: %v", recs[0])
	}
}

func TestWriteWeakCSV(t *testing.T) {
	h := New()
	r, err := h.RunWeak(tinyWeak("csv2"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteWeakCSV(&sb, []*WeakResult{r}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+3*5 {
		t.Fatalf("rows = %d, want 16", len(recs))
	}
	if len(recs[1]) != 9 {
		t.Errorf("weak CSV should have 9 columns, got %d", len(recs[1]))
	}
}

func TestWriteMissCurvesCSV(t *testing.T) {
	h := New()
	r, err := h.RunStrong(tinyBench("csv3"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteMissCurvesCSV(&sb, []*StrongResult{r}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1+5 {
		t.Fatalf("rows = %d, want 6", len(recs))
	}
}

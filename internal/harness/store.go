package harness

// ResultStore is the persistence layer behind the gpuscaled response
// cache: a two-level, single-flight byte store keyed by canonical request
// hashes (gpuscale.Canonicalize). Level one is an in-memory map of settled
// response bodies; level two is an optional disk directory of
// hash-sharded JSON files, so a restarted daemon serves previously
// computed predictions without re-simulating. Because every simulation in
// this repository is deterministic, a stored body is exactly the body a
// recomputation would produce — replaying cached bytes preserves the
// byte-identical-response contract.
//
// Concurrency follows the harness single-flight discipline with one
// refinement the sync.Once memo cannot express: computations are
// context-aware. The first caller for a key becomes the owner and runs
// the compute function; concurrent callers wait for the owner, but a
// waiter whose own context is cancelled stops waiting immediately.
// Errors — including owner cancellation — are never settled: the failed
// in-flight entry is removed, so a later (or concurrently waiting) caller
// with a live context retries and may become the new owner. A cancelled
// client therefore cannot poison the cache for everyone else.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// StoreSource says which level of a ResultStore served a result.
type StoreSource string

const (
	// StoreComputed: this call was the owner and ran the compute function.
	StoreComputed StoreSource = "computed"
	// StoreCoalesced: the call waited on a concurrent owner's computation.
	StoreCoalesced StoreSource = "coalesced"
	// StoreMemory: the key was already settled in memory.
	StoreMemory StoreSource = "memory"
	// StoreDisk: the key was loaded from the disk level (and promoted to
	// memory).
	StoreDisk StoreSource = "disk"
)

// storeCall is one in-flight computation; waiters block on done.
type storeCall struct {
	done chan struct{}
	body []byte
	err  error
}

// storeEntry is one settled body threaded on the intrusive LRU list:
// entries link to their neighbours directly, so a hit promotes in O(1)
// with two pointer swaps and zero allocation.
type storeEntry struct {
	key        string
	body       []byte
	prev, next *storeEntry
}

// entryOverhead approximates the fixed per-entry memory cost beyond the
// key and body bytes: the entry struct, its map slot, and the string/slice
// headers. It keeps the byte budget honest for many tiny bodies.
const entryOverhead = 128

// size is the bytes this entry charges against the memory budget.
func (e *storeEntry) size() int64 {
	return int64(len(e.key)) + int64(len(e.body)) + entryOverhead
}

// ResultStore is a two-level single-flight byte store. The zero value is
// not usable; call NewResultStore.
type ResultStore struct {
	dir      string // "" = memory-only
	maxBytes int64  // memory-level budget; <= 0 = unbounded
	mu       sync.Mutex
	settled  map[string]*storeEntry
	memBytes int64      // sum of settled entry sizes
	mru, lru *storeEntry // list ends: mru = most recently used
	flight   map[string]*storeCall
}

// NewResultStore returns a store persisting to dir ("" keeps results in
// memory only), holding at most maxBytes of settled bodies in memory
// (<= 0 for no cap). Eviction is strict LRU over an intrusive list —
// every hit, including disk promotions, refreshes recency in O(1) — and
// evicted bodies remain readable from disk when configured. The directory
// is created if missing.
func NewResultStore(dir string, maxBytes int64) (*ResultStore, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("harness: creating result store: %w", err)
		}
	}
	return &ResultStore{
		dir:      dir,
		maxBytes: maxBytes,
		settled:  make(map[string]*storeEntry),
		flight:   make(map[string]*storeCall),
	}, nil
}

// unlink removes e from the LRU list. Caller holds mu.
func (s *ResultStore) unlink(e *storeEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.mru = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.lru = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry. Caller holds mu.
func (s *ResultStore) pushFront(e *storeEntry) {
	e.next = s.mru
	if s.mru != nil {
		s.mru.prev = e
	}
	s.mru = e
	if s.lru == nil {
		s.lru = e
	}
}

// touch promotes an already-resident entry to the front. Caller holds mu.
func (s *ResultStore) touch(e *storeEntry) {
	if s.mru == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// insert settles a body in memory and evicts from the LRU end until the
// byte budget holds again. The newest entry is never evicted — it is
// being served right now, so its memory is live either way. Caller holds
// mu.
func (s *ResultStore) insert(key string, body []byte) {
	if e, ok := s.settled[key]; ok {
		s.touch(e)
		return
	}
	e := &storeEntry{key: key, body: body}
	s.settled[key] = e
	s.memBytes += e.size()
	s.pushFront(e)
	if s.maxBytes <= 0 {
		return
	}
	for s.memBytes > s.maxBytes && s.lru != nil && s.lru != e {
		victim := s.lru
		s.unlink(victim)
		delete(s.settled, victim.key)
		s.memBytes -= victim.size()
	}
}

// Do returns the stored body for key, computing it at most once across
// concurrent callers. Lookup order: memory, disk, then compute (with
// single-flight coalescing). ctx bounds only this caller's wait and the
// owner's computation — compute must observe ctx itself for cancellation
// to propagate into a running simulation. Successful results are settled
// in memory and written to disk; errors are never cached.
func (s *ResultStore) Do(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, StoreSource, error) {
	if err := validStoreKey(key); err != nil {
		return nil, "", err
	}
	for {
		s.mu.Lock()
		if e, ok := s.settled[key]; ok {
			s.touch(e)
			body := e.body
			s.mu.Unlock()
			return body, StoreMemory, nil
		}
		if c, ok := s.flight[key]; ok {
			s.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, "", ctx.Err()
			case <-c.done:
			}
			if c.err == nil {
				return c.body, StoreCoalesced, nil
			}
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
				// The owner's client went away mid-computation; this
				// waiter's context is still live, so retry (and likely
				// become the new owner).
				continue
			}
			return nil, "", c.err
		}
		c := &storeCall{done: make(chan struct{})}
		s.flight[key] = c
		s.mu.Unlock()

		if body, ok := s.readDisk(key); ok {
			s.settle(key, c, body, nil)
			return body, StoreDisk, nil
		}
		body, err := compute()
		if err == nil {
			s.writeDisk(key, body)
		}
		s.settle(key, c, body, err)
		if err != nil {
			return nil, "", err
		}
		return body, StoreComputed, nil
	}
}

// Peek reports whether key is settled in memory (it does not consult
// disk, never blocks on an in-flight computation, and does not refresh
// LRU recency).
func (s *ResultStore) Peek(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.settled[key]
	return ok
}

// Lookup returns key's body if it is already available — settled in
// memory (refreshing recency) or readable from disk (promoting to
// memory) — without ever computing or waiting on an in-flight
// computation. The serving tier uses it to prefer a finished cycle
// response over a fresh analytic estimate.
func (s *ResultStore) Lookup(key string) ([]byte, StoreSource, bool) {
	if validStoreKey(key) != nil {
		return nil, "", false
	}
	s.mu.Lock()
	if e, ok := s.settled[key]; ok {
		s.touch(e)
		body := e.body
		s.mu.Unlock()
		return body, StoreMemory, true
	}
	s.mu.Unlock()
	if body, ok := s.readDisk(key); ok {
		s.mu.Lock()
		s.insert(key, body)
		s.mu.Unlock()
		return body, StoreDisk, true
	}
	return nil, "", false
}

// MemoryBytes reports the bytes currently charged to the memory level.
func (s *ResultStore) MemoryBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memBytes
}

// settle publishes a finished computation to the waiters and, on success,
// to the memory level; failed entries are removed so later callers retry.
func (s *ResultStore) settle(key string, c *storeCall, body []byte, err error) {
	s.mu.Lock()
	delete(s.flight, key)
	if err == nil {
		s.insert(key, body)
	}
	s.mu.Unlock()
	c.body, c.err = body, err
	close(c.done)
}

// diskPath shards keys by their first two characters to keep directory
// fan-out bounded: dir/ab/abcd….json.
func (s *ResultStore) diskPath(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

func (s *ResultStore) readDisk(key string) ([]byte, bool) {
	if s.dir == "" {
		return nil, false
	}
	body, err := os.ReadFile(s.diskPath(key))
	if err != nil {
		return nil, false
	}
	return body, true
}

// writeDisk persists a body atomically (temp file + rename) so a crashed
// or concurrent writer can never leave a torn file for readDisk to trust.
// Persistence is best-effort: a full or read-only disk degrades the store
// to memory-only instead of failing the request.
func (s *ResultStore) writeDisk(key string, body []byte) {
	if s.dir == "" {
		return
	}
	path := s.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(body)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// validStoreKey restricts keys to lowercase-hex hashes of at least four
// characters — the canonical-request SHA-256 form — so keys are always
// safe path components and long enough to shard.
func validStoreKey(key string) error {
	if len(key) < 4 {
		return fmt.Errorf("harness: result-store key %q too short (want a hex hash)", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("harness: result-store key %q is not lowercase hex", key)
		}
	}
	return nil
}

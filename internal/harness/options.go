package harness

import (
	"runtime"

	"gpuscale/internal/engine"
	"gpuscale/internal/obs"
	"gpuscale/internal/uarch"
)

// Option configures a Harness at construction time. The functional-option
// form replaces the mutable Set* methods (now Deprecated: wrappers in
// deprecated.go): a harness is configured once at New and then only read,
// which keeps the sweep entry points free of read-modify-write races and
// makes a harness's behaviour a function of its constructor call.
//
// Option bodies assign fields directly and take no locks — New applies
// them before the harness is shared, and the deprecated setters apply them
// under the harness mutex.
type Option func(*Harness)

// WithParallel sets the worker-pool size used by the sweep entry points
// (RunStrongAll, RunWeakAll, RunChipletAll). n <= 1 disables the parallel
// pre-warm and restores fully sequential execution; n <= 0 selects
// runtime.NumCPU(), which is also the default. Results are identical at
// every setting — only wall clock changes.
func WithParallel(n int) Option {
	return func(h *Harness) {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		h.parallel = n
	}
}

// WithProgress attaches a callback that receives a progress snapshot after
// every pre-warm job completion (jobs done, simulated cycles/sec, ETA).
// nil detaches (the default). The callback is never invoked concurrently.
func WithProgress(fn func(engine.Progress)) Option {
	return func(h *Harness) {
		h.progress = fn
	}
}

// WithObserver attaches an observability recorder to every simulation the
// harness runs. The recorder is safe to share across the parallel
// pre-warm: each simulation records into its own trace stream and metrics
// namespace. nil detaches (the default).
func WithObserver(rec *obs.Recorder) Option {
	return func(h *Harness) {
		h.observer = rec
	}
}

// WithShards sets the intra-simulation shard count for every simulation
// the harness runs — SM groups on the monolithic simulator
// (gpu.Options.Shards), chiplet groups on the MCM simulator
// (chiplet.Options.Shards). Sharded runs are bit-identical to sequential
// ones, so memo keys stay valid at every setting — only wall clock
// differs. n <= 1 keeps the sequential event loops; negative n is treated
// as 0. WithMCMShards, when also set, overrides this count for MCM runs.
func WithShards(n int) Option {
	return func(h *Harness) {
		if n < 0 {
			n = 0
		}
		h.shards = n
	}
}

// WithQuantum relaxes the sharded runs' per-cycle barrier: shards advance
// in deterministically-safe windows of up to q cycles between
// synchronisations (see docs/PARALLELISM.md). Bit-identical at every
// setting; no effect unless a shard count above 1 is configured. q <= 0
// keeps the barrier-every-cycle cadence.
func WithQuantum(q int) Option {
	return func(h *Harness) {
		if q < 0 {
			q = 0
		}
		h.quantum = q
	}
}

// WithUarch sets the microarchitecture variant every harness simulation
// runs under (gpu.Options.Uarch / chiplet.Options.Uarch). Unlike the
// sharding knobs, a variant CHANGES simulated timing, so results from
// differently-configured harnesses must never be compared as if
// equivalent. The memo key is (config, workload) name only — a harness is
// therefore fixed to one variant for its lifetime (paperbench runs one
// variant per process); do not reconfigure a harness that has cached runs.
func WithUarch(v uarch.Variant) Option {
	return func(h *Harness) {
		h.uarch = v
	}
}

// WithMCMShards sets the intra-simulation shard count for MCM simulations
// only (see chiplet.Options.Shards), overriding WithShards for those runs.
// Sharded runs are bit-identical to sequential ones, so memo keys stay
// valid at every setting — only wall clock differs. n <= 1 keeps the
// sequential event loop (unless WithShards set a count); negative n is
// treated as 0.
func WithMCMShards(n int) Option {
	return func(h *Harness) {
		if n < 0 {
			n = 0
		}
		h.mcmShards = n
	}
}

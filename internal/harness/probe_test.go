package harness

import (
	"fmt"
	"os"
	"testing"
)

func TestProbeStrongErrors(t *testing.T) {
	if os.Getenv("PROBE") == "" {
		t.Skip("set PROBE=1")
	}
	h := New()
	results, err := h.RunStrongAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{128, 64} {
		fmt.Printf("\n=== %d-SM target ===\n%-7s", target, "bench")
		for _, m := range Methods {
			fmt.Printf("%13s", m)
		}
		fmt.Println()
		for _, r := range results {
			fmt.Printf("%-7s", r.Bench.Name)
			for _, m := range Methods {
				fmt.Printf("%12.1f%%", r.Err[m][target])
			}
			fmt.Printf("   (real=%.1f pred=%.1f C=%.3f fmem16=%.3f)\n",
				r.Real[target].IPC, r.Pred[ScaleModel][target],
				(r.Real[16].IPC/r.Real[8].IPC)/2, r.Real[16].FMem)
		}
		fmt.Printf("%-7s", "AVG/MAX")
		for _, m := range Methods {
			mean, max := MeanMaxError(results, m, target)
			fmt.Printf("%6.1f/%4.0f%%", mean, max)
		}
		fmt.Println()
	}
}

package uarch

import (
	"encoding/json"
	"testing"
)

func TestValidate(t *testing.T) {
	good := []Variant{
		{},
		{Scheduler: SchedGTO, L1: L1Line, NoC: RouteXbar, IssueWidth: 1},
		{Scheduler: SchedTwoLevel},
		{L1: L1Sectored, NoC: RouteDeflect, IssueWidth: MaxIssueWidth},
	}
	for _, v := range good {
		if err := v.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", v, err)
		}
	}
	bad := []Variant{
		{Scheduler: "greedy"},
		{L1: "sector"},
		{NoC: "mesh"},
		{IssueWidth: -1},
		{IssueWidth: MaxIssueWidth + 1},
	}
	for _, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", v)
		}
	}
}

func TestNormalizeCanonicalRoundTrip(t *testing.T) {
	// Normalize spells every default out; Canonical strips them back.
	if got := (Variant{}).Normalize(); got != (Variant{Scheduler: SchedGTO, L1: L1Line, NoC: RouteXbar, IssueWidth: 1}) {
		t.Fatalf("Normalize(zero) = %+v", got)
	}
	if got := (Variant{}).Normalize().Canonical(); got != (Variant{}) {
		t.Fatalf("Canonical(Normalize(zero)) = %+v, want zero", got)
	}
	v := Variant{Scheduler: SchedLRR, IssueWidth: 2}
	if got := v.Normalize().Canonical(); got != v {
		t.Fatalf("Canonical(Normalize(%+v)) = %+v", v, got)
	}
}

func TestIsDefault(t *testing.T) {
	if !(Variant{}).IsDefault() {
		t.Error("zero Variant is not default")
	}
	if !(Variant{Scheduler: SchedGTO, L1: L1Line, NoC: RouteXbar, IssueWidth: 1}).IsDefault() {
		t.Error("explicitly-spelled baseline is not default")
	}
	for _, v := range []Variant{
		{Scheduler: SchedLRR},
		{Scheduler: SchedTwoLevel},
		{L1: L1Sectored},
		{NoC: RouteDeflect},
		{IssueWidth: 2},
	} {
		if v.IsDefault() {
			t.Errorf("%+v reported default", v)
		}
	}
}

func TestParseVariant(t *testing.T) {
	cases := []struct {
		in   string
		want Variant
	}{
		{"", Variant{}},
		{"default", Variant{}},
		{"gto", Variant{Scheduler: SchedGTO}},
		{"two-level", Variant{Scheduler: SchedTwoLevel}},
		{"sectored", Variant{L1: L1Sectored}},
		{"bufferless-deflect", Variant{NoC: RouteDeflect}},
		{"deflect", Variant{NoC: RouteDeflect}},
		{"two-level,deflect", Variant{Scheduler: SchedTwoLevel, NoC: RouteDeflect}},
		{"iw=4", Variant{IssueWidth: 4}},
		{"two-level,sectored,bufferless-deflect,iw=2", Variant{
			Scheduler: SchedTwoLevel, L1: L1Sectored, NoC: RouteDeflect, IssueWidth: 2}},
		{" lrr , line ", Variant{Scheduler: SchedLRR, L1: L1Line}},
	}
	for _, c := range cases {
		got, err := ParseVariant(c.in)
		if err != nil {
			t.Errorf("ParseVariant(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseVariant(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, in := range []string{"greedy", "gto,lrr", "iw=0", "iw=9", "iw=x", "sectored,sectored", "deflect,xbar"} {
		if _, err := ParseVariant(in); err == nil {
			t.Errorf("ParseVariant(%q) = nil error, want error", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, v := range []Variant{
		{},
		{Scheduler: SchedTwoLevel},
		{Scheduler: SchedLRR, L1: L1Sectored, NoC: RouteDeflect, IssueWidth: 3},
	} {
		got, err := ParseVariant(v.String())
		if err != nil {
			t.Errorf("ParseVariant(%q): %v", v.String(), err)
			continue
		}
		if got != v.Canonical() {
			t.Errorf("round trip of %+v via %q = %+v", v, v.String(), got)
		}
	}
	if s := (Variant{}).String(); s != "default" {
		t.Errorf("zero Variant renders %q, want \"default\"", s)
	}
}

// TestJSONOmitsDefaults pins the wire shape the canonical request hash
// depends on: a canonical (default-stripped) Variant marshals to "{}", and
// every field uses its documented wire name.
func TestJSONOmitsDefaults(t *testing.T) {
	buf, err := json.Marshal(Variant{}.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "{}" {
		t.Fatalf("canonical zero Variant marshals to %s, want {}", buf)
	}
	buf, err = json.Marshal(Variant{Scheduler: SchedTwoLevel, L1: L1Sectored, NoC: RouteDeflect, IssueWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"scheduler":"two-level","l1":"sectored","noc":"bufferless-deflect","issue_width":2}`
	if string(buf) != want {
		t.Fatalf("marshal = %s, want %s", buf, want)
	}
}

// TestConfidencePenaltyForcesEscalation pins the relation the auto tier
// relies on: the variant penalty alone takes even a perfect confidence below
// the default escalation threshold (0.5, see gpuscale.DefaultConfidenceThreshold).
func TestConfidencePenaltyForcesEscalation(t *testing.T) {
	if ConfidencePenalty*1.0 >= 0.5 {
		t.Fatalf("ConfidencePenalty %v does not force escalation below 0.5", ConfidencePenalty)
	}
}

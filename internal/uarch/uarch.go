// Package uarch defines microarchitecture variant configuration: the warp
// scheduling policy, L1 organisation, NoC routing discipline and SM issue
// width that a simulation models. A Variant is a first-class, result-relevant
// input — unlike host-side execution options (shards, barrier quantum,
// serving tier), changing any of its fields changes simulated statistics, so
// the canonical wire request keeps it in the cache-key hash (see
// docs/UARCH.md for the matrix, wire spelling and hash semantics).
//
// The zero Variant means "the paper's Table III baseline": GTO warp
// scheduling, line-grain L1, crossbar NoC, single issue. Normalize fills the
// explicit default spellings in; Canonical strips them back out so that a
// fully-default Variant and an absent one hash identically.
package uarch

import (
	"fmt"
	"strconv"
	"strings"
)

// Scheduler selects the warp scheduling policy.
type Scheduler string

const (
	// SchedGTO is Greedy-Then-Oldest (the paper's Table III policy): stay
	// on the current warp while it is ready, otherwise pick the oldest
	// ready warp. The default.
	SchedGTO Scheduler = "gto"
	// SchedLRR is loose round-robin: the ready warp that issued least
	// recently goes first.
	SchedLRR Scheduler = "lrr"
	// SchedTwoLevel is a fetch-group two-level scheduler: warps are
	// partitioned into fixed groups, scheduling round-robins within the
	// active group and only moves to the next group when the active one
	// has no ready warp (after Narasiman et al., MICRO'11, simplified).
	SchedTwoLevel Scheduler = "two-level"
)

// L1Mode selects the L1 data cache fill granularity.
type L1Mode string

const (
	// L1Line fills whole cache lines on a miss. The default.
	L1Line L1Mode = "line"
	// L1Sectored fills one 32-byte sector per miss: a tag hit on an
	// invalid sector is a sector miss that fetches only that sector, so
	// irregular access patterns spend less bandwidth but hit less often.
	L1Sectored L1Mode = "sectored"
)

// Routing selects the NoC routing discipline between the SMs and the LLC
// slices.
type Routing string

const (
	// RouteXbar is the paper's ideal crossbar: per-port and bisection
	// bandwidth servers, no deflection. The default.
	RouteXbar Routing = "xbar"
	// RouteDeflect is a first-order bufferless deflection-routed network:
	// a flit arriving at a busy port is deflected and re-circulates for a
	// hop latency (consuming extra bisection bandwidth) instead of
	// queueing (after the bufferless-NoC literature, simplified).
	RouteDeflect Routing = "bufferless-deflect"
)

// MaxIssueWidth bounds Variant.IssueWidth; wider SMs than this are outside
// the model's calibrated range.
const MaxIssueWidth = 8

// SectorBytes is the fill granularity of a sectored L1 (clamped to the line
// size when lines are smaller).
const SectorBytes = 32

// TwoLevelGroupSize is the fixed fetch-group width of the two-level
// scheduler: warp slot i belongs to group i/TwoLevelGroupSize.
const TwoLevelGroupSize = 8

// ConfidencePenalty is the multiplicative structural penalty the analytic
// tier applies to its confidence score when the requested variant is
// non-default: the phase-program model is calibrated against the baseline
// microarchitecture only, so a variant estimate is structurally blind and
// must fall below the auto-tier escalation gate (the penalty alone takes a
// perfect score of 1.0 to 0.40 < the 0.5 default threshold, forcing
// escalation to the cycle model).
const ConfidencePenalty = 0.40

// Variant is one microarchitecture point. The zero value is the baseline.
// Fields use their zero value to mean "default"; Normalize makes the
// defaults explicit, Canonical strips them back to zero.
type Variant struct {
	Scheduler  Scheduler `json:"scheduler,omitempty"`
	L1         L1Mode    `json:"l1,omitempty"`
	NoC        Routing   `json:"noc,omitempty"`
	IssueWidth int       `json:"issue_width,omitempty"` // 0 = 1
}

// Validate reports whether every field is either zero or one of the defined
// spellings, and the issue width is within the modelled range.
func (v Variant) Validate() error {
	switch v.Scheduler {
	case "", SchedGTO, SchedLRR, SchedTwoLevel:
	default:
		return fmt.Errorf("uarch: unknown scheduler %q (want gto, lrr or two-level)", v.Scheduler)
	}
	switch v.L1 {
	case "", L1Line, L1Sectored:
	default:
		return fmt.Errorf("uarch: unknown l1 mode %q (want line or sectored)", v.L1)
	}
	switch v.NoC {
	case "", RouteXbar, RouteDeflect:
	default:
		return fmt.Errorf("uarch: unknown noc routing %q (want xbar or bufferless-deflect)", v.NoC)
	}
	if v.IssueWidth < 0 || v.IssueWidth > MaxIssueWidth {
		return fmt.Errorf("uarch: issue width %d out of range [1,%d]", v.IssueWidth, MaxIssueWidth)
	}
	return nil
}

// Normalize returns v with every defaulted field spelled out: gto, line,
// xbar, issue width 1.
func (v Variant) Normalize() Variant {
	if v.Scheduler == "" {
		v.Scheduler = SchedGTO
	}
	if v.L1 == "" {
		v.L1 = L1Line
	}
	if v.NoC == "" {
		v.NoC = RouteXbar
	}
	if v.IssueWidth == 0 {
		v.IssueWidth = 1
	}
	return v
}

// Canonical returns v with every default-valued field stripped to zero, the
// form the canonical wire request hashes: an explicitly-default field and an
// absent one describe the same microarchitecture, so they must hash the
// same.
func (v Variant) Canonical() Variant {
	if v.Scheduler == SchedGTO {
		v.Scheduler = ""
	}
	if v.L1 == L1Line {
		v.L1 = ""
	}
	if v.NoC == RouteXbar {
		v.NoC = ""
	}
	if v.IssueWidth == 1 {
		v.IssueWidth = 0
	}
	return v
}

// IsDefault reports whether v describes the baseline microarchitecture
// (every field zero or explicitly spelling its default).
func (v Variant) IsDefault() bool {
	return v.Canonical() == Variant{}
}

// String renders the canonical comma-joined token form ParseVariant accepts;
// the baseline renders as "default".
func (v Variant) String() string {
	c := v.Canonical()
	var parts []string
	if c.Scheduler != "" {
		parts = append(parts, string(c.Scheduler))
	}
	if c.L1 != "" {
		parts = append(parts, string(c.L1))
	}
	if c.NoC != "" {
		parts = append(parts, string(c.NoC))
	}
	if c.IssueWidth != 0 {
		parts = append(parts, "iw="+strconv.Itoa(c.IssueWidth))
	}
	if len(parts) == 0 {
		return "default"
	}
	return strings.Join(parts, ",")
}

// ParseVariant parses the CLI spelling: a comma-separated list of
// unambiguous tokens — a scheduler name (gto, lrr, two-level), an L1 mode
// (line, sectored), a routing name (xbar, bufferless-deflect, or the
// shorthand "deflect") and/or an issue width ("iw=N") — in any order.
// Empty input and "default" both mean the baseline. Repeating a dimension
// is an error.
func ParseVariant(s string) (Variant, error) {
	var v Variant
	s = strings.TrimSpace(s)
	if s == "" || s == "default" {
		return v, nil
	}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == string(SchedGTO) || tok == string(SchedLRR) || tok == string(SchedTwoLevel):
			if v.Scheduler != "" {
				return Variant{}, fmt.Errorf("uarch: scheduler given twice (%q and %q)", v.Scheduler, tok)
			}
			v.Scheduler = Scheduler(tok)
		case tok == string(L1Line) || tok == string(L1Sectored):
			if v.L1 != "" {
				return Variant{}, fmt.Errorf("uarch: l1 mode given twice (%q and %q)", v.L1, tok)
			}
			v.L1 = L1Mode(tok)
		case tok == string(RouteXbar) || tok == string(RouteDeflect) || tok == "deflect":
			if v.NoC != "" {
				return Variant{}, fmt.Errorf("uarch: noc routing given twice (%q and %q)", v.NoC, tok)
			}
			if tok == "deflect" {
				tok = string(RouteDeflect)
			}
			v.NoC = Routing(tok)
		case strings.HasPrefix(tok, "iw="):
			if v.IssueWidth != 0 {
				return Variant{}, fmt.Errorf("uarch: issue width given twice")
			}
			n, err := strconv.Atoi(tok[len("iw="):])
			if err != nil || n < 1 || n > MaxIssueWidth {
				return Variant{}, fmt.Errorf("uarch: bad issue width %q (want iw=1..%d)", tok, MaxIssueWidth)
			}
			v.IssueWidth = n
		default:
			return Variant{}, fmt.Errorf("uarch: unknown token %q (want gto|lrr|two-level, line|sectored, xbar|bufferless-deflect, iw=N)", tok)
		}
	}
	if err := v.Validate(); err != nil {
		return Variant{}, err
	}
	return v, nil
}

// Package sched provides the event-driven scheduling primitive shared by
// the GPU and MCM run loops: an indexed min-heap of per-unit wake-up cycles.
//
// The dense reference loop ticks every SM every simulated cycle, paying
// O(NumSMs) bookkeeping even when all but one SM sits in a hundred-cycle
// memory stall. The event-driven loop instead keeps each SM's next
// actionable cycle in this heap and ticks only the SMs whose wake-up is due,
// which turns the per-cycle cost into O(active · log NumSMs).
//
// Bit-identical results depend on one property of this heap: among units
// with the same wake-up cycle, Pop returns the smallest unit index first.
// The shared memory hierarchy (NoC, LLC, DRAM queues) is stateful, so the
// order in which SMs access it within one cycle is architecturally visible;
// the dense loop established ascending-SM-ID order and the heap preserves
// it via the (cycle, unit) lexicographic key.
package sched

// Heap is an indexed binary min-heap over unit indices 0..n-1 keyed by an
// int64 wake-up cycle, with ties broken toward the smaller unit index. Each
// unit appears at most once. The zero value is unusable; use NewHeap. All
// operations after NewHeap are allocation-free.
type Heap struct {
	idx  []int   // heap order -> unit index
	key  []int64 // heap order -> wake-up cycle
	pos  []int   // unit index -> heap order, -1 if absent
	size int
}

// NewHeap returns a heap for unit indices in [0, units).
func NewHeap(units int) *Heap {
	h := &Heap{
		idx: make([]int, units),
		key: make([]int64, units),
		pos: make([]int, units),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of scheduled units.
func (h *Heap) Len() int { return h.size }

// Contains reports whether the unit is currently scheduled.
func (h *Heap) Contains(unit int) bool { return h.pos[unit] >= 0 }

// MinKey returns the earliest wake-up cycle. It must not be called on an
// empty heap.
func (h *Heap) MinKey() int64 { return h.key[0] }

// Pop removes and returns the unit with the earliest wake-up cycle; among
// equal cycles, the smallest unit index.
func (h *Heap) Pop() (unit int, key int64) {
	unit, key = h.idx[0], h.key[0]
	h.pos[unit] = -1
	h.size--
	if h.size > 0 {
		h.idx[0] = h.idx[h.size]
		h.key[0] = h.key[h.size]
		h.pos[h.idx[0]] = 0
		h.down(0)
	}
	return unit, key
}

// Set schedules the unit at the given wake-up cycle, inserting it or moving
// its existing entry.
func (h *Heap) Set(unit int, key int64) {
	if p := h.pos[unit]; p >= 0 {
		old := h.key[p]
		h.key[p] = key
		if key < old {
			h.up(p)
		} else if key > old {
			h.down(p)
		}
		return
	}
	h.idx[h.size] = unit
	h.key[h.size] = key
	h.pos[unit] = h.size
	h.size++
	h.up(h.size - 1)
}

// Remove deschedules the unit if it is scheduled.
func (h *Heap) Remove(unit int) {
	p := h.pos[unit]
	if p < 0 {
		return
	}
	h.pos[unit] = -1
	h.size--
	if p == h.size {
		return
	}
	h.idx[p] = h.idx[h.size]
	h.key[p] = h.key[h.size]
	h.pos[h.idx[p]] = p
	h.down(p)
	h.up(p)
}

// less orders heap entries by (cycle, unit index).
func (h *Heap) less(a, b int) bool {
	if h.key[a] != h.key[b] {
		return h.key[a] < h.key[b]
	}
	return h.idx[a] < h.idx[b]
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *Heap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < h.size && h.less(l, small) {
			small = l
		}
		if r < h.size && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

func (h *Heap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.key[a], h.key[b] = h.key[b], h.key[a]
	h.pos[h.idx[a]] = a
	h.pos[h.idx[b]] = b
}

package sched

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapPopsByCycleThenUnit(t *testing.T) {
	h := NewHeap(8)
	// Two units at cycle 5, two at cycle 3, one at cycle 9 — inserted in a
	// scrambled order.
	h.Set(6, 5)
	h.Set(1, 9)
	h.Set(4, 3)
	h.Set(2, 5)
	h.Set(0, 3)
	want := []struct {
		unit int
		key  int64
	}{{0, 3}, {4, 3}, {2, 5}, {6, 5}, {1, 9}}
	for _, w := range want {
		u, k := h.Pop()
		if u != w.unit || k != w.key {
			t.Fatalf("Pop() = (%d, %d), want (%d, %d)", u, k, w.unit, w.key)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len() = %d after draining, want 0", h.Len())
	}
}

func TestHeapSetMovesExistingEntry(t *testing.T) {
	h := NewHeap(4)
	h.Set(0, 10)
	h.Set(1, 20)
	h.Set(2, 30)
	h.Set(2, 5) // move earlier
	if u, k := h.Pop(); u != 2 || k != 5 {
		t.Fatalf("Pop() = (%d, %d), want (2, 5)", u, k)
	}
	h.Set(0, 40) // move later
	if u, k := h.Pop(); u != 1 || k != 20 {
		t.Fatalf("Pop() = (%d, %d), want (1, 20)", u, k)
	}
	if u, k := h.Pop(); u != 0 || k != 40 {
		t.Fatalf("Pop() = (%d, %d), want (0, 40)", u, k)
	}
}

func TestHeapRemove(t *testing.T) {
	h := NewHeap(4)
	for i := 0; i < 4; i++ {
		h.Set(i, int64(10-i))
	}
	h.Remove(3) // current min
	h.Remove(1)
	h.Remove(1) // removing an absent unit is a no-op
	if h.Contains(3) || h.Contains(1) {
		t.Fatal("removed units still reported as contained")
	}
	if u, k := h.Pop(); u != 2 || k != 8 {
		t.Fatalf("Pop() = (%d, %d), want (2, 8)", u, k)
	}
	if u, k := h.Pop(); u != 0 || k != 10 {
		t.Fatalf("Pop() = (%d, %d), want (0, 10)", u, k)
	}
}

// TestHeapRandomizedAgainstSort drives the heap with random Set/Remove/Pop
// traffic and checks every drain comes out in (cycle, unit) order.
func TestHeapRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const units = 64
	for trial := 0; trial < 200; trial++ {
		h := NewHeap(units)
		live := map[int]int64{}
		for op := 0; op < 300; op++ {
			u := rng.Intn(units)
			switch rng.Intn(3) {
			case 0, 1:
				k := int64(rng.Intn(50))
				h.Set(u, k)
				live[u] = k
			case 2:
				h.Remove(u)
				delete(live, u)
			}
		}
		type ent struct {
			unit int
			key  int64
		}
		var want []ent
		for u, k := range live {
			want = append(want, ent{u, k})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].key != want[j].key {
				return want[i].key < want[j].key
			}
			return want[i].unit < want[j].unit
		})
		if h.Len() != len(want) {
			t.Fatalf("trial %d: Len() = %d, want %d", trial, h.Len(), len(want))
		}
		for i, w := range want {
			u, k := h.Pop()
			if u != w.unit || k != w.key {
				t.Fatalf("trial %d pop %d: got (%d, %d), want (%d, %d)", trial, i, u, k, w.unit, w.key)
			}
		}
	}
}

func TestHeapAllocationFree(t *testing.T) {
	h := NewHeap(32)
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			h.Set(i, int64(i%7))
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}); n != 0 {
		t.Fatalf("heap operations allocated %.1f times per run, want 0", n)
	}
}

package cache

import "testing"

// TestMSHRCapacityOneBoundary pins the structural-stall boundary on the
// smallest possible file: with one entry outstanding the file is full for
// every other line, merges into the occupied line still succeed, and the
// slot frees exactly when the completion cycle passes — not one cycle
// before.
func TestMSHRCapacityOneBoundary(t *testing.T) {
	m := NewMSHRFile(1)
	if !m.Allocate(7, 100) {
		t.Fatal("allocate into empty file failed")
	}
	if !m.Full(99) {
		t.Error("file with one live entry should be full at capacity 1")
	}
	if m.Allocate(8, 120) {
		t.Error("second line allocated into a full capacity-1 file")
	}
	if !m.Allocate(7, 110) {
		t.Error("merge into the resident line must succeed even when full")
	}
	// The entry now completes at 110 (merge keeps the later time). At cycle
	// 109 it is still live; at 110 Lookup/Full reclaim it.
	if _, ok := m.Lookup(109, 7); !ok {
		t.Error("entry expired one cycle early")
	}
	if m.Full(110) {
		t.Error("file still full at the completion cycle")
	}
	if _, ok := m.Lookup(110, 7); ok {
		t.Error("completed entry still visible to Lookup")
	}
	if !m.Allocate(8, 200) {
		t.Error("allocate after expiry failed")
	}
}

// TestMSHRSimultaneousCompletions pins Expire when several entries complete
// on the same cycle: all of them must go in one call, whatever internal
// order they are stored in, and the cached next-completion must survive.
func TestMSHRSimultaneousCompletions(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(1, 50)
	m.Allocate(2, 50)
	m.Allocate(3, 50)
	m.Allocate(4, 60)
	if nc, ok := m.NextCompletion(); !ok || nc != 50 {
		t.Fatalf("NextCompletion = %d,%v, want 50,true", nc, ok)
	}
	if n := m.Expire(49); n != 0 {
		t.Errorf("Expire(49) released %d entries, want 0", n)
	}
	if n := m.Expire(50); n != 3 {
		t.Errorf("Expire(50) released %d entries, want 3", n)
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1", m.Outstanding())
	}
	if nc, ok := m.NextCompletion(); !ok || nc != 60 {
		t.Errorf("NextCompletion after expiry = %d,%v, want 60,true", nc, ok)
	}
	if _, ok := m.Lookup(55, 4); !ok {
		t.Error("surviving entry lost")
	}
}

// TestMSHRLazyExpiryViaLookupAndFull verifies that Lookup and Full reclaim
// completed entries themselves — the simulator never calls Expire
// explicitly anymore — and that a merge extending an entry past the current
// minimum keeps NextCompletion correct.
func TestMSHRLazyExpiryViaLookupAndFull(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(1, 10)
	m.Allocate(2, 40)
	// Merging line 1 to a later completion moves the minimum to 30.
	m.Allocate(1, 30)
	if nc, _ := m.NextCompletion(); nc != 30 {
		t.Errorf("NextCompletion after merge = %d, want 30", nc)
	}
	// At cycle 10 nothing has completed (line 1 now completes at 30).
	if !m.Full(10) {
		t.Error("file should still be full at cycle 10 after the merge")
	}
	// Lookup at cycle 35 reclaims line 1 as a side effect.
	if _, ok := m.Lookup(35, 1); ok {
		t.Error("line 1 should have completed by cycle 35")
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1", m.Outstanding())
	}
	if m.Full(35) {
		t.Error("file should have a free slot at cycle 35")
	}
	// A fresh allocate to a line whose previous miss completed starts a
	// brand-new entry rather than "merging with the past".
	if !m.Allocate(1, 100) {
		t.Error("re-allocate of a completed line failed")
	}
	if c, ok := m.Lookup(50, 1); !ok || c != 100 {
		t.Errorf("re-allocated entry = %d,%v, want 100,true", c, ok)
	}
}

// TestMSHRAllocationFree pins the no-allocation property of the flat file:
// steady-state traffic (allocate, merge, lookup, expire) must not touch the
// heap.
func TestMSHRAllocationFree(t *testing.T) {
	m := NewMSHRFile(16)
	if n := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 16; i++ {
			m.Allocate(i, int64(100+i))
		}
		m.Allocate(3, 200) // merge
		m.Lookup(50, 5)
		m.Full(50)
		m.Expire(300)
	}); n != 0 {
		t.Fatalf("MSHR operations allocated %.1f times per run, want 0", n)
	}
}

package cache

import (
	"math/rand"
	"testing"
)

// TestMSHRCapacityOneBoundary pins the structural-stall boundary on the
// smallest possible file: with one entry outstanding the file is full for
// every other line, merges into the occupied line still succeed, and the
// slot frees exactly when the completion cycle passes — not one cycle
// before.
func TestMSHRCapacityOneBoundary(t *testing.T) {
	m := NewMSHRFile(1)
	if !m.Allocate(7, 100) {
		t.Fatal("allocate into empty file failed")
	}
	if !m.Full(99) {
		t.Error("file with one live entry should be full at capacity 1")
	}
	if m.Allocate(8, 120) {
		t.Error("second line allocated into a full capacity-1 file")
	}
	if !m.Allocate(7, 110) {
		t.Error("merge into the resident line must succeed even when full")
	}
	// The entry now completes at 110 (merge keeps the later time). At cycle
	// 109 it is still live; at 110 Lookup/Full reclaim it.
	if _, ok := m.Lookup(109, 7); !ok {
		t.Error("entry expired one cycle early")
	}
	if m.Full(110) {
		t.Error("file still full at the completion cycle")
	}
	if _, ok := m.Lookup(110, 7); ok {
		t.Error("completed entry still visible to Lookup")
	}
	if !m.Allocate(8, 200) {
		t.Error("allocate after expiry failed")
	}
}

// TestMSHRSimultaneousCompletions pins Expire when several entries complete
// on the same cycle: all of them must go in one call, whatever internal
// order they are stored in, and the cached next-completion must survive.
func TestMSHRSimultaneousCompletions(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(1, 50)
	m.Allocate(2, 50)
	m.Allocate(3, 50)
	m.Allocate(4, 60)
	if nc, ok := m.NextCompletion(); !ok || nc != 50 {
		t.Fatalf("NextCompletion = %d,%v, want 50,true", nc, ok)
	}
	if n := m.Expire(49); n != 0 {
		t.Errorf("Expire(49) released %d entries, want 0", n)
	}
	if n := m.Expire(50); n != 3 {
		t.Errorf("Expire(50) released %d entries, want 3", n)
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1", m.Outstanding())
	}
	if nc, ok := m.NextCompletion(); !ok || nc != 60 {
		t.Errorf("NextCompletion after expiry = %d,%v, want 60,true", nc, ok)
	}
	if _, ok := m.Lookup(55, 4); !ok {
		t.Error("surviving entry lost")
	}
}

// TestMSHRBatchedExpiryContract pins the deferred-reclamation contract: the
// run loop batches Expire to once per SM per visited cycle, so between
// Expires, Lookup must treat completed entries as absent without reclaiming
// them, Full must still reclaim when the file looks full (otherwise a file
// clogged with completed entries would refuse new misses), and a merge
// extending an entry past the current minimum must keep NextCompletion
// correct.
func TestMSHRBatchedExpiryContract(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(1, 10)
	m.Allocate(2, 40)
	// Merging line 1 to a later completion moves the minimum to 30.
	m.Allocate(1, 30)
	if nc, _ := m.NextCompletion(); nc != 30 {
		t.Errorf("NextCompletion after merge = %d, want 30", nc)
	}
	// At cycle 10 nothing has completed (line 1 now completes at 30).
	if !m.Full(10) {
		t.Error("file should still be full at cycle 10 after the merge")
	}
	// Lookup at cycle 35 sees line 1 as completed but does NOT reclaim it:
	// the live count stays deferred until the next Expire or Full.
	if _, ok := m.Lookup(35, 1); ok {
		t.Error("line 1 should have completed by cycle 35")
	}
	if m.Outstanding() != 2 {
		t.Errorf("outstanding = %d, want 2 (reclamation is deferred)", m.Outstanding())
	}
	// Full at capacity reclaims, exposing the free slot exactly as the
	// per-access contract did.
	if m.Full(35) {
		t.Error("file should have a free slot at cycle 35")
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding after Full = %d, want 1", m.Outstanding())
	}
	// A fresh allocate to a line whose previous miss completed starts a
	// brand-new entry rather than "merging with the past".
	if !m.Allocate(1, 100) {
		t.Error("re-allocate of a completed line failed")
	}
	if c, ok := m.Lookup(50, 1); !ok || c != 100 {
		t.Errorf("re-allocated entry = %d,%v, want 100,true", c, ok)
	}
	// The batched driver call: Expire reclaims everything completed by now.
	if n := m.Expire(60); n != 1 {
		t.Errorf("Expire(60) released %d entries, want 1 (line 2 at 40)", n)
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding after Expire = %d, want 1", m.Outstanding())
	}
}

// TestMSHRAllocateMergesIntoCompletedEntry pins the resurrection path: when
// reclamation is deferred, Allocate of a line whose stale (completed) entry
// is still in the file must merge into that slot with the new, later
// completion winning — equivalent to reclaim-then-allocate, without needing
// an Expire first.
func TestMSHRAllocateMergesIntoCompletedEntry(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(7, 10)
	m.Allocate(8, 12)
	// No Expire runs; at cycle 20 both entries are stale. A new miss on
	// line 7 reuses its slot.
	if !m.Allocate(7, 50) {
		t.Fatal("merge into completed entry failed")
	}
	if c, ok := m.Lookup(20, 7); !ok || c != 50 {
		t.Errorf("Lookup(20, 7) = %d,%v, want 50,true", c, ok)
	}
	if m.Outstanding() != 2 {
		t.Errorf("outstanding = %d, want 2", m.Outstanding())
	}
	// The stale minimum (10) still gates nothing incorrectly: Expire at 20
	// drops only line 8 and recomputes the minimum to 50.
	if n := m.Expire(20); n != 1 {
		t.Errorf("Expire(20) released %d entries, want 1", n)
	}
	if nc, ok := m.NextCompletion(); !ok || nc != 50 {
		t.Errorf("NextCompletion = %d,%v, want 50,true", nc, ok)
	}
}

// mshrModel is the naive reference implementation of the batched-expiry
// contract: an append-only slice with full rescans everywhere. The
// heap-indexed MSHRFile must agree with it on every observable answer.
type mshrModel struct {
	capacity int
	lines    []uint64
	comps    []int64
}

func (m *mshrModel) lookup(now int64, line uint64) (int64, bool) {
	for i, l := range m.lines {
		if l == line {
			if m.comps[i] <= now {
				return 0, false
			}
			return m.comps[i], true
		}
	}
	return 0, false
}

func (m *mshrModel) expire(now int64) int {
	released := 0
	for i := 0; i < len(m.lines); {
		if m.comps[i] <= now {
			m.lines[i] = m.lines[len(m.lines)-1]
			m.comps[i] = m.comps[len(m.comps)-1]
			m.lines = m.lines[:len(m.lines)-1]
			m.comps = m.comps[:len(m.comps)-1]
			released++
			continue
		}
		i++
	}
	return released
}

func (m *mshrModel) full(now int64) bool {
	if len(m.lines) < m.capacity {
		return false
	}
	m.expire(now)
	return len(m.lines) >= m.capacity
}

func (m *mshrModel) allocate(line uint64, completion int64) bool {
	for i, l := range m.lines {
		if l == line {
			if completion > m.comps[i] {
				m.comps[i] = completion
			}
			return true
		}
	}
	if len(m.lines) >= m.capacity {
		return false
	}
	m.lines = append(m.lines, line)
	m.comps = append(m.comps, completion)
	return true
}

func (m *mshrModel) nextCompletion() (int64, bool) {
	if len(m.lines) == 0 {
		return 0, false
	}
	best := m.comps[0]
	for _, c := range m.comps[1:] {
		if c < best {
			best = c
		}
	}
	return best, true
}

// TestMSHRMatchesReferenceModel drives the heap-indexed file and the naive
// reference through a long randomized schedule of allocates (fresh, merge,
// and stale-resurrection), lookups, batched expiries, fullness probes and
// minimum queries with time advancing irregularly, cross-checking every
// answer. This pins the index-heap bookkeeping (sift directions, arbitrary
// deletion, slot compaction) against the simple semantics.
func TestMSHRMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMSHRFile(24)
	ref := &mshrModel{capacity: 24}
	now := int64(0)
	for iter := 0; iter < 200000; iter++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // allocate: small line space forces merges and resurrections
			line := uint64(rng.Intn(40))
			comp := now + 1 + int64(rng.Intn(120))
			if got, want := m.Allocate(line, comp), ref.allocate(line, comp); got != want {
				t.Fatalf("iter %d: Allocate(%d, %d) = %v, want %v", iter, line, comp, got, want)
			}
		case 4, 5: // lookup
			line := uint64(rng.Intn(40))
			gc, gok := m.Lookup(now, line)
			wc, wok := ref.lookup(now, line)
			if gc != wc || gok != wok {
				t.Fatalf("iter %d: Lookup(%d, %d) = %d,%v, want %d,%v", iter, now, line, gc, gok, wc, wok)
			}
		case 6: // batched expiry
			if got, want := m.Expire(now), ref.expire(now); got != want {
				t.Fatalf("iter %d: Expire(%d) = %d, want %d", iter, now, got, want)
			}
		case 7: // fullness probe (reclaims when apparently full)
			if got, want := m.Full(now), ref.full(now); got != want {
				t.Fatalf("iter %d: Full(%d) = %v, want %v", iter, now, got, want)
			}
		case 8: // minimum query
			gc, gok := m.NextCompletion()
			wc, wok := ref.nextCompletion()
			if gc != wc || gok != wok {
				t.Fatalf("iter %d: NextCompletion = %d,%v, want %d,%v", iter, gc, gok, wc, wok)
			}
		case 9: // advance time irregularly so expiry batches vary in size
			now += int64(rng.Intn(40))
		}
		if m.Outstanding() != len(ref.lines) {
			t.Fatalf("iter %d: outstanding = %d, want %d", iter, m.Outstanding(), len(ref.lines))
		}
	}
}

// TestMSHRAllocationFree pins the no-allocation property of the flat file:
// steady-state traffic (allocate, merge, lookup, expire) must not touch the
// heap.
func TestMSHRAllocationFree(t *testing.T) {
	m := NewMSHRFile(16)
	if n := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 16; i++ {
			m.Allocate(i, int64(100+i))
		}
		m.Allocate(3, 200) // merge
		m.Lookup(50, 5)
		m.Full(50)
		m.Expire(300)
	}); n != 0 {
		t.Fatalf("MSHR operations allocated %.1f times per run, want 0", n)
	}
}

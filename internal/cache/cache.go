// Package cache implements the set-associative caches used by the GPU
// timing simulator: per-SM private L1 data caches and the shared,
// address-interleaved last-level cache (LLC) slices. It also provides the
// MSHR (miss-status holding register) file used to merge concurrent misses
// to the same line.
package cache

import (
	"fmt"

	"gpuscale/internal/obs"
)

// Cache is a set-associative, LRU-replacement cache operating at cache-line
// granularity. It is a functional hit/miss model: timing is handled by the
// simulator that drives it. The zero value is not usable; use New.
type Cache struct {
	ways     int
	sets     int
	lineBits uint
	setMask  uint64
	// tags[set*ways+i] holds the line tag in recency order: index 0 is
	// MRU, index ways-1 is LRU. Empty ways hold invalidTag, which no real
	// line can equal (line addresses are byte addresses shifted right by
	// the offset bits), so residency is a single tag compare and the scan
	// is one sequential pass over the set's tag words.
	tags []uint64

	hits   uint64
	misses uint64
}

// invalidTag marks an unoccupied way. Line addresses lose their offset bits
// to the right shift, so the all-ones pattern cannot collide with a line.
const invalidTag = ^uint64(0)

// New constructs a cache with the given total capacity in bytes, the number
// of ways, and the line size (a power of two). Capacity is rounded down to
// a whole number of sets; a cache always has at least one set.
func New(capacityBytes int64, ways, lineSize int) (*Cache, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d", capacityBytes)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("cache: ways must be positive, got %d", ways)
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size must be a positive power of two, got %d", lineSize)
	}
	lines := capacityBytes / int64(lineSize)
	if lines < int64(ways) {
		ways = int(lines)
		if ways == 0 {
			return nil, fmt.Errorf("cache: capacity %d smaller than one line", capacityBytes)
		}
	}
	sets := int(lines) / ways
	// Round sets down to a power of two so the index is a mask.
	for sets&(sets-1) != 0 {
		sets &^= sets & -sets
	}
	if sets == 0 {
		sets = 1
	}
	lb := uint(0)
	for 1<<lb != lineSize {
		lb++
	}
	tags := make([]uint64, sets*ways)
	for i := range tags {
		tags[i] = invalidTag
	}
	return &Cache{
		ways:     ways,
		sets:     sets,
		lineBits: lb,
		setMask:  uint64(sets - 1),
		tags:     tags,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(capacityBytes int64, ways, lineSize int) *Cache {
	c, err := New(capacityBytes, ways, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// LineAddr returns the line-granular address (byte address with the offset
// bits stripped) for addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// findWay scans one set for the line (the full line address doubles as the
// tag) and returns the way holding it, or -1 on a miss. base is the set's
// first index into tags. Shared by Access and Probe so the two can never
// disagree on residency.
func (c *Cache) findWay(base int, line uint64) int {
	for i, t := range c.tags[base : base+c.ways] {
		if t == line {
			return i
		}
	}
	return -1
}

// Access looks up addr, updates LRU state and statistics, and on a miss
// installs the line (allocate-on-miss for both loads and stores). It returns
// true on a hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	base := int(line&c.setMask) * c.ways
	if i := c.findWay(base, line); i >= 0 {
		// Hit: move to MRU position.
		copy(c.tags[base+1:base+i+1], c.tags[base:base+i])
		c.tags[base] = line
		c.hits++
		return true
	}
	// Miss: evict LRU (last way), install at MRU.
	copy(c.tags[base+1:base+c.ways], c.tags[base:base+c.ways-1])
	c.tags[base] = line
	c.misses++
	return false
}

// Probe reports whether addr is resident without updating LRU state or
// statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineBits
	base := int(line&c.setMask) * c.ways
	return c.findWay(base, line) >= 0
}

// Hits returns the number of hits recorded by Access.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses recorded by Access.
func (c *Cache) Misses() uint64 { return c.misses }

// Accesses returns hits + misses.
func (c *Cache) Accesses() uint64 { return c.hits + c.misses }

// MissRate returns misses / accesses, or 0 if the cache was never accessed.
func (c *Cache) MissRate() float64 {
	a := c.Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.misses) / float64(a)
}

// Sets returns the number of sets (after power-of-two rounding).
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityLines returns sets × ways.
func (c *Cache) CapacityLines() int { return c.sets * c.ways }

// ResetStats clears hit/miss counters without touching cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// PublishObs stores the cache's hit/miss totals into the given metrics
// scope. Idempotent (Store semantics); no-op on a nil scope.
func (c *Cache) PublishObs(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("hits").Store(c.hits)
	sc.Counter("misses").Store(c.misses)
	sc.Gauge("miss_rate").Set(c.MissRate())
}

// Package cache implements the set-associative caches used by the GPU
// timing simulator: per-SM private L1 data caches and the shared,
// address-interleaved last-level cache (LLC) slices. It also provides the
// MSHR (miss-status holding register) file used to merge concurrent misses
// to the same line.
package cache

import (
	"fmt"

	"gpuscale/internal/obs"
)

// Cache is a set-associative, LRU-replacement cache operating at cache-line
// granularity. It is a functional hit/miss model: timing is handled by the
// simulator that drives it. The zero value is not usable; use New.
type Cache struct {
	ways     int
	sets     int
	lineBits uint
	setMask  uint64
	// tags[set*ways+w] holds the line tag resident in way w. Way positions
	// are fixed; recency lives in the intrusive list below. Empty ways hold
	// invalidTag, which no real line can equal (line addresses are byte
	// addresses shifted right by the offset bits), so residency is a single
	// tag compare and the scan is one sequential pass over the set's words.
	tags []uint64
	// Intrusive per-set recency order: prev/next (indexed set*ways+way,
	// holding way indices within the set) form a circular doubly-linked
	// list; head[set] is the MRU way and prev[head] therefore the LRU
	// victim. A hit unlinks its way and relinks it at the head, a miss
	// overwrites the tail and rotates the head onto it — both O(1),
	// replacing the old copy-shift of the set's recency-ordered tags that
	// led the simulator's CPU profile.
	prev, next []uint16
	head       []uint16

	// Sectored mode (the uarch.L1Sectored variant): sectorValid[set*ways+w]
	// is a bitmask of the valid sectors in way w, and a tag hit whose
	// sector bit is clear is a sector miss that fills only that sector. Nil
	// in line-grain caches, whose Access path is untouched.
	sectorValid []uint64
	sectorShift uint
	sectorMask  uint64 // sectorsPerLine - 1

	hits   uint64
	misses uint64
}

// invalidTag marks an unoccupied way. Line addresses lose their offset bits
// to the right shift, so the all-ones pattern cannot collide with a line.
const invalidTag = ^uint64(0)

// New constructs a cache with the given total capacity in bytes, the number
// of ways, and the line size (a power of two). Capacity is rounded down to
// a whole number of sets; a cache always has at least one set.
func New(capacityBytes int64, ways, lineSize int) (*Cache, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d", capacityBytes)
	}
	if ways <= 0 {
		return nil, fmt.Errorf("cache: ways must be positive, got %d", ways)
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("cache: line size must be a positive power of two, got %d", lineSize)
	}
	lines := capacityBytes / int64(lineSize)
	if lines < int64(ways) {
		ways = int(lines)
		if ways == 0 {
			return nil, fmt.Errorf("cache: capacity %d smaller than one line", capacityBytes)
		}
	}
	sets := int(lines) / ways
	// Round sets down to a power of two so the index is a mask.
	for sets&(sets-1) != 0 {
		sets &^= sets & -sets
	}
	if sets == 0 {
		sets = 1
	}
	if ways > 1<<16-1 {
		return nil, fmt.Errorf("cache: associativity %d exceeds the intrusive-LRU link width (max %d)", ways, 1<<16-1)
	}
	lb := uint(0)
	for 1<<lb != lineSize {
		lb++
	}
	tags := make([]uint64, sets*ways)
	for i := range tags {
		tags[i] = invalidTag
	}
	c := &Cache{
		ways:     ways,
		sets:     sets,
		lineBits: lb,
		setMask:  uint64(sets - 1),
		tags:     tags,
		prev:     make([]uint16, sets*ways),
		next:     make([]uint16, sets*ways),
		head:     make([]uint16, sets),
	}
	// Each set starts as the circular list 0 → 1 → … → ways-1 with way 0 at
	// the head, so the first victim is way ways-1 and empty ways fill
	// back-to-front — the same fill order the recency-array layout had.
	for s := 0; s < sets; s++ {
		base := s * ways
		for w := 0; w < ways; w++ {
			c.next[base+w] = uint16((w + 1) % ways)
			c.prev[base+w] = uint16((w + ways - 1) % ways)
		}
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(capacityBytes int64, ways, lineSize int) *Cache {
	c, err := New(capacityBytes, ways, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// NewSectored constructs a sectored cache: lines are tagged at lineSize
// granularity but filled sectorSize bytes at a time, so a tag hit on an
// invalid sector counts as a (sector) miss that fetches only that sector.
// sectorSize must be a power of two no larger than lineSize with at most 64
// sectors per line; sectorSize == lineSize degenerates to the line-grain
// cache.
func NewSectored(capacityBytes int64, ways, lineSize, sectorSize int) (*Cache, error) {
	c, err := New(capacityBytes, ways, lineSize)
	if err != nil {
		return nil, err
	}
	if sectorSize <= 0 || sectorSize&(sectorSize-1) != 0 {
		return nil, fmt.Errorf("cache: sector size must be a positive power of two, got %d", sectorSize)
	}
	if sectorSize > lineSize {
		return nil, fmt.Errorf("cache: sector size %d exceeds line size %d", sectorSize, lineSize)
	}
	nSectors := lineSize / sectorSize
	if nSectors > 64 {
		return nil, fmt.Errorf("cache: %d sectors per line exceed the 64-bit valid mask", nSectors)
	}
	if nSectors == 1 {
		return c, nil // one sector per line is exactly the line-grain cache
	}
	sb := uint(0)
	for 1<<sb != sectorSize {
		sb++
	}
	c.sectorValid = make([]uint64, c.sets*c.ways)
	c.sectorShift = sb
	c.sectorMask = uint64(nSectors - 1)
	return c, nil
}

// MustNewSectored is NewSectored but panics on error.
func MustNewSectored(capacityBytes int64, ways, lineSize, sectorSize int) *Cache {
	c, err := NewSectored(capacityBytes, ways, lineSize, sectorSize)
	if err != nil {
		panic(err)
	}
	return c
}

// LineAddr returns the line-granular address (byte address with the offset
// bits stripped) for addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// findWay scans one set for the line (the full line address doubles as the
// tag) and returns the way holding it, or -1 on a miss. base is the set's
// first index into tags. Shared by Access and Probe so the two can never
// disagree on residency.
func (c *Cache) findWay(base int, line uint64) int {
	for i, t := range c.tags[base : base+c.ways] {
		if t == line {
			return i
		}
	}
	return -1
}

// touch relinks a hit way to the head of its set's recency list. The tail
// is re-read after the unlink — when the hit way *is* the tail, unlinking
// moves the tail pointer.
func (c *Cache) touch(set, base, w, h int) {
	if w == h {
		return
	}
	p, n := c.prev[base+w], c.next[base+w]
	c.next[base+int(p)] = n
	c.prev[base+int(n)] = p
	t := c.prev[base+h]
	c.next[base+int(t)] = uint16(w)
	c.prev[base+w] = t
	c.next[base+w] = uint16(h)
	c.prev[base+h] = uint16(w)
	c.head[set] = uint16(w)
}

// Access looks up addr, updates LRU state and statistics, and on a miss
// installs the line (allocate-on-miss for both loads and stores). It returns
// true on a hit. In sectored mode a tag hit still requires the accessed
// sector's valid bit; a clear bit is a sector miss that fills just that
// sector.
func (c *Cache) Access(addr uint64) bool {
	if c.sectorValid != nil {
		return c.accessSectored(addr)
	}
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.ways
	h := int(c.head[set])
	if w := c.findWay(base, line); w >= 0 {
		c.hits++
		c.touch(set, base, w, h)
		return true
	}
	// Miss: overwrite the LRU tail in place and rotate the head onto it —
	// the list order itself is already correct.
	victim := int(c.prev[base+h])
	c.tags[base+victim] = line
	c.head[set] = uint16(victim)
	c.misses++
	return false
}

func (c *Cache) accessSectored(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.ways
	h := int(c.head[set])
	bit := uint64(1) << ((addr >> c.sectorShift) & c.sectorMask)
	if w := c.findWay(base, line); w >= 0 {
		// The line is referenced either way, so recency updates on sector
		// misses too.
		c.touch(set, base, w, h)
		if c.sectorValid[base+w]&bit != 0 {
			c.hits++
			return true
		}
		c.sectorValid[base+w] |= bit
		c.misses++
		return false
	}
	victim := int(c.prev[base+h])
	c.tags[base+victim] = line
	c.sectorValid[base+victim] = bit // a fresh line starts with only this sector
	c.head[set] = uint16(victim)
	c.misses++
	return false
}

// Probe reports whether addr is resident without updating LRU state or
// statistics; in sectored mode the accessed sector must be valid too.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineBits
	base := int(line&c.setMask) * c.ways
	w := c.findWay(base, line)
	if w < 0 {
		return false
	}
	if c.sectorValid != nil {
		bit := uint64(1) << ((addr >> c.sectorShift) & c.sectorMask)
		return c.sectorValid[base+w]&bit != 0
	}
	return true
}

// Sectored reports whether the cache fills at sector rather than line
// granularity.
func (c *Cache) Sectored() bool { return c.sectorValid != nil }

// Hits returns the number of hits recorded by Access.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses recorded by Access.
func (c *Cache) Misses() uint64 { return c.misses }

// Accesses returns hits + misses.
func (c *Cache) Accesses() uint64 { return c.hits + c.misses }

// MissRate returns misses / accesses, or 0 if the cache was never accessed.
func (c *Cache) MissRate() float64 {
	a := c.Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.misses) / float64(a)
}

// Sets returns the number of sets (after power-of-two rounding).
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityLines returns sets × ways.
func (c *Cache) CapacityLines() int { return c.sets * c.ways }

// ResetStats clears hit/miss counters without touching cache contents.
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }

// PublishObs stores the cache's hit/miss totals into the given metrics
// scope. Idempotent (Store semantics); no-op on a nil scope.
func (c *Cache) PublishObs(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.Counter("hits").Store(c.hits)
	sc.Counter("misses").Store(c.misses)
	sc.Gauge("miss_rate").Set(c.MissRate())
}

package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 128); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(1024, 0, 128); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New(1024, 4, 100); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := New(64, 4, 128); err == nil {
		t.Error("capacity < one line accepted")
	}
}

func TestNewClampsWaysToCapacity(t *testing.T) {
	// 2 lines of capacity but 8 ways requested: ways clamp to 2.
	c := MustNew(256, 8, 128)
	if c.Ways() != 2 || c.Sets() != 1 {
		t.Errorf("ways=%d sets=%d, want 2/1", c.Ways(), c.Sets())
	}
}

func TestSetsRoundedToPowerOfTwo(t *testing.T) {
	// 48 KiB, 6-way, 128 B lines -> 384 lines -> 64 sets (power of two).
	c := MustNew(48*1024, 6, 128)
	if c.Sets() != 64 {
		t.Errorf("sets = %d, want 64", c.Sets())
	}
	if c.CapacityLines() != 384 {
		t.Errorf("capacity lines = %d, want 384", c.CapacityLines())
	}
}

func TestAccessHitMiss(t *testing.T) {
	c := MustNew(1024, 4, 128) // 8 lines, 2 sets
	if c.Access(0) {
		t.Error("first access should miss")
	}
	if !c.Access(0) {
		t.Error("second access should hit")
	}
	if !c.Access(64) { // same line as 0 (offset within 128B line)
		t.Error("same-line access should hit")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// 4 lines, 4 ways, 1 set: fill, then access one more to evict LRU.
	c := MustNew(512, 4, 128)
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 128)
	}
	c.Access(0)       // make line 0 MRU
	c.Access(4 * 128) // evicts line 1 (LRU)
	if !c.Probe(0) {
		t.Error("line 0 should survive (MRU)")
	}
	if c.Probe(128) {
		t.Error("line 1 should be evicted (LRU)")
	}
	if !c.Probe(4 * 128) {
		t.Error("new line should be resident")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := MustNew(512, 4, 128)
	c.Access(0)
	h, m := c.Hits(), c.Misses()
	c.Probe(0)
	c.Probe(999999)
	if c.Hits() != h || c.Misses() != m {
		t.Error("Probe changed statistics")
	}
}

func TestMissRate(t *testing.T) {
	c := MustNew(512, 4, 128)
	if c.MissRate() != 0 {
		t.Error("empty cache should report 0 miss rate")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(512, 4, 128)
	c.Access(0)
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if !c.Access(0) {
		t.Error("ResetStats should not evict contents")
	}
}

func TestWorkingSetFitsProperty(t *testing.T) {
	// Property: cyclically accessing a working set that fits entirely in a
	// fully-associative cache yields only cold misses.
	f := func(rawLines uint8) bool {
		lines := int(rawLines)%16 + 1
		c := MustNew(int64(32*128), 32, 128) // 32-line fully-assoc (1 set)
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < lines; i++ {
				c.Access(uint64(i) * 128)
			}
		}
		return c.Misses() == uint64(lines)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamingNeverHits(t *testing.T) {
	c := MustNew(4096, 4, 128)
	for i := uint64(0); i < 1000; i++ {
		if c.Access(i * 128) {
			t.Fatalf("streaming access %d hit", i)
		}
	}
	if c.Misses() != 1000 {
		t.Errorf("misses = %d, want 1000", c.Misses())
	}
}

// shiftLRU is the pre-intrusive-list reference implementation: tags kept in
// recency order per set (index 0 = MRU), hit and miss both copy-shifting the
// set. Retained verbatim so the linked-list Access can be cross-checked
// against the exact semantics it replaced.
type shiftLRU struct {
	ways    int
	setMask uint64
	tags    []uint64
}

func newShiftLRU(sets, ways int) *shiftLRU {
	r := &shiftLRU{ways: ways, setMask: uint64(sets - 1), tags: make([]uint64, sets*ways)}
	for i := range r.tags {
		r.tags[i] = invalidTag
	}
	return r
}

func (r *shiftLRU) access(line uint64) bool {
	base := int(line&r.setMask) * r.ways
	for i, t := range r.tags[base : base+r.ways] {
		if t == line {
			copy(r.tags[base+1:base+i+1], r.tags[base:base+i])
			r.tags[base] = line
			return true
		}
	}
	copy(r.tags[base+1:base+r.ways], r.tags[base:base+r.ways-1])
	r.tags[base] = line
	return false
}

// TestAccessMatchesShiftReference drives the intrusive-list cache and the
// old copy-shift implementation with identical randomized access streams —
// skewed so sets see hits, evictions, tail-hits and refills — and demands
// identical hit/miss verdicts and identical residency at every step.
func TestAccessMatchesShiftReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0xcac4e))
	for _, geom := range []struct{ sets, ways int }{
		{1, 1}, {1, 4}, {4, 2}, {2, 8}, {8, 16}, {1, 32},
	} {
		lineSize := 128
		c := MustNew(int64(geom.sets*geom.ways*lineSize), geom.ways, lineSize)
		if c.Sets() != geom.sets || c.Ways() != geom.ways {
			t.Fatalf("geometry %v built as %d sets × %d ways", geom, c.Sets(), c.Ways())
		}
		ref := newShiftLRU(geom.sets, geom.ways)
		// Footprint ~2× capacity keeps both hits and evictions frequent.
		footprint := uint64(2*geom.sets*geom.ways + 1)
		for step := 0; step < 20000; step++ {
			line := rng.Uint64() % footprint
			addr := line * uint64(lineSize)
			if got, want := c.Access(addr), ref.access(line); got != want {
				t.Fatalf("geometry %v step %d line %d: cache %v, reference %v",
					geom, step, line, got, want)
			}
			if step%256 == 0 {
				for probe := uint64(0); probe < footprint; probe++ {
					refHit := false
					base := int(probe&ref.setMask) * ref.ways
					for _, tag := range ref.tags[base : base+ref.ways] {
						if tag == probe {
							refHit = true
							break
						}
					}
					if c.Probe(probe*uint64(lineSize)) != refHit {
						t.Fatalf("geometry %v step %d: residency of line %d diverged", geom, step, probe)
					}
				}
			}
		}
	}
}

func TestNewRejectsOversizedAssociativity(t *testing.T) {
	// 1<<16 ways would overflow the uint16 recency links.
	if _, err := New(int64(1<<16)*128, 1<<16, 128); err == nil {
		t.Error("associativity beyond uint16 link width accepted")
	}
}

func TestLineAddr(t *testing.T) {
	c := MustNew(4096, 4, 128)
	if c.LineAddr(0) != 0 || c.LineAddr(127) != 0 || c.LineAddr(128) != 1 {
		t.Error("LineAddr mapping wrong")
	}
}

func TestMSHRAllocateAndMerge(t *testing.T) {
	m := NewMSHRFile(2)
	if !m.Allocate(10, 100) {
		t.Fatal("first allocate failed")
	}
	if !m.Allocate(10, 90) {
		t.Fatal("merge failed")
	}
	if c, ok := m.Lookup(0, 10); !ok || c != 100 {
		t.Errorf("merged completion = %d,%v, want 100,true", c, ok)
	}
	if !m.Allocate(10, 150) {
		t.Fatal("merge failed")
	}
	if c, _ := m.Lookup(0, 10); c != 150 {
		t.Errorf("later merge should extend completion, got %d", c)
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1", m.Outstanding())
	}
}

func TestMSHRFull(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(1, 10)
	m.Allocate(2, 10)
	if !m.Full(0) {
		t.Error("file should be full")
	}
	if m.Allocate(3, 10) {
		t.Error("allocate beyond capacity succeeded")
	}
	if m.Allocate(1, 20) != true {
		t.Error("merge into full file should succeed")
	}
}

func TestMSHRExpire(t *testing.T) {
	m := NewMSHRFile(4)
	m.Allocate(1, 10)
	m.Allocate(2, 20)
	m.Allocate(3, 30)
	if n := m.Expire(20); n != 2 {
		t.Errorf("expired %d, want 2", n)
	}
	if m.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1", m.Outstanding())
	}
	if _, ok := m.Lookup(20, 3); !ok {
		t.Error("entry 3 should survive")
	}
}

func TestMSHRNextCompletion(t *testing.T) {
	m := NewMSHRFile(4)
	if _, ok := m.NextCompletion(); ok {
		t.Error("empty file reported a completion")
	}
	m.Allocate(1, 30)
	m.Allocate(2, 10)
	if c, ok := m.NextCompletion(); !ok || c != 10 {
		t.Errorf("next completion = %d,%v, want 10,true", c, ok)
	}
}

func TestMSHRZeroCapacityClamped(t *testing.T) {
	m := NewMSHRFile(0)
	if m.Capacity() != 1 {
		t.Errorf("capacity = %d, want 1", m.Capacity())
	}
}

func TestSectoredValidation(t *testing.T) {
	if _, err := NewSectored(1024, 2, 128, 33); err == nil {
		t.Error("non-power-of-two sector accepted")
	}
	if _, err := NewSectored(1024, 2, 128, 256); err == nil {
		t.Error("sector larger than line accepted")
	}
	if _, err := NewSectored(1<<20, 2, 1<<13, 32); err == nil {
		t.Error(">64 sectors per line accepted")
	}
	c, err := NewSectored(1024, 2, 128, 128)
	if err != nil {
		t.Fatalf("sector == line rejected: %v", err)
	}
	if c.Sectored() {
		t.Error("one-sector cache reports sectored mode")
	}
}

func TestSectoredTagHitSectorMiss(t *testing.T) {
	// 128-byte lines, 32-byte sectors: the four quarters of a line miss
	// independently, then all hit.
	c := MustNewSectored(1024, 2, 128, 32)
	if !c.Sectored() {
		t.Fatal("not in sectored mode")
	}
	for i := uint64(0); i < 4; i++ {
		if c.Access(i * 32) {
			t.Errorf("sector %d hit before any fill", i)
		}
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Access(i * 32) {
			t.Errorf("sector %d missed after its fill", i)
		}
	}
	if c.Hits() != 4 || c.Misses() != 4 {
		t.Errorf("hits/misses = %d/%d, want 4/4", c.Hits(), c.Misses())
	}
}

func TestSectoredVictimResetsMask(t *testing.T) {
	// Direct-mapped single-set cache: evicting a line must invalidate its
	// sectors, so a re-fetch misses per sector again.
	c := MustNewSectored(128, 1, 128, 32)
	c.Access(0)       // fill line 0 sector 0
	c.Access(32)      // sector 1
	c.Access(1 << 20) // evict line 0, install the new line's sector 0
	if !c.Access(1 << 20) {
		t.Error("the replacement's freshly filled sector missed")
	}
	if c.Access(1<<20 + 32) {
		t.Error("unfilled sector of the fresh line hit")
	}
	if c.Access(32) {
		t.Error("sector survived its line's eviction")
	}
}

func TestSectoredProbe(t *testing.T) {
	c := MustNewSectored(1024, 2, 128, 32)
	c.Access(64) // fills only sector 2 of line 0
	if !c.Probe(64) {
		t.Error("filled sector not resident")
	}
	if c.Probe(0) {
		t.Error("unfilled sector of a resident line probes true")
	}
}

func TestSectoredMatchesLineOnSequentialFill(t *testing.T) {
	// Line-stride accesses touch one sector per line, so sectored and
	// line-grain caches agree on every outcome.
	sec := MustNewSectored(4096, 4, 128, 32)
	lin := MustNew(4096, 4, 128)
	for round := 0; round < 3; round++ {
		for a := uint64(0); a < 64*128; a += 128 {
			if got, want := sec.Access(a), lin.Access(a); got != want {
				t.Fatalf("round %d addr %d: sectored %v, line %v", round, a, got, want)
			}
		}
	}
	if sec.Hits() != lin.Hits() || sec.Misses() != lin.Misses() {
		t.Errorf("counters diverged: sectored %d/%d, line %d/%d",
			sec.Hits(), sec.Misses(), lin.Hits(), lin.Misses())
	}
}

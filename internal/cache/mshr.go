package cache

import "gpuscale/internal/obs"

// MSHRFile models a miss-status holding register file: a bounded table of
// outstanding misses keyed by line address. Concurrent misses to the same
// line merge into one entry (and one memory request); the table rejects new
// lines once Capacity entries are outstanding, which the simulator turns
// into a structural stall.
//
// Each entry remembers the completion time of the underlying memory request
// so that merged requesters wake at the same cycle the data returns.
//
// The file is a pair of flat parallel arrays sized to capacity rather than a
// map: MSHR capacities are small (tens of entries), so a linear scan beats
// hashing on every Lookup and the structure never allocates after
// NewMSHRFile. Entries whose completion time has passed are reclaimed
// lazily: Lookup and Full take the current cycle and drop expired entries
// before answering, and a cached minimum completion time makes that check
// O(1) when nothing has completed. Removal order does not matter — every
// operation (exact-match lookup, count, minimum) is order-independent, which
// is also why the old map's random iteration order produced the same
// results.
type MSHRFile struct {
	capacity int
	lines    []uint64 // line addresses of outstanding misses, in slots [0, n)
	comps    []int64  // completion cycle of each outstanding miss
	n        int
	nextComp int64 // min of comps[:n]; meaningful only when n > 0
}

// NewMSHRFile returns an MSHR file with the given entry capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHRFile{
		capacity: capacity,
		lines:    make([]uint64, capacity),
		comps:    make([]int64, capacity),
	}
}

// Lookup returns the completion cycle of a miss on line still outstanding at
// cycle now, if one exists. Entries completing at or before now are
// reclaimed first, which keeps the scan length at the number of live misses
// (bounded by the number of blocked warps) rather than the file's capacity.
func (m *MSHRFile) Lookup(now int64, line uint64) (completion int64, ok bool) {
	m.Expire(now)
	for i := 0; i < m.n; i++ {
		if m.lines[i] == line {
			return m.comps[i], true
		}
	}
	return 0, false
}

// Full reports whether a new line can no longer be allocated at cycle now.
// Entries completing at or before now are reclaimed first.
func (m *MSHRFile) Full(now int64) bool {
	if m.n < m.capacity {
		return false
	}
	m.Expire(now)
	return m.n >= m.capacity
}

// Allocate records an outstanding miss on line completing at the given
// cycle. It reports false if the file is full and the line is not already
// present. Allocating an already-present line merges: the later completion
// time wins (conservative — data cannot arrive before the slowest merge).
func (m *MSHRFile) Allocate(line uint64, completion int64) bool {
	for i := 0; i < m.n; i++ {
		if m.lines[i] == line {
			if completion > m.comps[i] {
				wasMin := m.comps[i] == m.nextComp
				m.comps[i] = completion
				// Raising a non-minimum entry cannot change the minimum.
				if wasMin {
					m.recomputeNext()
				}
			}
			return true
		}
	}
	if m.n >= m.capacity {
		return false
	}
	m.lines[m.n] = line
	m.comps[m.n] = completion
	if m.n == 0 || completion < m.nextComp {
		m.nextComp = completion
	}
	m.n++
	return true
}

// Expire releases every entry whose completion cycle is ≤ now and returns
// how many were released. The cached minimum makes the no-op case — nothing
// has completed yet — a single comparison; when a scan does run, the new
// minimum is computed in the same pass.
func (m *MSHRFile) Expire(now int64) int {
	if m.n == 0 || m.nextComp > now {
		return 0
	}
	released := 0
	min := int64(0)
	first := true
	for i := 0; i < m.n; {
		c := m.comps[i]
		if c <= now {
			m.n--
			m.lines[i] = m.lines[m.n]
			m.comps[i] = m.comps[m.n]
			released++
			continue // re-examine the entry swapped into slot i
		}
		if first || c < min {
			min = c
			first = false
		}
		i++
	}
	m.nextComp = min
	return released
}

func (m *MSHRFile) recomputeNext() {
	if m.n == 0 {
		return
	}
	best := m.comps[0]
	for i := 1; i < m.n; i++ {
		if m.comps[i] < best {
			best = m.comps[i]
		}
	}
	m.nextComp = best
}

// NextCompletion returns the earliest completion cycle among outstanding
// entries, and false if the file is empty.
func (m *MSHRFile) NextCompletion() (int64, bool) {
	if m.n == 0 {
		return 0, false
	}
	return m.nextComp, true
}

// Outstanding returns the number of occupied slots. Because reclamation is
// deferred, this may include entries whose completion time has passed; call
// Expire first for an exact live count.
func (m *MSHRFile) Outstanding() int { return m.n }

// Capacity returns the entry capacity.
func (m *MSHRFile) Capacity() int { return m.capacity }

// PublishObs stores the MSHR file's occupancy into the given metrics scope.
// No-op on a nil scope.
func (m *MSHRFile) PublishObs(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.Gauge("outstanding").Set(float64(m.n))
	sc.Gauge("occupancy").Set(float64(m.n) / float64(m.capacity))
}

package cache

import "gpuscale/internal/obs"

// MSHRFile models a miss-status holding register file: a bounded table of
// outstanding misses keyed by line address. Concurrent misses to the same
// line merge into one entry (and one memory request); the table rejects new
// lines once Capacity entries are outstanding, which the simulator turns
// into a structural stall.
//
// Each entry remembers the completion time of the underlying memory request
// so that merged requesters wake at the same cycle the data returns.
type MSHRFile struct {
	capacity int
	entries  map[uint64]int64 // line address -> completion cycle
}

// NewMSHRFile returns an MSHR file with the given entry capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHRFile{capacity: capacity, entries: make(map[uint64]int64, capacity)}
}

// Lookup returns the completion cycle of an outstanding miss on line, if one
// exists.
func (m *MSHRFile) Lookup(line uint64) (completion int64, ok bool) {
	c, ok := m.entries[line]
	return c, ok
}

// Full reports whether no new line can be allocated.
func (m *MSHRFile) Full() bool { return len(m.entries) >= m.capacity }

// Allocate records an outstanding miss on line completing at the given
// cycle. It reports false if the file is full and the line is not already
// present. Allocating an already-present line merges: the later completion
// time wins (conservative — data cannot arrive before the slowest merge).
func (m *MSHRFile) Allocate(line uint64, completion int64) bool {
	if prev, ok := m.entries[line]; ok {
		if completion > prev {
			m.entries[line] = completion
		}
		return true
	}
	if len(m.entries) >= m.capacity {
		return false
	}
	m.entries[line] = completion
	return true
}

// Expire releases every entry whose completion cycle is ≤ now and returns
// how many were released.
func (m *MSHRFile) Expire(now int64) int {
	n := 0
	for line, c := range m.entries {
		if c <= now {
			delete(m.entries, line)
			n++
		}
	}
	return n
}

// NextCompletion returns the earliest completion cycle among outstanding
// entries, and false if the file is empty.
func (m *MSHRFile) NextCompletion() (int64, bool) {
	var best int64
	found := false
	for _, c := range m.entries {
		if !found || c < best {
			best = c
			found = true
		}
	}
	return best, found
}

// Outstanding returns the number of occupied entries.
func (m *MSHRFile) Outstanding() int { return len(m.entries) }

// Capacity returns the entry capacity.
func (m *MSHRFile) Capacity() int { return m.capacity }

// PublishObs stores the MSHR file's occupancy into the given metrics scope.
// No-op on a nil scope.
func (m *MSHRFile) PublishObs(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.Gauge("outstanding").Set(float64(len(m.entries)))
	sc.Gauge("occupancy").Set(float64(len(m.entries)) / float64(m.capacity))
}

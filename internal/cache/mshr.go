package cache

import "gpuscale/internal/obs"

// MSHRFile models a miss-status holding register file: a bounded table of
// outstanding misses keyed by line address. Concurrent misses to the same
// line merge into one entry (and one memory request); the table rejects new
// lines once Capacity entries are outstanding, which the simulator turns
// into a structural stall.
//
// Each entry remembers the completion time of the underlying memory request
// so that merged requesters wake at the same cycle the data returns.
//
// The file is a set of flat parallel arrays sized to capacity rather than a
// map: MSHR capacities are small (tens to hundreds of entries), so a linear
// scan beats hashing on every Lookup and the structure never allocates
// after NewMSHRFile. Alongside the slot arrays it keeps an index min-heap
// ordered by completion time, so reclamation costs O(log n) per completed
// entry rather than a full-file scan — in a memory-saturated simulation
// some entry completes almost every cycle, which made scan-based expiry the
// single hottest function in the run-loop profile.
//
// Reclamation of completed entries is batched: the run loop calls
// Expire(now) once per SM per visited cycle (immediately before the SM's
// Tick, hence before any Access that cycle). Lookup does not reclaim; it
// simply ignores entries whose completion cycle has passed, so its answers
// are exact under any expiry schedule. Full still reclaims, but only when
// the file looks full — without it a file clogged with completed entries
// could refuse an Allocate. Between Expire calls Outstanding may overcount
// (see its doc); every timing-visible answer (Lookup, Full, Allocate, and
// NextCompletion as consumed after the pre-Tick Expire) is unchanged, which
// is how the batched contract keeps Stats bit-identical. Slot order is
// scrambled by swap-removal, but every answer (exact-match lookup, count,
// minimum) is order-independent — which is also why the old map's random
// iteration order produced the same results.
type MSHRFile struct {
	capacity int
	lines    []uint64 // line addresses of outstanding misses, in slots [0, n)
	comps    []int64  // completion cycle of each outstanding miss
	// The index heap stores completion times inline (hcomp) next to the
	// slot they belong to (hslot) instead of indirecting through
	// comps[heap[i]]: heap comparisons are the hottest loads in a
	// memory-saturated run, and the inline copy turns each one into a
	// single sequential read — the four children of a 4-ary node span 32
	// bytes of hcomp. comps stays authoritative for the slot arrays; the
	// two are updated together.
	hcomp []int64 // heap position → completion time (copy of comps[hslot])
	hslot []int32 // heap position → slot
	hpos  []int32 // slot → heap position
	n     int
}

// NewMSHRFile returns an MSHR file with the given entry capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		capacity = 1
	}
	return &MSHRFile{
		capacity: capacity,
		lines:    make([]uint64, capacity),
		comps:    make([]int64, capacity),
		hcomp:    make([]int64, capacity),
		hslot:    make([]int32, capacity),
		hpos:     make([]int32, capacity),
	}
}

// Lookup returns the completion cycle of a miss on line still outstanding at
// cycle now, if one exists. It does not reclaim: an entry whose completion
// cycle has passed is reported as absent (the data already returned, so
// there is nothing to merge into) and is left for the next batched Expire.
// Line addresses are unique in the file (Allocate merges), so at most one
// entry can match and the expired-entry check cannot mask a live one.
func (m *MSHRFile) Lookup(now int64, line uint64) (completion int64, ok bool) {
	for i := 0; i < m.n; i++ {
		if m.lines[i] == line {
			if m.comps[i] <= now {
				return 0, false // completed; awaiting batched reclamation
			}
			return m.comps[i], true
		}
	}
	return 0, false
}

// Full reports whether a new line can no longer be allocated at cycle now.
// Entries completing at or before now are reclaimed first.
func (m *MSHRFile) Full(now int64) bool {
	if m.n < m.capacity {
		return false
	}
	m.Expire(now)
	return m.n >= m.capacity
}

// Allocate records an outstanding miss on line completing at the given
// cycle. It reports false if the file is full and the line is not already
// present. Allocating an already-present line merges: the later completion
// time wins (conservative — data cannot arrive before the slowest merge).
func (m *MSHRFile) Allocate(line uint64, completion int64) bool {
	for i := 0; i < m.n; i++ {
		if m.lines[i] == line {
			if completion > m.comps[i] {
				m.comps[i] = completion
				h := int(m.hpos[i])
				m.hcomp[h] = completion
				m.siftDown(h) // key increased; may move toward leaves
			}
			return true
		}
	}
	if m.n >= m.capacity {
		return false
	}
	s := m.n
	m.lines[s] = line
	m.comps[s] = completion
	m.hcomp[s] = completion
	m.hslot[s] = int32(s)
	m.hpos[s] = int32(s)
	m.n++
	m.siftUp(s)
	return true
}

// Expire releases every entry whose completion cycle is ≤ now and returns
// how many were released. The heap root makes the no-op case — nothing has
// completed yet — a single comparison, and each release costs O(log n).
func (m *MSHRFile) Expire(now int64) int {
	released := 0
	for m.n > 0 && m.hcomp[0] <= now {
		m.removeSlot(int(m.hslot[0]))
		released++
	}
	return released
}

// removeSlot deletes occupied slot s: it detaches s from the heap, then
// compacts the slot arrays by moving the highest occupied slot into s.
func (m *MSHRFile) removeSlot(s int) {
	m.n--
	last := m.n
	// Heap removal: move the heap's last element into s's position and
	// restore the invariant in both directions (the moved element is
	// arbitrary relative to that subtree).
	h := int(m.hpos[s])
	if h != last {
		m.hcomp[h] = m.hcomp[last]
		moved := m.hslot[last]
		m.hslot[h] = moved
		m.hpos[moved] = int32(h)
		m.siftDown(h)
		m.siftUp(h)
	}
	// Slot compaction: relocate slot `last` into s and redirect its heap
	// entry. (If the heap move above relocated slot `last` its position was
	// already updated, and hpos[last] reads the fresh value.)
	if s != last {
		m.lines[s] = m.lines[last]
		m.comps[s] = m.comps[last]
		hp := m.hpos[last]
		m.hpos[s] = hp
		m.hslot[hp] = int32(s)
	}
}

// The heap is 4-ary: expiry is sift-down dominated (every release sifts a
// leaf element from the root), and the wider fan-out halves the depth and
// keeps each level's children in one or two cache lines.

func (m *MSHRFile) siftUp(h int) {
	for h > 0 {
		p := (h - 1) / 4
		if m.hcomp[p] <= m.hcomp[h] {
			return
		}
		m.swap(p, h)
		h = p
	}
}

func (m *MSHRFile) siftDown(h int) {
	for {
		c := 4*h + 1
		if c >= m.n {
			return
		}
		end := c + 4
		if end > m.n {
			end = m.n
		}
		for r := c + 1; r < end; r++ {
			if m.hcomp[r] < m.hcomp[c] {
				c = r
			}
		}
		if m.hcomp[h] <= m.hcomp[c] {
			return
		}
		m.swap(c, h)
		h = c
	}
}

func (m *MSHRFile) swap(a, b int) {
	m.hcomp[a], m.hcomp[b] = m.hcomp[b], m.hcomp[a]
	m.hslot[a], m.hslot[b] = m.hslot[b], m.hslot[a]
	m.hpos[m.hslot[a]] = int32(a)
	m.hpos[m.hslot[b]] = int32(b)
}

// NextCompletion returns the earliest completion cycle among outstanding
// entries, and false if the file is empty.
func (m *MSHRFile) NextCompletion() (int64, bool) {
	if m.n == 0 {
		return 0, false
	}
	return m.hcomp[0], true
}

// Outstanding returns the number of occupied slots. Because reclamation is
// deferred, this may include entries whose completion time has passed; call
// Expire first for an exact live count.
func (m *MSHRFile) Outstanding() int { return m.n }

// Capacity returns the entry capacity.
func (m *MSHRFile) Capacity() int { return m.capacity }

// PublishObs stores the MSHR file's occupancy into the given metrics scope.
// No-op on a nil scope.
func (m *MSHRFile) PublishObs(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.Gauge("outstanding").Set(float64(m.n))
	sc.Gauge("occupancy").Set(float64(m.n) / float64(m.capacity))
}

package cache

import (
	"fmt"
	"testing"
)

// BenchmarkCacheAccess measures one Access at a controlled LRU state:
// hit/mru through hit/lru pin the cost of a hit found at each recency depth
// (the way-scan plus the copy-shift to MRU), and miss-evict pins the full
// miss path with an eviction. The L1 geometry below (32 KiB, 8-way, 128 B
// lines) matches the baseline configuration's per-SM L1.
func BenchmarkCacheAccess(b *testing.B) {
	const (
		ways     = 8
		lineSize = 128
		capacity = 32 << 10
	)
	for depth := 0; depth < ways; depth++ {
		b.Run(fmt.Sprintf("hit/depth%d", depth), func(b *testing.B) {
			c := MustNew(capacity, ways, lineSize)
			// Fill one set: after these accesses, line k sits at recency
			// depth k (line 0 was touched last → MRU).
			addrs := make([]uint64, ways)
			for i := range addrs {
				addrs[i] = uint64(i) * uint64(lineSize) * uint64(c.Sets())
			}
			for i := ways - 1; i >= 0; i-- {
				c.Access(addrs[i])
			}
			target := addrs[depth]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(target)
				// Restore the probed line to its depth so every iteration
				// measures the same state: re-touch the lines above it.
				for j := depth - 1; j >= 0; j-- {
					c.Access(addrs[j])
				}
			}
		})
	}
	b.Run("miss-evict", func(b *testing.B) {
		c := MustNew(capacity, ways, lineSize)
		setStride := uint64(lineSize) * uint64(c.Sets())
		// Prime every way of set 0 so each miss below must evict.
		for i := 0; i < ways; i++ {
			c.Access(uint64(i) * setStride)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Distinct line each iteration, always mapping to set 0.
			c.Access(uint64(ways+i) * setStride)
		}
	})
}

// BenchmarkMSHR measures the flat MSHR file under the simulator's access
// pattern: allocate to capacity, merge, lookup, then expire everything.
func BenchmarkMSHR(b *testing.B) {
	const capacity = 32
	m := NewMSHRFile(capacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := int64(i) * 1000
		for l := uint64(0); l < capacity; l++ {
			m.Allocate(l, base+100+int64(l))
		}
		m.Allocate(capacity/2, base+500) // merge extends one entry
		m.Lookup(base+50, capacity/2)
		m.Full(base + 50)
		m.Expire(base + 999)
	}
}

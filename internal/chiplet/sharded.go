// Sharded execution mode: the package's chiplets are partitioned into
// contiguous groups ("shards"), each driven by its own goroutine over a
// private timing kernel, synchronised at a cycle barrier by an
// internal/parallel pool. Results are bit-identical to the sequential
// event loop — the contract, its invariants and the full determinism
// argument live in docs/PARALLELISM.md. In brief, per visited cycle:
//
//  1. Serial: CTA refills, termination, cancellation, cycle limit — the
//     same control flow runEvent runs between Steps.
//  2. Phase A (parallel, per shard): apply the previous cycle's deferred
//     memory fix-ups, then TickCycle + FinishCycle on the shard's kernel.
//     Every SM access that would touch cross-SM state (the page table,
//     package counters, the owner chiplet's link/NoC/LLC/DRAM) is recorded
//     in the shard's deferred list instead of being resolved, and the
//     issuing warp is parked at a provisional far-future wake-up.
//  3. Serial: merge issue/live/dirty flags, charge SimEvents, and stamp
//     the deferred accesses — first-touch page allocation plus package
//     counters — walking shards in ascending id, which (shards own
//     contiguous chip-major SM ranges) is exactly the ascending global SM
//     order the sequential drain produces.
//  4. Phase B (parallel, per owner shard): replay each access against its
//     owner chiplet's link/crossbar/LLC/DRAM in that same global order,
//     computing the true completion cycle. Only the owner shard touches an
//     owner chiplet's resources, so the replay is race-free and each
//     resource sees its access sequence in sequential order.
//  5. Serial: advance every kernel to the same next cycle — now+1 if
//     anything issued (a deferred access implies its SM issued, so no
//     provisional wake-up is ever consulted), else the minimum NextPending
//     across shards, exactly Step's event-skip decision.
//
// With Options.Quantum > 0 the coordinator additionally computes, each
// barrier, the earliest cycle any warp in the package could issue a memory
// instruction or retire (sm.MemEventBound per shard in phase A, plus a
// serial fold of the cycle's deferred loads' stamped completions), and lets
// the shards run barrier-free up to that bound via timing.RunWindow —
// the same quantum-relaxation protocol as the monolithic simulator's
// (internal/gpu/sharded.go), preserving bit-identity; docs/PARALLELISM.md
// carries the safety argument.
package chiplet

import (
	"context"
	"fmt"
	"math/bits"

	"gpuscale/internal/cache"
	"gpuscale/internal/parallel"
	"gpuscale/internal/sm"
	"gpuscale/internal/timing"
	"gpuscale/internal/trace"
)

// provisionalWake is the parked wake-up cycle a deferred load reports to
// its SM. It is repaired to the true completion before the next cycle's
// ticks and is never consulted by the advance decision (the deferring
// cycle always issued), so its only requirement is to sort after any real
// wake-up.
const provisionalWake = int64(1) << 62

// maxQuantum caps Options.Quantum: it sizes the per-shard visited bitmaps
// and bounds how stale a shard's clock can run ahead of the barrier. Kept
// equal to the monolithic simulator's cap so the facade documents one value.
const maxQuantum = 4096

// deferredAccess is one post-L1 memory access recorded during the parallel
// tick phase, resolved at the cycle barrier. Fields up to full are written
// by the issuing shard in phase A; owner by the serial stamp; t by the
// owner shard in phase B (each record has exactly one owner, so phase-B
// writes to distinct records never race); the fix-up fields are read back
// by the issuing shard in the next cycle's phase A.
type deferredAccess struct {
	m       *sm.SM
	f       *cache.MSHRFile
	lu      int // issuing SM, local to the issuing shard's kernel
	warp    int // issuing warp slot; -1 for stores (no wake-up to repair)
	chip    int
	line    uint64
	key     uint64 // MSHR merge key (== line unless the L1 is sectored)
	page    uint64
	arrival int64 // issue cycle, pushed past a full MSHR's next completion
	issueAt int64
	t       int64 // true completion cycle, stamped in phase B
	owner   int   // owning chiplet, stamped serially at the barrier
	load    bool
	bypass  bool
	full    bool
}

// shard is one runner: a contiguous chiplet group, its private timing
// kernel (unit ids local, 0 = firstG), arena, and the per-cycle buffers the
// barrier protocol exchanges. It implements timing.Driver over its own SMs
// and sm.ProgramRecycler for their retiring programs.
type shard struct {
	sim       *Simulator
	id        int
	firstChip int
	endChip   int
	firstG    int
	nUnits    int
	tk        *timing.Kernel
	arena     *trace.Arena

	deferred []deferredAccess  // accesses this shard's SMs issued this cycle
	incoming []*deferredAccess // accesses owned by this shard's chiplets, global order
	issued   bool
	liveDelta int
	ctaDirty  bool
	llcAcc    uint64
	llcMiss   uint64

	// Quantum state (Options.Quantum > 0): the shard's phase-A window
	// bound, its visited-cycle bitmap over the current window, and its
	// post-window advance candidate.
	bound   int64
	visited []uint64
	cand    int64
}

// buildShards partitions the package into n contiguous chiplet groups.
// Chip-major global SM ids make each shard's unit range contiguous, which
// is what lets the barrier's shard-order reduction reproduce the
// sequential kernel's ascending-global-id drain order.
func (s *Simulator) buildShards(n int) {
	nc := s.cfg.NumChiplets
	nsm := s.cfg.Chiplet.NumSMs
	base, rem := nc/n, nc%n
	s.shards = make([]*shard, n)
	s.shardOfChip = make([]*shard, nc)
	firstChip := 0
	for i := 0; i < n; i++ {
		cnt := base
		if i < rem {
			cnt++
		}
		sh := &shard{
			sim:       s,
			id:        i,
			firstChip: firstChip,
			endChip:   firstChip + cnt,
			firstG:    firstChip * nsm,
			nUnits:    cnt * nsm,
		}
		sh.tk = timing.MustNew(timing.Config{Units: sh.nUnits}, sh)
		sh.arena = trace.NewArena(sh.nUnits * s.cfg.Chiplet.WarpsPerSM)
		// An SM issues at most one instruction per cycle, so deferred never
		// outgrows nUnits and incoming never outgrows the package — neither
		// append reallocates after construction.
		sh.deferred = make([]deferredAccess, 0, sh.nUnits)
		sh.incoming = make([]*deferredAccess, 0, len(s.all))
		if s.quantum > 0 {
			sh.visited = make([]uint64, (s.quantum+63)/64)
		}
		for c := firstChip; c < sh.endChip; c++ {
			s.shardOfChip[c] = sh
		}
		for lu := 0; lu < sh.nUnits; lu++ {
			r := s.all[sh.firstG+lu]
			r.p.sh = sh
			r.m.SetRecycler(sh)
		}
		s.shards[i] = sh
		firstChip = sh.endChip
	}
}

// Release implements sm.ProgramRecycler: a shard's retiring programs return
// to the shard's own arena (retirement happens inside the parallel tick
// phase, so the package arena would race).
func (sh *shard) Release(p trace.Program) {
	if sh.sim.aw != nil {
		sh.arena.Release(p)
	}
}

// deferAccess records a post-L1 access for barrier resolution and returns
// the provisional completion. Called from port.Access, inside the issuing
// SM's Tick, so IssuingWarp identifies the warp whose wake-up the next
// cycle's fix-up pass must repair. Stores get no fix-up (the SM ignores
// their completion) but are still recorded: their bandwidth, LLC and page
// effects must replay in order.
func (sh *shard) deferAccess(p *port, line, key, page uint64, arrival, now int64, load, bypass, full bool) int64 {
	m := sh.sim.all[p.g].m
	warp := -1
	if load {
		warp = m.IssuingWarp()
	}
	sh.deferred = append(sh.deferred, deferredAccess{
		m:       m,
		f:       sh.sim.chips[p.chip].mshrs[p.smID],
		lu:      p.g - sh.firstG,
		warp:    warp,
		chip:    p.chip,
		line:    line,
		key:     key,
		page:    page,
		arrival: arrival,
		issueAt: now,
		load:    load,
		bypass:  bypass,
		full:    full,
	})
	return provisionalWake
}

// applyFixups repairs the previous cycle's deferred wake-ups from the
// completion cycles phase B stamped, then clears the records. Runs at the
// head of both parallel phases (phaseA and phaseWindow).
func (sh *shard) applyFixups() {
	for i := range sh.deferred {
		rec := &sh.deferred[i]
		if !rec.load {
			continue
		}
		// The MSHR allocation the sequential port did at issue time lands
		// here instead; nothing can have observed the file in between (the
		// owner SM's next Lookup/Full/Expire all happen inside its Tick,
		// after this pass).
		if !rec.bypass && !rec.full {
			rec.f.Allocate(rec.key, rec.t)
		}
		rdy := rec.t
		if rdy <= rec.issueAt {
			rdy = rec.issueAt + 1 // sm.Tick's next-cycle clamp on completions
		}
		rec.m.FixPendingWake(rec.warp, rdy)
		// The SM's reported wake was min over its warps with this load
		// parked at provisionalWake; the true wake is that min folded with
		// rdy. A CTA launch may already have scheduled the unit earlier —
		// never push a wake-up back.
		if w := sh.tk.WakeAt(rec.lu); w == timing.NoWake || rdy < w {
			sh.tk.Reschedule(rec.lu, rdy)
		}
	}
	sh.deferred = sh.deferred[:0]
}

// phaseA is the parallel tick phase: repair the previous cycle's deferred
// wake-ups, drain this shard's due units, and — in quantum mode — scan this
// shard's SMs for the window bound.
func (sh *shard) phaseA() {
	sh.applyFixups()
	sh.issued = sh.tk.TickCycle()
	sh.tk.FinishCycle()
	if sh.sim.quantum > 0 {
		sh.bound = sh.memBound()
	}
}

// memBound is the shard's half of the quantum bound: the earliest cycle at
// or after now+1 at which any of its SMs' warps could issue a memory
// instruction or retire. This cycle's deferred loads sit at the provisional
// far-future wake-up during this scan; the coordinator folds their stamped
// completions in serially after phase B.
func (sh *shard) memBound() int64 {
	from := sh.tk.Now() + 1
	bound := from + int64(sh.sim.quantum) // beyond the cap precision is wasted
	for lu := 0; lu < sh.nUnits; lu++ {
		if b := sh.sim.all[sh.firstG+lu].m.MemEventBound(from); b < bound {
			bound = b
			if bound <= from {
				break
			}
		}
	}
	return bound
}

// phaseWindow is the parallel quantum phase: repair the entry cycle's
// deferred wake-ups, then run this shard's kernel locally over
// [winBase, winLimit) with no barrier, recording visited cycles for the
// coordinator's event accounting.
func (sh *shard) phaseWindow() {
	sh.applyFixups()
	words := int(sh.sim.winLimit-sh.sim.winBase+63) >> 6
	vw := sh.visited[:words]
	for i := range vw {
		vw[i] = 0
	}
	sh.cand = sh.tk.RunWindow(sh.sim.winLimit, sh.sim.winBase, vw)
}

// phaseB replays this shard's incoming accesses — every deferred access
// whose first-touch owner chiplet lives here, in ascending global SM id —
// against the owner's link, crossbar, LLC slice and DRAM, stamping the
// true completion cycle. This is port.Access's post-page-lookup tail,
// executed by the owner shard instead of the issuing one.
func (sh *shard) phaseB() {
	s := sh.sim
	ch := s.cfg.Chiplet
	for _, rec := range sh.incoming {
		t := rec.arrival
		oc := s.chips[rec.owner]
		remote := rec.owner != rec.chip
		if remote {
			t = oc.link.Schedule(t, s.xferBytes) + int64(s.cfg.InterChipletLatency)
		}
		nSlices := uint64(len(oc.llc))
		slice := int(rec.line % nSlices)
		t = oc.xbar.Transfer(t, slice, s.xferBytes)
		t += int64(ch.LLCHitLatency)
		sh.llcAcc++
		sliceLocal := (rec.line / nSlices) << s.lineBits
		if !oc.llc[slice].Access(sliceLocal) {
			sh.llcMiss++
			t = oc.mem.Access(t, rec.line, s.xferBytes)
			t += int64((rec.line * 0x9e3779b9 >> 13) % 13)
		}
		t += int64(ch.NoCBaseLatency)
		if remote {
			t += int64(s.cfg.InterChipletLatency)
		}
		rec.t = t
	}
}

// stampOwners is the serial barrier reduction between the phases: walking
// shards in ascending id — i.e. deferred accesses in ascending global SM
// id, the sequential within-cycle order — it performs first-touch page
// allocation, counts the package's access/remote totals, and routes each
// record to its owner chiplet's shard for phase B.
func (s *Simulator) stampOwners() {
	for _, sh := range s.shards {
		for i := range sh.deferred {
			rec := &sh.deferred[i]
			owner, seen := s.pages[rec.page]
			if !seen {
				owner = rec.chip
				s.pages[rec.page] = owner
			}
			rec.owner = owner
			s.accesses++
			if owner != rec.chip {
				s.remote++
			}
			os := s.shardOfChip[owner]
			os.incoming = append(os.incoming, rec)
		}
	}
}

// timing.Driver over the shard's own SMs (unit ids local to the shard).

// TickUnit mirrors Simulator.TickUnit with shard-local live/dirty
// accumulation; the coordinator merges the deltas at the barrier.
func (sh *shard) TickUnit(now int64, lu int) timing.Outcome {
	r := sh.sim.all[sh.firstG+lu]
	liveBefore := r.m.LiveWarps()
	r.f.Expire(now)
	k := r.m.Tick(now, r.p)
	out := timing.Outcome{Wake: timing.NoWake, Kind: uint8(k), Issued: k == sm.Issued}
	if d := liveBefore - r.m.LiveWarps(); d > 0 {
		sh.liveDelta += d
		sh.ctaDirty = true
	}
	if r.m.HasReady() {
		out.Wake = now + 1
	} else if ev, ok := r.m.NextEvent(); ok {
		out.Wake = ev
	}
	return out
}

// AccrueStall mirrors Simulator.AccrueStall.
func (sh *shard) AccrueStall(lu int, cycles uint64) {
	m := sh.sim.all[sh.firstG+lu].m
	m.Accrue(m.StallKind(), cycles)
}

// AccrueTick mirrors Simulator.AccrueTick.
func (sh *shard) AccrueTick(lu int, kind uint8) {
	sh.sim.all[sh.firstG+lu].m.Accrue(sm.TickKind(kind), 1)
}

// CycleEnd is a no-op: SimEvents is charged once per visited cycle by the
// coordinator's serial section, matching the sequential CycleEnd exactly.
func (sh *shard) CycleEnd(now int64) {}

// runSharded is the sharded run loop: runEvent's control flow with Step
// replaced by the barrier protocol described at the top of this file.
func (s *Simulator) runSharded(ctx context.Context) (Stats, error) {
	pool := parallel.NewPoolLabeled(len(s.shards), "mcm")
	defer pool.Close()
	phaseA := func(i int) { s.shards[i].phaseA() }
	phaseB := func(i int) { s.shards[i].phaseB() }
	phaseW := func(i int) { s.shards[i].phaseWindow() }
	iters := 0
	for {
		iters++
		if iters >= ctxCheckEvery {
			iters = 0
			select {
			case <-ctx.Done():
				return Stats{}, fmt.Errorf("chiplet: %q on %s cancelled at cycle %d: %w",
					s.workload.Name(), s.cfg.Name, s.now, ctx.Err())
			default:
			}
		}
		if s.ctaDirty {
			s.fillCTAs()
		}
		if s.liveTotal == 0 {
			if s.nextCTA >= s.numCTAs {
				break
			}
			s.ctaDirty = true // mirror the dense loop's unconditional refill
		}
		if s.maxCyc > 0 && s.now > s.maxCyc {
			return Stats{}, fmt.Errorf("chiplet: %q on %s exceeded MaxCycles=%d",
				s.workload.Name(), s.cfg.Name, s.maxCyc)
		}
		pool.Run(phaseA)
		issued := false
		nDeferred := 0
		for _, sh := range s.shards {
			issued = issued || sh.issued
			s.liveTotal -= sh.liveDelta
			sh.liveDelta = 0
			if sh.ctaDirty {
				s.ctaDirty = true
				sh.ctaDirty = false
			}
			nDeferred += len(sh.deferred)
		}
		s.events += uint64(len(s.all))
		winBound := int64(1) << 62
		if nDeferred > 0 {
			s.stampOwners()
			pool.Run(phaseB)
			for _, sh := range s.shards {
				s.llcAcc += sh.llcAcc
				s.llcMiss += sh.llcMiss
				sh.llcAcc, sh.llcMiss = 0, 0
				sh.incoming = sh.incoming[:0]
			}
			if s.quantum > 0 {
				// The phase-A bound scan saw this cycle's deferred loads at
				// the provisional wake-up; fold their stamped completions in
				// (the records survive until the next parallel phase's
				// applyFixups).
				for _, sh := range s.shards {
					for i := range sh.deferred {
						rec := &sh.deferred[i]
						if !rec.load {
							continue
						}
						rdy := rec.t
						if rdy <= rec.issueAt {
							rdy = rec.issueAt + 1
						}
						if b := rec.m.WarpMemEventBound(rec.warp, rdy); b < winBound {
							winBound = b
						}
					}
				}
			}
		}
		next := s.now + 1
		if !issued {
			// Event-skip: the earliest pending wake-up across all shards,
			// exactly Step's decision over one global kernel. No
			// provisional wake can be consulted here — a deferring cycle
			// always issued.
			next = timing.NoWake
			for _, sh := range s.shards {
				if p := sh.tk.NextPending(); p != timing.NoWake && (next == timing.NoWake || p < next) {
					next = p
				}
			}
			if next < s.now+1 {
				next = s.now + 1
			}
		}
		if s.quantum > 0 && !s.ctaDirty && s.liveTotal > 0 {
			w := winBound
			for _, sh := range s.shards {
				if sh.bound < w {
					w = sh.bound
				}
			}
			if qcap := next + int64(s.quantum); w > qcap {
				w = qcap
			}
			if s.maxCyc > 0 && w > s.maxCyc+1 {
				w = s.maxCyc + 1 // post-window check aborts exactly as sequential
			}
			if s.stream != nil && w > s.nextSample {
				w = s.nextSample // samples land on the same cycles as sequential
			}
			if w > next+1 {
				s.runWindow(pool, phaseW, next, w)
				continue
			}
		}
		for _, sh := range s.shards {
			sh.tk.AdvanceTo(next)
		}
		s.now = next
		if s.stream != nil && s.now >= s.nextSample {
			s.sampleObs()
			for s.nextSample <= s.now {
				s.nextSample += s.sampleEvery
			}
		}
	}
	return s.stats(), nil
}

// runWindow executes one quantum window [base, limit): every shard advances
// to base, runs its kernel locally with no barrier until its own next cycle
// would reach limit, and the coordinator reconciles at the window barrier —
// OR-ing the visited bitmaps for the global SimEvents charge and advancing
// every kernel to the minimum candidate, which equals the sequential
// advance decision at the last globally-visited cycle. See
// internal/gpu/sharded.go for the identical protocol and its invariants.
func (s *Simulator) runWindow(pool *parallel.Pool, phaseW func(int), base, limit int64) {
	s.winBase, s.winLimit = base, limit
	for _, sh := range s.shards {
		sh.tk.AdvanceTo(base)
	}
	pool.Run(phaseW)
	g := timing.NoWake
	for _, sh := range s.shards {
		// Tripwires: the bound proved no memory instruction or retirement
		// could occur before limit; any deferred access or residency change
		// inside the window is a bound bug, detected here before it can
		// affect shared state (deferred accesses are recorded, not applied).
		if len(sh.deferred) != 0 || sh.liveDelta != 0 || sh.ctaDirty {
			panic(fmt.Sprintf("chiplet: quantum window [%d,%d) violated by shard %d (deferred=%d live=%d dirty=%v)",
				base, limit, sh.id, len(sh.deferred), sh.liveDelta, sh.ctaDirty))
		}
		if sh.cand != timing.NoWake && (g == timing.NoWake || sh.cand < g) {
			g = sh.cand
		}
	}
	words := int(limit-base+63) >> 6
	vis := int64(0)
	for wi := 0; wi < words; wi++ {
		u := uint64(0)
		for _, sh := range s.shards {
			u |= sh.visited[wi]
		}
		vis += int64(bits.OnesCount64(u))
	}
	s.events += uint64(len(s.all)) * uint64(vis)
	if g == timing.NoWake || g < limit {
		g = limit // unreachable with live warps; keeps the clock monotonic
	}
	for _, sh := range s.shards {
		sh.tk.AdvanceTo(g)
	}
	s.now = g
	if s.stream != nil && s.now >= s.nextSample {
		s.sampleObs()
		for s.nextSample <= s.now {
			s.nextSample += s.sampleEvery
		}
	}
}

package chiplet

import (
	"testing"

	"gpuscale/internal/uarch"
)

// chipletUarchVariants are the non-default microarchitecture cells the MCM
// equivalence guards run: each axis alone plus everything at once.
var chipletUarchVariants = []struct {
	name string
	v    uarch.Variant
}{
	{"two-level", uarch.Variant{Scheduler: uarch.SchedTwoLevel}},
	{"sectored", uarch.Variant{L1: uarch.L1Sectored}},
	{"deflect", uarch.Variant{NoC: uarch.RouteDeflect}},
	{"all", uarch.Variant{Scheduler: uarch.SchedTwoLevel, L1: uarch.L1Sectored, NoC: uarch.RouteDeflect, IssueWidth: 2}},
}

// TestEventLoopMatchesLegacyUarch extends the MCM bit-identity contract to
// every microarchitecture variant: event-driven and dense reference loops
// must agree bit for bit under each.
func TestEventLoopMatchesLegacyUarch(t *testing.T) {
	for _, uc := range chipletUarchVariants {
		t.Run(uc.name, func(t *testing.T) {
			cfg := smallMCM(2, 4)
			cfg.Chiplet.Uarch = uc.v
			run := func(opt Options) Stats {
				t.Helper()
				s, err := New(cfg, streamWorkload(32, 2, 30), opt)
				if err != nil {
					t.Fatal(err)
				}
				st, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			ev := run(Options{})
			lg := run(Options{UseLegacyLoop: true})
			if ev != lg {
				t.Errorf("stats diverge between loops\nevent  %+v\nlegacy %+v", ev, lg)
			}
		})
	}
}

// TestShardedMatchesSequentialUarch extends the sharded determinism contract
// to every variant: per-chiplet shard parallelism (with and without quantum
// windows) must reproduce the sequential run's Stats bit for bit.
func TestShardedMatchesSequentialUarch(t *testing.T) {
	for _, uc := range chipletUarchVariants {
		t.Run(uc.name, func(t *testing.T) {
			cfg := smallMCM(4, 4)
			cfg.Chiplet.Uarch = uc.v
			run := func(opt Options) Stats {
				t.Helper()
				s, err := New(cfg, streamWorkload(48, 2, 30), opt)
				if err != nil {
					t.Fatal(err)
				}
				st, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			seq := run(Options{})
			for _, shards := range []int{2, 4} {
				for _, quantum := range []int{0, 64} {
					got := run(Options{Shards: shards, Quantum: quantum})
					if got != seq {
						t.Errorf("shards=%d quantum=%d diverges\nsharded    %+v\nsequential %+v", shards, quantum, got, seq)
					}
				}
			}
		})
	}
}

// TestChipletOptionsUarch pins the Options.Uarch override: equal to setting
// cfg.Chiplet.Uarch, rejected when it conflicts with one.
func TestChipletOptionsUarch(t *testing.T) {
	v := uarch.Variant{NoC: uarch.RouteDeflect}
	cfg := smallMCM(2, 4)
	s1, err := New(cfg, streamWorkload(32, 2, 30), Options{Uarch: v})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallMCM(2, 4)
	cfg2.Chiplet.Uarch = v
	s2, err := New(cfg2, streamWorkload(32, 2, 30), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Errorf("Options.Uarch and cfg.Chiplet.Uarch disagree\nopt %+v\ncfg %+v", st1, st2)
	}
	cfg3 := smallMCM(2, 4)
	cfg3.Chiplet.Uarch = uarch.Variant{NoC: uarch.RouteXbar}
	if _, err := New(cfg3, streamWorkload(32, 2, 30), Options{Uarch: v}); err == nil {
		t.Error("conflicting Options.Uarch and cfg.Chiplet.Uarch accepted")
	}
}

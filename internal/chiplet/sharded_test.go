package chiplet

import (
	"context"
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
	"gpuscale/internal/workloads"
)

// sharedStreamWorkload makes every warp stream over the same region, so
// first-touch ownership concentrates on the earliest chiplets and most
// accesses from the others are remote — worst case for cross-shard traffic.
func sharedStreamWorkload(ctas, warps, loads int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "mcm-shared-stream",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warps},
		Factory: func(cta, warp int) trace.Program {
			g := &trace.SeqGen{Base: 0, Stride: 128, Extent: 1 << 18}
			return trace.NewPhaseProgram(trace.Phase{N: loads * 3, ComputePer: 2, Gen: g})
		},
	}
}

// randomTrafficWorkload scatters every warp's loads uniformly over a small
// shared region (deterministically seeded per warp): pages interleave
// across chiplets, so every shard keeps injecting NoC/DRAM traffic into
// every other shard — the randomized stress cell the race gate runs.
func randomTrafficWorkload(ctas, warps, loads int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "mcm-random-traffic",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warps},
		Factory: func(cta, warp int) trace.Program {
			seed := uint64(cta)<<16 | uint64(warp) | 1
			g := trace.NewRandGen(0, 128, 1<<20, seed)
			return trace.NewPhaseProgram(trace.Phase{N: loads * 2, ComputePer: 1, Gen: g})
		},
	}
}

// TestShardedMatchesSequential is the tentpole's bit-identity contract:
// the same simulation at Shards=1 (sequential event loop) and Shards=N
// must produce identical Stats, across workload shapes, CTA schedulers, a
// real benchmark, sub-horizon DRAM latencies, and shard counts that divide
// the chiplets evenly and unevenly.
func TestShardedMatchesSequential(t *testing.T) {
	bfs, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	cells := []struct {
		name  string
		cfg   config.ChipletConfig
		w     func() trace.Workload
		sched string
	}{
		{"compute/4c", smallMCM(4, 2), func() trace.Workload { return computeWorkload(32, 2, 50) }, ""},
		{"stream/4c", smallMCM(4, 2), func() trace.Workload { return streamWorkload(32, 2, 30) }, ""},
		{"shared/4c", smallMCM(4, 2), func() trace.Workload { return sharedStreamWorkload(32, 2, 30) }, ""},
		{"shared/contiguous", smallMCM(4, 2), func() trace.Workload { return sharedStreamWorkload(32, 2, 30) }, "contiguous"},
		{"random/4c", smallMCM(4, 2), func() trace.Workload { return randomTrafficWorkload(24, 2, 20) }, ""},
		{"bfs/4c", config.MustScaleChiplets(config.Target16Chiplet(), 4), func() trace.Workload { return bfs.Workload }, ""},
		{"stream/horizon-dram", horizonMCM(4, 2, 15), func() trace.Workload { return streamWorkload(32, 2, 30) }, ""},
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.cfg
			if c.sched != "" {
				cfg.CTAScheduler = c.sched
			}
			run := func(opt Options) Stats {
				t.Helper()
				s, err := New(cfg, c.w(), opt)
				if err != nil {
					t.Fatal(err)
				}
				st, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			seq := run(Options{})
			for _, shards := range []int{2, 3, 4} {
				for _, quantum := range []int{0, 64} {
					if got := run(Options{Shards: shards, Quantum: quantum}); got != seq {
						t.Errorf("shards=%d quantum=%d stats diverge\nsharded    %+v\nsequential %+v",
							shards, quantum, got, seq)
					}
				}
			}
		})
	}
}

// TestShardedRandomCrossTrafficStress is the larger randomized cross-shard
// cell: heavier traffic over more chiplets, meant to run under the race
// detector (make race) to check the phase discipline on a real workload.
func TestShardedRandomCrossTrafficStress(t *testing.T) {
	cfg := smallMCM(8, 2)
	run := func(opt Options) Stats {
		t.Helper()
		s, err := New(cfg, randomTrafficWorkload(48, 2, 25), opt)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(Options{})
	for _, shards := range []int{2, 4, 8} {
		for _, quantum := range []int{0, 256} {
			if got := run(Options{Shards: shards, Quantum: quantum}); got != seq {
				t.Errorf("shards=%d quantum=%d stats diverge\nsharded    %+v\nsequential %+v",
					shards, quantum, got, seq)
			}
		}
	}
}

// TestShardsValidation pins the option's edge cases: negatives rejected,
// legacy+shards rejected, counts beyond NumChiplets clamped (and still
// bit-identical), and 0/1 selecting the plain sequential loop.
func TestShardsValidation(t *testing.T) {
	cfg := smallMCM(2, 2)
	w := func() trace.Workload { return streamWorkload(8, 2, 10) }
	if _, err := New(cfg, w(), Options{Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
	if _, err := New(cfg, w(), Options{Quantum: -1}); err == nil {
		t.Error("negative Quantum accepted")
	}
	if _, err := New(cfg, w(), Options{Shards: 2, UseLegacyLoop: true}); err == nil {
		t.Error("Shards with UseLegacyLoop accepted")
	}
	for _, n := range []int{0, 1} {
		s, err := New(cfg, w(), Options{Shards: n})
		if err != nil {
			t.Fatal(err)
		}
		if s.shards != nil {
			t.Errorf("Shards=%d built shard runners", n)
		}
	}
	s, err := New(cfg, w(), Options{Shards: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.shards) != cfg.NumChiplets {
		t.Fatalf("Shards=99 on %d chiplets built %d shards", cfg.NumChiplets, len(s.shards))
	}
	clamped, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(cfg, w())
	if err != nil {
		t.Fatal(err)
	}
	if clamped != seq {
		t.Errorf("clamped sharded run diverged\nsharded    %+v\nsequential %+v", clamped, seq)
	}
}

// TestShardedMaxCyclesAborts mirrors TestMaxCyclesAborts for the sharded
// loop, and checks context cancellation unwinds the worker pool cleanly.
func TestShardedMaxCyclesAborts(t *testing.T) {
	s, err := New(smallMCM(2, 2), streamWorkload(64, 2, 50), Options{Shards: 2, MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("MaxCycles exceeded without error")
	}

	s2, err := New(smallMCM(2, 2), streamWorkload(64, 2, 50), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s2.RunContext(ctx); err == nil {
		t.Error("cancelled context did not abort the sharded run")
	}
}

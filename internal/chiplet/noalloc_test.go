package chiplet

import (
	"context"
	"testing"

	"gpuscale/internal/trace"
)

// prebuiltMCMWorkload is a memory-bound stream workload whose NewProgram is
// allocation-free: every warp program is built up front and the factory just
// hands them out, so a run measures the MCM simulator's own allocations
// (page-to-chiplet first-touch bookkeeping included).
func prebuiltMCMWorkload(ctas, warpsPerCTA, loads int) trace.Workload {
	progs := make([]trace.Program, ctas*warpsPerCTA)
	for cta := 0; cta < ctas; cta++ {
		for w := 0; w < warpsPerCTA; w++ {
			base := uint64(cta*warpsPerCTA+w) * uint64(loads) * 128
			g := &trace.SeqGen{Base: base, Stride: 128, Extent: 1 << 40}
			progs[cta*warpsPerCTA+w] = trace.NewPhaseProgram(trace.Phase{N: loads, Gen: g})
		}
	}
	return &trace.FuncWorkload{
		WName: "mcm-prebuilt-stream",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warpsPerCTA},
		Factory: func(cta, warp int) trace.Program {
			return progs[cta*warpsPerCTA+warp]
		},
	}
}

// arenaMCMWorkload draws its programs from the simulation's arena on every
// CTA launch (the workloads-package idiom), so steady-state launches must be
// served entirely from the arena pools once the first wave has retired.
func arenaMCMWorkload(ctas, warpsPerCTA, loads int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "mcm-arena-stream",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warpsPerCTA},
		FactoryIn: func(a *trace.Arena, cta, warp int) trace.Program {
			base := uint64(cta*warpsPerCTA+warp) * uint64(loads) * 128
			g := a.Seq(base, 0, 128, 1<<40)
			return a.NewProgram(append(a.Phases(1), trace.Phase{N: loads, Gen: g}))
		},
	}
}

// TestSteadyStateNoAllocs is the MCM counterpart of the gpu package's guard:
// after a pre-warm run aborted at MaxCycles has sized every pool, heap,
// bitset and scratch buffer (and populated the arena with a released
// program population), resuming the simulation to completion — warp ticks,
// CTA launches, batched MSHR expiry, NoC/link/DRAM traffic, first-touch
// page lookups, event-skip bookkeeping, Stats aggregation — must not
// allocate. AllocsPerRun is unreliable under the race detector, so `make
// race` runs this via the separate noalloc target.
func TestSteadyStateNoAllocs(t *testing.T) {
	workloads := []struct {
		name  string
		build func() trace.Workload
	}{
		{"prebuilt", func() trace.Workload { return prebuiltMCMWorkload(64, 4, 50) }},
		{"arena-factory", func() trace.Workload { return arenaMCMWorkload(64, 4, 50) }},
	}
	for _, loop := range []struct {
		name string
		opt  Options
	}{
		{"event", Options{MaxCycles: 500}},
		{"legacy", Options{MaxCycles: 500, UseLegacyLoop: true}},
	} {
		for _, wl := range workloads {
			t.Run(loop.name+"/"+wl.name, func(t *testing.T) {
				const runs = 3
				cfg := smallMCM(2, 4)
				// AllocsPerRun invokes the function runs+1 times (one unmeasured
				// warm-up call), and each invocation consumes one simulator.
				sims := make([]*Simulator, 0, runs+1)
				for len(sims) <= runs {
					s, err := New(cfg, wl.build(), loop.opt)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := s.Run(); err == nil {
						t.Fatal("warm-up run completed before MaxCycles; grow the workload")
					}
					s.maxCyc = 0
					sims = append(sims, s)
				}
				ctx := context.Background()
				var runErr error
				i := 0
				n := testing.AllocsPerRun(runs, func() {
					if _, err := sims[i].RunContext(ctx); err != nil && runErr == nil {
						runErr = err
					}
					i++
				})
				if runErr != nil {
					t.Fatal(runErr)
				}
				if n != 0 {
					t.Fatalf("steady-state MCM simulation allocated %.1f times per run, want 0", n)
				}
			})
		}
	}
}

package chiplet

import (
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
	"gpuscale/internal/workloads"
)

// horizonMCM is a small MCM config with DRAM latency lowered so blocked-warp
// wake-up distances land on both sides of the timing kernel's 64-cycle
// due-wheel horizon, exercising the wheel/heap hand-off against the dense
// reference.
func horizonMCM(chiplets, smsPerChiplet, dram int) config.ChipletConfig {
	cfg := smallMCM(chiplets, smsPerChiplet)
	cfg.Chiplet.DRAMLatency = dram
	cfg.Name += "-horizon"
	return cfg
}

// TestEventLoopMatchesLegacy requires the event-driven MCM run loop and the
// dense reference loop to produce bit-identical statistics across both CTA
// scheduling policies and a real benchmark workload.
func TestEventLoopMatchesLegacy(t *testing.T) {
	bfs, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	cells := []struct {
		name  string
		cfg   config.ChipletConfig
		w     func() trace.Workload
		sched string
	}{
		{"compute/2c", smallMCM(2, 4), func() trace.Workload { return computeWorkload(32, 2, 50) }, ""},
		{"stream/2c", smallMCM(2, 4), func() trace.Workload { return streamWorkload(32, 2, 30) }, ""},
		{"stream/contiguous", smallMCM(2, 4), func() trace.Workload { return streamWorkload(32, 2, 30) }, "contiguous"},
		{"bfs/4c", config.MustScaleChiplets(config.Target16Chiplet(), 4), func() trace.Workload { return bfs.Workload }, ""},
		{"stream/horizon-dram", horizonMCM(2, 4, 15), func() trace.Workload { return streamWorkload(32, 2, 30) }, ""},
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			cfg := c.cfg
			if c.sched != "" {
				cfg.CTAScheduler = c.sched
			}
			run := func(opt Options) Stats {
				t.Helper()
				s, err := New(cfg, c.w(), opt)
				if err != nil {
					t.Fatal(err)
				}
				st, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			ev := run(Options{})
			lg := run(Options{UseLegacyLoop: true})
			if ev != lg {
				t.Errorf("stats diverge between loops\nevent  %+v\nlegacy %+v", ev, lg)
			}
		})
	}
}

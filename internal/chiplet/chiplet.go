// Package chiplet simulates multi-chip-module (MCM) GPUs: several GPU
// chiplets — each with its own SMs, L1s, LLC slices, intra-chiplet crossbar
// and memory controllers — joined by an inter-chiplet network (paper
// Section VII-D). Pages are allocated to chiplets on first touch and CTAs
// are scheduled round-robin across all chiplets ("distributed" scheduling),
// following the MCM-GPU design the paper references. A memory access whose
// page lives on another chiplet pays the inter-chiplet latency and consumes
// the owning chiplet's inter-chiplet link bandwidth, which scales linearly
// with chiplet count — the proportional-scaling property that makes small
// MCM configurations valid scale models for larger ones.
package chiplet

import (
	"context"
	"fmt"
	"strconv"

	"gpuscale/internal/bandwidth"
	"gpuscale/internal/cache"
	"gpuscale/internal/config"
	"gpuscale/internal/dram"
	"gpuscale/internal/noc"
	"gpuscale/internal/obs"
	"gpuscale/internal/sm"
	"gpuscale/internal/timing"
	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
)

// ctxCheckEvery is how many run-loop iterations pass between context
// cancellation checks (see gpu.RunContext for rationale).
const ctxCheckEvery = 1024

// Stats is the result of one MCM simulation.
type Stats struct {
	// Cycles is the simulated execution time.
	Cycles int64
	// Instructions and MemInstructions count issued warp instructions.
	Instructions    uint64
	MemInstructions uint64
	// IPC aggregates instructions per cycle over all SMs in the package.
	IPC float64
	// FMem is the mean SM memory-stall fraction.
	FMem float64
	// LLCMPKI is LLC misses per thousand instructions across chiplets.
	LLCMPKI float64
	// LLCMisses counts LLC misses across all chiplets.
	LLCMisses uint64
	// RemoteFraction is the share of post-L1 accesses served by a remote
	// chiplet (a first-touch locality measure).
	RemoteFraction float64
	// CTAs is the number of thread blocks executed.
	CTAs uint64
	// SimEvents is the host-cost proxy (see gpu.Stats.SimEvents).
	SimEvents uint64
}

type chipletState struct {
	sms   []*sm.SM
	l1s   []*cache.Cache
	mshrs []*cache.MSHRFile
	llc   []*cache.Cache
	xbar  noc.Network
	mem   *dram.Memory
	link  *bandwidth.Server // inter-chiplet port of this chiplet
}

// smRef flattens the package's SMs into one chip-major slice (global index
// g = chiplet*NumSMs + sm). That order is the reference loop's within-cycle
// tick order, which the timing kernel preserves by draining each visited
// cycle's due set in ascending global index.
type smRef struct {
	m *sm.SM
	p *port
	f *cache.MSHRFile // this SM's MSHR file, for batched per-cycle expiry
}

// Simulator is a configured MCM GPU plus workload. Use New.
type Simulator struct {
	cfg      config.ChipletConfig
	workload trace.Workload

	chips    []*chipletState
	pages    map[uint64]int // page number → owning chiplet
	pageBits uint
	lineBits uint
	// Variant-dependent memory-path granularity; equal to
	// LineSize/lineBits for the default line-grain L1 (see gpu.Simulator).
	xferBytes int  // bytes per link/NoC/DRAM transfer (line or sector)
	mshrBits  uint // address shift for MSHR merge keys

	nextCTA  int
	numCTAs  int
	warpsPer int
	now      int64

	llcAcc   uint64
	llcMiss  uint64
	remote   uint64
	accesses uint64
	events   uint64
	maxCyc   int64
	legacy   bool

	// Event-driven run-loop state: the shared timing kernel owns the
	// due-wheel, far-wake heap and lazy stall accrual; the Simulator is its
	// Driver (see internal/timing and gpu.Simulator for the same design).
	all         []smRef
	tk          *timing.Kernel
	legacyKinds []sm.TickKind // runLegacy per-cycle scratch
	liveTotal   int
	ctaDirty    bool
	progBuf     []trace.Program
	arena       *trace.Arena
	aw          trace.ArenaWorkload // non-nil if the workload is arena-managed

	// Sharded run-loop state (Options.Shards > 1): one runner per
	// contiguous chiplet group, each with a private timing kernel and
	// arena; nil in sequential mode. See sharded.go and docs/PARALLELISM.md.
	shards      []*shard
	shardOfChip []*shard // chiplet → owning shard
	quantum     int      // barrier-relaxation window cap; 0 = barrier every cycle
	winBase     int64    // current quantum window, for the shards' phaseWindow
	winLimit    int64

	// Observability handles; all nil when Options.Recorder is nil.
	stream      *obs.Stream
	scope       *obs.Scope
	sampleEvery int64
	nextSample  int64
}

// Options tune a simulation run.
type Options struct {
	// MaxCycles aborts the run when exceeded; zero means no limit.
	MaxCycles int64
	// Recorder attaches the observability layer; nil disables every hook.
	Recorder *obs.Recorder
	// SampleEvery overrides the recorder's sampling interval in simulated
	// cycles; zero or negative uses the recorder's default.
	SampleEvery int64
	// UseLegacyLoop runs the dense reference loop that ticks every SM every
	// cycle instead of the event-driven scheduler. Results are bit-identical
	// by contract; only host time differs. Kept for equivalence testing and
	// benchmark baselines.
	UseLegacyLoop bool
	// Shards splits the package into that many contiguous chiplet groups,
	// each driven by its own goroutine over a private timing kernel with a
	// cycle barrier between them (docs/PARALLELISM.md). Results are
	// bit-identical to the sequential event loop by contract; only host
	// time differs. 0 or 1 selects the sequential loop; values above
	// NumChiplets are clamped to it. Incompatible with UseLegacyLoop.
	Shards int
	// Quantum, when positive and Shards > 1, relaxes the per-cycle barrier:
	// each barrier the shards deterministically compute the earliest cycle
	// any warp could issue a memory instruction or retire, and run
	// barrier-free up to that bound (capped at Quantum cycles per window).
	// Results remain bit-identical — the quantum changes only host-side
	// synchronisation frequency. Ignored unless Shards > 1; capped at 4096.
	Quantum int
	// Uarch selects the microarchitecture variant for every chiplet,
	// overriding a zero cfg.Chiplet.Uarch. Setting both to different values
	// is an error. The zero value defers entirely to the configuration.
	Uarch uarch.Variant
}

// New validates and builds an MCM simulator.
func New(cfg config.ChipletConfig, w trace.Workload, opt Options) (*Simulator, error) {
	if opt.Uarch != (uarch.Variant{}) {
		if cfg.Chiplet.Uarch != (uarch.Variant{}) && cfg.Chiplet.Uarch != opt.Uarch {
			return nil, fmt.Errorf("chiplet: Options.Uarch %v conflicts with cfg.Chiplet.Uarch %v", opt.Uarch, cfg.Chiplet.Uarch)
		}
		cfg.Chiplet.Uarch = opt.Uarch
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil {
		return nil, fmt.Errorf("chiplet: nil workload")
	}
	k := w.Kernel()
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("chiplet: workload %q: %w", w.Name(), err)
	}
	if k.WarpsPerCTA > cfg.Chiplet.WarpsPerSM {
		return nil, fmt.Errorf("chiplet: workload %q CTA has %d warps but SMs hold only %d",
			w.Name(), k.WarpsPerCTA, cfg.Chiplet.WarpsPerSM)
	}
	if opt.Shards < 0 {
		return nil, fmt.Errorf("chiplet: Shards must be >= 0, got %d", opt.Shards)
	}
	if opt.Quantum < 0 {
		return nil, fmt.Errorf("chiplet: Quantum must be >= 0, got %d", opt.Quantum)
	}
	nShards := opt.Shards
	if nShards > cfg.NumChiplets {
		nShards = cfg.NumChiplets // more shards than chiplets cannot help
	}
	if nShards > 1 && opt.UseLegacyLoop {
		return nil, fmt.Errorf("chiplet: Shards > 1 is incompatible with UseLegacyLoop")
	}
	s := &Simulator{
		cfg:      cfg,
		workload: w,
		pages:    make(map[uint64]int, 1<<16),
		numCTAs:  k.NumCTAs,
		warpsPer: k.WarpsPerCTA,
		maxCyc:   opt.MaxCycles,
	}
	for 1<<s.lineBits != cfg.Chiplet.LineSize {
		s.lineBits++
	}
	for 1<<s.pageBits != cfg.PageSize {
		s.pageBits++
	}
	ch := cfg.Chiplet
	variant := ch.EffectiveUarch()
	s.xferBytes = ch.LineSize
	s.mshrBits = s.lineBits
	sectored := variant.L1 == uarch.L1Sectored
	if sectored {
		s.xferBytes = uarch.SectorBytes
		s.mshrBits = 0
		for 1<<s.mshrBits != uarch.SectorBytes {
			s.mshrBits++
		}
	}
	maxCTAs := ch.MaxCTAsPerSM
	if k.CTAsPerSMLimit > 0 && k.CTAsPerSMLimit < maxCTAs {
		maxCTAs = k.CTAsPerSMLimit
	}
	s.chips = make([]*chipletState, cfg.NumChiplets)
	for c := range s.chips {
		cs := &chipletState{
			sms:   make([]*sm.SM, ch.NumSMs),
			l1s:   make([]*cache.Cache, ch.NumSMs),
			mshrs: make([]*cache.MSHRFile, ch.NumSMs),
			llc:   make([]*cache.Cache, ch.LLCSlices),
		}
		for i := 0; i < ch.NumSMs; i++ {
			cs.sms[i] = sm.MustNewVariant(ch.WarpsPerSM, maxCTAs, ch.ComputeLatency, variant)
			if sectored {
				cs.l1s[i] = cache.MustNewSectored(ch.L1SizeBytes, ch.L1Ways, ch.LineSize, uarch.SectorBytes)
			} else {
				cs.l1s[i] = cache.MustNew(ch.L1SizeBytes, ch.L1Ways, ch.LineSize)
			}
			cs.mshrs[i] = cache.NewMSHRFile(ch.L1MSHRs)
		}
		for i := range cs.llc {
			cs.llc[i] = cache.MustNew(ch.LLCSliceSize(), ch.LLCWays, ch.LineSize)
		}
		nocCfg := noc.Config{
			BisectionBytesPerCycle: ch.BytesPerCycle(ch.NoCBisectionGBps),
			Ports:                  ch.LLCSlices,
			BaseLatency:            ch.NoCBaseLatency,
		}
		switch variant.NoC {
		case uarch.RouteXbar:
			cs.xbar = noc.MustNew(nocCfg)
		case uarch.RouteDeflect:
			cs.xbar = noc.MustNewDeflect(nocCfg)
		default:
			panic("chiplet: unreachable routing variant " + string(variant.NoC))
		}
		cs.mem = dram.MustNew(dram.Config{
			Controllers:        ch.MemControllers,
			BytesPerCyclePerMC: ch.BytesPerCycle(ch.MemBWPerMCGBps),
			Latency:            ch.DRAMLatency,
		})
		cs.link = bandwidth.MustNewServer(ch.BytesPerCycle(cfg.InterChipletGBpsPerChiplet))
		s.chips[c] = cs
	}
	// Size every run-loop structure up front so the hot path never
	// allocates (see gpu.NewSequence for the same pattern).
	s.legacy = opt.UseLegacyLoop
	total := cfg.NumChiplets * ch.NumSMs
	s.all = make([]smRef, 0, total)
	for c, cs := range s.chips {
		for i, m := range cs.sms {
			s.all = append(s.all, smRef{m: m, p: &port{sim: s, chip: c, smID: i, g: c*ch.NumSMs + i}, f: cs.mshrs[i]})
		}
	}
	s.legacyKinds = make([]sm.TickKind, total)
	s.progBuf = make([]trace.Program, k.WarpsPerCTA)
	if aw, ok := trace.AsArenaWorkload(w); ok {
		s.aw = aw
	}
	if nShards > 1 {
		// Sharded mode: each shard owns a private kernel and arena; the
		// shard is its kernel's Driver and its SMs' recycler (sharded.go).
		s.quantum = opt.Quantum
		if s.quantum > maxQuantum {
			s.quantum = maxQuantum
		}
		s.buildShards(nShards)
	} else {
		s.tk = timing.MustNew(timing.Config{Units: total}, s)
		// Workload arena: recycle programs and generators across CTA
		// launches for arena-managed workloads (see gpu.NewSequence).
		s.arena = trace.NewArena(total * ch.WarpsPerSM)
		for _, r := range s.all {
			r.m.SetRecycler(s)
		}
	}
	s.ctaDirty = true
	if rec := opt.Recorder; rec.Enabled() {
		label := cfg.Name + "/" + w.Name()
		s.stream = rec.Stream(label)
		s.scope = rec.Scope(label + "#" + strconv.FormatInt(s.stream.ID(), 10))
		s.sampleEvery = opt.SampleEvery
		if s.sampleEvery <= 0 {
			s.sampleEvery = rec.SampleInterval()
		}
		if s.sampleEvery <= 0 {
			s.sampleEvery = obs.DefaultSampleInterval
		}
		s.nextSample = s.sampleEvery
	}
	return s, nil
}

// port adapts the MCM memory hierarchy to one SM.
type port struct {
	sim  *Simulator
	chip int
	smID int
	g    int    // global SM id (chip-major)
	sh   *shard // owning shard runner; nil in sequential/legacy mode
}

// Access implements sm.MemPort for the MCM hierarchy: L1 → (first-touch
// page lookup) → possibly inter-chiplet link → owner's crossbar → owner's
// LLC slice → owner's DRAM.
func (p *port) Access(now int64, in trace.Instr) int64 {
	s := p.sim
	cs := s.chips[p.chip]
	ch := s.cfg.Chiplet
	line := in.Addr >> s.lineBits
	// key == line unless the L1 is sectored (see gpu's port.Access).
	key := in.Addr >> s.mshrBits
	bypass := in.Flags&trace.BypassL1 != 0
	if !bypass {
		if cs.l1s[p.smID].Access(in.Addr) {
			return now + int64(ch.L1HitLatency)
		}
	}
	// MSHR reclamation is batched: both run loops Expire this SM's file
	// once per visited cycle, right before the Tick that issues this
	// access, so no completed entry is live here (see gpu's port.Access).
	mshr := cs.mshrs[p.smID]
	load := in.Kind == trace.Load
	if load && !bypass {
		if comp, ok := mshr.Lookup(now, key); ok {
			return comp
		}
	}
	arrival := now
	full := mshr.Full(now)
	if full {
		if nc, ok := mshr.NextCompletion(); ok && nc > arrival {
			arrival = nc
		}
	}
	page := in.Addr >> s.pageBits
	// Everything from here on touches state shared across SMs (the page
	// table, package counters, the owner chiplet's link/NoC/LLC/DRAM). A
	// sharded run must not resolve it inside the parallel tick phase:
	// record the access and return a provisional completion instead; the
	// coordinator resolves it deterministically at the cycle barrier and
	// repairs the warp's wake-up before the next cycle's ticks.
	if p.sh != nil {
		return p.sh.deferAccess(p, line, key, page, arrival, now, load, bypass, full)
	}
	// First-touch page allocation decides the owning chiplet.
	owner, seen := s.pages[page]
	if !seen {
		owner = p.chip
		s.pages[page] = owner
	}
	s.accesses++
	t := arrival
	remote := owner != p.chip
	if remote {
		s.remote++
		t = s.chips[owner].link.Schedule(t, s.xferBytes) + int64(s.cfg.InterChipletLatency)
	}
	oc := s.chips[owner]
	nSlices := uint64(len(oc.llc))
	slice := int(line % nSlices)
	t = oc.xbar.Transfer(t, slice, s.xferBytes)
	t += int64(ch.LLCHitLatency)
	s.llcAcc++
	sliceLocal := (line / nSlices) << s.lineBits
	if !oc.llc[slice].Access(sliceLocal) {
		s.llcMiss++
		t = oc.mem.Access(t, line, s.xferBytes)
		t += int64((line * 0x9e3779b9 >> 13) % 13)
	}
	t += int64(ch.NoCBaseLatency)
	if remote {
		t += int64(s.cfg.InterChipletLatency)
	}
	if load && !bypass && !full {
		mshr.Allocate(key, t)
	}
	return t
}

// fillCTAs launches pending CTAs across the chiplets' SMs. Under the
// default "distributed" policy (Table V) consecutive CTAs land on
// consecutive chiplets; under "contiguous" a chiplet fills before the next
// one is used, which keeps first-touch pages more local at the cost of
// balance.
func (s *Simulator) fillCTAs() {
	s.ctaDirty = false
	total := s.cfg.NumChiplets * s.cfg.Chiplet.NumSMs
	contiguous := s.cfg.CTAScheduler == "contiguous"
	for s.nextCTA < s.numCTAs {
		launched := false
		for g := 0; g < total && s.nextCTA < s.numCTAs; g++ {
			var c, i int
			if contiguous {
				c, i = g/s.cfg.Chiplet.NumSMs, g%s.cfg.Chiplet.NumSMs
			} else {
				c, i = g%s.cfg.NumChiplets, g/s.cfg.NumChiplets
			}
			m := s.chips[c].sms[i]
			if !m.CanAccept(s.warpsPer) {
				continue
			}
			progs := s.progBuf[:s.warpsPer]
			if s.aw != nil {
				// Sharded runs recycle through the target SM's shard arena
				// (programs retire inside that shard's tick phase).
				arena := s.arena
				if s.shards != nil {
					arena = s.shardOfChip[c].arena
				}
				for wpi := range progs {
					progs[wpi] = s.aw.NewProgramIn(arena, s.nextCTA, wpi)
				}
			} else {
				for wpi := range progs {
					progs[wpi] = s.workload.NewProgram(s.nextCTA, wpi)
				}
			}
			if !s.legacy {
				// Settle the SM's idle interval before the launch changes
				// its classification, then schedule it to act this cycle;
				// the kernel drops any stale far wake-up itself.
				g := c*s.cfg.Chiplet.NumSMs + i
				if s.shards != nil {
					sh := s.shardOfChip[c]
					sh.tk.ScheduleNow(g - sh.firstG)
				} else {
					s.tk.ScheduleNow(g)
				}
			}
			m.LaunchCTA(progs)
			s.liveTotal += s.warpsPer
			s.nextCTA++
			launched = true
		}
		if !launched {
			return
		}
	}
}

// Release implements sm.ProgramRecycler: retired warp programs return to
// the simulation's arena when the workload is arena-managed.
func (s *Simulator) Release(p trace.Program) {
	if s.aw != nil {
		s.arena.Release(p)
	}
}

// Run executes the workload to completion.
func (s *Simulator) Run() (Stats, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run honouring context cancellation, checked every
// ctxCheckEvery run-loop iterations.
func (s *Simulator) RunContext(ctx context.Context) (Stats, error) {
	if s.legacy {
		return s.runLegacy(ctx)
	}
	if s.shards != nil {
		return s.runSharded(ctx)
	}
	return s.runEvent(ctx)
}

// flushAllAccruals settles every SM's counters up to s.now. No-op under the
// legacy loop, whose accrual already is eager.
func (s *Simulator) flushAllAccruals() {
	if s.legacy {
		return
	}
	if s.shards != nil {
		for _, sh := range s.shards {
			sh.tk.FlushAll()
		}
		return
	}
	s.tk.FlushAll()
}

// TickUnit implements timing.Driver: one due SM's visit — batched MSHR
// expiry (reclaim completed entries before any Access this Tick can
// issue), the SM tick itself, and retirement bookkeeping. The returned
// Outcome carries the SM's next wake-up for the kernel's due-wheel; NoWake
// means the SM is idle until a CTA launch ScheduleNows it.
func (s *Simulator) TickUnit(now int64, g int) timing.Outcome {
	r := s.all[g]
	liveBefore := r.m.LiveWarps()
	r.f.Expire(now)
	k := r.m.Tick(now, r.p)
	out := timing.Outcome{Wake: timing.NoWake, Kind: uint8(k), Issued: k == sm.Issued}
	if d := liveBefore - r.m.LiveWarps(); d > 0 {
		s.liveTotal -= d
		// Any warp retirement can flip CanAccept; re-scan launches.
		s.ctaDirty = true
	}
	if r.m.HasReady() {
		out.Wake = now + 1
	} else if ev, ok := r.m.NextEvent(); ok {
		out.Wake = ev
	}
	return out
}

// AccrueStall implements timing.Driver: one SM's standing classification
// settled over a whole non-ticked interval; see gpu.Simulator.AccrueStall
// for why the standing StallKind is exact over the whole interval.
func (s *Simulator) AccrueStall(g int, cycles uint64) {
	s.all[g].m.Accrue(s.all[g].m.StallKind(), cycles)
}

// AccrueTick implements timing.Driver: a ticked SM's own cycle gets the
// classification its Tick returned.
func (s *Simulator) AccrueTick(g int, kind uint8) {
	s.all[g].m.Accrue(sm.TickKind(kind), 1)
}

// CycleEnd implements timing.Driver: one simulation event per SM per
// visited cycle, ticked or not — SimEvents models the dense simulator's
// cost, not the event loop's.
func (s *Simulator) CycleEnd(now int64) {
	s.events += uint64(len(s.all))
}

// runEvent is the event-driven run loop: a thin driver over the timing
// kernel, which per simulated cycle ticks only the SMs whose wake-up is
// due, in chip-major order, matching the dense reference loop bit for bit.
// Only the workload-facing control flow lives here: CTA refills,
// completion, cancellation and cycle limits.
func (s *Simulator) runEvent(ctx context.Context) (Stats, error) {
	iters := 0
	for {
		iters++
		if iters >= ctxCheckEvery {
			iters = 0
			select {
			case <-ctx.Done():
				return Stats{}, fmt.Errorf("chiplet: %q on %s cancelled at cycle %d: %w",
					s.workload.Name(), s.cfg.Name, s.now, ctx.Err())
			default:
			}
		}
		if s.ctaDirty {
			s.fillCTAs()
		}
		if s.liveTotal == 0 {
			if s.nextCTA >= s.numCTAs {
				break
			}
			s.ctaDirty = true // mirror the dense loop's unconditional refill
		}
		if s.maxCyc > 0 && s.now > s.maxCyc {
			return Stats{}, fmt.Errorf("chiplet: %q on %s exceeded MaxCycles=%d",
				s.workload.Name(), s.cfg.Name, s.maxCyc)
		}
		s.tk.Step()
		s.now = s.tk.Now()
		if s.stream != nil && s.now >= s.nextSample {
			s.sampleObs()
			for s.nextSample <= s.now {
				s.nextSample += s.sampleEvery
			}
		}
	}
	return s.stats(), nil
}

// runLegacy is the dense reference loop, retained as the executable
// specification the event-driven loop is checked against.
func (s *Simulator) runLegacy(ctx context.Context) (Stats, error) {
	all := s.all
	kinds := s.legacyKinds // same length as all; reused as scratch
	s.fillCTAs()
	iters := 0
	for {
		iters++
		if iters >= ctxCheckEvery {
			iters = 0
			select {
			case <-ctx.Done():
				return Stats{}, fmt.Errorf("chiplet: %q on %s cancelled at cycle %d: %w",
					s.workload.Name(), s.cfg.Name, s.now, ctx.Err())
			default:
			}
		}
		live := 0
		for _, r := range all {
			live += r.m.LiveWarps()
		}
		if live == 0 && s.nextCTA >= s.numCTAs {
			break
		}
		if s.maxCyc > 0 && s.now > s.maxCyc {
			return Stats{}, fmt.Errorf("chiplet: %q on %s exceeded MaxCycles=%d",
				s.workload.Name(), s.cfg.Name, s.maxCyc)
		}
		issued := false
		for i, r := range all {
			r.f.Expire(s.now) // batched expiry, as in the event loop
			kinds[i] = r.m.Tick(s.now, r.p)
			if kinds[i] == sm.Issued {
				issued = true
			}
			s.events++
		}
		if issued {
			for i, r := range all {
				r.m.Accrue(kinds[i], 1)
			}
			s.now++
		} else {
			next := int64(-1)
			for _, r := range all {
				if ev, ok := r.m.NextEvent(); ok && (next < 0 || ev < next) {
					next = ev
				}
			}
			if next <= s.now {
				next = s.now + 1
			}
			w := uint64(next - s.now)
			for i, r := range all {
				r.m.Accrue(kinds[i], w)
			}
			s.now = next
		}
		if s.stream != nil && s.now >= s.nextSample {
			s.sampleObs()
			for s.nextSample <= s.now {
				s.nextSample += s.sampleEvery
			}
		}
		s.fillCTAs()
	}
	return s.stats(), nil
}

// stats settles any lazily-accrued intervals and aggregates the package's
// final statistics.
func (s *Simulator) stats() Stats {
	s.flushAllAccruals()
	if s.stream != nil {
		s.stream.Span(0, s.now, "kernel", s.workload.Name())
	}
	var st Stats
	st.Cycles = s.now
	var fmemSum float64
	for _, r := range s.all {
		ss := r.m.Stats()
		st.Instructions += ss.Instructions
		st.MemInstructions += ss.MemInstructions
		st.CTAs += ss.CTAsCompleted
		fmemSum += ss.FMem()
	}
	if st.Cycles > 0 {
		st.IPC = float64(st.Instructions) / float64(st.Cycles)
	}
	st.FMem = fmemSum / float64(len(s.all))
	st.LLCMisses = s.llcMiss
	if st.Instructions > 0 {
		st.LLCMPKI = float64(s.llcMiss) / (float64(st.Instructions) / 1000)
	}
	if s.accesses > 0 {
		st.RemoteFraction = float64(s.remote) / float64(s.accesses)
	}
	st.SimEvents = s.events + st.Instructions
	s.publishObs()
	return st
}

// sampleObs takes one interval-sampler snapshot across the package: mean
// warp occupancy, remote-access share, and the worst inter-chiplet link
// backlog. Called only when a recorder is attached.
func (s *Simulator) sampleObs() {
	s.flushAllAccruals()
	liveWarps, totalWarps := 0, 0
	var linkBacklog float64
	for _, cs := range s.chips {
		for _, m := range cs.sms {
			liveWarps += m.LiveWarps()
			totalWarps += s.cfg.Chiplet.WarpsPerSM
		}
		if b := cs.link.Backlog(s.now); b > linkBacklog {
			linkBacklog = b
		}
	}
	remote := 0.0
	if s.accesses > 0 {
		remote = float64(s.remote) / float64(s.accesses)
	}
	s.stream.Sample(s.now, map[string]float64{
		"occupancy":       float64(liveWarps) / float64(totalWarps),
		"remote_fraction": remote,
		"link_backlog":    linkBacklog,
	})
	s.publishObs()
}

// publishObs stores per-chiplet component metrics into the recorder's
// registry with Store semantics (idempotent; see gpu.publishObs). No-op
// without a recorder.
func (s *Simulator) publishObs() {
	if s.scope == nil {
		return
	}
	for c, cs := range s.chips {
		chipScope := s.scope.Sub("chiplet").Sub(strconv.Itoa(c))
		for i, m := range cs.sms {
			id := strconv.Itoa(i)
			m.PublishObs(chipScope.Sub("sm").Sub(id))
			cs.l1s[i].PublishObs(chipScope.Sub("l1").Sub(id))
			cs.mshrs[i].PublishObs(chipScope.Sub("mshr").Sub(id))
		}
		for i, llc := range cs.llc {
			llc.PublishObs(chipScope.Sub("llc").Sub(strconv.Itoa(i)))
		}
		cs.xbar.PublishObs(chipScope.Sub("noc"), s.now, s.now)
		cs.mem.PublishObs(chipScope.Sub("dram"), s.now, s.now)
		chipScope.Counter("link/bytes").Store(cs.link.TotalBytes())
	}
	s.scope.Counter("llc/accesses").Store(s.llcAcc)
	s.scope.Counter("llc/misses").Store(s.llcMiss)
	s.scope.Counter("remote_accesses").Store(s.remote)
	s.scope.Counter("accesses").Store(s.accesses)
}

// Run is the one-call convenience API: simulate w on the MCM config.
func Run(cfg config.ChipletConfig, w trace.Workload) (Stats, error) {
	s, err := New(cfg, w, Options{})
	if err != nil {
		return Stats{}, err
	}
	return s.Run()
}

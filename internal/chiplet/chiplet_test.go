package chiplet

import (
	"testing"

	"gpuscale/internal/config"
	"gpuscale/internal/trace"
	"gpuscale/internal/workloads"
)

func smallMCM(chiplets, smsPerChiplet int) config.ChipletConfig {
	c := config.Target16Chiplet()
	c.Chiplet.NumSMs = smsPerChiplet
	return config.MustScaleChiplets(c, chiplets)
}

func computeWorkload(ctas, warps, n int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "mcm-compute",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warps},
		Factory: func(cta, warp int) trace.Program {
			return trace.NewPhaseProgram(trace.Phase{N: n})
		},
	}
}

func streamWorkload(ctas, warps, loads int) trace.Workload {
	return &trace.FuncWorkload{
		WName: "mcm-stream",
		Spec:  trace.KernelSpec{NumCTAs: ctas, WarpsPerCTA: warps},
		Factory: func(cta, warp int) trace.Program {
			base := uint64(cta*warps+warp) * uint64(loads) * 128
			g := &trace.SeqGen{Base: base, Stride: 128, Extent: 1 << 40}
			return trace.NewPhaseProgram(trace.Phase{N: loads * 3, ComputePer: 2, Gen: g})
		},
	}
}

func TestNewValidation(t *testing.T) {
	w := computeWorkload(8, 2, 10)
	bad := smallMCM(2, 4)
	bad.NumChiplets = 0
	if _, err := New(bad, w, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(smallMCM(2, 4), nil, Options{}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := New(smallMCM(2, 4), computeWorkload(1, 500, 1), Options{}); err == nil {
		t.Error("oversized CTA accepted")
	}
	if _, err := New(smallMCM(2, 4), computeWorkload(0, 1, 1), Options{}); err == nil {
		t.Error("zero CTAs accepted")
	}
}

func TestComputeRunsToCompletion(t *testing.T) {
	st, err := Run(smallMCM(2, 4), computeWorkload(32, 2, 50))
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 32*2*50 {
		t.Errorf("instructions = %d, want %d", st.Instructions, 32*2*50)
	}
	if st.CTAs != 32 {
		t.Errorf("CTAs = %d, want 32", st.CTAs)
	}
	if st.IPC <= 0 {
		t.Error("IPC not positive")
	}
	if st.RemoteFraction != 0 {
		t.Errorf("compute workload has remote accesses: %v", st.RemoteFraction)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallMCM(2, 4)
	w := streamWorkload(32, 2, 60)
	a, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestFirstTouchCreatesRemoteTraffic(t *testing.T) {
	// A shared region touched by CTAs on every chiplet: whoever touches a
	// page first owns it, so later accesses from other chiplets are
	// remote.
	shared := &trace.FuncWorkload{
		WName: "mcm-shared",
		Spec:  trace.KernelSpec{NumCTAs: 64, WarpsPerCTA: 2},
		Factory: func(cta, warp int) trace.Program {
			g := &trace.SeqGen{Base: 0, Start: uint64(warp) * 128, Stride: 128, Extent: 1 << 21}
			return trace.NewPhaseProgram(trace.Phase{N: 120, ComputePer: 1, Gen: g})
		},
	}
	st, err := Run(smallMCM(4, 4), shared)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemoteFraction <= 0.3 {
		t.Errorf("RemoteFraction = %v, want well above 0 for shared data on 4 chiplets", st.RemoteFraction)
	}
}

func TestPrivateDataStaysLocalMostly(t *testing.T) {
	// Streaming private data: each page is touched by exactly one warp,
	// so every access is local.
	st, err := Run(smallMCM(4, 4), streamWorkload(64, 2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if st.RemoteFraction > 0.05 {
		t.Errorf("RemoteFraction = %v, want ≈0 for private streams", st.RemoteFraction)
	}
}

func TestWeakScalingAcrossChiplets(t *testing.T) {
	// A weak-scaled workload on 2 vs 4 chiplets: IPC should roughly
	// double (linear family).
	wb, err := workloads.WeakByName("va")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Run(smallMCM(2, 8), wb.ForSMs(2*8))
	if err != nil {
		t.Fatal(err)
	}
	st4, err := Run(smallMCM(4, 8), wb.ForSMs(4*8))
	if err != nil {
		t.Fatal(err)
	}
	ratio := st4.IPC / st2.IPC
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("weak va scaled %.2fx from 2 to 4 chiplets, want ≈2x", ratio)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	s, err := New(smallMCM(2, 4), streamWorkload(32, 2, 100), Options{MaxCycles: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("MaxCycles did not abort")
	}
}

func TestStatsAccounting(t *testing.T) {
	st, err := Run(smallMCM(2, 4), streamWorkload(32, 2, 60))
	if err != nil {
		t.Fatal(err)
	}
	if st.MemInstructions > st.Instructions {
		t.Error("mem instructions exceed instructions")
	}
	if st.LLCMPKI < 0 {
		t.Error("negative MPKI")
	}
	if st.FMem < 0 || st.FMem > 1 {
		t.Errorf("FMem out of range: %v", st.FMem)
	}
	if st.SimEvents == 0 {
		t.Error("SimEvents not recorded")
	}
}

func TestContiguousSchedulerImprovesLocality(t *testing.T) {
	// CTAs sharing per-CTA-neighbourhood pages: contiguous placement keeps
	// neighbours on one chiplet, so its remote fraction must be lower
	// than distributed scheduling's.
	mk := func() trace.Workload {
		return &trace.FuncWorkload{
			WName: "mcm-neighbour",
			Spec:  trace.KernelSpec{NumCTAs: 64, WarpsPerCTA: 2},
			Factory: func(cta, warp int) trace.Program {
				// Consecutive CTAs touch overlapping 16 KiB windows.
				base := uint64(cta/8) * 16384
				g := &trace.SeqGen{Base: base, Start: uint64(warp) * 128, Stride: 128, Extent: 16384}
				return trace.NewPhaseProgram(trace.Phase{N: 60, ComputePer: 1, Gen: g})
			},
		}
	}
	dist := smallMCM(4, 4)
	stDist, err := Run(dist, mk())
	if err != nil {
		t.Fatal(err)
	}
	cont := smallMCM(4, 4)
	cont.CTAScheduler = "contiguous"
	cont.Name = "mcm-4c-contig"
	stCont, err := Run(cont, mk())
	if err != nil {
		t.Fatal(err)
	}
	if stCont.RemoteFraction >= stDist.RemoteFraction {
		t.Errorf("contiguous remote fraction %.3f not below distributed %.3f",
			stCont.RemoteFraction, stDist.RemoteFraction)
	}
}

func TestBadCTASchedulerRejected(t *testing.T) {
	cfg := smallMCM(2, 4)
	cfg.CTAScheduler = "zigzag"
	if _, err := New(cfg, computeWorkload(4, 2, 10), Options{}); err == nil {
		t.Error("unknown CTA scheduler accepted")
	}
}

// Package regress implements the baseline extrapolation methods the paper
// compares scale-model simulation against (Section VII): proportional
// scaling, linear regression (y = a·x + b), power-law regression
// (y = a·x^b), and logarithmic regression (y = a·log2(x)) — the last being
// what prior CPU scale-model work proposed. All models are fit on the
// scale-model performance points only, exactly as in the paper.
package regress

import (
	"fmt"
	"math"
)

// Point is one scale-model observation: system size (number of SMs or
// chiplets) and measured IPC.
type Point struct {
	Size float64
	IPC  float64
}

// Model predicts IPC at a target system size.
type Model interface {
	// Name identifies the method, e.g. "power-law".
	Name() string
	// Predict returns the predicted IPC at the given system size.
	Predict(size float64) float64
}

func validate(points []Point, need int) error {
	if len(points) < need {
		return fmt.Errorf("regress: need at least %d points, got %d", need, len(points))
	}
	for _, p := range points {
		if p.Size <= 0 {
			return fmt.Errorf("regress: non-positive size %v", p.Size)
		}
		if p.IPC <= 0 {
			return fmt.Errorf("regress: non-positive IPC %v", p.IPC)
		}
	}
	return nil
}

// proportional assumes performance scales exactly with system size from the
// largest scale model: IPC(T) = IPC_L · T/L.
type proportional struct{ ref Point }

func (p proportional) Name() string { return "proportional" }
func (p proportional) Predict(size float64) float64 {
	return p.ref.IPC * size / p.ref.Size
}

// FitProportional builds the proportional-scaling baseline from the largest
// scale-model point.
func FitProportional(points []Point) (Model, error) {
	if err := validate(points, 1); err != nil {
		return nil, err
	}
	ref := points[0]
	for _, p := range points[1:] {
		if p.Size > ref.Size {
			ref = p
		}
	}
	return proportional{ref: ref}, nil
}

// linear is y = a·x + b fit by least squares.
type linear struct{ a, b float64 }

func (l linear) Name() string                 { return "linear" }
func (l linear) Predict(size float64) float64 { return l.a*size + l.b }

// FitLinear fits y = a·x + b by least squares (exact through two points).
func FitLinear(points []Point) (Model, error) {
	if err := validate(points, 2); err != nil {
		return nil, err
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(points))
	for _, p := range points {
		sx += p.Size
		sy += p.IPC
		sxx += p.Size * p.Size
		sxy += p.Size * p.IPC
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, fmt.Errorf("regress: degenerate linear fit (all sizes equal)")
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	return linear{a: a, b: b}, nil
}

// power is y = a·x^b fit by least squares in log-log space.
type power struct{ a, b float64 }

func (p power) Name() string { return "power-law" }
func (p power) Predict(size float64) float64 {
	return p.a * math.Pow(size, p.b)
}

// FitPower fits y = a·x^b by linear least squares on (log x, log y).
func FitPower(points []Point) (Model, error) {
	if err := validate(points, 2); err != nil {
		return nil, err
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(points))
	for _, p := range points {
		lx, ly := math.Log(p.Size), math.Log(p.IPC)
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil, fmt.Errorf("regress: degenerate power fit (all sizes equal)")
	}
	b := (n*sxy - sx*sy) / den
	lna := (sy - b*sx) / n
	return power{a: math.Exp(lna), b: b}, nil
}

// logarithmic is y = a·log2(x) fit by least squares — the prior-work model
// the paper includes for reference.
type logarithmic struct{ a float64 }

func (l logarithmic) Name() string { return "logarithmic" }
func (l logarithmic) Predict(size float64) float64 {
	return l.a * math.Log2(size)
}

// FitLog fits y = a·log2(x) by single-parameter least squares:
// a = Σ(y·log2 x) / Σ(log2 x)².
func FitLog(points []Point) (Model, error) {
	if err := validate(points, 1); err != nil {
		return nil, err
	}
	var num, den float64
	for _, p := range points {
		lx := math.Log2(p.Size)
		num += p.IPC * lx
		den += lx * lx
	}
	if den == 0 {
		return nil, fmt.Errorf("regress: degenerate log fit (all sizes are 1)")
	}
	return logarithmic{a: num / den}, nil
}

// BaselineNames lists the four baselines in the paper's presentation order.
var BaselineNames = []string{"logarithmic", "proportional", "linear", "power-law"}

// FitAll fits the four baselines on the given scale-model points and
// returns them keyed by name.
func FitAll(points []Point) (map[string]Model, error) {
	log, err := FitLog(points)
	if err != nil {
		return nil, err
	}
	prop, err := FitProportional(points)
	if err != nil {
		return nil, err
	}
	lin, err := FitLinear(points)
	if err != nil {
		return nil, err
	}
	pow, err := FitPower(points)
	if err != nil {
		return nil, err
	}
	return map[string]Model{
		log.Name():  log,
		prop.Name(): prop,
		lin.Name():  lin,
		pow.Name():  pow,
	}, nil
}

package regress

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestProportional(t *testing.T) {
	m, err := FitProportional([]Point{{8, 100}, {16, 150}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "proportional" {
		t.Errorf("name = %q", m.Name())
	}
	// Uses the largest scale model: IPC(128) = 150 * 128/16 = 1200.
	if got := m.Predict(128); !approx(got, 1200, 1e-9) {
		t.Errorf("Predict(128) = %v, want 1200", got)
	}
}

func TestProportionalPicksLargest(t *testing.T) {
	m, _ := FitProportional([]Point{{16, 150}, {8, 100}}) // order reversed
	if got := m.Predict(32); !approx(got, 300, 1e-9) {
		t.Errorf("Predict(32) = %v, want 300 (from 16-SM point)", got)
	}
}

func TestLinearExactThroughTwoPoints(t *testing.T) {
	m, err := FitLinear([]Point{{8, 100}, {16, 180}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(8); !approx(got, 100, 1e-9) {
		t.Errorf("Predict(8) = %v, want 100", got)
	}
	if got := m.Predict(16); !approx(got, 180, 1e-9) {
		t.Errorf("Predict(16) = %v, want 180", got)
	}
	// slope 10, intercept 20: Predict(128) = 1300.
	if got := m.Predict(128); !approx(got, 1300, 1e-9) {
		t.Errorf("Predict(128) = %v, want 1300", got)
	}
}

func TestPowerExactThroughTwoPoints(t *testing.T) {
	// y = 2 x^1.5: points (4, 16), (16, 128).
	m, err := FitPower([]Point{{4, 16}, {16, 128}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(64); !approx(got, 1024, 1e-6) {
		t.Errorf("Predict(64) = %v, want 1024", got)
	}
	if m.Name() != "power-law" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestPowerRecoversLinearScaling(t *testing.T) {
	// Perfect linear scaling is a power law with exponent 1.
	m, _ := FitPower([]Point{{8, 80}, {16, 160}})
	if got := m.Predict(128); !approx(got, 1280, 1e-6) {
		t.Errorf("Predict(128) = %v, want 1280", got)
	}
}

func TestLogFit(t *testing.T) {
	// Data from y = 50·log2(x): exact recovery.
	m, err := FitLog([]Point{{8, 150}, {16, 200}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(128); !approx(got, 350, 1e-9) {
		t.Errorf("Predict(128) = %v, want 350", got)
	}
	if m.Name() != "logarithmic" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestLogDrasticallyUnderPredictsLinearWorkload(t *testing.T) {
	// The paper's point: log regression is wildly wrong for linearly
	// scaling workloads.
	m, _ := FitLog([]Point{{8, 80}, {16, 160}})
	got := m.Predict(128)
	if got > 800 { // true value would be 1280
		t.Errorf("log regression predicted %v; expected severe underprediction", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := FitLinear([]Point{{8, 100}}); err == nil {
		t.Error("single point accepted for linear")
	}
	if _, err := FitPower([]Point{{8, 100}, {8, 200}}); err == nil {
		t.Error("degenerate sizes accepted for power")
	}
	if _, err := FitLinear([]Point{{8, 100}, {8, 200}}); err == nil {
		t.Error("degenerate sizes accepted for linear")
	}
	if _, err := FitLog([]Point{{1, 100}}); err == nil {
		t.Error("log fit at size 1 accepted (log2(1)=0)")
	}
	if _, err := FitProportional(nil); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := FitProportional([]Point{{-8, 100}}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := FitProportional([]Point{{8, -100}}); err == nil {
		t.Error("negative IPC accepted")
	}
}

func TestFitAll(t *testing.T) {
	models, err := FitAll([]Point{{8, 100}, {16, 180}})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 4 {
		t.Fatalf("got %d models, want 4", len(models))
	}
	for _, name := range BaselineNames {
		if _, ok := models[name]; !ok {
			t.Errorf("missing model %q", name)
		}
	}
}

func TestFitAllPropagatesErrors(t *testing.T) {
	if _, err := FitAll([]Point{{8, 100}}); err == nil {
		t.Error("FitAll with one point should fail (linear needs two)")
	}
}

func TestTwoPointFitsInterpolateExactlyProperty(t *testing.T) {
	// Property: linear and power fits pass exactly through both inputs.
	f := func(rawS, rawL uint8, y1Raw, y2Raw uint16) bool {
		s := float64(rawS%32 + 2)
		l := s * 2
		y1 := float64(y1Raw%1000 + 1)
		y2 := float64(y2Raw%1000 + 1)
		pts := []Point{{s, y1}, {l, y2}}
		lin, err := FitLinear(pts)
		if err != nil {
			return false
		}
		pow, err := FitPower(pts)
		if err != nil {
			return false
		}
		tol := 1e-6 * (y1 + y2)
		return approx(lin.Predict(s), y1, tol) && approx(lin.Predict(l), y2, tol) &&
			approx(pow.Predict(s), y1, tol) && approx(pow.Predict(l), y2, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

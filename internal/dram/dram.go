// Package dram models the off-chip memory system: a set of memory
// controllers, each a bandwidth-limited server fronting fixed-latency DRAM.
// LLC misses are routed to a controller by line address; a controller's
// queueing delay grows when its provisioned bandwidth is exceeded, which is
// how aggregate memory bandwidth — a proportionally scaled shared resource —
// shapes performance in both scale models and targets.
package dram

import (
	"fmt"

	"gpuscale/internal/bandwidth"
	"gpuscale/internal/obs"
)

// Memory is a collection of memory controllers.
type Memory struct {
	mcs     []*bandwidth.Server
	latency int64
}

// Config parameterises a Memory.
type Config struct {
	// Controllers is the number of memory controllers.
	Controllers int
	// BytesPerCyclePerMC is each controller's bandwidth in bytes/cycle.
	BytesPerCyclePerMC float64
	// Latency is the fixed DRAM access latency in cycles, added after the
	// controller's bandwidth queue.
	Latency int
}

// New constructs a Memory.
func New(cfg Config) (*Memory, error) {
	if cfg.Controllers <= 0 {
		return nil, fmt.Errorf("dram: controllers must be positive, got %d", cfg.Controllers)
	}
	if cfg.BytesPerCyclePerMC <= 0 {
		return nil, fmt.Errorf("dram: per-MC bandwidth must be positive, got %v", cfg.BytesPerCyclePerMC)
	}
	if cfg.Latency < 0 {
		return nil, fmt.Errorf("dram: latency must be non-negative, got %d", cfg.Latency)
	}
	m := &Memory{mcs: make([]*bandwidth.Server, cfg.Controllers), latency: int64(cfg.Latency)}
	for i := range m.mcs {
		m.mcs[i] = bandwidth.MustNewServer(cfg.BytesPerCyclePerMC)
	}
	return m, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Access schedules a DRAM access of bytes for line at cycle now and returns
// the cycle the data is available. Lines map to controllers by modulo
// interleaving on the line address.
func (m *Memory) Access(now int64, line uint64, bytes int) int64 {
	mc := m.mcs[int(line)%len(m.mcs)]
	return mc.Schedule(now, bytes) + m.latency
}

// Controllers returns the number of memory controllers.
func (m *Memory) Controllers() int { return len(m.mcs) }

// Latency returns the fixed DRAM latency in cycles.
func (m *Memory) Latency() int64 { return m.latency }

// TotalBytes returns the cumulative bytes served across controllers.
func (m *Memory) TotalBytes() uint64 {
	var t uint64
	for _, mc := range m.mcs {
		t += mc.TotalBytes()
	}
	return t
}

// ResetStats clears bandwidth statistics on every controller without
// touching queue state.
func (m *Memory) ResetStats() {
	for _, mc := range m.mcs {
		mc.ResetStats()
	}
}

// Utilization returns the mean controller utilisation over elapsed cycles.
func (m *Memory) Utilization(elapsed int64) float64 {
	var u float64
	for _, mc := range m.mcs {
		u += mc.Utilization(elapsed)
	}
	return u / float64(len(m.mcs))
}

// MaxBacklog returns the largest controller backlog (in cycles) at cycle
// now — how deep the worst memory-controller queue currently is.
func (m *Memory) MaxBacklog(now int64) float64 {
	var b float64
	for _, mc := range m.mcs {
		if x := mc.Backlog(now); x > b {
			b = x
		}
	}
	return b
}

// PublishObs stores the memory system's bandwidth-saturation state into the
// given metrics scope: cumulative bytes served, mean controller busy
// fraction over the elapsed measurement window, and the worst controller
// backlog at cycle now. No-op on a nil scope.
func (m *Memory) PublishObs(sc *obs.Scope, elapsed, now int64) {
	if sc == nil {
		return
	}
	sc.Counter("bytes").Store(m.TotalBytes())
	sc.Gauge("util").Set(m.Utilization(elapsed))
	sc.Gauge("max_backlog").Set(m.MaxBacklog(now))
}

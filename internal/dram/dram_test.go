package dram

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Controllers: 0, BytesPerCyclePerMC: 10}); err == nil {
		t.Error("zero controllers accepted")
	}
	if _, err := New(Config{Controllers: 2, BytesPerCyclePerMC: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(Config{Controllers: 2, BytesPerCyclePerMC: 10, Latency: -1}); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestAccessLatency(t *testing.T) {
	m := MustNew(Config{Controllers: 1, BytesPerCyclePerMC: 128, Latency: 100})
	if got := m.Access(0, 0, 128); got != 101 {
		t.Errorf("access = %d, want 101", got)
	}
}

func TestControllerInterleaving(t *testing.T) {
	m := MustNew(Config{Controllers: 4, BytesPerCyclePerMC: 128, Latency: 0})
	// Lines 0..3 map to distinct controllers: no queueing.
	for line := uint64(0); line < 4; line++ {
		if got := m.Access(0, line, 128); got != 1 {
			t.Errorf("line %d access = %d, want 1", line, got)
		}
	}
	// Same line again queues on the same controller.
	if got := m.Access(0, 0, 128); got != 2 {
		t.Errorf("repeat access = %d, want 2", got)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	m := MustNew(Config{Controllers: 2, BytesPerCyclePerMC: 64, Latency: 50})
	var last int64
	for i := 0; i < 100; i++ {
		last = m.Access(0, uint64(i), 128)
	}
	// 100 accesses * 128 B over 2 MCs at 64 B/c each: ≈100 cycles of
	// queueing plus the 50-cycle latency.
	if last < 140 {
		t.Errorf("saturated access = %d, want ≥140", last)
	}
}

func TestStats(t *testing.T) {
	m := MustNew(Config{Controllers: 2, BytesPerCyclePerMC: 128, Latency: 10})
	m.Access(0, 0, 128)
	m.Access(0, 1, 128)
	if m.TotalBytes() != 256 {
		t.Errorf("TotalBytes = %d, want 256", m.TotalBytes())
	}
	if m.Controllers() != 2 || m.Latency() != 10 {
		t.Error("accessors wrong")
	}
	if u := m.Utilization(1); u != 1 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestAccessAfterLatencyProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		m := MustNew(Config{Controllers: 3, BytesPerCyclePerMC: 32, Latency: 25})
		now := int64(0)
		for _, l := range lines {
			now++
			if d := m.Access(now, uint64(l), 128); d < now+25 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

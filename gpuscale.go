// Package gpuscale is a Go implementation of GPU scale-model simulation
// (SeyyedAghaei, Naderan-Tahan, Eeckhout — HPCA 2024): predicting the
// performance of large GPU systems from simulations of much smaller,
// proportionally scaled-down "scale models", without ever simulating the
// target.
//
// The library bundles everything the methodology needs:
//
//   - a cycle-level GPU timing simulator (SMs with GTO warp scheduling,
//     private L1s with MSHRs, a crossbar NoC, a sliced shared LLC and
//     bandwidth-limited memory controllers), playing the role Accel-Sim
//     plays in the paper;
//   - a multi-chip-module (MCM) GPU simulator with first-touch page
//     placement and an inter-chiplet network;
//   - miss-rate-curve collection, both by fast functional simulation and by
//     the classic single-pass stack-distance algorithm;
//   - the scale-model prediction model itself (correction factor,
//     pre-cliff / cliff / post-cliff regions, strong and weak scaling);
//   - the baseline extrapolations the paper compares against (proportional,
//     linear, power-law and logarithmic regression);
//   - the 21-benchmark strong-scaling suite and 6-family weak-scaling suite
//     of the paper's Tables II and IV, as synthetic workload generators;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// # Quickstart
//
// Simulate a workload on two scale models, collect its miss-rate curve, and
// predict a 128-SM target:
//
//	ctx := context.Background()
//	bench, _ := gpuscale.BenchmarkByName("dct")
//	base := gpuscale.Baseline128()
//	small, _ := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, 8), bench.Workload)
//	large, _ := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, 16), bench.Workload)
//	curve, _ := gpuscale.MissRateCurve(bench.Workload, gpuscale.StandardConfigs())
//	preds, _ := gpuscale.Predict(gpuscale.PredictionInput{
//		Sizes:     []float64{8, 16, 32, 64, 128},
//		SmallIPC:  small.IPC,
//		LargeIPC:  large.IPC,
//		MPKI:      curve.MPKIs(),
//		FMemLarge: large.FMem,
//		Mode:      gpuscale.StrongScaling,
//	})
//
// # Parallel sweeps
//
// Every experiment cell — a (workload, configuration) pair — is independent,
// so sweeps parallelise perfectly. RunJobs fans a job list across a worker
// pool with deterministic, input-ordered results, per-job panic isolation
// and optional progress reporting:
//
//	jobs := []gpuscale.Job{
//		gpuscale.NewJob(gpuscale.MustScale(base, 8), bench.Workload),
//		gpuscale.NewJob(gpuscale.MustScale(base, 16), bench.Workload),
//	}
//	results, _ := gpuscale.RunJobs(context.Background(), jobs, gpuscale.EngineOptions{})
//
// A parallel sweep returns bit-identical statistics to a sequential one;
// see docs/ARCHITECTURE.md for why this holds.
//
// See the examples/ directory for complete programs.
package gpuscale

import (
	"context"

	"gpuscale/internal/chiplet"
	"gpuscale/internal/config"
	"gpuscale/internal/core"
	"gpuscale/internal/engine"
	"gpuscale/internal/gpu"
	"gpuscale/internal/mrc"
	"gpuscale/internal/obs"
	"gpuscale/internal/regress"
	"gpuscale/internal/trace"
	"gpuscale/internal/uarch"
	"gpuscale/internal/workloads"
)

// Configuration types and constructors.
type (
	// SystemConfig describes a monolithic GPU (per-SM resources plus
	// proportionally scalable shared resources).
	SystemConfig = config.SystemConfig
	// ChipletConfig describes a multi-chip-module GPU.
	ChipletConfig = config.ChipletConfig
)

// Microarchitecture variants: a UarchVariant selects the warp scheduler
// ("gto", "lrr", "two-level"), L1 fill granularity ("line", "sectored"),
// NoC routing discipline ("xbar", "bufferless-deflect") and issue width.
// The zero value is the paper's Table III baseline. Variants change
// simulated timing, so they are part of a configuration's identity — the
// wire API hashes them (docs/UARCH.md).
type UarchVariant = uarch.Variant

// Variant enum values, re-exported for literal construction.
const (
	SchedGTO      = uarch.SchedGTO
	SchedLRR      = uarch.SchedLRR
	SchedTwoLevel = uarch.SchedTwoLevel
	L1Line        = uarch.L1Line
	L1Sectored    = uarch.L1Sectored
	RouteXbar     = uarch.RouteXbar
	RouteDeflect  = uarch.RouteDeflect
)

// ParseUarch parses a comma-separated variant spec such as
// "two-level,sectored,iw=2" (see docs/UARCH.md for the token grammar).
func ParseUarch(s string) (UarchVariant, error) { return uarch.ParseVariant(s) }

// Baseline128 returns the paper's Table III 128-SM baseline target system.
func Baseline128() SystemConfig { return config.Baseline128() }

// Scale derives a proportionally scaled configuration (Table I): per-SM
// resources unchanged, shared resources scaled by numSMs/base.NumSMs.
func Scale(base SystemConfig, numSMs int) (SystemConfig, error) {
	return config.Scale(base, numSMs)
}

// MustScale is Scale but panics on error.
func MustScale(base SystemConfig, numSMs int) SystemConfig {
	return config.MustScale(base, numSMs)
}

// StandardConfigs returns the five paper configurations (8, 16, 32, 64 and
// 128 SMs), smallest first.
func StandardConfigs() []SystemConfig { return config.StandardConfigs() }

// Target16Chiplet returns the paper's Table V 16-chiplet MCM target.
func Target16Chiplet() ChipletConfig { return config.Target16Chiplet() }

// ScaleChiplets derives an MCM configuration with a different chiplet count.
func ScaleChiplets(base ChipletConfig, numChiplets int) (ChipletConfig, error) {
	return config.ScaleChiplets(base, numChiplets)
}

// Workload types: implement Workload to simulate your own kernels, or use
// the built-in benchmark suite.
type (
	// Workload is a GPU kernel grid whose warps can be instantiated on
	// demand.
	Workload = trace.Workload
	// KernelSpec is a workload's launch geometry.
	KernelSpec = trace.KernelSpec
	// Program is one warp's instruction stream.
	Program = trace.Program
	// Instr is one dynamic warp instruction.
	Instr = trace.Instr
	// Phase is a building block for PhaseProgram-based workloads.
	Phase = trace.Phase
	// FuncWorkload adapts plain functions into a Workload.
	FuncWorkload = trace.FuncWorkload
)

// NewPhaseProgram builds a warp program from phases; see the trace package
// generators (SeqGen, RandGen, InterleaveGen) for address patterns.
func NewPhaseProgram(phases ...Phase) Program { return trace.NewPhaseProgram(phases...) }

// Simulation.
type (
	// SimStats is the result of a monolithic-GPU simulation.
	SimStats = gpu.Stats
	// SimOptions is the struct form of the simulation options, kept for
	// Job.Options and the WithOptions bridge. New code should prefer the
	// SimOption functional options on SimulateContext.
	SimOptions = gpu.Options
	// MCMStats is the result of a multi-chiplet simulation.
	MCMStats = chiplet.Stats
)

// Observability: attach an Observer to a simulation (WithObserver) or a
// sweep and it collects a metrics registry (per-component counters, gauges,
// latency histograms), a cycle-stamped Chrome trace_event log, and interval
// samples of occupancy / queue depth / bandwidth utilisation. A nil
// *Observer disables everything at zero cost. One Observer is safe to share
// across a parallel sweep; each simulation gets its own trace stream.
type (
	// Observer records metrics, trace events and interval samples from the
	// simulations it is attached to. Use NewObserver; serialise with its
	// WriteTrace (Chrome trace_event JSON, loadable in chrome://tracing or
	// https://ui.perfetto.dev), WriteJSONL and WriteMetrics methods.
	Observer = obs.Recorder
	// ObserverOption configures NewObserver.
	ObserverOption = obs.Option
)

// NewObserver returns an enabled Observer.
func NewObserver(opts ...ObserverOption) *Observer { return obs.New(opts...) }

// ObserverSampleEvery sets the observer's default sampling interval in
// simulated cycles (overridable per run with WithSampleInterval).
func ObserverSampleEvery(cycles int64) ObserverOption { return obs.SampleEvery(cycles) }

// ObserverMaxEvents caps the observer's in-memory trace buffer; further
// events are dropped and counted.
func ObserverMaxEvents(n int) ObserverOption { return obs.MaxEvents(n) }

// SimOption is a functional option for SimulateContext and friends.
type SimOption func(*SimOptions)

// WithMaxCycles aborts the simulation with an error if it exceeds n cycles;
// zero means no limit.
func WithMaxCycles(n int64) SimOption {
	return func(o *SimOptions) { o.MaxCycles = n }
}

// WithWarmupInstructions discards statistics gathered before n instructions
// have issued, so the reported SimStats reflect steady state only.
func WithWarmupInstructions(n uint64) SimOption {
	return func(o *SimOptions) { o.WarmupInstructions = n }
}

// WithEventSkip enables or disables event-skip fast-forwarding (enabled by
// default; results are identical either way, only host time differs).
func WithEventSkip(enabled bool) SimOption {
	return func(o *SimOptions) { o.DisableEventSkip = !enabled }
}

// WithObserver attaches an Observer to the simulation. A nil observer is
// allowed and means "don't observe" (the hooks cost nothing).
func WithObserver(rec *Observer) SimOption {
	return func(o *SimOptions) { o.Recorder = rec }
}

// WithSampleInterval sets the observer's sampling cadence for this run, in
// simulated cycles; it has no effect without WithObserver.
func WithSampleInterval(cycles int64) SimOption {
	return func(o *SimOptions) { o.SampleEvery = cycles }
}

// WithOptions applies a whole SimOptions struct, bridging legacy
// struct-based call sites onto the functional-options API. Later options
// override its fields.
func WithOptions(opt SimOptions) SimOption {
	return func(o *SimOptions) { *o = opt }
}

// WithShards runs the simulation on n parallel shard goroutines — the
// simulated units (SMs on a monolithic GPU, chiplets on an MCM) split into
// n contiguous groups synchronised at a deterministic cycle barrier —
// returning statistics bit-identical to the sequential run (see
// docs/PARALLELISM.md for the execution model and why determinism
// survives). 0 or 1 means sequential; n above the unit count is clamped
// to it.
func WithShards(n int) SimOption {
	return func(o *SimOptions) { o.Shards = n }
}

// WithQuantum relaxes the sharded run's per-cycle barrier: shards
// deterministically compute a safe window — the minimum number of cycles
// until any of their warps can next touch the shared memory path — and run
// up to q cycles inside it without synchronising, still bit-identical to
// the sequential run (docs/PARALLELISM.md explains the safety argument).
// 0 disables relaxation (barrier every cycle); it has no effect without
// WithShards(n>1). Large values are clamped to an internal maximum.
func WithQuantum(q int) SimOption {
	return func(o *SimOptions) { o.Quantum = q }
}

// WithUarch selects the microarchitecture variant for this run, overriding
// a zero cfg.Uarch (setting both to different values is an error). The zero
// variant defers entirely to the configuration. Applies to monolithic and
// MCM simulations alike.
func WithUarch(v UarchVariant) SimOption {
	return func(o *SimOptions) { o.Uarch = v }
}

// SimulateContext runs workload w to completion on cfg and returns its
// statistics (IPC, f_mem, MPKI, utilisations, …). It is the blessed
// simulation entry point: cancelling ctx aborts the run loop within a few
// thousand iterations, and functional options select everything else
// (cycle limits, warm-up, observability).
func SimulateContext(ctx context.Context, cfg SystemConfig, w Workload, opts ...SimOption) (SimStats, error) {
	return SimulateSequenceContext(ctx, cfg, []Workload{w}, opts...)
}

// SimulateSequenceContext is SimulateContext over several kernels executed
// back to back (grid barriers between kernels, caches persisting across
// them), as multi-kernel GPU applications do.
func SimulateSequenceContext(ctx context.Context, cfg SystemConfig, kernels []Workload, opts ...SimOption) (SimStats, error) {
	var o SimOptions
	for _, fn := range opts {
		fn(&o)
	}
	sim, err := gpu.NewSequence(cfg, kernels, o)
	if err != nil {
		return SimStats{}, err
	}
	return sim.RunContext(ctx)
}

// SimulateMCMContext is SimulateContext on a multi-chiplet GPU. MCM runs
// honour WithMaxCycles, WithObserver, WithSampleInterval, WithShards and
// WithQuantum; the remaining options do not apply to the chiplet model and
// are ignored.
func SimulateMCMContext(ctx context.Context, cfg ChipletConfig, w Workload, opts ...SimOption) (MCMStats, error) {
	var o SimOptions
	for _, fn := range opts {
		fn(&o)
	}
	sim, err := chiplet.New(cfg, w, chiplet.Options{
		MaxCycles:   o.MaxCycles,
		Recorder:    o.Recorder,
		SampleEvery: o.SampleEvery,
		Shards:      o.Shards,
		Quantum:     o.Quantum,
		Uarch:       o.Uarch,
	})
	if err != nil {
		return MCMStats{}, err
	}
	return sim.RunContext(ctx)
}

// Simulate runs workload w to completion on cfg.
//
// Deprecated: Use SimulateContext, which adds cancellation and functional
// options. Simulate(cfg, w) is SimulateContext(context.Background(), cfg, w).
func Simulate(cfg SystemConfig, w Workload) (SimStats, error) {
	return SimulateContext(context.Background(), cfg, w)
}

// SimulateWithOptions is Simulate with explicit struct options.
//
// Deprecated: Use SimulateContext with functional options, or bridge an
// existing SimOptions with WithOptions(opt).
func SimulateWithOptions(cfg SystemConfig, w Workload, opt SimOptions) (SimStats, error) {
	return SimulateContext(context.Background(), cfg, w, WithOptions(opt))
}

// SimulateSequence runs several kernels back to back.
//
// Deprecated: Use SimulateSequenceContext.
func SimulateSequence(cfg SystemConfig, kernels []Workload) (SimStats, error) {
	return SimulateSequenceContext(context.Background(), cfg, kernels)
}

// SimulateMCM runs workload w on a multi-chiplet GPU.
//
// Deprecated: Use SimulateMCMContext.
func SimulateMCM(cfg ChipletConfig, w Workload) (MCMStats, error) {
	return SimulateMCMContext(context.Background(), cfg, w)
}

// Parallel experiment engine: fan independent simulation jobs across a
// worker pool with deterministic result ordering.
type (
	// Job is one simulation cell for RunJobs: a kernel sequence on one
	// system configuration.
	Job = engine.Job
	// JobResult is one Job's outcome, in job order.
	JobResult = engine.Result
	// EngineOptions tunes a RunJobs sweep (worker count, progress).
	EngineOptions = engine.Options
	// EngineProgress is the snapshot passed to the progress callback.
	EngineProgress = engine.Progress
)

// NewJob builds a single-kernel Job.
func NewJob(cfg SystemConfig, w Workload) Job { return engine.NewJob(cfg, w) }

// RunJobs executes jobs on a worker pool (default: all CPUs) and returns
// one result per job, in job order regardless of completion order. A
// failing or panicking simulation surfaces in its own JobResult.Err without
// aborting the sweep; the returned error is non-nil only when ctx is
// cancelled. Parallel sweeps return statistics bit-identical to sequential
// ones.
func RunJobs(ctx context.Context, jobs []Job, opt EngineOptions) ([]JobResult, error) {
	return engine.Run(ctx, jobs, opt)
}

// Miss-rate curves.
type (
	// Curve is a miss-rate curve: MPKI versus LLC capacity.
	Curve = mrc.Curve
	// CurvePoint is one sample of a Curve.
	CurvePoint = mrc.Point
)

// MissRateCurve computes w's miss-rate curve by functional simulation (no
// timing) across the given configurations — the fast path of the paper's
// Figure 3 workflow.
func MissRateCurve(w Workload, cfgs []SystemConfig) (Curve, error) {
	return mrc.FunctionalSweep(w, cfgs)
}

// MissRateCurveParallel is MissRateCurve with the per-configuration replays
// fanned across workers goroutines (<= 0 means all CPUs). The curve is
// identical to the sequential one.
func MissRateCurveParallel(w Workload, cfgs []SystemConfig, workers int) (Curve, error) {
	return mrc.FunctionalSweepParallel(w, cfgs, workers)
}

// StackDistanceCurve computes a fully-associative miss-rate curve with the
// single-pass reuse-distance algorithm at arbitrary capacities.
func StackDistanceCurve(w Workload, lineSize int, capacities []int64) (Curve, error) {
	return mrc.StackDistanceCurve(w, lineSize, capacities)
}

// Prediction — the paper's contribution.
type (
	// PredictionInput bundles the scale-model measurements and miss-rate
	// curve the predictor consumes.
	PredictionInput = core.Input
	// Prediction is the predicted IPC for one target size.
	Prediction = core.Prediction
	// ScalingMode selects strong or weak scaling.
	ScalingMode = core.ScalingMode
	// Region classifies a prediction against the miss-rate curve.
	Region = core.Region
)

// Scaling modes and regions.
const (
	StrongScaling = core.StrongScaling
	WeakScaling   = core.WeakScaling
	PreCliff      = core.PreCliff
	CliffRegion   = core.Cliff
	PostCliff     = core.PostCliff
)

// Predict runs scale-model prediction for every target size in the input.
func Predict(in PredictionInput) ([]Prediction, error) { return core.Predict(in) }

// PredictAt predicts one specific target size.
func PredictAt(in PredictionInput, target float64) (Prediction, error) {
	return core.PredictAt(in, target)
}

// CorrectionFactor returns C (Eq. 1): measured scale-model scaling divided
// by ideal proportional scaling.
func CorrectionFactor(smallSize, smallIPC, largeSize, largeIPC float64) float64 {
	return core.CorrectionFactor(smallSize, smallIPC, largeSize, largeIPC)
}

// DetectCliff scans a miss-rate curve (MPKI per doubling capacity) for a
// cliff; pass 0, 0 for the paper's default thresholds.
func DetectCliff(mpki []float64, ratio, minMPKI float64) (int, bool) {
	return core.DetectCliff(mpki, ratio, minMPKI)
}

// Baseline extrapolations.
type (
	// RegressionModel is a fitted baseline extrapolation.
	RegressionModel = regress.Model
	// RegressionPoint is a (size, IPC) observation.
	RegressionPoint = regress.Point
)

// FitBaselines fits the paper's four baselines (logarithmic, proportional,
// linear, power-law) on scale-model observations, keyed by name.
func FitBaselines(points []RegressionPoint) (map[string]RegressionModel, error) {
	return regress.FitAll(points)
}

// Benchmark suite.
type (
	// Benchmark is one Table II strong-scaling benchmark.
	Benchmark = workloads.Benchmark
	// WeakBenchmark is one Table IV weak-scaling family.
	WeakBenchmark = workloads.WeakBenchmark
	// ScalingClass is linear, sub-linear or super-linear.
	ScalingClass = workloads.ScalingClass
)

// Benchmarks returns the 21 strong-scaling benchmarks of Table II.
func Benchmarks() []Benchmark { return workloads.All() }

// BenchmarkByName returns one strong-scaling benchmark by abbreviation.
func BenchmarkByName(name string) (Benchmark, error) { return workloads.ByName(name) }

// WeakBenchmarks returns the six weak-scaling families of Table IV.
func WeakBenchmarks() []WeakBenchmark { return workloads.WeakAll() }

// WeakBenchmarkByName returns one weak-scaling family by name.
func WeakBenchmarkByName(name string) (WeakBenchmark, error) {
	return workloads.WeakByName(name)
}

package gpuscale_test

// Pins every deprecated simulation wrapper to its context-aware twin. This
// file is the only sanctioned caller of the deprecated entry points
// outside gpuscale.go itself — `make deprecated-gate` scans everything
// else (commands, examples, internal packages, the other facade tests)
// and fails on any use.

import (
	"context"
	"testing"

	"gpuscale"
)

func TestDeprecatedWrappersMatchContextAPI(t *testing.T) {
	ctx := context.Background()
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)

	st, err := gpuscale.SimulateContext(ctx, cfg, smallLinear("dep-sim"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := gpuscale.Simulate(cfg, smallLinear("dep-sim")); err != nil || got != st {
		t.Errorf("Simulate diverged from SimulateContext (err %v)", err)
	}
	if got, err := gpuscale.SimulateWithOptions(cfg, smallLinear("dep-sim"), gpuscale.SimOptions{}); err != nil || got != st {
		t.Errorf("SimulateWithOptions diverged from SimulateContext (err %v)", err)
	}

	kernels := []gpuscale.Workload{smallLinear("dep-seq-a"), smallLinear("dep-seq-b")}
	seq, err := gpuscale.SimulateSequenceContext(ctx, cfg, kernels)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := gpuscale.SimulateSequence(cfg, kernels); err != nil || got != seq {
		t.Errorf("SimulateSequence diverged from SimulateSequenceContext (err %v)", err)
	}

	mcmBase := gpuscale.Target16Chiplet()
	mcmBase.Chiplet.NumSMs = 4
	mcmCfg, err := gpuscale.ScaleChiplets(mcmBase, 2)
	if err != nil {
		t.Fatal(err)
	}
	mcm, err := gpuscale.SimulateMCMContext(ctx, mcmCfg, smallLinear("dep-mcm"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := gpuscale.SimulateMCM(mcmCfg, smallLinear("dep-mcm")); err != nil || got != mcm {
		t.Errorf("SimulateMCM diverged from SimulateMCMContext (err %v)", err)
	}
}

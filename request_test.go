package gpuscale_test

import (
	"strings"
	"testing"

	"gpuscale"
)

func simRequest() gpuscale.Request {
	return gpuscale.Request{
		Op:       gpuscale.OpSimulate,
		Target:   gpuscale.TargetSpec{SMs: 8},
		Workload: gpuscale.WorkloadSpec{Bench: "dct"},
	}
}

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*gpuscale.Request)
		wantErr string // "" = valid
	}{
		{"simulate ok", func(r *gpuscale.Request) {}, ""},
		{"version 1 ok", func(r *gpuscale.Request) { r.Version = gpuscale.RequestVersion }, ""},
		{"future version", func(r *gpuscale.Request) { r.Version = 99 }, "unsupported request version"},
		{"no op", func(r *gpuscale.Request) { r.Op = "" }, "no op"},
		{"unknown op", func(r *gpuscale.Request) { r.Op = "forecast" }, "unknown op"},
		{"no bench", func(r *gpuscale.Request) { r.Workload.Bench = "" }, "no benchmark"},
		{"unknown bench", func(r *gpuscale.Request) { r.Workload.Bench = "zzz" }, "unknown benchmark"},
		{"both targets", func(r *gpuscale.Request) { r.Target.Chiplets = 4 }, "both sms and chiplets"},
		{"neither target", func(r *gpuscale.Request) { r.Target.SMs = 0 }, "neither sms nor chiplets"},
		{"negative target", func(r *gpuscale.Request) { r.Target.SMs = -8 }, "negative target"},
		{"negative max_cycles", func(r *gpuscale.Request) { r.Options.MaxCycles = -1 }, "negative max_cycles"},
		{"negative shards", func(r *gpuscale.Request) { r.Options.Shards = -1 }, "negative shards"},
		{"negative quantum", func(r *gpuscale.Request) { r.Options.Quantum = -1 }, "negative quantum"},
		{"mcm simulate ok", func(r *gpuscale.Request) {
			r.Target = gpuscale.TargetSpec{Chiplets: 4}
			r.Workload = gpuscale.WorkloadSpec{Bench: "va", Weak: true}
		}, ""},
		{"mcm warmup", func(r *gpuscale.Request) {
			r.Target = gpuscale.TargetSpec{Chiplets: 4}
			r.Options.WarmupInstructions = 100
		}, "warmup_instructions is not supported on MCM"},
		{"predict ok", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpPredict
			r.Target = gpuscale.TargetSpec{}
		}, ""},
		{"predict with sms", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpPredict
		}, "leave target.sms unset"},
		{"predict mcm ok", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpPredict
			r.Target = gpuscale.TargetSpec{Chiplets: 16}
			r.Workload = gpuscale.WorkloadSpec{Bench: "va", Weak: true}
		}, ""},
		{"predict mcm wrong size", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpPredict
			r.Target = gpuscale.TargetSpec{Chiplets: 8}
			r.Workload = gpuscale.WorkloadSpec{Bench: "va", Weak: true}
		}, "only the 16-chiplet target"},
		{"predict mcm strong", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpPredict
			r.Target = gpuscale.TargetSpec{Chiplets: 16}
		}, "requires a weak-scaling family"},
		{"predict with max_cycles", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpPredict
			r.Target = gpuscale.TargetSpec{}
			r.Options.MaxCycles = 100
		}, "do not apply to predict"},
		{"mrc ok", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpMRC
			r.Target = gpuscale.TargetSpec{}
		}, ""},
		{"mrc with target", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpMRC
		}, "leave target unset"},
		{"mrc weak", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpMRC
			r.Target = gpuscale.TargetSpec{}
			r.Workload = gpuscale.WorkloadSpec{Bench: "va", Weak: true}
		}, "strong-scaling benchmarks only"},
		{"mrc with warmup", func(r *gpuscale.Request) {
			r.Op = gpuscale.OpMRC
			r.Target = gpuscale.TargetSpec{}
			r.Options.WarmupInstructions = 5
		}, "do not apply to mrc"},
	}
	for _, tc := range cases {
		r := simRequest()
		tc.mutate(&r)
		err := r.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestCanonicalizeEquivalences(t *testing.T) {
	base := simRequest()
	canon, hash, err := gpuscale.Canonicalize(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(hash) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", hash)
	}

	// Version 0 ("current") and the explicit current version hash the same.
	v1 := base
	v1.Version = gpuscale.RequestVersion
	if _, h, err := gpuscale.Canonicalize(v1); err != nil || h != hash {
		t.Errorf("explicit version changed the hash: %v %v", h == hash, err)
	}

	// Shards is result-invariant and must be stripped from the canonical form.
	sharded := base
	sharded.Options.Shards = 8
	cs, h, err := gpuscale.Canonicalize(sharded)
	if err != nil || h != hash {
		t.Errorf("shards changed the hash: %v %v", h == hash, err)
	}
	if string(cs) != string(canon) {
		t.Errorf("shards changed the canonical bytes:\n%s\n%s", cs, canon)
	}
	if strings.Contains(string(canon), "shards") {
		t.Errorf("canonical form leaks shards: %s", canon)
	}

	// JSON field order does not matter: a reordered spelling parses and
	// canonicalises to the same bytes.
	reordered := []byte(`{"workload":{"bench":"dct"},"target":{"sms":8},"op":"simulate","version":0}`)
	pr, err := gpuscale.ParseRequest(reordered)
	if err != nil {
		t.Fatal(err)
	}
	if _, h, err := gpuscale.Canonicalize(pr); err != nil || h != hash {
		t.Errorf("field order changed the hash: %v %v", h == hash, err)
	}

	// A semantically different request must hash differently.
	other := base
	other.Target.SMs = 16
	if _, h, _ := gpuscale.Canonicalize(other); h == hash {
		t.Error("different target produced the same hash")
	}
	warm := base
	warm.Options.WarmupInstructions = 1000
	if _, h, _ := gpuscale.Canonicalize(warm); h == hash {
		t.Error("warmup_instructions did not change the hash")
	}

	// Canonicalize refuses invalid requests.
	bad := base
	bad.Workload.Bench = ""
	if _, _, err := gpuscale.Canonicalize(bad); err == nil {
		t.Error("canonicalised an invalid request")
	}
}

// TestCanonicalizeStripsShardingOptions pins the daemon cache-key
// stability contract for the monolithic simulator's sharding knobs: a
// simulate request with any combination of shards and quantum set must
// canonicalise to the same bytes and hash as one with neither, because
// both options are bit-identity-preserving host execution strategy
// (docs/PARALLELISM.md) and must never fragment the cache key space.
func TestCanonicalizeStripsShardingOptions(t *testing.T) {
	base := simRequest() // monolithic: target.sms = 8
	canon, hash, err := gpuscale.Canonicalize(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []gpuscale.RequestOptions{
		{Shards: 4},
		{Quantum: 256},
		{Shards: 4, Quantum: 256},
	} {
		r := base
		r.Options.Shards = opt.Shards
		r.Options.Quantum = opt.Quantum
		cs, h, err := gpuscale.Canonicalize(r)
		if err != nil {
			t.Fatalf("shards=%d quantum=%d: %v", opt.Shards, opt.Quantum, err)
		}
		if h != hash {
			t.Errorf("shards=%d quantum=%d changed the hash", opt.Shards, opt.Quantum)
		}
		if string(cs) != string(canon) {
			t.Errorf("shards=%d quantum=%d changed the canonical bytes:\n%s\n%s",
				opt.Shards, opt.Quantum, cs, canon)
		}
	}
	for _, leak := range []string{"shards", "quantum"} {
		if strings.Contains(string(canon), leak) {
			t.Errorf("canonical form leaks %s: %s", leak, canon)
		}
	}

	// The stripped options still reach the simulator via ResolveSimulation
	// (server policy may override them, but the request's spelling works).
	r := base
	r.Options.Shards = 4
	r.Options.Quantum = 256
	tgt, err := r.ResolveSimulation()
	if err != nil {
		t.Fatal(err)
	}
	var o gpuscale.SimOptions
	for _, fn := range tgt.Options {
		fn(&o)
	}
	if o.Shards != 4 || o.Quantum != 256 {
		t.Errorf("resolved options %+v, want Shards=4 Quantum=256", o)
	}
}

// TestCanonicalizeStripsTier pins the tier half of the cache-key
// contract: the tier routes a predict request between serving tiers but
// can never change what the cycle response contains, so every tier
// spelling must canonicalise to the same bytes and hash as a tierless
// request — and the analytic tier's own cache entries must live under a
// distinct derived key so they can never shadow a cycle response.
func TestCanonicalizeStripsTier(t *testing.T) {
	base := gpuscale.Request{
		Op:       gpuscale.OpPredict,
		Workload: gpuscale.WorkloadSpec{Bench: "dct"},
	}
	canon, hash, err := gpuscale.Canonicalize(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range []string{gpuscale.TierCycle, gpuscale.TierAnalytic, gpuscale.TierAuto} {
		r := base
		r.Options.Tier = tier
		cs, h, err := gpuscale.Canonicalize(r)
		if err != nil {
			t.Fatalf("tier=%s: %v", tier, err)
		}
		if h != hash {
			t.Errorf("tier=%s changed the hash", tier)
		}
		if string(cs) != string(canon) {
			t.Errorf("tier=%s changed the canonical bytes:\n%s\n%s", tier, cs, canon)
		}
	}
	if strings.Contains(string(canon), "tier") {
		t.Errorf("canonical form leaks tier: %s", canon)
	}

	akey := gpuscale.AnalyticCacheKey(hash)
	if akey == hash {
		t.Error("analytic cache key collides with the canonical hash")
	}
	if len(akey) != len(hash) {
		t.Errorf("analytic cache key %q is not hash-shaped", akey)
	}
	if gpuscale.AnalyticCacheKey(hash) != akey {
		t.Error("analytic cache key is not deterministic")
	}

	// Tiers are predict-only on the wire; a simulate request must reject
	// them instead of silently fragmenting the cache key space.
	sim := simRequest()
	sim.Options.Tier = gpuscale.TierAnalytic
	if err := sim.Validate(); err == nil {
		t.Error("simulate request accepted an analytic tier")
	}
	bad := base
	bad.Options.Tier = "warp-speed"
	if err := bad.Validate(); err == nil {
		t.Error("unknown tier validated")
	}
}

func TestParseRequestStrict(t *testing.T) {
	if _, err := gpuscale.ParseRequest([]byte(`{"op":"simulate","tarrget":{"sms":8}}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := gpuscale.ParseRequest([]byte(`{"op":"simulate"}{"op":"mrc"}`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := gpuscale.ParseRequest([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	r, err := gpuscale.ParseRequest([]byte(`{"op":"predict","workload":{"bench":"ht"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.Op != gpuscale.OpPredict || r.Workload.Bench != "ht" {
		t.Errorf("parsed %+v", r)
	}
}

func TestResolveSimulation(t *testing.T) {
	// Monolithic: scaled config, workload, warmup option.
	r := simRequest()
	r.Options.WarmupInstructions = 500
	tgt, err := r.ResolveSimulation()
	if err != nil {
		t.Fatal(err)
	}
	if tgt.System == nil || tgt.MCM != nil {
		t.Fatal("monolithic request resolved to MCM")
	}
	if tgt.System.NumSMs != 8 {
		t.Errorf("NumSMs = %d", tgt.System.NumSMs)
	}
	if tgt.Workload == nil || len(tgt.Options) != 1 {
		t.Errorf("workload %v, %d options", tgt.Workload, len(tgt.Options))
	}

	// MCM: chiplet config sized from the 16-chiplet building block.
	m := gpuscale.Request{
		Op:       gpuscale.OpSimulate,
		Target:   gpuscale.TargetSpec{Chiplets: 4},
		Workload: gpuscale.WorkloadSpec{Bench: "va", Weak: true},
		Options:  gpuscale.RequestOptions{Shards: 2},
	}
	mt, err := m.ResolveSimulation()
	if err != nil {
		t.Fatal(err)
	}
	if mt.MCM == nil || mt.System != nil {
		t.Fatal("MCM request resolved to monolithic")
	}
	if mt.MCM.NumChiplets != 4 {
		t.Errorf("NumChiplets = %d", mt.MCM.NumChiplets)
	}
	if len(mt.Options) != 1 {
		t.Errorf("%d options, want 1 (shards)", len(mt.Options))
	}

	// Non-simulate ops refuse to resolve.
	p := gpuscale.Request{Op: gpuscale.OpPredict, Workload: gpuscale.WorkloadSpec{Bench: "dct"}}
	if _, err := p.ResolveSimulation(); err == nil {
		t.Error("ResolveSimulation accepted a predict request")
	}
}

// TestCanonicalizeKeepsUarch pins the hash semantics of the
// microarchitecture variant: unlike Shards/Quantum/Tier it changes
// simulated timing, so it stays in the canonical form. Legacy requests
// (no uarch field) must keep their exact pre-variant hashes — the literal
// digests below were recorded before options.uarch existed — and an
// explicitly-spelled default variant must collapse onto them.
func TestCanonicalizeKeepsUarch(t *testing.T) {
	legacy := []struct {
		name string
		r    gpuscale.Request
		hash string
	}{
		{
			"simulate/16sm/dct",
			gpuscale.Request{Op: gpuscale.OpSimulate, Target: gpuscale.TargetSpec{SMs: 16}, Workload: gpuscale.WorkloadSpec{Bench: "dct"}},
			"cfd45fc36b520efb3a28cbb9e5aaaf1cadaea142951b38e52b88ca21991a2a35",
		},
		{
			"predict/bfs",
			gpuscale.Request{Op: gpuscale.OpPredict, Workload: gpuscale.WorkloadSpec{Bench: "bfs"}, Options: gpuscale.RequestOptions{Shards: 4, Tier: gpuscale.TierAuto}},
			"9946f4187df8df4624d488a4858b13f8cb4e4eca73e5ab88b64962980cd399ed",
		},
		{
			"mrc/pf",
			gpuscale.Request{Op: gpuscale.OpMRC, Workload: gpuscale.WorkloadSpec{Bench: "pf"}},
			"0fa0e2547da887c4e6bddaac1cb926681af7bbc14a38c006f615439f5f48710c",
		},
	}
	for _, c := range legacy {
		_, h, err := gpuscale.Canonicalize(c.r)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if h != c.hash {
			t.Errorf("%s: legacy hash changed: got %s want %s", c.name, h, c.hash)
		}
		// Spelling the default variant out must hash identically to
		// omitting it — the canonical form normalises defaults away.
		r := c.r
		r.Options.Uarch = &gpuscale.UarchVariant{Scheduler: gpuscale.SchedGTO, L1: gpuscale.L1Line, NoC: gpuscale.RouteXbar, IssueWidth: 1}
		canon, h2, err := gpuscale.Canonicalize(r)
		if err != nil {
			t.Fatalf("%s explicit default: %v", c.name, err)
		}
		if h2 != c.hash {
			t.Errorf("%s: explicit-default variant hash %s != legacy %s\ncanon %s", c.name, h2, c.hash, canon)
		}
		// A real variant must move the hash: it selects different simulated
		// hardware and must never share the baseline's cached body.
		r.Options.Uarch = &gpuscale.UarchVariant{Scheduler: gpuscale.SchedTwoLevel}
		canon2, h3, err := gpuscale.Canonicalize(r)
		if err != nil {
			t.Fatalf("%s two-level: %v", c.name, err)
		}
		if h3 == c.hash {
			t.Errorf("%s: two-level variant hashed identically to the baseline", c.name)
		}
		if !strings.Contains(string(canon2), `"uarch":{"scheduler":"two-level"}`) {
			t.Errorf("%s: canonical form lacks the normalised variant: %s", c.name, canon2)
		}
		// Partial and fully-spelled forms of the same variant collapse.
		r.Options.Uarch = &gpuscale.UarchVariant{Scheduler: gpuscale.SchedTwoLevel, L1: gpuscale.L1Line, NoC: gpuscale.RouteXbar, IssueWidth: 1}
		_, h4, err := gpuscale.Canonicalize(r)
		if err != nil {
			t.Fatal(err)
		}
		if h4 != h3 {
			t.Errorf("%s: equivalent variant spellings hash apart: %s vs %s", c.name, h4, h3)
		}
	}
	// Distinct variants get distinct keys.
	a := simRequest()
	a.Options.Uarch = &gpuscale.UarchVariant{L1: gpuscale.L1Sectored}
	b := simRequest()
	b.Options.Uarch = &gpuscale.UarchVariant{NoC: gpuscale.RouteDeflect}
	_, ha, err := gpuscale.Canonicalize(a)
	if err != nil {
		t.Fatal(err)
	}
	_, hb, err := gpuscale.Canonicalize(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha == hb {
		t.Error("sectored and deflect variants share a cache key")
	}
	// Invalid variants fail validation before hashing.
	bad := simRequest()
	bad.Options.Uarch = &gpuscale.UarchVariant{Scheduler: "fifo"}
	if _, _, err := gpuscale.Canonicalize(bad); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

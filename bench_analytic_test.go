// Benchmark harness for the analytic latency tier: per-request cost of
// the microsecond predictor and its wall-clock speedup over the cycle
// pipeline on identical requests. TestMain merges the results into
// BENCH_hotpath.json (the analytic_vs_cycle and analytic_us_per_predict
// columns) when BENCH_HOTPATH_JSON names it — `make bench` does — so
// cmd/benchcheck can guard the tier's ≥100x contract alongside the
// hot-path throughput cells.
package gpuscale_test

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"gpuscale"
	"gpuscale/internal/server"
)

var (
	analyticMu sync.Mutex
	// analyticSpeedup is cycle-pipeline wall time over analytic per-request
	// time, per benchmark cell.
	analyticSpeedup = map[string]float64{}
	// analyticUSPerOp is the analytic tier's per-request host microseconds.
	analyticUSPerOp = map[string]float64{}
)

// TestMain merges the analytic-tier columns into the benchmark summary
// named by BENCH_HOTPATH_JSON. internal/gpu's own TestMain writes the
// hot-path cells to the same file in a separate `go test` invocation, so
// this one reads whatever is already there and only replaces its columns.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_HOTPATH_JSON"); path != "" && len(analyticSpeedup) > 0 {
		doc := map[string]json.RawMessage{}
		if buf, err := os.ReadFile(path); err == nil {
			_ = json.Unmarshal(buf, &doc)
		}
		if raw, err := json.Marshal(analyticSpeedup); err == nil {
			doc["analytic_vs_cycle"] = raw
		}
		if raw, err := json.Marshal(analyticUSPerOp); err == nil {
			doc["analytic_us_per_predict"] = raw
		}
		if buf, err := json.MarshalIndent(doc, "", "\t"); err == nil {
			_ = os.WriteFile(path, append(buf, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

// analyticBenchCases are the cells the analytic_vs_cycle column tracks:
// ht is the cheapest cycle predict (random-access, no cliff), bfs the
// representative sub-linear case. Both stay cheap enough for benchcheck
// to re-run the cycle pipeline once per fresh run.
var analyticBenchCases = []string{"ht", "bfs"}

// BenchmarkAnalyticPredict measures gpuscale.PredictAnalytic per request
// and, once per cell, the full cycle pipeline (server.EvalLocal) on the
// same canonical request, reporting the speedup the tier exists to
// provide. The per-op metric comes from a fixed-size timed loop so it
// stays stable under `-benchtime 1x`.
func BenchmarkAnalyticPredict(b *testing.B) {
	for _, bench := range analyticBenchCases {
		b.Run(bench, func(b *testing.B) {
			req := gpuscale.Request{
				Op:       gpuscale.OpPredict,
				Workload: gpuscale.WorkloadSpec{Bench: bench},
			}
			// Warm the feature cache: steady-state requests never pay
			// extraction again (features memoise by workload name).
			if _, err := gpuscale.PredictAnalytic(req); err != nil {
				b.Fatal(err)
			}
			const reps = 256
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if _, err := gpuscale.PredictAnalytic(req); err != nil {
					b.Fatal(err)
				}
			}
			perOp := time.Since(t0) / reps

			t0 = time.Now()
			if _, _, err := server.EvalLocal(context.Background(), req, 0, 0); err != nil {
				b.Fatal(err)
			}
			cycle := time.Since(t0)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gpuscale.PredictAnalytic(req); err != nil {
					b.Fatal(err)
				}
			}
			us := float64(perOp.Nanoseconds()) / 1e3
			speedup := float64(cycle) / float64(perOp)
			b.ReportMetric(us, "analytic_us/req")
			b.ReportMetric(speedup, "vs_cycle_x")
			analyticMu.Lock()
			analyticUSPerOp[bench] = us
			analyticSpeedup[bench] = speedup
			analyticMu.Unlock()
		})
	}
}

// TestAnalyticPredictLatency pins the tier's serving contract: a warm
// analytic predict answers in well under a millisecond and its allocation
// count is a small steady-state constant (the response assembly), not
// something that grows per request — the feature cache absorbs the only
// unbounded work.
func TestAnalyticPredictLatency(t *testing.T) {
	req := gpuscale.Request{
		Op:       gpuscale.OpPredict,
		Workload: gpuscale.WorkloadSpec{Bench: "ht"},
	}
	if _, err := gpuscale.PredictAnalytic(req); err != nil {
		t.Fatal(err)
	}
	const reps = 64
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := gpuscale.PredictAnalytic(req); err != nil {
			t.Fatal(err)
		}
	}
	if perOp := time.Since(start) / reps; perOp > time.Millisecond {
		t.Errorf("warm analytic predict took %v per request, want < 1ms", perOp)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := gpuscale.PredictAnalytic(req); err != nil {
			t.Fatal(err)
		}
	})
	// The bound is loose on purpose: it catches a per-request cache or
	// feature re-extraction sneaking in (thousands of allocations), not
	// ordinary response assembly.
	if allocs > 1000 {
		t.Errorf("warm analytic predict allocates %.0f times per request, want bounded steady state", allocs)
	}
}

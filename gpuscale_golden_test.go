package gpuscale_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"gpuscale"
)

// -update regenerates testdata/golden_stats.json from the current
// simulator. Run it ONLY when a simulation-visible change is intended and
// reviewed; the whole point of the file is that hot-path optimisations must
// NOT change it.
var updateGolden = flag.Bool("update", false, "rewrite golden stats testdata")

const goldenStatsPath = "testdata/golden_stats.json"

// goldenEntry is one (workload, configuration) cell of the golden grid.
// Exactly one of Sim and MCM is set.
type goldenEntry struct {
	Label string             `json:"label"`
	Sim   *gpuscale.SimStats `json:"sim,omitempty"`
	MCM   *gpuscale.MCMStats `json:"mcm,omitempty"`
}

// goldenCells simulates the full golden grid: all 21 strong-scaling
// benchmarks on the 8- and 16-SM scale models (the two configurations every
// prediction in the paper is derived from), three sharded monolithic cells
// (one with quantum-relaxed barriers) byte-identical to their sequential
// twins, the 4- and 2-chiplet MCM configurations (sequential and sharded),
// two weak-scaling MCM cells, three horizon-boundary cells with
// long-latency DRAM, six microarchitecture-variant cells (two-level,
// sectored and deflect — monolithic and MCM, each checked against a
// sharded twin in-test), and one multi-kernel sequence. The strong cells
// are fanned across the worker pool; results are bit-identical to a
// sequential run.
func goldenCells(t *testing.T) []goldenEntry {
	t.Helper()
	ctx := context.Background()
	base := gpuscale.Baseline128()
	benches := gpuscale.Benchmarks()

	var jobs []gpuscale.Job
	var labels []string
	for _, bench := range benches {
		for _, n := range []int{8, 16} {
			jobs = append(jobs, gpuscale.NewJob(gpuscale.MustScale(base, n), bench.Workload))
			labels = append(labels, fmt.Sprintf("strong/%s/%dsm", bench.Name, n))
		}
	}
	results, err := gpuscale.RunJobs(ctx, jobs, gpuscale.EngineOptions{})
	if err != nil {
		t.Fatalf("golden strong sweep: %v", err)
	}
	var cells []goldenEntry
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("golden cell %s: %v", labels[i], r.Err)
		}
		st := r.Stats
		cells = append(cells, goldenEntry{Label: labels[i], Sim: &st})
	}

	// Two chiplet configurations: the 4- and 2-chiplet scale models of the
	// paper's 16-chiplet target, on the three representative benchmarks.
	// Pinning two MCM sizes makes the chiplet run loop's within-cycle
	// ordering (chip-major SM walk, shared link and LLC arbitration)
	// observable at more than one bitset width.
	for _, chips := range []int{4, 2} {
		mcmCfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), chips)
		if err != nil {
			t.Fatalf("golden chiplet config: %v", err)
		}
		for _, name := range []string{"dct", "bfs", "pf"} {
			bench, err := gpuscale.BenchmarkByName(name)
			if err != nil {
				t.Fatal(err)
			}
			st, err := gpuscale.SimulateMCMContext(ctx, mcmCfg, bench.Workload)
			if err != nil {
				t.Fatalf("golden chiplet cell %s/%dc: %v", name, chips, err)
			}
			cells = append(cells, goldenEntry{Label: fmt.Sprintf("chiplet/%s/%dc", name, chips), MCM: &st})
		}
	}

	// Sharded MCM cells: the same chiplet configurations driven through the
	// parallel shard loop (WithShards, docs/PARALLELISM.md). The sharded
	// loop's contract is bit-identity with the sequential one, so these
	// snapshots must equal their chiplet/* counterparts above — pinning them
	// separately makes a determinism regression in either loop show up as a
	// golden diff, not just as a test-to-test mismatch. Additive cells: they
	// extend the snapshot, never replace existing entries.
	for _, sc := range []struct {
		bench  string
		chips  int
		shards int
	}{{"bfs", 4, 4}, {"dct", 4, 2}, {"pf", 2, 2}} {
		mcmCfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), sc.chips)
		if err != nil {
			t.Fatalf("golden sharded config: %v", err)
		}
		bench, err := gpuscale.BenchmarkByName(sc.bench)
		if err != nil {
			t.Fatal(err)
		}
		st, err := gpuscale.SimulateMCMContext(ctx, mcmCfg, bench.Workload, gpuscale.WithShards(sc.shards))
		if err != nil {
			t.Fatalf("golden sharded cell %s/%dc-s%d: %v", sc.bench, sc.chips, sc.shards, err)
		}
		cells = append(cells, goldenEntry{
			Label: fmt.Sprintf("chiplet-sharded/%s/%dc-s%d", sc.bench, sc.chips, sc.shards), MCM: &st})
	}

	// Sharded monolithic cells: strong-scaling cells from the grid above
	// re-run through the per-SM-group shard loop (WithShards), one with
	// quantum-relaxed barriers (WithQuantum). Bit-identity with the
	// sequential loop is the sharded loop's contract, so each snapshot here
	// must be byte-identical to its strong/* twin — pinning them separately
	// makes a determinism regression in either loop show up as a golden
	// diff. Additive cells: they extend the snapshot, never replace
	// existing entries.
	for _, gc := range []struct {
		bench   string
		sms     int
		shards  int
		quantum int
	}{{"bfs", 16, 4, 0}, {"dct", 8, 2, 0}, {"pf", 16, 3, 64}} {
		bench, err := gpuscale.BenchmarkByName(gc.bench)
		if err != nil {
			t.Fatal(err)
		}
		opts := []gpuscale.SimOption{gpuscale.WithShards(gc.shards)}
		label := fmt.Sprintf("gpu-sharded/%s/%dsm-s%d", gc.bench, gc.sms, gc.shards)
		if gc.quantum > 0 {
			opts = append(opts, gpuscale.WithQuantum(gc.quantum))
			label = fmt.Sprintf("%s-q%d", label, gc.quantum)
		}
		st, err := gpuscale.SimulateContext(ctx, gpuscale.MustScale(base, gc.sms), bench.Workload, opts...)
		if err != nil {
			t.Fatalf("golden gpu-sharded cell %s: %v", label, err)
		}
		twin := fmt.Sprintf("strong/%s/%dsm", gc.bench, gc.sms)
		for _, c := range cells {
			if c.Label == twin && *c.Sim != st {
				t.Errorf("%s diverged from its sequential twin %s\n got %+v\nwant %+v", label, twin, st, *c.Sim)
			}
		}
		cells = append(cells, goldenEntry{Label: label, Sim: &st})
	}

	// Weak-scaling MCM cells: two Table IV families from the paper's chiplet
	// case study, each with its input scaled to the 4-chiplet model's SM
	// count (the case study's own protocol).
	mcmWeakCfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), 4)
	if err != nil {
		t.Fatalf("golden chiplet weak config: %v", err)
	}
	weakSMs := mcmWeakCfg.NumChiplets * mcmWeakCfg.Chiplet.NumSMs
	for _, name := range []string{"bfs", "va"} {
		fam, err := gpuscale.WeakBenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		st, err := gpuscale.SimulateMCMContext(ctx, mcmWeakCfg, fam.ForSMs(weakSMs))
		if err != nil {
			t.Fatalf("golden chiplet weak cell %s: %v", name, err)
		}
		cells = append(cells, goldenEntry{Label: "chiplet-weak/" + name + "/4c", MCM: &st})
	}

	// Horizon-boundary cells: DRAM latencies tuned so blocked-warp wake-up
	// distances cluster around the timing kernel's 64-cycle due-wheel
	// horizon, exercising the wheel/heap hand-off — wakes just inside the
	// wheel, exactly at the horizon (which must take the heap), and just
	// past it — in both simulators. Grid growth is additive: these cells
	// extend the snapshot, never replace existing entries.
	for _, hc := range []struct {
		bench string
		dram  int
	}{{"bfs", 52}, {"dct", 68}} {
		hcfg := gpuscale.MustScale(base, 8)
		hcfg.DRAMLatency = hc.dram
		hcfg.Name = fmt.Sprintf("%s-dram%d", hcfg.Name, hc.dram)
		bench, err := gpuscale.BenchmarkByName(hc.bench)
		if err != nil {
			t.Fatal(err)
		}
		st, err := gpuscale.SimulateContext(ctx, hcfg, bench.Workload)
		if err != nil {
			t.Fatalf("golden horizon cell %s/dram%d: %v", hc.bench, hc.dram, err)
		}
		cells = append(cells, goldenEntry{
			Label: fmt.Sprintf("horizon/%s/8sm-dram%d", hc.bench, hc.dram), Sim: &st})
	}
	mcmHorizonCfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), 2)
	if err != nil {
		t.Fatalf("golden horizon chiplet config: %v", err)
	}
	mcmHorizonCfg.Chiplet.DRAMLatency = 15
	mcmHorizonCfg.Name += "-dram15"
	hbench, err := gpuscale.BenchmarkByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	hmcm, err := gpuscale.SimulateMCMContext(ctx, mcmHorizonCfg, hbench.Workload)
	if err != nil {
		t.Fatalf("golden horizon chiplet cell: %v", err)
	}
	cells = append(cells, goldenEntry{Label: "horizon/bfs/2c-dram15", MCM: &hmcm})

	// Microarchitecture-variant cells: one monolithic 8-SM cell and one
	// 2-chiplet MCM cell per non-default variant axis (two-level warp
	// scheduling, sectored L1 fills, bufferless-deflection routing — see
	// docs/UARCH.md). Each monolithic cell is also re-run through the shard
	// loop and asserted byte-identical in-test, extending the sharded
	// determinism contract to every variant without enlarging the snapshot.
	// Additive cells: they extend the snapshot, never replace existing
	// entries.
	for _, uc := range []string{"two-level", "sectored", "deflect"} {
		v, err := gpuscale.ParseUarch(uc)
		if err != nil {
			t.Fatalf("golden uarch variant %s: %v", uc, err)
		}
		bench, err := gpuscale.BenchmarkByName("dct")
		if err != nil {
			t.Fatal(err)
		}
		vcfg := gpuscale.MustScale(base, 8)
		st, err := gpuscale.SimulateContext(ctx, vcfg, bench.Workload, gpuscale.WithUarch(v))
		if err != nil {
			t.Fatalf("golden uarch cell %s: %v", uc, err)
		}
		sh, err := gpuscale.SimulateContext(ctx, vcfg, bench.Workload, gpuscale.WithUarch(v), gpuscale.WithShards(2))
		if err != nil {
			t.Fatalf("golden uarch sharded twin %s: %v", uc, err)
		}
		if sh != st {
			t.Errorf("uarch/%s/dct/8sm sharded twin diverged\n got %+v\nwant %+v", uc, sh, st)
		}
		cells = append(cells, goldenEntry{Label: fmt.Sprintf("uarch/%s/dct/8sm", uc), Sim: &st})

		mcmCfg, err := gpuscale.ScaleChiplets(gpuscale.Target16Chiplet(), 2)
		if err != nil {
			t.Fatalf("golden uarch chiplet config: %v", err)
		}
		mbench, err := gpuscale.BenchmarkByName("bfs")
		if err != nil {
			t.Fatal(err)
		}
		mst, err := gpuscale.SimulateMCMContext(ctx, mcmCfg, mbench.Workload, gpuscale.WithUarch(v))
		if err != nil {
			t.Fatalf("golden uarch chiplet cell %s: %v", uc, err)
		}
		msh, err := gpuscale.SimulateMCMContext(ctx, mcmCfg, mbench.Workload, gpuscale.WithUarch(v), gpuscale.WithShards(2))
		if err != nil {
			t.Fatalf("golden uarch chiplet sharded twin %s: %v", uc, err)
		}
		if msh != mst {
			t.Errorf("uarch-chiplet/%s/bfs/2c sharded twin diverged\n got %+v\nwant %+v", uc, msh, mst)
		}
		cells = append(cells, goldenEntry{Label: fmt.Sprintf("uarch-chiplet/%s/bfs/2c", uc), MCM: &mst})
	}

	// One multi-kernel sequence: three kernels back to back with a grid
	// barrier between them and caches persisting across them.
	var kernels []gpuscale.Workload
	for _, name := range []string{"dct", "bfs", "pf"} {
		bench, err := gpuscale.BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels = append(kernels, bench.Workload)
	}
	seq, err := gpuscale.SimulateSequenceContext(ctx, gpuscale.MustScale(base, 8), kernels)
	if err != nil {
		t.Fatalf("golden sequence cell: %v", err)
	}
	cells = append(cells, goldenEntry{Label: "seq/dct+bfs+pf/8sm", Sim: &seq})

	sort.Slice(cells, func(i, j int) bool { return cells[i].Label < cells[j].Label })
	return cells
}

// TestGoldenStats pins every statistic of the simulator — Cycles, IPC,
// FMem, MPKI, every raw counter — to a committed snapshot, bit for bit.
// Performance work on the simulator hot path (the event-driven run loop,
// the flat MSHR file) is only acceptable while this test stays green
// without -update: identical simulated results, faster host execution.
func TestGoldenStats(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid simulates 66 cells; skipped in -short mode")
	}
	cells := goldenCells(t)

	if *updateGolden {
		buf, err := json.MarshalIndent(cells, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenStatsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenStatsPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cells", goldenStatsPath, len(cells))
		return
	}

	buf, err := os.ReadFile(goldenStatsPath)
	if err != nil {
		t.Fatalf("reading golden stats (run `go test -run TestGoldenStats -update .` to create): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenStatsPath, err)
	}
	wantByLabel := make(map[string]goldenEntry, len(want))
	for _, e := range want {
		wantByLabel[e.Label] = e
	}
	if len(want) != len(cells) {
		t.Errorf("golden grid has %d cells, snapshot has %d", len(cells), len(want))
	}
	for _, got := range cells {
		w, ok := wantByLabel[got.Label]
		if !ok {
			t.Errorf("%s: missing from golden snapshot", got.Label)
			continue
		}
		switch {
		case got.Sim != nil && w.Sim != nil:
			if *got.Sim != *w.Sim {
				t.Errorf("%s: stats diverged from golden snapshot\n got %+v\nwant %+v", got.Label, *got.Sim, *w.Sim)
			}
		case got.MCM != nil && w.MCM != nil:
			if *got.MCM != *w.MCM {
				t.Errorf("%s: MCM stats diverged from golden snapshot\n got %+v\nwant %+v", got.Label, *got.MCM, *w.MCM)
			}
		default:
			t.Errorf("%s: golden snapshot entry kind mismatch", got.Label)
		}
	}
}

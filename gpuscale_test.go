package gpuscale_test

import (
	"context"
	"math"
	"testing"

	"gpuscale"
	"gpuscale/internal/trace"
)

// smallLinear is a fast linear workload for facade-level tests.
func smallLinear(name string) gpuscale.Workload {
	return &gpuscale.FuncWorkload{
		WName: name,
		Spec:  gpuscale.KernelSpec{NumCTAs: 256, WarpsPerCTA: 2},
		Factory: func(cta, warp int) gpuscale.Program {
			g := &trace.SeqGen{Base: uint64(cta*2+warp) * 37 * 128, Stride: 128, Extent: 37 * 128}
			return gpuscale.NewPhaseProgram(gpuscale.Phase{N: 100, ComputePer: 9, Gen: g})
		},
	}
}

func TestFacadeConfigs(t *testing.T) {
	base := gpuscale.Baseline128()
	if base.NumSMs != 128 {
		t.Fatalf("baseline SMs = %d", base.NumSMs)
	}
	c, err := gpuscale.Scale(base, 16)
	if err != nil || c.NumSMs != 16 {
		t.Fatalf("Scale: %v %v", c.NumSMs, err)
	}
	if _, err := gpuscale.Scale(base, -1); err == nil {
		t.Error("negative size accepted")
	}
	cfgs := gpuscale.StandardConfigs()
	if len(cfgs) != 5 {
		t.Fatalf("StandardConfigs = %d entries", len(cfgs))
	}
	mcm := gpuscale.Target16Chiplet()
	if mcm.TotalSMs() != 1024 {
		t.Fatalf("MCM SMs = %d", mcm.TotalSMs())
	}
	if _, err := gpuscale.ScaleChiplets(mcm, 4); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSimulate(t *testing.T) {
	cfg := gpuscale.MustScale(gpuscale.Baseline128(), 8)
	st, err := gpuscale.SimulateContext(context.Background(), cfg, smallLinear("facade-sim"))
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC <= 0 || st.Instructions == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	st2, err := gpuscale.SimulateContext(context.Background(), cfg, smallLinear("facade-sim"),
		gpuscale.WithOptions(gpuscale.SimOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if st != st2 {
		t.Error("SimulateContext and WithOptions(SimOptions{}) disagree")
	}
}

func TestFacadeSimulateMCM(t *testing.T) {
	mcm := gpuscale.Target16Chiplet()
	mcm.Chiplet.NumSMs = 4
	cfg, err := gpuscale.ScaleChiplets(mcm, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := gpuscale.SimulateMCMContext(context.Background(), cfg, smallLinear("facade-mcm"))
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC <= 0 {
		t.Fatalf("degenerate MCM stats: %+v", st)
	}
	sharded, err := gpuscale.SimulateMCMContext(context.Background(), cfg, smallLinear("facade-mcm"),
		gpuscale.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if sharded != st {
		t.Errorf("WithShards(2) diverged from sequential\nsharded    %+v\nsequential %+v", sharded, st)
	}
}

func TestFacadeCurveAndPrediction(t *testing.T) {
	w := smallLinear("facade-curve")
	cfgs := gpuscale.StandardConfigs()
	curve, err := gpuscale.MissRateCurve(w, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 5 {
		t.Fatalf("curve points = %d", len(curve.Points))
	}
	sd, err := gpuscale.StackDistanceCurve(w, 128, []int64{1 << 20, 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(sd.Points) != 2 {
		t.Fatalf("stack curve points = %d", len(sd.Points))
	}
	preds, err := gpuscale.Predict(gpuscale.PredictionInput{
		Sizes:    []float64{8, 16, 32, 64, 128},
		SmallIPC: 100, LargeIPC: 200,
		MPKI: curve.MPKIs(),
		Mode: gpuscale.StrongScaling,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatalf("predictions = %d", len(preds))
	}
	p, err := gpuscale.PredictAt(gpuscale.PredictionInput{
		Sizes:    []float64{8, 16, 32},
		SmallIPC: 100, LargeIPC: 200,
		Mode: gpuscale.WeakScaling,
	}, 32)
	if err != nil || math.Abs(p.IPC-400) > 1e-9 {
		t.Fatalf("PredictAt = %v, %v", p.IPC, err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if c := gpuscale.CorrectionFactor(8, 100, 16, 180); math.Abs(c-0.9) > 1e-12 {
		t.Errorf("C = %v", c)
	}
	if _, ok := gpuscale.DetectCliff([]float64{8, 8, 0.4}, 0, 0); !ok {
		t.Error("cliff not detected")
	}
	models, err := gpuscale.FitBaselines([]gpuscale.RegressionPoint{{Size: 8, IPC: 100}, {Size: 16, IPC: 200}})
	if err != nil || len(models) != 4 {
		t.Fatalf("FitBaselines: %d, %v", len(models), err)
	}
	if got := models["proportional"].Predict(32); math.Abs(got-400) > 1e-9 {
		t.Errorf("proportional(32) = %v", got)
	}
}

func TestFacadeBenchmarkSuite(t *testing.T) {
	if n := len(gpuscale.Benchmarks()); n != 21 {
		t.Errorf("Benchmarks() = %d", n)
	}
	if _, err := gpuscale.BenchmarkByName("dct"); err != nil {
		t.Error(err)
	}
	if _, err := gpuscale.BenchmarkByName("zzz"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if n := len(gpuscale.WeakBenchmarks()); n != 6 {
		t.Errorf("WeakBenchmarks() = %d", n)
	}
	if _, err := gpuscale.WeakBenchmarkByName("va"); err != nil {
		t.Error(err)
	}
	if _, err := gpuscale.WeakBenchmarkByName("zzz"); err == nil {
		t.Error("unknown weak benchmark accepted")
	}
}

func TestFacadeRegionAndModeConstants(t *testing.T) {
	if gpuscale.StrongScaling.String() != "strong" || gpuscale.WeakScaling.String() != "weak" {
		t.Error("scaling mode constants wrong")
	}
	if gpuscale.PreCliff.String() != "pre-cliff" ||
		gpuscale.CliffRegion.String() != "cliff" ||
		gpuscale.PostCliff.String() != "post-cliff" {
		t.Error("region constants wrong")
	}
}
